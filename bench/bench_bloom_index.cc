// E1 — the tutorial's headline index figure ("How to build an index in log
// structures?"): looking up CUSTOMER.CITY='Lyon' via the Bloom-summary
// key-log index costs |Log2| summary reads + ~1 read per hit page
// ("Summary Scan (17 IOs)") versus a full table scan ("Table scan
// (640 IOs)").
//
// We regenerate the row with a CUSTOMER table sized to ~640 data pages and
// sweep table size, selectivity, and the bits-per-key ablation.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "embdb/database.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace {

using pds::embdb::ColumnType;
using pds::embdb::Database;
using pds::embdb::KeyLogIndex;
using pds::embdb::Predicate;
using pds::embdb::Schema;
using pds::embdb::Tuple;
using pds::embdb::Value;

pds::flash::Geometry BenchGeometry() {
  pds::flash::Geometry g;
  g.page_size = 2048;
  g.pages_per_block = 64;
  g.block_count = 2048;  // 256 MB
  return g;
}

struct Fixture {
  std::unique_ptr<pds::flash::FlashChip> chip;
  std::unique_ptr<pds::mcu::RamGauge> gauge;
  std::unique_ptr<Database> db;
  uint64_t rows = 0;
  uint32_t cities = 0;
};

/// Loads a CUSTOMER table of `rows` rows with `cities` distinct cities and
/// a key-log index on CITY (bits_per_key configurable).
std::unique_ptr<Fixture> Load(uint64_t rows, uint32_t cities,
                              double bits_per_key) {
  auto f = std::make_unique<Fixture>();
  f->chip = std::make_unique<pds::flash::FlashChip>(BenchGeometry());
  f->gauge = std::make_unique<pds::mcu::RamGauge>(256 * 1024);
  f->db = std::make_unique<Database>(f->chip.get(), f->gauge.get());
  f->rows = rows;
  f->cities = cities;

  Schema customer("customer", {{"id", ColumnType::kUint64, ""},
                               {"name", ColumnType::kString, ""},
                               {"city", ColumnType::kString, ""}});
  Database::TableOptions topts;
  topts.data_blocks = 512;
  topts.directory_blocks = 32;
  if (!f->db->CreateTable(customer, topts).ok()) {
    return nullptr;
  }
  Database::IndexOptions iopts;
  iopts.key_log.bits_per_key = bits_per_key;
  iopts.keys_blocks = 64;
  iopts.bloom_blocks = 16;
  if (!f->db->CreateKeyIndex("customer", "city", iopts).ok()) {
    return nullptr;
  }
  pds::Rng rng(1);
  for (uint64_t i = 0; i < rows; ++i) {
    Tuple t = {Value::U64(i),
               Value::Str("customer-name-padding-" + std::to_string(i)),
               Value::Str("city-" + std::to_string(rng.Uniform(cities)))};
    if (!f->db->Insert("customer", t).ok()) {
      return nullptr;
    }
  }
  return f;
}

Fixture* CachedFixture(uint64_t rows, uint32_t cities, double bpk) {
  static std::map<std::tuple<uint64_t, uint32_t, int>,
                  std::unique_ptr<Fixture>>
      cache;
  auto key = std::make_tuple(rows, cities, static_cast<int>(bpk * 10));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, Load(rows, cities, bpk)).first;
  }
  return it->second.get();
}

// Baseline: full table scan with a predicate.
void BM_TableScan(benchmark::State& state) {
  Fixture* f = CachedFixture(static_cast<uint64_t>(state.range(0)), 100,
                             16.0);
  Predicate p{2, Predicate::Op::kEq, Value::Str("city-7")};
  uint64_t reads = 0, matches = 0;
  for (auto _ : state) {
    f->chip->ResetStats();
    matches = 0;
    auto s = f->db->SelectScan("customer", {p},
                               [&](uint64_t, const Tuple&) {
                                 ++matches;
                                 return pds::Status::Ok();
                               });
    benchmark::DoNotOptimize(s);
    reads = f->chip->stats().page_reads;
  }
  state.counters["page_reads"] = static_cast<double>(reads);
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["table_pages"] = static_cast<double>(
      f->db->table("customer")->num_data_pages());
}
BENCHMARK(BM_TableScan)->Arg(5000)->Arg(20000)->Arg(40000);

// The Bloom-summary index lookup, with the IO breakdown of the slide.
void BM_SummaryScanLookup(benchmark::State& state) {
  Fixture* f = CachedFixture(static_cast<uint64_t>(state.range(0)), 100,
                             16.0);
  KeyLogIndex* index = f->db->key_index("customer", "city");
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats stats;
  uint64_t reads = 0;
  for (auto _ : state) {
    f->chip->ResetStats();
    auto s = index->Lookup(Value::Str("city-7"), &rowids, &stats);
    benchmark::DoNotOptimize(s);
    reads = f->chip->stats().page_reads;
  }
  state.counters["page_reads"] = static_cast<double>(reads);
  state.counters["summary_pages"] = static_cast<double>(stats.summary_pages);
  state.counters["key_pages"] = static_cast<double>(stats.key_pages);
  state.counters["false_pos_pages"] =
      static_cast<double>(stats.false_positive_pages);
  state.counters["matches"] = static_cast<double>(stats.matches);
}
BENCHMARK(BM_SummaryScanLookup)->Arg(5000)->Arg(20000)->Arg(40000);

// Selectivity sweep: more duplicates per city -> more true hit pages.
void BM_SummaryScanSelectivity(benchmark::State& state) {
  Fixture* f = CachedFixture(20000,
                             static_cast<uint32_t>(state.range(0)), 16.0);
  KeyLogIndex* index = f->db->key_index("customer", "city");
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats stats;
  for (auto _ : state) {
    auto s = index->Lookup(Value::Str("city-3"), &rowids, &stats);
    benchmark::DoNotOptimize(s);
  }
  state.counters["summary_pages"] = static_cast<double>(stats.summary_pages);
  state.counters["key_pages"] = static_cast<double>(stats.key_pages);
  state.counters["matches"] = static_cast<double>(stats.matches);
}
BENCHMARK(BM_SummaryScanSelectivity)->Arg(10)->Arg(100)->Arg(1000);

// Ablation: bits/key of the Bloom summary vs false-positive page reads.
void BM_BloomBitsAblation(benchmark::State& state) {
  double bpk = static_cast<double>(state.range(0));
  Fixture* f = CachedFixture(20000, 20000, bpk);  // unique keys
  KeyLogIndex* index = f->db->key_index("customer", "city");
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats stats;
  uint64_t fp = 0, probes = 0;
  for (auto _ : state) {
    fp = 0;
    probes = 0;
    // Probe absent keys: every key-page read is a false positive.
    for (int i = 0; i < 50; ++i) {
      auto s = index->Lookup(Value::Str("absent-" + std::to_string(i)),
                             &rowids, &stats);
      benchmark::DoNotOptimize(s);
      fp += stats.false_positive_pages;
      ++probes;
    }
  }
  state.counters["bits_per_key"] = bpk;
  state.counters["false_pos_pages_per_probe"] =
      static_cast<double>(fp) / static_cast<double>(probes);
  state.counters["summary_pages"] = static_cast<double>(stats.summary_pages);
}
BENCHMARK(BM_BloomBitsAblation)->Arg(2)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
