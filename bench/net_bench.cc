// net_bench — the documented driver for the real-wire numbers:
//
//   build/bench/net_bench --out BENCH_net.json
//
// It sweeps [TNP14] secure aggregation over the framed token<->SSI wire for
// fleet sizes 4/16/64 on both transports (deterministic in-process queue
// pairs and Unix-domain sockets), recording measured frame bytes, round
// counts, loopback throughput/latency and round-trip latency percentiles
// (p50/p90/p99/p999 from the SSI's per-session HDR histograms) per run. It
// then runs the quorum scenarios with one deliberately-dropped token: under
// quorum=1.0 the run must fail with a quorum shortfall, under quorum=0.9 it
// must complete at N-1 responders with the shortfall recorded. Any
// unexpected outcome exits non-zero, which is what the CI schema check
// builds on. The tracer stays on for the whole sweep and the merged
// cross-process trace (SSI round-trip spans with token handler spans as
// children) is exported as Chrome trace_event JSON (--trace).

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/cipher.h"
#include "crypto/paillier.h"
#include "global/fleet_executor.h"
#include "net/scenario.h"
#include "net/ssi_server.h"
#include "net/token_client.h"
#include "net/transport.h"
#include "obs/obs.h"

namespace {

using pds::Rng;
using pds::global::AggFunc;
using pds::global::FleetExecutor;
using pds::global::SourceTuple;
using pds::mcu::SecureToken;
using pds::net::InProcessTransport;
using pds::net::SocketTransport;
using pds::net::SsiServer;
using pds::net::TokenClient;
using pds::net::Transport;

constexpr uint32_t kDropForever = 1u << 20;

struct BenchFleet {
  std::vector<std::unique_ptr<SecureToken>> tokens;
  std::vector<std::vector<SourceTuple>> tuples;
  std::unique_ptr<SecureToken> verifier;
  size_t total_tuples = 0;
};

BenchFleet MakeFleet(size_t n) {
  BenchFleet fleet;
  pds::crypto::SymmetricKey key = pds::crypto::KeyFromString("net-bench");
  Rng rng(55);
  for (size_t i = 0; i < n; ++i) {
    SecureToken::Config cfg;
    cfg.token_id = 100 + i;
    cfg.fleet_key = key;
    cfg.rng_seed = 100 + i;
    fleet.tokens.push_back(std::make_unique<SecureToken>(cfg));
    std::vector<SourceTuple> tuples;
    for (int t = 0; t < 4; ++t) {
      SourceTuple st;
      st.group = "city-" + std::to_string(rng.Uniform(5));
      st.value = static_cast<double>(rng.Uniform(100));
      tuples.push_back(std::move(st));
    }
    fleet.total_tuples += tuples.size();
    fleet.tuples.push_back(std::move(tuples));
  }
  SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = key;
  vcfg.rng_seed = 9000;
  fleet.verifier = std::make_unique<SecureToken>(vcfg);
  return fleet;
}

struct RunRecord {
  std::string section;
  std::string transport;
  size_t fleet_size = 0;
  double quorum = 1.0;
  size_t dropped_tokens = 0;
  bool ok = false;
  size_t groups = 0;
  size_t responders = 0;
  uint64_t missing_tokens = 0;
  uint64_t rounds = 0;
  uint64_t retries = 0;
  uint64_t deadline_hits = 0;
  uint64_t bytes = 0;
  uint64_t bytes_token_to_ssi = 0;
  uint64_t bytes_ssi_to_token = 0;
  uint64_t frames = 0;
  uint64_t tuples = 0;
  double wall_ms = 0;
  double tuples_per_sec = 0;
  // Round-trip latency percentiles (µs) over every answered attempt in the
  // run, from the SSI's log-bucketed histogram.
  double rtt_p50_us = 0;
  double rtt_p90_us = 0;
  double rtt_p99_us = 0;
  double rtt_p999_us = 0;
  // Samples behind the percentiles: loopback runs at small fleet sizes
  // answer few round trips, and percentile tails from a handful of samples
  // collapse onto each other. The validator only demands distinct tails
  // above a sample-count threshold.
  uint64_t rtt_samples = 0;
};

struct Scenario {
  std::string section;
  std::string transport;  // "inproc" or "socket"
  size_t fleet_size = 0;
  double quorum = 1.0;
  size_t drop_first = 0;  // clients [0, drop_first) never answer rounds
  uint32_t deadline_ms = 2000;
  uint32_t max_retries = 2;
};

int Fail(const std::string& what) {
  std::cerr << "net_bench: FAILED: " << what << "\n";
  return 1;
}

/// One full wire run: handshake every client, execute the protocol, tear
/// down, and distill the measured traffic into a RunRecord.
int RunScenario(const Scenario& sc, RunRecord* rec) {
  BenchFleet fleet = MakeFleet(sc.fleet_size);
  FleetExecutor exec(4);

  SsiServer::Config cfg;
  cfg.partition_capacity = 32;  // forces aggregate rounds at fleet size 16+
  cfg.deadline_ms = sc.deadline_ms;
  cfg.max_retries = sc.max_retries;
  cfg.backoff_ms = 5;
  cfg.quorum = sc.quorum;
  cfg.executor = &exec;
  cfg.verifier = fleet.verifier.get();
  SsiServer server(cfg);

  std::vector<std::unique_ptr<TokenClient>> clients;
  for (size_t i = 0; i < sc.fleet_size; ++i) {
    std::unique_ptr<Transport> client_side;
    std::unique_ptr<Transport> server_side;
    if (sc.transport == "inproc") {
      auto [a, b] = InProcessTransport::CreatePair();
      client_side = std::move(a);
      server_side = std::move(b);
    } else {
      auto pair = SocketTransport::CreateUnixPair();
      if (!pair.ok()) {
        return Fail("CreateUnixPair: " + pair.status().ToString());
      }
      client_side = std::move(pair->first);
      server_side = std::move(pair->second);
    }
    TokenClient::Config ccfg;
    ccfg.token = fleet.tokens[i].get();
    ccfg.tuples = fleet.tuples[i];
    if (i < sc.drop_first) {
      ccfg.faults.seed = 7 + i;
      ccfg.faults.swallow_first = kDropForever;
    }
    clients.push_back(
        std::make_unique<TokenClient>(std::move(client_side), ccfg));
    clients.back()->Start();
    auto accepted = server.AcceptSession(std::move(server_side));
    if (!accepted.ok()) {
      return Fail("AcceptSession: " + accepted.status().ToString());
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  auto t1 = std::chrono::steady_clock::now();

  server.Shutdown();
  for (auto& c : clients) {
    c->Stop();
    (void)c->Join();  // dropped clients exit via transport close; fine here
  }

  rec->section = sc.section;
  rec->transport = sc.transport;
  rec->fleet_size = sc.fleet_size;
  rec->quorum = sc.quorum;
  rec->dropped_tokens = sc.drop_first;
  rec->ok = output.ok();
  rec->tuples = fleet.total_tuples;
  rec->wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const SsiServer::RoundReport& report = server.last_report();
  rec->responders = report.responders;
  rec->missing_tokens = report.missing_tokens;
  rec->deadline_hits = report.deadline_hits;
  rec->retries = report.retries;
  const pds::obs::Histogram& rtt = server.rtt_histogram();
  rec->rtt_p50_us = rtt.Percentile(50);
  rec->rtt_p90_us = rtt.Percentile(90);
  rec->rtt_p99_us = rtt.Percentile(99);
  rec->rtt_p999_us = rtt.Percentile(99.9);
  rec->rtt_samples = rtt.count();
  for (const auto& c : clients) {
    rec->frames += c->transport().frames_sent();
    rec->frames += c->transport().frames_received();
  }
  if (output.ok()) {
    rec->groups = output->groups.size();
    rec->rounds = output->metrics.rounds;
    rec->bytes = output->metrics.bytes;
    rec->bytes_token_to_ssi = output->metrics.bytes_token_to_ssi;
    rec->bytes_ssi_to_token = output->metrics.bytes_ssi_to_token;
    if (rec->bytes !=
        rec->bytes_token_to_ssi + rec->bytes_ssi_to_token) {
      return Fail("directional wire bytes do not sum to total bytes");
    }
    double secs = rec->wall_ms / 1000.0;
    if (secs > 0) {
      rec->tuples_per_sec = static_cast<double>(rec->tuples) / secs;
    }
  }
  return 0;
}

void WriteRecord(std::ostream& out, const RunRecord& r, bool last) {
  out << "    {\"section\": \"" << r.section << "\""
      << ", \"transport\": \"" << r.transport << "\""
      << ", \"fleet_size\": " << r.fleet_size
      << ", \"quorum\": " << r.quorum
      << ", \"dropped_tokens\": " << r.dropped_tokens
      << ", \"ok\": " << (r.ok ? "true" : "false")
      << ", \"groups\": " << r.groups
      << ", \"responders\": " << r.responders
      << ", \"missing_tokens\": " << r.missing_tokens
      << ", \"rounds\": " << r.rounds
      << ", \"retries\": " << r.retries
      << ", \"deadline_hits\": " << r.deadline_hits
      << ", \"bytes\": " << r.bytes
      << ", \"bytes_token_to_ssi\": " << r.bytes_token_to_ssi
      << ", \"bytes_ssi_to_token\": " << r.bytes_ssi_to_token
      << ", \"frames\": " << r.frames
      << ", \"tuples\": " << r.tuples
      << ", \"wall_ms\": " << r.wall_ms
      << ", \"tuples_per_sec\": " << r.tuples_per_sec
      << ", \"rtt_p50_us\": " << r.rtt_p50_us
      << ", \"rtt_p90_us\": " << r.rtt_p90_us
      << ", \"rtt_p99_us\": " << r.rtt_p99_us
      << ", \"rtt_p999_us\": " << r.rtt_p999_us
      << ", \"rtt_samples\": " << r.rtt_samples << "}"
      << (last ? "\n" : ",\n");
}

/// Runs the adversarial-wire scenario matrix (benign + link faults ×
/// protocols, sealed tampering, hostile-frame probes, churn) and distills
/// it into the `fault_scenarios` record the schema check validates:
/// detection_rate over expects_detection cells must be 1.0 and every benign
/// cell must be byte-identical to the in-process reference.
int RunFaultScenarios(std::string* json) {
  BenchFleet fleet = MakeFleet(4);
  std::vector<pds::global::Participant> participants;
  for (size_t i = 0; i < fleet.tokens.size(); ++i) {
    pds::global::Participant p;
    p.token = fleet.tokens[i].get();
    p.tuples = fleet.tuples[i];
    participants.push_back(std::move(p));
  }
  std::vector<std::string> domain;
  for (int i = 0; i < 5; ++i) domain.push_back("city-" + std::to_string(i));
  Rng key_rng(42);
  auto paillier = pds::crypto::Paillier::Generate(256, &key_rng);
  if (!paillier.ok()) return Fail("Paillier::Generate");
  auto packed = pds::crypto::PackedAggregate::Create(
      *paillier, fleet.tokens.size(), /*max_value=*/4096, 2 * domain.size());
  if (!packed.ok()) return Fail("PackedAggregate::Create");
  pds::global::PackedPaillierProtocol::Config packed_cfg;
  packed_cfg.domain = domain;
  packed_cfg.max_slot_value = 4096;
  packed_cfg.paillier_bits = 256;
  packed_cfg.key_seed = 42;

  std::vector<pds::net::ScenarioResult> results;
  for (pds::net::ScenarioSpec& spec :
       pds::net::DefaultMatrix(/*seed=*/7, /*use_socket=*/false)) {
    spec.participants = participants;
    spec.verifier = fleet.verifier.get();
    spec.domain = domain;
    spec.packed = &packed.value();
    spec.packed_cfg = packed_cfg;
    auto cell = pds::net::RunScenarioCell(spec);
    if (!cell.ok()) {
      return Fail("scenario " + spec.name + ": " + cell.status().ToString());
    }
    const pds::net::ScenarioResult& r = cell.value();
    std::cout << "scenario " << r.name << ": "
              << (r.ran_ok ? "ran" : "failed") << ", byte_identical="
              << r.byte_identical << ", detected=" << r.detected
              << (r.error.empty() ? "" : " [" + r.error + "]") << "\n";
    if (r.benign && (!r.ran_ok || !r.byte_identical)) {
      return Fail("benign scenario " + r.name +
                  " diverged from the in-process reference: " + r.error);
    }
    if (r.expects_detection && !r.detected) {
      return Fail("scenario " + r.name + " evaded detection\n" +
                  r.injection_log);
    }
    results.push_back(std::move(cell).value());
  }
  *json = pds::net::MatrixJson(results);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_net.json";
  std::string trace_path = "trace_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::cerr << "usage: net_bench [--out FILE] [--trace FILE]\n";
      return 2;
    }
  }

  // Record every span from every scenario: the SSI's round-trip spans and
  // the token threads' remote-parented handler spans land in one buffer, so
  // the export below is already the merged cross-process trace.
  pds::obs::Tracer& tracer = pds::obs::Tracer::Global();
  tracer.SetCapacity(1 << 17);
  tracer.SetEnabled(true);

  std::vector<Scenario> scenarios;
  for (const char* transport : {"inproc", "socket"}) {
    for (size_t n : {4u, 16u, 64u}) {
      Scenario sc;
      sc.section = "sweep";
      sc.transport = transport;
      sc.fleet_size = n;
      scenarios.push_back(sc);
    }
  }
  {
    // One token of ten swallows every request. Full quorum must fail the
    // run; quorum 0.9 (need = ceil(9.0) = 9 = N-1) must complete.
    Scenario all;
    all.section = "quorum";
    all.transport = "inproc";
    all.fleet_size = 10;
    all.quorum = 1.0;
    all.drop_first = 1;
    all.deadline_ms = 150;
    all.max_retries = 0;
    scenarios.push_back(all);
    Scenario nine = all;
    nine.quorum = 0.9;
    nine.max_retries = 1;
    scenarios.push_back(nine);
  }

  std::vector<RunRecord> records(scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = scenarios[i];
    if (RunScenario(sc, &records[i]) != 0) {
      return 1;
    }
    const RunRecord& r = records[i];
    std::cout << sc.section << " " << sc.transport << " n=" << sc.fleet_size
              << " quorum=" << sc.quorum << ": "
              << (r.ok ? "ok" : "failed (expected for full quorum + drop)")
              << ", " << r.responders << " responders, " << r.bytes
              << " B measured, " << r.frames << " frames, " << r.wall_ms
              << " ms\n";
    if (sc.section == "sweep" && !r.ok) {
      return Fail("sweep run unexpectedly failed");
    }
    if (sc.section == "sweep" &&
        (r.rtt_p50_us <= 0 || r.rtt_p50_us > r.rtt_p99_us ||
         r.rtt_p99_us > r.rtt_p999_us)) {
      return Fail("round-trip percentiles missing or non-monotonic");
    }
    if (sc.section == "quorum" && sc.quorum == 1.0 && r.ok) {
      return Fail("full-quorum run with a dropped token unexpectedly passed");
    }
    if (sc.section == "quorum" && sc.quorum < 1.0 &&
        (!r.ok || r.missing_tokens != 1 ||
         r.responders != sc.fleet_size - 1)) {
      return Fail("quorum=0.9 run did not complete at N-1 responders");
    }
  }

  tracer.SetEnabled(false);
  if (tracer.dropped() != 0) {
    return Fail("trace buffer overflowed; raise SetCapacity");
  }

  // The scenario matrix runs untraced — its spans would swamp the sweep's
  // trace and the fault cells are exercised for verdicts, not latency.
  std::string fault_scenarios;
  if (RunFaultScenarios(&fault_scenarios) != 0) {
    return 1;
  }

  std::ofstream out(out_path, std::ios::binary);
  out << "{\n  \"meta\": {\"generated_by\": \"bench/net_bench\", "
         "\"protocol\": \"net-secure-agg\"},\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    WriteRecord(out, records[i], i + 1 == records.size());
  }
  out << "  ],\n  \"fault_scenarios\": " << fault_scenarios << "\n}\n";
  out.close();
  if (!out) {
    return Fail("cannot write " + out_path);
  }
  std::ofstream trace_out(trace_path, std::ios::binary);
  tracer.ExportChromeTrace(trace_out);
  trace_out.close();
  if (!trace_out) {
    return Fail("cannot write " + trace_path);
  }
  std::cout << "wrote " << out_path << " (" << records.size()
            << " records)\n"
            << "wrote " << trace_path << " (" << tracer.num_events()
            << " events; token round spans parent under SSI round-trips)\n";
  return 0;
}
