// E11 — the Perspectives instances: personal social-medical folder sync
// (badge-carried, disconnected) and the Folk-IS delay-tolerant network.
//
// Paper shape: badge sync moves only the delta (bytes ~ new entries, not
// folder size); Folk-IS delivery delay falls steeply as ferry density
// rises, with deployment cost = tokens only.

#include <benchmark/benchmark.h>

#include "common/rng.h"

#include <memory>

#include "sync/folder.h"
#include "sync/folkis.h"

namespace {

using pds::global::Metrics;
using pds::mcu::SecureToken;
using pds::sync::ArchiveServer;
using pds::sync::FerryNetwork;
using pds::sync::PersonalFolder;

SecureToken::Config TokenConfig(uint64_t id) {
  SecureToken::Config cfg;
  cfg.token_id = id;
  cfg.fleet_key = pds::crypto::KeyFromString("sync-bench");
  return cfg;
}

// Full badge sync of a folder of `n` entries into an empty replica.
void BM_BadgeSyncFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SecureToken home_token(TokenConfig(1));
  PersonalFolder home(&home_token, 7);
  for (int i = 0; i < n; ++i) {
    (void)home.AddEntry("entry", "content-" + std::to_string(i));
  }
  Metrics metrics;
  for (auto _ : state) {
    SecureToken fresh_token(TokenConfig(2));
    PersonalFolder fresh(&fresh_token, 7);
    metrics = Metrics();
    auto s = PersonalFolder::BadgeSync(&home, &fresh, &metrics);
    benchmark::DoNotOptimize(s);
  }
  state.counters["bytes_carried"] = static_cast<double>(metrics.bytes);
  state.counters["blobs"] = static_cast<double>(metrics.messages);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BadgeSyncFull)->Arg(100)->Arg(1000)->Arg(10000);

// Incremental sync: replicas already share n entries; only `delta` new
// ones move. Paper shape: cost tracks the delta, not the folder size.
void BM_BadgeSyncDelta(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int delta = 10;
  Metrics metrics;
  for (auto _ : state) {
    state.PauseTiming();
    SecureToken t1(TokenConfig(1)), t2(TokenConfig(2));
    PersonalFolder a(&t1, 7), b(&t2, 7);
    for (int i = 0; i < n; ++i) {
      (void)a.AddEntry("base", "content-" + std::to_string(i));
    }
    (void)PersonalFolder::BadgeSync(&a, &b, nullptr);
    for (int i = 0; i < delta; ++i) {
      (void)a.AddEntry("new", "delta-" + std::to_string(i));
    }
    state.ResumeTiming();

    metrics = Metrics();
    auto s = PersonalFolder::BadgeSync(&a, &b, &metrics);
    benchmark::DoNotOptimize(s);
  }
  state.counters["bytes_carried"] = static_cast<double>(metrics.bytes);
  state.counters["blobs"] = static_cast<double>(metrics.messages);
  state.counters["folder_size"] = static_cast<double>(n);
}
BENCHMARK(BM_BadgeSyncDelta)->Arg(100)->Arg(1000)->Arg(5000);

// Archive round trip: push n entries and bootstrap a replica.
void BM_ArchiveRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Metrics metrics;
  for (auto _ : state) {
    SecureToken t1(TokenConfig(1)), t2(TokenConfig(2));
    PersonalFolder home(&t1, 7), replica(&t2, 7);
    ArchiveServer archive;
    for (int i = 0; i < n; ++i) {
      (void)home.AddEntry("e", "content-" + std::to_string(i));
    }
    metrics = Metrics();
    (void)home.PushTo(&archive, &metrics);
    (void)replica.PullFrom(archive, &metrics);
    benchmark::DoNotOptimize(replica.entries().size());
  }
  state.counters["bytes"] = static_cast<double>(metrics.bytes);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ArchiveRoundTrip)->Arg(100)->Arg(1000);

// Folk-IS: mean delivery delay vs ferry density, single-custody (arg1=0)
// vs epidemic replication (arg1=1).
void BM_FolkisDelivery(benchmark::State& state) {
  const uint32_t ferries = static_cast<uint32_t>(state.range(0));
  const bool epidemic = state.range(1) != 0;
  double mean_delay = 0;
  uint64_t human_steps = 0;
  for (auto _ : state) {
    FerryNetwork::Config cfg;
    cfg.num_villages = 32;
    cfg.num_ferries = ferries;
    cfg.epidemic = epidemic;
    cfg.ferry_capacity = 128;
    cfg.seed = 5;
    FerryNetwork net(cfg);
    pds::Rng rng(9);
    std::vector<uint64_t> ids;
    for (int i = 0; i < 50; ++i) {
      ids.push_back(net.Post(static_cast<uint32_t>(rng.Uniform(32)),
                             static_cast<uint32_t>(rng.Uniform(32)), 256));
    }
    net.RunUntilDelivered(5000000);
    double total = 0;
    for (uint64_t id : ids) {
      total += static_cast<double>(net.DeliveryDelay(id));
    }
    mean_delay = total / static_cast<double>(ids.size());
    human_steps = net.ferry_steps();
    benchmark::DoNotOptimize(net.messages_delivered());
  }
  state.counters["ferries"] = static_cast<double>(ferries);
  state.counters["epidemic"] = epidemic ? 1 : 0;
  state.counters["mean_delay_steps"] = mean_delay;
  state.counters["ferry_steps"] = static_cast<double>(human_steps);
}
BENCHMARK(BM_FolkisDelivery)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({16, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({32, 1});

}  // namespace

BENCHMARK_MAIN();
