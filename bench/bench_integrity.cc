// E9 — weakly-malicious SSI detection (tutorial threat model B: "WM +
// Broken -> must be prevented via security primitives, see [ANP13]").
//
// The SSI drops/duplicates/alters sealed tuples at a configurable rate;
// the verifier token checks per-tuple MACs + per-participant manifests.
// Paper shape: detection probability is 1 whenever at least one action
// occurred (deterministic primitives), so a covert adversary is deterred;
// the bench also reports the token-side verification cost that buys it.

#include <benchmark/benchmark.h>

#include "common/rng.h"

#include <memory>

#include "global/integrity.h"

namespace {

using pds::global::MakeManifest;
using pds::global::Manifest;
using pds::global::SealedTuple;
using pds::global::SealTuples;
using pds::global::TamperingSsi;
using pds::global::VerifyBatch;
using pds::mcu::SecureToken;

struct Setup {
  std::unique_ptr<SecureToken> producer;
  std::unique_ptr<SecureToken> verifier;
  std::vector<SealedTuple> batch;
  Manifest manifest;
};

std::unique_ptr<Setup> Build(size_t n) {
  auto s = std::make_unique<Setup>();
  SecureToken::Config cfg;
  cfg.fleet_key = pds::crypto::KeyFromString("integrity-bench");
  cfg.token_id = 1;
  s->producer = std::make_unique<SecureToken>(cfg);
  cfg.token_id = 2;
  s->verifier = std::make_unique<SecureToken>(cfg);

  std::vector<pds::Bytes> cts;
  for (size_t i = 0; i < n; ++i) {
    std::string payload = "tuple-payload-" + std::to_string(i);
    auto ct = s->producer->EncryptNonDet(
        pds::ByteView(std::string_view(payload)));
    cts.push_back(std::move(ct).value());
  }
  s->batch = std::move(SealTuples(s->producer.get(), 1, cts)).value();
  s->manifest = std::move(MakeManifest(s->producer.get(), 1, n)).value();
  return s;
}

// Detection probability vs tamper rate: run many tampered batches and
// count how often verification flags them.
void BM_DetectionRate(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  auto setup = Build(200);
  uint64_t tampered_batches = 0, detected = 0, trials = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    std::vector<SealedTuple> batch = setup->batch;
    TamperingSsi ssi({rate / 3, rate / 3, rate / 3, seed++});
    auto actions = ssi.Tamper(&batch);
    auto verdict =
        VerifyBatch(setup->verifier.get(), batch, {setup->manifest});
    benchmark::DoNotOptimize(verdict);
    ++trials;
    if (actions.total() > 0) {
      ++tampered_batches;
      if (verdict.ok() && !verdict->ok) {
        ++detected;
      }
    }
  }
  state.counters["tamper_rate_permille"] =
      static_cast<double>(state.range(0));
  state.counters["detection_rate"] =
      tampered_batches == 0
          ? 1.0
          : static_cast<double>(detected) /
                static_cast<double>(tampered_batches);
  state.counters["tampered_batches"] =
      static_cast<double>(tampered_batches);
  state.counters["trials"] = static_cast<double>(trials);
}
BENCHMARK(BM_DetectionRate)->Arg(1)->Arg(10)->Arg(100)->Arg(300);

// Cost of the defence: sealing and verifying per tuple.
void BM_SealTuples(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto setup = Build(1);
  std::vector<pds::Bytes> cts;
  for (size_t i = 0; i < n; ++i) {
    cts.push_back(std::move(setup->producer
                                ->EncryptNonDet(pds::ByteView(
                                    std::string_view("payload")))
                                .value()));
  }
  for (auto _ : state) {
    auto sealed = SealTuples(setup->producer.get(), 1, cts);
    benchmark::DoNotOptimize(sealed);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SealTuples)->Arg(100)->Arg(1000);

void BM_VerifyCleanBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto setup = Build(n);
  for (auto _ : state) {
    auto verdict = VerifyBatch(setup->verifier.get(), setup->batch,
                               {setup->manifest});
    benchmark::DoNotOptimize(verdict);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_VerifyCleanBatch)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
