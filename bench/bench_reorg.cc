// E4 — index reorganization (tutorial Part II, "Scalability => timely
// reorganize the index"): the sequential key-log index degrades linearly
// with size; reorganizing it into the B-tree-like structure (log-only
// external sort + bottom-up build) makes lookups O(height).
//
// Paper shape: lookup IO before reorg grows with the log size, after reorg
// it is flat (~height + 1); the reorganization itself is a sequential pass
// whose cost amortizes after a modest number of lookups (crossover
// reported).

#include <benchmark/benchmark.h>

#include "common/rng.h"

#include <map>
#include <memory>

#include "embdb/key_index.h"
#include "embdb/reorganize.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace {

using pds::embdb::KeyLogIndex;
using pds::embdb::Reorganizer;
using pds::embdb::TreeIndex;
using pds::embdb::Value;

pds::flash::Geometry BigGeometry() {
  pds::flash::Geometry g;
  g.page_size = 2048;
  g.pages_per_block = 64;
  g.block_count = 4096;  // 512 MB
  return g;
}

struct Fixture {
  std::unique_ptr<pds::flash::FlashChip> chip;
  std::unique_ptr<pds::mcu::RamGauge> gauge;
  std::unique_ptr<pds::flash::PartitionAllocator> alloc;
  std::unique_ptr<KeyLogIndex> key_log;
  std::unique_ptr<TreeIndex> tree;
  uint64_t entries = 0;
  pds::flash::Stats reorg_cost;
};

std::unique_ptr<Fixture> Build(uint64_t entries) {
  auto f = std::make_unique<Fixture>();
  f->chip = std::make_unique<pds::flash::FlashChip>(BigGeometry());
  f->gauge = std::make_unique<pds::mcu::RamGauge>(64 * 1024);
  f->alloc =
      std::make_unique<pds::flash::PartitionAllocator>(f->chip.get());
  f->entries = entries;

  auto keys = f->alloc->Allocate(512);
  auto bloom = f->alloc->Allocate(64);
  if (!keys.ok() || !bloom.ok()) {
    return nullptr;
  }
  f->key_log = std::make_unique<KeyLogIndex>(*keys, *bloom, f->gauge.get(),
                                             KeyLogIndex::Options{});
  if (!f->key_log->Init().ok()) {
    return nullptr;
  }
  pds::Rng rng(13);
  for (uint64_t i = 0; i < entries; ++i) {
    if (!f->key_log->Insert(Value::U64(rng.Next() % (entries * 4)), i)
             .ok()) {
      return nullptr;
    }
  }

  // Reorganize once, recording the flash cost of the transformation.
  pds::flash::Stats before = f->chip->stats();
  Reorganizer::Options opts;
  opts.sort_ram_bytes = 16 * 1024;
  auto tree = Reorganizer::Reorganize(f->key_log.get(), f->alloc.get(),
                                      f->gauge.get(), opts);
  if (!tree.ok()) {
    return nullptr;
  }
  f->reorg_cost = f->chip->stats() - before;
  f->tree = std::make_unique<TreeIndex>(std::move(tree).value());
  return f;
}

Fixture* Cached(uint64_t entries) {
  static std::map<uint64_t, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(entries);
  if (it == cache.end()) {
    it = cache.emplace(entries, Build(entries)).first;
  }
  return it->second.get();
}

void BM_KeyLogLookup(benchmark::State& state) {
  Fixture* f = Cached(static_cast<uint64_t>(state.range(0)));
  pds::Rng rng(21);
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats stats;
  uint64_t reads = 0;
  for (auto _ : state) {
    f->chip->ResetStats();
    auto s = f->key_log->Lookup(
        Value::U64(rng.Next() % (f->entries * 4)), &rowids, &stats);
    benchmark::DoNotOptimize(s);
    reads += f->chip->stats().page_reads;
  }
  state.counters["page_reads_per_lookup"] =
      static_cast<double>(reads) / static_cast<double>(state.iterations());
  state.counters["key_pages_total"] =
      static_cast<double>(f->key_log->num_key_pages_flushed());
}
BENCHMARK(BM_KeyLogLookup)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_TreeLookup(benchmark::State& state) {
  Fixture* f = Cached(static_cast<uint64_t>(state.range(0)));
  pds::Rng rng(22);
  std::vector<uint64_t> rowids;
  TreeIndex::LookupStats stats;
  uint64_t reads = 0;
  for (auto _ : state) {
    f->chip->ResetStats();
    auto s = f->tree->Lookup(Value::U64(rng.Next() % (f->entries * 4)),
                             &rowids, &stats);
    benchmark::DoNotOptimize(s);
    reads += f->chip->stats().page_reads;
  }
  double per_lookup =
      static_cast<double>(reads) / static_cast<double>(state.iterations());
  state.counters["page_reads_per_lookup"] = per_lookup;
  state.counters["tree_height"] = static_cast<double>(f->tree->height());

  // Amortization: after how many lookups does reorg IO pay for itself?
  Fixture* same = f;
  double keylog_cost =
      static_cast<double>(same->key_log->num_summary_pages_flushed()) + 2;
  double saved_per_lookup = keylog_cost - per_lookup;
  double reorg_io = static_cast<double>(same->reorg_cost.page_reads +
                                        same->reorg_cost.page_programs);
  state.counters["crossover_lookups"] =
      saved_per_lookup > 0 ? reorg_io / saved_per_lookup : -1;
}
BENCHMARK(BM_TreeLookup)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_ReorganizeCost(benchmark::State& state) {
  // Measures a fresh reorganization end-to-end (time + flash ops).
  const uint64_t entries = static_cast<uint64_t>(state.range(0));
  pds::flash::Stats cost;
  for (auto _ : state) {
    state.PauseTiming();
    auto chip = std::make_unique<pds::flash::FlashChip>(BigGeometry());
    pds::mcu::RamGauge gauge(64 * 1024);
    pds::flash::PartitionAllocator alloc(chip.get());
    auto keys = alloc.Allocate(512);
    auto bloom = alloc.Allocate(64);
    KeyLogIndex source(*keys, *bloom, &gauge, {});
    (void)source.Init();
    pds::Rng rng(5);
    for (uint64_t i = 0; i < entries; ++i) {
      (void)source.Insert(Value::U64(rng.Next()), i);
    }
    chip->ResetStats();
    state.ResumeTiming();

    auto tree = Reorganizer::Reorganize(&source, &alloc, &gauge, {});
    benchmark::DoNotOptimize(tree);
    cost = chip->stats();
  }
  pds::flash::CostModel model;
  state.counters["flash_reads"] = static_cast<double>(cost.page_reads);
  state.counters["flash_programs"] = static_cast<double>(cost.page_programs);
  state.counters["device_ms"] = cost.TimeUs(model) / 1000.0;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(entries));
}
BENCHMARK(BM_ReorganizeCost)->Arg(10000)->Arg(50000)->Arg(200000);

}  // namespace

BENCHMARK_MAIN();
