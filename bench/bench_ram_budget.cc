// RAM-budget ablation (DESIGN.md §5, the tutorial's co-design question):
// how does the MCU RAM budget shape each treatment's feasibility and IO?
//
// Shapes: external-sort flash IO falls as the budget grows until the merge
// becomes single-pass (then flat — more RAM buys nothing); pipeline search
// feasibility is a step function at keywords * page_size; streaming
// aggregation caps the group count linearly in the budget.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "embdb/executor.h"
#include "flash/flash.h"
#include "logstore/external_sort.h"
#include "mcu/calibration.h"
#include "mcu/ram_gauge.h"
#include "search/search_engine.h"

namespace {

pds::flash::Geometry BigGeometry() {
  pds::flash::Geometry g;
  g.page_size = 2048;
  g.pages_per_block = 64;
  g.block_count = 4096;
  return g;
}

// External sort of 100k 32-byte entries under a budget sweep.
void BM_SortUnderBudget(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0)) * 1024;
  const uint64_t n = 100000;
  pds::flash::Stats io;
  size_t runs = 0;
  for (auto _ : state) {
    auto chip = std::make_unique<pds::flash::FlashChip>(BigGeometry());
    pds::flash::PartitionAllocator alloc(chip.get());
    pds::mcu::RamGauge gauge(budget + 8 * 1024);
    pds::logstore::ExternalSorter::Options opts;
    opts.record_size = 32;
    opts.ram_budget_bytes = budget;
    pds::logstore::ExternalSorter sorter(&alloc, opts, &gauge);
    pds::Rng rng(7);
    uint8_t rec[32] = {0};
    for (uint64_t i = 0; i < n; ++i) {
      pds::EncodeU64BE(rec, rng.Next());
      (void)sorter.Add(pds::ByteView(rec, 32));
    }
    runs = sorter.num_runs() + 1;
    chip->ResetStats();
    benchmark::DoNotOptimize(
        sorter.Finish([](pds::ByteView) { return pds::Status::Ok(); }));
    io = chip->stats();
  }
  state.counters["budget_kb"] = static_cast<double>(budget) / 1024;
  state.counters["merge_reads"] = static_cast<double>(io.page_reads);
  state.counters["merge_programs"] = static_cast<double>(io.page_programs);
  state.counters["initial_runs"] = static_cast<double>(runs);
  state.counters["single_pass_needs_kb"] =
      static_cast<double>(pds::mcu::SinglePassSortRam(n, 32, 2048)) / 1024;
}
BENCHMARK(BM_SortUnderBudget)->Arg(2)->Arg(8)->Arg(32)->Arg(96)->Arg(256);

// Pipeline search feasibility: k-keyword query under a budget sweep.
void BM_SearchUnderBudget(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0)) * 1024;
  const int keywords = static_cast<int>(state.range(1));

  auto chip = std::make_unique<pds::flash::FlashChip>(BigGeometry());
  pds::flash::PartitionAllocator alloc(chip.get());
  pds::mcu::RamGauge gauge(budget);
  auto part = alloc.Allocate(256);
  pds::search::EmbeddedSearchEngine::Options opts;
  opts.index.num_buckets = 16;
  opts.index.insert_buffer_bytes = 1024;
  pds::search::EmbeddedSearchEngine engine(*part, &gauge, opts);
  bool init_ok = engine.Init().ok();
  if (init_ok) {
    pds::Rng rng(5);
    for (int d = 0; d < 500; ++d) {
      std::string text;
      for (int w = 0; w < 8; ++w) {
        text += "term" + std::to_string(rng.Uniform(50)) + " ";
      }
      (void)engine.AddDocument(text);
    }
    (void)engine.Flush();
  }
  std::vector<std::string> query;
  for (int k = 0; k < keywords; ++k) {
    query.push_back("term" + std::to_string(3 + k));
  }

  bool feasible = false;
  for (auto _ : state) {
    if (!init_ok) {
      continue;
    }
    auto results = engine.Search(query, 10);
    feasible = results.ok();
    benchmark::DoNotOptimize(results);
  }
  state.counters["budget_kb"] = static_cast<double>(budget) / 1024;
  state.counters["keywords"] = keywords;
  state.counters["feasible"] = (init_ok && feasible) ? 1 : 0;
  state.counters["needed_bytes"] = static_cast<double>(
      pds::mcu::SearchQueryRam(static_cast<size_t>(keywords), 2048, 10, 16,
                               1024));
}
BENCHMARK(BM_SearchUnderBudget)
    ->Args({4, 1})
    ->Args({4, 3})
    ->Args({8, 3})
    ->Args({16, 5})
    ->Args({64, 5});

// Streaming aggregation: max distinct groups before the budget trips.
void BM_AggregationGroupCapacity(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0)) * 1024;
  uint64_t max_groups = 0;
  for (auto _ : state) {
    pds::mcu::RamGauge gauge(budget);
    pds::embdb::Aggregator agg(pds::embdb::Aggregator::Func::kSum, &gauge);
    max_groups = 0;
    for (uint64_t g = 0; g < 1u << 20; ++g) {
      if (!agg.Add(pds::embdb::Value::U64(g), 1.0).ok()) {
        break;
      }
      ++max_groups;
    }
    benchmark::DoNotOptimize(agg.Finish());
  }
  state.counters["budget_kb"] = static_cast<double>(budget) / 1024;
  state.counters["max_groups"] = static_cast<double>(max_groups);
}
BENCHMARK(BM_AggregationGroupCapacity)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
