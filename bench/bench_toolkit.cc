// E7 — the [CKV+02] data-mining toolkit primitives (tutorial Part III,
// "Toolkits for Secure Computations"): secure sum, secure set union,
// secure size of set intersection, secure scalar product.
//
// Paper shape: secure sum is linear and cheap (symmetric masking only);
// the commutative-encryption primitives cost O(parties^2 * items) modular
// exponentiations — usable for small coalitions, painful beyond.

#include <benchmark/benchmark.h>

#include "common/rng.h"

#include "global/toolkit.h"

namespace {

using pds::global::Metrics;

void BM_SecureSum(benchmark::State& state) {
  const size_t parties = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> values(parties);
  pds::Rng value_rng(3);
  for (auto& v : values) {
    v = value_rng.Uniform(10000);
  }
  pds::Rng rng(4);
  Metrics metrics;
  for (auto _ : state) {
    metrics = Metrics();
    auto sum = pds::global::SecureSum(values, 1ULL << 40, &rng, &metrics);
    benchmark::DoNotOptimize(sum);
  }
  state.counters["messages"] = static_cast<double>(metrics.messages);
  state.counters["bytes"] = static_cast<double>(metrics.bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SecureSum)->Arg(4)->Arg(32)->Arg(128)->Arg(512);

std::vector<std::vector<std::string>> SiteSets(size_t parties,
                                               size_t items_per_site) {
  pds::Rng rng(5);
  std::vector<std::vector<std::string>> sets(parties);
  for (auto& set : sets) {
    for (size_t i = 0; i < items_per_site; ++i) {
      set.push_back("item-" + std::to_string(rng.Uniform(64)));
    }
  }
  return sets;
}

void BM_SecureSetUnion(benchmark::State& state) {
  const size_t parties = static_cast<size_t>(state.range(0));
  auto sets = SiteSets(parties, 8);
  pds::Rng rng(6);
  Metrics metrics;
  for (auto _ : state) {
    metrics = Metrics();
    auto result = pds::global::SecureSetUnion(sets, 128, &rng, &metrics);
    benchmark::DoNotOptimize(result);
  }
  state.counters["crypto_ops"] =
      static_cast<double>(metrics.token_crypto_ops);
  state.counters["bytes"] = static_cast<double>(metrics.bytes);
}
BENCHMARK(BM_SecureSetUnion)->Arg(2)->Arg(4)->Arg(8);

void BM_SecureIntersectionSize(benchmark::State& state) {
  const size_t parties = static_cast<size_t>(state.range(0));
  auto sets = SiteSets(parties, 8);
  pds::Rng rng(7);
  Metrics metrics;
  for (auto _ : state) {
    metrics = Metrics();
    auto result =
        pds::global::SecureIntersectionSize(sets, 128, &rng, &metrics);
    benchmark::DoNotOptimize(result);
  }
  state.counters["crypto_ops"] =
      static_cast<double>(metrics.token_crypto_ops);
}
BENCHMARK(BM_SecureIntersectionSize)->Arg(2)->Arg(4)->Arg(8);

void BM_SecureScalarProduct(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> a(dim), b(dim);
  pds::Rng value_rng(8);
  for (size_t i = 0; i < dim; ++i) {
    a[i] = value_rng.Uniform(100);
    b[i] = value_rng.Uniform(100);
  }
  pds::Rng rng(9);
  Metrics metrics;
  for (auto _ : state) {
    metrics = Metrics();
    auto result =
        pds::global::SecureScalarProduct(a, b, 256, &rng, &metrics);
    benchmark::DoNotOptimize(result);
  }
  state.counters["crypto_ops"] =
      static_cast<double>(metrics.token_crypto_ops);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SecureScalarProduct)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
