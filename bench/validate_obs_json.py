#!/usr/bin/env python3
"""Validates the obs exports against bench/obs_schema.json.

Usage: validate_obs_json.py [BENCH_obs.json] [trace_obs.json] [schema.json]

Checks, stdlib-only (run by bench/run_benches.sh --obs and the CI obs job):
  - the metrics file is {"records": [...]} where every record has the
    per-kind required fields, a known kind, and a numeric value;
  - every metric name the schema requires is present, and every name the
    schema lists in nonzero_names reports a value > 0 (the regression
    guard for token.ram_high_water_bytes, which once exported 0 because
    crypto ops never charged the RamGauge);
  - the trace file is {"traceEvents": [...]} of well-formed Chrome
    trace_event records ("X" complete spans / "i" instants, numeric ts,
    spans carry a numeric dur);
  - every span name and instant category the schema requires is present.

Exits 0 silently-ish on success, 1 with a list of problems otherwise.
"""

import json
import sys


def fail(problems):
    for p in problems:
        print(f"validate_obs_json: {p}", file=sys.stderr)
    sys.exit(1)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_metrics(doc, schema, problems):
    spec = schema["metrics"]
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        problems.append("metrics: 'records' missing, not a list, or empty")
        return
    names = set()
    for i, rec in enumerate(records):
        where = f"metrics record {i}"
        if not isinstance(rec, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in spec["required_record_fields"]:
            if field not in rec:
                problems.append(f"{where}: missing field '{field}'")
        kind = rec.get("kind")
        if kind not in spec["kinds"]:
            problems.append(f"{where}: unknown kind {kind!r}")
        extra = {"gauge": spec["gauge_extra_fields"],
                 "histogram": spec["histogram_extra_fields"]}.get(kind, [])
        for field in extra:
            if not is_number(rec.get(field)):
                problems.append(
                    f"{where} ({rec.get('name')}): {kind} needs numeric "
                    f"'{field}'")
        if "value" in rec and not is_number(rec["value"]):
            problems.append(f"{where}: 'value' is not numeric")
        if isinstance(rec.get("name"), str):
            names.add(rec["name"])
    for name in spec["required_names"]:
        if name not in names:
            problems.append(f"metrics: required metric '{name}' not exported")
    values = {rec.get("name"): rec.get("value")
              for rec in records if isinstance(rec, dict)}
    for name in spec.get("nonzero_names", []):
        value = values.get(name)
        if is_number(value) and value <= 0:
            problems.append(
                f"metrics: '{name}' must be > 0, exported {value}")


def check_trace(doc, schema, problems):
    spec = schema["trace"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        problems.append("trace: 'traceEvents' missing, not a list, or empty")
        return
    span_names = set()
    instant_cats = set()
    for i, ev in enumerate(events):
        where = f"trace event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in spec["required_event_fields"]:
            if field not in ev:
                problems.append(f"{where}: missing field '{field}'")
        ph = ev.get("ph")
        if ph not in spec["phases"]:
            problems.append(f"{where}: unexpected phase {ph!r}")
        if not is_number(ev.get("ts")):
            problems.append(f"{where}: 'ts' is not numeric")
        if ph == "X":
            if not is_number(ev.get("dur")):
                problems.append(f"{where}: complete span needs numeric 'dur'")
            span_names.add(ev.get("name"))
        elif ph == "i":
            instant_cats.add(ev.get("cat"))
    for name in spec["required_span_names"]:
        if name not in span_names:
            problems.append(f"trace: required span '{name}' not present")
    for cat in spec["required_instant_categories"]:
        if cat not in instant_cats:
            problems.append(
                f"trace: no instant event in category '{cat}'")


def main(argv):
    metrics_path = argv[1] if len(argv) > 1 else "BENCH_obs.json"
    trace_path = argv[2] if len(argv) > 2 else "trace_obs.json"
    schema_path = argv[3] if len(argv) > 3 else "bench/obs_schema.json"

    problems = []
    with open(schema_path) as f:
        schema = json.load(f)
    for path, checker, key in [(metrics_path, check_metrics, "metrics"),
                               (trace_path, check_trace, "trace")]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            problems.append(f"{key}: cannot load {path}: {e}")
            continue
        checker(doc, schema, problems)

    if problems:
        fail(problems)
    print(f"validate_obs_json: OK ({metrics_path}, {trace_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
