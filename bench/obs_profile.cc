// obs_profile — the one documented command that exercises the whole obs
// layer end to end and writes its two export formats:
//
//   build/bench/obs_profile --trace trace_obs.json --metrics BENCH_obs.json
//
// It (1) runs a full [TNP14] secure-aggregation round over an 8-token fleet
// on a 4-thread executor, so the trace holds the per-phase protocol spans,
// the per-unit worker spans, and the leakage + token<->SSI wire-byte instant
// events; (2) runs the tutorial's SPJ query over the TPC-D-like instance
// with a QueryProfile and verifies the per-operator page-read counts against
// the flash::Stats delta exactly; (3) exports the Chrome trace and the flat
// metrics JSON. Any mismatch or failed status exits non-zero, which is what
// the CI obs job asserts.

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "global/agg_protocols.h"
#include "obs/obs.h"
#include "workloads/tpcd.h"

namespace {

using pds::embdb::Database;
using pds::embdb::QueryProfile;
using pds::embdb::SpjExecutor;
using pds::embdb::SpjQuery;
using pds::embdb::SpjStats;
using pds::embdb::TjoinIndex;
using pds::embdb::TselectIndex;
using pds::embdb::Tuple;
using pds::workloads::LoadTpcd;
using pds::workloads::TpcdConfig;
using pds::workloads::TpcdNode;
using pds::workloads::TutorialQuery;

int Fail(const std::string& what) {
  std::cerr << "obs_profile: FAILED: " << what << "\n";
  return 1;
}

int RunProtocol() {
  pds::crypto::SymmetricKey fleet_key =
      pds::crypto::KeyFromString("obs-profile-fleet");
  std::vector<std::unique_ptr<pds::mcu::SecureToken>> tokens;
  std::vector<pds::global::Participant> participants;
  pds::Rng rng(55);
  for (uint64_t i = 0; i < 8; ++i) {
    pds::mcu::SecureToken::Config cfg;
    cfg.token_id = i;
    cfg.fleet_key = fleet_key;
    cfg.rng_seed = 100 + i;
    tokens.push_back(std::make_unique<pds::mcu::SecureToken>(cfg));
    pds::global::Participant p;
    p.token = tokens.back().get();
    int tuples = 5 + static_cast<int>(rng.Uniform(10));
    for (int t = 0; t < tuples; ++t) {
      pds::global::SourceTuple st;
      st.group = "city-" + std::to_string(rng.Uniform(5));
      st.value = static_cast<double>(rng.Uniform(100));
      p.tuples.push_back(std::move(st));
    }
    participants.push_back(std::move(p));
  }

  pds::global::FleetExecutor executor(4);
  pds::global::SecureAggProtocol::Config cfg;
  cfg.partition_capacity = 16;  // forces several aggregate rounds
  cfg.executor = &executor;
  pds::global::SecureAggProtocol protocol(cfg);
  auto output = protocol.Execute(participants, pds::global::AggFunc::kSum);
  if (!output.ok()) {
    return Fail("secure-agg protocol: " + output.status().ToString());
  }
  auto expected =
      pds::global::PlainAggregate(participants, pds::global::AggFunc::kSum);
  if (output->groups.size() != expected.size()) {
    return Fail("secure-agg group count does not match plaintext aggregation");
  }
  for (const auto& [group, value] : expected) {
    auto it = output->groups.find(group);
    if (it == output->groups.end() || std::abs(it->second - value) > 1e-9) {
      return Fail("secure-agg result mismatch for group '" + group + "'");
    }
  }
  if (output->metrics.bytes_token_to_ssi + output->metrics.bytes_ssi_to_token !=
      output->metrics.bytes) {
    return Fail("directional wire bytes do not sum to total bytes");
  }
  std::cout << "secure-agg: " << output->groups.size() << " groups, "
            << output->metrics.rounds << " rounds, "
            << output->metrics.bytes_token_to_ssi << " B token->SSI, "
            << output->metrics.bytes_ssi_to_token << " B SSI->token\n";
  return 0;
}

pds::flash::Geometry BigGeometry() {
  pds::flash::Geometry g;
  g.page_size = 2048;
  g.pages_per_block = 64;
  g.block_count = 4096;
  return g;
}

int RunSpjProfile() {
  auto chip = std::make_unique<pds::flash::FlashChip>(BigGeometry());
  pds::mcu::RamGauge build_ram(16 * 1024 * 1024);
  Database db(chip.get(), &build_ram);

  TpcdConfig cfg;
  cfg.num_suppliers = 10;
  cfg.num_customers = 50;
  cfg.num_orders = 200;
  cfg.num_partsupps = 100;
  cfg.num_lineitems = 1000;
  cfg.table_options.data_blocks = 32;
  cfg.table_options.directory_blocks = 8;
  auto inst = LoadTpcd(&db, cfg);
  if (!inst.ok()) {
    return Fail("LoadTpcd: " + inst.status().ToString());
  }

  auto tjoin = TjoinIndex::Build(inst->path, db.allocator());
  auto tsel_cust = TselectIndex::Build(inst->path, TpcdNode::kCustomer, 2,
                                       db.allocator(), &build_ram);
  auto tsel_supp = TselectIndex::Build(inst->path, TpcdNode::kSupplier, 1,
                                       db.allocator(), &build_ram);
  if (!tjoin.ok() || !tsel_cust.ok() || !tsel_supp.ok()) {
    return Fail("index build failed");
  }

  SpjQuery query = TutorialQuery(0, 1);
  pds::mcu::RamGauge token_ram(64 * 1024);
  SpjExecutor executor(inst->path, &*tjoin, {&*tsel_cust, &*tsel_supp},
                       &token_ram);
  SpjStats stats;
  QueryProfile profile;
  pds::flash::Stats before = chip->stats();
  pds::Status s = executor.Execute(
      query, [](const Tuple&) { return pds::Status::Ok(); }, &stats,
      &profile);
  if (!s.ok()) {
    return Fail("SPJ execute: " + s.ToString());
  }
  pds::flash::Stats delta = chip->stats() - before;

  std::cout << "\nEXPLAIN ANALYZE (tutorial SPJ query):\n"
            << profile.ToString() << "result rows: " << stats.result_rows
            << "\n";

  // The acceptance check: per-operator page reads must account for every
  // chip page read during the query — no unattributed I/O.
  if (profile.total_page_reads() != delta.page_reads) {
    return Fail("profile page reads (" +
                std::to_string(profile.total_page_reads()) +
                ") != flash::Stats delta (" +
                std::to_string(delta.page_reads) + ")");
  }
  std::cout << "profile page reads match flash::Stats delta ("
            << delta.page_reads << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path = "trace_obs.json";
  std::string metrics_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "usage: obs_profile [--trace FILE] [--metrics FILE]\n";
      return 2;
    }
  }

  pds::obs::Tracer& tracer = pds::obs::Tracer::Global();
  tracer.SetCapacity(1 << 16);
  tracer.SetEnabled(true);

  int rc = RunProtocol();
  if (rc == 0) {
    rc = RunSpjProfile();
  }
  tracer.SetEnabled(false);
  if (rc != 0) {
    return rc;
  }
  if (tracer.dropped() != 0) {
    return Fail("trace buffer overflowed; raise SetCapacity");
  }

  std::ofstream trace_out(trace_path, std::ios::binary);
  tracer.ExportChromeTrace(trace_out);
  trace_out.close();
  if (!trace_out) {
    return Fail("cannot write " + trace_path);
  }
  std::ofstream metrics_out(metrics_path, std::ios::binary);
  pds::obs::Registry::Global().ExportMetricsJson(metrics_out);
  metrics_out.close();
  if (!metrics_out) {
    return Fail("cannot write " + metrics_path);
  }
  std::cout << "\nwrote " << trace_path << " (" << tracer.num_events()
            << " events; open in chrome://tracing or ui.perfetto.dev)\n"
            << "wrote " << metrics_path << " ("
            << pds::obs::Registry::Global().num_metrics() << " metrics)\n";
  return 0;
}
