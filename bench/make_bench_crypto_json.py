#!/usr/bin/env python3
"""Distills google-benchmark JSON from bench_crypto_ladder and
bench_agg_protocols into BENCH_crypto.json: one record per (op, key bits)
with ns/op and the speedup of each kernel path over its scalar baseline.

Usage: make_bench_crypto_json.py <ladder.json> [<agg.json>] [<out.json>]
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)["benchmarks"]


def ns_per_op(bench):
    t = bench["real_time"] if bench.get("time_unit") == "ns" else None
    if t is None:
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        t = bench["real_time"] * scale
    return t


def index(benches):
    """name/arg -> ns per op, e.g. 'BM_PaillierDecryptCRT/256'."""
    out = {}
    for b in benches:
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = ns_per_op(b)
    return out


def main():
    ladder_path = sys.argv[1] if len(sys.argv) > 1 else "ladder.json"
    agg_path = sys.argv[2] if len(sys.argv) > 2 else None
    out_path = sys.argv[3] if len(sys.argv) > 3 else "BENCH_crypto.json"

    times = index(load(ladder_path))
    records = []

    # (op, scalar-baseline benchmark, kernel benchmark) pairs.
    pairs = [
        ("paillier_encrypt", "BM_PaillierEncryptScalar",
         "BM_PaillierEncryptCached"),
        ("paillier_decrypt", "BM_PaillierDecryptScalar",
         "BM_PaillierDecryptCRT"),
        ("modexp", "BM_ModExpSchoolbook", "BM_ModExpMontgomery"),
    ]
    bit_sizes = [256, 512, 1024, 2048]
    for op, scalar_name, kernel_name in pairs:
        for bits in bit_sizes:
            scalar = times.get(f"{scalar_name}/{bits}")
            kernel = times.get(f"{kernel_name}/{bits}")
            if scalar is None or kernel is None:
                continue
            records.append({
                "op": op,
                "key_bits": bits,
                "scalar_ns_per_op": round(scalar, 1),
                "kernel_ns_per_op": round(kernel, 1),
                "speedup_vs_scalar": round(scalar / kernel, 2),
            })

    if agg_path:
        agg = index(load(agg_path))
        for proto, name in [("secure_agg", "BM_SecureAggThreads"),
                            ("white_noise", "BM_WhiteNoiseThreads"),
                            ("histogram", "BM_HistogramThreads")]:
            base = agg.get(f"{name}/1/real_time")
            if base is None:
                continue
            for threads in (1, 2, 4, 8):
                t = agg.get(f"{name}/{threads}/real_time")
                if t is None:
                    continue
                records.append({
                    "op": f"fleet_{proto}_100pds",
                    "threads": threads,
                    "ns_per_op": round(t, 1),
                    "speedup_vs_1_thread": round(base / t, 2),
                })

    with open(out_path, "w") as f:
        json.dump({"records": records}, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path} ({len(records)} records)")


if __name__ == "__main__":
    main()
