#!/usr/bin/env python3
"""Distills google-benchmark JSON from bench_crypto_ladder and
bench_agg_protocols into BENCH_crypto.json: one record per (op, key bits)
with ns/op and the speedup of each kernel path over its scalar baseline.
Benchmarks that ran with repetitions contribute their _median aggregate;
other aggregates (mean/stddev/cv) are skipped.

Usage: make_bench_crypto_json.py <ladder.json> [<agg.json>] [<out.json>]
                                 [--rounds <rounds.json>]

--rounds merges the per-round records emitted by crypto_round_bench
(fleet-size-64 per-op vs slot-packed Paillier rounds) verbatim.
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)["benchmarks"]


def ns_per_op(bench):
    t = bench["real_time"] if bench.get("time_unit") == "ns" else None
    if t is None:
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        t = bench["real_time"] * scale
    return t


def canonical_name(name):
    """Strips run decorations: 'BM_X/256/min_warmup_time:0.050/repeats:5'
    and trailing '_median' etc. collapse to 'BM_X/256'."""
    for suffix in ("_mean", "_median", "_stddev", "_cv"):
        if name.endswith(suffix):
            name = name[: -len(suffix)]
    parts = [p for p in name.split("/")
             if not p.startswith(("min_warmup_time:", "min_time:",
                                  "repeats:"))]
    return "/".join(parts)


def index(benches):
    """name/arg -> ns per op, e.g. 'BM_PaillierDecryptCRT/256'.

    A benchmark run with repetitions reports per-rep iteration rows plus
    mean/median/stddev/cv aggregates; the median wins over any iteration
    row of the same name, and non-median aggregates are dropped.
    """
    out = {}
    medians = {}
    for b in benches:
        name = canonical_name(b["name"])
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[name] = ns_per_op(b)
            continue
        out.setdefault(name, ns_per_op(b))
    out.update(medians)
    return out


def main():
    argv = list(sys.argv[1:])
    rounds_path = None
    if "--rounds" in argv:
        i = argv.index("--rounds")
        rounds_path = argv[i + 1]
        del argv[i:i + 2]
    ladder_path = argv[0] if len(argv) > 0 else "ladder.json"
    agg_path = argv[1] if len(argv) > 1 else None
    if agg_path == "-":  # placeholder: no fleet thread sweep this run
        agg_path = None
    out_path = argv[2] if len(argv) > 2 else "BENCH_crypto.json"

    times = index(load(ladder_path))
    records = []

    # (op, scalar-baseline benchmark, kernel benchmark) pairs.
    pairs = [
        ("paillier_encrypt", "BM_PaillierEncryptScalar",
         "BM_PaillierEncryptCached"),
        ("paillier_decrypt", "BM_PaillierDecryptScalar",
         "BM_PaillierDecryptCRT"),
        ("modexp", "BM_ModExpSchoolbook", "BM_ModExpMontgomery"),
    ]
    bit_sizes = [256, 512, 1024, 2048]
    for op, scalar_name, kernel_name in pairs:
        for bits in bit_sizes:
            scalar = times.get(f"{scalar_name}/{bits}")
            kernel = times.get(f"{kernel_name}/{bits}")
            if scalar is None or kernel is None:
                continue
            records.append({
                "op": op,
                "key_bits": bits,
                "scalar_ns_per_op": round(scalar, 1),
                "kernel_ns_per_op": round(kernel, 1),
                "speedup_vs_scalar": round(scalar / kernel, 2),
            })

    if agg_path:
        agg = index(load(agg_path))
        for proto, name in [("secure_agg", "BM_SecureAggThreads"),
                            ("white_noise", "BM_WhiteNoiseThreads"),
                            ("histogram", "BM_HistogramThreads")]:
            base = agg.get(f"{name}/1/real_time")
            if base is None:
                continue
            for threads in (1, 2, 4, 8):
                t = agg.get(f"{name}/{threads}/real_time")
                if t is None:
                    continue
                records.append({
                    "op": f"fleet_{proto}_100pds",
                    "threads": threads,
                    "ns_per_op": round(t, 1),
                    "speedup_vs_1_thread": round(base / t, 2),
                })

    if rounds_path:
        with open(rounds_path) as f:
            records.extend(json.load(f)["records"])

    with open(out_path, "w") as f:
        json.dump({"records": records}, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path} ({len(records)} records)")


if __name__ == "__main__":
    main()
