// E5 — the tutorial's pipeline SPJ query on the TPC-D-like schema:
//   SELECT ... FROM CUSTOMER, ORDERS, LINEITEM, PARTSUPP, SUPPLIER
//   WHERE (joins) AND CUS.mktsegment='HOUSEHOLD' AND SUP.name='SUPPLIER-1'
//
// Pipeline plan: Tselect on CUS.mktsegment and SUP.name give *sorted*
// LINEITEM rowids, merged by intersection, then the Tjoin index + tuple
// fetches materialize each surviving row — bounded RAM.
// Baseline: RAM-materializing hash join ("Join algorithms consume lots of
// RAM") whose footprint grows with the database and bursts the 64 KB MCU.

#include <benchmark/benchmark.h>

#include "common/rng.h"

#include <map>
#include <memory>

#include "workloads/tpcd.h"

namespace {

using pds::embdb::Database;
using pds::embdb::NaiveHashJoinSpj;
using pds::embdb::SpjExecutor;
using pds::embdb::SpjQuery;
using pds::embdb::SpjStats;
using pds::embdb::TjoinIndex;
using pds::embdb::TselectIndex;
using pds::embdb::Tuple;
using pds::workloads::LoadTpcd;
using pds::workloads::TpcdConfig;
using pds::workloads::TpcdInstance;
using pds::workloads::TpcdNode;
using pds::workloads::TutorialQuery;

pds::flash::Geometry BigGeometry() {
  pds::flash::Geometry g;
  g.page_size = 2048;
  g.pages_per_block = 64;
  g.block_count = 4096;
  return g;
}

struct Fixture {
  std::unique_ptr<pds::flash::FlashChip> chip;
  std::unique_ptr<pds::mcu::RamGauge> gauge;
  std::unique_ptr<Database> db;
  TpcdInstance inst;
  std::unique_ptr<TjoinIndex> tjoin;
  std::unique_ptr<TselectIndex> tsel_cust;
  std::unique_ptr<TselectIndex> tsel_supp;
  pds::flash::Stats index_build_cost;
};

std::unique_ptr<Fixture> Build(uint64_t scale) {
  auto f = std::make_unique<Fixture>();
  f->chip = std::make_unique<pds::flash::FlashChip>(BigGeometry());
  f->gauge = std::make_unique<pds::mcu::RamGauge>(16 * 1024 * 1024);
  f->db = std::make_unique<Database>(f->chip.get(), f->gauge.get());

  TpcdConfig cfg;
  cfg.num_suppliers = 10 * scale;
  cfg.num_customers = 50 * scale;
  cfg.num_orders = 200 * scale;
  cfg.num_partsupps = 100 * scale;
  cfg.num_lineitems = 1000 * scale;
  cfg.table_options.data_blocks = static_cast<uint32_t>(32 * scale);
  cfg.table_options.directory_blocks = static_cast<uint32_t>(8 * scale);
  auto inst = LoadTpcd(f->db.get(), cfg);
  if (!inst.ok()) {
    return nullptr;
  }
  f->inst = *inst;

  pds::flash::Stats before = f->chip->stats();
  auto tjoin = TjoinIndex::Build(f->inst.path, f->db->allocator());
  auto tc = TselectIndex::Build(f->inst.path, TpcdNode::kCustomer, 2,
                                f->db->allocator(), f->gauge.get());
  auto ts = TselectIndex::Build(f->inst.path, TpcdNode::kSupplier, 1,
                                f->db->allocator(), f->gauge.get());
  if (!tjoin.ok() || !tc.ok() || !ts.ok()) {
    return nullptr;
  }
  f->index_build_cost = f->chip->stats() - before;
  f->tjoin = std::make_unique<TjoinIndex>(std::move(tjoin).value());
  f->tsel_cust = std::make_unique<TselectIndex>(std::move(tc).value());
  f->tsel_supp = std::make_unique<TselectIndex>(std::move(ts).value());
  return f;
}

Fixture* Cached(uint64_t scale) {
  static std::map<uint64_t, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    it = cache.emplace(scale, Build(scale)).first;
  }
  return it->second.get();
}

void BM_TjoinPipelineSpj(benchmark::State& state) {
  Fixture* f = Cached(static_cast<uint64_t>(state.range(0)));
  SpjQuery query = TutorialQuery(0, 1);
  // Run under the real 64 KB token budget.
  pds::mcu::RamGauge token_ram(64 * 1024);
  SpjExecutor executor(f->inst.path, f->tjoin.get(),
                       {f->tsel_cust.get(), f->tsel_supp.get()}, &token_ram);
  SpjStats stats;
  uint64_t reads = 0;
  bool ok = true;
  for (auto _ : state) {
    f->chip->ResetStats();
    token_ram.ResetHighWater();
    auto s = executor.Execute(
        query, [](const Tuple&) { return pds::Status::Ok(); }, &stats);
    ok = s.ok();
    benchmark::DoNotOptimize(s);
    reads = f->chip->stats().page_reads;
  }
  state.counters["page_reads"] = static_cast<double>(reads);
  state.counters["ram_high_water"] =
      static_cast<double>(token_ram.high_water());
  state.counters["result_rows"] = static_cast<double>(stats.result_rows);
  state.counters["fits_64k"] = ok ? 1 : 0;
  state.counters["index_build_programs"] =
      static_cast<double>(f->index_build_cost.page_programs);
}
BENCHMARK(BM_TjoinPipelineSpj)->Arg(1)->Arg(4)->Arg(16);

void BM_NaiveHashJoinSpj(benchmark::State& state) {
  Fixture* f = Cached(static_cast<uint64_t>(state.range(0)));
  SpjQuery query = TutorialQuery(0, 1);
  // Unbounded gauge first, to measure the true RAM footprint.
  pds::mcu::RamGauge big_ram(1ULL << 30);
  NaiveHashJoinSpj naive(f->inst.path, &big_ram);
  SpjStats stats;
  uint64_t reads = 0;
  for (auto _ : state) {
    f->chip->ResetStats();
    big_ram.ResetHighWater();
    auto s = naive.Execute(
        query, [](const Tuple&) { return pds::Status::Ok(); }, &stats);
    benchmark::DoNotOptimize(s);
    reads = f->chip->stats().page_reads;
  }
  state.counters["page_reads"] = static_cast<double>(reads);
  state.counters["ram_high_water"] =
      static_cast<double>(big_ram.high_water());
  state.counters["result_rows"] = static_cast<double>(stats.result_rows);

  // Would it run on the token?
  pds::mcu::RamGauge token_ram(64 * 1024);
  NaiveHashJoinSpj constrained(f->inst.path, &token_ram);
  auto s = constrained.Execute(
      query, [](const Tuple&) { return pds::Status::Ok(); }, &stats);
  state.counters["fits_64k"] = s.ok() ? 1 : 0;
}
BENCHMARK(BM_NaiveHashJoinSpj)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
