// sim_bench — the documented driver for the simulated-fleet numbers:
//
//   build/bench/sim_bench --out BENCH_sim.json [--max-tokens N]
//
// It sweeps [TNP14] secure aggregation over SimFleet — the real SsiServer
// and TokenClient state machines over SimTransport links on virtual time —
// for fleet sizes 1k / 10k / 100k / 1M in ONE process, recording
// rounds-to-convergence, measured wire bytes, virtual round-trip latency
// percentiles, event counts, and aggregate-memory accounting per run. It
// then runs the quorum-sensitivity scenarios (every 10th token dropped:
// quorum 1.0 must fail, quorum 0.85 must complete with the shortfall
// recorded), the churn-tolerance scenario (run, churn and re-admit every
// 10th token, run again at full strength), and the determinism probe (the
// same seed twice must produce byte-identical records). Any unexpected
// outcome exits non-zero, which is what the CI schema check builds on.
//
// --max-tokens caps the sweep (CI smoke uses 10000); the committed
// BENCH_sim.json comes from the full million-token sweep.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sim_fleet.h"

namespace {

using pds::global::AggFunc;
using pds::sim::LinkModel;
using pds::sim::SimFleet;
using pds::sim::SimFleetConfig;

struct RunRecord {
  std::string section;
  size_t fleet_size = 0;
  double quorum = 1.0;
  size_t dropped_tokens = 0;
  size_t churned_tokens = 0;
  bool ok = false;
  size_t groups = 0;
  size_t responders = 0;
  uint64_t missing_tokens = 0;
  uint64_t rounds = 0;
  uint64_t retries = 0;
  uint64_t deadline_hits = 0;
  uint64_t bytes = 0;
  uint64_t bytes_token_to_ssi = 0;
  uint64_t bytes_ssi_to_token = 0;
  uint64_t frames = 0;
  uint64_t tuples = 0;
  uint64_t events = 0;       // discrete events executed
  double sim_ms = 0;         // virtual time consumed
  double wall_ms = 0;        // real time consumed
  double tuples_per_sec = 0; // real-time protocol throughput
  double rtt_p50_us = 0;     // modeled (virtual-time) round-trip latency
  double rtt_p90_us = 0;
  double rtt_p99_us = 0;
  double rtt_p999_us = 0;
  uint64_t rtt_samples = 0;
  uint64_t mem_bytes_estimate = 0;
  uint64_t mem_vm_hwm_kb = 0;
  uint64_t mem_bytes_per_token = 0;
};

int Fail(const std::string& what) {
  std::cerr << "sim_bench: FAILED: " << what << "\n";
  return 1;
}

/// The sweep's link: a plausible wide-area edge link so the modeled RTT
/// percentiles mean something (2 ms base one-way latency, 1 ms jitter).
LinkModel SweepLink() {
  LinkModel link;
  link.base_latency_us = 2000;
  link.jitter_us = 1000;
  return link;
}

void Distill(SimFleet* fleet, const pds::Result<pds::global::AggOutput>& out,
             double wall_ms, RunRecord* rec) {
  rec->fleet_size = fleet->config().num_tokens;
  rec->quorum = fleet->config().quorum;
  rec->dropped_tokens = fleet->dropped_tokens();
  rec->churned_tokens = fleet->churned_tokens();
  rec->ok = out.ok();
  rec->tuples = fleet->total_tuples();
  rec->wall_ms = wall_ms;
  rec->sim_ms = static_cast<double>(fleet->clock().NowNs()) / 1e6;
  rec->events = fleet->clock().events_run();
  rec->frames = fleet->net().stats().frames_delivered;
  const auto& report = fleet->server().last_report();
  rec->responders = report.responders;
  rec->missing_tokens = report.missing_tokens;
  rec->retries = report.retries;
  rec->deadline_hits = report.deadline_hits;
  const pds::obs::Histogram& rtt = fleet->server().rtt_histogram();
  rec->rtt_p50_us = rtt.Percentile(50);
  rec->rtt_p90_us = rtt.Percentile(90);
  rec->rtt_p99_us = rtt.Percentile(99);
  rec->rtt_p999_us = rtt.Percentile(99.9);
  rec->rtt_samples = rtt.count();
  SimFleet::MemoryStats mem = fleet->Memory();
  rec->mem_bytes_estimate = mem.bytes_estimate;
  rec->mem_vm_hwm_kb = mem.vm_hwm_kb;
  rec->mem_bytes_per_token = mem.bytes_per_token;
  if (out.ok()) {
    rec->groups = out->groups.size();
    rec->rounds = out->metrics.rounds;
    rec->bytes = out->metrics.bytes;
    rec->bytes_token_to_ssi = out->metrics.bytes_token_to_ssi;
    rec->bytes_ssi_to_token = out->metrics.bytes_ssi_to_token;
    if (wall_ms > 0) {
      rec->tuples_per_sec =
          static_cast<double>(rec->tuples) / (wall_ms / 1000.0);
    }
  }
}

/// Build + one protocol run under `cfg`, distilled into `rec`.
int RunOnce(const SimFleetConfig& cfg, const std::string& what,
            RunRecord* rec, bool expect_ok) {
  SimFleet fleet(cfg);
  auto t0 = std::chrono::steady_clock::now();
  auto built = fleet.Build();
  if (!built.ok()) {
    return Fail(what + ": Build: " + built.ToString());
  }
  auto out = fleet.RunSecureAggregation(AggFunc::kSum);
  auto t1 = std::chrono::steady_clock::now();
  if (fleet.pump_errors() != 0) {
    return Fail(what + ": " + std::to_string(fleet.pump_errors()) +
                " fatal pump errors");
  }
  Distill(&fleet, out,
          std::chrono::duration<double, std::milli>(t1 - t0).count(), rec);
  if (expect_ok && !out.ok()) {
    return Fail(what + ": " + out.status().ToString());
  }
  if (!expect_ok && out.ok()) {
    return Fail(what + ": expected a quorum shortfall, run succeeded");
  }
  return 0;
}

void WriteRecord(std::ostream& out, const RunRecord& r, bool last) {
  out << "    {\"section\": \"" << r.section << "\""
      << ", \"fleet_size\": " << r.fleet_size
      << ", \"quorum\": " << r.quorum
      << ", \"dropped_tokens\": " << r.dropped_tokens
      << ", \"churned_tokens\": " << r.churned_tokens
      << ", \"ok\": " << (r.ok ? "true" : "false")
      << ", \"groups\": " << r.groups
      << ", \"responders\": " << r.responders
      << ", \"missing_tokens\": " << r.missing_tokens
      << ", \"rounds\": " << r.rounds
      << ", \"retries\": " << r.retries
      << ", \"deadline_hits\": " << r.deadline_hits
      << ", \"bytes\": " << r.bytes
      << ", \"bytes_token_to_ssi\": " << r.bytes_token_to_ssi
      << ", \"bytes_ssi_to_token\": " << r.bytes_ssi_to_token
      << ", \"frames\": " << r.frames
      << ", \"tuples\": " << r.tuples
      << ", \"events\": " << r.events
      << ", \"sim_ms\": " << r.sim_ms
      << ", \"wall_ms\": " << r.wall_ms
      << ", \"tuples_per_sec\": " << r.tuples_per_sec
      << ", \"rtt_p50_us\": " << r.rtt_p50_us
      << ", \"rtt_p90_us\": " << r.rtt_p90_us
      << ", \"rtt_p99_us\": " << r.rtt_p99_us
      << ", \"rtt_p999_us\": " << r.rtt_p999_us
      << ", \"rtt_samples\": " << r.rtt_samples
      << ", \"mem_bytes_estimate\": " << r.mem_bytes_estimate
      << ", \"mem_vm_hwm_kb\": " << r.mem_vm_hwm_kb
      << ", \"mem_bytes_per_token\": " << r.mem_bytes_per_token << "}"
      << (last ? "\n" : ",\n");
}

/// A record's identity for the determinism probe: everything except the
/// real-time fields (wall_ms, throughput, VmHWM), which may legitimately
/// differ between two runs of the same virtual scenario.
std::string DeterministicKey(const RunRecord& r) {
  std::ostringstream key;
  key << r.ok << '|' << r.groups << '|' << r.responders << '|'
      << r.missing_tokens << '|' << r.rounds << '|' << r.retries << '|'
      << r.deadline_hits << '|' << r.bytes << '|' << r.bytes_token_to_ssi
      << '|' << r.bytes_ssi_to_token << '|' << r.frames << '|' << r.tuples
      << '|' << r.events << '|' << r.sim_ms << '|' << r.rtt_p50_us << '|'
      << r.rtt_p90_us << '|' << r.rtt_p99_us << '|' << r.rtt_p999_us << '|'
      << r.rtt_samples;
  return key.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sim.json";
  size_t max_tokens = 1000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-tokens") == 0 && i + 1 < argc) {
      max_tokens = static_cast<size_t>(std::stoull(argv[++i]));
    } else {
      std::cerr << "usage: sim_bench [--out FILE] [--max-tokens N]\n";
      return 2;
    }
  }

  std::vector<RunRecord> records;

  // --- Sweep: fleet sizes 1k -> 1M, one process, virtual time. ---
  for (size_t n : {size_t{1000}, size_t{10000}, size_t{100000},
                   size_t{1000000}}) {
    if (n > max_tokens) {
      continue;
    }
    SimFleetConfig cfg;
    cfg.num_tokens = n;
    cfg.link = SweepLink();
    RunRecord rec;
    rec.section = "sweep";
    std::cerr << "sim_bench: sweep fleet_size=" << n << " ...\n";
    if (RunOnce(cfg, "sweep n=" + std::to_string(n), &rec,
                /*expect_ok=*/true) != 0) {
      return 1;
    }
    if (rec.bytes != rec.bytes_token_to_ssi + rec.bytes_ssi_to_token) {
      return Fail("directional wire bytes do not sum to total bytes");
    }
    if (rec.responders != n) {
      return Fail("sweep run lost responders on a lossless link");
    }
    records.push_back(rec);
  }
  if (records.empty()) {
    return Fail("--max-tokens excluded every sweep size");
  }

  // --- Quorum sensitivity: every 10th token swallows all rounds. ---
  for (double quorum : {1.0, 0.85}) {
    SimFleetConfig cfg;
    cfg.num_tokens = 1000;
    cfg.link = SweepLink();
    cfg.dropout_every = 10;  // 100 dropouts
    cfg.quorum = quorum;
    cfg.deadline_ms = 50;  // virtual: timeouts cost nothing real
    cfg.max_retries = 1;
    RunRecord rec;
    rec.section = "quorum";
    std::cerr << "sim_bench: quorum=" << quorum << " ...\n";
    if (RunOnce(cfg, "quorum " + std::to_string(quorum), &rec,
                /*expect_ok=*/quorum < 1.0) != 0) {
      return 1;
    }
    if (quorum < 1.0 && rec.missing_tokens != 100) {
      return Fail("quorum run did not record the expected 100 dropouts");
    }
    records.push_back(rec);
  }

  // --- Churn tolerance: run, churn every 10th token, run again. ---
  {
    SimFleetConfig cfg;
    cfg.num_tokens = 1000;
    cfg.link = SweepLink();
    SimFleet fleet(cfg);
    std::cerr << "sim_bench: churn ...\n";
    auto built = fleet.Build();
    if (!built.ok()) {
      return Fail("churn: Build: " + built.ToString());
    }
    auto first = fleet.RunSecureAggregation(AggFunc::kSum);
    if (!first.ok()) {
      return Fail("churn round 1: " + first.status().ToString());
    }
    auto churned = fleet.ChurnAndReadmit(10);
    if (!churned.ok()) {
      return Fail("churn readmit: " + churned.ToString());
    }
    auto t0 = std::chrono::steady_clock::now();
    auto second = fleet.RunSecureAggregation(AggFunc::kSum);
    auto t1 = std::chrono::steady_clock::now();
    if (!second.ok()) {
      return Fail("churn round 2: " + second.status().ToString());
    }
    RunRecord rec;
    rec.section = "churn";
    Distill(&fleet, second,
            std::chrono::duration<double, std::milli>(t1 - t0).count(),
            &rec);
    if (rec.churned_tokens != 100) {
      return Fail("churn did not re-admit the expected 100 tokens");
    }
    if (rec.responders != 1000) {
      return Fail("post-churn round did not run at full strength");
    }
    if (first->groups != second->groups) {
      return Fail("aggregate drifted across churn");
    }
    records.push_back(rec);
  }

  // --- Determinism probe: the same seed twice, identical records. ---
  bool deterministic = false;
  {
    SimFleetConfig cfg;
    cfg.num_tokens = 500;
    cfg.link = SweepLink();
    cfg.deadline_ms = 100;
    cfg.quorum = 0.95;  // loss may legitimately cost a straggler or two
    // Loss goes live only after Build: the attestation handshake has no
    // retry machinery, but protocol rounds do — which is exactly the
    // machinery this probe wants exercised.
    LinkModel lossy = cfg.link;
    lossy.loss_rate = 0.01;
    auto run = [&](const std::string& what, RunRecord* rec) {
      SimFleet fleet(cfg);
      auto t0 = std::chrono::steady_clock::now();
      auto built = fleet.Build();
      if (!built.ok()) {
        return Fail(what + ": Build: " + built.ToString());
      }
      fleet.net().set_model(lossy);
      auto out = fleet.RunSecureAggregation(AggFunc::kSum);
      auto t1 = std::chrono::steady_clock::now();
      if (!out.ok()) {
        return Fail(what + ": " + out.status().ToString());
      }
      Distill(&fleet, out,
              std::chrono::duration<double, std::milli>(t1 - t0).count(),
              rec);
      return 0;
    };
    RunRecord a;
    a.section = "determinism";
    RunRecord b;
    b.section = "determinism";
    std::cerr << "sim_bench: determinism probe ...\n";
    if (run("determinism run A", &a) != 0 ||
        run("determinism run B", &b) != 0) {
      return 1;
    }
    deterministic = DeterministicKey(a) == DeterministicKey(b);
    if (!deterministic) {
      return Fail("identical seeds produced different records:\n  A: " +
                  DeterministicKey(a) + "\n  B: " + DeterministicKey(b));
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    return Fail("cannot open " + out_path);
  }
  out << "{\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    WriteRecord(out, records[i], i + 1 == records.size());
  }
  out << "  ],\n";
  out << "  \"determinism\": {\"identical\": "
      << (deterministic ? "true" : "false") << ", \"runs\": 2, \"seed\": 55}\n";
  out << "}\n";
  std::cerr << "sim_bench: wrote " << records.size() << " records to "
            << out_path << "\n";
  return 0;
}
