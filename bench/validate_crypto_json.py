#!/usr/bin/env python3
"""Validates BENCH_crypto.json against bench/crypto_schema.json.

Usage: validate_crypto_json.py [BENCH_crypto.json] [schema.json]

Checks, stdlib-only (run by bench/run_benches.sh --crypto and the CI
crypto job):
  - the file is {"records": [...]} with a non-empty record list where
    every record's "op" is one of the schema's known kinds (kernel
    speedup, fleet thread sweep, or packed-round comparison) and carries
    that kind's required fields with numeric values;
  - every kernel record reports a positive speedup over its scalar
    baseline;
  - the round section is complete: both fleet_round_per_op and
    fleet_round_packed are present at the schema's fleet size, both
    verified against plaintext sums, and the packed record reports a
    byte-identical scalar fallback and a speedup at or above the
    schema's acceptance floor (3x).

Exits 0 on success, 1 with a list of problems otherwise.
"""

import json
import sys


def fail(problems):
    for p in problems:
        print(f"validate_crypto_json: {p}", file=sys.stderr)
    sys.exit(1)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_fields(rec, required, where, problems):
    for field in required:
        if field not in rec:
            problems.append(f"{where}: missing field '{field}'")
        elif field not in ("op", "simd_kernel") and not isinstance(
                rec[field], bool) and not is_number(rec[field]):
            problems.append(f"{where}: '{field}' is not numeric")


def check_records(doc, schema, problems):
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        problems.append("'records' missing, not a list, or empty")
        return
    round_seen = {}
    for i, rec in enumerate(records):
        where = f"record {i}"
        if not isinstance(rec, dict):
            problems.append(f"{where}: not an object")
            continue
        op = rec.get("op")
        where = f"record {i} ({op})"
        if op in schema["kernel_ops"]:
            check_fields(rec, schema["kernel_required"], where, problems)
            speedup = rec.get("speedup_vs_scalar")
            if is_number(speedup) and speedup <= 0:
                problems.append(f"{where}: non-positive speedup_vs_scalar")
        elif op in schema["thread_ops"]:
            check_fields(rec, schema["thread_required"], where, problems)
        elif op in schema["round_ops"]:
            check_fields(rec, schema["round_required"], where, problems)
            if rec.get("fleet_size") != schema["round_fleet_size"]:
                problems.append(
                    f"{where}: fleet_size != {schema['round_fleet_size']}")
            if rec.get("verified") is not True:
                problems.append(f"{where}: totals not verified")
            if op == "fleet_round_packed":
                check_fields(rec, schema["packed_required_extra"], where,
                             problems)
                if rec.get("scalar_fallback_identical") is not True:
                    problems.append(
                        f"{where}: scalar fallback not byte-identical")
                speedup = rec.get("speedup_vs_per_op")
                floor = schema["packed_min_speedup"]
                if not is_number(speedup) or speedup < floor:
                    problems.append(
                        f"{where}: speedup_vs_per_op {speedup!r} below the "
                        f"{floor}x acceptance floor")
            round_seen[op] = True
        else:
            problems.append(f"{where}: unknown op {op!r}")
    for op in schema["round_ops"]:
        if op not in round_seen:
            problems.append(f"round record '{op}' is missing")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_crypto.json"
    schema_path = (sys.argv[2] if len(sys.argv) > 2
                   else "bench/crypto_schema.json")
    problems = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail([f"cannot load {path}: {e}"])
    with open(schema_path) as f:
        schema = json.load(f)
    for field in schema["required_top_level"]:
        if field not in doc:
            problems.append(f"missing top-level field '{field}'")
    check_records(doc, schema, problems)
    if problems:
        fail(problems)
    print(f"validate_crypto_json: {path} OK "
          f"({len(doc['records'])} records)")


if __name__ == "__main__":
    main()
