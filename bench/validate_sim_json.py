#!/usr/bin/env python3
"""Validates BENCH_sim.json against bench/sim_schema.json.

Usage: validate_sim_json.py [BENCH_sim.json] [schema.json]

Checks, stdlib-only (run by bench/run_benches.sh --sim and the CI sim job):
  - the file is {"records": [...], "determinism": {...}} with a non-empty
    record list where every record carries the schema's required fields
    with numeric values;
  - the sweep covers at least `min_sweep_sizes` distinct fleet sizes, every
    sweep run succeeded at full strength (responders == fleet_size) on
    virtual time (sim_ms > 0), and wire accounting is consistent
    (bytes == token->ssi + ssi->token, rounds > 0, frames > 0);
  - round-trip percentiles are monotonic (p50 <= p90 <= p99 <= p999) and,
    on records with at least `rtt_distinct_tail_min_samples` samples,
    positive with genuinely distinct tails (p50 < p999) — small-sample
    runs are exempt, mirroring validate_net_json.py;
  - per-token memory accounting is present and the estimate scales
    linearly (bytes_per_token * fleet_size == bytes_estimate);
  - the quorum section demonstrates both sides of the contract: the
    dropout population fails the run under quorum 1.0 and completes with
    the shortfall recorded under a sub-1.0 quorum;
  - the churn section holds a successful record with churned tokens
    re-admitted and a full-strength responder count;
  - the determinism record reports identical == true for its repeated
    seeded runs.

Exits 0 on success, 1 with a list of problems otherwise.
"""

import json
import sys


def fail(problems):
    for p in problems:
        print(f"validate_sim_json: {p}", file=sys.stderr)
    sys.exit(1)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_records(doc, schema, problems):
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        problems.append("'records' missing, not a list, or empty")
        return
    sweep_sizes = set()
    quorum_failed_full = False
    quorum_passed_short = False
    churn_ok = False
    tail_min = schema.get("rtt_distinct_tail_min_samples", 200)
    for i, rec in enumerate(records):
        where = f"record {i}"
        if not isinstance(rec, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in schema["required_record_fields"]:
            if field not in rec:
                problems.append(f"{where}: missing field '{field}'")
        for field in schema["numeric_record_fields"]:
            if field in rec and not is_number(rec[field]):
                problems.append(f"{where}: '{field}' is not numeric")
        section = rec.get("section")
        if section not in schema["sections"]:
            problems.append(f"{where}: unknown section {section!r}")
        if not isinstance(rec.get("ok"), bool):
            problems.append(f"{where}: 'ok' is not a bool")
            continue
        if rec["ok"]:
            total = rec.get("bytes", 0)
            t2s = rec.get("bytes_token_to_ssi", 0)
            s2t = rec.get("bytes_ssi_to_token", 0)
            if total != t2s + s2t:
                problems.append(
                    f"{where}: bytes ({total}) != token->ssi ({t2s}) + "
                    f"ssi->token ({s2t})")
            if total <= 0:
                problems.append(f"{where}: successful run measured 0 bytes")
            if rec.get("rounds", 0) <= 0:
                problems.append(f"{where}: successful run reports 0 rounds")
            if rec.get("frames", 0) <= 0:
                problems.append(f"{where}: successful run delivered 0 frames")
        pct_fields = schema.get("percentile_record_fields", [])
        pcts = [rec.get(f) for f in pct_fields]
        if all(is_number(p) for p in pcts) and pcts:
            if any(a > b for a, b in zip(pcts, pcts[1:])):
                problems.append(
                    f"{where}: round-trip percentiles not monotonic: {pcts}")
            # Distinct tails are only a meaningful demand with enough
            # samples behind the histogram; tiny runs get a pass.
            if rec.get("rtt_samples", 0) >= tail_min and rec["ok"]:
                if pcts[0] <= 0:
                    problems.append(
                        f"{where}: {rec.get('rtt_samples')} samples but "
                        f"{pct_fields[0]} = {pcts[0]}")
                if pcts[0] >= pcts[-1]:
                    problems.append(
                        f"{where}: {rec.get('rtt_samples')} samples but the "
                        f"latency tail is flat (p50 {pcts[0]} >= p999 "
                        f"{pcts[-1]})")
        if section == "sweep":
            sweep_sizes.add(rec.get("fleet_size"))
            if not rec["ok"]:
                problems.append(f"{where}: sweep run failed")
            if rec.get("responders") != rec.get("fleet_size"):
                problems.append(
                    f"{where}: sweep run lost responders "
                    f"({rec.get('responders')}/{rec.get('fleet_size')})")
            if rec.get("sim_ms", 0) <= 0:
                problems.append(f"{where}: sweep run consumed no virtual time")
            est = rec.get("mem_bytes_estimate", 0)
            per = rec.get("mem_bytes_per_token", 0)
            n = rec.get("fleet_size", 0)
            if est <= 0 or per <= 0:
                problems.append(f"{where}: missing memory accounting")
            elif per * n != est:
                problems.append(
                    f"{where}: memory estimate not linear per token "
                    f"({per} * {n} != {est})")
        elif section == "quorum":
            if rec.get("quorum") == 1.0 and rec.get("dropped_tokens", 0) >= 1:
                quorum_failed_full = quorum_failed_full or not rec["ok"]
            if (rec.get("quorum", 1.0) < 1.0
                    and rec.get("dropped_tokens", 0) >= 1):
                quorum_passed_short = quorum_passed_short or (
                    rec["ok"] and rec.get("missing_tokens", 0) >= 1)
        elif section == "churn":
            churn_ok = churn_ok or (
                rec["ok"] and rec.get("churned_tokens", 0) >= 1
                and rec.get("responders") == rec.get("fleet_size"))
    if len(sweep_sizes) < schema.get("min_sweep_sizes", 2):
        problems.append(
            f"sweep: only {len(sweep_sizes)} fleet sizes covered, need "
            f">= {schema.get('min_sweep_sizes', 2)}")
    if not quorum_failed_full:
        problems.append(
            "quorum: no failed record for the dropout population at "
            "quorum 1.0")
    if not quorum_passed_short:
        problems.append(
            "quorum: no successful record with a reported shortfall at "
            "quorum < 1.0")
    if not churn_ok:
        problems.append(
            "churn: no successful full-strength record with re-admitted "
            "tokens")


def check_determinism(doc, problems):
    det = doc.get("determinism")
    if not isinstance(det, dict):
        problems.append("'determinism' missing or not an object")
        return
    if det.get("identical") is not True:
        problems.append(
            "determinism: repeated seeded runs were not identical")
    if not is_number(det.get("runs")) or det.get("runs", 0) < 2:
        problems.append("determinism: needs at least 2 runs")


def main(argv):
    bench_path = argv[1] if len(argv) > 1 else "BENCH_sim.json"
    schema_path = argv[2] if len(argv) > 2 else "bench/sim_schema.json"

    problems = []
    with open(schema_path) as f:
        schema = json.load(f)
    with open(bench_path) as f:
        doc = json.load(f)
    for field in schema.get("required_top_level", []):
        if field not in doc:
            problems.append(f"missing top-level field '{field}'")
    check_records(doc, schema, problems)
    check_determinism(doc, problems)
    if problems:
        fail(problems)
    n = len(doc.get("records", []))
    print(f"validate_sim_json: OK ({n} records)")


if __name__ == "__main__":
    main(sys.argv)
