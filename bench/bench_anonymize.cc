// E10 — privacy-preserving data publishing via MetaP [ANP13] (tutorial
// Part III: "this generic protocol can be used ... such as PPDP").
//
// Sweeps k and dataset size for (a) the centralized k-anonymizer (the
// algorithm) and (b) the distributed MetaP run over secure tokens (the
// protocol). Paper shape: information loss and strategies-tried grow with
// k; the distributed run finds the same strategy at a token-crypto cost
// linear in records * strategies.

#include <benchmark/benchmark.h>

#include "common/rng.h"

#include <memory>

#include "anon/metap.h"
#include "workloads/census.h"

namespace {

using pds::anon::KAnonymizer;
using pds::anon::MetapParticipant;
using pds::anon::MetapProtocol;
using pds::anon::Record;
using pds::mcu::SecureToken;

std::vector<Record> CachedCensus(uint64_t n) {
  static std::map<uint64_t, std::vector<Record>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    pds::workloads::CensusConfig cfg;
    cfg.num_records = n;
    it = cache.emplace(n, pds::workloads::GenerateCensus(cfg)).first;
  }
  return it->second;
}

void BM_CentralizedKAnonymity(benchmark::State& state) {
  auto records = CachedCensus(static_cast<uint64_t>(state.range(0)));
  KAnonymizer::Options opts;
  opts.k = static_cast<uint32_t>(state.range(1));
  opts.max_suppression_rate = 0.05;
  KAnonymizer anonymizer(pds::workloads::CensusHierarchies(), opts);
  double loss = 0;
  uint64_t suppressed = 0, classes = 0;
  for (auto _ : state) {
    auto result = anonymizer.Anonymize(records);
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      loss = result->information_loss;
      suppressed = result->suppressed;
      classes = result->num_classes;
    }
  }
  state.counters["k"] = static_cast<double>(state.range(1));
  state.counters["info_loss"] = loss;
  state.counters["suppressed"] = static_cast<double>(suppressed);
  state.counters["classes"] = static_cast<double>(classes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CentralizedKAnonymity)
    ->Args({1000, 2})
    ->Args({1000, 5})
    ->Args({1000, 20})
    ->Args({1000, 50})
    ->Args({5000, 5})
    ->Args({20000, 5});

struct MetapFleet {
  std::vector<std::unique_ptr<SecureToken>> tokens;
  std::vector<MetapParticipant> participants;
};

MetapFleet* CachedFleet(uint64_t records) {
  static std::map<uint64_t, std::unique_ptr<MetapFleet>> cache;
  auto it = cache.find(records);
  if (it == cache.end()) {
    auto fleet = std::make_unique<MetapFleet>();
    auto data = CachedCensus(records);
    pds::crypto::SymmetricKey key = pds::crypto::KeyFromString("metap");
    size_t num_nodes = 50;
    for (size_t i = 0; i < num_nodes; ++i) {
      SecureToken::Config cfg;
      cfg.token_id = i;
      cfg.fleet_key = key;
      fleet->tokens.push_back(std::make_unique<SecureToken>(cfg));
      MetapParticipant p;
      p.token = fleet->tokens.back().get();
      fleet->participants.push_back(std::move(p));
    }
    for (size_t i = 0; i < data.size(); ++i) {
      fleet->participants[i % num_nodes].records.push_back(data[i]);
    }
    it = cache.emplace(records, std::move(fleet)).first;
  }
  return it->second.get();
}

void BM_MetapDistributed(benchmark::State& state) {
  MetapFleet* fleet = CachedFleet(static_cast<uint64_t>(state.range(0)));
  KAnonymizer::Options opts;
  opts.k = static_cast<uint32_t>(state.range(1));
  opts.max_suppression_rate = 0.05;
  MetapProtocol protocol(pds::workloads::CensusHierarchies(), opts);
  double loss = 0;
  uint64_t token_ops = 0, strategies = 0, classes_seen = 0;
  for (auto _ : state) {
    auto out = protocol.Publish(fleet->participants);
    benchmark::DoNotOptimize(out);
    if (out.ok()) {
      loss = out->result.information_loss;
      token_ops = out->metrics.token_crypto_ops;
      strategies = out->strategies_tried;
      classes_seen = out->leakage.distinct_classes;
    }
  }
  state.counters["k"] = static_cast<double>(state.range(1));
  state.counters["info_loss"] = loss;
  state.counters["token_ops"] = static_cast<double>(token_ops);
  state.counters["strategies_tried"] = static_cast<double>(strategies);
  state.counters["ssi_classes_seen"] = static_cast<double>(classes_seen);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MetapDistributed)
    ->Args({1000, 2})
    ->Args({1000, 5})
    ->Args({1000, 20})
    ->Args({5000, 5});

}  // namespace

BENCHMARK_MAIN();
