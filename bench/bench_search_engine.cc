// E3 — embedded search engine (tutorial Part II, first illustration):
// pipeline top-N merge uses one flash page of RAM per query keyword vs the
// naive evaluator's container-per-docid. Sweeps corpus size and keyword
// count; reports page reads and RAM high-water.
//
// Paper shape: pipeline RAM stays flat as the corpus grows; the naive
// evaluator's RAM grows linearly with matching documents and blows the
// 64 KB budget, while both return identical rankings when naive fits.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "common/rng.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"
#include "search/search_engine.h"

namespace {

using pds::search::EmbeddedSearchEngine;

struct Fixture {
  std::unique_ptr<pds::flash::FlashChip> chip;
  std::unique_ptr<pds::mcu::RamGauge> gauge;
  std::unique_ptr<EmbeddedSearchEngine> engine;
};

std::unique_ptr<Fixture> Build(int num_docs) {
  auto f = std::make_unique<Fixture>();
  pds::flash::Geometry g;
  g.page_size = 2048;
  g.pages_per_block = 64;
  g.block_count = 2048;
  f->chip = std::make_unique<pds::flash::FlashChip>(g);
  f->gauge = std::make_unique<pds::mcu::RamGauge>(10 * 1024 * 1024);
  pds::flash::PartitionAllocator alloc(f->chip.get());
  auto part = alloc.Allocate(1536);
  if (!part.ok()) {
    return nullptr;
  }
  // A small bucket count + larger insert buffer keeps flushed bucket pages
  // reasonably full at corpus scale (underfull pages waste the partition).
  EmbeddedSearchEngine::Options opts;
  opts.index.num_buckets = 16;
  opts.index.insert_buffer_bytes = 16384;
  f->engine = std::make_unique<EmbeddedSearchEngine>(*part, f->gauge.get(),
                                                     opts);
  if (!f->engine->Init().ok()) {
    return nullptr;
  }
  // Zipf-distributed vocabulary of 1000 terms.
  pds::Rng rng(3);
  pds::ZipfSampler zipf(1000, 0.9, 5);
  for (int d = 0; d < num_docs; ++d) {
    std::string text;
    int len = 8 + static_cast<int>(rng.Uniform(16));
    for (int w = 0; w < len; ++w) {
      text += "term" + std::to_string(zipf.Sample()) + " ";
    }
    if (!f->engine->AddDocument(text).ok()) {
      return nullptr;
    }
  }
  (void)f->engine->Flush();
  return f;
}

Fixture* Cached(int num_docs) {
  static std::map<int, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(num_docs);
  if (it == cache.end()) {
    it = cache.emplace(num_docs, Build(num_docs)).first;
  }
  return it->second.get();
}

std::vector<std::string> QueryTerms(int k) {
  // Mix of common (low rank) and rarer terms.
  std::vector<std::string> q;
  for (int i = 0; i < k; ++i) {
    q.push_back("term" + std::to_string(3 + i * 17));
  }
  return q;
}

void BM_PipelineSearch(benchmark::State& state) {
  Fixture* f = Cached(static_cast<int>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  auto query = QueryTerms(static_cast<int>(state.range(1)));
  uint64_t reads = 0;
  size_t ram = 0, hits = 0;
  for (auto _ : state) {
    f->chip->ResetStats();
    f->gauge->ResetHighWater();
    auto results = f->engine->Search(query, 10);
    benchmark::DoNotOptimize(results);
    reads = f->chip->stats().page_reads;
    ram = f->gauge->high_water();
    hits = results.ok() ? results->size() : 0;
  }
  state.counters["page_reads"] = static_cast<double>(reads);
  state.counters["ram_high_water"] = static_cast<double>(ram);
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["index_pages"] =
      static_cast<double>(f->engine->num_index_pages());
}
BENCHMARK(BM_PipelineSearch)
    ->Args({1000, 1})
    ->Args({1000, 3})
    ->Args({1000, 5})
    ->Args({5000, 3})
    ->Args({20000, 3});

void BM_NaiveSearch(benchmark::State& state) {
  Fixture* f = Cached(static_cast<int>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  auto query = QueryTerms(static_cast<int>(state.range(1)));
  uint64_t reads = 0;
  size_t ram = 0;
  bool fits = true;
  for (auto _ : state) {
    f->chip->ResetStats();
    f->gauge->ResetHighWater();
    auto results = f->engine->SearchNaive(query, 10);
    benchmark::DoNotOptimize(results);
    reads = f->chip->stats().page_reads;
    ram = f->gauge->high_water();
    fits = results.ok();
  }
  state.counters["page_reads"] = static_cast<double>(reads);
  state.counters["ram_high_water"] = static_cast<double>(ram);
  state.counters["fits_64k_budget"] = ram <= 64 * 1024 ? 1 : 0;
  (void)fits;
}
BENCHMARK(BM_NaiveSearch)
    ->Args({1000, 3})
    ->Args({5000, 3})
    ->Args({20000, 3});

// Indexing throughput: documents per second into the log-only index.
void BM_IndexDocuments(benchmark::State& state) {
  pds::Rng rng(9);
  pds::ZipfSampler zipf(1000, 0.9, 11);
  for (auto _ : state) {
    state.PauseTiming();
    pds::flash::Geometry g;
    g.page_size = 2048;
    g.pages_per_block = 64;
    g.block_count = 512;
    pds::flash::FlashChip chip(g);
    pds::mcu::RamGauge gauge(128 * 1024);
    pds::flash::PartitionAllocator alloc(&chip);
    auto part = alloc.Allocate(256);
    EmbeddedSearchEngine::Options opts;
    EmbeddedSearchEngine engine(*part, &gauge, opts);
    (void)engine.Init();
    state.ResumeTiming();

    for (int d = 0; d < 1000; ++d) {
      std::string text;
      for (int w = 0; w < 12; ++w) {
        text += "term" + std::to_string(zipf.Sample()) + " ";
      }
      benchmark::DoNotOptimize(engine.AddDocument(text));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IndexDocuments);

}  // namespace

BENCHMARK_MAIN();
