// E8 — the [TNP14] protocol family trade-off (tutorial Part III, "Proposed
// Solutions"): secure-agg vs white-noise vs domain-noise vs histogram for
// the same GROUP-BY aggregate.
//
// Paper shape per protocol (tokens=100, sweeping tuples/groups/noise):
//   secure-agg   — highest token work & rounds, zero structural leakage;
//   white-noise  — one round, leakage = noisy group-size histogram;
//   domain-noise — one round, higher bandwidth, near-uniform SSI view;
//   histogram    — cheapest tokens, leakage = bucket histogram only.

#include <benchmark/benchmark.h>

#include "common/rng.h"

#include <memory>

#include "global/agg_protocols.h"

namespace {

using pds::global::AggFunc;
using pds::global::AggOutput;
using pds::global::AggregationProtocol;
using pds::global::Participant;
using pds::global::SourceTuple;
using pds::mcu::SecureToken;

struct Fleet {
  std::vector<std::unique_ptr<SecureToken>> tokens;
  std::vector<Participant> participants;
};

std::unique_ptr<Fleet> BuildFleet(size_t num_tokens, size_t tuples_per_token,
                                  uint32_t num_groups) {
  auto fleet = std::make_unique<Fleet>();
  pds::crypto::SymmetricKey key = pds::crypto::KeyFromString("agg-bench");
  pds::Rng rng(31);
  for (size_t i = 0; i < num_tokens; ++i) {
    SecureToken::Config cfg;
    cfg.token_id = i;
    cfg.fleet_key = key;
    fleet->tokens.push_back(std::make_unique<SecureToken>(cfg));
    Participant p;
    p.token = fleet->tokens.back().get();
    for (size_t t = 0; t < tuples_per_token; ++t) {
      p.tuples.push_back({"g" + std::to_string(rng.Uniform(num_groups)),
                          static_cast<double>(rng.Uniform(100))});
    }
    fleet->participants.push_back(std::move(p));
  }
  return fleet;
}

Fleet* Cached(size_t tokens, size_t tuples, uint32_t groups) {
  static std::map<std::tuple<size_t, size_t, uint32_t>,
                  std::unique_ptr<Fleet>>
      cache;
  auto key = std::make_tuple(tokens, tuples, groups);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, BuildFleet(tokens, tuples, groups)).first;
  }
  return it->second.get();
}

void ReportOutput(benchmark::State& state, const AggOutput& out) {
  state.counters["token_ops"] =
      static_cast<double>(out.metrics.token_crypto_ops);
  state.counters["bytes"] = static_cast<double>(out.metrics.bytes);
  state.counters["rounds"] = static_cast<double>(out.metrics.rounds);
  state.counters["ssi_classes"] =
      static_cast<double>(out.leakage.distinct_classes);
  state.counters["max_class_pct"] = 100.0 * out.leakage.MaxClassFraction();
  state.counters["entropy_bits"] = out.leakage.ClassEntropyBits();
}

void RunProtocol(benchmark::State& state, AggregationProtocol* protocol,
                 Fleet* fleet) {
  AggOutput last;
  for (auto _ : state) {
    auto out = protocol->Execute(fleet->participants, AggFunc::kSum);
    benchmark::DoNotOptimize(out);
    if (out.ok()) {
      last = std::move(out).value();
    }
  }
  ReportOutput(state, last);
}

// Sweep total tuples (tokens * tuples_per_token) with 10 groups.
void BM_SecureAgg(benchmark::State& state) {
  Fleet* fleet = Cached(100, static_cast<size_t>(state.range(0)), 10);
  pds::global::SecureAggProtocol protocol({/*partition_capacity=*/256});
  RunProtocol(state, &protocol, fleet);
}
BENCHMARK(BM_SecureAgg)->Arg(1)->Arg(10)->Arg(50);

void BM_WhiteNoise(benchmark::State& state) {
  Fleet* fleet = Cached(100, static_cast<size_t>(state.range(0)), 10);
  pds::global::WhiteNoiseProtocol protocol(
      {/*noise_ratio=*/0.2, /*noise_seed=*/5});
  RunProtocol(state, &protocol, fleet);
}
BENCHMARK(BM_WhiteNoise)->Arg(1)->Arg(10)->Arg(50);

void BM_DomainNoise(benchmark::State& state) {
  Fleet* fleet = Cached(100, static_cast<size_t>(state.range(0)), 10);
  pds::global::DomainNoiseProtocol::Config cfg;
  for (int g = 0; g < 10; ++g) {
    cfg.domain.push_back("g" + std::to_string(g));
  }
  cfg.fakes_per_value = 1;
  pds::global::DomainNoiseProtocol protocol(cfg);
  RunProtocol(state, &protocol, fleet);
}
BENCHMARK(BM_DomainNoise)->Arg(1)->Arg(10)->Arg(50);

void BM_Histogram(benchmark::State& state) {
  Fleet* fleet = Cached(100, static_cast<size_t>(state.range(0)), 10);
  pds::global::HistogramProtocol protocol({/*num_buckets=*/4});
  RunProtocol(state, &protocol, fleet);
}
BENCHMARK(BM_Histogram)->Arg(1)->Arg(10)->Arg(50);

// Ablation: the white-noise privacy/cost knob.
void BM_WhiteNoiseRatioAblation(benchmark::State& state) {
  Fleet* fleet = Cached(100, 10, 10);
  double ratio = static_cast<double>(state.range(0)) / 100.0;
  pds::global::WhiteNoiseProtocol protocol({ratio, 5});
  RunProtocol(state, &protocol, fleet);
  state.counters["noise_ratio_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WhiteNoiseRatioAblation)->Arg(0)->Arg(20)->Arg(100)->Arg(300);

// Ablation: histogram bucket count (leakage vs token balance).
void BM_HistogramBucketsAblation(benchmark::State& state) {
  Fleet* fleet = Cached(100, 10, 50);
  pds::global::HistogramProtocol protocol(
      {static_cast<uint32_t>(state.range(0))});
  RunProtocol(state, &protocol, fleet);
  state.counters["buckets"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_HistogramBucketsAblation)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Ablation: group cardinality at fixed volume.
void BM_SecureAggGroupsAblation(benchmark::State& state) {
  Fleet* fleet =
      Cached(100, 10, static_cast<uint32_t>(state.range(0)));
  pds::global::SecureAggProtocol protocol({256});
  RunProtocol(state, &protocol, fleet);
  state.counters["groups"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SecureAggGroupsAblation)->Arg(2)->Arg(20)->Arg(200);

// Fleet-executor thread sweep at 100 PDSs: per-token protocol work fans
// out across the pool with byte-identical output (the determinism contract
// in global/fleet_executor.h); wall-clock scaling depends on host cores.
void BM_SecureAggThreads(benchmark::State& state) {
  Fleet* fleet = Cached(100, 10, 10);
  const size_t threads = static_cast<size_t>(state.range(0));
  pds::global::FleetExecutor exec(threads);
  pds::global::SecureAggProtocol::Config cfg;
  cfg.partition_capacity = 256;
  cfg.executor = threads > 1 ? &exec : nullptr;
  pds::global::SecureAggProtocol protocol(cfg);
  RunProtocol(state, &protocol, fleet);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_SecureAggThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_WhiteNoiseThreads(benchmark::State& state) {
  Fleet* fleet = Cached(100, 10, 10);
  const size_t threads = static_cast<size_t>(state.range(0));
  pds::global::FleetExecutor exec(threads);
  pds::global::WhiteNoiseProtocol::Config cfg;
  cfg.noise_ratio = 0.2;
  cfg.noise_seed = 5;
  cfg.executor = threads > 1 ? &exec : nullptr;
  pds::global::WhiteNoiseProtocol protocol(cfg);
  RunProtocol(state, &protocol, fleet);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_WhiteNoiseThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_HistogramThreads(benchmark::State& state) {
  Fleet* fleet = Cached(100, 10, 10);
  const size_t threads = static_cast<size_t>(state.range(0));
  pds::global::FleetExecutor exec(threads);
  pds::global::HistogramProtocol::Config cfg;
  cfg.num_buckets = 4;
  cfg.executor = threads > 1 ? &exec : nullptr;
  pds::global::HistogramProtocol protocol(cfg);
  RunProtocol(state, &protocol, fleet);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_HistogramThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
