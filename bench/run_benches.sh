#!/usr/bin/env bash
# Runs the crypto-kernel and fleet-executor benchmarks and distills them
# into BENCH_crypto.json at the repo root (op, key bits, ns/op, speedup of
# each kernel path over its scalar baseline; thread sweep at 100 PDSs).
#
# With --obs, instead runs the obs end-to-end driver (one secure-aggregation
# round + one profiled SPJ query) and leaves BENCH_obs.json plus
# trace_obs.json (Chrome trace_event format) at the repo root.
#
# With --net, instead runs the real-wire driver (secure aggregation over
# framed transports: fleet-size sweep on in-process and Unix-socket
# loopback, plus the dropped-token quorum scenarios) and leaves
# BENCH_net.json — now with per-sweep round-trip latency percentiles —
# plus trace_net.json (the merged cross-process Chrome trace: token round
# spans parented under SSI round-trip spans) at the repo root.
#
# With --sim, instead runs the simulated-fleet driver (secure aggregation
# over SimTransport links on virtual time: the fleet-size sweep 1k -> 1M in
# one process, quorum-sensitivity and churn-tolerance scenarios, and the
# seed-determinism probe) and leaves BENCH_sim.json at the repo root.
#
# With --crypto, runs only the crypto hot path: the kernel-vs-scalar
# ladder rungs (median of N repetitions after warmup) plus the
# crypto_round_bench driver (per-op vs slot-packed Paillier fleet round at
# fleet size 64, plaintext- and scalar-fallback-verified), merges both
# into BENCH_crypto.json and validates it against bench/crypto_schema.json.
# The default (flagless) run produces the same file plus the fleet-executor
# thread sweep.
#
# Usage: bench/run_benches.sh [--obs|--net|--sim|--crypto] [build_dir]
#                             (default build_dir: build)
set -euo pipefail

cd "$(dirname "$0")/.."

OBS_MODE=0
NET_MODE=0
SIM_MODE=0
CRYPTO_MODE=0
if [[ "${1:-}" == "--obs" ]]; then
  OBS_MODE=1
  shift
elif [[ "${1:-}" == "--net" ]]; then
  NET_MODE=1
  shift
elif [[ "${1:-}" == "--sim" ]]; then
  SIM_MODE=1
  shift
elif [[ "${1:-}" == "--crypto" ]]; then
  CRYPTO_MODE=1
  shift
fi
BUILD_DIR="${1:-build}"

if [[ "$SIM_MODE" == 1 ]]; then
  if [[ ! -x "$BUILD_DIR/bench/sim_bench" ]]; then
    echo "building sim_bench in $BUILD_DIR ..."
    cmake --build "$BUILD_DIR" --target sim_bench
  fi
  echo "== sim_bench (simulated fleet sweep 1k -> 1M + quorum/churn/determinism) =="
  "$BUILD_DIR/bench/sim_bench" --out BENCH_sim.json
  if command -v python3 >/dev/null; then
    python3 bench/validate_sim_json.py BENCH_sim.json bench/sim_schema.json
  fi
  exit 0
fi

if [[ "$NET_MODE" == 1 ]]; then
  if [[ ! -x "$BUILD_DIR/bench/net_bench" ]]; then
    echo "building net_bench in $BUILD_DIR ..."
    cmake --build "$BUILD_DIR" --target net_bench
  fi
  echo "== net_bench (wire sweep + quorum + adversarial scenario matrix) =="
  "$BUILD_DIR/bench/net_bench" --out BENCH_net.json --trace trace_net.json
  if command -v python3 >/dev/null; then
    python3 bench/validate_net_json.py BENCH_net.json bench/net_schema.json
  fi
  exit 0
fi

if [[ "$OBS_MODE" == 1 ]]; then
  if [[ ! -x "$BUILD_DIR/bench/obs_profile" ]]; then
    echo "building obs_profile in $BUILD_DIR ..."
    cmake --build "$BUILD_DIR" --target obs_profile
  fi
  echo "== obs_profile (protocol round + SPJ query profile) =="
  "$BUILD_DIR/bench/obs_profile" --trace trace_obs.json --metrics BENCH_obs.json
  if command -v python3 >/dev/null; then
    python3 bench/validate_obs_json.py BENCH_obs.json trace_obs.json \
      bench/obs_schema.json
  fi
  exit 0
fi

if [[ ! -x "$BUILD_DIR/bench/bench_crypto_ladder" || \
      ! -x "$BUILD_DIR/bench/crypto_round_bench" ]]; then
  echo "building benchmarks in $BUILD_DIR ..."
  cmake --build "$BUILD_DIR" \
    --target bench_crypto_ladder bench_agg_protocols crypto_round_bench
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== bench_crypto_ladder (kernel vs scalar, median of N reps) =="
"$BUILD_DIR/bench/bench_crypto_ladder" \
  --benchmark_filter='BM_(Paillier(Encrypt|Decrypt)(Scalar|Cached|CRT)|ModExp(Schoolbook|Montgomery))/' \
  --benchmark_out="$TMP/ladder.json" --benchmark_out_format=json

echo "== crypto_round_bench (per-op vs slot-packed fleet round) =="
"$BUILD_DIR/bench/crypto_round_bench" --out "$TMP/rounds.json"

AGG_JSON="-"
if [[ "$CRYPTO_MODE" == 0 ]]; then
  echo "== bench_agg_protocols (fleet-executor thread sweep) =="
  "$BUILD_DIR/bench/bench_agg_protocols" \
    --benchmark_filter='BM_(SecureAgg|WhiteNoise|Histogram)Threads/' \
    --benchmark_out="$TMP/agg.json" --benchmark_out_format=json
  AGG_JSON="$TMP/agg.json"
fi

if command -v python3 >/dev/null; then
  python3 bench/make_bench_crypto_json.py "$TMP/ladder.json" "$AGG_JSON" \
    BENCH_crypto.json --rounds "$TMP/rounds.json"
  python3 bench/validate_crypto_json.py BENCH_crypto.json \
    bench/crypto_schema.json
else
  echo "python3 not found: keeping raw google-benchmark JSON instead" >&2
  cp "$TMP/ladder.json" BENCH_crypto.json
fi
