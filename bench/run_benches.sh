#!/usr/bin/env bash
# Runs the crypto-kernel and fleet-executor benchmarks and distills them
# into BENCH_crypto.json at the repo root (op, key bits, ns/op, speedup of
# each kernel path over its scalar baseline; thread sweep at 100 PDSs).
#
# Usage: bench/run_benches.sh [build_dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -x "$BUILD_DIR/bench/bench_crypto_ladder" ]]; then
  echo "building benchmarks in $BUILD_DIR ..."
  cmake --build "$BUILD_DIR" --target bench_crypto_ladder bench_agg_protocols
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== bench_crypto_ladder (kernel vs scalar) =="
"$BUILD_DIR/bench/bench_crypto_ladder" \
  --benchmark_filter='BM_(Paillier(Encrypt|Decrypt)(Scalar|Cached|CRT)|ModExp(Schoolbook|Montgomery))/' \
  --benchmark_out="$TMP/ladder.json" --benchmark_out_format=json

echo "== bench_agg_protocols (fleet-executor thread sweep) =="
"$BUILD_DIR/bench/bench_agg_protocols" \
  --benchmark_filter='BM_(SecureAgg|WhiteNoise|Histogram)Threads/' \
  --benchmark_out="$TMP/agg.json" --benchmark_out_format=json

if command -v python3 >/dev/null; then
  python3 bench/make_bench_crypto_json.py "$TMP/ladder.json" "$TMP/agg.json" \
    BENCH_crypto.json
else
  echo "python3 not found: keeping raw google-benchmark JSON instead" >&2
  cp "$TMP/ladder.json" BENCH_crypto.json
fi
