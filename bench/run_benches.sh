#!/usr/bin/env bash
# Runs the crypto-kernel and fleet-executor benchmarks and distills them
# into BENCH_crypto.json at the repo root (op, key bits, ns/op, speedup of
# each kernel path over its scalar baseline; thread sweep at 100 PDSs).
#
# With --obs, instead runs the obs end-to-end driver (one secure-aggregation
# round + one profiled SPJ query) and leaves BENCH_obs.json plus
# trace_obs.json (Chrome trace_event format) at the repo root.
#
# With --net, instead runs the real-wire driver (secure aggregation over
# framed transports: fleet-size sweep on in-process and Unix-socket
# loopback, plus the dropped-token quorum scenarios) and leaves
# BENCH_net.json at the repo root.
#
# Usage: bench/run_benches.sh [--obs|--net] [build_dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

OBS_MODE=0
NET_MODE=0
if [[ "${1:-}" == "--obs" ]]; then
  OBS_MODE=1
  shift
elif [[ "${1:-}" == "--net" ]]; then
  NET_MODE=1
  shift
fi
BUILD_DIR="${1:-build}"

if [[ "$NET_MODE" == 1 ]]; then
  if [[ ! -x "$BUILD_DIR/bench/net_bench" ]]; then
    echo "building net_bench in $BUILD_DIR ..."
    cmake --build "$BUILD_DIR" --target net_bench
  fi
  echo "== net_bench (wire sweep + quorum scenarios) =="
  "$BUILD_DIR/bench/net_bench" --out BENCH_net.json
  if command -v python3 >/dev/null; then
    python3 bench/validate_net_json.py BENCH_net.json bench/net_schema.json
  fi
  exit 0
fi

if [[ "$OBS_MODE" == 1 ]]; then
  if [[ ! -x "$BUILD_DIR/bench/obs_profile" ]]; then
    echo "building obs_profile in $BUILD_DIR ..."
    cmake --build "$BUILD_DIR" --target obs_profile
  fi
  echo "== obs_profile (protocol round + SPJ query profile) =="
  "$BUILD_DIR/bench/obs_profile" --trace trace_obs.json --metrics BENCH_obs.json
  if command -v python3 >/dev/null; then
    python3 bench/validate_obs_json.py BENCH_obs.json trace_obs.json \
      bench/obs_schema.json
  fi
  exit 0
fi

if [[ ! -x "$BUILD_DIR/bench/bench_crypto_ladder" ]]; then
  echo "building benchmarks in $BUILD_DIR ..."
  cmake --build "$BUILD_DIR" --target bench_crypto_ladder bench_agg_protocols
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== bench_crypto_ladder (kernel vs scalar) =="
"$BUILD_DIR/bench/bench_crypto_ladder" \
  --benchmark_filter='BM_(Paillier(Encrypt|Decrypt)(Scalar|Cached|CRT)|ModExp(Schoolbook|Montgomery))/' \
  --benchmark_out="$TMP/ladder.json" --benchmark_out_format=json

echo "== bench_agg_protocols (fleet-executor thread sweep) =="
"$BUILD_DIR/bench/bench_agg_protocols" \
  --benchmark_filter='BM_(SecureAgg|WhiteNoise|Histogram)Threads/' \
  --benchmark_out="$TMP/agg.json" --benchmark_out_format=json

if command -v python3 >/dev/null; then
  python3 bench/make_bench_crypto_json.py "$TMP/ladder.json" "$TMP/agg.json" \
    BENCH_crypto.json
else
  echo "python3 not found: keeping raw google-benchmark JSON instead" >&2
  cp "$TMP/ladder.json" BENCH_crypto.json
fi
