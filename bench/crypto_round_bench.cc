// crypto_round_bench — the documented driver for the batched/packed crypto
// hot-path numbers:
//
//   build/bench/crypto_round_bench --out rounds.json
//
// It times one [TNP14] fleet aggregation round at fleet size 64 with 8
// counters per site, two ways:
//
//   fleet_round_per_op — the PR 1 baseline: one Paillier encryption per
//     site per counter, k homomorphic folds, k decryptions
//     (fleet * k + k asymmetric ops per round);
//   fleet_round_packed — slot packing + the lockstep batch-window ladder
//     over the multi-lane Montgomery kernel: one ciphertext per site, one
//     fold, ONE decrypt-unpack (fleet + 1 asymmetric ops per round).
//
// Every timed round's totals are cross-checked against the plaintext sums,
// and the packed path is additionally re-run with the SIMD kernel forced
// to its scalar fallback to prove the ciphertexts are byte-identical on
// both dispatch paths. Any mismatch — or a packed speedup below the 3x
// acceptance floor — exits non-zero, which is what the CI schema check
// builds on. Each path warms up once untimed, then reports the median of
// kReps timed rounds.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/montgomery_simd.h"
#include "crypto/paillier.h"
#include "global/toolkit.h"

namespace {

using pds::Rng;
using pds::crypto::BigInt;
using pds::crypto::PackedAggregate;
using pds::crypto::Paillier;
using pds::global::PackedRoundOutput;

constexpr size_t kFleet = 64;
constexpr size_t kCounters = 8;
constexpr uint64_t kMaxValue = 255;
constexpr size_t kKeyBits = 512;
constexpr int kReps = 5;

int Fail(const std::string& what) {
  std::cerr << "crypto_round_bench: FAILED: " << what << "\n";
  return 1;
}

std::vector<std::vector<uint64_t>> MakeSiteCounters() {
  Rng rng(91);
  std::vector<std::vector<uint64_t>> rows(kFleet,
                                          std::vector<uint64_t>(kCounters));
  for (auto& row : rows) {
    for (auto& v : row) {
      v = rng.Uniform(kMaxValue + 1);
    }
  }
  return rows;
}

std::vector<uint64_t> PlainTotals(
    const std::vector<std::vector<uint64_t>>& rows) {
  std::vector<uint64_t> totals(kCounters, 0);
  for (const auto& row : rows) {
    for (size_t i = 0; i < kCounters; ++i) {
      totals[i] += row[i];
    }
  }
  return totals;
}

double MedianNs(std::vector<double> ns) {
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

/// Runs `round` once untimed (warmup), then kReps timed rounds, verifying
/// every round's totals against the plaintext sums. Returns the median
/// round time in ns, or a negative value on failure.
template <typename RoundFn>
double TimeRounds(const char* what, const std::vector<uint64_t>& expected,
                  RoundFn round) {
  auto check = [&](const pds::Result<PackedRoundOutput>& out) {
    if (!out.ok()) {
      std::cerr << "crypto_round_bench: " << what << ": "
                << out.status().ToString() << "\n";
      return false;
    }
    if (out->totals != expected) {
      std::cerr << "crypto_round_bench: " << what
                << ": totals do not match plaintext sums\n";
      return false;
    }
    return true;
  };
  if (!check(round())) {
    return -1.0;
  }
  std::vector<double> ns;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    auto out = round();
    auto t1 = std::chrono::steady_clock::now();
    if (!check(out)) {
      return -1.0;
    }
    ns.push_back(std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return MedianNs(std::move(ns));
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "rounds.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: crypto_round_bench [--out FILE]\n";
      return 1;
    }
  }

  Rng key_rng(42);
  auto paillier = Paillier::Generate(kKeyBits, &key_rng);
  if (!paillier.ok()) {
    return Fail("Paillier::Generate: " + paillier.status().ToString());
  }
  auto agg = PackedAggregate::Create(*paillier, kFleet, kMaxValue, kCounters);
  if (!agg.ok()) {
    return Fail("PackedAggregate::Create: " + agg.status().ToString());
  }
  const auto rows = MakeSiteCounters();
  const auto expected = PlainTotals(rows);

  Rng rng(73);
  double per_op_ns = TimeRounds("per-op round", expected, [&] {
    return pds::global::PaillierPerOpFleetRound(*paillier, rows, &rng);
  });
  if (per_op_ns < 0) {
    return Fail("per-op round did not verify");
  }
  double packed_ns = TimeRounds("packed round", expected, [&] {
    return pds::global::PaillierPackedFleetRound(*agg, rows, &rng);
  });
  if (packed_ns < 0) {
    return Fail("packed round did not verify");
  }

  // Dispatch cross-check: identical RNG seed, SIMD vs forced-scalar
  // kernel, ciphertexts must match bit for bit.
  const bool had_avx2 =
      std::string(pds::crypto::simd::KernelName()) == "avx2";
  std::vector<pds::Bytes> simd_cts;
  std::vector<pds::Bytes> scalar_cts;
  for (bool force : {false, true}) {
    pds::crypto::simd::SetForceScalar(force);
    Rng enc_rng(7);
    auto cts = agg->EncryptPackedBatch(rows, &enc_rng);
    if (!cts.ok()) {
      pds::crypto::simd::SetForceScalar(false);
      return Fail("EncryptPackedBatch: " + cts.status().ToString());
    }
    auto& dst = force ? scalar_cts : simd_cts;
    for (const BigInt& ct : *cts) {
      dst.push_back(ct.ToBytes());
    }
  }
  pds::crypto::simd::SetForceScalar(false);
  if (simd_cts != scalar_cts) {
    return Fail("SIMD and forced-scalar ciphertexts differ");
  }

  const double speedup = per_op_ns / packed_ns;
  if (speedup < 3.0) {
    return Fail("packed round speedup " + std::to_string(speedup) +
                "x is below the 3x acceptance floor");
  }

  const double per_op_rps = 1e9 / per_op_ns;
  const double packed_rps = 1e9 / packed_ns;
  std::ofstream out(out_path, std::ios::binary);
  out << "{\n  \"records\": [\n";
  out << "    {\"op\": \"fleet_round_per_op\""
      << ", \"fleet_size\": " << kFleet
      << ", \"num_counters\": " << kCounters
      << ", \"key_bits\": " << kKeyBits
      << ", \"reps\": " << kReps
      << ", \"cipher_ops_per_round\": " << (kFleet * kCounters + kCounters)
      << ", \"ns_per_round\": " << per_op_ns
      << ", \"rounds_per_sec\": " << per_op_rps
      << ", \"verified\": true},\n";
  out << "    {\"op\": \"fleet_round_packed\""
      << ", \"fleet_size\": " << kFleet
      << ", \"num_counters\": " << kCounters
      << ", \"key_bits\": " << kKeyBits
      << ", \"reps\": " << kReps
      << ", \"cipher_ops_per_round\": " << (kFleet + 1)
      << ", \"ns_per_round\": " << packed_ns
      << ", \"rounds_per_sec\": " << packed_rps
      << ", \"speedup_vs_per_op\": " << speedup
      << ", \"simd_kernel\": \"" << (had_avx2 ? "avx2" : "scalar") << "\""
      << ", \"scalar_fallback_identical\": true"
      << ", \"verified\": true}\n";
  out << "  ]\n}\n";
  if (!out) {
    return Fail("writing " + out_path);
  }
  std::cout << "crypto_round_bench: per-op " << per_op_ns / 1e6
            << " ms/round, packed " << packed_ns / 1e6 << " ms/round ("
            << speedup << "x), wrote " << out_path << "\n";
  return 0;
}
