// E2 — flash constraint ladder (tutorial Part II, "Severe hardware
// constraints"): sequential page programs are cheap; random in-place
// updates force block erase + rewrite ("erase by block vs write by page",
// "high cost of random writes").
//
// Reported counters: programs, erases, and simulated device time under the
// datasheet cost model. The paper's shape: random updates cost 1-2 orders
// of magnitude more device time than sequential writes of the same volume.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "flash/flash.h"

namespace {

using pds::flash::CostModel;
using pds::flash::FlashChip;
using pds::flash::Geometry;
using pds::flash::Stats;

Geometry BenchGeometry() {
  Geometry g;
  g.page_size = 2048;
  g.pages_per_block = 64;
  g.block_count = 512;
  return g;
}

// Writes `num_pages` pages strictly sequentially (the log-structured way).
void BM_SequentialWrite(benchmark::State& state) {
  const uint32_t num_pages = static_cast<uint32_t>(state.range(0));
  CostModel cost;
  Stats total;
  pds::Bytes data(2048, 0xAB);
  for (auto _ : state) {
    FlashChip chip(BenchGeometry());
    for (uint32_t p = 0; p < num_pages; ++p) {
      benchmark::DoNotOptimize(chip.ProgramPage(p, pds::ByteView(data)));
    }
    total = chip.stats();
  }
  state.counters["programs"] = static_cast<double>(total.page_programs);
  state.counters["erases"] = static_cast<double>(total.block_erases);
  state.counters["device_ms"] = total.TimeUs(cost) / 1000.0;
  state.counters["us_per_write"] =
      total.TimeUs(cost) / static_cast<double>(num_pages);
}
BENCHMARK(BM_SequentialWrite)->Arg(256)->Arg(1024)->Arg(4096);

// Updates `num_updates` random pages in place, as a naive structure (e.g.,
// an update-in-place B-tree) would: each update must erase the whole block
// and reprogram its 64 pages.
void BM_RandomInPlaceUpdate(benchmark::State& state) {
  const uint32_t num_updates = static_cast<uint32_t>(state.range(0));
  CostModel cost;
  Stats total;
  pds::Bytes data(2048, 0xCD);
  for (auto _ : state) {
    Geometry g = BenchGeometry();
    FlashChip chip(g);
    // Pre-fill the chip.
    for (uint32_t p = 0; p < g.total_pages(); ++p) {
      (void)chip.ProgramPage(p, pds::ByteView(data));
    }
    chip.ResetStats();
    pds::Rng rng(42);
    pds::Bytes page;
    for (uint32_t u = 0; u < num_updates; ++u) {
      uint32_t target = static_cast<uint32_t>(rng.Uniform(g.total_pages()));
      uint32_t block = target / g.pages_per_block;
      uint32_t first = block * g.pages_per_block;
      // Read-modify-write of the whole block (no spare blocks modeled;
      // a real FTL amortizes but pays the same asymptotics under churn).
      std::vector<pds::Bytes> saved(g.pages_per_block);
      for (uint32_t i = 0; i < g.pages_per_block; ++i) {
        (void)chip.ReadPage(first + i, &saved[i]);
      }
      (void)chip.EraseBlock(block);
      saved[target - first] = data;
      for (uint32_t i = 0; i < g.pages_per_block; ++i) {
        (void)chip.ProgramPage(first + i, pds::ByteView(saved[i]));
      }
    }
    total = chip.stats();
  }
  state.counters["programs"] = static_cast<double>(total.page_programs);
  state.counters["erases"] = static_cast<double>(total.block_erases);
  state.counters["device_ms"] = total.TimeUs(cost) / 1000.0;
  state.counters["us_per_write"] =
      total.TimeUs(cost) / static_cast<double>(num_updates);
}
BENCHMARK(BM_RandomInPlaceUpdate)->Arg(256)->Arg(1024);

// The log-structured alternative to random updates: append the new version
// sequentially (out-of-place), which is what every Part-II structure does.
void BM_OutOfPlaceUpdate(benchmark::State& state) {
  const uint32_t num_updates = static_cast<uint32_t>(state.range(0));
  CostModel cost;
  Stats total;
  pds::Bytes data(2048, 0xEF);
  for (auto _ : state) {
    Geometry g = BenchGeometry();
    FlashChip chip(g);
    chip.ResetStats();
    for (uint32_t u = 0; u < num_updates; ++u) {
      (void)chip.ProgramPage(u, pds::ByteView(data));
    }
    total = chip.stats();
  }
  state.counters["programs"] = static_cast<double>(total.page_programs);
  state.counters["erases"] = static_cast<double>(total.block_erases);
  state.counters["device_ms"] = total.TimeUs(cost) / 1000.0;
  state.counters["us_per_write"] =
      total.TimeUs(cost) / static_cast<double>(num_updates);
}
BENCHMARK(BM_OutOfPlaceUpdate)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
