// E6 — the tutorial's secure-computation cost ladder (Part III): "Generic
// SMC / fully homomorphic encryption cost is (incredibly) high" versus the
// token-based approach. We compute the same fleet-wide SUM three ways:
//
//   1. plaintext              — the lower bound;
//   2. token secure-agg (AES) — the asymmetric-architecture approach;
//   3. Paillier homomorphic   — untrusted-server-only cryptography.
//
// Paper shape: each rung costs orders of magnitude more than the previous;
// the token approach sits far below public-key homomorphic crypto.

#include <benchmark/benchmark.h>

#include "common/rng.h"

#include <map>
#include <memory>

#include "crypto/montgomery.h"
#include "crypto/paillier.h"
#include "global/agg_protocols.h"
#include "global/toolkit.h"

namespace {

using pds::global::AggFunc;
using pds::global::Metrics;
using pds::global::Participant;
using pds::global::SecureAggProtocol;
using pds::global::SourceTuple;
using pds::mcu::SecureToken;

std::vector<uint64_t> Values(size_t n) {
  std::vector<uint64_t> v(n);
  pds::Rng rng(71);
  for (auto& x : v) {
    x = rng.Uniform(1000);
  }
  return v;
}

void BM_PlaintextSum(benchmark::State& state) {
  auto values = Values(static_cast<size_t>(state.range(0)));
  uint64_t sum = 0;
  for (auto _ : state) {
    sum = 0;
    for (uint64_t v : values) {
      sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PlaintextSum)->Arg(10)->Arg(100)->Arg(1000);

void BM_TokenSecureAggSum(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto values = Values(n);
  // Fleet setup outside the timed region.
  pds::crypto::SymmetricKey key = pds::crypto::KeyFromString("ladder");
  std::vector<std::unique_ptr<SecureToken>> tokens;
  std::vector<Participant> participants;
  for (size_t i = 0; i < n; ++i) {
    SecureToken::Config cfg;
    cfg.token_id = i;
    cfg.fleet_key = key;
    tokens.push_back(std::make_unique<SecureToken>(cfg));
    Participant p;
    p.token = tokens.back().get();
    p.tuples.push_back({"all", static_cast<double>(values[i])});
    participants.push_back(std::move(p));
  }
  SecureAggProtocol protocol({/*partition_capacity=*/128});
  Metrics metrics;
  for (auto _ : state) {
    auto out = protocol.Execute(participants, AggFunc::kSum);
    benchmark::DoNotOptimize(out);
    if (out.ok()) {
      metrics = out->metrics;
    }
  }
  state.counters["token_crypto_ops"] =
      static_cast<double>(metrics.token_crypto_ops);
  state.counters["bytes"] = static_cast<double>(metrics.bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TokenSecureAggSum)->Arg(10)->Arg(100)->Arg(1000);

void BM_PaillierSum(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t bits = static_cast<size_t>(state.range(1));
  auto values = Values(n);
  pds::Rng rng(73);
  Metrics metrics;
  for (auto _ : state) {
    auto sum = pds::global::PaillierFleetSum(values, bits, &rng, &metrics);
    benchmark::DoNotOptimize(sum);
  }
  state.counters["modulus_bits"] = static_cast<double>(bits);
  state.counters["token_crypto_ops"] =
      static_cast<double>(metrics.token_crypto_ops);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PaillierSum)
    ->Args({10, 256})
    ->Args({100, 256})
    ->Args({10, 512})
    ->Args({100, 512})
    ->Args({10, 1024});

// Micro-rungs of the ladder: one operation of each kind.
void BM_OneAesEncryption(benchmark::State& state) {
  SecureToken::Config cfg;
  cfg.fleet_key = pds::crypto::KeyFromString("micro");
  SecureToken token(cfg);
  pds::Bytes payload(64, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(token.EncryptNonDet(pds::ByteView(payload)));
  }
}
BENCHMARK(BM_OneAesEncryption);

void BM_OnePaillierEncryption(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  pds::Rng rng(77);
  auto paillier = pds::crypto::Paillier::Generate(bits, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(paillier->EncryptU64(12345, &rng));
  }
  state.counters["modulus_bits"] = static_cast<double>(bits);
}
BENCHMARK(BM_OnePaillierEncryption)->Arg(256)->Arg(512)->Arg(1024);

// --- Kernel-layer speedups: scalar (schoolbook) vs Montgomery/CRT/cache.
// run_benches.sh pairs these up into BENCH_crypto.json speedup entries.
// Each rung warms up before measuring and runs N repetitions; the JSON
// distiller reads the _median aggregate so one noisy rep cannot skew a
// reported speedup.

const pds::crypto::Paillier& CachedPaillier(size_t bits) {
  static std::map<size_t, pds::crypto::Paillier> cache;
  auto it = cache.find(bits);
  if (it == cache.end()) {
    pds::Rng rng(77);
    auto paillier = pds::crypto::Paillier::Generate(bits, &rng);
    it = cache.emplace(bits, std::move(*paillier)).first;
  }
  return it->second;
}

void BM_PaillierEncryptScalar(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  const auto& paillier = CachedPaillier(bits);
  pds::Rng rng(79);
  pds::crypto::BigInt m(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(paillier.EncryptScalar(m, &rng));
  }
  state.counters["modulus_bits"] = static_cast<double>(bits);
}
BENCHMARK(BM_PaillierEncryptScalar)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->MinWarmUpTime(0.05)
    ->Repetitions(5);

void BM_PaillierEncryptCached(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  const auto& paillier = CachedPaillier(bits);
  pds::Rng rng(79);
  pds::crypto::BigInt m(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(paillier.Encrypt(m, &rng));
  }
  state.counters["modulus_bits"] = static_cast<double>(bits);
}
BENCHMARK(BM_PaillierEncryptCached)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->MinWarmUpTime(0.05)
    ->Repetitions(5);

void BM_PaillierDecryptScalar(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  const auto& paillier = CachedPaillier(bits);
  pds::Rng rng(81);
  auto ct = paillier.EncryptU64(67890, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(paillier.DecryptScalar(*ct));
  }
  state.counters["modulus_bits"] = static_cast<double>(bits);
}
BENCHMARK(BM_PaillierDecryptScalar)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->MinWarmUpTime(0.05)
    ->Repetitions(5);

void BM_PaillierDecryptCRT(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  const auto& paillier = CachedPaillier(bits);
  pds::Rng rng(81);
  auto ct = paillier.EncryptU64(67890, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(paillier.Decrypt(*ct));
  }
  state.counters["modulus_bits"] = static_cast<double>(bits);
}
BENCHMARK(BM_PaillierDecryptCRT)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->MinWarmUpTime(0.05)
    ->Repetitions(5);

// ModExp micro: full-width exponent over a modulus of `bits` bits, the
// primitive under every Paillier operation.
struct ModExpInputs {
  pds::crypto::BigInt m, a, e;
};

ModExpInputs MakeModExpInputs(size_t bits) {
  pds::Rng rng(83);
  ModExpInputs in;
  in.m = pds::crypto::BigInt::GeneratePrime(bits, &rng);
  in.a = pds::crypto::BigInt::RandomBelow(in.m, &rng);
  in.e = pds::crypto::BigInt::RandomBits(bits, &rng);
  return in;
}

void BM_ModExpSchoolbook(benchmark::State& state) {
  auto in = MakeModExpInputs(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pds::crypto::BigInt::ModExpSchoolbook(in.a, in.e, in.m));
  }
  state.counters["modulus_bits"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ModExpSchoolbook)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->MinWarmUpTime(0.05)
    ->Repetitions(3);

void BM_ModExpMontgomery(benchmark::State& state) {
  auto in = MakeModExpInputs(static_cast<size_t>(state.range(0)));
  pds::crypto::MontgomeryCtx ctx(in.m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ModExp(in.a, in.e));
  }
  state.counters["modulus_bits"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ModExpMontgomery)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->MinWarmUpTime(0.05)
    ->Repetitions(3);

}  // namespace

BENCHMARK_MAIN();
