#!/usr/bin/env python3
"""Validates BENCH_net.json against bench/net_schema.json.

Usage: validate_net_json.py [BENCH_net.json] [schema.json]

Checks, stdlib-only (run by bench/run_benches.sh --net and the CI net job):
  - the file is {"records": [...]} with a non-empty record list where every
    record carries the schema's required fields with numeric values;
  - every record names a known section and the sweep covers both
    transports (in-process and socket);
  - wire accounting is consistent: every successful record satisfies
    bytes == bytes_token_to_ssi + bytes_ssi_to_token with bytes > 0 and
    rounds > 0;
  - round-trip latency percentiles are present on every record and, on
    successful sweep runs, positive and monotonic (p50 <= p90 <= p99 <=
    p999); sweep records with at least `rtt_distinct_tail_min_samples`
    round trips behind the histogram must additionally show genuinely
    distinct tails (p50 < p999) — small-sample runs are exempt, since a
    handful of answered attempts can legitimately land in one bucket;
  - the quorum section demonstrates both sides of the contract: a dropped
    token fails the run under quorum 1.0 and completes with a recorded
    shortfall under a sub-1.0 quorum;
  - the fault_scenarios record holds the adversarial-wire guarantees: a
    non-empty cell list with the schema's fields, detection_rate exactly
    1.0 over the cells that expect detection, and the benign-cell
    byte-equality flag true.

Exits 0 on success, 1 with a list of problems otherwise.
"""

import json
import sys


def fail(problems):
    for p in problems:
        print(f"validate_net_json: {p}", file=sys.stderr)
    sys.exit(1)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_records(doc, schema, problems):
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        problems.append("'records' missing, not a list, or empty")
        return
    sweep_transports = set()
    quorum_failed_full = False
    quorum_passed_short = False
    tail_min = schema.get("rtt_distinct_tail_min_samples", 200)
    for i, rec in enumerate(records):
        where = f"record {i}"
        if not isinstance(rec, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in schema["required_record_fields"]:
            if field not in rec:
                problems.append(f"{where}: missing field '{field}'")
        for field in schema["numeric_record_fields"]:
            if field in rec and not is_number(rec[field]):
                problems.append(f"{where}: '{field}' is not numeric")
        section = rec.get("section")
        if section not in schema["sections"]:
            problems.append(f"{where}: unknown section {section!r}")
        if not isinstance(rec.get("ok"), bool):
            problems.append(f"{where}: 'ok' is not a bool")
            continue
        if rec["ok"]:
            total = rec.get("bytes", 0)
            t2s = rec.get("bytes_token_to_ssi", 0)
            s2t = rec.get("bytes_ssi_to_token", 0)
            if total != t2s + s2t:
                problems.append(
                    f"{where}: bytes ({total}) != token->ssi ({t2s}) + "
                    f"ssi->token ({s2t})")
            if total <= 0:
                problems.append(f"{where}: successful run measured 0 bytes")
            if rec.get("rounds", 0) <= 0:
                problems.append(f"{where}: successful run reports 0 rounds")
        if section == "sweep":
            sweep_transports.add(rec.get("transport"))
            if not rec["ok"]:
                problems.append(f"{where}: sweep run failed")
            pct_fields = schema.get("percentile_record_fields", [])
            pcts = [rec.get(f) for f in pct_fields]
            if all(is_number(p) for p in pcts) and pcts:
                if pcts[0] <= 0:
                    problems.append(
                        f"{where}: sweep run reports no round-trip latency "
                        f"({pct_fields[0]} = {pcts[0]})")
                if any(a > b for a, b in zip(pcts, pcts[1:])):
                    problems.append(
                        f"{where}: round-trip percentiles not monotonic: "
                        f"{pcts}")
                # Distinct tails are only a meaningful demand with enough
                # samples behind the histogram; tiny runs get a pass.
                if (rec.get("rtt_samples", 0) >= tail_min
                        and pcts[0] >= pcts[-1]):
                    problems.append(
                        f"{where}: {rec.get('rtt_samples')} samples but the "
                        f"latency tail is flat (p50 {pcts[0]} >= p999 "
                        f"{pcts[-1]})")
        elif section == "quorum":
            if rec.get("quorum") == 1.0 and rec.get("dropped_tokens", 0) >= 1:
                quorum_failed_full = quorum_failed_full or not rec["ok"]
            if (rec.get("quorum", 1.0) < 1.0
                    and rec.get("dropped_tokens", 0) >= 1):
                quorum_passed_short = quorum_passed_short or (
                    rec["ok"] and rec.get("missing_tokens", 0) >= 1)
    for transport in schema["sweep_transports"]:
        if transport not in sweep_transports:
            problems.append(f"sweep: no records for transport '{transport}'")
    if not quorum_failed_full:
        problems.append(
            "quorum: no failed record for a dropped token at quorum 1.0")
    if not quorum_passed_short:
        problems.append(
            "quorum: no successful record with a reported shortfall at "
            "quorum < 1.0")


def check_fault_scenarios(doc, schema, problems):
    fs = doc.get("fault_scenarios")
    if not isinstance(fs, dict):
        problems.append("'fault_scenarios' missing or not an object")
        return
    for field in schema.get("required_fault_scenario_fields", []):
        if field not in fs:
            problems.append(f"fault_scenarios: missing field '{field}'")
    cells = fs.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("fault_scenarios: 'cells' missing, not a list, or "
                        "empty")
        return
    expected = 0
    caught = 0
    benign_broken = []
    for i, cell in enumerate(cells):
        where = f"fault cell {i}"
        if not isinstance(cell, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in schema.get("required_fault_cell_fields", []):
            if field not in cell:
                problems.append(f"{where}: missing field '{field}'")
        if cell.get("expects_detection"):
            expected += 1
            if cell.get("detected"):
                caught += 1
            else:
                problems.append(
                    f"{where} ({cell.get('name')}): adversary evaded "
                    f"detection")
        if cell.get("benign") and not (cell.get("ran_ok")
                                       and cell.get("byte_identical")):
            benign_broken.append(cell.get("name"))
    for name in benign_broken:
        problems.append(
            f"fault_scenarios: benign cell {name!r} not byte-identical to "
            f"the in-process protocol")
    if expected == 0:
        problems.append("fault_scenarios: no cell expects detection")
    rate = fs.get("detection_rate")
    if not is_number(rate) or rate != 1.0:
        problems.append(
            f"fault_scenarios: detection_rate must be exactly 1.0, got "
            f"{rate!r} ({caught}/{expected} caught)")
    if fs.get("benign_byte_identical") is not True:
        problems.append(
            "fault_scenarios: benign_byte_identical flag is not true")


def main(argv):
    bench_path = argv[1] if len(argv) > 1 else "BENCH_net.json"
    schema_path = argv[2] if len(argv) > 2 else "bench/net_schema.json"

    problems = []
    with open(schema_path) as f:
        schema = json.load(f)
    try:
        with open(bench_path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.append(f"cannot load {bench_path}: {e}")
        fail(problems)
    check_records(doc, schema, problems)
    check_fault_scenarios(doc, schema, problems)

    if problems:
        fail(problems)
    print(f"validate_net_json: OK ({bench_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
