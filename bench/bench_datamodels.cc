// Extension benches — the tutorial's "remaining challenges: extend the
// principles to other data models (time series, NoSQL & key-value
// stores)", realized with the same two-log discipline:
//
//  - KvStore: key-log + Bloom summaries over a value log; constant RAM
//    regardless of key population (contrast: the reviewed flash KV stores
//    need RAM per key).
//  - TimeSeriesStore: per-page summaries make narrow range queries and
//    wide aggregates nearly free of data-page reads.

#include <benchmark/benchmark.h>

#include "common/rng.h"

#include <map>
#include <memory>

#include "embdb/kv_store.h"
#include "embdb/timeseries.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace {

using pds::embdb::KvStore;
using pds::embdb::TimeSeriesStore;

pds::flash::Geometry BigGeometry() {
  pds::flash::Geometry g;
  g.page_size = 2048;
  g.pages_per_block = 64;
  g.block_count = 2048;
  return g;
}

struct KvFixture {
  std::unique_ptr<pds::flash::FlashChip> chip;
  std::unique_ptr<pds::mcu::RamGauge> gauge;
  std::unique_ptr<KvStore> kv;
  uint64_t keys = 0;
};

KvFixture* CachedKv(uint64_t keys) {
  static std::map<uint64_t, std::unique_ptr<KvFixture>> cache;
  auto it = cache.find(keys);
  if (it == cache.end()) {
    auto f = std::make_unique<KvFixture>();
    f->chip = std::make_unique<pds::flash::FlashChip>(BigGeometry());
    f->gauge = std::make_unique<pds::mcu::RamGauge>(64 * 1024);
    pds::flash::PartitionAllocator alloc(f->chip.get());
    auto values = alloc.Allocate(512);
    auto keys_part = alloc.Allocate(512);
    auto bloom = alloc.Allocate(128);
    f->kv = std::make_unique<KvStore>(*values, *keys_part, *bloom,
                                      f->gauge.get(), KvStore::Options{});
    (void)f->kv->Init();
    f->keys = keys;
    pds::Rng rng(5);
    std::string value(100, 'v');
    for (uint64_t k = 0; k < keys; ++k) {
      (void)f->kv->Put("user:" + std::to_string(k),
                       pds::ByteView(std::string_view(value)));
    }
    it = cache.emplace(keys, std::move(f)).first;
  }
  return it->second.get();
}

void BM_KvGet(benchmark::State& state) {
  KvFixture* f = CachedKv(static_cast<uint64_t>(state.range(0)));
  pds::Rng rng(9);
  uint64_t reads = 0;
  for (auto _ : state) {
    f->chip->ResetStats();
    auto v = f->kv->Get("user:" + std::to_string(rng.Uniform(f->keys)));
    benchmark::DoNotOptimize(v);
    reads += f->chip->stats().page_reads;
  }
  state.counters["page_reads_per_get"] =
      static_cast<double>(reads) / static_cast<double>(state.iterations());
  // RAM stays constant no matter how many keys live in flash.
  state.counters["resident_ram"] = static_cast<double>(f->gauge->in_use());
}
BENCHMARK(BM_KvGet)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_KvPut(benchmark::State& state) {
  // Fresh store per iteration batch; measures sustained insert throughput.
  pds::Rng rng(11);
  std::string value(100, 'v');
  for (auto _ : state) {
    state.PauseTiming();
    auto chip = std::make_unique<pds::flash::FlashChip>(BigGeometry());
    pds::mcu::RamGauge gauge(64 * 1024);
    pds::flash::PartitionAllocator alloc(chip.get());
    auto values = alloc.Allocate(256);
    auto keys_part = alloc.Allocate(256);
    auto bloom = alloc.Allocate(64);
    KvStore kv(*values, *keys_part, *bloom, &gauge, {});
    (void)kv.Init();
    state.ResumeTiming();
    for (int k = 0; k < 2000; ++k) {
      benchmark::DoNotOptimize(
          kv.Put("k" + std::to_string(k), pds::ByteView(std::string_view(value))));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_KvPut);

struct TsFixture {
  std::unique_ptr<pds::flash::FlashChip> chip;
  std::unique_ptr<pds::mcu::RamGauge> gauge;
  std::unique_ptr<TimeSeriesStore> ts;
  uint64_t points = 0;
};

TsFixture* CachedTs(uint64_t points) {
  static std::map<uint64_t, std::unique_ptr<TsFixture>> cache;
  auto it = cache.find(points);
  if (it == cache.end()) {
    auto f = std::make_unique<TsFixture>();
    f->chip = std::make_unique<pds::flash::FlashChip>(BigGeometry());
    f->gauge = std::make_unique<pds::mcu::RamGauge>(64 * 1024);
    pds::flash::PartitionAllocator alloc(f->chip.get());
    auto data = alloc.Allocate(1024);
    auto summary = alloc.Allocate(32);
    f->ts = std::make_unique<TimeSeriesStore>(*data, *summary,
                                              f->gauge.get());
    (void)f->ts->Init();
    f->points = points;
    pds::Rng rng(13);
    for (uint64_t t = 1; t <= points; ++t) {
      (void)f->ts->Append(t, static_cast<double>(rng.Uniform(1000)) / 10.0);
    }
    it = cache.emplace(points, std::move(f)).first;
  }
  return it->second.get();
}

void BM_TsNarrowRange(benchmark::State& state) {
  TsFixture* f = CachedTs(static_cast<uint64_t>(state.range(0)));
  TimeSeriesStore::QueryStats stats;
  uint64_t count = 0;
  for (auto _ : state) {
    count = 0;
    auto s = f->ts->Range(f->points / 2, f->points / 2 + 100,
                          [&](const TimeSeriesStore::Point&) {
                            ++count;
                            return pds::Status::Ok();
                          },
                          &stats);
    benchmark::DoNotOptimize(s);
  }
  state.counters["points"] = static_cast<double>(count);
  state.counters["data_pages"] = static_cast<double>(stats.data_pages);
  state.counters["pages_skipped"] = static_cast<double>(stats.pages_skipped);
}
BENCHMARK(BM_TsNarrowRange)->Arg(10000)->Arg(100000)->Arg(500000);

void BM_TsWideAggregate(benchmark::State& state) {
  TsFixture* f = CachedTs(static_cast<uint64_t>(state.range(0)));
  TimeSeriesStore::QueryStats stats;
  TimeSeriesStore::RangeAggregate agg;
  for (auto _ : state) {
    auto result = f->ts->Aggregate(10, f->points - 10, &stats);
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      agg = *result;
    }
  }
  state.counters["count"] = static_cast<double>(agg.count);
  // The headline: almost no data pages; summaries answer the aggregate.
  state.counters["data_pages"] = static_cast<double>(stats.data_pages);
  state.counters["summary_pages"] = static_cast<double>(stats.summary_pages);
  state.counters["total_data_pages"] =
      static_cast<double>(f->ts->num_data_pages());
}
BENCHMARK(BM_TsWideAggregate)->Arg(10000)->Arg(100000)->Arg(500000);

}  // namespace

BENCHMARK_MAIN();
