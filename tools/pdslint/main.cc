// pdslint CLI — scans a tree, applies the baseline, enforces the waiver
// budget, and exits non-zero on new findings. Wired into ctest as the
// tier-1 `pdslint` test (see tools/pdslint/CMakeLists.txt).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "pdslint.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --root <dir|file> [--root ...]\n"
               "          [--baseline <file>] [--write-baseline <file>]\n"
               "          [--max-waivers <n>] [--list-waivers]\n"
               "          [--rule <name>]... [--format text|json]\n",
               argv0);
}

// Baseline format: one fingerprint token per line; '#' starts a comment.
std::set<std::string> LoadBaseline(const std::string& path, bool* ok) {
  std::set<std::string> entries;
  std::ifstream in(path);
  *ok = in.good();
  std::string line;
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    size_t e = line.find_last_not_of(" \t\r");
    entries.insert(line.substr(b, e - b + 1));
  }
  return entries;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string baseline_path, write_baseline_path;
  int max_waivers = -1;
  bool list_waivers = false;
  bool json = false;
  std::set<std::string> rule_filter;  // names; empty = all rules

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") roots.push_back(next());
    else if (arg == "--baseline") baseline_path = next();
    else if (arg == "--write-baseline") write_baseline_path = next();
    else if (arg == "--max-waivers") max_waivers = std::atoi(next());
    else if (arg == "--list-waivers") list_waivers = true;
    else if (arg == "--rule") {
      std::string name = next();
      pdslint::Rule rule;
      if (!pdslint::ParseRuleName(name, &rule)) {
        std::fprintf(stderr, "pdslint: unknown rule '%s'\n", name.c_str());
        return 2;
      }
      rule_filter.insert(pdslint::RuleName(rule));
    } else if (arg == "--format") {
      std::string fmt = next();
      if (fmt == "json") json = true;
      else if (fmt == "text") json = false;
      else { Usage(argv[0]); return 2; }
    }
    else if (arg == "--help" || arg == "-h") { Usage(argv[0]); return 0; }
    else { Usage(argv[0]); return 2; }
  }
  if (roots.empty()) {
    Usage(argv[0]);
    return 2;
  }

  pdslint::Options options;
  options.max_waivers = max_waivers;
  pdslint::Report report = pdslint::AnalyzeTree(roots, options);

  // --rule narrows both findings and the waiver budget to the named rules,
  // so "pdslint --rule secret-flow --rule const-time" audits exactly the
  // secret-handling exemptions.
  if (!rule_filter.empty()) {
    std::vector<pdslint::Finding> kept;
    for (pdslint::Finding& f : report.findings) {
      if (rule_filter.count(pdslint::RuleName(f.rule))) {
        kept.push_back(std::move(f));
      }
    }
    report.findings = std::move(kept);
    std::vector<pdslint::Waiver> kept_w;
    for (pdslint::Waiver& w : report.waivers) {
      if (rule_filter.count(pdslint::RuleName(w.rule))) {
        kept_w.push_back(std::move(w));
      }
    }
    report.waivers = std::move(kept_w);
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    out << "# pdslint baseline — grandfathered findings, keyed by content\n"
           "# fingerprint, not line number. Regenerate with:\n"
           "#   pdslint --root src --write-baseline tools/pdslint/baseline.txt\n";
    for (const pdslint::Finding& f : report.findings) {
      out << pdslint::Fingerprint(f) << "  # " << pdslint::FormatFinding(f)
          << '\n';
    }
    std::printf("pdslint: wrote %zu baseline entries to %s\n",
                report.findings.size(), write_baseline_path.c_str());
    return 0;
  }

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    bool ok = false;
    baseline = LoadBaseline(baseline_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "pdslint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
  }

  int fresh = 0, baselined = 0;
  std::vector<const pdslint::Finding*> fresh_findings;
  for (const pdslint::Finding& f : report.findings) {
    if (baseline.count(pdslint::Fingerprint(f))) {
      ++baselined;
      continue;
    }
    ++fresh;
    fresh_findings.push_back(&f);
    if (!json) std::printf("%s\n", pdslint::FormatFinding(f).c_str());
  }

  bool budget_exceeded =
      max_waivers >= 0 && static_cast<int>(report.waivers.size()) > max_waivers;

  if (json) {
    // Machine-readable findings + waiver accounting, one object per run.
    // snippet_hash is the content fingerprint CI diffs against, stable
    // across unrelated edits (no line numbers inside).
    std::printf("{\n  \"findings\": [");
    const char* sep = "";
    for (const pdslint::Finding* f : fresh_findings) {
      std::printf(
          "%s\n    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
          "\"message\": \"%s\", \"snippet_hash\": \"%s\"}",
          sep, JsonEscape(f->file).c_str(), f->line,
          pdslint::RuleName(f->rule), JsonEscape(f->message).c_str(),
          JsonEscape(pdslint::Fingerprint(*f)).c_str());
      sep = ",";
    }
    std::printf("\n  ],\n  \"waivers\": [");
    sep = "";
    for (const pdslint::Waiver& w : report.waivers) {
      std::printf(
          "%s\n    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
          "\"reason\": \"%s\", \"used\": %s}",
          sep, JsonEscape(w.file).c_str(), w.line, pdslint::RuleName(w.rule),
          JsonEscape(w.reason).c_str(), w.used ? "true" : "false");
      sep = ",";
    }
    std::printf(
        "\n  ],\n  \"files_scanned\": %d,\n  \"new\": %d,\n"
        "  \"baselined\": %d,\n  \"waiver_count\": %zu,\n"
        "  \"waiver_budget\": %d,\n  \"budget_exceeded\": %s\n}\n",
        report.files_scanned, fresh, baselined, report.waivers.size(),
        max_waivers, budget_exceeded ? "true" : "false");
  } else {
    if (list_waivers || budget_exceeded) {
      for (const pdslint::Waiver& w : report.waivers) {
        std::printf("%s:%d: [waiver %s] %s%s\n", w.file.c_str(), w.line,
                    pdslint::RuleName(w.rule), w.reason.c_str(),
                    w.used ? "" : " (UNUSED)");
      }
    }
    std::string budget =
        max_waivers < 0 ? "unlimited" : std::to_string(max_waivers);
    std::printf(
        "pdslint: %d files, %d findings (%d new, %d baselined), "
        "%zu waivers (budget %s)\n",
        report.files_scanned, fresh + baselined, fresh, baselined,
        report.waivers.size(), budget.c_str());
  }

  if (budget_exceeded) {
    std::fprintf(stderr,
                 "pdslint: waiver budget exceeded (%zu > %d) — remove "
                 "exemptions or raise --max-waivers deliberately\n",
                 report.waivers.size(), max_waivers);
    return 1;
  }
  return fresh == 0 ? 0 : 1;
}
