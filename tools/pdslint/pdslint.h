#ifndef PDS_TOOLS_PDSLINT_PDSLINT_H_
#define PDS_TOOLS_PDSLINT_PDSLINT_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

/// pdslint — repo-specific static analysis for libpds.
///
/// Enforces the invariants the tutorial's Part II imposes on embedded code
/// (tiny-RAM accounting through mcu::RamGauge) and the repo-wide error
/// discipline (every fallible call returns a [[nodiscard]] Status/Result and
/// value() is only reached behind a guard), plus basic header hygiene.
///
/// The analyzer is deliberately lexical: it strips comments and string
/// literals, tracks brace structure (namespace / type / function / loop
/// frames), and applies line-oriented rules. That is enough to make the
/// invariants machine-checked without a full C++ frontend, and false
/// positives have two escape hatches: an inline waiver comment
/// (`// pdslint: ram-exempt(<reason>)`) counted against a budget, and a
/// baseline file for grandfathered findings.
namespace pdslint {

enum class Rule {
  kRamAlloc,         // unaccounted allocation in an embedded module
  kResultNodiscard,  // Status/Result-returning header API missing [[nodiscard]]
  kResultGuard,      // .value() with no ok()/has_value()/ASSIGN_OR_RETURN guard
  kHeaderGuard,      // header without include guard / #pragma once
  kUsingNamespace,   // `using namespace` at header scope
  kGlobalVar,        // mutable namespace-scope global in a header outside common/
  kObsInEmbedded,    // obs registry lookup in a loop / dynamic span name in an
                     // embedded module (instrumentation must be preallocated)
  kNetBoundedFrame,  // wire decoder allocates from a declared length without
                     // checking it against a compile-time kMax* bound first
  kSecretFlow,       // secret-tagged value reaches a sink (net frame encoder,
                     // obs name/label, SSI-compiled code, print) without a
                     // sanitizer (Encrypt*/Hmac/Mac/Attest) or declassify
  kConstTime,        // secret-dependent branch / secret-indexed table load in
                     // a crypto kernel file (montgomery*/bigint*)
};

/// Stable rule name used in diagnostics, waivers, and baselines.
const char* RuleName(Rule rule);

/// Parses a rule name or waiver alias ("ram" == "ram-alloc", "guard" ==
/// "result-guard", "nodiscard" == "result-nodiscard", "obs" ==
/// "obs-in-embedded", "frame" == "net-bounded-frame", "secret" ==
/// "secret-flow", "ct" == "const-time"). Returns false when unknown.
bool ParseRuleName(const std::string& name, Rule* out);

struct Finding {
  std::string file;     // path as passed to AnalyzeFile
  int line = 0;         // 1-based
  Rule rule = Rule::kRamAlloc;
  std::string message;
  std::string snippet;  // trimmed source line, for fingerprinting
  int occurrence = 0;   // Nth identical (file, rule, snippet) triple
};

struct Waiver {
  std::string file;
  int line = 0;         // line the waiver applies to
  Rule rule = Rule::kRamAlloc;
  std::string reason;
  bool used = false;    // suppressed at least one would-be finding
};

struct Options {
  /// Modules under the tiny-RAM rule (tutorial Part II: code that must run
  /// in the secure MCU's <128 KB of RAM; "net" includes the token-side wire
  /// runtime, which shares that budget, and "sim" hosts a million token
  /// endpoints in one process so its per-token state is held to the same
  /// reserve-don't-grow discipline).
  std::vector<std::string> embedded_modules{"embdb", "search", "logstore",
                                            "flash", "mcu", "net", "sim"};
  /// Modules whose headers must spell [[nodiscard]] on every
  /// Status/Result-returning declaration.
  std::vector<std::string> nodiscard_modules{"common", "crypto", "embdb",
                                             "logstore", "mcu", "flash",
                                             "net", "sim"};
  /// Modules whose Decode*/Deserialize*/Parse* functions handle untrusted
  /// wire input and must check declared lengths against a compile-time kMax*
  /// bound before any allocation (the net-bounded-frame rule). "sim"
  /// carries real net::Frame bytes, so any decode helper it grows is under
  /// the same rule.
  std::vector<std::string> framed_modules{"net", "sim"};
  /// Basename prefixes of the crypto kernel files under the const-time rule
  /// (secret-dependent branches and secret-indexed loads are findings).
  std::vector<std::string> const_time_files{"montgomery", "bigint"};
  /// Basename prefixes of files compiled into the SSI: any secret-tagged
  /// value or decrypt output appearing there is a secret-flow finding (the
  /// SSI must see ciphertext only).
  std::vector<std::string> ssi_files{"ssi_server"};
  /// Maximum number of inline waivers across the scanned tree; -1 = no cap.
  int max_waivers = -1;
};

/// Cross-file symbol table for the secret-flow rule, built in two passes:
/// pass one collects `// pdslint: secret` / `// pdslint: sink` annotations
/// and the built-in seeds (SymmetricKey/PrivateKey declarations, Decrypt*
/// functions), pass two iterates per-function taint propagation to a
/// fixpoint so functions *returning* secrets taint their call sites across
/// files.
struct SourceIndex {
  /// Functions whose return value is secret, keyed (module, name).
  /// Annotated functions use module "*" (match in any module); inferred
  /// ones are module-scoped so unrelated same-name helpers don't collide.
  std::set<std::pair<std::string, std::string>> secret_functions;
  /// Module -> identifiers holding secret material in that module.
  std::map<std::string, std::set<std::string>> module_secrets;
  /// Functions that are sinks (`// pdslint: sink`): net frame encoders,
  /// obs registry lookups / span constructors.
  std::set<std::string> sink_functions;
};

/// Builds the secret-flow symbol table over (path, content) pairs.
SourceIndex BuildIndex(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Options& options);

struct Report {
  std::vector<Finding> findings;
  std::vector<Waiver> waivers;
  int files_scanned = 0;
};

/// Module a path belongs to: the first component after the last "src/"
/// segment, else the name of the immediate parent directory ("" for none).
/// `tests/pdslint_fixtures/embdb/x.cc` therefore lands in module "embdb".
std::string ModuleOf(const std::string& path);

/// Runs every applicable rule over one file's contents, appending findings
/// and waivers to `report`. Builds a single-file SourceIndex, so
/// cross-file secret propagation needs AnalyzeTree (or the overload below).
void AnalyzeFile(const std::string& path, const std::string& content,
                 const Options& options, Report* report);

/// Same, but resolves secret/sink symbols against a pre-built index.
void AnalyzeFile(const std::string& path, const std::string& content,
                 const Options& options, const SourceIndex& index,
                 Report* report);

/// Recursively analyzes every .h/.cc/.cpp under each root (a root may also be
/// a single file). Skips build*/ and hidden directories.
Report AnalyzeTree(const std::vector<std::string>& roots,
                   const Options& options);

/// Content-keyed fingerprint, stable across unrelated edits (no line
/// numbers): "<rule>|<module>/<basename>|<hash-of-snippet>#<occurrence>".
std::string Fingerprint(const Finding& finding);

/// "file:line: [rule] message".
std::string FormatFinding(const Finding& finding);

}  // namespace pdslint

#endif  // PDS_TOOLS_PDSLINT_PDSLINT_H_
