#include "pdslint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

namespace pdslint {
namespace {

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

bool IsHeaderPath(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// ---------------------------------------------------------------------------
// Pass 0: split into lines, blank out comments and string/char literals in a
// "code" view, and keep the comment text per line for waiver parsing.
// ---------------------------------------------------------------------------

struct Scrubbed {
  std::vector<std::string> code;      // literals/comments replaced by spaces
  std::vector<std::string> comments;  // comment text only, per line
};

Scrubbed Scrub(const std::string& content) {
  enum State { kCode, kLineComment, kBlockComment, kString, kChar };
  Scrubbed out;
  std::string code_line, comment_line;
  State state = kCode;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == kLineComment) state = kCode;
      out.code.push_back(code_line);
      out.comments.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      continue;
    }
    switch (state) {
      case kCode:
        if (c == '/' && next == '/') {
          state = kLineComment;
          ++i;
          code_line += "  ";
        } else if (c == '/' && next == '*') {
          state = kBlockComment;
          ++i;
          code_line += "  ";
        } else if (c == '"') {
          state = kString;
          code_line += '"';
        } else if (c == '\'') {
          state = kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case kBlockComment:
        if (c == '*' && next == '/') {
          state = kCode;
          ++i;
          code_line += "  ";
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
    }
  }
  out.code.push_back(code_line);
  out.comments.push_back(comment_line);
  return out;
}

// ---------------------------------------------------------------------------
// Pass 1: brace-frame structure. Classifies each `{ ... }` block as a
// namespace, type, function, loop, control block, or initializer so rules
// can ask "which function encloses line N?" and "is line N inside a loop?".
// ---------------------------------------------------------------------------

enum class FrameKind { kFile, kNamespace, kType, kFunction, kLoop, kControl, kInit };

struct Frame {
  FrameKind kind = FrameKind::kFile;
  int parent = -1;
  int open_line = 0;   // 0-based
  int close_line = -1; // filled at the closing brace; last line if unclosed
};

struct Structure {
  std::vector<Frame> frames;       // frames[0] is the synthetic file frame
  std::vector<int> line_frame;     // innermost frame at the start of each line
};

const std::regex kControlHead(R"((^|[^\w])(if|switch|catch|else)\b)");
const std::regex kLoopHead(R"((^|[^\w])(for|while|do)\b)");
const std::regex kTypeHead(R"((^|[^\w])(class|struct|union|enum)\s)");

FrameKind ClassifyHead(const std::string& head, int paren_depth) {
  if (paren_depth > 0) return FrameKind::kInit;
  if (head.find("namespace") != std::string::npos) return FrameKind::kNamespace;
  if (std::regex_search(head, kLoopHead)) return FrameKind::kLoop;
  if (std::regex_search(head, kControlHead)) return FrameKind::kControl;
  std::string t = Trim(head);
  if (t.empty() || t.back() == '=' || t.back() == ',' || t.back() == '(') {
    return FrameKind::kInit;
  }
  if (std::regex_search(head, kTypeHead) &&
      head.find('(') == std::string::npos) {
    return FrameKind::kType;
  }
  if (head.find('(') != std::string::npos) return FrameKind::kFunction;
  return FrameKind::kInit;
}

Structure BuildStructure(const std::vector<std::string>& code) {
  Structure st;
  st.frames.push_back(Frame{});  // file frame
  st.frames[0].close_line = static_cast<int>(code.size()) - 1;
  std::vector<int> stack{0};
  std::string head;
  int paren_depth = 0;
  for (size_t ln = 0; ln < code.size(); ++ln) {
    st.line_frame.push_back(stack.back());
    for (char c : code[ln]) {
      switch (c) {
        case '(':
          ++paren_depth;
          head += c;
          break;
        case ')':
          if (paren_depth > 0) --paren_depth;
          head += c;
          break;
        case '{': {
          Frame f;
          f.kind = ClassifyHead(head, paren_depth);
          f.parent = stack.back();
          f.open_line = static_cast<int>(ln);
          st.frames.push_back(f);
          stack.push_back(static_cast<int>(st.frames.size()) - 1);
          head.clear();
          break;
        }
        case '}':
          if (stack.size() > 1) {
            st.frames[stack.back()].close_line = static_cast<int>(ln);
            stack.pop_back();
          }
          head.clear();
          break;
        case ';':
          if (paren_depth == 0) head.clear();
          else head += c;
          break;
        default:
          head += c;
      }
    }
  }
  for (Frame& f : st.frames) {
    if (f.close_line < 0) f.close_line = static_cast<int>(code.size()) - 1;
  }
  return st;
}

// Innermost enclosing function frame for a line; -1 when at namespace scope.
int EnclosingFunction(const Structure& st, int line) {
  int f = st.line_frame[line];
  while (f >= 0 && st.frames[f].kind != FrameKind::kFunction) {
    f = st.frames[f].parent;
  }
  return f;
}

// True when the line sits inside a loop of its enclosing function (or inside
// any loop when at namespace scope). Also catches the brace-less
// `for (...) stmt;` shape by peeking at the current and two previous lines.
bool InLoop(const Structure& st, const std::vector<std::string>& code,
            int line) {
  for (int f = st.line_frame[line]; f >= 0; f = st.frames[f].parent) {
    if (st.frames[f].kind == FrameKind::kLoop) return true;
    if (st.frames[f].kind == FrameKind::kFunction) break;
  }
  static const std::regex loop_start(R"(^\s*(for|while)\s*\()");
  for (int i = line; i >= 0 && i >= line - 2; --i) {
    if (std::regex_search(code[i], loop_start)) return true;
  }
  return false;
}

// True when any frame at or above `line`'s position is at namespace/file
// scope only (no type/function frame) — i.e. the line declares at namespace
// scope.
bool AtNamespaceScope(const Structure& st, int line) {
  for (int f = st.line_frame[line]; f >= 0; f = st.frames[f].parent) {
    FrameKind k = st.frames[f].kind;
    if (k == FrameKind::kFunction || k == FrameKind::kType ||
        k == FrameKind::kLoop || k == FrameKind::kControl ||
        k == FrameKind::kInit) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

// `// pdslint: ram-exempt(reason)` or `// pdslint: exempt(rule, reason)`.
// The reason runs to the last ')' so it may itself contain parentheses.
// `// pdslint: declassify(reason)` is the secret-flow rule's waiver form: it
// both suppresses findings on the covered lines and stops taint propagation
// through them (the value is deliberately made public).
const std::regex kWaiverShort(R"(pdslint:\s*([a-z-]+)-exempt\((.*)\))");
const std::regex kWaiverLong(R"(pdslint:\s*exempt\(\s*([a-z-]+)\s*,\s*(.*)\))");
const std::regex kDeclassify(R"(pdslint:\s*declassify\((.*)\))");

struct WaiverSpan {
  int first_line;  // 0-based, inclusive
  int last_line;   // 0-based, inclusive
  Rule rule;
  size_t index;    // into report->waivers
};

struct FileWaivers {
  std::vector<WaiverSpan> spans;
};

void CollectWaivers(const std::string& path, const Scrubbed& s,
                    const Structure& st, Report* report, FileWaivers* fw) {
  for (size_t ln = 0; ln < s.comments.size(); ++ln) {
    if (s.comments[ln].find("pdslint:") == std::string::npos) continue;
    // A waiver may wrap onto following comment-only lines; join them so the
    // closing ')' is seen.
    std::string comment = s.comments[ln];
    for (size_t j = ln + 1;
         j < s.comments.size() && !s.comments[j].empty() &&
         Trim(s.code[j]).empty() &&
         s.comments[j].find("pdslint:") == std::string::npos;
         ++j) {
      comment += ' ' + s.comments[j];
    }
    std::smatch m;
    std::string rule_name, reason;
    if (std::regex_search(comment, m, kWaiverShort)) {
      rule_name = m[1];
      reason = Trim(m[2]);
    } else if (std::regex_search(comment, m, kWaiverLong)) {
      rule_name = m[1];
      reason = Trim(m[2]);
    } else if (std::regex_search(comment, m, kDeclassify)) {
      rule_name = "secret-flow";
      reason = Trim(m[1]);
    } else {
      continue;
    }
    Rule rule;
    if (!ParseRuleName(rule_name, &rule)) continue;
    // A waiver on a code-bearing line covers that line. A waiver on its own
    // line covers the next line with code — and when that line starts a
    // function, the whole function body (so one justified exemption covers a
    // lexer loop instead of ten line-waivers; the budget still counts it).
    int target = static_cast<int>(ln);
    int last = target;
    if (Trim(s.code[ln]).empty()) {
      for (size_t j = ln + 1; j < s.code.size(); ++j) {
        if (!Trim(s.code[j]).empty()) {
          target = static_cast<int>(j);
          last = target;
          break;
        }
      }
      // Multi-line signatures put the `{` up to a few lines below the
      // declaration start; accept a function frame opening in that window.
      for (size_t fi = 1; fi < st.frames.size(); ++fi) {
        const Frame& f = st.frames[fi];
        if (f.kind == FrameKind::kFunction && f.open_line >= target &&
            f.open_line <= target + 3) {
          last = f.close_line;
          break;
        }
      }
    }
    Waiver w;
    w.file = path;
    w.line = target + 1;
    w.rule = rule;
    w.reason = reason;
    report->waivers.push_back(w);
    fw->spans.push_back(WaiverSpan{target, last, rule,
                                   report->waivers.size() - 1});
  }
}

// ---------------------------------------------------------------------------
// Finding emission (waiver-aware, occurrence-numbered)
// ---------------------------------------------------------------------------

struct Emitter {
  const std::string& path;
  const std::vector<std::string>& raw_lines;
  Report* report;
  FileWaivers* waivers;
  std::map<std::pair<Rule, std::string>, int> occurrence;

  void Emit(int line0, Rule rule, std::string message) {
    for (const WaiverSpan& span : waivers->spans) {
      if (span.rule == rule && line0 >= span.first_line &&
          line0 <= span.last_line) {
        report->waivers[span.index].used = true;
        return;
      }
    }
    Finding f;
    f.file = path;
    f.line = line0 + 1;
    f.rule = rule;
    f.message = std::move(message);
    f.snippet = Trim(line0 < static_cast<int>(raw_lines.size())
                         ? raw_lines[line0]
                         : "");
    f.occurrence = occurrence[{rule, f.snippet}]++;
    report->findings.push_back(std::move(f));
  }
};

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

// ---------------------------------------------------------------------------
// Rule: ram-alloc
// ---------------------------------------------------------------------------

const std::regex kAllocPrimitive(
    R"((^|[^\w.])new\b|\b(malloc|calloc|realloc|strdup)\s*\()");
const std::regex kGrowthCall(
    R"((\.|->)\s*(push_back|emplace_back|emplace|insert|append)\s*\()");
const std::regex kStringConcat(R"(\+=)");
const std::regex kGaugeMention(
    R"(\bRamCharge\b|\bRamGauge\b|\bgauge\b|\bgauge_\b|\bcharge\b|\bcharge_\b|ram_gauge|\bAcquire\s*\(|\bGrow\s*\()");

bool FunctionMentions(const Structure& st,
                      const std::vector<std::string>& code, int line,
                      const std::regex& pattern) {
  int f = EnclosingFunction(st, line);
  if (f < 0) return false;
  for (int i = st.frames[f].open_line; i <= st.frames[f].close_line; ++i) {
    if (std::regex_search(code[i], pattern)) return true;
  }
  return false;
}

// Growth into a container the function reserved up-front is bounded: the
// allocation happens (and should be charged) at the reservation, not in the
// loop. Lexical, so a reserve on any container in the function suppresses
// all growth findings there — documented in DESIGN.md.
const std::regex kReserveMention(R"((\.|->)\s*reserve\s*\()");

void CheckRamAlloc(const std::string& module, const Scrubbed& s,
                   const Structure& st, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    const std::string& line = s.code[ln];
    bool primitive = std::regex_search(line, kAllocPrimitive);
    bool growth = std::regex_search(line, kGrowthCall) &&
                  InLoop(st, s.code, static_cast<int>(ln));
    bool concat = std::regex_search(line, kStringConcat) &&
                  line.find('"') != std::string::npos &&
                  InLoop(st, s.code, static_cast<int>(ln));
    if (!primitive && !growth && !concat) continue;
    int line0 = static_cast<int>(ln);
    if (FunctionMentions(st, s.code, line0, kGaugeMention)) continue;
    if (!primitive && FunctionMentions(st, s.code, line0, kReserveMention)) {
      continue;
    }
    const char* what = primitive ? "direct heap allocation"
                      : growth  ? "unbounded container growth in a loop"
                                : "string concatenation in a loop";
    em->Emit(line0, Rule::kRamAlloc,
             std::string(what) + " in embedded module '" + module +
                 "' without mcu::RamGauge accounting; charge the gauge or "
                 "add '// pdslint: ram-exempt(<reason>)'");
  }
}

// ---------------------------------------------------------------------------
// Rule: obs-in-embedded
// ---------------------------------------------------------------------------

// Registry lookups and name interning take a mutex and may allocate; on an
// embedded hot path they must be hoisted to setup (a constructor or a
// function-local static) and the returned pointer reused per event.
const std::regex kObsRegistryLookup(
    R"((\.|->|::)\s*(GetCounter|GetGauge|GetHistogram|Intern)\s*\()");
// A span whose name is composed per construction heap-allocates per event;
// span names in embedded modules must be string literals (or interned once
// at setup, outside any loop).
const std::regex kObsSpanDecl(R"(\bobs\s*::\s*Span\s+\w+\s*\()");
const std::regex kObsDynamicName(
    R"(std\s*::\s*to_string\s*\(|std\s*::\s*string\s*\(|\.\s*c_str\s*\(\s*\))");

void CheckObsInEmbedded(const std::string& module, const Scrubbed& s,
                        const Structure& st, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    const std::string& line = s.code[ln];
    int line0 = static_cast<int>(ln);
    if (std::regex_search(line, kObsRegistryLookup) &&
        InLoop(st, s.code, line0)) {
      em->Emit(line0, Rule::kObsInEmbedded,
               "obs registry lookup / Intern inside a loop in embedded "
               "module '" + module +
                   "'; resolve the metric pointer once at setup and reuse "
                   "it on the hot path");
      continue;
    }
    if (std::regex_search(line, kObsSpanDecl) &&
        std::regex_search(line, kObsDynamicName)) {
      em->Emit(line0, Rule::kObsInEmbedded,
               "span name composed per event in embedded module '" + module +
                   "'; use a string literal (or Tracer::Intern at setup)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: net-bounded-frame
// ---------------------------------------------------------------------------

// A function whose name says it turns wire bytes into structures. The name
// sits on the line opening the function's brace frame or (multi-line
// signatures) up to two lines above it; statement lines — ending in ';' —
// are skipped so a call to DecodeFoo() just above an unrelated brace does
// not make that block a decoder.
const std::regex kDecoderName(R"(\b(Decode|Deserialize|Parse)\w*\s*\()");
// Anything that sizes or grows a container — the allocations a lying
// length field would drive.
const std::regex kFrameAlloc(
    R"((\.|->)\s*(reserve|resize|push_back|emplace_back|emplace|insert|append)\s*\(|(^|[^\w.])new\b|\b(malloc|calloc|realloc)\s*\()");
// The compile-time bounds the codec declares (kMaxFramePayload,
// kMaxBatchTuples, ...). Mentioning one before the allocation is the
// machine-checkable shape of "declared length checked against a bound".
const std::regex kBoundMention(R"(\bkMax\w+)");
// Packed-aggregate frames (RoundKind::kPackedCollect) carry a slot-count-
// sized label list one way and a single large ciphertext the other; both
// lengths are peer-controlled, so code on the packed path needs the packed-
// specific bounds (kMaxPackedSlots / kMaxPackedCiphertextBytes), not just
// the generic tuple bounds.
const std::regex kPackedMention(R"(\bkPackedCollect\b)");
const std::regex kPackedBound(R"(\bkMaxPacked\w+)");
// Materializing a BigInt from wire bytes allocates proportionally to the
// blob; on the packed path it is the ciphertext-length allocation.
const std::regex kWireMaterialize(R"(\bFromBytes\s*\()");

void CheckNetBoundedFrame(const std::string& module, const Scrubbed& s,
                          const Structure& st, Emitter* em) {
  for (size_t fi = 1; fi < st.frames.size(); ++fi) {
    const Frame& f = st.frames[fi];
    if (f.kind != FrameKind::kFunction) continue;
    bool is_decoder = false;
    for (int i = f.open_line; i >= 0 && i >= f.open_line - 2; --i) {
      std::string t = Trim(s.code[i]);
      if (!t.empty() && t.back() == ';') continue;
      if (std::regex_search(s.code[i], kDecoderName)) {
        is_decoder = true;
        break;
      }
    }
    bool packed = false;
    for (int i = f.open_line; i <= f.close_line; ++i) {
      if (std::regex_search(s.code[i], kPackedMention)) {
        packed = true;
        break;
      }
    }
    // Packed path, any function: FromBytes on a frame blob must sit behind a
    // kMaxPacked* length check (the ciphertext-length bound).
    if (packed) {
      bool packed_bounded = false;
      for (int i = f.open_line; i <= f.close_line; ++i) {
        if (std::regex_search(s.code[i], kPackedBound)) packed_bounded = true;
        if (!packed_bounded && std::regex_search(s.code[i], kWireMaterialize)) {
          em->Emit(i, Rule::kNetBoundedFrame,
                   "packed-aggregate path in module '" + module +
                       "' materializes a wire blob before checking it "
                       "against a kMaxPacked* bound; the peer controls the "
                       "ciphertext length");
        }
      }
    }
    if (!is_decoder) continue;
    bool bounded = false;
    bool packed_bounded = false;
    for (int i = f.open_line; i <= f.close_line; ++i) {
      if (std::regex_search(s.code[i], kBoundMention)) bounded = true;
      if (std::regex_search(s.code[i], kPackedBound)) packed_bounded = true;
      bool alloc = std::regex_search(s.code[i], kFrameAlloc);
      if (!bounded && alloc) {
        em->Emit(i, Rule::kNetBoundedFrame,
                 "decoder in module '" + module +
                     "' allocates before checking the declared length "
                     "against a compile-time kMax* bound; a hostile peer "
                     "controls that length");
      } else if (packed && !packed_bounded && alloc) {
        // Decoders special-casing the packed round must bound the slot
        // count with the packed-specific constant, not just kMaxBatchTuples
        // (2^16 tuples is far past any packed slot layout).
        em->Emit(i, Rule::kNetBoundedFrame,
                 "packed-round decoder in module '" + module +
                     "' allocates before checking the slot count against "
                     "kMaxPackedSlots");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: result-nodiscard
// ---------------------------------------------------------------------------

const std::regex kResultDecl(
    R"(^\s*((static|virtual|inline|explicit|constexpr)\s+)*(Status|Result<[^;={]*>)\s+[A-Za-z_]\w*\s*\()");
const std::regex kResultTypeAlone(
    R"(^\s*((static|virtual|inline|explicit|constexpr)\s+)*(Status|Result<[\w:<>,\s*&]*>)\s*$)");
const std::regex kNextLineIsDecl(R"(^\s*[A-Za-z_]\w*\s*\()");

void CheckResultNodiscard(const Scrubbed& s, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    const std::string& line = s.code[ln];
    std::string trimmed = Trim(line);
    if (trimmed.rfind("return", 0) == 0 || trimmed.rfind("using", 0) == 0 ||
        trimmed.rfind("friend", 0) == 0 || trimmed.rfind("typedef", 0) == 0) {
      continue;
    }
    bool decl = std::regex_search(line, kResultDecl);
    if (!decl && std::regex_search(line, kResultTypeAlone) &&
        ln + 1 < s.code.size() &&
        std::regex_search(s.code[ln + 1], kNextLineIsDecl)) {
      decl = true;
    }
    if (!decl) continue;
    if (line.find("[[nodiscard]]") != std::string::npos) continue;
    if (ln > 0 && s.code[ln - 1].find("[[nodiscard]]") != std::string::npos) {
      continue;
    }
    em->Emit(static_cast<int>(ln), Rule::kResultNodiscard,
             "Status/Result-returning declaration without [[nodiscard]]; "
             "dropped errors must not compile");
  }
}

// ---------------------------------------------------------------------------
// Rule: result-guard
// ---------------------------------------------------------------------------

const std::regex kValueCall(R"(\.\s*value\s*\(\s*\))");
const std::regex kGuardMention(
    R"(\.\s*ok\s*\(|has_value\s*\(|ASSIGN_OR_RETURN|RETURN_IF_ERROR|ASSERT_|EXPECT_|CHECK|\.\s*status\s*\()");

void CheckResultGuard(const Scrubbed& s, const Structure& st, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    if (!std::regex_search(s.code[ln], kValueCall)) continue;
    int f = EnclosingFunction(st, static_cast<int>(ln));
    if (f < 0) continue;  // namespace-scope initializer; out of scope
    bool guarded = false;
    for (int i = st.frames[f].open_line; i <= static_cast<int>(ln); ++i) {
      if (std::regex_search(s.code[i], kGuardMention)) {
        guarded = true;
        break;
      }
    }
    if (guarded) continue;
    em->Emit(static_cast<int>(ln), Rule::kResultGuard,
             ".value() reached without a preceding ok()/has_value()/"
             "PDS_ASSIGN_OR_RETURN guard in the same function");
  }
}

// ---------------------------------------------------------------------------
// Header hygiene rules
// ---------------------------------------------------------------------------

void CheckHeaderGuard(const Scrubbed& s, Emitter* em) {
  bool pragma_once = false, ifndef = false, define = false;
  for (const std::string& line : s.code) {
    std::string t = Trim(line);
    if (t.rfind("#pragma once", 0) == 0) pragma_once = true;
    if (t.rfind("#ifndef", 0) == 0) ifndef = true;
    if (ifndef && t.rfind("#define", 0) == 0) define = true;
  }
  if (pragma_once || (ifndef && define)) return;
  em->Emit(0, Rule::kHeaderGuard,
           "header has no include guard (#ifndef/#define pair or "
           "#pragma once)");
}

const std::regex kUsingNamespaceRe(R"(^\s*using\s+namespace\b)");

void CheckUsingNamespace(const Scrubbed& s, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    if (std::regex_search(s.code[ln], kUsingNamespaceRe)) {
      em->Emit(static_cast<int>(ln), Rule::kUsingNamespace,
               "'using namespace' in a header leaks into every includer");
    }
  }
}

const std::regex kExternMutable(R"(^\s*extern\s+(?!const\b|constexpr\b)\w)");
const std::regex kInlineOrStaticVar(
    R"(^\s*(inline|static)\s+(inline\s+|static\s+)*(?!const\b|constexpr\b|void\b|class\b|struct\b|enum\b|union\b)[A-Za-z_][\w:<>,]*\s+[A-Za-z_]\w*\s*(=|;|\{))");

void CheckGlobalVar(const Scrubbed& s, const Structure& st, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    if (!AtNamespaceScope(st, static_cast<int>(ln))) continue;
    const std::string& line = s.code[ln];
    if (line.find('(') != std::string::npos) continue;  // function-ish
    bool hit = std::regex_search(line, kExternMutable) ||
               std::regex_search(line, kInlineOrStaticVar);
    if (!hit) continue;
    em->Emit(static_cast<int>(ln), Rule::kGlobalVar,
             "mutable namespace-scope global in a header outside common/; "
             "globals defeat the per-token RAM budget");
  }
}

// ---------------------------------------------------------------------------
// Rules: secret-flow and const-time (shared taint engine)
//
// The annotation vocabulary (all in comments, so the compiler never sees it):
//   // pdslint: secret              on a declaration: that identifier holds
//                                   secret material (module-scoped); on a
//                                   function definition: its return value is
//                                   secret everywhere
//   // pdslint: secret(a, b)        on a function definition: the named
//                                   parameters are secret inside it
//   // pdslint: sink                on a function declaration — calls with a
//                                   tainted argument are findings
//   // pdslint: sink(F, G, ...)     same, naming the sink functions directly
//   // pdslint: declassify(reason)  waiver form of the secret-flow rule:
//                                   suppresses findings on the covered lines
//                                   AND stops taint through them
//
// Built-in seeds (no annotation needed): declarations of SymmetricKey /
// PrivateKey values, and any call to a function named Decrypt* (decrypt
// outputs in crypto::/mcu:: are secret by construction). Sanitizers — calls
// that legitimately consume a secret — are Encrypt*/Hmac*/Mac/Attest.
// ---------------------------------------------------------------------------

const std::regex kAnnSecretParams(R"(pdslint:\s*secret\(([^)]*)\))");
const std::regex kAnnSecretBare(R"(pdslint:\s*secret\b)");
const std::regex kAnnSinkList(R"(pdslint:\s*sink\(([^)]*)\))");
const std::regex kAnnSinkBare(R"(pdslint:\s*sink\b)");
const std::regex kSecretTypeDecl(R"(\b(SymmetricKey|PrivateKey)\b)");
const std::regex kIdent(R"([A-Za-z_]\w*)");
const std::regex kCallName(R"(([A-Za-z_]\w*)\s*\()");
const std::regex kSanitizerCall(R"(\b(Encrypt\w*|Hmac\w*|Mac|Attest)\s*\()");
const std::regex kPrintCall(
    R"(\b(printf|fprintf|snprintf|puts|fputs)\s*\(|\b(std\s*::\s*)?(cout|cerr|clog)\b\s*<<)");
// Assignment target: the identifier opening the lvalue chain directly before
// (an optional member/subscript chain and) an assignment operator.
const std::regex kAssign(
    R"(([A-Za-z_]\w*)((?:\.[A-Za-z_]\w*|->[A-Za-z_]\w*|\[[^\][]*\])*)\s*(?:[-+*/|&^]|<<|>>)?=(?!=))");
const std::regex kAssignMacro(R"((?:PDS_)?ASSIGN_OR_RETURN\s*\(\s*([^,]*),)");
// Growth into a container taints the container.
const std::regex kContainerPut(
    R"(([A-Za-z_]\w*)((?:\.[A-Za-z_]\w*|->[A-Za-z_]\w*|\[[^\][]*\])*)\s*(?:\.|->)\s*(push_back|emplace_back|emplace|insert|append|assign|push|push_front)\s*\()");
const std::regex kCtBranchHead(
    R"(^\s*(?:\}\s*)?(?:else\s+)?(if|while|for|switch)\s*\()");
const std::regex kSubscript(R"(\[([^\][]+)\])");
const std::regex kReturnStmt(R"(^\s*(?:co_)?return\b)");

bool IsKeywordIdent(const std::string& id) {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",  "return", "sizeof", "catch",
      "const",  "auto",   "static", "else",    "case",   "do",     "new",
      "delete", "struct", "class",  "enum",    "union",  "using",  "typedef",
      "void",   "int",    "bool",   "char",    "double", "float",  "long",
      "short",  "signed", "unsigned"};
  return kw.count(id) != 0;
}

bool PrefixMatches(const std::vector<std::string>& prefixes,
                   const std::string& basename) {
  for (const std::string& p : prefixes) {
    if (basename.rfind(p, 0) == 0) return true;
  }
  return false;
}

// Statements: body lines joined until one ends in ';', '{', '}' or ':' at
// the top level, so multi-line calls and conditions are matched as one text.
struct Statement {
  int line0 = 0;
  std::string text;
};

std::vector<Statement> JoinStatements(const Scrubbed& s, int begin, int end) {
  std::vector<Statement> out;
  std::string cur;
  int start = -1;
  for (int i = begin; i <= end && i < static_cast<int>(s.code.size()); ++i) {
    std::string t = Trim(s.code[i]);
    if (t.empty()) continue;
    if (cur.empty()) start = i;
    cur += t;
    cur += ' ';
    char last = t.back();
    if (last == ';' || last == '{' || last == '}' || last == ':' ||
        static_cast<int>(cur.size()) > 2000) {
      out.push_back(Statement{start, cur});
      cur.clear();
    }
  }
  if (!Trim(cur).empty()) out.push_back(Statement{start, cur});
  return out;
}

// First identifier followed by '(' that is not a control keyword — the
// function name on a signature line (qualifiers like SsiServer:: precede
// their own '(' only at the call, so the first hit is the right one).
std::string FirstCalleeName(const std::string& text) {
  auto begin = std::sregex_iterator(text.begin(), text.end(), kCallName);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string name = (*it)[1];
    if (!IsKeywordIdent(name)) return name;
  }
  return "";
}

// Name of the function whose frame is `fi`: scan the signature from up to
// two lines above the opening brace, skipping complete statements.
std::string FunctionNameOf(const Scrubbed& s, const Structure& st, int fi) {
  const Frame& f = st.frames[fi];
  for (int i = f.open_line; i >= 0 && i >= f.open_line - 2; --i) {
    std::string t = Trim(s.code[i]);
    if (!t.empty() && t.back() == ';' && i != f.open_line) continue;
    std::string name = FirstCalleeName(s.code[i]);
    if (!name.empty()) return name;
  }
  return "";
}

// Identifier declared on a line: for a function-ish line the callee name,
// otherwise the identifier directly before ';', '=', '{' or '['.
std::string DeclaredNameOn(const std::string& code) {
  std::string t = Trim(code);
  if (t.rfind("using", 0) == 0 || t.rfind("typedef", 0) == 0) return "";
  if (code.find('(') != std::string::npos) return FirstCalleeName(code);
  static const std::regex decl(R"(([A-Za-z_]\w*)\s*(?:[;={\[]))");
  std::smatch m;
  if (std::regex_search(code, m, decl)) return m[1];
  return "";
}

void SplitNames(const std::string& list, std::set<std::string>* out) {
  auto begin = std::sregex_iterator(list.begin(), list.end(), kIdent);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    out->insert(it->str());
  }
}

struct FileAnnotations {
  std::map<int, std::set<std::string>> fn_secret_params;  // frame -> names
  std::set<std::string> secret_names;  // module-scoped secret identifiers
  std::set<std::string> secret_fns;    // functions returning secrets
  std::set<std::string> sink_fns;
};

// Function frame opening at (or within three lines below) a target line —
// the same window the waiver spans use for multi-line signatures.
int FunctionFrameAt(const Structure& st, int target) {
  for (size_t fi = 1; fi < st.frames.size(); ++fi) {
    const Frame& f = st.frames[fi];
    if (f.kind == FrameKind::kFunction && f.open_line >= target &&
        f.open_line <= target + 3) {
      return static_cast<int>(fi);
    }
  }
  return -1;
}

FileAnnotations CollectAnnotations(const Scrubbed& s, const Structure& st) {
  FileAnnotations ann;
  for (size_t ln = 0; ln < s.comments.size(); ++ln) {
    if (s.comments[ln].find("pdslint:") == std::string::npos) continue;
    // An annotation may wrap onto following comment-only lines (long sink
    // lists); join them so the closing ')' is seen.
    std::string comment = s.comments[ln];
    for (size_t j = ln + 1;
         j < s.comments.size() && !s.comments[j].empty() &&
         Trim(s.code[j]).empty() &&
         s.comments[j].find("pdslint:") == std::string::npos;
         ++j) {
      comment += ' ' + s.comments[j];
    }
    // Target line: the annotated code line itself, or the next code-bearing
    // line when the annotation sits on its own line.
    int target = static_cast<int>(ln);
    if (Trim(s.code[ln]).empty()) {
      for (size_t j = ln + 1; j < s.code.size(); ++j) {
        if (!Trim(s.code[j]).empty()) {
          target = static_cast<int>(j);
          break;
        }
      }
    }
    std::smatch m;
    if (std::regex_search(comment, m, kAnnSinkList)) {
      SplitNames(m[1], &ann.sink_fns);
    } else if (std::regex_search(comment, m, kAnnSinkBare)) {
      std::string name = DeclaredNameOn(s.code[target]);
      if (!name.empty()) ann.sink_fns.insert(name);
    } else if (std::regex_search(comment, m, kAnnSecretParams)) {
      int fi = FunctionFrameAt(st, target);
      if (fi >= 0) SplitNames(m[1], &ann.fn_secret_params[fi]);
    } else if (std::regex_search(comment, m, kAnnSecretBare)) {
      std::string tcode = Trim(s.code[target]);
      if (!tcode.empty() && tcode.back() == ';') {
        // A ';'-terminated target is a declaration, never a definition
        // head — a function that happens to open a few lines below must
        // not claim the annotation. A prototype marks the function's
        // return value secret; a variable becomes a module secret.
        std::string name = DeclaredNameOn(s.code[target]);
        if (name.empty()) {
        } else if (tcode.find('(') != std::string::npos) {
          ann.secret_fns.insert(name);
        } else {
          ann.secret_names.insert(name);
        }
      } else {
        int fi = FunctionFrameAt(st, target);
        if (fi >= 0) {
          std::string name = FunctionNameOf(s, st, fi);
          if (!name.empty()) ann.secret_fns.insert(name);
        } else {
          std::string name = DeclaredNameOn(s.code[target]);
          if (!name.empty()) ann.secret_names.insert(name);
        }
      }
    }
  }
  // Built-in seed: a SymmetricKey / PrivateKey declaration names a secret.
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    const std::string& code = s.code[ln];
    std::string t = Trim(code);
    if (t.rfind("using", 0) == 0 || t.rfind("typedef", 0) == 0 ||
        t.rfind("struct", 0) == 0 || t.rfind("class", 0) == 0) {
      continue;
    }
    std::smatch m;
    if (!std::regex_search(code, m, kSecretTypeDecl)) continue;
    std::string rest = m.suffix();
    std::smatch id;
    if (std::regex_search(rest, id, kIdent)) {
      ann.secret_names.insert(id.str());
    }
  }
  return ann;
}

// A parsed file plus everything the taint passes need.
struct TaintFile {
  std::string path;
  std::string module;
  std::string basename;
  Scrubbed s;
  Structure st;
  FileAnnotations ann;
  bool const_time = false;
  bool ssi = false;
};

bool NameMatchesSecretFn(const SourceIndex& index, const std::string& module,
                         const std::string& name) {
  if (name.rfind("Decrypt", 0) == 0) return true;
  if (index.secret_functions.count({"*", name})) return true;
  return index.secret_functions.count({module, name}) != 0;
}

// Extract the parenthesized argument zone of the first call to `name`.
std::string CallArgsZone(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || (!isalnum(static_cast<unsigned char>(
                                    text[pos - 1])) &&
                                text[pos - 1] != '_');
    size_t after = pos + name.size();
    while (after < text.size() && isspace(static_cast<unsigned char>(
                                      text[after]))) {
      ++after;
    }
    if (!left_ok || after >= text.size() || text[after] != '(') {
      pos += name.size();
      continue;
    }
    int depth = 0;
    size_t start = after + 1;
    for (size_t i = after; i < text.size(); ++i) {
      if (text[i] == '(') ++depth;
      if (text[i] == ')') {
        --depth;
        if (depth == 0) return text.substr(start, i - start);
      }
    }
    return text.substr(start);
  }
  return "";
}

// The per-function taint state: tainted identifier -> short provenance
// chain for the diagnostic ("fleet_key -> cfg (line 12) -> node (line 19)").
using TaintMap = std::map<std::string, std::string>;

// First tainted identifier (or secret call) in `text`; empty if clean.
std::string FirstTaintIn(const std::string& text, const TaintMap& tainted,
                         const std::set<std::string>& module_secrets,
                         const SourceIndex& index, const std::string& module,
                         std::string* why) {
  auto begin = std::sregex_iterator(text.begin(), text.end(), kIdent);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string id = it->str();
    auto t = tainted.find(id);
    if (t != tainted.end()) {
      if (why) *why = t->second;
      return id;
    }
    if (module_secrets.count(id)) {
      if (why) *why = "secret '" + id + "'";
      return id;
    }
  }
  auto cbegin = std::sregex_iterator(text.begin(), text.end(), kCallName);
  for (auto it = cbegin; it != std::sregex_iterator(); ++it) {
    std::string name = (*it)[1];
    if (IsKeywordIdent(name)) continue;
    if (NameMatchesSecretFn(index, module, name)) {
      if (why) *why = "decrypt/secret output of '" + name + "()'";
      return name;
    }
  }
  return "";
}

void TaintName(TaintMap* tainted, const std::string& name,
               const std::string& from, int line1) {
  if (name.empty() || IsKeywordIdent(name)) return;
  std::string chain = from + " -> " + name + " (line " +
                      std::to_string(line1) + ")";
  if (chain.size() > 300) chain = "..." + chain.substr(chain.size() - 297);
  auto it = tainted->find(name);
  if (it == tainted->end()) (*tainted)[name] = chain;
}

// Range-for over a tainted container taints the loop bindings:
// `for (const auto& [g, st] : partial)`. Identifiers starting uppercase are
// type names under the repo's style and are skipped.
void TaintRangeForBindings(TaintMap* tainted, const std::string& text,
                           const std::string& why, int line1) {
  static const std::regex range_for(R"(for\s*\(([^:;]*?):([^;]*)\))");
  std::smatch m;
  if (!std::regex_search(text, m, range_for)) return;
  std::string decls = m[1];
  auto begin = std::sregex_iterator(decls.begin(), decls.end(), kIdent);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string id = it->str();
    if (IsKeywordIdent(id) || isupper(static_cast<unsigned char>(id[0]))) {
      continue;
    }
    TaintName(tainted, id, why, line1);
  }
}

bool InSpanOfRule(const FileWaivers& fw, int line0, Rule rule,
                  Report* report, bool mark_used) {
  for (const WaiverSpan& span : fw.spans) {
    if (span.rule == rule && line0 >= span.first_line &&
        line0 <= span.last_line) {
      if (mark_used) report->waivers[span.index].used = true;
      return true;
    }
  }
  return false;
}

// One propagation-plus-detection pass over a top-level function (nested
// lambda frames are folded in: captures share the enclosing taint state).
// With a null emitter it only answers "does this function return a secret?"
// — the fixpoint pass BuildIndex iterates.
bool PropagateFunction(const TaintFile& tf, int fi, const SourceIndex& index,
                       const FileWaivers& fw, Report* report, Emitter* em) {
  const Frame& f = tf.st.frames[fi];
  auto mit = index.module_secrets.find(tf.module);
  static const std::set<std::string> kEmpty;
  const std::set<std::string>& msecrets =
      mit == index.module_secrets.end() ? kEmpty : mit->second;

  TaintMap tainted;
  // Parameter seeds drive detection only, not secret-return inference
  // (em == nullptr): a caller passing a secret argument already taints its
  // own statement, so inferring "returns secret" from a secret *parameter*
  // would double-count and cascade taint through every call site.
  if (em != nullptr) {
    auto pit = tf.ann.fn_secret_params.find(fi);
    if (pit != tf.ann.fn_secret_params.end()) {
      for (const std::string& p : pit->second) {
        tainted[p] = "secret parameter '" + p + "'";
      }
    }
  }

  std::vector<Statement> stmts =
      JoinStatements(tf.s, f.open_line, f.close_line);
  bool returns_secret = false;
  std::set<int> flow_flagged, ct_flagged;

  // Two rounds so taint carried backwards by loops still lands.
  for (int round = 0; round < 2; ++round) {
    for (const Statement& stmt : stmts) {
      std::string why;
      std::string hit = FirstTaintIn(stmt.text, tainted, msecrets, index,
                                     tf.module, &why);
      bool is_tainted = !hit.empty();

      // Declassified lines sanitize: no findings, no propagation.
      if (InSpanOfRule(fw, stmt.line0, Rule::kSecretFlow, report,
                       /*mark_used=*/is_tainted)) {
        continue;
      }
      bool sanitized = std::regex_search(stmt.text, kSanitizerCall);

      if (is_tainted && !sanitized) {
        int line1 = stmt.line0 + 1;
        std::smatch m;
        if (std::regex_search(stmt.text, m, kAssignMacro)) {
          std::string decl = m[1];
          std::string last;
          auto b = std::sregex_iterator(decl.begin(), decl.end(), kIdent);
          for (auto it = b; it != std::sregex_iterator(); ++it) {
            if (!IsKeywordIdent(it->str())) last = it->str();
          }
          TaintName(&tainted, last, why, line1);
        }
        if (std::regex_search(stmt.text, m, kAssign)) {
          TaintName(&tainted, m[1], why, line1);
        }
        if (std::regex_search(stmt.text, m, kContainerPut)) {
          TaintName(&tainted, m[1], why, line1);
        }
        TaintRangeForBindings(&tainted, stmt.text, why, line1);
        if (std::regex_search(stmt.text, kReturnStmt)) {
          returns_secret = true;
        }
      }

      if (em == nullptr || round == 0) continue;  // detect on final round

      // ---- secret-flow sinks ----
      if (!flow_flagged.count(stmt.line0)) {
        std::string sink_name;
        auto cb = std::sregex_iterator(stmt.text.begin(), stmt.text.end(),
                                       kCallName);
        for (auto it = cb; it != std::sregex_iterator(); ++it) {
          std::string name = (*it)[1];
          if (index.sink_functions.count(name) == 0) continue;
          std::string zone = CallArgsZone(stmt.text, name);
          if (std::regex_search(zone, kSanitizerCall)) continue;
          std::string zwhy;
          if (!FirstTaintIn(zone, tainted, msecrets, index, tf.module, &zwhy)
                   .empty()) {
            sink_name = name;
            why = zwhy;
            break;
          }
        }
        if (!sink_name.empty()) {
          flow_flagged.insert(stmt.line0);
          em->Emit(stmt.line0, Rule::kSecretFlow,
                   "secret reaches sink '" + sink_name +
                       "' without Encrypt*/Hmac/Mac/Attest or a "
                       "declassify waiver; path: " + why);
        } else if (is_tainted && !sanitized &&
                   std::regex_search(stmt.text, kPrintCall)) {
          flow_flagged.insert(stmt.line0);
          em->Emit(stmt.line0, Rule::kSecretFlow,
                   "secret reaches a log/print call; path: " + why);
        } else if (tf.ssi && is_tainted) {
          flow_flagged.insert(stmt.line0);
          em->Emit(stmt.line0, Rule::kSecretFlow,
                   "secret material inside SSI-compiled code (the SSI must "
                   "see ciphertext and bounded metadata only); path: " + why);
        }
      }

      // ---- const-time ----
      if (tf.const_time && !ct_flagged.count(stmt.line0)) {
        std::smatch bm;
        std::string ct_why;
        if (std::regex_search(stmt.text, bm, kCtBranchHead)) {
          std::string cond = CallArgsZone(stmt.text, bm[1]);
          std::string twhy;
          std::string tid = FirstTaintIn(cond, tainted, msecrets, index,
                                         tf.module, &twhy);
          if (!tid.empty()) {
            bool early_exit =
                stmt.text.find("break") != std::string::npos ||
                stmt.text.find("return") != std::string::npos ||
                stmt.text.find("continue") != std::string::npos;
            ct_flagged.insert(stmt.line0);
            em->Emit(stmt.line0, Rule::kConstTime,
                     std::string("secret-dependent ") +
                         (early_exit ? "early exit" : "branch") +
                         " (timing leak): '" + bm[1].str() +
                         "' condition depends on " + twhy);
          }
        } else {
          size_t q = stmt.text.find('?');
          if (q != std::string::npos &&
              stmt.text.find(':', q) != std::string::npos) {
            std::string cond = stmt.text.substr(0, q);
            std::string twhy;
            if (!FirstTaintIn(cond, tainted, msecrets, index, tf.module,
                              &twhy)
                     .empty()) {
              ct_flagged.insert(stmt.line0);
              em->Emit(stmt.line0, Rule::kConstTime,
                       "secret-dependent select (?:) — both arms must be "
                       "computed and masked; condition depends on " + twhy);
            }
          }
        }
        if (!ct_flagged.count(stmt.line0)) {
          auto sb = std::sregex_iterator(stmt.text.begin(), stmt.text.end(),
                                         kSubscript);
          for (auto it = sb; it != std::sregex_iterator(); ++it) {
            std::string idx = (*it)[1];
            std::string twhy;
            if (!FirstTaintIn(idx, tainted, msecrets, index, tf.module,
                              &twhy)
                     .empty()) {
              ct_flagged.insert(stmt.line0);
              em->Emit(stmt.line0, Rule::kConstTime,
                       "secret-indexed table load (cache-timing leak): "
                       "index depends on " + twhy);
              break;
            }
          }
        }
      }
    }
  }
  return returns_secret;
}

// Top-level function frames: a kFunction frame with no kFunction ancestor
// (lambda bodies are analyzed as part of their enclosing function, sharing
// its taint state through captures).
bool IsTopLevelFunction(const Structure& st, int fi) {
  if (st.frames[fi].kind != FrameKind::kFunction) return false;
  for (int p = st.frames[fi].parent; p >= 0; p = st.frames[p].parent) {
    if (st.frames[p].kind == FrameKind::kFunction) return false;
  }
  return true;
}

TaintFile ParseTaintFile(const std::string& path, const std::string& content,
                         const Options& options) {
  TaintFile tf;
  tf.path = path;
  tf.module = ModuleOf(path);
  tf.basename = Basename(path);
  tf.s = Scrub(content);
  tf.st = BuildStructure(tf.s.code);
  tf.ann = CollectAnnotations(tf.s, tf.st);
  tf.const_time = PrefixMatches(options.const_time_files, tf.basename);
  tf.ssi = PrefixMatches(options.ssi_files, tf.basename);
  return tf;
}

void CheckSecretFlow(const TaintFile& tf, const SourceIndex& index,
                     const FileWaivers& fw, Report* report, Emitter* em) {
  for (size_t fi = 1; fi < tf.st.frames.size(); ++fi) {
    if (!IsTopLevelFunction(tf.st, static_cast<int>(fi))) continue;
    PropagateFunction(tf, static_cast<int>(fi), index, fw, report, em);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const char* RuleName(Rule rule) {
  switch (rule) {
    case Rule::kRamAlloc: return "ram-alloc";
    case Rule::kResultNodiscard: return "result-nodiscard";
    case Rule::kResultGuard: return "result-guard";
    case Rule::kHeaderGuard: return "header-guard";
    case Rule::kUsingNamespace: return "using-namespace";
    case Rule::kGlobalVar: return "global-var";
    case Rule::kObsInEmbedded: return "obs-in-embedded";
    case Rule::kNetBoundedFrame: return "net-bounded-frame";
    case Rule::kSecretFlow: return "secret-flow";
    case Rule::kConstTime: return "const-time";
  }
  return "unknown";
}

bool ParseRuleName(const std::string& name, Rule* out) {
  if (name == "ram" || name == "ram-alloc") *out = Rule::kRamAlloc;
  else if (name == "nodiscard" || name == "result-nodiscard") *out = Rule::kResultNodiscard;
  else if (name == "guard" || name == "result-guard") *out = Rule::kResultGuard;
  else if (name == "header-guard") *out = Rule::kHeaderGuard;
  else if (name == "using-namespace") *out = Rule::kUsingNamespace;
  else if (name == "global-var") *out = Rule::kGlobalVar;
  else if (name == "obs" || name == "obs-in-embedded") *out = Rule::kObsInEmbedded;
  else if (name == "frame" || name == "net-bounded-frame") *out = Rule::kNetBoundedFrame;
  else if (name == "secret" || name == "secret-flow") *out = Rule::kSecretFlow;
  else if (name == "ct" || name == "const-time") *out = Rule::kConstTime;
  else return false;
  return true;
}

std::string ModuleOf(const std::string& path) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  size_t src = norm.rfind("/src/");
  if (norm.rfind("src/", 0) == 0) src = 0;
  else if (src != std::string::npos) src += 1;  // skip leading '/'
  if (src != std::string::npos) {
    size_t start = src + 4;
    size_t end = norm.find('/', start);
    if (end != std::string::npos) return norm.substr(start, end - start);
  }
  size_t slash = norm.find_last_of('/');
  if (slash == std::string::npos) return "";
  size_t prev = norm.find_last_of('/', slash - 1);
  return norm.substr(prev + 1, slash - prev - 1);
}

SourceIndex BuildIndex(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Options& options) {
  SourceIndex index;
  std::vector<TaintFile> parsed;
  parsed.reserve(files.size());
  // Pass one: annotations and built-in type seeds.
  for (const auto& [path, content] : files) {
    parsed.push_back(ParseTaintFile(path, content, options));
    const TaintFile& tf = parsed.back();
    for (const std::string& n : tf.ann.secret_fns) {
      index.secret_functions.insert({"*", n});
    }
    for (const std::string& n : tf.ann.secret_names) {
      index.module_secrets[tf.module].insert(n);
    }
    for (const std::string& n : tf.ann.sink_fns) {
      index.sink_functions.insert(n);
    }
  }
  // Pass two: iterate "does this function return a secret?" to a fixpoint,
  // so a secret flowing out through a helper taints the helper's call sites
  // in other files. Sanitizer-named functions are the boundary by definition
  // and never inferred secret-returning. Declassify spans already cut
  // propagation inside PropagateFunction, so they cut inference too.
  static const std::regex kSanitizerName(R"(^(Encrypt\w*|Hmac\w*|Mac|Attest)$)");
  Report scratch;
  std::vector<FileWaivers> fws(parsed.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    CollectWaivers(parsed[i].path, parsed[i].s, parsed[i].st, &scratch,
                   &fws[i]);
  }
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    for (size_t i = 0; i < parsed.size(); ++i) {
      const TaintFile& tf = parsed[i];
      for (size_t fi = 1; fi < tf.st.frames.size(); ++fi) {
        if (!IsTopLevelFunction(tf.st, static_cast<int>(fi))) continue;
        if (!PropagateFunction(tf, static_cast<int>(fi), index, fws[i],
                               &scratch, nullptr)) {
          continue;
        }
        std::string name =
            FunctionNameOf(tf.s, tf.st, static_cast<int>(fi));
        if (name.empty() || std::regex_match(name, kSanitizerName)) continue;
        if (index.secret_functions.insert({tf.module, name}).second) {
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return index;
}

void AnalyzeFile(const std::string& path, const std::string& content,
                 const Options& options, Report* report) {
  SourceIndex index = BuildIndex({{path, content}}, options);
  AnalyzeFile(path, content, options, index, report);
}

void AnalyzeFile(const std::string& path, const std::string& content,
                 const Options& options, const SourceIndex& index,
                 Report* report) {
  const std::string module = ModuleOf(path);
  const bool is_header = IsHeaderPath(path);
  Scrubbed s = Scrub(content);
  Structure st = BuildStructure(s.code);
  FileWaivers fw;
  CollectWaivers(path, s, st, report, &fw);
  std::vector<std::string> raw = SplitLines(content);
  Emitter em{path, raw, report, &fw, {}};

  if (Contains(options.embedded_modules, module)) {
    CheckRamAlloc(module, s, st, &em);
    CheckObsInEmbedded(module, s, st, &em);
  }
  if (Contains(options.framed_modules, module)) {
    CheckNetBoundedFrame(module, s, st, &em);
  }
  if (is_header && Contains(options.nodiscard_modules, module)) {
    CheckResultNodiscard(s, &em);
  }
  CheckResultGuard(s, st, &em);
  if (is_header) {
    CheckHeaderGuard(s, &em);
    CheckUsingNamespace(s, &em);
    if (module != "common") CheckGlobalVar(s, st, &em);
  }
  TaintFile tf = ParseTaintFile(path, content, options);
  CheckSecretFlow(tf, index, fw, report, &em);
  ++report->files_scanned;
}

Report AnalyzeTree(const std::vector<std::string>& roots,
                   const Options& options) {
  namespace fs = std::filesystem;
  Report report;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p.string());
      continue;
    }
    if (!fs::is_directory(p)) continue;
    for (auto it = fs::recursive_directory_iterator(p);
         it != fs::recursive_directory_iterator(); ++it) {
      const fs::path& entry = it->path();
      std::string name = entry.filename().string();
      if (it->is_directory() &&
          (name.rfind("build", 0) == 0 || name.rfind(".", 0) == 0)) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      std::string ext = entry.extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
        files.push_back(entry.string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<std::pair<std::string, std::string>> contents;
  contents.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    contents.emplace_back(file, buf.str());
  }
  SourceIndex index = BuildIndex(contents, options);
  for (const auto& [file, content] : contents) {
    AnalyzeFile(file, content, options, index, &report);
  }
  return report;
}

std::string Fingerprint(const Finding& finding) {
  std::ostringstream out;
  out << RuleName(finding.rule) << '|' << ModuleOf(finding.file) << '/'
      << Basename(finding.file) << '|' << std::hex << Fnv1a(finding.snippet)
      << '#' << std::dec << finding.occurrence;
  return out.str();
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ':' << finding.line << ": [" << RuleName(finding.rule)
      << "] " << finding.message;
  return out.str();
}

}  // namespace pdslint
