#include "pdslint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

namespace pdslint {
namespace {

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

bool IsHeaderPath(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// ---------------------------------------------------------------------------
// Pass 0: split into lines, blank out comments and string/char literals in a
// "code" view, and keep the comment text per line for waiver parsing.
// ---------------------------------------------------------------------------

struct Scrubbed {
  std::vector<std::string> code;      // literals/comments replaced by spaces
  std::vector<std::string> comments;  // comment text only, per line
};

Scrubbed Scrub(const std::string& content) {
  enum State { kCode, kLineComment, kBlockComment, kString, kChar };
  Scrubbed out;
  std::string code_line, comment_line;
  State state = kCode;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == kLineComment) state = kCode;
      out.code.push_back(code_line);
      out.comments.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      continue;
    }
    switch (state) {
      case kCode:
        if (c == '/' && next == '/') {
          state = kLineComment;
          ++i;
          code_line += "  ";
        } else if (c == '/' && next == '*') {
          state = kBlockComment;
          ++i;
          code_line += "  ";
        } else if (c == '"') {
          state = kString;
          code_line += '"';
        } else if (c == '\'') {
          state = kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case kBlockComment:
        if (c == '*' && next == '/') {
          state = kCode;
          ++i;
          code_line += "  ";
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
    }
  }
  out.code.push_back(code_line);
  out.comments.push_back(comment_line);
  return out;
}

// ---------------------------------------------------------------------------
// Pass 1: brace-frame structure. Classifies each `{ ... }` block as a
// namespace, type, function, loop, control block, or initializer so rules
// can ask "which function encloses line N?" and "is line N inside a loop?".
// ---------------------------------------------------------------------------

enum class FrameKind { kFile, kNamespace, kType, kFunction, kLoop, kControl, kInit };

struct Frame {
  FrameKind kind = FrameKind::kFile;
  int parent = -1;
  int open_line = 0;   // 0-based
  int close_line = -1; // filled at the closing brace; last line if unclosed
};

struct Structure {
  std::vector<Frame> frames;       // frames[0] is the synthetic file frame
  std::vector<int> line_frame;     // innermost frame at the start of each line
};

const std::regex kControlHead(R"((^|[^\w])(if|switch|catch|else)\b)");
const std::regex kLoopHead(R"((^|[^\w])(for|while|do)\b)");
const std::regex kTypeHead(R"((^|[^\w])(class|struct|union|enum)\s)");

FrameKind ClassifyHead(const std::string& head, int paren_depth) {
  if (paren_depth > 0) return FrameKind::kInit;
  if (head.find("namespace") != std::string::npos) return FrameKind::kNamespace;
  if (std::regex_search(head, kLoopHead)) return FrameKind::kLoop;
  if (std::regex_search(head, kControlHead)) return FrameKind::kControl;
  std::string t = Trim(head);
  if (t.empty() || t.back() == '=' || t.back() == ',' || t.back() == '(') {
    return FrameKind::kInit;
  }
  if (std::regex_search(head, kTypeHead) &&
      head.find('(') == std::string::npos) {
    return FrameKind::kType;
  }
  if (head.find('(') != std::string::npos) return FrameKind::kFunction;
  return FrameKind::kInit;
}

Structure BuildStructure(const std::vector<std::string>& code) {
  Structure st;
  st.frames.push_back(Frame{});  // file frame
  st.frames[0].close_line = static_cast<int>(code.size()) - 1;
  std::vector<int> stack{0};
  std::string head;
  int paren_depth = 0;
  for (size_t ln = 0; ln < code.size(); ++ln) {
    st.line_frame.push_back(stack.back());
    for (char c : code[ln]) {
      switch (c) {
        case '(':
          ++paren_depth;
          head += c;
          break;
        case ')':
          if (paren_depth > 0) --paren_depth;
          head += c;
          break;
        case '{': {
          Frame f;
          f.kind = ClassifyHead(head, paren_depth);
          f.parent = stack.back();
          f.open_line = static_cast<int>(ln);
          st.frames.push_back(f);
          stack.push_back(static_cast<int>(st.frames.size()) - 1);
          head.clear();
          break;
        }
        case '}':
          if (stack.size() > 1) {
            st.frames[stack.back()].close_line = static_cast<int>(ln);
            stack.pop_back();
          }
          head.clear();
          break;
        case ';':
          if (paren_depth == 0) head.clear();
          else head += c;
          break;
        default:
          head += c;
      }
    }
  }
  for (Frame& f : st.frames) {
    if (f.close_line < 0) f.close_line = static_cast<int>(code.size()) - 1;
  }
  return st;
}

// Innermost enclosing function frame for a line; -1 when at namespace scope.
int EnclosingFunction(const Structure& st, int line) {
  int f = st.line_frame[line];
  while (f >= 0 && st.frames[f].kind != FrameKind::kFunction) {
    f = st.frames[f].parent;
  }
  return f;
}

// True when the line sits inside a loop of its enclosing function (or inside
// any loop when at namespace scope). Also catches the brace-less
// `for (...) stmt;` shape by peeking at the current and two previous lines.
bool InLoop(const Structure& st, const std::vector<std::string>& code,
            int line) {
  for (int f = st.line_frame[line]; f >= 0; f = st.frames[f].parent) {
    if (st.frames[f].kind == FrameKind::kLoop) return true;
    if (st.frames[f].kind == FrameKind::kFunction) break;
  }
  static const std::regex loop_start(R"(^\s*(for|while)\s*\()");
  for (int i = line; i >= 0 && i >= line - 2; --i) {
    if (std::regex_search(code[i], loop_start)) return true;
  }
  return false;
}

// True when any frame at or above `line`'s position is at namespace/file
// scope only (no type/function frame) — i.e. the line declares at namespace
// scope.
bool AtNamespaceScope(const Structure& st, int line) {
  for (int f = st.line_frame[line]; f >= 0; f = st.frames[f].parent) {
    FrameKind k = st.frames[f].kind;
    if (k == FrameKind::kFunction || k == FrameKind::kType ||
        k == FrameKind::kLoop || k == FrameKind::kControl ||
        k == FrameKind::kInit) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

// `// pdslint: ram-exempt(reason)` or `// pdslint: exempt(rule, reason)`.
// The reason runs to the last ')' so it may itself contain parentheses.
const std::regex kWaiverShort(R"(pdslint:\s*([a-z-]+)-exempt\((.*)\))");
const std::regex kWaiverLong(R"(pdslint:\s*exempt\(\s*([a-z-]+)\s*,\s*(.*)\))");

struct WaiverSpan {
  int first_line;  // 0-based, inclusive
  int last_line;   // 0-based, inclusive
  Rule rule;
  size_t index;    // into report->waivers
};

struct FileWaivers {
  std::vector<WaiverSpan> spans;
};

void CollectWaivers(const std::string& path, const Scrubbed& s,
                    const Structure& st, Report* report, FileWaivers* fw) {
  for (size_t ln = 0; ln < s.comments.size(); ++ln) {
    if (s.comments[ln].find("pdslint:") == std::string::npos) continue;
    // A waiver may wrap onto following comment-only lines; join them so the
    // closing ')' is seen.
    std::string comment = s.comments[ln];
    for (size_t j = ln + 1;
         j < s.comments.size() && !s.comments[j].empty() &&
         Trim(s.code[j]).empty() &&
         s.comments[j].find("pdslint:") == std::string::npos;
         ++j) {
      comment += ' ' + s.comments[j];
    }
    std::smatch m;
    std::string rule_name, reason;
    if (std::regex_search(comment, m, kWaiverShort)) {
      rule_name = m[1];
      reason = Trim(m[2]);
    } else if (std::regex_search(comment, m, kWaiverLong)) {
      rule_name = m[1];
      reason = Trim(m[2]);
    } else {
      continue;
    }
    Rule rule;
    if (!ParseRuleName(rule_name, &rule)) continue;
    // A waiver on a code-bearing line covers that line. A waiver on its own
    // line covers the next line with code — and when that line starts a
    // function, the whole function body (so one justified exemption covers a
    // lexer loop instead of ten line-waivers; the budget still counts it).
    int target = static_cast<int>(ln);
    int last = target;
    if (Trim(s.code[ln]).empty()) {
      for (size_t j = ln + 1; j < s.code.size(); ++j) {
        if (!Trim(s.code[j]).empty()) {
          target = static_cast<int>(j);
          last = target;
          break;
        }
      }
      // Multi-line signatures put the `{` up to a few lines below the
      // declaration start; accept a function frame opening in that window.
      for (size_t fi = 1; fi < st.frames.size(); ++fi) {
        const Frame& f = st.frames[fi];
        if (f.kind == FrameKind::kFunction && f.open_line >= target &&
            f.open_line <= target + 3) {
          last = f.close_line;
          break;
        }
      }
    }
    Waiver w;
    w.file = path;
    w.line = target + 1;
    w.rule = rule;
    w.reason = reason;
    report->waivers.push_back(w);
    fw->spans.push_back(WaiverSpan{target, last, rule,
                                   report->waivers.size() - 1});
  }
}

// ---------------------------------------------------------------------------
// Finding emission (waiver-aware, occurrence-numbered)
// ---------------------------------------------------------------------------

struct Emitter {
  const std::string& path;
  const std::vector<std::string>& raw_lines;
  Report* report;
  FileWaivers* waivers;
  std::map<std::pair<Rule, std::string>, int> occurrence;

  void Emit(int line0, Rule rule, std::string message) {
    for (const WaiverSpan& span : waivers->spans) {
      if (span.rule == rule && line0 >= span.first_line &&
          line0 <= span.last_line) {
        report->waivers[span.index].used = true;
        return;
      }
    }
    Finding f;
    f.file = path;
    f.line = line0 + 1;
    f.rule = rule;
    f.message = std::move(message);
    f.snippet = Trim(line0 < static_cast<int>(raw_lines.size())
                         ? raw_lines[line0]
                         : "");
    f.occurrence = occurrence[{rule, f.snippet}]++;
    report->findings.push_back(std::move(f));
  }
};

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

// ---------------------------------------------------------------------------
// Rule: ram-alloc
// ---------------------------------------------------------------------------

const std::regex kAllocPrimitive(
    R"((^|[^\w.])new\b|\b(malloc|calloc|realloc|strdup)\s*\()");
const std::regex kGrowthCall(
    R"((\.|->)\s*(push_back|emplace_back|emplace|insert|append)\s*\()");
const std::regex kStringConcat(R"(\+=)");
const std::regex kGaugeMention(
    R"(\bRamCharge\b|\bRamGauge\b|\bgauge\b|\bgauge_\b|\bcharge\b|\bcharge_\b|ram_gauge|\bAcquire\s*\(|\bGrow\s*\()");

bool FunctionMentions(const Structure& st,
                      const std::vector<std::string>& code, int line,
                      const std::regex& pattern) {
  int f = EnclosingFunction(st, line);
  if (f < 0) return false;
  for (int i = st.frames[f].open_line; i <= st.frames[f].close_line; ++i) {
    if (std::regex_search(code[i], pattern)) return true;
  }
  return false;
}

// Growth into a container the function reserved up-front is bounded: the
// allocation happens (and should be charged) at the reservation, not in the
// loop. Lexical, so a reserve on any container in the function suppresses
// all growth findings there — documented in DESIGN.md.
const std::regex kReserveMention(R"((\.|->)\s*reserve\s*\()");

void CheckRamAlloc(const std::string& module, const Scrubbed& s,
                   const Structure& st, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    const std::string& line = s.code[ln];
    bool primitive = std::regex_search(line, kAllocPrimitive);
    bool growth = std::regex_search(line, kGrowthCall) &&
                  InLoop(st, s.code, static_cast<int>(ln));
    bool concat = std::regex_search(line, kStringConcat) &&
                  line.find('"') != std::string::npos &&
                  InLoop(st, s.code, static_cast<int>(ln));
    if (!primitive && !growth && !concat) continue;
    int line0 = static_cast<int>(ln);
    if (FunctionMentions(st, s.code, line0, kGaugeMention)) continue;
    if (!primitive && FunctionMentions(st, s.code, line0, kReserveMention)) {
      continue;
    }
    const char* what = primitive ? "direct heap allocation"
                      : growth  ? "unbounded container growth in a loop"
                                : "string concatenation in a loop";
    em->Emit(line0, Rule::kRamAlloc,
             std::string(what) + " in embedded module '" + module +
                 "' without mcu::RamGauge accounting; charge the gauge or "
                 "add '// pdslint: ram-exempt(<reason>)'");
  }
}

// ---------------------------------------------------------------------------
// Rule: obs-in-embedded
// ---------------------------------------------------------------------------

// Registry lookups and name interning take a mutex and may allocate; on an
// embedded hot path they must be hoisted to setup (a constructor or a
// function-local static) and the returned pointer reused per event.
const std::regex kObsRegistryLookup(
    R"((\.|->|::)\s*(GetCounter|GetGauge|GetHistogram|Intern)\s*\()");
// A span whose name is composed per construction heap-allocates per event;
// span names in embedded modules must be string literals (or interned once
// at setup, outside any loop).
const std::regex kObsSpanDecl(R"(\bobs\s*::\s*Span\s+\w+\s*\()");
const std::regex kObsDynamicName(
    R"(std\s*::\s*to_string\s*\(|std\s*::\s*string\s*\(|\.\s*c_str\s*\(\s*\))");

void CheckObsInEmbedded(const std::string& module, const Scrubbed& s,
                        const Structure& st, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    const std::string& line = s.code[ln];
    int line0 = static_cast<int>(ln);
    if (std::regex_search(line, kObsRegistryLookup) &&
        InLoop(st, s.code, line0)) {
      em->Emit(line0, Rule::kObsInEmbedded,
               "obs registry lookup / Intern inside a loop in embedded "
               "module '" + module +
                   "'; resolve the metric pointer once at setup and reuse "
                   "it on the hot path");
      continue;
    }
    if (std::regex_search(line, kObsSpanDecl) &&
        std::regex_search(line, kObsDynamicName)) {
      em->Emit(line0, Rule::kObsInEmbedded,
               "span name composed per event in embedded module '" + module +
                   "'; use a string literal (or Tracer::Intern at setup)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: net-bounded-frame
// ---------------------------------------------------------------------------

// A function whose name says it turns wire bytes into structures. The name
// sits on the line opening the function's brace frame or (multi-line
// signatures) up to two lines above it; statement lines — ending in ';' —
// are skipped so a call to DecodeFoo() just above an unrelated brace does
// not make that block a decoder.
const std::regex kDecoderName(R"(\b(Decode|Deserialize|Parse)\w*\s*\()");
// Anything that sizes or grows a container — the allocations a lying
// length field would drive.
const std::regex kFrameAlloc(
    R"((\.|->)\s*(reserve|resize|push_back|emplace_back|emplace|insert|append)\s*\(|(^|[^\w.])new\b|\b(malloc|calloc|realloc)\s*\()");
// The compile-time bounds the codec declares (kMaxFramePayload,
// kMaxBatchTuples, ...). Mentioning one before the allocation is the
// machine-checkable shape of "declared length checked against a bound".
const std::regex kBoundMention(R"(\bkMax\w+)");

void CheckNetBoundedFrame(const std::string& module, const Scrubbed& s,
                          const Structure& st, Emitter* em) {
  for (size_t fi = 1; fi < st.frames.size(); ++fi) {
    const Frame& f = st.frames[fi];
    if (f.kind != FrameKind::kFunction) continue;
    bool is_decoder = false;
    for (int i = f.open_line; i >= 0 && i >= f.open_line - 2; --i) {
      std::string t = Trim(s.code[i]);
      if (!t.empty() && t.back() == ';') continue;
      if (std::regex_search(s.code[i], kDecoderName)) {
        is_decoder = true;
        break;
      }
    }
    if (!is_decoder) continue;
    bool bounded = false;
    for (int i = f.open_line; i <= f.close_line; ++i) {
      if (std::regex_search(s.code[i], kBoundMention)) bounded = true;
      if (!bounded && std::regex_search(s.code[i], kFrameAlloc)) {
        em->Emit(i, Rule::kNetBoundedFrame,
                 "decoder in module '" + module +
                     "' allocates before checking the declared length "
                     "against a compile-time kMax* bound; a hostile peer "
                     "controls that length");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: result-nodiscard
// ---------------------------------------------------------------------------

const std::regex kResultDecl(
    R"(^\s*((static|virtual|inline|explicit|constexpr)\s+)*(Status|Result<[^;={]*>)\s+[A-Za-z_]\w*\s*\()");
const std::regex kResultTypeAlone(
    R"(^\s*((static|virtual|inline|explicit|constexpr)\s+)*(Status|Result<[\w:<>,\s*&]*>)\s*$)");
const std::regex kNextLineIsDecl(R"(^\s*[A-Za-z_]\w*\s*\()");

void CheckResultNodiscard(const Scrubbed& s, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    const std::string& line = s.code[ln];
    std::string trimmed = Trim(line);
    if (trimmed.rfind("return", 0) == 0 || trimmed.rfind("using", 0) == 0 ||
        trimmed.rfind("friend", 0) == 0 || trimmed.rfind("typedef", 0) == 0) {
      continue;
    }
    bool decl = std::regex_search(line, kResultDecl);
    if (!decl && std::regex_search(line, kResultTypeAlone) &&
        ln + 1 < s.code.size() &&
        std::regex_search(s.code[ln + 1], kNextLineIsDecl)) {
      decl = true;
    }
    if (!decl) continue;
    if (line.find("[[nodiscard]]") != std::string::npos) continue;
    if (ln > 0 && s.code[ln - 1].find("[[nodiscard]]") != std::string::npos) {
      continue;
    }
    em->Emit(static_cast<int>(ln), Rule::kResultNodiscard,
             "Status/Result-returning declaration without [[nodiscard]]; "
             "dropped errors must not compile");
  }
}

// ---------------------------------------------------------------------------
// Rule: result-guard
// ---------------------------------------------------------------------------

const std::regex kValueCall(R"(\.\s*value\s*\(\s*\))");
const std::regex kGuardMention(
    R"(\.\s*ok\s*\(|has_value\s*\(|ASSIGN_OR_RETURN|RETURN_IF_ERROR|ASSERT_|EXPECT_|CHECK|\.\s*status\s*\()");

void CheckResultGuard(const Scrubbed& s, const Structure& st, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    if (!std::regex_search(s.code[ln], kValueCall)) continue;
    int f = EnclosingFunction(st, static_cast<int>(ln));
    if (f < 0) continue;  // namespace-scope initializer; out of scope
    bool guarded = false;
    for (int i = st.frames[f].open_line; i <= static_cast<int>(ln); ++i) {
      if (std::regex_search(s.code[i], kGuardMention)) {
        guarded = true;
        break;
      }
    }
    if (guarded) continue;
    em->Emit(static_cast<int>(ln), Rule::kResultGuard,
             ".value() reached without a preceding ok()/has_value()/"
             "PDS_ASSIGN_OR_RETURN guard in the same function");
  }
}

// ---------------------------------------------------------------------------
// Header hygiene rules
// ---------------------------------------------------------------------------

void CheckHeaderGuard(const Scrubbed& s, Emitter* em) {
  bool pragma_once = false, ifndef = false, define = false;
  for (const std::string& line : s.code) {
    std::string t = Trim(line);
    if (t.rfind("#pragma once", 0) == 0) pragma_once = true;
    if (t.rfind("#ifndef", 0) == 0) ifndef = true;
    if (ifndef && t.rfind("#define", 0) == 0) define = true;
  }
  if (pragma_once || (ifndef && define)) return;
  em->Emit(0, Rule::kHeaderGuard,
           "header has no include guard (#ifndef/#define pair or "
           "#pragma once)");
}

const std::regex kUsingNamespaceRe(R"(^\s*using\s+namespace\b)");

void CheckUsingNamespace(const Scrubbed& s, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    if (std::regex_search(s.code[ln], kUsingNamespaceRe)) {
      em->Emit(static_cast<int>(ln), Rule::kUsingNamespace,
               "'using namespace' in a header leaks into every includer");
    }
  }
}

const std::regex kExternMutable(R"(^\s*extern\s+(?!const\b|constexpr\b)\w)");
const std::regex kInlineOrStaticVar(
    R"(^\s*(inline|static)\s+(inline\s+|static\s+)*(?!const\b|constexpr\b|void\b|class\b|struct\b|enum\b|union\b)[A-Za-z_][\w:<>,]*\s+[A-Za-z_]\w*\s*(=|;|\{))");

void CheckGlobalVar(const Scrubbed& s, const Structure& st, Emitter* em) {
  for (size_t ln = 0; ln < s.code.size(); ++ln) {
    if (!AtNamespaceScope(st, static_cast<int>(ln))) continue;
    const std::string& line = s.code[ln];
    if (line.find('(') != std::string::npos) continue;  // function-ish
    bool hit = std::regex_search(line, kExternMutable) ||
               std::regex_search(line, kInlineOrStaticVar);
    if (!hit) continue;
    em->Emit(static_cast<int>(ln), Rule::kGlobalVar,
             "mutable namespace-scope global in a header outside common/; "
             "globals defeat the per-token RAM budget");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const char* RuleName(Rule rule) {
  switch (rule) {
    case Rule::kRamAlloc: return "ram-alloc";
    case Rule::kResultNodiscard: return "result-nodiscard";
    case Rule::kResultGuard: return "result-guard";
    case Rule::kHeaderGuard: return "header-guard";
    case Rule::kUsingNamespace: return "using-namespace";
    case Rule::kGlobalVar: return "global-var";
    case Rule::kObsInEmbedded: return "obs-in-embedded";
    case Rule::kNetBoundedFrame: return "net-bounded-frame";
  }
  return "unknown";
}

bool ParseRuleName(const std::string& name, Rule* out) {
  if (name == "ram" || name == "ram-alloc") *out = Rule::kRamAlloc;
  else if (name == "nodiscard" || name == "result-nodiscard") *out = Rule::kResultNodiscard;
  else if (name == "guard" || name == "result-guard") *out = Rule::kResultGuard;
  else if (name == "header-guard") *out = Rule::kHeaderGuard;
  else if (name == "using-namespace") *out = Rule::kUsingNamespace;
  else if (name == "global-var") *out = Rule::kGlobalVar;
  else if (name == "obs" || name == "obs-in-embedded") *out = Rule::kObsInEmbedded;
  else if (name == "frame" || name == "net-bounded-frame") *out = Rule::kNetBoundedFrame;
  else return false;
  return true;
}

std::string ModuleOf(const std::string& path) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  size_t src = norm.rfind("/src/");
  if (norm.rfind("src/", 0) == 0) src = 0;
  else if (src != std::string::npos) src += 1;  // skip leading '/'
  if (src != std::string::npos) {
    size_t start = src + 4;
    size_t end = norm.find('/', start);
    if (end != std::string::npos) return norm.substr(start, end - start);
  }
  size_t slash = norm.find_last_of('/');
  if (slash == std::string::npos) return "";
  size_t prev = norm.find_last_of('/', slash - 1);
  return norm.substr(prev + 1, slash - prev - 1);
}

void AnalyzeFile(const std::string& path, const std::string& content,
                 const Options& options, Report* report) {
  const std::string module = ModuleOf(path);
  const bool is_header = IsHeaderPath(path);
  Scrubbed s = Scrub(content);
  Structure st = BuildStructure(s.code);
  FileWaivers fw;
  CollectWaivers(path, s, st, report, &fw);
  std::vector<std::string> raw = SplitLines(content);
  Emitter em{path, raw, report, &fw, {}};

  if (Contains(options.embedded_modules, module)) {
    CheckRamAlloc(module, s, st, &em);
    CheckObsInEmbedded(module, s, st, &em);
  }
  if (Contains(options.framed_modules, module)) {
    CheckNetBoundedFrame(module, s, st, &em);
  }
  if (is_header && Contains(options.nodiscard_modules, module)) {
    CheckResultNodiscard(s, &em);
  }
  CheckResultGuard(s, st, &em);
  if (is_header) {
    CheckHeaderGuard(s, &em);
    CheckUsingNamespace(s, &em);
    if (module != "common") CheckGlobalVar(s, st, &em);
  }
  ++report->files_scanned;
}

Report AnalyzeTree(const std::vector<std::string>& roots,
                   const Options& options) {
  namespace fs = std::filesystem;
  Report report;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p.string());
      continue;
    }
    if (!fs::is_directory(p)) continue;
    for (auto it = fs::recursive_directory_iterator(p);
         it != fs::recursive_directory_iterator(); ++it) {
      const fs::path& entry = it->path();
      std::string name = entry.filename().string();
      if (it->is_directory() &&
          (name.rfind("build", 0) == 0 || name.rfind(".", 0) == 0)) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      std::string ext = entry.extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
        files.push_back(entry.string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    AnalyzeFile(file, buf.str(), options, &report);
  }
  return report;
}

std::string Fingerprint(const Finding& finding) {
  std::ostringstream out;
  out << RuleName(finding.rule) << '|' << ModuleOf(finding.file) << '/'
      << Basename(finding.file) << '|' << std::hex << Fnv1a(finding.snippet)
      << '#' << std::dec << finding.occurrence;
  return out.str();
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ':' << finding.line << ": [" << RuleName(finding.rule)
      << "] " << finding.message;
  return out.str();
}

}  // namespace pdslint
