#include "logstore/sequential_log.h"

#include <algorithm>
#include <cstring>

namespace pds::logstore {

Result<uint32_t> SequentialLog::AppendPage(ByteView data) {
  if (head_ >= capacity_pages()) {
    return Status::ResourceExhausted("sequential log full");
  }
  PDS_RETURN_IF_ERROR(partition_.ProgramPage(head_, data));
  return head_++;
}

Status SequentialLog::ReadPage(uint32_t page, Bytes* out) {
  if (page >= head_) {
    return Status::OutOfRange("page beyond log head");
  }
  return partition_.ReadPage(page, out);
}

Status SequentialLog::Reset() {
  PDS_RETURN_IF_ERROR(partition_.EraseAll());
  head_ = 0;
  return Status::Ok();
}

Result<uint64_t> RecordLog::Append(ByteView record) {
  if (record.size() >= 0xFFFFFFFFULL) {
    return Status::InvalidArgument("record too large");
  }
  uint64_t address = size_bytes_;

  Bytes framed;
  framed.reserve(4 + record.size());
  PutU32(&framed, static_cast<uint32_t>(record.size()));
  framed.insert(framed.end(), record.data(), record.data() + record.size());

  size_t pos = 0;
  const uint32_t ps = page_size();
  while (pos < framed.size()) {
    size_t room = ps - tail_.size();
    size_t take = std::min(room, framed.size() - pos);
    tail_.insert(tail_.end(), framed.begin() + pos, framed.begin() + pos + take);
    pos += take;
    if (tail_.size() == ps) {
      PDS_ASSIGN_OR_RETURN(uint32_t page, log_.AppendPage(ByteView(tail_)));
      (void)page;
      tail_.clear();
    }
  }
  size_bytes_ += framed.size();
  ++num_records_;
  return address;
}

uint32_t RecordLog::num_pages_used() const {
  return log_.num_pages() + (tail_.empty() ? 0 : 1);
}

Status RecordLog::ReadSpan(uint64_t offset, size_t len, uint8_t* out) {
  if (offset + len > size_bytes_) {
    return Status::OutOfRange("read beyond record log");
  }
  const uint32_t ps = page_size();
  uint64_t flushed_bytes = static_cast<uint64_t>(log_.num_pages()) * ps;
  size_t done = 0;
  Bytes page;
  while (done < len) {
    uint64_t cur = offset + done;
    if (cur >= flushed_bytes) {
      // In the RAM tail.
      size_t tail_off = static_cast<size_t>(cur - flushed_bytes);
      size_t take = std::min(len - done, tail_.size() - tail_off);
      std::memcpy(out + done, tail_.data() + tail_off, take);
      done += take;
    } else {
      uint32_t page_index = static_cast<uint32_t>(cur / ps);
      uint32_t in_page = static_cast<uint32_t>(cur % ps);
      PDS_RETURN_IF_ERROR(log_.ReadPage(page_index, &page));
      size_t take = std::min<size_t>(len - done, ps - in_page);
      std::memcpy(out + done, page.data() + in_page, take);
      done += take;
    }
  }
  return Status::Ok();
}

Status RecordLog::ReadAt(uint64_t offset, Bytes* record) {
  if (offset + 4 > size_bytes_) {
    return Status::OutOfRange("read beyond record log");
  }
  const uint32_t ps = page_size();
  uint64_t flushed_bytes = static_cast<uint64_t>(log_.num_pages()) * ps;
  uint32_t in_page = static_cast<uint32_t>(offset % ps);

  // Fast path: length prefix and record on a single flushed page — one IO.
  if (offset + 4 <= flushed_bytes && in_page + 4 <= ps) {
    Bytes page;
    PDS_RETURN_IF_ERROR(
        log_.ReadPage(static_cast<uint32_t>(offset / ps), &page));
    uint32_t len = GetU32(page.data() + in_page);
    if (offset + 4 + len > size_bytes_) {
      return Status::Corruption("record length beyond log end");
    }
    if (in_page + 4 + len <= ps) {
      record->assign(page.begin() + in_page + 4,
                     page.begin() + in_page + 4 + len);
      return Status::Ok();
    }
    // Record spans pages: copy the prefix we already have, span the rest.
    record->resize(len);
    size_t head = ps - (in_page + 4);
    std::memcpy(record->data(), page.data() + in_page + 4, head);
    return ReadSpan(offset + 4 + head, len - head, record->data() + head);
  }

  uint8_t len_buf[4];
  PDS_RETURN_IF_ERROR(ReadSpan(offset, 4, len_buf));
  uint32_t len = GetU32(len_buf);
  if (offset + 4 + len > size_bytes_) {
    return Status::Corruption("record length beyond log end");
  }
  record->resize(len);
  return ReadSpan(offset + 4, len, record->data());
}

Status RecordLog::Reader::FetchSpan(uint64_t offset, size_t len,
                                    uint8_t* out) {
  const uint32_t ps = log_->page_size();
  uint64_t flushed_bytes =
      static_cast<uint64_t>(log_->log_.num_pages()) * ps;
  size_t done = 0;
  while (done < len) {
    uint64_t cur = offset + done;
    if (cur >= flushed_bytes) {
      size_t tail_off = static_cast<size_t>(cur - flushed_bytes);
      size_t take = std::min(len - done, log_->tail_.size() - tail_off);
      std::memcpy(out + done, log_->tail_.data() + tail_off, take);
      done += take;
    } else {
      int64_t page_index = static_cast<int64_t>(cur / ps);
      uint32_t in_page = static_cast<uint32_t>(cur % ps);
      if (page_index != cached_page_index_) {
        PDS_RETURN_IF_ERROR(log_->log_.ReadPage(
            static_cast<uint32_t>(page_index), &cached_page_));
        cached_page_index_ = page_index;
      }
      size_t take = std::min<size_t>(len - done, ps - in_page);
      std::memcpy(out + done, cached_page_.data() + in_page, take);
      done += take;
    }
  }
  return Status::Ok();
}

Status RecordLog::Reader::Next(Bytes* record) {
  if (AtEnd()) {
    return Status::OutOfRange("end of record log");
  }
  uint8_t len_buf[4];
  PDS_RETURN_IF_ERROR(FetchSpan(offset_, 4, len_buf));
  uint32_t len = GetU32(len_buf);
  if (offset_ + 4 + len > log_->size_bytes_) {
    return Status::Corruption("record length beyond log end");
  }
  record->resize(len);
  PDS_RETURN_IF_ERROR(FetchSpan(offset_ + 4, len, record->data()));
  offset_ += 4 + len;
  return Status::Ok();
}

Status RecordLog::Reset() {
  PDS_RETURN_IF_ERROR(log_.Reset());
  tail_.clear();
  size_bytes_ = 0;
  num_records_ = 0;
  return Status::Ok();
}

}  // namespace pds::logstore
