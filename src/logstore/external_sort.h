#ifndef PDS_LOGSTORE_EXTERNAL_SORT_H_
#define PDS_LOGSTORE_EXTERNAL_SORT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace pds::logstore {

/// External sort over fixed-size records using only sequential log
/// structures — the engine of the tutorial's index reorganization:
/// "Sort the (key, pointer) pairs -> temp. logs (sorted runs) -> result
/// written sequentially".
///
/// Records are ordered by memcmp over their full width, so callers encode
/// keys order-preservingly (big-endian integers, padded strings).
///
/// RAM discipline: the in-RAM run buffer and, during merges, one page per
/// merged run are charged to the MCU RamGauge. When the fan-in of a single
/// merge pass would exceed the RAM budget, the sorter performs multiple
/// passes — exactly how a smartcard-class device must behave.
class ExternalSorter {
 public:
  struct Options {
    size_t record_size = 16;
    /// Maximum bytes of RAM the sorter may use.
    size_t ram_budget_bytes = 16 * 1024;
  };

  ExternalSorter(flash::PartitionAllocator* allocator, const Options& options,
                 mcu::RamGauge* gauge);

  /// Buffers one record; spills a sorted run to flash when RAM is full.
  [[nodiscard]] Status Add(ByteView record);

  /// Sorts everything added so far and emits records in ascending order.
  /// May be called once.
  [[nodiscard]] Status Finish(const std::function<Status(ByteView)>& emit);

  uint64_t num_records() const { return num_records_; }
  /// Number of sorted runs spilled to flash so far (diagnostics).
  size_t num_runs() const { return runs_.size(); }

 private:
  struct Run {
    flash::Partition partition;
    uint32_t num_pages = 0;
    uint64_t num_records = 0;
  };

  [[nodiscard]] Status SpillRun();
  /// Allocates a contiguous partition sized for `record_count` packed
  /// records and returns the run descriptor (pages pre-computed).
  [[nodiscard]] Result<Run> AllocRun(uint64_t record_count);
  /// Merges `inputs` into a single emitted stream; if `out` is non-null the
  /// stream is also written as a new run.
  [[nodiscard]] Status MergeRuns(const std::vector<Run*>& inputs,
                   const std::function<Status(ByteView)>& emit, Run* out);

  flash::PartitionAllocator* allocator_;
  Options options_;
  mcu::RamGauge* gauge_;

  std::vector<uint8_t> buffer_;  // in-RAM records, record_size granularity
  size_t buffer_capacity_records_;
  std::vector<Run> runs_;
  uint64_t num_records_ = 0;
  bool finished_ = false;
};

}  // namespace pds::logstore

#endif  // PDS_LOGSTORE_EXTERNAL_SORT_H_
