#ifndef PDS_LOGSTORE_SEQUENTIAL_LOG_H_
#define PDS_LOGSTORE_SEQUENTIAL_LOG_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "flash/flash.h"

namespace pds::logstore {

/// Append-only sequence of pages on a flash partition.
///
/// This is the fundamental building block of Part II of the tutorial:
/// "Pages are written sequentially (and never updated nor moved), random
/// writes are avoided by construction; allocation & de-allocation are made
/// on large grains." The log can only grow at its head or be reset whole
/// (block-grained erase).
class SequentialLog {
 public:
  SequentialLog() = default;
  explicit SequentialLog(flash::Partition partition)
      : partition_(partition) {}

  /// Appends one page of data; returns the page index within the log.
  [[nodiscard]] Result<uint32_t> AppendPage(ByteView data);

  [[nodiscard]] Status ReadPage(uint32_t page, Bytes* out);

  uint32_t num_pages() const { return head_; }
  uint32_t capacity_pages() const { return partition_.num_pages(); }
  uint32_t page_size() const { return partition_.page_size(); }
  /// Chip backing the log's partition (null for a default-constructed log).
  /// Lets layered structures attribute flash::Stats deltas to themselves.
  flash::FlashChip* chip() const { return partition_.chip(); }

  /// Erases every block and rewinds the head.
  [[nodiscard]] Status Reset();

 private:
  flash::Partition partition_;
  uint32_t head_ = 0;
};

/// Variable-length records packed into a SequentialLog as a byte stream
/// (u32 length prefix + payload, records may span page boundaries).
///
/// The current tail page lives in MCU RAM until it fills — mirroring how an
/// embedded engine buffers the open flash page — so reads cover both flushed
/// pages and the RAM tail. Records are addressed by their byte offset, which
/// gives the "1 IO per result" random-read behaviour of the tutorial's
/// indexes.
class RecordLog {
 public:
  RecordLog() = default;
  explicit RecordLog(flash::Partition partition)
      : log_(partition) {}

  /// Appends a record; returns its address (byte offset of its length
  /// prefix). Records of length 0xFFFFFFFF are rejected (reserved).
  [[nodiscard]] Result<uint64_t> Append(ByteView record);

  /// Random access by record address.
  [[nodiscard]] Status ReadAt(uint64_t offset, Bytes* record);

  uint64_t num_records() const { return num_records_; }
  uint64_t size_bytes() const { return size_bytes_; }
  uint32_t page_size() const { return log_.page_size(); }
  flash::FlashChip* chip() const { return log_.chip(); }
  /// Pages occupied (flushed pages plus the RAM tail if non-empty).
  uint32_t num_pages_used() const;

  [[nodiscard]] Status Reset();

  /// Streaming reader with a one-page cache: a full scan costs exactly
  /// `num_pages_used()` page reads.
  class Reader {
   public:
    explicit Reader(RecordLog* log) : log_(log) {}

    bool AtEnd() const { return offset_ >= log_->size_bytes_; }
    /// Reads the next record. Returns OutOfRange at end.
    [[nodiscard]] Status Next(Bytes* record);
    /// Address of the record that the next call to Next() will return.
    uint64_t offset() const { return offset_; }

   private:
    [[nodiscard]] Status FetchSpan(uint64_t offset, size_t len, uint8_t* out);

    RecordLog* log_;
    uint64_t offset_ = 0;
    Bytes cached_page_;
    int64_t cached_page_index_ = -1;
  };

  Reader NewReader() { return Reader(this); }

 private:
  friend class Reader;

  /// Reads the byte range [offset, offset+len) of the stream into out,
  /// via whole-page reads (flushed) or the RAM tail.
  [[nodiscard]] Status ReadSpan(uint64_t offset, size_t len, uint8_t* out);

  SequentialLog log_;
  Bytes tail_;  // open page buffered in MCU RAM
  uint64_t size_bytes_ = 0;
  uint64_t num_records_ = 0;
};

}  // namespace pds::logstore

#endif  // PDS_LOGSTORE_SEQUENTIAL_LOG_H_
