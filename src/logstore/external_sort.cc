#include "logstore/external_sort.h"

#include <algorithm>
#include <cstring>

#include "logstore/sequential_log.h"

namespace pds::logstore {

namespace {

/// Streaming cursor over a run: one page of buffer, records in order.
class RunCursor {
 public:
  RunCursor(flash::Partition* partition, uint32_t num_pages,
            uint64_t num_records, size_t record_size, uint32_t page_size)
      : partition_(partition),
        num_pages_(num_pages),
        remaining_(num_records),
        record_size_(record_size),
        records_per_page_(page_size / record_size),
        in_page_(records_per_page_) {}

  bool AtEnd() const { return remaining_ == 0; }

  /// Pointer to the current record (valid until Advance).
  Status Current(const uint8_t** out) {
    if (AtEnd()) {
      return Status::OutOfRange("run exhausted");
    }
    if (in_page_ >= records_per_page_) {
      if (next_page_ >= num_pages_) {
        return Status::Corruption("run shorter than declared");
      }
      PDS_RETURN_IF_ERROR(partition_->ReadPage(next_page_, &page_));
      ++next_page_;
      in_page_ = 0;
    }
    *out = page_.data() + in_page_ * record_size_;
    return Status::Ok();
  }

  void Advance() {
    ++in_page_;
    --remaining_;
  }

 private:
  flash::Partition* partition_;
  uint32_t num_pages_;
  uint64_t remaining_;
  size_t record_size_;
  size_t records_per_page_;

  Bytes page_;
  uint32_t next_page_ = 0;
  size_t in_page_;
};

}  // namespace

ExternalSorter::ExternalSorter(flash::PartitionAllocator* allocator,
                               const Options& options, mcu::RamGauge* gauge)
    : allocator_(allocator), options_(options), gauge_(gauge) {
  buffer_capacity_records_ =
      std::max<size_t>(1, options_.ram_budget_bytes / options_.record_size);
}

Status ExternalSorter::Add(ByteView record) {
  if (finished_) {
    return Status::FailedPrecondition("sorter already finished");
  }
  if (record.size() != options_.record_size) {
    return Status::InvalidArgument("record size mismatch");
  }
  if (buffer_.size() / options_.record_size >= buffer_capacity_records_) {
    PDS_RETURN_IF_ERROR(SpillRun());
  }
  PDS_RETURN_IF_ERROR(gauge_->Acquire(options_.record_size));
  buffer_.insert(buffer_.end(), record.data(), record.data() + record.size());
  ++num_records_;
  return Status::Ok();
}

Result<ExternalSorter::Run> ExternalSorter::AllocRun(uint64_t record_count) {
  const size_t rs = options_.record_size;
  const uint32_t ps = allocator_->geometry().page_size;
  const uint32_t ppb = allocator_->geometry().pages_per_block;
  const size_t records_per_page = ps / rs;
  if (records_per_page == 0) {
    return Status::InvalidArgument("record larger than flash page");
  }
  const uint32_t pages_needed = static_cast<uint32_t>(
      (record_count + records_per_page - 1) / records_per_page);
  const uint32_t blocks_needed =
      std::max<uint32_t>(1, (pages_needed + ppb - 1) / ppb);
  PDS_ASSIGN_OR_RETURN(flash::Partition partition,
                       allocator_->Allocate(blocks_needed));

  Run run;
  run.partition = partition;
  run.num_pages = pages_needed;
  run.num_records = record_count;
  return run;
}

Status ExternalSorter::SpillRun() {
  if (buffer_.empty()) {
    return Status::Ok();
  }
  const size_t rs = options_.record_size;
  const uint64_t count = buffer_.size() / rs;

  // Sort record-wise by memcmp.
  std::vector<const uint8_t*> ptrs(count);
  for (uint64_t i = 0; i < count; ++i) {
    ptrs[i] = buffer_.data() + i * rs;
  }
  std::sort(ptrs.begin(), ptrs.end(),
            [rs](const uint8_t* a, const uint8_t* b) {
              return std::memcmp(a, b, rs) < 0;
            });

  PDS_ASSIGN_OR_RETURN(Run run, AllocRun(count));
  SequentialLog log(run.partition);
  const uint32_t ps = run.partition.page_size();
  const size_t records_per_page = ps / rs;
  Bytes page;
  page.reserve(ps);
  for (uint64_t i = 0; i < count; ++i) {
    page.insert(page.end(), ptrs[i], ptrs[i] + rs);
    if (page.size() + rs > ps || i + 1 == count) {
      PDS_ASSIGN_OR_RETURN(uint32_t pg, log.AppendPage(ByteView(page)));
      (void)pg;
      page.clear();
    }
  }
  (void)records_per_page;

  runs_.push_back(std::move(run));
  gauge_->Release(buffer_.size());
  buffer_.clear();
  return Status::Ok();
}

Status ExternalSorter::MergeRuns(const std::vector<Run*>& inputs,
                                 const std::function<Status(ByteView)>& emit,
                                 Run* out) {
  const size_t rs = options_.record_size;
  uint64_t total = 0;
  for (Run* run : inputs) {
    total += run->num_records;
  }

  // One page buffer per input run, charged to the gauge.
  size_t charged_ram = 0;
  std::vector<RunCursor> cursors;
  cursors.reserve(inputs.size());
  Status status = Status::Ok();
  for (Run* run : inputs) {
    uint32_t ps = run->partition.page_size();
    status = gauge_->Acquire(ps);
    if (!status.ok()) {
      gauge_->Release(charged_ram);
      return status;
    }
    charged_ram += ps;
    cursors.emplace_back(&run->partition, run->num_pages, run->num_records,
                         rs, ps);
  }

  // Output: either the caller's emit, or a new run written page by page.
  SequentialLog out_log;
  Bytes out_page;
  uint32_t out_ps = 0;
  if (out != nullptr) {
    Result<Run> alloc = AllocRun(total);
    if (!alloc.ok()) {
      gauge_->Release(charged_ram);
      return alloc.status();
    }
    *out = std::move(alloc).value();
    out_log = SequentialLog(out->partition);
    out_ps = out->partition.page_size();
    status = gauge_->Acquire(out_ps);
    if (!status.ok()) {
      gauge_->Release(charged_ram);
      return status;
    }
    charged_ram += out_ps;
    out_page.reserve(out_ps);
  }

  uint64_t emitted = 0;
  while (emitted < total && status.ok()) {
    // Linear min-scan: fan-in is small (bounded by RAM budget / page size).
    int best = -1;
    const uint8_t* best_rec = nullptr;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].AtEnd()) {
        continue;
      }
      const uint8_t* rec = nullptr;
      status = cursors[i].Current(&rec);
      if (!status.ok()) {
        break;
      }
      if (best < 0 || std::memcmp(rec, best_rec, rs) < 0) {
        best = static_cast<int>(i);
        best_rec = rec;
      }
    }
    if (!status.ok()) {
      break;
    }
    if (best < 0) {
      status = Status::Corruption("merge ran dry before expected end");
      break;
    }
    if (out != nullptr) {
      out_page.insert(out_page.end(), best_rec, best_rec + rs);
      ++emitted;
      cursors[best].Advance();
      if (out_page.size() + rs > out_ps || emitted == total) {
        Result<uint32_t> pg = out_log.AppendPage(ByteView(out_page));
        if (!pg.ok()) {
          status = pg.status();
          break;
        }
        out_page.clear();
      }
    } else {
      status = emit(ByteView(best_rec, rs));
      if (!status.ok()) {
        break;
      }
      ++emitted;
      cursors[best].Advance();
    }
  }

  gauge_->Release(charged_ram);
  return status;
}

Status ExternalSorter::Finish(const std::function<Status(ByteView)>& emit) {
  if (finished_) {
    return Status::FailedPrecondition("sorter already finished");
  }
  finished_ = true;
  const size_t rs = options_.record_size;

  if (runs_.empty()) {
    // Everything fits in RAM: sort and emit directly.
    const uint64_t count = buffer_.size() / rs;
    std::vector<const uint8_t*> ptrs(count);
    for (uint64_t i = 0; i < count; ++i) {
      ptrs[i] = buffer_.data() + i * rs;
    }
    std::sort(ptrs.begin(), ptrs.end(),
              [rs](const uint8_t* a, const uint8_t* b) {
                return std::memcmp(a, b, rs) < 0;
              });
    Status status = Status::Ok();
    for (const uint8_t* p : ptrs) {
      status = emit(ByteView(p, rs));
      if (!status.ok()) {
        break;
      }
    }
    gauge_->Release(buffer_.size());
    buffer_.clear();
    return status;
  }

  PDS_RETURN_IF_ERROR(SpillRun());

  // Determine merge fan-in from the RAM budget (one page per run plus one
  // output page).
  const uint32_t ps = runs_.front().partition.page_size();
  size_t fan_in = std::max<size_t>(
      2, options_.ram_budget_bytes / ps > 1
             ? options_.ram_budget_bytes / ps - 1
             : 2);

  // Multi-pass merge until a single pass can emit everything.
  std::vector<Run> current = std::move(runs_);
  runs_.clear();
  while (current.size() > fan_in) {
    std::vector<Run> next;
    for (size_t i = 0; i < current.size(); i += fan_in) {
      size_t end = std::min(current.size(), i + fan_in);
      std::vector<Run*> group;
      for (size_t j = i; j < end; ++j) {
        group.push_back(&current[j]);
      }
      if (group.size() == 1) {
        next.push_back(std::move(*group[0]));
        continue;
      }
      Run merged;
      PDS_RETURN_IF_ERROR(MergeRuns(group, emit, &merged));
      // Consumed runs go back to the allocator (temporary logs are
      // de-allocated on the block grain, as the tutorial prescribes).
      for (Run* consumed : group) {
        PDS_RETURN_IF_ERROR(allocator_->Free(consumed->partition));
      }
      next.push_back(std::move(merged));
    }
    current = std::move(next);
  }

  std::vector<Run*> final_group;
  for (Run& run : current) {
    final_group.push_back(&run);
  }
  PDS_RETURN_IF_ERROR(MergeRuns(final_group, emit, nullptr));
  for (Run& run : current) {
    PDS_RETURN_IF_ERROR(allocator_->Free(run.partition));
  }
  return Status::Ok();
}

}  // namespace pds::logstore
