#ifndef PDS_SIM_SIM_TRANSPORT_H_
#define PDS_SIM_SIM_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/transport.h"
#include "sim/link_model.h"
#include "sim/sim_clock.h"

/// SimTransport — the simulated wire.
///
/// SimNet::CreatePair() hands out two connected net::Transport endpoints,
/// exactly like InProcessTransport::CreatePair(), except delivery runs
/// through the SimClock event queue under a LinkModel: Send draws loss /
/// jitter / reorder from the net's single seeded RNG and schedules the
/// frame's arrival; a blocking Recv *advances the event queue* until its
/// frame lands or the (virtual) deadline passes. The error surface mirrors
/// InProcessTransport verbatim — IoError("transport closed") after close,
/// ResourceExhausted("transport queue full") past max_queued,
/// DeadlineExceeded("recv deadline exceeded") on timeout — so the protocol
/// layer cannot tell the two apart on an ideal link. Everything is
/// single-threaded: one driver endpoint may block in Recv; every other
/// endpoint must be reactive (set_on_frame + non-blocking Recv(0)).
namespace pds::sim {

/// What happened to a frame on the modeled link. Records carry sizes and
/// timing only — never payload bytes: ciphertext stays out of event
/// records by construction, and pdslint's secret-flow pass treats
/// RecordEvent as a sink to keep it that way.
enum class SimEventKind : uint8_t {
  kDelivered = 1,    // frame landed in the destination inbox
  kLost = 2,         // loss_rate draw consumed the frame
  kPartitioned = 3,  // sent inside a partition window
};

struct SimEvent {
  uint64_t t_ns = 0;     // virtual send time
  uint32_t link_id = 0;  // which CreatePair() link
  uint8_t to_side = 0;   // destination endpoint (0 or 1)
  SimEventKind kind = SimEventKind::kDelivered;
  uint32_t bytes = 0;
  uint64_t arrival_ns = 0;  // virtual delivery time (kDelivered only)
};

/// Append-only log of link-level events, the simulation-tier sibling of
/// net::InjectionLog: a failing fleet scenario replays from the seed and
/// this log names every frame the model touched.
class SimEventLog {
 public:
  // pdslint: sink(RecordEvent)
  void RecordEvent(const SimEvent& event);
  [[nodiscard]] size_t size() const { return entries_.size(); }
  [[nodiscard]] uint64_t Count(SimEventKind kind) const;
  [[nodiscard]] const std::vector<SimEvent>& Entries() const {
    return entries_;
  }
  void Clear() { entries_.clear(); }

 private:
  std::vector<SimEvent> entries_;
};

class SimTransport;

/// The fleet's modeled network: owns the LinkModel, the single seeded RNG
/// every per-frame draw comes from, the event log, and aggregate counters.
/// Lives as long as every transport it created.
class SimNet {
 public:
  struct Stats {
    uint64_t frames_sent = 0;       // accepted by Send (drawn upon)
    uint64_t frames_delivered = 0;  // landed in an inbox
    uint64_t frames_lost = 0;       // loss_rate casualties
    uint64_t frames_partitioned = 0;
    uint64_t bytes_delivered = 0;
  };

  SimNet(SimClock* clock, LinkModel model, uint64_t seed);

  /// Two connected endpoints; each direction holds at most `max_queued`
  /// undelivered frames (in flight + inbox) before Send returns
  /// ResourceExhausted — the same bound InProcessTransport enforces.
  [[nodiscard]] std::pair<std::unique_ptr<SimTransport>,
                          std::unique_ptr<SimTransport>>
  CreatePair(size_t max_queued = 1024);

  [[nodiscard]] SimClock* clock() { return clock_; }
  [[nodiscard]] const LinkModel& model() const { return model_; }
  /// Swaps the link model mid-scenario (e.g. a lossless build phase, then
  /// loss during protocol rounds — the handshake has no retry machinery).
  /// Part of the scripted scenario, so determinism is unaffected.
  void set_model(LinkModel model) { model_ = std::move(model); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const SimEventLog& event_log() const { return log_; }
  /// Event logging is on by default; million-frame benches turn it off so
  /// the log does not dominate memory.
  void set_log_events(bool on) { log_events_ = on; }

 private:
  friend class SimTransport;

  /// One direction of a link: frames *for* endpoint `side`.
  struct LinkDir {
    std::deque<Bytes> inbox;
    size_t in_flight = 0;          // scheduled, not yet delivered
    uint64_t last_arrival_ns = 0;  // FIFO clamp for in-order delivery
    uint64_t next_free_ns = 0;     // bandwidth serialization horizon
    std::function<void()> on_frame;
  };
  struct Link {
    SimNet* net = nullptr;
    uint32_t id = 0;
    bool closed = false;
    size_t max_queued = 1024;
    LinkDir dirs[2];
  };

  [[nodiscard]] Status SendFrom(const std::shared_ptr<Link>& link,
                                int from_side, ByteView frame);
  void Deliver(const std::shared_ptr<Link>& link, int to_side, Bytes frame,
               uint64_t sent_ns);
  [[nodiscard]] bool InPartition(uint64_t t_ns) const;

  SimClock* clock_;
  LinkModel model_;
  Rng rng_;
  SimEventLog log_;
  Stats stats_;
  bool log_events_ = true;
  uint32_t next_link_id_ = 0;
};

/// One endpoint of a simulated link. Blocking Recv drives the event queue
/// (driver role); Recv(0) polls the inbox without advancing time (reactive
/// role, paired with set_on_frame).
class SimTransport final : public net::Transport {
  /// Passkey: only SimNet::CreatePair can construct endpoints.
  struct Private {
    explicit Private() = default;
  };

 public:
  SimTransport(Private, std::shared_ptr<SimNet::Link> link, int side)
      : link_(std::move(link)), side_(side) {}

  [[nodiscard]] Status Send(ByteView frame) override;
  [[nodiscard]] Result<Bytes> Recv(uint32_t deadline_ms) override;
  void Close() override;
  [[nodiscard]] bool closed() const override;

  /// Reactive delivery hook, invoked from event context right after a
  /// frame lands in this endpoint's inbox. The callee typically drains it
  /// with Recv(0). Must not block.
  void set_on_frame(std::function<void()> fn);

 private:
  friend class SimNet;

  std::shared_ptr<SimNet::Link> link_;
  int side_;  // we receive from dirs[side_], send to the other
};

/// Transparent probe recording every frame that crosses a wrapped
/// transport, in order, per direction — the instrument the anchor property
/// tests use to compare a simulated run byte-for-byte against an
/// in-process run. Single caller per direction, like the fault wrapper.
class FrameTap final : public net::Transport {
 public:
  struct Entry {
    bool outbound = false;  // true: Send() saw it; false: Recv() returned it
    Bytes frame;
  };

  explicit FrameTap(std::unique_ptr<net::Transport> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] Status Send(ByteView frame) override;
  [[nodiscard]] Result<Bytes> Recv(uint32_t deadline_ms) override;
  void Close() override { inner_->Close(); }
  [[nodiscard]] bool closed() const override { return inner_->closed(); }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::unique_ptr<net::Transport> inner_;
  std::vector<Entry> entries_;
};

}  // namespace pds::sim

#endif  // PDS_SIM_SIM_TRANSPORT_H_
