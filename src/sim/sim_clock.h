#ifndef PDS_SIM_SIM_CLOCK_H_
#define PDS_SIM_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

/// pds::sim — the deterministic discrete-event simulation tier.
///
/// SimClock is a virtual monotonic clock plus a single-threaded event
/// queue. Nothing here knows about transports or protocols: events are
/// plain closures keyed by (fire time, insertion sequence), so two runs
/// that schedule the same closures in the same order execute them in the
/// same order — the foundation of the byte-identity anchor.
///
/// Everything in pds::sim is single-threaded by design: the protocol
/// "driver" (SsiServer) advances the queue from inside its blocking
/// Recv/SleepMs calls, and every other endpoint reacts from event context.
namespace pds::sim {

class SimClock final : public Clock {
 public:
  /// Virtual nanoseconds since the start of the simulation.
  [[nodiscard]] uint64_t NowNs() override { return now_ns_; }

  /// Advances virtual time by `ms`, running every event that comes due.
  void SleepMs(uint32_t ms) override {
    AdvanceTo(now_ns_ + static_cast<uint64_t>(ms) * 1000000ull);
  }

  /// Virtual time runs at the same speed under any build: sanitizer
  /// de-flaking scale factors apply only to real sleeps.
  [[nodiscard]] uint32_t ScaleBudgetMs(uint32_t ms) override { return ms; }

  /// Schedules `fn` to run at `at_ns` (clamped to now for past times).
  /// Events at the same instant run in scheduling order. Safe to call from
  /// inside a running event.
  void Schedule(uint64_t at_ns, std::function<void()> fn);

  /// Runs every event due up to and including `t_ns`, then sets the clock
  /// to `t_ns` (no-op if `t_ns` is in the past).
  void AdvanceTo(uint64_t t_ns);

  /// Pops and runs the single earliest event, advancing the clock to its
  /// fire time. Returns false (and leaves time untouched) when the queue
  /// is empty.
  bool RunOne();

  /// Fire time of the earliest pending event, or UINT64_MAX when idle.
  [[nodiscard]] uint64_t next_event_ns() const;

  [[nodiscard]] bool idle() const { return events_.empty(); }
  [[nodiscard]] size_t pending() const { return events_.size(); }
  [[nodiscard]] uint64_t events_run() const { return events_run_; }

 private:
  struct Event {
    uint64_t at_ns = 0;
    uint64_t seq = 0;  // tie-break: same-instant events run in FIFO order
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
      return a.seq > b.seq;
    }
  };

  uint64_t now_ns_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace pds::sim

#endif  // PDS_SIM_SIM_CLOCK_H_
