#include "sim/sim_transport.h"

#include <algorithm>
#include <utility>

namespace pds::sim {

void SimEventLog::RecordEvent(const SimEvent& event) {
  entries_.push_back(event);
}

uint64_t SimEventLog::Count(SimEventKind kind) const {
  uint64_t n = 0;
  for (const SimEvent& e : entries_) {
    if (e.kind == kind) {
      ++n;
    }
  }
  return n;
}

SimNet::SimNet(SimClock* clock, LinkModel model, uint64_t seed)
    : clock_(clock), model_(std::move(model)), rng_(seed) {}

std::pair<std::unique_ptr<SimTransport>, std::unique_ptr<SimTransport>>
SimNet::CreatePair(size_t max_queued) {
  auto link = std::make_shared<Link>();
  link->net = this;
  link->id = next_link_id_++;
  link->max_queued = max_queued;
  auto a = std::make_unique<SimTransport>(SimTransport::Private{}, link, 0);
  auto b = std::make_unique<SimTransport>(SimTransport::Private{}, link, 1);
  return {std::move(a), std::move(b)};
}

bool SimNet::InPartition(uint64_t t_ns) const {
  for (const PartitionWindow& w : model_.partitions) {
    if (t_ns >= w.start_ns && t_ns < w.end_ns) {
      return true;
    }
  }
  return false;
}

Status SimNet::SendFrom(const std::shared_ptr<Link>& link, int from_side,
                        ByteView frame) {
  const int to_side = 1 - from_side;
  LinkDir& dir = link->dirs[to_side];
  if (dir.inbox.size() + dir.in_flight >= link->max_queued) {
    return Status::ResourceExhausted("transport queue full");
  }
  ++stats_.frames_sent;
  const uint64_t now_ns = clock_->NowNs();

  // Per-frame draws happen in a fixed order regardless of outcome, so one
  // seed pins the realization of every later frame no matter what happens
  // to this one.
  const bool lost = rng_.Bernoulli(model_.loss_rate);
  const uint64_t jitter_us =
      model_.jitter_us > 0 ? rng_.Uniform(model_.jitter_us + 1) : 0;
  const bool reordered = rng_.Bernoulli(model_.reorder_rate);

  if (InPartition(now_ns)) {
    ++stats_.frames_partitioned;
    if (log_events_) {
      SimEvent e;
      e.t_ns = now_ns;
      e.link_id = link->id;
      e.to_side = static_cast<uint8_t>(to_side);
      e.kind = SimEventKind::kPartitioned;
      e.bytes = static_cast<uint32_t>(frame.size());
      log_.RecordEvent(e);
    }
    return Status::Ok();
  }
  if (lost) {
    ++stats_.frames_lost;
    if (log_events_) {
      SimEvent e;
      e.t_ns = now_ns;
      e.link_id = link->id;
      e.to_side = static_cast<uint8_t>(to_side);
      e.kind = SimEventKind::kLost;
      e.bytes = static_cast<uint32_t>(frame.size());
      log_.RecordEvent(e);
    }
    return Status::Ok();
  }

  // Bandwidth serializes frames per direction: transmission starts when the
  // link is free and holds it for size/rate.
  uint64_t start_ns = std::max(now_ns, dir.next_free_ns);
  if (model_.bandwidth_bytes_per_sec > 0) {
    const uint64_t tx_ns = (static_cast<uint64_t>(frame.size()) * 1000000000ull) /
                           model_.bandwidth_bytes_per_sec;
    dir.next_free_ns = start_ns + tx_ns;
  } else {
    dir.next_free_ns = start_ns;
  }
  uint64_t arrival_ns =
      dir.next_free_ns + (model_.base_latency_us + jitter_us) * 1000ull;
  // FIFO clamp: without a reorder draw, no frame may overtake an earlier
  // one on the same direction.
  if (!reordered) {
    arrival_ns = std::max(arrival_ns, dir.last_arrival_ns);
  }
  dir.last_arrival_ns = std::max(dir.last_arrival_ns, arrival_ns);

  ++dir.in_flight;
  clock_->Schedule(arrival_ns,
                   [this, link, to_side, f = frame.ToBytes(), now_ns]() mutable {
                     Deliver(link, to_side, std::move(f), now_ns);
                   });
  return Status::Ok();
}

void SimNet::Deliver(const std::shared_ptr<Link>& link, int to_side,
                     Bytes frame, uint64_t sent_ns) {
  LinkDir& dir = link->dirs[to_side];
  --dir.in_flight;
  ++stats_.frames_delivered;
  stats_.bytes_delivered += frame.size();
  if (log_events_) {
    SimEvent e;
    e.t_ns = sent_ns;
    e.link_id = link->id;
    e.to_side = static_cast<uint8_t>(to_side);
    e.kind = SimEventKind::kDelivered;
    e.bytes = static_cast<uint32_t>(frame.size());
    e.arrival_ns = clock_->NowNs();
    log_.RecordEvent(e);
  }
  // Frames in flight at Close still land in the inbox: InProcessTransport
  // keeps queued frames poppable after close, and the churn anchor depends
  // on the SSI reading a token's final reply after the link went down.
  dir.inbox.push_back(std::move(frame));
  if (dir.on_frame) {
    dir.on_frame();
  }
}

Status SimTransport::Send(ByteView frame) {
  if (link_->closed) {
    return Status::IoError("transport closed");
  }
  Status st = link_->net->SendFrom(link_, side_, frame);
  if (!st.ok()) {
    return st;
  }
  CountSent(frame.size());
  return Status::Ok();
}

Result<Bytes> SimTransport::Recv(uint32_t deadline_ms) {
  SimNet::LinkDir& dir = link_->dirs[side_];
  SimClock* clock = link_->net->clock_;
  if (deadline_ms == 0) {
    // Pure poll from event context: never advances time (the driver owns
    // the queue), pops even after close, mirrors InProcess error order.
    // InProcess enqueues at Send time, so frames already on the wire at
    // Close stay poppable there; catch up on deliveries that are due
    // before conceding the link is drained.
    while (dir.inbox.empty() && link_->closed && dir.in_flight > 0 &&
           clock->next_event_ns() <= clock->NowNs()) {
      clock->RunOne();
    }
    if (!dir.inbox.empty()) {
      Bytes frame = std::move(dir.inbox.front());
      dir.inbox.pop_front();
      CountReceived(frame.size());
      return frame;
    }
    if (link_->closed) {
      return Status::IoError("transport closed");
    }
    return Status::DeadlineExceeded("recv deadline exceeded");
  }
  // Driver role: block by running the event queue until our frame lands or
  // virtual time reaches the deadline.
  const uint64_t deadline_ns =
      clock->NowNs() + static_cast<uint64_t>(deadline_ms) * 1000000ull;
  while (dir.inbox.empty()) {
    // Frames already on the wire at Close still arrive (and InProcess
    // keeps its queues poppable after close), so the link only reports
    // closed once nothing is in flight toward us.
    if (link_->closed && dir.in_flight == 0) {
      return Status::IoError("transport closed");
    }
    if (clock->idle() || clock->next_event_ns() > deadline_ns) {
      clock->AdvanceTo(deadline_ns);
      return Status::DeadlineExceeded("recv deadline exceeded");
    }
    clock->RunOne();
  }
  Bytes frame = std::move(dir.inbox.front());
  dir.inbox.pop_front();
  CountReceived(frame.size());
  return frame;
}

void SimTransport::Close() {
  link_->closed = true;
  // A closed endpoint must never be pumped again: a churned token's client
  // object is about to be destroyed, so drop both reactive hooks.
  link_->dirs[0].on_frame = nullptr;
  link_->dirs[1].on_frame = nullptr;
}

bool SimTransport::closed() const { return link_->closed; }

void SimTransport::set_on_frame(std::function<void()> fn) {
  link_->dirs[side_].on_frame = std::move(fn);
}

Status FrameTap::Send(ByteView frame) {
  Status st = inner_->Send(frame);
  if (!st.ok()) {
    return st;
  }
  Entry e;
  e.outbound = true;
  e.frame = frame.ToBytes();
  entries_.push_back(std::move(e));
  return Status::Ok();
}

Result<Bytes> FrameTap::Recv(uint32_t deadline_ms) {
  Result<Bytes> r = inner_->Recv(deadline_ms);
  if (r.ok()) {
    Entry e;
    e.outbound = false;
    e.frame = r.value();
    entries_.push_back(std::move(e));
  }
  return r;
}

}  // namespace pds::sim
