#ifndef PDS_SIM_SIM_FLEET_H_
#define PDS_SIM_SIM_FLEET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "global/agg_protocols.h"
#include "global/common.h"
#include "mcu/secure_token.h"
#include "net/ssi_server.h"
#include "net/token_client.h"
#include "sim/link_model.h"
#include "sim/sim_clock.h"
#include "sim/sim_transport.h"

/// SimFleet — a whole [TNP14] token fleet in one process, on virtual time.
///
/// The harness instantiates the REAL protocol endpoints — net::SsiServer
/// and one net::TokenClient + mcu::SecureToken per simulated token — and
/// wires them over SimTransport pairs. No protocol logic is reimplemented:
/// the server runs unmodified and drives the event queue from inside its
/// blocking Recv/backoff calls, while every token runs in pumped mode
/// (TokenClient::PumpOnce from the link's delivery callback). Memory is the
/// only thing engineered for scale: lean server sessions, event logging
/// off, one tuple per token by default — about 2 KiB per simulated token
/// all-in, so a million-token fleet fits in a few GiB.
namespace pds::sim {

struct SimFleetConfig {
  size_t num_tokens = 1000;
  size_t tuples_per_token = 1;
  /// Tuples draw their group from "city-0".."city-<num_groups-1>".
  size_t num_groups = 5;
  /// Master seed: workload generation, link realizations, and token RNGs
  /// all derive from it, so one integer reproduces the entire fleet run.
  uint64_t seed = 55;
  LinkModel link;
  double quorum = 1.0;
  size_t partition_capacity = 4096;
  uint32_t deadline_ms = 2000;
  uint32_t max_retries = 2;
  uint32_t backoff_ms = 5;
  /// Drop per-session server telemetry (a must at 10^6 sessions).
  bool lean_sessions = true;
  bool checksum_frames = false;
  /// Every Nth token (0 disables) swallows all round requests forever —
  /// the deterministic straggler population for quorum-sensitivity runs.
  size_t dropout_every = 0;
  /// Keep the per-frame SimEventLog (off by default: a million-token round
  /// logs tens of millions of events).
  bool log_events = false;
};

class SimFleet {
 public:
  explicit SimFleet(const SimFleetConfig& config);
  ~SimFleet();

  SimFleet(const SimFleet&) = delete;
  SimFleet& operator=(const SimFleet&) = delete;

  /// Creates tokens, pumped clients, and transports, and runs the real
  /// attestation handshake for every session.
  [[nodiscard]] Status Build();

  /// One secure-aggregation protocol run over the live fleet, driven
  /// entirely on virtual time.
  [[nodiscard]] Result<global::AggOutput> RunSecureAggregation(
      global::AggFunc func);

  /// Churns every Nth token between runs: closes its link (the client
  /// object dies with it), then re-admits a fresh client for the SAME
  /// token through SsiServer::ReadmitSession's fresh-challenge handshake.
  /// The next run must complete at full strength — that is the
  /// churn-tolerance property the bench records.
  [[nodiscard]] Status ChurnAndReadmit(size_t churn_every);

  [[nodiscard]] SimClock& clock() { return *clock_; }
  [[nodiscard]] SimNet& net() { return *net_; }
  [[nodiscard]] net::SsiServer& server() { return *server_; }
  [[nodiscard]] const SimFleetConfig& config() const { return config_; }
  [[nodiscard]] uint64_t total_tuples() const { return total_tuples_; }
  /// Tokens configured to swallow rounds (the dropout population).
  [[nodiscard]] size_t dropped_tokens() const { return dropped_tokens_; }
  /// Sessions re-admitted by the last ChurnAndReadmit call.
  [[nodiscard]] size_t churned_tokens() const { return churned_tokens_; }
  /// Fatal pump errors observed across all clients (0 on a clean run).
  [[nodiscard]] size_t pump_errors() const { return pump_errors_; }

  /// Aggregate-memory accounting for the fleet.
  struct MemoryStats {
    /// Sum of the resident structures the fleet allocates per token
    /// (token + client + link + tuples), from sizeof arithmetic.
    uint64_t bytes_estimate = 0;
    /// Peak RSS of the whole process (VmHWM, Linux only; 0 elsewhere).
    uint64_t vm_hwm_kb = 0;
    uint64_t bytes_per_token = 0;  // bytes_estimate / num_tokens
  };
  [[nodiscard]] MemoryStats Memory() const;

 private:
  void PumpToken(size_t i);
  /// Builds client i over a fresh link and hands the server end to
  /// `admit` (AcceptSession or ReadmitSession).
  [[nodiscard]] Status ConnectToken(size_t i, bool readmit);

  SimFleetConfig config_;
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<SimNet> net_;
  std::unique_ptr<mcu::SecureToken> verifier_;
  std::unique_ptr<net::SsiServer> server_;
  std::vector<std::unique_ptr<mcu::SecureToken>> tokens_;
  std::vector<std::vector<global::SourceTuple>> tuples_;
  std::vector<std::unique_ptr<net::TokenClient>> clients_;
  /// Raw client-side endpoints (owned by the TokenClient) for churn close.
  std::vector<SimTransport*> client_ends_;
  uint64_t total_tuples_ = 0;
  size_t dropped_tokens_ = 0;
  size_t churned_tokens_ = 0;
  size_t pump_errors_ = 0;
};

}  // namespace pds::sim

#endif  // PDS_SIM_SIM_FLEET_H_
