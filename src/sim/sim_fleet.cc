#include "sim/sim_fleet.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "common/rng.h"
#include "crypto/cipher.h"

namespace pds::sim {

namespace {
/// Tokens configured to swallow every round request (dropout population).
constexpr uint32_t kDropForever = 1u << 20;
}  // namespace

SimFleet::SimFleet(const SimFleetConfig& config) : config_(config) {}

SimFleet::~SimFleet() {
  // Clients pump from link callbacks that capture `this`; drop them before
  // anything they reference.
  clients_.clear();
}

Status SimFleet::Build() {
  clock_ = std::make_unique<SimClock>();
  net_ = std::make_unique<SimNet>(clock_.get(), config_.link,
                                  config_.seed ^ 0x6c696e6bull);
  net_->set_log_events(config_.log_events);

  crypto::SymmetricKey key = crypto::KeyFromString("sim-fleet");
  mcu::SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = key;
  vcfg.rng_seed = 9000;
  verifier_ = std::make_unique<mcu::SecureToken>(vcfg);

  net::SsiServer::Config scfg;
  scfg.partition_capacity = config_.partition_capacity;
  scfg.deadline_ms = config_.deadline_ms;
  scfg.max_retries = config_.max_retries;
  scfg.backoff_ms = config_.backoff_ms;
  scfg.quorum = config_.quorum;
  scfg.executor = nullptr;  // the event loop is single-threaded by design
  scfg.verifier = verifier_.get();
  scfg.checksum_frames = config_.checksum_frames;
  scfg.clock = clock_.get();
  scfg.lean_sessions = config_.lean_sessions;
  server_ = std::make_unique<net::SsiServer>(scfg);

  const size_t n = config_.num_tokens;
  tokens_.reserve(n);
  tuples_.reserve(n);
  clients_.reserve(n);
  client_ends_.reserve(n);

  Rng workload(config_.seed);
  for (size_t i = 0; i < n; ++i) {
    mcu::SecureToken::Config tcfg;
    tcfg.token_id = 100 + i;
    tcfg.fleet_key = key;
    tcfg.rng_seed = 100 + i;
    tokens_.push_back(std::make_unique<mcu::SecureToken>(tcfg));

    std::vector<global::SourceTuple> tuples;
    tuples.reserve(config_.tuples_per_token);
    for (size_t t = 0; t < config_.tuples_per_token; ++t) {
      global::SourceTuple st;
      st.group = "city-" + std::to_string(workload.Uniform(config_.num_groups));
      st.value = static_cast<double>(workload.Uniform(100));
      tuples.push_back(std::move(st));
    }
    total_tuples_ += tuples.size();
    tuples_.push_back(std::move(tuples));
    clients_.push_back(nullptr);
    client_ends_.push_back(nullptr);
  }

  for (size_t i = 0; i < n; ++i) {
    PDS_RETURN_IF_ERROR(ConnectToken(i, /*readmit=*/false));
  }
  return Status::Ok();
}

Status SimFleet::ConnectToken(size_t i, bool readmit) {
  auto [server_end, client_end] = net_->CreatePair();
  SimTransport* client_raw = client_end.get();

  net::TokenClient::Config ccfg;
  ccfg.token = tokens_[i].get();
  ccfg.tuples = tuples_[i];
  ccfg.deadline_ms = config_.deadline_ms;
  ccfg.clock = clock_.get();
  if (!readmit && config_.dropout_every > 0 &&
      (i % config_.dropout_every) == 0) {
    ccfg.faults.seed = 7 + i;
    ccfg.faults.swallow_first = kDropForever;
    ++dropped_tokens_;
  }
  auto client =
      std::make_unique<net::TokenClient>(std::move(client_end), ccfg);
  PDS_RETURN_IF_ERROR(client->StartPumped());
  client_raw->set_on_frame([this, i] { PumpToken(i); });
  clients_[i] = std::move(client);
  client_ends_[i] = client_raw;

  Result<size_t> admitted =
      readmit ? server_->ReadmitSession(std::move(server_end))
              : server_->AcceptSession(std::move(server_end));
  if (!admitted.ok()) {
    return admitted.status();
  }
  return Status::Ok();
}

void SimFleet::PumpToken(size_t i) {
  net::TokenClient* client = clients_[i].get();
  if (client == nullptr) {
    return;
  }
  Result<bool> r = client->PumpOnce();
  if (!r.ok()) {
    ++pump_errors_;
  }
}

Result<global::AggOutput> SimFleet::RunSecureAggregation(
    global::AggFunc func) {
  return server_->RunSecureAggregation(func);
}

Status SimFleet::ChurnAndReadmit(size_t churn_every) {
  if (churn_every == 0) {
    return Status::InvalidArgument("churn_every must be positive");
  }
  churned_tokens_ = 0;
  for (size_t i = 0; i < clients_.size(); ++i) {
    if ((i % churn_every) != 0) {
      continue;
    }
    // Close drops the link's delivery hooks, so in-flight frames land in
    // dead inboxes instead of pumping a destroyed client.
    client_ends_[i]->Close();
    clients_[i].reset();
    client_ends_[i] = nullptr;
    PDS_RETURN_IF_ERROR(ConnectToken(i, /*readmit=*/true));
    ++churned_tokens_;
  }
  return Status::Ok();
}

SimFleet::MemoryStats SimFleet::Memory() const {
  MemoryStats m;
  const uint64_t n = config_.num_tokens;
  // Resident per-token structures: the token and client state machines,
  // the link (two endpoints + shared state + delivery callbacks), the
  // server session record, and the workload tuples (twice: fleet copy and
  // the client's export). Deque/string internals are approximated by their
  // header sizes — the point is the scaling law, not byte-perfect malloc
  // accounting; vm_hwm_kb is the ground truth.
  const uint64_t per_token =
      sizeof(mcu::SecureToken) + sizeof(net::TokenClient) +
      2 * sizeof(SimTransport) + 128 /* Link + callbacks */ +
      sizeof(net::SsiServer::Config) /* ~session record upper bound */ +
      2 * config_.tuples_per_token * (sizeof(global::SourceTuple) + 16);
  m.bytes_estimate = n * per_token;
  m.bytes_per_token = n > 0 ? m.bytes_estimate / n : 0;
#ifdef __linux__
  // Peak RSS from the kernel's accounting; covers everything the estimate
  // cannot see (allocator slack, codec scratch, the event queue).
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f != nullptr) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        m.vm_hwm_kb = std::strtoull(line + 6, nullptr, 10);
        break;
      }
    }
    std::fclose(f);
  }
#endif
  return m;
}

}  // namespace pds::sim
