#ifndef PDS_SIM_LINK_MODEL_H_
#define PDS_SIM_LINK_MODEL_H_

#include <cstdint>
#include <vector>

/// Parameters of the modeled token <-> SSI link. One LinkModel serves the
/// whole fleet; per-frame realizations (loss, jitter, reorder) are drawn
/// from the SimNet's single seeded RNG in a fixed order, so a seed pins
/// the entire fleet's link behaviour.
namespace pds::sim {

/// A wall of silence: frames sent while `start_ns <= now < end_ns` are
/// lost (network partition). Delivery of frames already in flight is not
/// affected — partitions cut new transmissions, not physics.
struct PartitionWindow {
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

struct LinkModel {
  /// Fixed one-way latency added to every frame.
  uint64_t base_latency_us = 0;
  /// Uniform extra latency in [0, jitter_us] drawn per frame. With zero
  /// jitter the link is a FIFO pipe and reorder_rate cannot manifest.
  uint64_t jitter_us = 0;
  /// Per-frame Bernoulli loss probability.
  double loss_rate = 0.0;
  /// Probability a frame skips the FIFO clamp: with jitter, a lucky late
  /// frame may then overtake an unlucky earlier one.
  double reorder_rate = 0.0;
  /// Link serialization rate; 0 means infinite (no per-byte delay).
  uint64_t bandwidth_bytes_per_sec = 0;
  /// Outage windows in virtual time.
  std::vector<PartitionWindow> partitions;

  /// An ideal link delivers every frame instantly and in order — the
  /// configuration under which a simulated run must be byte-identical to
  /// an InProcessTransport run (the anchor property).
  [[nodiscard]] bool ideal() const {
    return base_latency_us == 0 && jitter_us == 0 && loss_rate == 0 &&
           reorder_rate == 0 && bandwidth_bytes_per_sec == 0 &&
           partitions.empty();
  }
};

}  // namespace pds::sim

#endif  // PDS_SIM_LINK_MODEL_H_
