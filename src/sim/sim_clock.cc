#include "sim/sim_clock.h"

#include <limits>
#include <utility>

namespace pds::sim {

void SimClock::Schedule(uint64_t at_ns, std::function<void()> fn) {
  Event e;
  e.at_ns = at_ns < now_ns_ ? now_ns_ : at_ns;
  e.seq = next_seq_++;
  e.fn = std::move(fn);
  events_.push(std::move(e));
}

void SimClock::AdvanceTo(uint64_t t_ns) {
  // Events an in-flight closure schedules before `t_ns` run in this same
  // pass: the loop re-reads the queue head every iteration.
  while (!events_.empty() && events_.top().at_ns <= t_ns) {
    RunOne();
  }
  if (t_ns > now_ns_) {
    now_ns_ = t_ns;
  }
}

bool SimClock::RunOne() {
  if (events_.empty()) {
    return false;
  }
  // priority_queue::top() is const; the closure must be moved out before
  // pop so it survives anything it schedules while running.
  Event e = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  if (e.at_ns > now_ns_) {
    now_ns_ = e.at_ns;
  }
  ++events_run_;
  e.fn();
  return true;
}

uint64_t SimClock::next_event_ns() const {
  if (events_.empty()) {
    return std::numeric_limits<uint64_t>::max();
  }
  return events_.top().at_ns;
}

}  // namespace pds::sim
