#include "global/toolkit.h"

#include <algorithm>
#include <map>

#include "crypto/sra.h"
#include "obs/obs.h"

namespace pds::global {

Result<uint64_t> SecureSum(const std::vector<uint64_t>& site_values,
                           uint64_t modulus, Rng* rng, Metrics* metrics) {
  if (site_values.size() < 3) {
    return Status::InvalidArgument(
        "secure sum needs >= 3 sites (with 2, each site learns the other)");
  }
  if (modulus == 0) {
    return Status::InvalidArgument("modulus must be positive");
  }
  for (uint64_t v : site_values) {
    if (v >= modulus) {
      return Status::InvalidArgument("site value exceeds the sum modulus");
    }
  }
  // Initiator masks with R; the ring accumulates v_i mod modulus.
  uint64_t r = rng->Uniform(modulus);
  // Unsigned arithmetic mod `modulus` (modulus <= 2^63 keeps adds exact).
  uint64_t running = (r + site_values[0]) % modulus;
  if (metrics != nullptr) {
    metrics->AddMessage(8);
    ++metrics->rounds;
  }
  for (size_t i = 1; i < site_values.size(); ++i) {
    running = (running + site_values[i]) % modulus;
    if (metrics != nullptr) {
      metrics->AddMessage(8);
    }
  }
  // Back to the initiator, which removes the mask.
  uint64_t sum = (running + modulus - r) % modulus;
  if (metrics != nullptr) {
    metrics->AddMessage(8);
  }
  return sum;
}

namespace {

/// Runs the shared encrypt-around-the-ring phase of the union/intersection
/// protocols: returns, per site, its item set encrypted by *every* site's
/// key (as decimal strings for cheap equality), plus the ciphers (for the
/// decryption phase).
struct RingEncryptionResult {
  std::vector<crypto::SraCipher> ciphers;
  // fully_encrypted[site] = ciphertexts of that site's items.
  std::vector<std::vector<crypto::BigInt>> fully_encrypted;
};

Result<RingEncryptionResult> RingEncrypt(
    const std::vector<std::vector<std::string>>& site_sets, size_t prime_bits,
    Rng* rng, Metrics* metrics, FleetExecutor* exec) {
  if (site_sets.size() < 2) {
    return Status::InvalidArgument("need >= 2 sites");
  }
  RingEncryptionResult out;
  crypto::BigInt p = crypto::SraCipher::GeneratePrime(prime_bits, rng);
  for (size_t s = 0; s < site_sets.size(); ++s) {
    PDS_ASSIGN_OR_RETURN(crypto::SraCipher cipher,
                         crypto::SraCipher::Create(p, rng));
    out.ciphers.push_back(std::move(cipher));
  }

  const size_t n = site_sets.size();
  out.fully_encrypted.resize(n);
  // Each originating site's journey around the ring is independent of the
  // others, so the n journeys fan out across the executor. The shuffles
  // draw from per-site sub-streams seeded serially here, which keeps the
  // outcome deterministic for a given seed at any thread count.
  std::vector<uint64_t> shuffle_seeds(n);
  for (size_t s = 0; s < n; ++s) {
    shuffle_seeds[s] = rng->Next();
  }
  std::vector<Metrics> site_metrics(n);
  PDS_RETURN_IF_ERROR(FleetExecutor::Run(exec, n, [&](size_t s) -> Status {
    Metrics* m = metrics != nullptr ? &site_metrics[s] : nullptr;
    Rng shuffle_rng(shuffle_seeds[s]);
    // Encode and self-encrypt.
    std::vector<crypto::BigInt> items;
    for (const std::string& item : site_sets[s]) {
      PDS_ASSIGN_OR_RETURN(crypto::BigInt x,
                           out.ciphers[s].EncodeItem(item));
      PDS_ASSIGN_OR_RETURN(x, out.ciphers[s].Encrypt(x));
      if (m != nullptr) {
        ++m->token_crypto_ops;
      }
      items.push_back(std::move(x));
    }
    // Pass around the ring: every other site adds its encryption layer
    // (and shuffles, to break positional linkage).
    for (size_t hop = 1; hop < n; ++hop) {
      size_t site = (s + hop) % n;
      for (crypto::BigInt& x : items) {
        PDS_ASSIGN_OR_RETURN(x, out.ciphers[site].Encrypt(x));
        if (m != nullptr) {
          ++m->token_crypto_ops;
        }
      }
      shuffle_rng.Shuffle(&items);
      if (m != nullptr) {
        m->AddMessage(items.size() * (prime_bits / 8));
        ++m->rounds;
      }
    }
    out.fully_encrypted[s] = std::move(items);
    return Status::Ok();
  }));
  if (metrics != nullptr) {
    for (const Metrics& m : site_metrics) {
      metrics->messages += m.messages;
      metrics->bytes += m.bytes;
      metrics->rounds += m.rounds;
      metrics->token_crypto_ops += m.token_crypto_ops;
      metrics->ssi_ops += m.ssi_ops;
    }
  }
  return out;
}

}  // namespace

Result<std::set<std::string>> SecureSetUnion(
    const std::vector<std::vector<std::string>>& site_sets, size_t prime_bits,
    Rng* rng, Metrics* metrics, FleetExecutor* exec) {
  PDS_ASSIGN_OR_RETURN(RingEncryptionResult ring,
                       RingEncrypt(site_sets, prime_bits, rng, metrics, exec));

  // Union on fully-encrypted items: equal plaintexts collide because the
  // composition of all sites' exponents is the same for everyone.
  std::map<std::string, crypto::BigInt> distinct;
  for (const auto& site_items : ring.fully_encrypted) {
    for (const crypto::BigInt& x : site_items) {
      distinct.emplace(x.ToDecimalString(), x);
      if (metrics != nullptr) {
        ++metrics->ssi_ops;
      }
    }
  }

  // Decrypt each distinct ciphertext with every site's key. Each chain of
  // layer removals is independent, so they fan out across the executor.
  std::vector<const crypto::BigInt*> cts;
  cts.reserve(distinct.size());
  for (auto& [key, ct] : distinct) {
    cts.push_back(&ct);
  }
  std::vector<std::string> items(cts.size());
  PDS_RETURN_IF_ERROR(
      FleetExecutor::Run(exec, cts.size(), [&](size_t i) -> Status {
        crypto::BigInt x = *cts[i];
        for (const crypto::SraCipher& cipher : ring.ciphers) {
          PDS_ASSIGN_OR_RETURN(x, cipher.Decrypt(x));
        }
        PDS_ASSIGN_OR_RETURN(items[i], ring.ciphers[0].DecodeItem(x));
        return Status::Ok();
      }));
  if (metrics != nullptr) {
    metrics->token_crypto_ops += cts.size() * ring.ciphers.size();
  }
  std::set<std::string> result;
  for (std::string& item : items) {
    result.insert(std::move(item));
  }
  return result;
}

Result<uint64_t> SecureIntersectionSize(
    const std::vector<std::vector<std::string>>& site_sets, size_t prime_bits,
    Rng* rng, Metrics* metrics, FleetExecutor* exec) {
  PDS_ASSIGN_OR_RETURN(RingEncryptionResult ring,
                       RingEncrypt(site_sets, prime_bits, rng, metrics, exec));

  // Count fully-encrypted values present at every site (no decryption).
  std::map<std::string, uint64_t> presence;
  for (const auto& site_items : ring.fully_encrypted) {
    std::set<std::string> site_distinct;
    for (const crypto::BigInt& x : site_items) {
      site_distinct.insert(x.ToDecimalString());
    }
    for (const std::string& key : site_distinct) {
      ++presence[key];
      if (metrics != nullptr) {
        ++metrics->ssi_ops;
      }
    }
  }
  uint64_t count = 0;
  for (const auto& [key, sites] : presence) {
    if (sites == site_sets.size()) {
      ++count;
    }
  }
  return count;
}

namespace {

/// Encrypts `values[i]` under `paillier` for every i, fanning out across
/// the executor. Each element draws its randomness from a sub-stream
/// seeded serially off `rng`, so ciphertexts are deterministic for a given
/// seed at any thread count.
Result<std::vector<crypto::BigInt>> ParallelEncrypt(
    const crypto::Paillier& paillier, const std::vector<uint64_t>& values,
    Rng* rng, FleetExecutor* exec) {
  std::vector<uint64_t> seeds(values.size());
  for (uint64_t& s : seeds) {
    s = rng->Next();
  }
  std::vector<crypto::BigInt> cts(values.size());
  PDS_RETURN_IF_ERROR(
      FleetExecutor::Run(exec, values.size(), [&](size_t i) -> Status {
        Rng local(seeds[i]);
        PDS_ASSIGN_OR_RETURN(cts[i], paillier.EncryptU64(values[i], &local));
        return Status::Ok();
      }));
  return cts;
}

}  // namespace

Result<uint64_t> SecureScalarProduct(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b,
                                     size_t paillier_bits, Rng* rng,
                                     Metrics* metrics, FleetExecutor* exec) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("vectors must have equal length");
  }
  PDS_ASSIGN_OR_RETURN(crypto::Paillier paillier,
                       crypto::Paillier::Generate(paillier_bits, rng));

  // Site A -> B: E(a_i).
  PDS_ASSIGN_OR_RETURN(std::vector<crypto::BigInt> enc_a,
                       ParallelEncrypt(paillier, a, rng, exec));
  if (metrics != nullptr) {
    metrics->token_crypto_ops += enc_a.size();
  }
  if (metrics != nullptr) {
    metrics->AddMessage(enc_a.size() * (paillier_bits / 4));
    ++metrics->rounds;
  }

  // Site B: prod E(a_i)^{b_i} = E(sum a_i b_i).
  PDS_ASSIGN_OR_RETURN(crypto::BigInt acc, paillier.EncryptU64(0, rng));
  for (size_t i = 0; i < b.size(); ++i) {
    crypto::BigInt term =
        paillier.MulPlaintext(enc_a[i], crypto::BigInt(b[i]));
    acc = paillier.AddCiphertexts(acc, term);
    if (metrics != nullptr) {
      ++metrics->token_crypto_ops;
    }
  }
  if (metrics != nullptr) {
    metrics->AddMessage(paillier_bits / 4);
    ++metrics->rounds;
  }

  // Back at A: decrypt.
  PDS_ASSIGN_OR_RETURN(uint64_t result, paillier.DecryptU64(acc));
  if (metrics != nullptr) {
    ++metrics->token_crypto_ops;
  }
  return result;
}

Result<uint64_t> PaillierFleetSum(const std::vector<uint64_t>& site_values,
                                  size_t paillier_bits, Rng* rng,
                                  Metrics* metrics, FleetExecutor* exec) {
  if (site_values.empty()) {
    return 0;
  }
  PDS_ASSIGN_OR_RETURN(crypto::Paillier paillier,
                       crypto::Paillier::Generate(paillier_bits, rng));
  // Every site encrypts independently (the fleet-parallel hot path); the
  // SSI then folds the ciphertexts, which is cheap modular multiplication.
  PDS_ASSIGN_OR_RETURN(std::vector<crypto::BigInt> cts,
                       ParallelEncrypt(paillier, site_values, rng, exec));
  crypto::BigInt acc = std::move(cts[0]);
  for (size_t i = 1; i < cts.size(); ++i) {
    acc = paillier.AddCiphertexts(acc, cts[i]);  // SSI-side multiplication
    if (metrics != nullptr) {
      ++metrics->ssi_ops;
    }
  }
  if (metrics != nullptr) {
    metrics->token_crypto_ops += cts.size();
    metrics->messages += cts.size();
    metrics->bytes += cts.size() * (paillier_bits / 4);
  }
  PDS_ASSIGN_OR_RETURN(uint64_t sum, paillier.DecryptU64(acc));
  if (metrics != nullptr) {
    ++metrics->token_crypto_ops;
    ++metrics->rounds;
  }
  return sum;
}

namespace {

Status CheckCounterMatrix(const std::vector<std::vector<uint64_t>>& rows) {
  if (rows.empty() || rows[0].empty()) {
    return Status::InvalidArgument("fleet round needs sites and counters");
  }
  for (const auto& row : rows) {
    if (row.size() != rows[0].size()) {
      return Status::InvalidArgument("ragged counter matrix");
    }
  }
  return Status::Ok();
}

/// Fleet-wide accumulators for the round benches: how many asymmetric
/// cipher operations each gear spent per aggregation round.
struct RoundObs {
  obs::Counter* perop_rounds;
  obs::Counter* perop_cipher_ops;
  obs::Counter* packed_rounds;
  obs::Counter* packed_cipher_ops;

  static const RoundObs& Get() {
    static const RoundObs hooks = [] {
      obs::Registry& reg = obs::Registry::Global();
      return RoundObs{reg.GetCounter("round.perop.rounds", "ops"),
                      reg.GetCounter("round.perop.cipher_ops", "ops"),
                      reg.GetCounter("round.packed.rounds", "ops"),
                      reg.GetCounter("round.packed.cipher_ops", "ops")};
    }();
    return hooks;
  }
};

}  // namespace

Result<PackedRoundOutput> PaillierPerOpFleetRound(
    const crypto::Paillier& paillier,
    const std::vector<std::vector<uint64_t>>& site_counters, Rng* rng,
    Metrics* metrics, FleetExecutor* exec) {
  PDS_RETURN_IF_ERROR(CheckCounterMatrix(site_counters));
  const size_t fleet = site_counters.size();
  const size_t k = site_counters[0].size();
  PackedRoundOutput out;
  out.totals.resize(k);
  const size_t ct_bytes = paillier.public_key().n_squared.ToBytes().size();
  for (size_t j = 0; j < k; ++j) {
    std::vector<uint64_t> column(fleet);
    for (size_t i = 0; i < fleet; ++i) {
      column[i] = site_counters[i][j];
    }
    PDS_ASSIGN_OR_RETURN(std::vector<crypto::BigInt> cts,
                         ParallelEncrypt(paillier, column, rng, exec));
    crypto::BigInt acc = std::move(cts[0]);
    for (size_t i = 1; i < cts.size(); ++i) {
      acc = paillier.AddCiphertexts(acc, cts[i]);
      ++out.metrics.ssi_ops;
    }
    PDS_ASSIGN_OR_RETURN(out.totals[j], paillier.DecryptU64(acc));
    out.metrics.token_crypto_ops += fleet + 1;
    out.metrics.bytes_token_to_ssi += fleet * ct_bytes;
    out.metrics.messages += fleet;
    out.metrics.bytes += fleet * ct_bytes;
  }
  ++out.metrics.rounds;
  const RoundObs& hooks = RoundObs::Get();
  hooks.perop_rounds->Add(1);
  hooks.perop_cipher_ops->Add(out.metrics.token_crypto_ops);
  if (metrics != nullptr) {
    *metrics = out.metrics;
  }
  return out;
}

Result<PackedRoundOutput> PaillierPackedFleetRound(
    const crypto::PackedAggregate& agg,
    const std::vector<std::vector<uint64_t>>& site_counters, Rng* rng,
    Metrics* metrics) {
  PDS_RETURN_IF_ERROR(CheckCounterMatrix(site_counters));
  const size_t fleet = site_counters.size();
  PDS_RETURN_IF_ERROR(agg.CheckAddBudget(fleet));
  PackedRoundOutput out;
  // One lockstep batch over the whole fleet: the window tables and digit
  // decodes are shared and four r^n ladders advance per kernel call.
  PDS_ASSIGN_OR_RETURN(std::vector<crypto::BigInt> cts,
                       agg.EncryptPackedBatch(site_counters, rng));
  crypto::BigInt acc = std::move(cts[0]);
  for (size_t i = 1; i < cts.size(); ++i) {
    acc = agg.Add(acc, cts[i]);
    ++out.metrics.ssi_ops;
  }
  PDS_ASSIGN_OR_RETURN(out.totals, agg.DecryptUnpack(acc));
  const size_t ct_bytes =
      agg.paillier().public_key().n_squared.ToBytes().size();
  out.metrics.token_crypto_ops += fleet + 1;
  out.metrics.bytes_token_to_ssi += fleet * ct_bytes;
  out.metrics.messages += fleet;
  out.metrics.bytes += fleet * ct_bytes;
  ++out.metrics.rounds;
  const RoundObs& hooks = RoundObs::Get();
  hooks.packed_rounds->Add(1);
  hooks.packed_cipher_ops->Add(out.metrics.token_crypto_ops);
  if (metrics != nullptr) {
    *metrics = out.metrics;
  }
  return out;
}

}  // namespace pds::global
