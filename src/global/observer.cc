#include "global/observer.h"

namespace pds::global {

void HbcObserver::ObserveTuple(ByteView class_key, bool plaintext_group) {
  ++tuples_;
  ++classes_[class_key.ToString()];
  plaintext_seen_ |= plaintext_group;
}

LeakageReport HbcObserver::Report() const {
  LeakageReport report;
  report.tuples_observed = tuples_;
  report.distinct_classes = classes_.size();
  report.class_sizes.reserve(classes_.size());
  for (const auto& [key, count] : classes_) {
    report.class_sizes.push_back(count);
  }
  report.plaintext_groups_visible = plaintext_seen_;
  return report;
}

}  // namespace pds::global
