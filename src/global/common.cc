#include "global/common.h"

#include <cmath>
#include <cstring>

#include "obs/obs.h"

namespace pds::global {

Bytes EncodeAggPayload(bool fake, double sum, uint64_t count,
                       const std::string& group) {
  Bytes out;
  out.reserve(17 + group.size());
  out.push_back(fake ? 1 : 0);
  uint64_t bits;
  std::memcpy(&bits, &sum, 8);
  PutU64(&out, bits);
  PutU64(&out, count);
  out.insert(out.end(), group.begin(), group.end());
  return out;
}

Result<AggPayload> DecodeAggPayload(ByteView in) {
  if (in.size() < 17) {
    return Status::Corruption("agg payload too short");
  }
  AggPayload p;
  p.fake = in[0] != 0;
  uint64_t bits = GetU64(in.data() + 1);
  std::memcpy(&p.sum, &bits, 8);
  p.count = GetU64(in.data() + 9);
  p.group = in.subview(17, in.size() - 17).ToString();
  return p;
}

double LeakageReport::MaxClassFraction() const {
  if (tuples_observed == 0 || class_sizes.empty()) {
    return 0.0;
  }
  uint64_t max = 0;
  for (uint64_t s : class_sizes) {
    max = std::max(max, s);
  }
  return static_cast<double>(max) / static_cast<double>(tuples_observed);
}

double LeakageReport::ClassEntropyBits() const {
  if (tuples_observed == 0) {
    return 0.0;
  }
  double h = 0.0;
  for (uint64_t s : class_sizes) {
    if (s == 0) {
      continue;
    }
    double p = static_cast<double>(s) / static_cast<double>(tuples_observed);
    h -= p * std::log2(p);
  }
  return h;
}

std::map<std::string, double> PlainAggregate(
    const std::vector<Participant>& participants, AggFunc func) {
  std::map<std::string, double> sums;
  std::map<std::string, uint64_t> counts;
  for (const Participant& p : participants) {
    for (const SourceTuple& t : p.tuples) {
      sums[t.group] += t.value;
      ++counts[t.group];
    }
  }
  std::map<std::string, double> out;
  for (auto& [group, sum] : sums) {
    switch (func) {
      case AggFunc::kSum:
        out[group] = sum;
        break;
      case AggFunc::kCount:
        out[group] = static_cast<double>(counts[group]);
        break;
      case AggFunc::kAvg:
        out[group] = sum / static_cast<double>(counts[group]);
        break;
    }
  }
  return out;
}

void RecordProtocolRun(const char* name, const Metrics& metrics,
                       const LeakageReport& leakage) {
  // Fleet-wide accumulators; resolved once, then plain atomic adds.
  struct ProtocolObs {
    obs::Counter* runs;
    obs::Counter* rounds;
    obs::Counter* token_to_ssi_bytes;
    obs::Counter* ssi_to_token_bytes;
    obs::Counter* messages;
    obs::Counter* token_crypto_ops;
    obs::Counter* ssi_ops;
  };
  static const ProtocolObs hooks = [] {
    obs::Registry& reg = obs::Registry::Global();
    return ProtocolObs{
        reg.GetCounter("protocol.runs", "ops"),
        reg.GetCounter("protocol.rounds", "ops"),
        reg.GetCounter("wire.token_to_ssi_bytes", "bytes"),
        reg.GetCounter("wire.ssi_to_token_bytes", "bytes"),
        reg.GetCounter("wire.messages", "ops"),
        reg.GetCounter("protocol.token_crypto_ops", "ops"),
        reg.GetCounter("protocol.ssi_ops", "ops")};
  }();
  hooks.runs->Add(1);
  hooks.rounds->Add(metrics.rounds);
  hooks.token_to_ssi_bytes->Add(metrics.bytes_token_to_ssi);
  hooks.ssi_to_token_bytes->Add(metrics.bytes_ssi_to_token);
  hooks.messages->Add(metrics.messages);
  hooks.token_crypto_ops->Add(metrics.token_crypto_ops);
  hooks.ssi_ops->Add(metrics.ssi_ops);
  // Per-run leakage and wire totals ride the trace (not the metrics
  // registry): they are properties of one run, not accumulating quantities.
  obs::Tracer::Global().Instant(name, "leakage", "distinct_classes",
                                static_cast<double>(leakage.distinct_classes),
                                "max_class_fraction",
                                leakage.MaxClassFraction());
  obs::Tracer::Global().Instant(
      name, "wire", "token_to_ssi_bytes",
      static_cast<double>(metrics.bytes_token_to_ssi), "ssi_to_token_bytes",
      static_cast<double>(metrics.bytes_ssi_to_token));
}

}  // namespace pds::global
