#include "global/common.h"

#include <cmath>

namespace pds::global {

double LeakageReport::MaxClassFraction() const {
  if (tuples_observed == 0 || class_sizes.empty()) {
    return 0.0;
  }
  uint64_t max = 0;
  for (uint64_t s : class_sizes) {
    max = std::max(max, s);
  }
  return static_cast<double>(max) / static_cast<double>(tuples_observed);
}

double LeakageReport::ClassEntropyBits() const {
  if (tuples_observed == 0) {
    return 0.0;
  }
  double h = 0.0;
  for (uint64_t s : class_sizes) {
    if (s == 0) {
      continue;
    }
    double p = static_cast<double>(s) / static_cast<double>(tuples_observed);
    h -= p * std::log2(p);
  }
  return h;
}

std::map<std::string, double> PlainAggregate(
    const std::vector<Participant>& participants, AggFunc func) {
  std::map<std::string, double> sums;
  std::map<std::string, uint64_t> counts;
  for (const Participant& p : participants) {
    for (const SourceTuple& t : p.tuples) {
      sums[t.group] += t.value;
      ++counts[t.group];
    }
  }
  std::map<std::string, double> out;
  for (auto& [group, sum] : sums) {
    switch (func) {
      case AggFunc::kSum:
        out[group] = sum;
        break;
      case AggFunc::kCount:
        out[group] = static_cast<double>(counts[group]);
        break;
      case AggFunc::kAvg:
        out[group] = sum / static_cast<double>(counts[group]);
        break;
    }
  }
  return out;
}

}  // namespace pds::global
