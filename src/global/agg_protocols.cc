#include "global/agg_protocols.h"

#include <cstring>
#include <functional>
#include <set>

#include "common/hash.h"

namespace pds::global {

namespace {

/// Payload carried (encrypted) with each protocol tuple:
/// [u8 fake][f64 sum][u64 count][group bytes].
Bytes EncodePayload(bool fake, double sum, uint64_t count,
                    const std::string& group) {
  Bytes out;
  out.push_back(fake ? 1 : 0);
  uint64_t bits;
  std::memcpy(&bits, &sum, 8);
  PutU64(&out, bits);
  PutU64(&out, count);
  out.insert(out.end(), group.begin(), group.end());
  return out;
}

struct Payload {
  bool fake = false;
  double sum = 0;
  uint64_t count = 0;
  std::string group;
};

Result<Payload> DecodePayload(ByteView in) {
  if (in.size() < 17) {
    return Status::Corruption("payload too short");
  }
  Payload p;
  p.fake = in[0] != 0;
  uint64_t bits = GetU64(in.data() + 1);
  std::memcpy(&p.sum, &bits, 8);
  p.count = GetU64(in.data() + 9);
  p.group = in.subview(17, in.size() - 17).ToString();
  return p;
}

/// Sum/count accumulation per group.
struct GroupState {
  double sum = 0;
  uint64_t count = 0;
};

std::map<std::string, double> Finalize(
    const std::map<std::string, GroupState>& states, AggFunc func) {
  std::map<std::string, double> out;
  for (const auto& [group, s] : states) {
    if (s.count == 0) {
      continue;  // only fake contributions
    }
    switch (func) {
      case AggFunc::kSum:
        out[group] = s.sum;
        break;
      case AggFunc::kCount:
        out[group] = static_cast<double>(s.count);
        break;
      case AggFunc::kAvg:
        out[group] = s.sum / static_cast<double>(s.count);
        break;
    }
  }
  return out;
}

constexpr char kFakeGroupPrefix[] = "\x01__fake__";

}  // namespace

Result<AggOutput> SecureAggProtocol::Execute(
    std::vector<Participant>& participants, AggFunc func) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  AggOutput out;
  HbcObserver observer;

  // Phase 1: every token non-deterministically encrypts its tuples.
  std::vector<Bytes> items;
  for (Participant& p : participants) {
    for (const SourceTuple& t : p.tuples) {
      Bytes payload = EncodePayload(false, t.value, 1, t.group);
      PDS_ASSIGN_OR_RETURN(Bytes ct, p.token->EncryptNonDet(ByteView(payload)));
      ++out.metrics.token_crypto_ops;
      out.metrics.AddMessage(ct.size());
      observer.ObserveTuple(ByteView(ct));
      items.push_back(std::move(ct));
    }
  }
  ++out.metrics.rounds;

  // Phase 2: iterative partition-and-aggregate until one partition is left.
  size_t worker = 0;
  while (items.size() > config_.partition_capacity) {
    std::vector<Bytes> next;
    size_t before = items.size();
    for (size_t start = 0; start < items.size();
         start += config_.partition_capacity) {
      size_t end =
          std::min(items.size(), start + config_.partition_capacity);
      mcu::SecureToken* token =
          participants[worker++ % participants.size()].token;

      std::map<std::string, GroupState> partial;
      for (size_t i = start; i < end; ++i) {
        out.metrics.AddMessage(items[i].size());  // SSI -> token
        PDS_ASSIGN_OR_RETURN(Bytes payload,
                             token->DecryptNonDet(ByteView(items[i])));
        ++out.metrics.token_crypto_ops;
        PDS_ASSIGN_OR_RETURN(Payload p, DecodePayload(ByteView(payload)));
        partial[p.group].sum += p.sum;
        partial[p.group].count += p.count;
      }
      for (const auto& [group, state] : partial) {
        Bytes payload = EncodePayload(false, state.sum, state.count, group);
        PDS_ASSIGN_OR_RETURN(Bytes ct,
                             token->EncryptNonDet(ByteView(payload)));
        ++out.metrics.token_crypto_ops;
        out.metrics.AddMessage(ct.size());  // token -> SSI
        observer.ObserveTuple(ByteView(ct));
        next.push_back(std::move(ct));
      }
      ++out.metrics.ssi_ops;  // partition bookkeeping
    }
    ++out.metrics.rounds;
    if (next.size() >= before) {
      return Status::InvalidArgument(
          "partition capacity too small for the number of distinct groups");
    }
    items = std::move(next);
  }

  // Phase 3: final aggregation inside one token.
  mcu::SecureToken* token = participants[0].token;
  std::map<std::string, GroupState> final_state;
  for (const Bytes& ct : items) {
    out.metrics.AddMessage(ct.size());
    PDS_ASSIGN_OR_RETURN(Bytes payload, token->DecryptNonDet(ByteView(ct)));
    ++out.metrics.token_crypto_ops;
    PDS_ASSIGN_OR_RETURN(Payload p, DecodePayload(ByteView(payload)));
    final_state[p.group].sum += p.sum;
    final_state[p.group].count += p.count;
  }
  ++out.metrics.rounds;

  out.groups = Finalize(final_state, func);
  out.leakage = observer.Report();
  return out;
}

namespace {

/// Shared one-round evaluation used by the two noise-based protocols:
/// tuples are (det-encrypted group, nondet-encrypted payload); the SSI
/// groups by the deterministic ciphertext, and each class is aggregated
/// inside one token.
Result<AggOutput> RunDetProtocol(
    std::vector<Participant>& participants, AggFunc func,
    const std::function<Status(Participant&, size_t,
                               std::vector<std::pair<std::string, double>>*)>&
        make_fakes) {
  AggOutput out;
  HbcObserver observer;

  struct WireTuple {
    Bytes group_ct;
    Bytes payload_ct;
  };
  std::vector<WireTuple> wire;

  for (size_t pi = 0; pi < participants.size(); ++pi) {
    Participant& p = participants[pi];
    // Real tuples + protocol-specific fakes.
    std::vector<std::pair<std::string, double>> to_send;
    for (const SourceTuple& t : p.tuples) {
      to_send.emplace_back(t.group, t.value);
    }
    size_t real_count = to_send.size();
    std::vector<std::pair<std::string, double>> fakes;
    PDS_RETURN_IF_ERROR(make_fakes(p, real_count, &fakes));

    for (size_t i = 0; i < to_send.size() + fakes.size(); ++i) {
      bool fake = i >= to_send.size();
      const auto& [group, value] =
          fake ? fakes[i - to_send.size()] : to_send[i];
      WireTuple wt;
      PDS_ASSIGN_OR_RETURN(
          wt.group_ct, p.token->EncryptDet(ByteView(std::string_view(group))));
      Bytes payload = EncodePayload(fake, value, fake ? 0 : 1, "");
      PDS_ASSIGN_OR_RETURN(wt.payload_ct,
                           p.token->EncryptNonDet(ByteView(payload)));
      out.metrics.token_crypto_ops += 2;
      out.metrics.AddMessage(wt.group_ct.size() + wt.payload_ct.size());
      observer.ObserveTuple(ByteView(wt.group_ct));
      wire.push_back(std::move(wt));
    }
  }
  ++out.metrics.rounds;

  // SSI: group by deterministic ciphertext.
  std::map<std::string, std::vector<const WireTuple*>> classes;
  for (const WireTuple& wt : wire) {
    classes[ByteView(wt.group_ct).ToString()].push_back(&wt);
    ++out.metrics.ssi_ops;
  }

  // Each class is handed to a token for decryption + aggregation.
  std::map<std::string, GroupState> state;
  size_t worker = 0;
  for (const auto& [class_key, tuples] : classes) {
    mcu::SecureToken* token =
        participants[worker++ % participants.size()].token;
    PDS_ASSIGN_OR_RETURN(
        Bytes group_plain,
        token->DecryptDet(ByteView(tuples.front()->group_ct)));
    ++out.metrics.token_crypto_ops;
    std::string group = ByteView(group_plain).ToString();
    if (group.rfind(kFakeGroupPrefix, 0) == 0) {
      // Whole class is white noise; discard inside the token.
      out.metrics.token_crypto_ops += tuples.size();  // decrypt-and-drop
      continue;
    }
    GroupState& gs = state[group];
    for (const WireTuple* wt : tuples) {
      out.metrics.AddMessage(wt->payload_ct.size());
      PDS_ASSIGN_OR_RETURN(Bytes payload,
                           token->DecryptNonDet(ByteView(wt->payload_ct)));
      ++out.metrics.token_crypto_ops;
      PDS_ASSIGN_OR_RETURN(Payload p, DecodePayload(ByteView(payload)));
      if (!p.fake) {
        gs.sum += p.sum;
        gs.count += p.count;
      }
    }
  }
  ++out.metrics.rounds;

  out.groups = Finalize(state, func);
  out.leakage = observer.Report();
  return out;
}

}  // namespace

Result<AggOutput> WhiteNoiseProtocol::Execute(
    std::vector<Participant>& participants, AggFunc func) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  Rng noise_rng(config_.noise_seed);
  return RunDetProtocol(
      participants, func,
      [&](Participant& p, size_t real_count,
          std::vector<std::pair<std::string, double>>* fakes) {
        (void)p;
        size_t n = static_cast<size_t>(
            static_cast<double>(real_count) * config_.noise_ratio);
        for (size_t i = 0; i < n; ++i) {
          fakes->emplace_back(
              std::string(kFakeGroupPrefix) +
                  std::to_string(noise_rng.Next()),
              0.0);
        }
        return Status::Ok();
      });
}

Result<AggOutput> DomainNoiseProtocol::Execute(
    std::vector<Participant>& participants, AggFunc func) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  if (config_.domain.empty()) {
    return Status::InvalidArgument("domain noise requires the value domain");
  }
  // Real groups must belong to the announced domain.
  std::set<std::string> domain(config_.domain.begin(), config_.domain.end());
  for (const Participant& p : participants) {
    for (const SourceTuple& t : p.tuples) {
      if (domain.count(t.group) == 0) {
        return Status::InvalidArgument("group '" + t.group +
                                       "' outside the announced domain");
      }
    }
  }
  return RunDetProtocol(
      participants, func,
      [&](Participant& p, size_t real_count,
          std::vector<std::pair<std::string, double>>* fakes) {
        (void)p;
        (void)real_count;
        // Cover the complementary domain: every domain value receives
        // fake tuples from every participant, flattening the histogram.
        for (const std::string& v : config_.domain) {
          for (uint32_t i = 0; i < config_.fakes_per_value; ++i) {
            fakes->emplace_back(v, 0.0);
          }
        }
        return Status::Ok();
      });
}

Result<AggOutput> HistogramProtocol::Execute(
    std::vector<Participant>& participants, AggFunc func) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  if (config_.num_buckets == 0) {
    return Status::InvalidArgument("need >= 1 bucket");
  }
  AggOutput out;
  HbcObserver observer;

  struct WireTuple {
    uint32_t bucket = 0;
    Bytes payload_ct;
  };
  std::vector<WireTuple> wire;

  for (Participant& p : participants) {
    for (const SourceTuple& t : p.tuples) {
      WireTuple wt;
      wt.bucket = static_cast<uint32_t>(
          Fnv1a64(std::string_view(t.group)) % config_.num_buckets);
      Bytes payload = EncodePayload(false, t.value, 1, t.group);
      PDS_ASSIGN_OR_RETURN(wt.payload_ct,
                           p.token->EncryptNonDet(ByteView(payload)));
      ++out.metrics.token_crypto_ops;
      out.metrics.AddMessage(4 + wt.payload_ct.size());
      uint8_t bucket_key[4];
      EncodeU32(bucket_key, wt.bucket);
      observer.ObserveTuple(ByteView(bucket_key, 4));
      wire.push_back(std::move(wt));
    }
  }
  ++out.metrics.rounds;

  // SSI: partition by plaintext bucket id.
  std::map<uint32_t, std::vector<const WireTuple*>> buckets;
  for (const WireTuple& wt : wire) {
    buckets[wt.bucket].push_back(&wt);
    ++out.metrics.ssi_ops;
  }

  // Tokens open each bucket and aggregate the true groups inside.
  std::map<std::string, GroupState> state;
  size_t worker = 0;
  for (const auto& [bucket, tuples] : buckets) {
    mcu::SecureToken* token =
        participants[worker++ % participants.size()].token;
    for (const WireTuple* wt : tuples) {
      out.metrics.AddMessage(wt->payload_ct.size());
      PDS_ASSIGN_OR_RETURN(Bytes payload,
                           token->DecryptNonDet(ByteView(wt->payload_ct)));
      ++out.metrics.token_crypto_ops;
      PDS_ASSIGN_OR_RETURN(Payload p, DecodePayload(ByteView(payload)));
      state[p.group].sum += p.sum;
      state[p.group].count += p.count;
    }
  }
  ++out.metrics.rounds;

  out.groups = Finalize(state, func);
  out.leakage = observer.Report();
  return out;
}

}  // namespace pds::global
