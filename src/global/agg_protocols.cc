#include "global/agg_protocols.h"

#include <cstring>
#include <functional>
#include <set>

#include "common/hash.h"
#include "obs/obs.h"

namespace pds::global {

namespace {

// The per-tuple payload layout ([u8 fake][f64 sum][u64 count][group]) is
// shared with the wire runtime: EncodeAggPayload/DecodeAggPayload in
// global/common.h.

/// Sum/count accumulation per group.
struct GroupState {
  double sum = 0;
  uint64_t count = 0;
};

std::map<std::string, double> Finalize(
    const std::map<std::string, GroupState>& states, AggFunc func) {
  std::map<std::string, double> out;
  for (const auto& [group, s] : states) {
    if (s.count == 0) {
      continue;  // only fake contributions
    }
    switch (func) {
      case AggFunc::kSum:
        out[group] = s.sum;
        break;
      case AggFunc::kCount:
        out[group] = static_cast<double>(s.count);
        break;
      case AggFunc::kAvg:
        out[group] = s.sum / static_cast<double>(s.count);
        break;
    }
  }
  return out;
}

/// Message/crypto-op counters accumulated inside one parallel work unit and
/// merged into the run's Metrics in index order afterwards. All Metrics
/// fields are sums, so per-unit accounting plus ordered merging reproduces
/// the serial counters exactly.
struct UnitCost {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t token_ops = 0;
  uint64_t bytes_token_to_ssi = 0;
  uint64_t bytes_ssi_to_token = 0;

  void AddMessage(uint64_t message_bytes) {
    ++messages;
    bytes += message_bytes;
  }
  void AddTokenToSsi(uint64_t message_bytes) {
    AddMessage(message_bytes);
    bytes_token_to_ssi += message_bytes;
  }
  void AddSsiToToken(uint64_t message_bytes) {
    AddMessage(message_bytes);
    bytes_ssi_to_token += message_bytes;
  }
  void MergeInto(Metrics* m) const {
    m->messages += messages;
    m->bytes += bytes;
    m->token_crypto_ops += token_ops;
    m->bytes_token_to_ssi += bytes_token_to_ssi;
    m->bytes_ssi_to_token += bytes_ssi_to_token;
  }
};

/// Distributes `num_units` round-robin over `num_tokens` starting at
/// `first`: unit u goes to token (first + u) % num_tokens. One fleet-executor
/// task per token then runs its units in increasing order, so each token's
/// RNG and op counters advance exactly as in the serial round-robin loop.
std::vector<std::vector<size_t>> RoundRobin(size_t num_units,
                                            size_t num_tokens, size_t first) {
  std::vector<std::vector<size_t>> by_token(num_tokens);
  for (size_t u = 0; u < num_units; ++u) {
    by_token[(first + u) % num_tokens].push_back(u);
  }
  return by_token;
}

}  // namespace

Result<AggOutput> SecureAggProtocol::Execute(
    std::vector<Participant>& participants, AggFunc func) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  AggOutput out;
  HbcObserver observer;
  const size_t np = participants.size();
  obs::Span protocol_span("secure-agg", "protocol");
  protocol_span.AddArg("participants", static_cast<double>(np));

  // Phase 1: every token non-deterministically encrypts its tuples.
  // Tokens are independent, so participants fan out across the executor;
  // gathering by participant index keeps `items` byte-identical to the
  // serial loop.
  std::vector<std::vector<Bytes>> enc(np);
  std::vector<UnitCost> enc_cost(np);
  {
    obs::Span phase_span("collect-encrypt", "protocol");
    PDS_RETURN_IF_ERROR(FleetExecutor::Run(
        config_.executor, np, [&](size_t i) -> Status {
          Participant& p = participants[i];
          enc[i].reserve(p.tuples.size());
          for (const SourceTuple& t : p.tuples) {
            Bytes payload = EncodeAggPayload(false, t.value, 1, t.group);
            PDS_ASSIGN_OR_RETURN(Bytes ct,
                                 p.token->EncryptNonDet(ByteView(payload)));
            ++enc_cost[i].token_ops;
            enc_cost[i].AddTokenToSsi(ct.size());
            enc[i].push_back(std::move(ct));
          }
          return Status::Ok();
        }));
  }
  std::vector<Bytes> items;
  for (size_t i = 0; i < np; ++i) {
    enc_cost[i].MergeInto(&out.metrics);
    for (Bytes& ct : enc[i]) {
      observer.ObserveTuple(ByteView(ct));
      items.push_back(std::move(ct));
    }
  }
  ++out.metrics.rounds;

  // Phase 2: iterative partition-and-aggregate until one partition is left.
  // Partitions keep their serial round-robin token assignment; partitions
  // sharing a token run serially inside that token's work unit (token RNG
  // order), and outputs are gathered in partition order.
  size_t worker = 0;
  while (items.size() > config_.partition_capacity) {
    obs::Span phase_span("aggregate-round", "protocol");
    phase_span.AddArg("items", static_cast<double>(items.size()));
    size_t before = items.size();
    const size_t cap = config_.partition_capacity;
    const size_t num_parts = (items.size() + cap - 1) / cap;
    std::vector<std::vector<size_t>> parts_by_token =
        RoundRobin(num_parts, np, worker);
    worker += num_parts;

    struct PartOut {
      std::vector<Bytes> cts;
      UnitCost cost;
    };
    std::vector<PartOut> parts(num_parts);
    PDS_RETURN_IF_ERROR(FleetExecutor::Run(
        config_.executor, np, [&](size_t t) -> Status {
          mcu::SecureToken* token = participants[t].token;
          for (size_t pi : parts_by_token[t]) {
            PartOut& po = parts[pi];
            size_t start = pi * cap;
            size_t end = std::min(items.size(), start + cap);
            // Decrypted per-tuple plaintext folds into this map: it only
            // ever leaves the token re-encrypted (EncryptNonDet below).
            std::map<std::string, GroupState> partial;  // pdslint: secret
            for (size_t i = start; i < end; ++i) {
              po.cost.AddSsiToToken(items[i].size());
              PDS_ASSIGN_OR_RETURN(Bytes payload,
                                   token->DecryptNonDet(ByteView(items[i])));
              ++po.cost.token_ops;
              PDS_ASSIGN_OR_RETURN(AggPayload p, DecodeAggPayload(ByteView(payload)));
              partial[p.group].sum += p.sum;
              partial[p.group].count += p.count;
            }
            for (const auto& [group, state] : partial) {
              Bytes payload =
                  EncodeAggPayload(false, state.sum, state.count, group);
              PDS_ASSIGN_OR_RETURN(Bytes ct,
                                   token->EncryptNonDet(ByteView(payload)));
              ++po.cost.token_ops;
              po.cost.AddTokenToSsi(ct.size());
              po.cts.push_back(std::move(ct));
            }
          }
          return Status::Ok();
        }));

    std::vector<Bytes> next;
    for (size_t pi = 0; pi < num_parts; ++pi) {
      parts[pi].cost.MergeInto(&out.metrics);
      for (Bytes& ct : parts[pi].cts) {
        observer.ObserveTuple(ByteView(ct));
        next.push_back(std::move(ct));
      }
      ++out.metrics.ssi_ops;  // partition bookkeeping
    }
    ++out.metrics.rounds;
    if (next.size() >= before) {
      return Status::InvalidArgument(
          "partition capacity too small for the number of distinct groups");
    }
    items = std::move(next);
  }

  // Phase 3: final aggregation inside one token.
  obs::Span final_span("final-decrypt", "protocol");
  final_span.AddArg("items", static_cast<double>(items.size()));
  mcu::SecureToken* token = participants[0].token;
  std::map<std::string, GroupState> final_state;
  for (const Bytes& ct : items) {
    out.metrics.AddSsiToToken(ct.size());
    PDS_ASSIGN_OR_RETURN(Bytes payload, token->DecryptNonDet(ByteView(ct)));
    ++out.metrics.token_crypto_ops;
    PDS_ASSIGN_OR_RETURN(AggPayload p, DecodeAggPayload(ByteView(payload)));
    final_state[p.group].sum += p.sum;
    final_state[p.group].count += p.count;
  }
  ++out.metrics.rounds;

  out.groups = Finalize(final_state, func);
  out.leakage = observer.Report();
  RecordProtocolRun("secure-agg", out.metrics, out.leakage);
  return out;
}

namespace {

/// Shared one-round evaluation used by the two noise-based protocols:
/// tuples are (det-encrypted group, nondet-encrypted payload); the SSI
/// groups by the deterministic ciphertext, and each class is aggregated
/// inside one token.
///
/// Fake-tuple generation runs in a serial pre-pass (the noise RNG is shared
/// across participants); the token-side encrypt and decrypt work fans out
/// over the executor with the same token assignment as the serial loops.
Result<AggOutput> RunDetProtocol(
    const char* protocol_name, std::vector<Participant>& participants,
    AggFunc func, FleetExecutor* exec,
    const std::function<Status(Participant&, size_t,
                               std::vector<std::pair<std::string, double>>*)>&
        make_fakes) {
  AggOutput out;
  HbcObserver observer;
  const size_t np = participants.size();
  obs::Span protocol_span(protocol_name, "protocol");
  protocol_span.AddArg("participants", static_cast<double>(np));

  struct WireTuple {
    Bytes group_ct;
    Bytes payload_ct;
  };

  // Serial pre-pass: real tuples + protocol-specific fakes per participant.
  struct SendList {
    std::vector<std::pair<std::string, double>> tuples;
    size_t real_count = 0;
  };
  std::vector<SendList> sends(np);
  for (size_t pi = 0; pi < np; ++pi) {
    Participant& p = participants[pi];
    SendList& sl = sends[pi];
    for (const SourceTuple& t : p.tuples) {
      sl.tuples.emplace_back(t.group, t.value);
    }
    sl.real_count = sl.tuples.size();
    std::vector<std::pair<std::string, double>> fakes;
    PDS_RETURN_IF_ERROR(make_fakes(p, sl.real_count, &fakes));
    for (auto& f : fakes) {
      sl.tuples.push_back(std::move(f));
    }
  }

  // Parallel per-participant encryption (each token's RNG is its own).
  struct WireOut {
    std::vector<WireTuple> wire;
    UnitCost cost;
  };
  std::vector<WireOut> wouts(np);
  {
    obs::Span phase_span("collect-encrypt", "protocol");
    PDS_RETURN_IF_ERROR(
        FleetExecutor::Run(exec, np, [&](size_t pi) -> Status {
          Participant& p = participants[pi];
          const SendList& sl = sends[pi];
          WireOut& wo = wouts[pi];
          wo.wire.reserve(sl.tuples.size());
          for (size_t i = 0; i < sl.tuples.size(); ++i) {
            bool fake = i >= sl.real_count;
            const auto& [group, value] = sl.tuples[i];
            WireTuple wt;
            PDS_ASSIGN_OR_RETURN(
                wt.group_ct,
                p.token->EncryptDet(ByteView(std::string_view(group))));
            Bytes payload = EncodeAggPayload(fake, value, fake ? 0 : 1, "");
            PDS_ASSIGN_OR_RETURN(wt.payload_ct,
                                 p.token->EncryptNonDet(ByteView(payload)));
            wo.cost.token_ops += 2;
            wo.cost.AddTokenToSsi(wt.group_ct.size() + wt.payload_ct.size());
            wo.wire.push_back(std::move(wt));
          }
          return Status::Ok();
        }));
  }
  std::vector<WireTuple> wire;
  for (size_t pi = 0; pi < np; ++pi) {
    wouts[pi].cost.MergeInto(&out.metrics);
    for (WireTuple& wt : wouts[pi].wire) {
      observer.ObserveTuple(ByteView(wt.group_ct));
      wire.push_back(std::move(wt));
    }
  }
  ++out.metrics.rounds;

  // SSI: group by deterministic ciphertext.
  obs::Span mix_span("ssi-group-by-class", "protocol");
  std::map<std::string, std::vector<const WireTuple*>> classes;
  for (const WireTuple& wt : wire) {
    classes[ByteView(wt.group_ct).ToString()].push_back(&wt);
    ++out.metrics.ssi_ops;
  }
  mix_span.AddArg("classes", static_cast<double>(classes.size()));

  // Each class is handed to a token for decryption + aggregation; classes
  // sharing a token run inside one work unit. Decryption draws no token
  // randomness, but op counters still demand one thread per token.
  std::vector<const std::vector<const WireTuple*>*> class_tuples;
  class_tuples.reserve(classes.size());
  for (const auto& [class_key, tuples] : classes) {
    class_tuples.push_back(&tuples);
  }
  std::vector<std::vector<size_t>> classes_by_token =
      RoundRobin(class_tuples.size(), np, 0);

  struct ClassOut {
    bool fake = false;
    std::string group;
    GroupState gs;
    UnitCost cost;
  };
  std::vector<ClassOut> couts(class_tuples.size());
  obs::Span agg_span("class-aggregate", "protocol");
  PDS_RETURN_IF_ERROR(
      FleetExecutor::Run(exec, np, [&](size_t t) -> Status {
        mcu::SecureToken* token = participants[t].token;
        for (size_t ci : classes_by_token[t]) {
          const std::vector<const WireTuple*>& tuples = *class_tuples[ci];
          ClassOut& co = couts[ci];
          PDS_ASSIGN_OR_RETURN(
              Bytes group_plain,
              token->DecryptDet(ByteView(tuples.front()->group_ct)));
          ++co.cost.token_ops;
          co.group = ByteView(group_plain).ToString();
          if (co.group.rfind(kFakeGroupPrefix, 0) == 0) {
            // Whole class is white noise; discard inside the token.
            co.fake = true;
            co.cost.token_ops += tuples.size();  // decrypt-and-drop
            continue;
          }
          for (const WireTuple* wt : tuples) {
            co.cost.AddSsiToToken(wt->payload_ct.size());
            PDS_ASSIGN_OR_RETURN(
                Bytes payload, token->DecryptNonDet(ByteView(wt->payload_ct)));
            ++co.cost.token_ops;
            PDS_ASSIGN_OR_RETURN(AggPayload p, DecodeAggPayload(ByteView(payload)));
            if (!p.fake) {
              co.gs.sum += p.sum;
              co.gs.count += p.count;
            }
          }
        }
        return Status::Ok();
      }));
  std::map<std::string, GroupState> state;
  for (ClassOut& co : couts) {
    co.cost.MergeInto(&out.metrics);
    if (co.fake) {
      continue;
    }
    GroupState& gs = state[co.group];
    gs.sum += co.gs.sum;
    gs.count += co.gs.count;
  }
  ++out.metrics.rounds;

  out.groups = Finalize(state, func);
  out.leakage = observer.Report();
  RecordProtocolRun(protocol_name, out.metrics, out.leakage);
  return out;
}

}  // namespace

Result<AggOutput> WhiteNoiseProtocol::Execute(
    std::vector<Participant>& participants, AggFunc func) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  Rng noise_rng(config_.noise_seed);
  return RunDetProtocol(
      "white-noise", participants, func, config_.executor,
      [&](Participant& p, size_t real_count,
          std::vector<std::pair<std::string, double>>* fakes) {
        (void)p;
        size_t n = static_cast<size_t>(
            static_cast<double>(real_count) * config_.noise_ratio);
        for (size_t i = 0; i < n; ++i) {
          fakes->emplace_back(
              std::string(kFakeGroupPrefix) +
                  std::to_string(noise_rng.Next()),
              0.0);
        }
        return Status::Ok();
      });
}

Result<AggOutput> DomainNoiseProtocol::Execute(
    std::vector<Participant>& participants, AggFunc func) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  if (config_.domain.empty()) {
    return Status::InvalidArgument("domain noise requires the value domain");
  }
  // Real groups must belong to the announced domain.
  std::set<std::string> domain(config_.domain.begin(), config_.domain.end());
  for (const Participant& p : participants) {
    for (const SourceTuple& t : p.tuples) {
      if (domain.count(t.group) == 0) {
        return Status::InvalidArgument("group '" + t.group +
                                       "' outside the announced domain");
      }
    }
  }
  return RunDetProtocol(
      "domain-noise", participants, func, config_.executor,
      [&](Participant& p, size_t real_count,
          std::vector<std::pair<std::string, double>>* fakes) {
        (void)p;
        (void)real_count;
        // Cover the complementary domain: every domain value receives
        // fake tuples from every participant, flattening the histogram.
        for (const std::string& v : config_.domain) {
          for (uint32_t i = 0; i < config_.fakes_per_value; ++i) {
            fakes->emplace_back(v, 0.0);
          }
        }
        return Status::Ok();
      });
}

Result<AggOutput> PackedPaillierProtocol::Execute(
    std::vector<Participant>& participants, AggFunc func) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  if (config_.domain.empty()) {
    return Status::InvalidArgument("packed protocol requires the value domain");
  }
  const size_t np = participants.size();
  const size_t k = config_.domain.size();
  AggOutput out;
  HbcObserver observer;
  obs::Span protocol_span("packed-paillier", "protocol");
  protocol_span.AddArg("participants", static_cast<double>(np));
  protocol_span.AddArg("domain", static_cast<double>(k));

  std::map<std::string, size_t> slot_of;
  for (size_t i = 0; i < k; ++i) {
    slot_of[config_.domain[i]] = i;
  }

  // The querier owns the keypair; tokens only hold the public packing
  // context. Two slots per domain value: 2i = sum, 2i + 1 = count.
  Rng key_rng(config_.key_seed);
  PDS_ASSIGN_OR_RETURN(
      crypto::Paillier paillier,
      crypto::Paillier::Generate(config_.paillier_bits, &key_rng));
  PDS_ASSIGN_OR_RETURN(crypto::PackedAggregate agg,
                       crypto::PackedAggregate::Create(
                           paillier, np, config_.max_slot_value, 2 * k));
  PDS_RETURN_IF_ERROR(agg.CheckAddBudget(np));

  // Serial pre-pass: fold each participant's tuples into per-slot counters
  // (integer-valued tuples only — the packed path carries counters).
  std::vector<std::vector<uint64_t>> counters(np,
                                              std::vector<uint64_t>(2 * k, 0));
  for (size_t pi = 0; pi < np; ++pi) {
    for (const SourceTuple& t : participants[pi].tuples) {
      auto it = slot_of.find(t.group);
      if (it == slot_of.end()) {
        return Status::InvalidArgument("group '" + t.group +
                                       "' outside the announced domain");
      }
      if (t.value < 0 ||
          t.value != static_cast<double>(static_cast<uint64_t>(t.value))) {
        return Status::InvalidArgument(
            "packed protocol requires non-negative integer values");
      }
      counters[pi][2 * it->second] += static_cast<uint64_t>(t.value);
      counters[pi][2 * it->second + 1] += 1;
    }
    for (uint64_t c : counters[pi]) {
      if (c > config_.max_slot_value) {
        return Status::InvalidArgument(
            "participant contribution exceeds max_slot_value");
      }
    }
  }

  // Round 1 (the only round): every token packs and encrypts ONE
  // ciphertext. Tokens are independent, so participants fan out across the
  // executor; gathering by index keeps ciphertext order deterministic.
  std::vector<crypto::BigInt> cts(np);
  std::vector<UnitCost> costs(np);
  {
    obs::Span phase_span("packed-encrypt", "protocol");
    PDS_RETURN_IF_ERROR(
        FleetExecutor::Run(config_.executor, np, [&](size_t pi) -> Status {
          PDS_ASSIGN_OR_RETURN(
              cts[pi], participants[pi].token->EncryptPacked(agg, counters[pi]));
          ++costs[pi].token_ops;
          costs[pi].AddTokenToSsi(cts[pi].ToBytes().size());
          return Status::Ok();
        }));
  }
  for (size_t pi = 0; pi < np; ++pi) {
    costs[pi].MergeInto(&out.metrics);
    observer.ObserveTuple(ByteView(cts[pi].ToBytes()));
  }

  // SSI: blind homomorphic fold (cheap modular multiplications).
  obs::Span fold_span("ssi-fold", "protocol");
  crypto::BigInt acc = cts[0];
  for (size_t pi = 1; pi < np; ++pi) {
    acc = agg.Add(acc, cts[pi]);
    ++out.metrics.ssi_ops;
  }

  // Querier: one decrypt-unpack for the whole fleet.
  out.metrics.AddSsiToToken(acc.ToBytes().size());
  PDS_ASSIGN_OR_RETURN(std::vector<uint64_t> totals, agg.DecryptUnpack(acc));
  ++out.metrics.token_crypto_ops;
  ++out.metrics.rounds;

  std::map<std::string, GroupState> state;
  for (size_t i = 0; i < k; ++i) {
    GroupState& gs = state[config_.domain[i]];
    gs.sum = static_cast<double>(totals[2 * i]);
    gs.count = totals[2 * i + 1];
  }
  out.groups = Finalize(state, func);
  out.leakage = observer.Report();
  RecordProtocolRun("packed-paillier", out.metrics, out.leakage);
  return out;
}

Result<AggOutput> HistogramProtocol::Execute(
    std::vector<Participant>& participants, AggFunc func) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  if (config_.num_buckets == 0) {
    return Status::InvalidArgument("need >= 1 bucket");
  }
  AggOutput out;
  HbcObserver observer;
  const size_t np = participants.size();
  obs::Span protocol_span("histogram", "protocol");
  protocol_span.AddArg("participants", static_cast<double>(np));

  struct WireTuple {
    uint32_t bucket = 0;
    Bytes payload_ct;
  };

  // Parallel per-participant encryption, gathered by participant index.
  struct WireOut {
    std::vector<WireTuple> wire;
    UnitCost cost;
  };
  std::vector<WireOut> wouts(np);
  PDS_RETURN_IF_ERROR(
      FleetExecutor::Run(config_.executor, np, [&](size_t pi) -> Status {
        Participant& p = participants[pi];
        WireOut& wo = wouts[pi];
        wo.wire.reserve(p.tuples.size());
        for (const SourceTuple& t : p.tuples) {
          WireTuple wt;
          wt.bucket = static_cast<uint32_t>(
              Fnv1a64(std::string_view(t.group)) % config_.num_buckets);
          Bytes payload = EncodeAggPayload(false, t.value, 1, t.group);
          PDS_ASSIGN_OR_RETURN(wt.payload_ct,
                               p.token->EncryptNonDet(ByteView(payload)));
          ++wo.cost.token_ops;
          wo.cost.AddTokenToSsi(4 + wt.payload_ct.size());
          wo.wire.push_back(std::move(wt));
        }
        return Status::Ok();
      }));
  std::vector<WireTuple> wire;
  for (size_t pi = 0; pi < np; ++pi) {
    wouts[pi].cost.MergeInto(&out.metrics);
    for (WireTuple& wt : wouts[pi].wire) {
      uint8_t bucket_key[4];
      EncodeU32(bucket_key, wt.bucket);
      observer.ObserveTuple(ByteView(bucket_key, 4));
      wire.push_back(std::move(wt));
    }
  }
  ++out.metrics.rounds;

  // SSI: partition by plaintext bucket id.
  std::map<uint32_t, std::vector<const WireTuple*>> buckets;
  for (const WireTuple& wt : wire) {
    buckets[wt.bucket].push_back(&wt);
    ++out.metrics.ssi_ops;
  }

  // Tokens open each bucket and aggregate the true groups inside; buckets
  // sharing a token run inside one work unit, gathered in bucket order.
  std::vector<const std::vector<const WireTuple*>*> bucket_tuples;
  bucket_tuples.reserve(buckets.size());
  for (const auto& [bucket, tuples] : buckets) {
    bucket_tuples.push_back(&tuples);
  }
  std::vector<std::vector<size_t>> buckets_by_token =
      RoundRobin(bucket_tuples.size(), np, 0);

  struct BucketOut {
    std::map<std::string, GroupState> partial;
    UnitCost cost;
  };
  std::vector<BucketOut> bouts(bucket_tuples.size());
  PDS_RETURN_IF_ERROR(
      FleetExecutor::Run(config_.executor, np, [&](size_t t) -> Status {
        mcu::SecureToken* token = participants[t].token;
        for (size_t bi : buckets_by_token[t]) {
          BucketOut& bo = bouts[bi];
          for (const WireTuple* wt : *bucket_tuples[bi]) {
            bo.cost.AddSsiToToken(wt->payload_ct.size());
            PDS_ASSIGN_OR_RETURN(
                Bytes payload, token->DecryptNonDet(ByteView(wt->payload_ct)));
            ++bo.cost.token_ops;
            PDS_ASSIGN_OR_RETURN(AggPayload p, DecodeAggPayload(ByteView(payload)));
            bo.partial[p.group].sum += p.sum;
            bo.partial[p.group].count += p.count;
          }
        }
        return Status::Ok();
      }));
  std::map<std::string, GroupState> state;
  for (BucketOut& bo : bouts) {
    bo.cost.MergeInto(&out.metrics);
    for (auto& [group, gs] : bo.partial) {
      state[group].sum += gs.sum;
      state[group].count += gs.count;
    }
  }
  ++out.metrics.rounds;

  out.groups = Finalize(state, func);
  out.leakage = observer.Report();
  RecordProtocolRun("histogram", out.metrics, out.leakage);
  return out;
}

}  // namespace pds::global
