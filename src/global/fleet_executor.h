#ifndef PDS_GLOBAL_FLEET_EXECUTOR_H_
#define PDS_GLOBAL_FLEET_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"

namespace pds::global {

/// Runs the per-token work of the global protocols across worker threads.
///
/// Determinism contract: callers split protocol work into index-addressed
/// units whose only shared state is the unit's own slot (a token is never
/// handed to two units, each token's units run in serial order inside one
/// unit, and every unit writes results into its own index). The executor
/// then guarantees that gathering slots 0..n-1 after ParallelFor returns
/// yields bytes identical to a serial run — protocol outputs, LeakageReport
/// and Metrics do not depend on the thread count.
///
/// A null executor (or num_threads <= 1) means serial inline execution;
/// protocols treat that as the default.
class FleetExecutor {
 public:
  explicit FleetExecutor(size_t num_threads)
      : pool_(std::make_unique<ThreadPool>(num_threads)) {}

  size_t num_threads() const { return pool_->num_threads(); }

  /// Runs fn(i) for i in [0, n); returns the lowest-index non-OK status
  /// (all units run even if one fails — failures are rare and cheap here).
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

  /// Convenience for `exec` possibly being null: serial fallback.
  static Status Run(FleetExecutor* exec, size_t n,
                    const std::function<Status(size_t)>& fn);

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace pds::global

#endif  // PDS_GLOBAL_FLEET_EXECUTOR_H_
