#ifndef PDS_GLOBAL_INTEGRITY_H_
#define PDS_GLOBAL_INTEGRITY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/sha256.h"
#include "global/common.h"

namespace pds::global {

/// Security primitives against a *weakly malicious* SSI (tutorial threat
/// model B: "WM + Broken -> must be prevented via security primitives, see
/// [ANP13]"). A weakly malicious (covert) adversary deviates only if the
/// deviation cannot be detected — so making every deviation detectable is
/// the defence.
///
/// Each contribution is sealed inside the token: MAC over
/// (participant, sequence number, payload ciphertext). Each participant
/// also emits a MAC'd manifest of how many tuples it contributed. A
/// verifier token can then detect:
///  - alteration  (per-tuple MAC mismatch),
///  - duplication (repeated sequence number),
///  - dropping    (count below the manifest).
struct SealedTuple {
  uint64_t participant = 0;
  uint64_t sequence = 0;
  Bytes payload_ct;
  crypto::Sha256::Digest mac{};
};

struct Manifest {
  uint64_t participant = 0;
  uint64_t tuple_count = 0;
  crypto::Sha256::Digest mac{};
};

/// Bound on a sealed payload ciphertext, checked on decode before any
/// allocation. Matches the wire's per-tuple bound without depending on
/// src/net (global is a lower layer).
inline constexpr size_t kMaxSealedPayloadBytes = 1u << 16;

/// Flat wire encodings so sealed tuples and manifests can travel inside a
/// TupleBatch frame: the MAC'd fields are byte-exact on both ends, so a
/// re-encode after transport verifies against the original MAC.
///   sealed tuple: [u64 participant][u64 sequence][u32 len|payload][32B mac]
///   manifest:     [u64 participant][u64 tuple_count][32B mac]
[[nodiscard]] Bytes EncodeSealedTuple(const SealedTuple& t);
[[nodiscard]] Result<SealedTuple> DecodeSealedTuple(ByteView in);
[[nodiscard]] Bytes EncodeManifest(const Manifest& m);
[[nodiscard]] Result<Manifest> DecodeManifest(ByteView in);

/// Seals one participant's ciphertexts (call inside the producing token).
Result<std::vector<SealedTuple>> SealTuples(
    mcu::SecureToken* token, uint64_t participant,
    const std::vector<Bytes>& payload_cts);

Result<Manifest> MakeManifest(mcu::SecureToken* token, uint64_t participant,
                              uint64_t tuple_count);

/// Verification verdict with the first problem found.
struct IntegrityVerdict {
  bool ok = true;
  std::string problem;  // empty when ok
};

/// Verifies a batch coming back from the SSI against the manifests (call
/// inside the verifying token — it holds the fleet MAC key).
Result<IntegrityVerdict> VerifyBatch(mcu::SecureToken* token,
                                     const std::vector<SealedTuple>& tuples,
                                     const std::vector<Manifest>& manifests);

/// Result of a querier-side audit of a sealed collection round: the
/// integrity verdict plus — only when the batch verified — the plaintext
/// aggregate over the sealed payloads, computed inside the querier token.
struct SealedAudit {
  IntegrityVerdict verdict;
  std::map<std::string, double> groups;  // empty unless verdict.ok
  uint64_t token_ops = 0;                // MACs verified + payloads decrypted
};

/// Verifies and (if clean) aggregates a sealed batch inside the querier
/// token. This is the detection point for every weakly-malicious SSI action
/// on a sealed round: substitution/alteration, replay/duplication, omission
/// and manifest forgery all surface in `verdict.problem`; a forged
/// *aggregate* is caught by comparing the SSI's claimed result against
/// `groups`.
Result<SealedAudit> AuditSealedBatch(mcu::SecureToken* querier,
                                     const std::vector<SealedTuple>& tuples,
                                     const std::vector<Manifest>& manifests,
                                     AggFunc func);

/// The weakly malicious SSI: tampers with a batch according to the
/// configured action rates. Returns how many tuples were affected.
class TamperingSsi {
 public:
  struct Config {
    double drop_rate = 0.0;
    double duplicate_rate = 0.0;
    double alter_rate = 0.0;
    uint64_t seed = 99;
  };

  explicit TamperingSsi(const Config& config)
      : config_(config), rng_(config.seed) {}

  struct Actions {
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t altered = 0;

    uint64_t total() const { return dropped + duplicated + altered; }
  };

  Actions Tamper(std::vector<SealedTuple>* batch);

 private:
  Config config_;
  Rng rng_;
};

}  // namespace pds::global

#endif  // PDS_GLOBAL_INTEGRITY_H_
