#ifndef PDS_GLOBAL_INTEGRITY_H_
#define PDS_GLOBAL_INTEGRITY_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/sha256.h"
#include "global/common.h"

namespace pds::global {

/// Security primitives against a *weakly malicious* SSI (tutorial threat
/// model B: "WM + Broken -> must be prevented via security primitives, see
/// [ANP13]"). A weakly malicious (covert) adversary deviates only if the
/// deviation cannot be detected — so making every deviation detectable is
/// the defence.
///
/// Each contribution is sealed inside the token: MAC over
/// (participant, sequence number, payload ciphertext). Each participant
/// also emits a MAC'd manifest of how many tuples it contributed. A
/// verifier token can then detect:
///  - alteration  (per-tuple MAC mismatch),
///  - duplication (repeated sequence number),
///  - dropping    (count below the manifest).
struct SealedTuple {
  uint64_t participant = 0;
  uint64_t sequence = 0;
  Bytes payload_ct;
  crypto::Sha256::Digest mac{};
};

struct Manifest {
  uint64_t participant = 0;
  uint64_t tuple_count = 0;
  crypto::Sha256::Digest mac{};
};

/// Seals one participant's ciphertexts (call inside the producing token).
Result<std::vector<SealedTuple>> SealTuples(
    mcu::SecureToken* token, uint64_t participant,
    const std::vector<Bytes>& payload_cts);

Result<Manifest> MakeManifest(mcu::SecureToken* token, uint64_t participant,
                              uint64_t tuple_count);

/// Verification verdict with the first problem found.
struct IntegrityVerdict {
  bool ok = true;
  std::string problem;  // empty when ok
};

/// Verifies a batch coming back from the SSI against the manifests (call
/// inside the verifying token — it holds the fleet MAC key).
Result<IntegrityVerdict> VerifyBatch(mcu::SecureToken* token,
                                     const std::vector<SealedTuple>& tuples,
                                     const std::vector<Manifest>& manifests);

/// The weakly malicious SSI: tampers with a batch according to the
/// configured action rates. Returns how many tuples were affected.
class TamperingSsi {
 public:
  struct Config {
    double drop_rate = 0.0;
    double duplicate_rate = 0.0;
    double alter_rate = 0.0;
    uint64_t seed = 99;
  };

  explicit TamperingSsi(const Config& config)
      : config_(config), rng_(config.seed) {}

  struct Actions {
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t altered = 0;

    uint64_t total() const { return dropped + duplicated + altered; }
  };

  Actions Tamper(std::vector<SealedTuple>* batch);

 private:
  Config config_;
  Rng rng_;
};

}  // namespace pds::global

#endif  // PDS_GLOBAL_INTEGRITY_H_
