#include "global/fleet_executor.h"

#include "obs/obs.h"

namespace pds::global {

Status FleetExecutor::ParallelFor(size_t n,
                                  const std::function<Status(size_t)>& fn) {
  obs::Span outer_span("fleet.parallel_for", "fleet");
  outer_span.AddArg("units", static_cast<double>(n));
  std::vector<Status> statuses(n, Status::Ok());
  pool_->ParallelFor(n, [&](size_t i) {
    // Worker threads have their own span stacks, so each unit is a root
    // span on its thread — the concurrency test leans on these being
    // recorded loss-free from many threads at once.
    obs::Span unit_span("fleet.unit", "fleet");
    unit_span.AddArg("unit", static_cast<double>(i));
    statuses[i] = fn(i);
  });
  for (Status& s : statuses) {
    if (!s.ok()) {
      return std::move(s);
    }
  }
  return Status::Ok();
}

Status FleetExecutor::Run(FleetExecutor* exec, size_t n,
                          const std::function<Status(size_t)>& fn) {
  if (exec != nullptr) {
    return exec->ParallelFor(n, fn);
  }
  for (size_t i = 0; i < n; ++i) {
    Status s = fn(i);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

}  // namespace pds::global
