#include "global/fleet_executor.h"

namespace pds::global {

Status FleetExecutor::ParallelFor(size_t n,
                                  const std::function<Status(size_t)>& fn) {
  std::vector<Status> statuses(n, Status::Ok());
  pool_->ParallelFor(n, [&](size_t i) { statuses[i] = fn(i); });
  for (Status& s : statuses) {
    if (!s.ok()) {
      return std::move(s);
    }
  }
  return Status::Ok();
}

Status FleetExecutor::Run(FleetExecutor* exec, size_t n,
                          const std::function<Status(size_t)>& fn) {
  if (exec != nullptr) {
    return exec->ParallelFor(n, fn);
  }
  for (size_t i = 0; i < n; ++i) {
    Status s = fn(i);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

}  // namespace pds::global
