#include "global/integrity.h"

#include <map>
#include <set>

namespace pds::global {

namespace {

Bytes TupleMacInput(uint64_t participant, uint64_t sequence,
                    const Bytes& payload_ct) {
  Bytes msg;
  PutU64(&msg, participant);
  PutU64(&msg, sequence);
  PutLengthPrefixed(&msg, ByteView(payload_ct));
  return msg;
}

}  // namespace

Result<std::vector<SealedTuple>> SealTuples(
    mcu::SecureToken* token, uint64_t participant,
    const std::vector<Bytes>& payload_cts) {
  std::vector<SealedTuple> out;
  out.reserve(payload_cts.size());
  for (uint64_t seq = 0; seq < payload_cts.size(); ++seq) {
    SealedTuple t;
    t.participant = participant;
    t.sequence = seq;
    t.payload_ct = payload_cts[seq];
    Bytes msg = TupleMacInput(participant, seq, t.payload_ct);
    PDS_ASSIGN_OR_RETURN(t.mac, token->Mac(ByteView(msg)));
    out.push_back(std::move(t));
  }
  return out;
}

Result<Manifest> MakeManifest(mcu::SecureToken* token, uint64_t participant,
                              uint64_t tuple_count) {
  Manifest m;
  m.participant = participant;
  m.tuple_count = tuple_count;
  Bytes msg;
  msg.push_back(0x4D);  // 'M' domain separator
  PutU64(&msg, participant);
  PutU64(&msg, tuple_count);
  PDS_ASSIGN_OR_RETURN(m.mac, token->Mac(ByteView(msg)));
  return m;
}

Result<IntegrityVerdict> VerifyBatch(
    mcu::SecureToken* token, const std::vector<SealedTuple>& tuples,
    const std::vector<Manifest>& manifests) {
  IntegrityVerdict verdict;

  // 1. Manifest authenticity + expected counts.
  std::map<uint64_t, uint64_t> expected;
  for (const Manifest& m : manifests) {
    Bytes msg;
    msg.push_back(0x4D);
    PutU64(&msg, m.participant);
    PutU64(&msg, m.tuple_count);
    PDS_ASSIGN_OR_RETURN(crypto::Sha256::Digest mac,
                         token->Mac(ByteView(msg)));
    if (!crypto::DigestEqual(mac, m.mac)) {
      verdict.ok = false;
      verdict.problem = "forged manifest for participant " +
                        std::to_string(m.participant);
      return verdict;
    }
    expected[m.participant] = m.tuple_count;
  }

  // 2. Per-tuple MACs (alteration) + duplicate sequence numbers.
  std::map<uint64_t, std::set<uint64_t>> seen;
  for (const SealedTuple& t : tuples) {
    Bytes msg = TupleMacInput(t.participant, t.sequence, t.payload_ct);
    PDS_ASSIGN_OR_RETURN(crypto::Sha256::Digest mac,
                         token->Mac(ByteView(msg)));
    if (!crypto::DigestEqual(mac, t.mac)) {
      verdict.ok = false;
      verdict.problem = "altered tuple (participant " +
                        std::to_string(t.participant) + ", seq " +
                        std::to_string(t.sequence) + ")";
      return verdict;
    }
    if (!seen[t.participant].insert(t.sequence).second) {
      verdict.ok = false;
      verdict.problem = "duplicated tuple (participant " +
                        std::to_string(t.participant) + ", seq " +
                        std::to_string(t.sequence) + ")";
      return verdict;
    }
    if (expected.count(t.participant) == 0) {
      verdict.ok = false;
      verdict.problem = "tuple from unknown participant " +
                        std::to_string(t.participant);
      return verdict;
    }
  }

  // 3. Completeness (dropping).
  for (const auto& [participant, count] : expected) {
    uint64_t got = seen.count(participant) ? seen[participant].size() : 0;
    if (got != count) {
      verdict.ok = false;
      verdict.problem = "participant " + std::to_string(participant) +
                        " contributed " + std::to_string(count) +
                        " tuples but " + std::to_string(got) + " arrived";
      return verdict;
    }
  }
  return verdict;
}

TamperingSsi::Actions TamperingSsi::Tamper(std::vector<SealedTuple>* batch) {
  Actions actions;
  std::vector<SealedTuple> result;
  result.reserve(batch->size());
  for (SealedTuple& t : *batch) {
    if (rng_.Bernoulli(config_.drop_rate)) {
      ++actions.dropped;
      continue;
    }
    if (rng_.Bernoulli(config_.alter_rate)) {
      ++actions.altered;
      SealedTuple altered = t;
      if (!altered.payload_ct.empty()) {
        altered.payload_ct[rng_.Uniform(altered.payload_ct.size())] ^= 0x01;
      }
      result.push_back(std::move(altered));
      continue;
    }
    result.push_back(t);
    if (rng_.Bernoulli(config_.duplicate_rate)) {
      ++actions.duplicated;
      result.push_back(t);
    }
  }
  *batch = std::move(result);
  return actions;
}

}  // namespace pds::global
