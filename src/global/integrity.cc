#include "global/integrity.h"

#include <cstring>
#include <map>
#include <set>

namespace pds::global {

namespace {

Bytes TupleMacInput(uint64_t participant, uint64_t sequence,
                    const Bytes& payload_ct) {
  Bytes msg;
  PutU64(&msg, participant);
  PutU64(&msg, sequence);
  PutLengthPrefixed(&msg, ByteView(payload_ct));
  return msg;
}

}  // namespace

Bytes EncodeSealedTuple(const SealedTuple& t) {
  Bytes out;
  out.reserve(8 + 8 + 4 + t.payload_ct.size() + t.mac.size());
  PutU64(&out, t.participant);
  PutU64(&out, t.sequence);
  PutLengthPrefixed(&out, ByteView(t.payload_ct));
  out.insert(out.end(), t.mac.begin(), t.mac.end());
  return out;
}

Result<SealedTuple> DecodeSealedTuple(ByteView in) {
  constexpr size_t kFixed = 8 + 8 + 4 + crypto::Sha256::kDigestSize;
  if (in.size() < kFixed) {
    return Status::Corruption("sealed tuple truncated");
  }
  SealedTuple t;
  t.participant = GetU64(in.data());
  t.sequence = GetU64(in.data() + 8);
  uint32_t len = GetU32(in.data() + 16);
  if (len > kMaxSealedPayloadBytes) {
    return Status::Corruption("sealed payload length " + std::to_string(len) +
                              " exceeds kMaxSealedPayloadBytes");
  }
  if (in.size() != kFixed + len) {
    return Status::Corruption("sealed tuple length mismatch");
  }
  t.payload_ct.assign(in.data() + 20, in.data() + 20 + len);
  std::memcpy(t.mac.data(), in.data() + 20 + len, t.mac.size());
  return t;
}

Bytes EncodeManifest(const Manifest& m) {
  Bytes out;
  out.reserve(8 + 8 + m.mac.size());
  PutU64(&out, m.participant);
  PutU64(&out, m.tuple_count);
  out.insert(out.end(), m.mac.begin(), m.mac.end());
  return out;
}

Result<Manifest> DecodeManifest(ByteView in) {
  if (in.size() != 8 + 8 + crypto::Sha256::kDigestSize) {
    return Status::Corruption("manifest blob has wrong size");
  }
  Manifest m;
  m.participant = GetU64(in.data());
  m.tuple_count = GetU64(in.data() + 8);
  std::memcpy(m.mac.data(), in.data() + 16, m.mac.size());
  return m;
}

Result<std::vector<SealedTuple>> SealTuples(
    mcu::SecureToken* token, uint64_t participant,
    const std::vector<Bytes>& payload_cts) {
  std::vector<SealedTuple> out;
  out.reserve(payload_cts.size());
  for (uint64_t seq = 0; seq < payload_cts.size(); ++seq) {
    SealedTuple t;
    t.participant = participant;
    t.sequence = seq;
    t.payload_ct = payload_cts[seq];
    Bytes msg = TupleMacInput(participant, seq, t.payload_ct);
    PDS_ASSIGN_OR_RETURN(t.mac, token->Mac(ByteView(msg)));
    out.push_back(std::move(t));
  }
  return out;
}

Result<Manifest> MakeManifest(mcu::SecureToken* token, uint64_t participant,
                              uint64_t tuple_count) {
  Manifest m;
  m.participant = participant;
  m.tuple_count = tuple_count;
  Bytes msg;
  msg.push_back(0x4D);  // 'M' domain separator
  PutU64(&msg, participant);
  PutU64(&msg, tuple_count);
  PDS_ASSIGN_OR_RETURN(m.mac, token->Mac(ByteView(msg)));
  return m;
}

Result<IntegrityVerdict> VerifyBatch(
    mcu::SecureToken* token, const std::vector<SealedTuple>& tuples,
    const std::vector<Manifest>& manifests) {
  IntegrityVerdict verdict;

  // 1. Manifest authenticity + expected counts.
  std::map<uint64_t, uint64_t> expected;
  for (const Manifest& m : manifests) {
    Bytes msg;
    msg.push_back(0x4D);
    PutU64(&msg, m.participant);
    PutU64(&msg, m.tuple_count);
    PDS_ASSIGN_OR_RETURN(crypto::Sha256::Digest mac,
                         token->Mac(ByteView(msg)));
    if (!crypto::DigestEqual(mac, m.mac)) {
      verdict.ok = false;
      verdict.problem = "forged manifest for participant " +
                        std::to_string(m.participant);
      return verdict;
    }
    expected[m.participant] = m.tuple_count;
  }

  // 2. Per-tuple MACs (alteration) + duplicate sequence numbers.
  std::map<uint64_t, std::set<uint64_t>> seen;
  for (const SealedTuple& t : tuples) {
    Bytes msg = TupleMacInput(t.participant, t.sequence, t.payload_ct);
    PDS_ASSIGN_OR_RETURN(crypto::Sha256::Digest mac,
                         token->Mac(ByteView(msg)));
    if (!crypto::DigestEqual(mac, t.mac)) {
      verdict.ok = false;
      verdict.problem = "altered tuple (participant " +
                        std::to_string(t.participant) + ", seq " +
                        std::to_string(t.sequence) + ")";
      return verdict;
    }
    if (!seen[t.participant].insert(t.sequence).second) {
      verdict.ok = false;
      verdict.problem = "duplicated tuple (participant " +
                        std::to_string(t.participant) + ", seq " +
                        std::to_string(t.sequence) + ")";
      return verdict;
    }
    if (expected.count(t.participant) == 0) {
      verdict.ok = false;
      verdict.problem = "tuple from unknown participant " +
                        std::to_string(t.participant);
      return verdict;
    }
  }

  // 3. Completeness (dropping).
  for (const auto& [participant, count] : expected) {
    uint64_t got = seen.count(participant) ? seen[participant].size() : 0;
    if (got != count) {
      verdict.ok = false;
      verdict.problem = "participant " + std::to_string(participant) +
                        " contributed " + std::to_string(count) +
                        " tuples but " + std::to_string(got) + " arrived";
      return verdict;
    }
  }
  return verdict;
}

Result<SealedAudit> AuditSealedBatch(mcu::SecureToken* querier,
                                     const std::vector<SealedTuple>& tuples,
                                     const std::vector<Manifest>& manifests,
                                     AggFunc func) {
  SealedAudit out;
  PDS_ASSIGN_OR_RETURN(out.verdict, VerifyBatch(querier, tuples, manifests));
  out.token_ops = manifests.size() + tuples.size();  // MACs spent verifying
  if (!out.verdict.ok) {
    return out;
  }
  struct Acc {
    double sum = 0;
    uint64_t count = 0;
  };
  std::map<std::string, Acc> state;
  for (const SealedTuple& t : tuples) {
    PDS_ASSIGN_OR_RETURN(Bytes plain,
                         querier->DecryptNonDet(ByteView(t.payload_ct)));
    ++out.token_ops;
    PDS_ASSIGN_OR_RETURN(AggPayload p, DecodeAggPayload(ByteView(plain)));
    if (p.fake) {
      continue;
    }
    Acc& a = state[p.group];
    a.sum += p.sum;
    a.count += p.count;
  }
  for (const auto& [group, acc] : state) {
    switch (func) {
      case AggFunc::kSum:
        out.groups[group] = acc.sum;
        break;
      case AggFunc::kCount:
        out.groups[group] = static_cast<double>(acc.count);
        break;
      case AggFunc::kAvg:
        out.groups[group] = acc.sum / static_cast<double>(acc.count);
        break;
    }
  }
  return out;
}

TamperingSsi::Actions TamperingSsi::Tamper(std::vector<SealedTuple>* batch) {
  Actions actions;
  std::vector<SealedTuple> result;
  result.reserve(batch->size());
  for (SealedTuple& t : *batch) {
    if (rng_.Bernoulli(config_.drop_rate)) {
      ++actions.dropped;
      continue;
    }
    if (rng_.Bernoulli(config_.alter_rate)) {
      ++actions.altered;
      SealedTuple altered = t;
      if (!altered.payload_ct.empty()) {
        altered.payload_ct[rng_.Uniform(altered.payload_ct.size())] ^= 0x01;
      }
      result.push_back(std::move(altered));
      continue;
    }
    result.push_back(t);
    if (rng_.Bernoulli(config_.duplicate_rate)) {
      ++actions.duplicated;
      result.push_back(t);
    }
  }
  *batch = std::move(result);
  return actions;
}

}  // namespace pds::global
