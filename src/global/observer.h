#ifndef PDS_GLOBAL_OBSERVER_H_
#define PDS_GLOBAL_OBSERVER_H_

#include <map>

#include "common/bytes.h"
#include "global/common.h"

namespace pds::global {

/// The honest-but-curious SSI's notebook: it executes the protocol
/// faithfully but records everything it sees. Protocols feed it every
/// equality-class key the SSI could observe (a deterministic ciphertext, a
/// bucket id, a plaintext — or the whole distinct ciphertext for
/// non-deterministic encryption, under which every tuple is its own class).
class HbcObserver {
 public:
  /// `class_key` is whatever the SSI can use to test equality between two
  /// tuples; `plaintext_group` marks keys the SSI can read as cleartext.
  void ObserveTuple(ByteView class_key, bool plaintext_group = false);

  LeakageReport Report() const;

  void Reset() {
    classes_.clear();
    tuples_ = 0;
    plaintext_seen_ = false;
  }

 private:
  std::map<std::string, uint64_t> classes_;
  uint64_t tuples_ = 0;
  bool plaintext_seen_ = false;
};

}  // namespace pds::global

#endif  // PDS_GLOBAL_OBSERVER_H_
