#ifndef PDS_GLOBAL_AGG_PROTOCOLS_H_
#define PDS_GLOBAL_AGG_PROTOCOLS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "global/common.h"
#include "global/fleet_executor.h"
#include "global/observer.h"

namespace pds::global {

/// Result of a secure GROUP-BY aggregate over the fleet.
struct AggOutput {
  std::map<std::string, double> groups;
  Metrics metrics;
  LeakageReport leakage;
};

/// A secure "SELECT group, AGG(value) GROUP BY group" protocol over the
/// asymmetric architecture (trusted tokens + untrusted SSI) — the [TNP14]
/// family presented in Part III of the tutorial. Implementations differ in
/// which encryption they use and what the SSI learns:
///
///  - SecureAggProtocol:   non-deterministic encryption; the SSI learns only
///    the tuple count but the tokens pay multiple aggregation rounds.
///  - WhiteNoiseProtocol:  deterministic encryption + random fake tuples;
///    one round, but the SSI sees a (noisy) group-size histogram.
///  - DomainNoiseProtocol: fake tuples drawn from the complementary domain,
///    flattening the histogram the SSI sees at higher bandwidth cost.
///  - HistogramProtocol:   plaintext equi-depth bucket ids (Hacigumus
///    style); the SSI sees only bucket sizes.
class AggregationProtocol {
 public:
  virtual ~AggregationProtocol() = default;

  virtual std::string_view name() const = 0;

  /// Runs the protocol over the participants. All tokens must share the
  /// fleet key. The observer inside records the SSI's view.
  virtual Result<AggOutput> Execute(std::vector<Participant>& participants,
                                    AggFunc func) = 0;
};

/// Non-deterministic encryption; SSI partitions blindly, tokens aggregate
/// over log rounds.
class SecureAggProtocol : public AggregationProtocol {
 public:
  struct Config {
    /// Max ciphertext tuples a token can ingest per aggregation step
    /// (bounded by token RAM). Must exceed the number of distinct groups.
    size_t partition_capacity = 256;
    /// Optional fleet executor: per-token work (encrypt/decrypt/aggregate)
    /// runs across worker threads with results gathered by index, so the
    /// output is byte-identical to a serial run. Null means serial.
    FleetExecutor* executor = nullptr;
  };

  explicit SecureAggProtocol(const Config& config) : config_(config) {}

  std::string_view name() const override { return "secure-agg"; }
  Result<AggOutput> Execute(std::vector<Participant>& participants,
                            AggFunc func) override;

 private:
  Config config_;
};

/// Deterministic encryption of group values + random fake tuples.
class WhiteNoiseProtocol : public AggregationProtocol {
 public:
  struct Config {
    /// Fake tuples added per real tuple (0.2 = 20% noise).
    double noise_ratio = 0.2;
    uint64_t noise_seed = 7;
    /// See SecureAggProtocol::Config::executor.
    FleetExecutor* executor = nullptr;
  };

  explicit WhiteNoiseProtocol(const Config& config) : config_(config) {}

  std::string_view name() const override { return "white-noise"; }
  Result<AggOutput> Execute(std::vector<Participant>& participants,
                            AggFunc func) override;

 private:
  Config config_;
};

/// Deterministic encryption + fake tuples covering the complementary
/// domain, so the SSI's histogram flattens toward uniform over the domain.
class DomainNoiseProtocol : public AggregationProtocol {
 public:
  struct Config {
    /// The full (public) domain of group values.
    std::vector<std::string> domain;
    /// Fake tuples each participant adds per domain value.
    uint32_t fakes_per_value = 1;
    uint64_t noise_seed = 7;
    /// See SecureAggProtocol::Config::executor.
    FleetExecutor* executor = nullptr;
  };

  explicit DomainNoiseProtocol(Config config) : config_(std::move(config)) {}

  std::string_view name() const override { return "domain-noise"; }
  Result<AggOutput> Execute(std::vector<Participant>& participants,
                            AggFunc func) override;

 private:
  Config config_;
};

/// Hacigumus-style bucketization: tokens tag tuples with a plaintext
/// bucket id; measures stay non-deterministically encrypted.
class HistogramProtocol : public AggregationProtocol {
 public:
  struct Config {
    uint32_t num_buckets = 16;
    /// See SecureAggProtocol::Config::executor.
    FleetExecutor* executor = nullptr;
  };

  explicit HistogramProtocol(const Config& config) : config_(config) {}

  std::string_view name() const override { return "histogram"; }
  Result<AggOutput> Execute(std::vector<Participant>& participants,
                            AggFunc func) override;

 private:
  Config config_;
};

}  // namespace pds::global

#endif  // PDS_GLOBAL_AGG_PROTOCOLS_H_
