#ifndef PDS_GLOBAL_AGG_PROTOCOLS_H_
#define PDS_GLOBAL_AGG_PROTOCOLS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "global/common.h"
#include "global/fleet_executor.h"
#include "global/observer.h"

namespace pds::global {

/// Result of a secure GROUP-BY aggregate over the fleet.
struct AggOutput {
  std::map<std::string, double> groups;
  Metrics metrics;
  LeakageReport leakage;
};

/// A secure "SELECT group, AGG(value) GROUP BY group" protocol over the
/// asymmetric architecture (trusted tokens + untrusted SSI) — the [TNP14]
/// family presented in Part III of the tutorial. Implementations differ in
/// which encryption they use and what the SSI learns:
///
///  - SecureAggProtocol:   non-deterministic encryption; the SSI learns only
///    the tuple count but the tokens pay multiple aggregation rounds.
///  - WhiteNoiseProtocol:  deterministic encryption + random fake tuples;
///    one round, but the SSI sees a (noisy) group-size histogram.
///  - DomainNoiseProtocol: fake tuples drawn from the complementary domain,
///    flattening the histogram the SSI sees at higher bandwidth cost.
///  - HistogramProtocol:   plaintext equi-depth bucket ids (Hacigumus
///    style); the SSI sees only bucket sizes.
///  - PackedPaillierProtocol: slot-packed Paillier; every token ships ONE
///    homomorphic ciphertext carrying all of its per-group counters, the
///    SSI folds blindly, the querier decrypts once. Minimum leakage (the
///    SSI sees only the fleet size) at asymmetric-crypto cost.
class AggregationProtocol {
 public:
  virtual ~AggregationProtocol() = default;

  virtual std::string_view name() const = 0;

  /// Runs the protocol over the participants. All tokens must share the
  /// fleet key. The observer inside records the SSI's view.
  virtual Result<AggOutput> Execute(std::vector<Participant>& participants,
                                    AggFunc func) = 0;
};

/// Non-deterministic encryption; SSI partitions blindly, tokens aggregate
/// over log rounds.
class SecureAggProtocol : public AggregationProtocol {
 public:
  struct Config {
    /// Max ciphertext tuples a token can ingest per aggregation step
    /// (bounded by token RAM). Must exceed the number of distinct groups.
    size_t partition_capacity = 256;
    /// Optional fleet executor: per-token work (encrypt/decrypt/aggregate)
    /// runs across worker threads with results gathered by index, so the
    /// output is byte-identical to a serial run. Null means serial.
    FleetExecutor* executor = nullptr;
  };

  explicit SecureAggProtocol(const Config& config) : config_(config) {}

  std::string_view name() const override { return "secure-agg"; }
  Result<AggOutput> Execute(std::vector<Participant>& participants,
                            AggFunc func) override;

 private:
  Config config_;
};

/// Deterministic encryption of group values + random fake tuples.
class WhiteNoiseProtocol : public AggregationProtocol {
 public:
  struct Config {
    /// Fake tuples added per real tuple (0.2 = 20% noise).
    double noise_ratio = 0.2;
    uint64_t noise_seed = 7;
    /// See SecureAggProtocol::Config::executor.
    FleetExecutor* executor = nullptr;
  };

  explicit WhiteNoiseProtocol(const Config& config) : config_(config) {}

  std::string_view name() const override { return "white-noise"; }
  Result<AggOutput> Execute(std::vector<Participant>& participants,
                            AggFunc func) override;

 private:
  Config config_;
};

/// Deterministic encryption + fake tuples covering the complementary
/// domain, so the SSI's histogram flattens toward uniform over the domain.
class DomainNoiseProtocol : public AggregationProtocol {
 public:
  struct Config {
    /// The full (public) domain of group values.
    std::vector<std::string> domain;
    /// Fake tuples each participant adds per domain value.
    uint32_t fakes_per_value = 1;
    uint64_t noise_seed = 7;
    /// See SecureAggProtocol::Config::executor.
    FleetExecutor* executor = nullptr;
  };

  explicit DomainNoiseProtocol(Config config) : config_(std::move(config)) {}

  std::string_view name() const override { return "domain-noise"; }
  Result<AggOutput> Execute(std::vector<Participant>& participants,
                            AggFunc func) override;

 private:
  Config config_;
};

/// Hacigumus-style bucketization: tokens tag tuples with a plaintext
/// bucket id; measures stay non-deterministically encrypted.
class HistogramProtocol : public AggregationProtocol {
 public:
  struct Config {
    uint32_t num_buckets = 16;
    /// See SecureAggProtocol::Config::executor.
    FleetExecutor* executor = nullptr;
  };

  explicit HistogramProtocol(const Config& config) : config_(config) {}

  std::string_view name() const override { return "histogram"; }
  Result<AggOutput> Execute(std::vector<Participant>& participants,
                            AggFunc func) override;

 private:
  Config config_;
};

/// Slot-packed Paillier aggregation over a public group domain — the
/// "untrusted-server-only" point of the spectrum run through the packed
/// crypto hot path (crypto::PackedAggregate).
///
/// Every participant folds its tuples into per-domain-value (sum, count)
/// counters, packs them into ONE Paillier plaintext (two slots per domain
/// value) and encrypts it inside its token. The SSI multiplies the fleet's
/// ciphertexts — learning nothing but the fleet size — and the querier
/// performs a single decrypt-unpack. One round; fleet + 1 asymmetric
/// operations total instead of fleet * |domain| + |domain|.
///
/// Tuple values must be non-negative integers (counters); each
/// participant's per-group sum must stay within `max_slot_value`.
class PackedPaillierProtocol : public AggregationProtocol {
 public:
  struct Config {
    /// The full (public) domain of group values; defines the slot order.
    std::vector<std::string> domain;
    /// Cap on one participant's per-group contribution (sum of values and
    /// tuple count). Sizes the slot width together with the fleet size.
    uint64_t max_slot_value = 255;
    /// Querier keypair size.
    size_t paillier_bits = 512;
    /// Seed for the querier's keypair generation.
    uint64_t key_seed = 42;
    /// See SecureAggProtocol::Config::executor.
    FleetExecutor* executor = nullptr;
  };

  explicit PackedPaillierProtocol(Config config) : config_(std::move(config)) {}

  std::string_view name() const override { return "packed-paillier"; }
  Result<AggOutput> Execute(std::vector<Participant>& participants,
                            AggFunc func) override;

 private:
  Config config_;
};

}  // namespace pds::global

#endif  // PDS_GLOBAL_AGG_PROTOCOLS_H_
