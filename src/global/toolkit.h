#ifndef PDS_GLOBAL_TOOLKIT_H_
#define PDS_GLOBAL_TOOLKIT_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/paillier.h"
#include "global/common.h"
#include "global/fleet_executor.h"

namespace pds::global {

/// The privacy-preserving data-mining toolkit of [CKV+02] (tutorial
/// Part III, "Toolkits for Secure Computations"): four primitives from
/// which association rules and clustering are assembled. Each function
/// simulates the multi-party protocol in-process and accounts messages,
/// bytes and crypto operations in `metrics`.

/// Secure Sum: ring protocol. The initiator masks its value with a random
/// R modulo `modulus`; each site adds its value; the initiator unmasks.
/// No site learns any other site's value (the running total is uniformly
/// distributed). Requires >= 3 sites for the privacy argument.
Result<uint64_t> SecureSum(const std::vector<uint64_t>& site_values,
                           uint64_t modulus, Rng* rng, Metrics* metrics);

/// Secure Set Union via SRA commutative encryption: each site encrypts
/// every item with its key (items circulate the ring), fully-encrypted
/// items are deduplicated — equal plaintexts collide regardless of
/// encryption order — and then decrypted layer by layer.
///
/// With an executor, the per-site ring journeys and the final per-item
/// decryption chains fan out across worker threads; each site draws its
/// shuffle randomness from a sub-stream seeded serially off `rng`, so the
/// result is deterministic for a given seed at any thread count.
Result<std::set<std::string>> SecureSetUnion(
    const std::vector<std::vector<std::string>>& site_sets, size_t prime_bits,
    Rng* rng, Metrics* metrics, FleetExecutor* exec = nullptr);

/// Secure Size of Set Intersection: same commutative-encryption pipeline,
/// but only the count of fully-encrypted values present at *every* site is
/// revealed (nothing is decrypted).
Result<uint64_t> SecureIntersectionSize(
    const std::vector<std::vector<std::string>>& site_sets, size_t prime_bits,
    Rng* rng, Metrics* metrics, FleetExecutor* exec = nullptr);

/// Secure Scalar Product between two sites using Paillier: site A sends
/// E(a_i); site B computes prod E(a_i)^{b_i} = E(sum a_i * b_i); A
/// decrypts. B learns nothing; A learns only the scalar product. Site A's
/// encryptions fan out across the executor (per-element RNG sub-streams
/// seeded serially, so results are thread-count independent).
Result<uint64_t> SecureScalarProduct(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b,
                                     size_t paillier_bits, Rng* rng,
                                     Metrics* metrics,
                                     FleetExecutor* exec = nullptr);

/// Homomorphic SUM over all participants using Paillier — the
/// "untrusted-server-only" end of the tutorial's solution spectrum, used
/// by bench_crypto_ladder as the expensive comparison point. The SSI adds
/// ciphertexts without learning anything; only the querier (key owner)
/// decrypts. Per-site encryptions fan out across the executor.
Result<uint64_t> PaillierFleetSum(const std::vector<uint64_t>& site_values,
                                  size_t paillier_bits, Rng* rng,
                                  Metrics* metrics,
                                  FleetExecutor* exec = nullptr);

/// One fleet aggregation round over per-site counter vectors, in the two
/// crypto gears bench_crypto_round compares. Each site contributes
/// site_counters[i] (all the same length k); the output is the slot-wise
/// fleet total per counter.
struct PackedRoundOutput {
  std::vector<uint64_t> totals;
  Metrics metrics;
};

/// Per-op baseline (the PR 1 path): one Paillier encryption per site per
/// counter, k independent homomorphic folds and k decryptions —
/// fleet * k + k asymmetric operations per round.
Result<PackedRoundOutput> PaillierPerOpFleetRound(
    const crypto::Paillier& paillier,
    const std::vector<std::vector<uint64_t>>& site_counters, Rng* rng,
    Metrics* metrics = nullptr, FleetExecutor* exec = nullptr);

/// Packed + batched hot path: each site's counters pack into one plaintext
/// (crypto::PackedAggregate), the fleet's encryptions run the lockstep
/// batch-window ladder over the multi-lane Montgomery kernel, the SSI folds
/// fleet ciphertexts, and ONE decrypt-unpack yields every total —
/// fleet + 1 asymmetric operations per round.
Result<PackedRoundOutput> PaillierPackedFleetRound(
    const crypto::PackedAggregate& agg,
    const std::vector<std::vector<uint64_t>>& site_counters, Rng* rng,
    Metrics* metrics = nullptr);

}  // namespace pds::global

#endif  // PDS_GLOBAL_TOOLKIT_H_
