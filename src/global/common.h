#ifndef PDS_GLOBAL_COMMON_H_
#define PDS_GLOBAL_COMMON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "mcu/secure_token.h"

namespace pds::global {

/// A (group, value) pair contributed by one PDS — the tuples of the
/// tutorial's "SELECT group, AGG(value) ... GROUP BY group" example.
/// Plaintext only *inside* tokens.
struct SourceTuple {
  std::string group;
  double value = 0.0;
};

/// One PDS participating in a global query: its secure token plus the
/// tuples its owner has authorized for sharing.
struct Participant {
  mcu::SecureToken* token = nullptr;
  std::vector<SourceTuple> tuples;
};

/// Cost accounting for one protocol execution. Token work is the number of
/// cryptographic operations performed inside secure tokens (the scarce
/// resource of the asymmetric architecture); SSI work is plaintext-side
/// operations on the powerful-but-untrusted infrastructure.
struct Metrics {
  uint64_t messages = 0;        // network messages
  uint64_t bytes = 0;           // bytes transferred
  uint64_t rounds = 0;          // sequential protocol rounds
  uint64_t token_crypto_ops = 0;  // enc/dec/mac inside tokens
  uint64_t ssi_ops = 0;         // SSI-side comparisons/moves
  // Directional split of `bytes` over the token <-> SSI wire (the only
  // link in the architecture); their sum equals `bytes` when every message
  // is recorded through the directional helpers.
  uint64_t bytes_token_to_ssi = 0;
  uint64_t bytes_ssi_to_token = 0;
  // Tokens that never answered a wire round within its deadline and retry
  // budget (the quorum shortfall). Only the src/net runtime sets this; the
  // in-process protocols model always-connected tokens.
  uint64_t tokens_missing = 0;

  void AddMessage(uint64_t message_bytes) {
    ++messages;
    bytes += message_bytes;
  }
  void AddTokenToSsi(uint64_t message_bytes) {
    AddMessage(message_bytes);
    bytes_token_to_ssi += message_bytes;
  }
  void AddSsiToToken(uint64_t message_bytes) {
    AddMessage(message_bytes);
    bytes_ssi_to_token += message_bytes;
  }
};

/// What the honest-but-curious SSI learned during a protocol run — the
/// privacy side of the [TNP14] trade-off. Recorded by the HbcObserver.
struct LeakageReport {
  /// Total ciphertext tuples the SSI handled.
  uint64_t tuples_observed = 0;
  /// Distinct equality classes the SSI could form over what it saw
  /// (deterministic encryption or bucket ids make classes collapse;
  /// non-deterministic encryption keeps every tuple distinct).
  uint64_t distinct_classes = 0;
  /// Sizes of the equality classes (the group-size histogram the SSI can
  /// reconstruct; includes noise tuples if any).
  std::vector<uint64_t> class_sizes;
  /// Whether any plaintext group value was visible to the SSI.
  bool plaintext_groups_visible = false;

  /// Largest class as a fraction of observed tuples — a simple linkage-risk
  /// indicator (1/distinct_classes == uniform is the best case).
  double MaxClassFraction() const;
  /// Shannon entropy (bits) of the class-size distribution; higher means
  /// the SSI learned less structure per tuple.
  double ClassEntropyBits() const;
};

/// The aggregate requested from the fleet.
enum class AggFunc { kSum, kCount, kAvg };

/// Group-label prefix marking [TNP14] noise tuples. The prefix starts with
/// a non-printable byte so it cannot collide with a real user-visible group.
/// Both the in-process det/noise protocols (agg_protocols.cc) and the wire
/// runtime's kDetCollect handlers must agree on it, so it lives here.
inline constexpr char kFakeGroupPrefix[] = "\x01__fake__";

/// Payload carried (encrypted) with each [TNP14] protocol tuple:
/// [u8 fake][f64 sum][u64 count][group bytes]. The in-process protocols
/// (agg_protocols.cc) and the wire runtime (src/net) must agree on this
/// layout bit-for-bit, so it lives here rather than in either module.
struct AggPayload {
  bool fake = false;
  double sum = 0;
  uint64_t count = 0;
  std::string group;
};

[[nodiscard]] Bytes EncodeAggPayload(bool fake, double sum, uint64_t count,
                                     const std::string& group);
[[nodiscard]] Result<AggPayload> DecodeAggPayload(ByteView in);

/// Reference plaintext evaluation (ground truth for tests/benches).
std::map<std::string, double> PlainAggregate(
    const std::vector<Participant>& participants, AggFunc func);

/// Publishes one finished protocol run to the obs layer: bumps the
/// fleet-wide wire/round/crypto counters and, when tracing is enabled,
/// attaches the HbcObserver's leakage summary to the trace as an instant
/// event named after the protocol. `name` must be a static literal.
void RecordProtocolRun(const char* name, const Metrics& metrics,
                       const LeakageReport& leakage);

}  // namespace pds::global

#endif  // PDS_GLOBAL_COMMON_H_
