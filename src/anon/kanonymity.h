#ifndef PDS_ANON_KANONYMITY_H_
#define PDS_ANON_KANONYMITY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "anon/hierarchy.h"
#include "common/result.h"

namespace pds::anon {

/// One microdata record: quasi-identifier values (one per configured
/// hierarchy) plus a sensitive attribute that is published as-is.
struct Record {
  std::vector<std::string> quasi_identifiers;
  std::string sensitive;
};

/// A generalization strategy: one level per quasi-identifier attribute.
using LevelVector = std::vector<uint32_t>;

/// The anonymized release plus quality metrics.
struct AnonymizationResult {
  std::vector<Record> published;  // generalized, small classes suppressed
  LevelVector levels;             // chosen generalization levels
  uint64_t suppressed = 0;        // records dropped
  uint32_t num_classes = 0;       // equivalence classes published
  /// Information loss in [0,1]: mean of level/max_level across attributes,
  /// folding in the suppression fraction.
  double information_loss = 0.0;
};

/// Full-domain generalization k-anonymizer (the centralized algorithm the
/// MetaP protocol executes with secure devices): searches the
/// generalization lattice breadth-first by total level and returns the
/// first (minimum-loss) strategy that makes every published equivalence
/// class at least `k` strong, suppressing at most `max_suppression`
/// records.
class KAnonymizer {
 public:
  struct Options {
    uint32_t k = 5;
    /// Max fraction of records that may be suppressed instead of
    /// generalizing further.
    double max_suppression_rate = 0.05;
  };

  KAnonymizer(std::vector<std::unique_ptr<Hierarchy>> hierarchies,
              const Options& options)
      : hierarchies_(std::move(hierarchies)), options_(options) {}

  Result<AnonymizationResult> Anonymize(
      const std::vector<Record>& records) const;

  /// Applies one strategy and reports the resulting class sizes (used by
  /// the distributed protocol, where counting happens at the SSI).
  std::map<std::string, uint64_t> ClassSizes(
      const std::vector<Record>& records, const LevelVector& levels) const;

  /// Generalizes one record under a strategy.
  Record GeneralizeRecord(const Record& record,
                          const LevelVector& levels) const;

  size_t num_attributes() const { return hierarchies_.size(); }
  const Options& options() const { return options_; }

  /// Max generalization level per attribute (the lattice's top corner).
  std::vector<uint32_t> MaxLevels() const;

  /// Enumerates all level vectors with the given total, in lexicographic
  /// order (exposed for the lattice walk and for tests).
  std::vector<LevelVector> StrategiesWithTotal(uint32_t total) const;

 private:
  std::string ClassKey(const Record& generalized) const;

  std::vector<std::unique_ptr<Hierarchy>> hierarchies_;
  Options options_;
};

/// True if every equivalence class over the quasi-identifiers has at least
/// k records.
bool CheckKAnonymity(const std::vector<Record>& records, uint32_t k);

/// True if every equivalence class contains at least l distinct sensitive
/// values (distinct l-diversity).
bool CheckLDiversity(const std::vector<Record>& records, uint32_t l);

}  // namespace pds::anon

#endif  // PDS_ANON_KANONYMITY_H_
