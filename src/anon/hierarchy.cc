#include "anon/hierarchy.h"

#include <algorithm>
#include <cstdlib>

namespace pds::anon {

std::string NumericHierarchy::Generalize(const std::string& value,
                                         uint32_t level) const {
  level = std::min(level, max_level());
  if (level == 0) {
    return value;
  }
  if (level > levels_) {
    return "*";
  }
  int64_t v = std::strtoll(value.c_str(), nullptr, 10);
  int64_t width = base_width_ << (level - 1);
  int64_t lo = (v / width) * width;
  if (v < 0 && v % width != 0) {
    lo -= width;
  }
  return "[" + std::to_string(lo) + "-" + std::to_string(lo + width - 1) +
         "]";
}

std::string PrefixHierarchy::Generalize(const std::string& value,
                                        uint32_t level) const {
  level = std::min(level, max_level());
  if (level == 0) {
    return value;
  }
  std::string out = value;
  size_t stars = std::min<size_t>(level, out.size());
  for (size_t i = 0; i < stars; ++i) {
    out[out.size() - 1 - i] = '*';
  }
  return out;
}

}  // namespace pds::anon
