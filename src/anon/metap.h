#ifndef PDS_ANON_METAP_H_
#define PDS_ANON_METAP_H_

#include <memory>
#include <vector>

#include "anon/kanonymity.h"
#include "common/result.h"
#include "global/common.h"
#include "global/observer.h"
#include "mcu/secure_token.h"

namespace pds::anon {

/// Distributed privacy-preserving data publishing over the asymmetric
/// architecture, in the spirit of MetaP [ANP13] (tutorial Part III: "This
/// generic protocol can be used in many different contexts, such as
/// Privacy Preserving Data Publishing").
///
/// Each PDS holds its owner's microdata record(s). The untrusted SSI
/// coordinates the generalization-lattice walk but sees only
/// deterministically encrypted equivalence-class keys:
///
///  per candidate strategy (walked in increasing information loss):
///   1. every token generalizes its records locally and sends
///      Enc_det(class key) per record;
///   2. the SSI counts class sizes over ciphertexts (equality is all it
///      can test) and reports the minimum;
///   3. a verifier token checks min >= k (after subtracting the suppression
///      budget); when satisfied, tokens release the generalized records of
///      surviving classes, suppressing the rest.
struct MetapParticipant {
  mcu::SecureToken* token = nullptr;
  std::vector<Record> records;
};

struct MetapOutput {
  AnonymizationResult result;
  global::Metrics metrics;
  global::LeakageReport leakage;
  /// Strategies tried before one satisfied k (protocol rounds).
  uint32_t strategies_tried = 0;
};

class MetapProtocol {
 public:
  MetapProtocol(std::vector<std::unique_ptr<Hierarchy>> hierarchies,
                const KAnonymizer::Options& options)
      : anonymizer_(std::move(hierarchies), options) {}

  Result<MetapOutput> Publish(std::vector<MetapParticipant>& participants);

  const KAnonymizer& anonymizer() const { return anonymizer_; }

 private:
  KAnonymizer anonymizer_;
};

}  // namespace pds::anon

#endif  // PDS_ANON_METAP_H_
