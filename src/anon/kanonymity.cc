#include "anon/kanonymity.h"

#include <functional>
#include <set>

namespace pds::anon {

std::string KAnonymizer::ClassKey(const Record& generalized) const {
  std::string key;
  for (const std::string& qi : generalized.quasi_identifiers) {
    key += qi;
    key.push_back('\x1F');
  }
  return key;
}

Record KAnonymizer::GeneralizeRecord(const Record& record,
                                     const LevelVector& levels) const {
  Record out;
  out.sensitive = record.sensitive;
  out.quasi_identifiers.reserve(hierarchies_.size());
  for (size_t i = 0; i < hierarchies_.size(); ++i) {
    out.quasi_identifiers.push_back(
        hierarchies_[i]->Generalize(record.quasi_identifiers[i], levels[i]));
  }
  return out;
}

std::map<std::string, uint64_t> KAnonymizer::ClassSizes(
    const std::vector<Record>& records, const LevelVector& levels) const {
  std::map<std::string, uint64_t> sizes;
  for (const Record& r : records) {
    ++sizes[ClassKey(GeneralizeRecord(r, levels))];
  }
  return sizes;
}

std::vector<uint32_t> KAnonymizer::MaxLevels() const {
  std::vector<uint32_t> out;
  out.reserve(hierarchies_.size());
  for (const auto& h : hierarchies_) {
    out.push_back(h->max_level());
  }
  return out;
}

std::vector<LevelVector> KAnonymizer::StrategiesWithTotal(
    uint32_t total) const {
  std::vector<LevelVector> out;
  LevelVector current(hierarchies_.size(), 0);
  // Recursive enumeration of compositions of `total` bounded per attribute.
  std::function<void(size_t, uint32_t)> rec = [&](size_t attr,
                                                  uint32_t remaining) {
    if (attr + 1 == hierarchies_.size()) {
      if (remaining <= hierarchies_[attr]->max_level()) {
        current[attr] = remaining;
        out.push_back(current);
      }
      return;
    }
    uint32_t cap = std::min(remaining, hierarchies_[attr]->max_level());
    for (uint32_t l = 0; l <= cap; ++l) {
      current[attr] = l;
      rec(attr + 1, remaining - l);
    }
  };
  if (!hierarchies_.empty()) {
    rec(0, total);
  }
  return out;
}

Result<AnonymizationResult> KAnonymizer::Anonymize(
    const std::vector<Record>& records) const {
  if (hierarchies_.empty()) {
    return Status::FailedPrecondition("no hierarchies configured");
  }
  for (const Record& r : records) {
    if (r.quasi_identifiers.size() != hierarchies_.size()) {
      return Status::InvalidArgument("record QI arity mismatch");
    }
  }
  if (records.empty()) {
    AnonymizationResult empty;
    empty.levels.assign(hierarchies_.size(), 0);
    return empty;
  }

  uint32_t max_total = 0;
  for (const auto& h : hierarchies_) {
    max_total += h->max_level();
  }
  const uint64_t suppression_budget = static_cast<uint64_t>(
      options_.max_suppression_rate * static_cast<double>(records.size()));

  for (uint32_t total = 0; total <= max_total; ++total) {
    for (const LevelVector& levels : StrategiesWithTotal(total)) {
      std::map<std::string, uint64_t> sizes = ClassSizes(records, levels);
      uint64_t to_suppress = 0;
      for (const auto& [key, count] : sizes) {
        if (count < options_.k) {
          to_suppress += count;
        }
      }
      if (to_suppress > suppression_budget) {
        continue;
      }

      // Strategy accepted: build the release.
      AnonymizationResult result;
      result.levels = levels;
      result.suppressed = to_suppress;
      for (const Record& r : records) {
        Record g = GeneralizeRecord(r, levels);
        if (sizes[ClassKey(g)] >= options_.k) {
          result.published.push_back(std::move(g));
        }
      }
      std::set<std::string> classes;
      for (const Record& r : result.published) {
        classes.insert(ClassKey(r));
      }
      result.num_classes = static_cast<uint32_t>(classes.size());

      double level_loss = 0;
      for (size_t i = 0; i < hierarchies_.size(); ++i) {
        level_loss += static_cast<double>(levels[i]) /
                      static_cast<double>(hierarchies_[i]->max_level());
      }
      level_loss /= static_cast<double>(hierarchies_.size());
      double supp_loss = static_cast<double>(to_suppress) /
                         static_cast<double>(records.size());
      result.information_loss =
          level_loss + (1.0 - level_loss) * supp_loss;
      return result;
    }
  }
  return Status::Internal("no k-anonymous strategy found (even all-*)");
}

namespace {
std::string PlainClassKey(const Record& r) {
  std::string key;
  for (const std::string& qi : r.quasi_identifiers) {
    key += qi;
    key.push_back('\x1F');
  }
  return key;
}
}  // namespace

bool CheckKAnonymity(const std::vector<Record>& records, uint32_t k) {
  std::map<std::string, uint64_t> sizes;
  for (const Record& r : records) {
    ++sizes[PlainClassKey(r)];
  }
  for (const auto& [key, count] : sizes) {
    if (count < k) {
      return false;
    }
  }
  return true;
}

bool CheckLDiversity(const std::vector<Record>& records, uint32_t l) {
  std::map<std::string, std::set<std::string>> values;
  for (const Record& r : records) {
    values[PlainClassKey(r)].insert(r.sensitive);
  }
  for (const auto& [key, sens] : values) {
    if (sens.size() < l) {
      return false;
    }
  }
  return true;
}

}  // namespace pds::anon
