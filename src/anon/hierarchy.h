#ifndef PDS_ANON_HIERARCHY_H_
#define PDS_ANON_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <string>

namespace pds::anon {

/// A value generalization hierarchy for one quasi-identifier attribute.
/// Level 0 is the exact value; each level is strictly more general;
/// `max_level()` maps everything to "*".
class Hierarchy {
 public:
  virtual ~Hierarchy() = default;

  virtual uint32_t max_level() const = 0;
  /// Generalizes `value` to `level` (clamped to max_level).
  virtual std::string Generalize(const std::string& value,
                                 uint32_t level) const = 0;
};

/// Numeric ranges: level l maps v to the bucket of width
/// `base_width * 2^(l-1)` containing it ("[20-29]"), level 0 is exact,
/// max level is "*".
class NumericHierarchy : public Hierarchy {
 public:
  /// `levels` counts the range levels between exact and "*"
  /// (max_level() == levels + 1).
  NumericHierarchy(int64_t base_width, uint32_t levels)
      : base_width_(base_width), levels_(levels) {}

  uint32_t max_level() const override { return levels_ + 1; }
  std::string Generalize(const std::string& value,
                         uint32_t level) const override;

 private:
  int64_t base_width_;
  uint32_t levels_;
};

/// String prefixes (zip codes): level l replaces the last l characters
/// with '*'; the max level (== max_suffix) yields all-stars.
class PrefixHierarchy : public Hierarchy {
 public:
  explicit PrefixHierarchy(uint32_t max_suffix) : max_suffix_(max_suffix) {}

  uint32_t max_level() const override { return max_suffix_; }
  std::string Generalize(const std::string& value,
                         uint32_t level) const override;

 private:
  uint32_t max_suffix_;
};

/// Flat two-level hierarchy: exact or "*". For categorical attributes with
/// no natural order (diagnosis codes, professions).
class SuppressionHierarchy : public Hierarchy {
 public:
  uint32_t max_level() const override { return 1; }
  std::string Generalize(const std::string& value,
                         uint32_t level) const override {
    return level == 0 ? value : "*";
  }
};

}  // namespace pds::anon

#endif  // PDS_ANON_HIERARCHY_H_
