#include "anon/metap.h"

#include <map>
#include <set>

namespace pds::anon {

namespace {
std::string ClassKeyOf(const Record& generalized) {
  std::string key;
  for (const std::string& qi : generalized.quasi_identifiers) {
    key += qi;
    key.push_back('\x1F');
  }
  return key;
}
}  // namespace

Result<MetapOutput> MetapProtocol::Publish(
    std::vector<MetapParticipant>& participants) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  MetapOutput out;
  global::HbcObserver observer;

  uint64_t total_records = 0;
  for (const MetapParticipant& p : participants) {
    for (const Record& r : p.records) {
      if (r.quasi_identifiers.size() != anonymizer_.num_attributes()) {
        return Status::InvalidArgument("record QI arity mismatch");
      }
      ++total_records;
    }
  }
  if (total_records == 0) {
    return Status::InvalidArgument("fleet holds no records");
  }

  const uint32_t k = anonymizer_.options().k;
  const uint64_t suppression_budget = static_cast<uint64_t>(
      anonymizer_.options().max_suppression_rate *
      static_cast<double>(total_records));

  const std::vector<uint32_t> max_levels = anonymizer_.MaxLevels();
  uint32_t max_total = 0;
  for (uint32_t ml : max_levels) {
    max_total += ml;
  }

  for (uint32_t total = 0; total <= max_total; ++total) {
    for (const LevelVector& levels :
         anonymizer_.StrategiesWithTotal(total)) {
      ++out.strategies_tried;
      ++out.metrics.rounds;

      // 1. Tokens send det-encrypted class keys to the SSI.
      std::map<std::string, uint64_t> class_counts;  // by ciphertext
      for (MetapParticipant& p : participants) {
        for (const Record& r : p.records) {
          Record g = anonymizer_.GeneralizeRecord(r, levels);
          std::string key = ClassKeyOf(g);
          PDS_ASSIGN_OR_RETURN(
              Bytes ct, p.token->EncryptDet(ByteView(std::string_view(key))));
          ++out.metrics.token_crypto_ops;
          out.metrics.AddMessage(ct.size());
          std::string ct_key = ByteView(ct).ToString();
          observer.ObserveTuple(ByteView(ct));
          ++class_counts[ct_key];
          ++out.metrics.ssi_ops;
        }
      }

      // 2. SSI reports class sizes; a verifier token checks k.
      uint64_t to_suppress = 0;
      for (const auto& [ct, count] : class_counts) {
        if (count < k) {
          to_suppress += count;
        }
      }
      out.metrics.AddMessage(class_counts.size() * 8);
      if (to_suppress > suppression_budget) {
        continue;  // next strategy
      }

      // 3. Accepted: tokens publish generalized records of big classes.
      AnonymizationResult& result = out.result;
      result.levels = levels;
      result.suppressed = to_suppress;
      std::set<std::string> classes;
      for (MetapParticipant& p : participants) {
        for (const Record& r : p.records) {
          Record g = anonymizer_.GeneralizeRecord(r, levels);
          std::string key = ClassKeyOf(g);
          PDS_ASSIGN_OR_RETURN(
              Bytes ct, p.token->EncryptDet(ByteView(std::string_view(key))));
          ++out.metrics.token_crypto_ops;
          std::string ct_key = ByteView(ct).ToString();
          if (class_counts[ct_key] >= k) {
            classes.insert(key);
            out.metrics.AddMessage(32);
            result.published.push_back(std::move(g));
          }
        }
      }
      result.num_classes = static_cast<uint32_t>(classes.size());

      double level_loss = 0;
      for (size_t i = 0; i < levels.size(); ++i) {
        level_loss +=
            static_cast<double>(levels[i]) / static_cast<double>(max_levels[i]);
      }
      level_loss /= static_cast<double>(levels.size());
      double supp_loss = static_cast<double>(to_suppress) /
                         static_cast<double>(total_records);
      result.information_loss = level_loss + (1.0 - level_loss) * supp_loss;

      out.leakage = observer.Report();
      return out;
    }
  }
  return Status::Internal("no k-anonymous strategy found");
}

}  // namespace pds::anon
