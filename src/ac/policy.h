#ifndef PDS_AC_POLICY_H_
#define PDS_AC_POLICY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "embdb/executor.h"

namespace pds::ac {

/// What a subject may do with the data.
enum class Action {
  kRead,
  kInsert,
  kShare,  // export beyond the token (global protocols, publishing)
};

std::string_view ActionName(Action action);

/// A subject interacting with the PDS: a role (matched by rules) plus an
/// identifier for the audit trail — e.g., {"doctor", "dr-lucas"},
/// {"owner", "alice"}, {"third-party", "acme-ads"}.
struct Subject {
  std::string role;
  std::string id;
};

/// One access-control rule, in the spirit of the tutorial's requirement for
/// "intuitive, simple ways for users to define access control rules":
/// <role> may <action> <columns> of <table> [where <row filter>].
struct Rule {
  std::string role;
  Action action = Action::kRead;
  std::string table;
  /// Columns the rule grants; empty means all columns.
  std::vector<std::string> columns;
  /// Optional mandatory row filter (e.g., doctor sees only medical rows).
  std::optional<embdb::Predicate> row_filter;
};

/// Outcome of a policy check.
struct Decision {
  bool allowed = false;
  /// Row filters that MUST be conjoined to the subject's query (one per
  /// matching rule actually used).
  std::vector<embdb::Predicate> mandatory_filters;
};

/// The token-resident policy set. Deny by default: a request is allowed
/// only if some rule grants the role every requested column of the table
/// for the action. An important property of the PDS architecture is that
/// this evaluation happens *inside* the secure token — the tutorial's
/// "observation: a user does not have all the privileges over the data in
/// her PDS" also holds: even the owner is governed by rules.
class PolicySet {
 public:
  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  /// Checks `subject` performing `action` on `columns` of `table`
  /// (empty `columns` = all columns of the table).
  Decision Check(const Subject& subject, Action action,
                 const std::string& table,
                 const std::vector<std::string>& columns) const;

  size_t num_rules() const { return rules_.size(); }

 private:
  std::vector<Rule> rules_;
};

/// Append-only audit trail of access decisions — the "secure usage and
/// accountability" requirement. Entries are kept as rendered strings; the
/// PDS node persists them to a flash log.
struct AuditEntry {
  Subject subject;
  Action action = Action::kRead;
  std::string table;
  bool allowed = false;

  std::string ToString() const;
};

}  // namespace pds::ac

#endif  // PDS_AC_POLICY_H_
