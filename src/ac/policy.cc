#include "ac/policy.h"

#include <algorithm>

namespace pds::ac {

std::string_view ActionName(Action action) {
  switch (action) {
    case Action::kRead:
      return "read";
    case Action::kInsert:
      return "insert";
    case Action::kShare:
      return "share";
  }
  return "?";
}

Decision PolicySet::Check(const Subject& subject, Action action,
                          const std::string& table,
                          const std::vector<std::string>& columns) const {
  Decision decision;
  // Greedy cover: collect matching rules until all requested columns are
  // granted. A rule with empty columns covers everything.
  std::vector<std::string> remaining = columns;
  bool all_columns_requested = columns.empty();
  bool any_rule_used = false;

  for (const Rule& rule : rules_) {
    if (rule.role != subject.role || rule.action != action ||
        rule.table != table) {
      continue;
    }
    if (rule.columns.empty()) {
      // Grants all columns.
      any_rule_used = true;
      remaining.clear();
      all_columns_requested = false;
      if (rule.row_filter.has_value()) {
        decision.mandatory_filters.push_back(*rule.row_filter);
      }
      break;
    }
    if (all_columns_requested) {
      // Asking for all columns but this rule grants a subset: not enough
      // on its own, and partial covers of "*" are not composed.
      continue;
    }
    // Remove the granted columns from the remaining set.
    size_t before = remaining.size();
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [&](const std::string& c) {
                                     return std::find(rule.columns.begin(),
                                                      rule.columns.end(),
                                                      c) !=
                                            rule.columns.end();
                                   }),
                    remaining.end());
    if (remaining.size() != before) {
      any_rule_used = true;
      if (rule.row_filter.has_value()) {
        decision.mandatory_filters.push_back(*rule.row_filter);
      }
    }
    if (remaining.empty()) {
      break;
    }
  }

  decision.allowed =
      any_rule_used && remaining.empty() && !all_columns_requested;
  // "All columns" request allowed only via an all-columns rule, which
  // cleared the flag above.
  if (all_columns_requested) {
    decision.allowed = false;
  }
  if (!decision.allowed) {
    decision.mandatory_filters.clear();
  }
  return decision;
}

std::string AuditEntry::ToString() const {
  return subject.role + ":" + subject.id + " " +
         std::string(ActionName(action)) + " " + table + " -> " +
         (allowed ? "ALLOW" : "DENY");
}

}  // namespace pds::ac
