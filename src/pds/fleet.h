#ifndef PDS_PDS_FLEET_H_
#define PDS_PDS_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "global/common.h"
#include "global/fleet_executor.h"
#include "pds/pds_node.h"

namespace pds::node {

/// A fleet of PdsNodes provisioned with one application-domain key — the
/// tutorial's population of secure tokens over which global queries run.
///
/// The fleet is the bridge between the node layer (policy-checked storage)
/// and the global layer (secure aggregation): ExportParticipants runs the
/// policy-checked export on every node — fanning out across a
/// FleetExecutor, since nodes are fully independent — and returns the
/// Participant list the [TNP14] protocols consume.
class Fleet {
 public:
  struct Config {
    size_t num_nodes = 0;
    crypto::SymmetricKey fleet_key{};
    flash::Geometry flash_geometry;
    size_t ram_budget_bytes = 64 * 1024;
    /// Node i gets node_id base_node_id + i and RNG seed base_rng_seed + i.
    uint64_t base_node_id = 1;
    uint64_t base_rng_seed = 1;
  };

  explicit Fleet(const Config& config);

  size_t size() const { return nodes_.size(); }
  PdsNode& node(size_t i) { return *nodes_[i]; }

  /// Policy-checked export of (group, value) tuples from every node,
  /// gathered by node index. On failure the returned status carries the
  /// first failing node's code and lists every failing node index with its
  /// message (capped), so a partial outage is diagnosable in one shot.
  Result<std::vector<global::Participant>> ExportParticipants(
      const ac::Subject& subject, const std::string& table,
      const std::string& group_column, const std::string& value_column,
      global::FleetExecutor* exec = nullptr);

 private:
  std::vector<std::unique_ptr<PdsNode>> nodes_;
};

}  // namespace pds::node

#endif  // PDS_PDS_FLEET_H_
