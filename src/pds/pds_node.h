#ifndef PDS_PDS_PDS_NODE_H_
#define PDS_PDS_PDS_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "ac/policy.h"
#include "common/result.h"
#include "embdb/database.h"
#include "flash/flash.h"
#include "logstore/sequential_log.h"
#include "mcu/secure_token.h"

namespace pds::node {

/// A complete Personal Data Server: the tutorial's secure portable token —
/// secure MCU (SecureToken + RamGauge), NAND flash chip, the embedded
/// database of Part II, token-resident access control, and an append-only
/// audit log on flash.
///
/// All query entry points take a Subject and are policy-checked inside the
/// node; the audit trail records every decision.
class PdsNode {
 public:
  struct Config {
    uint64_t node_id = 0;
    crypto::SymmetricKey fleet_key{};
    size_t ram_budget_bytes = 64 * 1024;
    flash::Geometry flash_geometry;
    uint64_t rng_seed = 1;
    /// Blocks reserved for the audit log.
    uint32_t audit_blocks = 4;
  };

  explicit PdsNode(const Config& config);

  PdsNode(const PdsNode&) = delete;
  PdsNode& operator=(const PdsNode&) = delete;

  uint64_t id() const { return token_->id(); }
  mcu::SecureToken& token() { return *token_; }
  embdb::Database& db() { return *db_; }
  flash::FlashChip& chip() { return *chip_; }
  mcu::RamGauge& ram() { return token_->ram(); }
  ac::PolicySet& policies() { return policies_; }

  /// Defines a table (schema setup is an owner-level operation).
  Status DefineTable(const embdb::Schema& schema,
                     const embdb::Database::TableOptions& options = {});

  /// Policy-checked insert.
  Result<uint64_t> InsertAs(const ac::Subject& subject,
                            const std::string& table,
                            const embdb::Tuple& tuple);

  /// Policy-checked select: projects `columns` (empty = all) of rows
  /// matching `predicates`, conjoined with the policy's mandatory filters.
  Status QueryAs(const ac::Subject& subject, const std::string& table,
                 const std::vector<embdb::Predicate>& predicates,
                 const std::vector<std::string>& columns,
                 const std::function<Status(const embdb::Tuple&)>& emit);

  /// Policy-checked export of (group, value) pairs for global protocols —
  /// the Action::kShare gate. Values are read in plaintext here because the
  /// caller is the node itself; the global layer encrypts them inside the
  /// token before anything leaves.
  Status ExportAs(const ac::Subject& subject, const std::string& table,
                  const std::string& group_column,
                  const std::string& value_column,
                  std::vector<std::pair<std::string, double>>* out);

  /// Reads back the audit trail (owner operation).
  Result<std::vector<std::string>> ReadAuditLog();
  uint64_t audit_entries() const { return audit_count_; }

 private:
  Status Audit(const ac::AuditEntry& entry);
  static double NumericValue(const embdb::Value& v);

  std::unique_ptr<flash::FlashChip> chip_;
  std::unique_ptr<mcu::SecureToken> token_;
  std::unique_ptr<embdb::Database> db_;
  ac::PolicySet policies_;
  logstore::RecordLog audit_log_;
  uint64_t audit_count_ = 0;
};

}  // namespace pds::node

#endif  // PDS_PDS_PDS_NODE_H_
