#include "pds/pds_node.h"

namespace pds::node {

PdsNode::PdsNode(const Config& config) {
  chip_ = std::make_unique<flash::FlashChip>(config.flash_geometry);

  mcu::SecureToken::Config token_config;
  token_config.token_id = config.node_id;
  token_config.fleet_key = config.fleet_key;
  token_config.ram_budget_bytes = config.ram_budget_bytes;
  token_config.rng_seed = config.rng_seed;
  token_ = std::make_unique<mcu::SecureToken>(token_config);

  db_ = std::make_unique<embdb::Database>(chip_.get(), &token_->ram());

  Result<flash::Partition> audit_part =
      db_->allocator()->Allocate(config.audit_blocks);
  if (audit_part.ok()) {
    audit_log_ = logstore::RecordLog(*audit_part);
  }
}

Status PdsNode::Audit(const ac::AuditEntry& entry) {
  std::string line = entry.ToString();
  PDS_RETURN_IF_ERROR(
      audit_log_.Append(ByteView(std::string_view(line))).status());
  ++audit_count_;
  return Status::Ok();
}

Status PdsNode::DefineTable(const embdb::Schema& schema,
                            const embdb::Database::TableOptions& options) {
  return db_->CreateTable(schema, options);
}

Result<uint64_t> PdsNode::InsertAs(const ac::Subject& subject,
                                   const std::string& table,
                                   const embdb::Tuple& tuple) {
  ac::Decision decision =
      policies_.Check(subject, ac::Action::kInsert, table, {});
  PDS_RETURN_IF_ERROR(Audit({subject, ac::Action::kInsert, table,
                             decision.allowed}));
  if (!decision.allowed) {
    return Status::PermissionDenied(subject.role + " may not insert into " +
                                    table);
  }
  return db_->Insert(table, tuple);
}

Status PdsNode::QueryAs(
    const ac::Subject& subject, const std::string& table,
    const std::vector<embdb::Predicate>& predicates,
    const std::vector<std::string>& columns,
    const std::function<Status(const embdb::Tuple&)>& emit) {
  ac::Decision decision =
      policies_.Check(subject, ac::Action::kRead, table, columns);
  PDS_RETURN_IF_ERROR(
      Audit({subject, ac::Action::kRead, table, decision.allowed}));
  if (!decision.allowed) {
    return Status::PermissionDenied(subject.role + " may not read " + table);
  }
  embdb::TableHeap* heap = db_->table(table);
  if (heap == nullptr) {
    return Status::NotFound("table " + table);
  }

  // Conjoin the caller's predicates with the policy's mandatory filters.
  std::vector<embdb::Predicate> all = predicates;
  all.insert(all.end(), decision.mandatory_filters.begin(),
             decision.mandatory_filters.end());

  // Resolve projection.
  std::vector<int> proj;
  for (const std::string& c : columns) {
    int idx = heap->schema().ColumnIndex(c);
    if (idx < 0) {
      return Status::NotFound("column " + c);
    }
    proj.push_back(idx);
  }

  return db_->SelectScan(table, all,
                         [&](uint64_t rowid, const embdb::Tuple& tuple) {
                           (void)rowid;
                           if (proj.empty()) {
                             return emit(tuple);
                           }
                           embdb::Tuple projected;
                           projected.reserve(proj.size());
                           for (int idx : proj) {
                             projected.push_back(
                                 tuple[static_cast<size_t>(idx)]);
                           }
                           return emit(projected);
                         });
}

double PdsNode::NumericValue(const embdb::Value& v) {
  switch (v.type()) {
    case embdb::ColumnType::kUint64:
      return static_cast<double>(v.AsU64());
    case embdb::ColumnType::kInt64:
      return static_cast<double>(v.AsI64());
    case embdb::ColumnType::kDouble:
      return v.AsF64();
    case embdb::ColumnType::kString:
      return 0.0;
  }
  return 0.0;
}

Status PdsNode::ExportAs(const ac::Subject& subject, const std::string& table,
                         const std::string& group_column,
                         const std::string& value_column,
                         std::vector<std::pair<std::string, double>>* out) {
  ac::Decision decision = policies_.Check(
      subject, ac::Action::kShare, table, {group_column, value_column});
  PDS_RETURN_IF_ERROR(
      Audit({subject, ac::Action::kShare, table, decision.allowed}));
  if (!decision.allowed) {
    return Status::PermissionDenied(subject.role + " may not share " + table);
  }
  embdb::TableHeap* heap = db_->table(table);
  if (heap == nullptr) {
    return Status::NotFound("table " + table);
  }
  int gcol = heap->schema().ColumnIndex(group_column);
  int vcol = heap->schema().ColumnIndex(value_column);
  if (gcol < 0 || vcol < 0) {
    return Status::NotFound("export columns not found");
  }

  out->clear();
  return db_->SelectScan(
      table, decision.mandatory_filters,
      [&](uint64_t, const embdb::Tuple& tuple) {
        out->emplace_back(tuple[static_cast<size_t>(gcol)].ToString(),
                          NumericValue(tuple[static_cast<size_t>(vcol)]));
        return Status::Ok();
      });
}

Result<std::vector<std::string>> PdsNode::ReadAuditLog() {
  std::vector<std::string> entries;
  logstore::RecordLog::Reader reader = audit_log_.NewReader();
  Bytes record;
  while (!reader.AtEnd()) {
    PDS_RETURN_IF_ERROR(reader.Next(&record));
    entries.push_back(ByteView(record).ToString());
  }
  return entries;
}

}  // namespace pds::node
