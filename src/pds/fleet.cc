#include "pds/fleet.h"

#include "obs/obs.h"

namespace pds::node {

Fleet::Fleet(const Config& config) {
  nodes_.reserve(config.num_nodes);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    PdsNode::Config node_cfg;
    node_cfg.node_id = config.base_node_id + i;
    node_cfg.fleet_key = config.fleet_key;
    node_cfg.ram_budget_bytes = config.ram_budget_bytes;
    node_cfg.flash_geometry = config.flash_geometry;
    node_cfg.rng_seed = config.base_rng_seed + i;
    nodes_.push_back(std::make_unique<PdsNode>(node_cfg));
  }
}

Result<std::vector<global::Participant>> Fleet::ExportParticipants(
    const ac::Subject& subject, const std::string& table,
    const std::string& group_column, const std::string& value_column,
    global::FleetExecutor* exec) {
  obs::Span span("fleet.export", "fleet");
  span.AddArg("nodes", static_cast<double>(nodes_.size()));
  static obs::Gauge* nodes_gauge =
      obs::Registry::Global().GetGauge("fleet.nodes_exported", "count");
  nodes_gauge->Set(static_cast<double>(nodes_.size()));
  std::vector<global::Participant> participants(nodes_.size());
  // Each unit parks its node's status in its own slot so a partial outage
  // reports every failing node, not just the lowest-index one (the executor
  // itself only surfaces the first error).
  std::vector<Status> node_status(nodes_.size());
  PDS_RETURN_IF_ERROR(global::FleetExecutor::Run(
      exec, nodes_.size(), [&](size_t i) -> Status {
        std::vector<std::pair<std::string, double>> exported;
        Status st = nodes_[i]->ExportAs(subject, table, group_column,
                                        value_column, &exported);
        if (!st.ok()) {
          node_status[i] = std::move(st);
          return Status::Ok();
        }
        global::Participant p;
        p.token = &nodes_[i]->token();
        p.tuples.reserve(exported.size());
        for (auto& [group, value] : exported) {
          p.tuples.push_back({std::move(group), value});
        }
        participants[i] = std::move(p);
        return Status::Ok();
      }));
  size_t failed = 0;
  std::string detail;
  StatusCode first_code = StatusCode::kOk;
  constexpr size_t kMaxListedFailures = 8;
  for (size_t i = 0; i < node_status.size(); ++i) {
    if (node_status[i].ok()) {
      continue;
    }
    if (failed == 0) {
      first_code = node_status[i].code();
    }
    ++failed;
    if (failed <= kMaxListedFailures) {
      if (failed > 1) {
        detail += "; ";
      }
      detail += "node " + std::to_string(i) + ": " +
                node_status[i].message();
    }
  }
  if (failed > 0) {
    if (failed > kMaxListedFailures) {
      detail += "; ... (" + std::to_string(failed - kMaxListedFailures) +
                " more)";
    }
    return Status(first_code,
                  std::to_string(failed) + "/" +
                      std::to_string(nodes_.size()) +
                      " nodes failed export: " + detail);
  }
  return participants;
}

}  // namespace pds::node
