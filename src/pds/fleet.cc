#include "pds/fleet.h"

#include "obs/obs.h"

namespace pds::node {

Fleet::Fleet(const Config& config) {
  nodes_.reserve(config.num_nodes);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    PdsNode::Config node_cfg;
    node_cfg.node_id = config.base_node_id + i;
    node_cfg.fleet_key = config.fleet_key;
    node_cfg.ram_budget_bytes = config.ram_budget_bytes;
    node_cfg.flash_geometry = config.flash_geometry;
    node_cfg.rng_seed = config.base_rng_seed + i;
    nodes_.push_back(std::make_unique<PdsNode>(node_cfg));
  }
}

Result<std::vector<global::Participant>> Fleet::ExportParticipants(
    const ac::Subject& subject, const std::string& table,
    const std::string& group_column, const std::string& value_column,
    global::FleetExecutor* exec) {
  obs::Span span("fleet.export", "fleet");
  span.AddArg("nodes", static_cast<double>(nodes_.size()));
  static obs::Gauge* nodes_gauge =
      obs::Registry::Global().GetGauge("fleet.nodes_exported", "count");
  nodes_gauge->Set(static_cast<double>(nodes_.size()));
  std::vector<global::Participant> participants(nodes_.size());
  PDS_RETURN_IF_ERROR(global::FleetExecutor::Run(
      exec, nodes_.size(), [&](size_t i) -> Status {
        std::vector<std::pair<std::string, double>> exported;
        PDS_RETURN_IF_ERROR(nodes_[i]->ExportAs(subject, table, group_column,
                                                value_column, &exported));
        global::Participant p;
        p.token = &nodes_[i]->token();
        p.tuples.reserve(exported.size());
        for (auto& [group, value] : exported) {
          p.tuples.push_back({std::move(group), value});
        }
        participants[i] = std::move(p);
        return Status::Ok();
      }));
  return participants;
}

}  // namespace pds::node
