#include "flash/flash.h"

#include <algorithm>
#include <cstring>

namespace pds::flash {

std::string Stats::ToString() const {
  return "reads=" + std::to_string(page_reads) +
         " programs=" + std::to_string(page_programs) +
         " erases=" + std::to_string(block_erases);
}

FlashChip::FlashChip(const Geometry& geometry)
    : geometry_(geometry),
      data_(geometry.total_bytes(), 0xFF),
      programmed_(geometry.total_pages(), 0),
      bad_(geometry.total_pages(), 0),
      wear_(geometry.block_count, 0) {
  obs::Registry& reg = obs::Registry::Global();
  obs_.reads = reg.GetCounter("flash.page_reads", "ops");
  obs_.programs = reg.GetCounter("flash.page_programs", "ops");
  obs_.erases = reg.GetCounter("flash.block_erases", "ops");
  obs_.read_us = reg.GetHistogram("flash.read_us", "us");
  obs_.program_us = reg.GetHistogram("flash.program_us", "us");
  obs_.erase_us = reg.GetHistogram("flash.erase_us", "us");
}

Status FlashChip::ReadPage(uint32_t page, Bytes* out) {
  if (page >= geometry_.total_pages()) {
    return Status::OutOfRange("page " + std::to_string(page) +
                              " beyond chip capacity");
  }
  ++stats_.page_reads;
  obs_.reads->Add(1);
  obs_.read_us->Record(cost_model_.read_page_us);
  if (bad_[page]) {
    return Status::IoError("page " + std::to_string(page) +
                           " is unreadable (fault injected)");
  }
  const uint8_t* src =
      data_.data() + static_cast<uint64_t>(page) * geometry_.page_size;
  out->assign(src, src + geometry_.page_size);
  return Status::Ok();
}

Status FlashChip::ProgramPage(uint32_t page, ByteView data) {
  if (page >= geometry_.total_pages()) {
    return Status::OutOfRange("page " + std::to_string(page) +
                              " beyond chip capacity");
  }
  if (data.size() > geometry_.page_size) {
    return Status::InvalidArgument("data larger than page");
  }
  if (programmed_[page]) {
    return Status::FailedPrecondition(
        "page " + std::to_string(page) +
        " already programmed since last erase (NAND forbids in-place "
        "update)");
  }
  ++stats_.page_programs;
  obs_.programs->Add(1);
  obs_.program_us->Record(cost_model_.program_page_us);
  programmed_[page] = 1;
  uint8_t* dst =
      data_.data() + static_cast<uint64_t>(page) * geometry_.page_size;
  std::memcpy(dst, data.data(), data.size());
  // Remainder of the page stays erased (0xFF).
  return Status::Ok();
}

Status FlashChip::EraseBlock(uint32_t block) {
  if (block >= geometry_.block_count) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " beyond chip capacity");
  }
  ++stats_.block_erases;
  obs_.erases->Add(1);
  obs_.erase_us->Record(cost_model_.erase_block_us);
  ++wear_[block];
  uint32_t first_page = block * geometry_.pages_per_block;
  uint8_t* dst =
      data_.data() + static_cast<uint64_t>(first_page) * geometry_.page_size;
  std::memset(dst, 0xFF,
              static_cast<size_t>(geometry_.pages_per_block) *
                  geometry_.page_size);
  std::fill(programmed_.begin() + first_page,
            programmed_.begin() + first_page + geometry_.pages_per_block, 0);
  return Status::Ok();
}

bool FlashChip::IsProgrammed(uint32_t page) const {
  if (page >= geometry_.total_pages()) {
    return false;
  }
  return programmed_[page] != 0;
}

Status FlashChip::CorruptBit(uint32_t page, uint32_t bit_offset) {
  if (page >= geometry_.total_pages() ||
      bit_offset >= geometry_.page_size * 8) {
    return Status::OutOfRange("corruption target out of range");
  }
  uint64_t byte = static_cast<uint64_t>(page) * geometry_.page_size +
                  bit_offset / 8;
  data_[byte] ^= static_cast<uint8_t>(1u << (bit_offset % 8));
  return Status::Ok();
}

Status FlashChip::MarkBadPage(uint32_t page) {
  if (page >= geometry_.total_pages()) {
    return Status::OutOfRange("page beyond chip capacity");
  }
  bad_[page] = 1;
  return Status::Ok();
}

uint32_t FlashChip::MaxWear() const {
  uint32_t max = 0;
  for (uint32_t w : wear_) {
    max = std::max(max, w);
  }
  return max;
}

Partition::Partition(FlashChip* chip, uint32_t first_block,
                     uint32_t num_blocks)
    : chip_(chip), first_block_(first_block), num_blocks_(num_blocks) {}

Status Partition::CheckPage(uint32_t local_page) const {
  if (chip_ == nullptr) {
    return Status::FailedPrecondition("partition not initialized");
  }
  if (local_page >= num_pages()) {
    return Status::OutOfRange("local page " + std::to_string(local_page) +
                              " beyond partition of " +
                              std::to_string(num_pages()) + " pages");
  }
  return Status::Ok();
}

Status Partition::ReadPage(uint32_t local_page, Bytes* out) {
  PDS_RETURN_IF_ERROR(CheckPage(local_page));
  return chip_->ReadPage(first_block_ * pages_per_block() + local_page, out);
}

Status Partition::ProgramPage(uint32_t local_page, ByteView data) {
  PDS_RETURN_IF_ERROR(CheckPage(local_page));
  return chip_->ProgramPage(first_block_ * pages_per_block() + local_page,
                            data);
}

Status Partition::EraseBlock(uint32_t local_block) {
  if (chip_ == nullptr) {
    return Status::FailedPrecondition("partition not initialized");
  }
  if (local_block >= num_blocks_) {
    return Status::OutOfRange("local block beyond partition");
  }
  return chip_->EraseBlock(first_block_ + local_block);
}

Status Partition::EraseAll() {
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    PDS_RETURN_IF_ERROR(EraseBlock(b));
  }
  return Status::Ok();
}

Result<Partition> PartitionAllocator::Allocate(uint32_t num_blocks) {
  if (num_blocks == 0) {
    return Status::InvalidArgument("cannot allocate empty partition");
  }
  // First fit from the free list, splitting surplus blocks back.
  for (size_t i = 0; i < free_list_.size(); ++i) {
    FreeRange& range = free_list_[i];
    if (range.num_blocks >= num_blocks) {
      Partition p(chip_, range.first_block, num_blocks);
      range.first_block += num_blocks;
      range.num_blocks -= num_blocks;
      freed_blocks_ -= num_blocks;
      if (range.num_blocks == 0) {
        free_list_.erase(free_list_.begin() + static_cast<long>(i));
      }
      return p;
    }
  }
  if (next_block_ + num_blocks > chip_->geometry().block_count) {
    return Status::ResourceExhausted(
        "flash chip full: requested " + std::to_string(num_blocks) +
        " blocks, free " + std::to_string(blocks_free()));
  }
  Partition p(chip_, next_block_, num_blocks);
  next_block_ += num_blocks;
  return p;
}

Status PartitionAllocator::Free(const Partition& partition) {
  if (!partition.valid() || partition.chip() != chip_) {
    return Status::InvalidArgument("partition not from this allocator");
  }
  // Erase the blocks so the next owner starts clean.
  for (uint32_t b = 0; b < partition.num_blocks(); ++b) {
    PDS_RETURN_IF_ERROR(chip_->EraseBlock(partition.first_block() + b));
  }
  free_list_.push_back({partition.first_block(), partition.num_blocks()});
  freed_blocks_ += partition.num_blocks();
  return Status::Ok();
}

}  // namespace pds::flash
