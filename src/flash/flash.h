#ifndef PDS_FLASH_FLASH_H_
#define PDS_FLASH_FLASH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/obs.h"

namespace pds::flash {

/// Physical layout of a NAND flash chip.
///
/// NAND is written by *page* and erased by *block* (a block is a contiguous
/// group of pages). A page can be programmed only once between two erases of
/// its block — the simulator enforces this, so data structures that rely on
/// in-place updates fail loudly.
struct Geometry {
  uint32_t page_size = 2048;      // bytes per page
  uint32_t pages_per_block = 64;  // pages per erase block
  uint32_t block_count = 1024;    // number of erase blocks

  uint32_t total_pages() const { return pages_per_block * block_count; }
  uint64_t total_bytes() const {
    return static_cast<uint64_t>(total_pages()) * page_size;
  }
};

/// Latency model, defaults from typical SLC NAND datasheets.
struct CostModel {
  double read_page_us = 25.0;
  double program_page_us = 250.0;
  double erase_block_us = 1500.0;
};

/// Operation counters. `TimeUs` converts counts into simulated time under a
/// CostModel; benchmarks report both raw counts and simulated time.
struct Stats {
  uint64_t page_reads = 0;
  uint64_t page_programs = 0;
  uint64_t block_erases = 0;

  double TimeUs(const CostModel& cost) const {
    return static_cast<double>(page_reads) * cost.read_page_us +
           static_cast<double>(page_programs) * cost.program_page_us +
           static_cast<double>(block_erases) * cost.erase_block_us;
  }

  Stats operator-(const Stats& other) const {
    return Stats{page_reads - other.page_reads,
                 page_programs - other.page_programs,
                 block_erases - other.block_erases};
  }

  std::string ToString() const;
};

/// Drift guard for Stats: ResetStats() (zero-init), operator-, ToString(),
/// and the obs counter emission in flash.cc must cover every field. The
/// flash_test field-count test destructures Stats with structured bindings
/// of exactly this arity, so adding a field without updating every consumer
/// fails to compile; this assert additionally catches padding/type drift.
static_assert(sizeof(Stats) == 3 * sizeof(uint64_t),
              "flash::Stats fields changed: update ResetStats/operator-/"
              "ToString, the obs counters in flash.cc, and the "
              "FlashStats.FieldCountGuard test in flash_test.cc");

/// In-memory NAND flash chip simulator with write-once-per-erase semantics
/// and per-block wear counters.
class FlashChip {
 public:
  explicit FlashChip(const Geometry& geometry);

  FlashChip(const FlashChip&) = delete;
  FlashChip& operator=(const FlashChip&) = delete;

  const Geometry& geometry() const { return geometry_; }

  /// Reads one full page into `out` (resized to page_size). Reading an
  /// erased page yields 0xFF bytes, as on real NAND.
  [[nodiscard]] Status ReadPage(uint32_t page, Bytes* out);

  /// Programs a page. Fails with FailedPrecondition if the page was already
  /// programmed since the last erase of its block (random in-place writes
  /// are physically impossible on NAND). `data` may be shorter than the
  /// page; the remainder stays 0xFF.
  [[nodiscard]] Status ProgramPage(uint32_t page, ByteView data);

  /// Erases a whole block, resetting all its pages to 0xFF.
  [[nodiscard]] Status EraseBlock(uint32_t block);

  bool IsProgrammed(uint32_t page) const;

  /// Erase count of a block (wear).
  uint32_t WearOf(uint32_t block) const { return wear_[block]; }
  uint32_t MaxWear() const;

  /// Fault injection (testing): flips one stored bit, as a retention error
  /// or disturbed cell would. Does not touch the stats.
  [[nodiscard]] Status CorruptBit(uint32_t page, uint32_t bit_offset);
  /// Fault injection (testing): the page fails with IoError on every
  /// subsequent read (a worn-out or unreadable page).
  [[nodiscard]] Status MarkBadPage(uint32_t page);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Cost model used for the obs latency metrics (`flash.read_us` etc.);
  /// simulated time stays a pure function of Stats, this only feeds the
  /// per-op histograms.
  void set_cost_model(const CostModel& cost) { cost_model_ = cost; }
  const CostModel& cost_model() const { return cost_model_; }

 private:
  /// Process-wide obs metrics (aggregated over all chips), resolved once at
  /// construction so per-op emission is a single atomic add.
  struct ObsHooks {
    obs::Counter* reads = nullptr;
    obs::Counter* programs = nullptr;
    obs::Counter* erases = nullptr;
    obs::Histogram* read_us = nullptr;
    obs::Histogram* program_us = nullptr;
    obs::Histogram* erase_us = nullptr;
  };

  Geometry geometry_;
  CostModel cost_model_;
  Bytes data_;                     // flat page_size * total_pages bytes
  std::vector<uint8_t> programmed_;  // one flag per page
  std::vector<uint8_t> bad_;       // fault-injected unreadable pages
  std::vector<uint32_t> wear_;     // erase count per block
  Stats stats_;
  ObsHooks obs_;
};

/// A contiguous range of blocks of a chip, exposed with block/page indices
/// local to the partition. Every on-flash structure (table heap, index log,
/// inverted-index buckets...) owns one partition, which makes allocation and
/// whole-structure deallocation block-grained — exactly the "allocate and
/// de-allocate on large grains" rule from the tutorial.
class Partition {
 public:
  Partition() : chip_(nullptr), first_block_(0), num_blocks_(0) {}
  Partition(FlashChip* chip, uint32_t first_block, uint32_t num_blocks);

  FlashChip* chip() const { return chip_; }
  uint32_t first_block() const { return first_block_; }
  uint32_t num_blocks() const { return num_blocks_; }
  uint32_t pages_per_block() const {
    return chip_->geometry().pages_per_block;
  }
  uint32_t page_size() const { return chip_->geometry().page_size; }
  uint32_t num_pages() const { return num_blocks_ * pages_per_block(); }

  [[nodiscard]] Status ReadPage(uint32_t local_page, Bytes* out);
  [[nodiscard]] Status ProgramPage(uint32_t local_page, ByteView data);
  [[nodiscard]] Status EraseBlock(uint32_t local_block);
  /// Erases every block in the partition.
  [[nodiscard]] Status EraseAll();

  bool valid() const { return chip_ != nullptr; }

 private:
  [[nodiscard]] Status CheckPage(uint32_t local_page) const;

  FlashChip* chip_;
  uint32_t first_block_;
  uint32_t num_blocks_;
};

/// Hands out disjoint partitions of a chip, front to back, with a free
/// list for whole-partition reclamation — the tutorial's "allocation &
/// de-allocation are made on large grains (Flash block basis)".
class PartitionAllocator {
 public:
  explicit PartitionAllocator(FlashChip* chip) : chip_(chip) {}

  const Geometry& geometry() const { return chip_->geometry(); }

  /// Allocates `num_blocks` blocks — reusing a freed range when one is
  /// large enough (first fit, split on surplus), else fresh blocks — and
  /// fails with ResourceExhausted when the chip is full.
  [[nodiscard]] Result<Partition> Allocate(uint32_t num_blocks);

  /// Returns a partition's blocks to the allocator (erasing them). The
  /// caller must no longer use the partition or structures built on it.
  [[nodiscard]] Status Free(const Partition& partition);

  uint32_t blocks_used() const { return next_block_ - freed_blocks_; }
  uint32_t blocks_free() const {
    return chip_->geometry().block_count - next_block_ + freed_blocks_;
  }

 private:
  struct FreeRange {
    uint32_t first_block;
    uint32_t num_blocks;
  };

  FlashChip* chip_;
  uint32_t next_block_ = 0;
  uint32_t freed_blocks_ = 0;
  std::vector<FreeRange> free_list_;
};

}  // namespace pds::flash

#endif  // PDS_FLASH_FLASH_H_
