#include "workloads/census.h"

#include "common/rng.h"

namespace pds::workloads {

std::vector<anon::Record> GenerateCensus(const CensusConfig& config) {
  Rng rng(config.seed);
  ZipfSampler diagnosis_sampler(config.num_diagnoses, 0.8,
                                config.seed ^ 0xD15EA5E);
  std::vector<anon::Record> records;
  records.reserve(config.num_records);
  for (uint64_t i = 0; i < config.num_records; ++i) {
    anon::Record r;
    // Age: sum of three uniforms in [6, 30] -> bell-ish in [18, 90].
    uint64_t age = 6 + rng.Uniform(25) + rng.Uniform(25) + rng.Uniform(25);
    // Zip: region prefix (2 digits) + local part (3 digits).
    uint64_t region = rng.Uniform(config.num_regions);
    uint64_t local = rng.Uniform(1000);
    char zip[6];
    std::snprintf(zip, sizeof(zip), "%02u%03u",
                  static_cast<unsigned>(10 + region),
                  static_cast<unsigned>(local));
    r.quasi_identifiers = {std::to_string(age), zip};
    r.sensitive = "diag-" + std::to_string(diagnosis_sampler.Sample());
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<std::unique_ptr<anon::Hierarchy>> CensusHierarchies() {
  std::vector<std::unique_ptr<anon::Hierarchy>> out;
  out.push_back(std::make_unique<anon::NumericHierarchy>(/*base_width=*/5,
                                                         /*levels=*/4));
  out.push_back(std::make_unique<anon::PrefixHierarchy>(/*max_suffix=*/5));
  return out;
}

}  // namespace pds::workloads
