#include "workloads/tpcd.h"

#include "common/rng.h"

namespace pds::workloads {

using embdb::Column;
using embdb::ColumnType;
using embdb::Schema;
using embdb::SpjQuery;
using embdb::Tuple;
using embdb::Value;

std::string SegmentName(uint32_t s) {
  return s == 0 ? "HOUSEHOLD" : "SEGMENT-" + std::to_string(s);
}

std::string SupplierName(uint64_t s) {
  return "SUPPLIER-" + std::to_string(s);
}

Result<TpcdInstance> LoadTpcd(embdb::Database* db,
                              const TpcdConfig& config) {
  Schema supplier("supplier", {{"suppkey", ColumnType::kUint64, ""},
                               {"name", ColumnType::kString, ""},
                               {"nation", ColumnType::kString, ""}});
  Schema customer("customer", {{"custkey", ColumnType::kUint64, ""},
                               {"name", ColumnType::kString, ""},
                               {"mktsegment", ColumnType::kString, ""}});
  Schema orders("orders", {{"orderkey", ColumnType::kUint64, ""},
                           {"cust_fk", ColumnType::kUint64, "customer"},
                           {"orderstatus", ColumnType::kString, ""}});
  Schema partsupp("partsupp", {{"pskey", ColumnType::kUint64, ""},
                               {"supp_fk", ColumnType::kUint64, "supplier"},
                               {"availqty", ColumnType::kUint64, ""}});
  Schema lineitem("lineitem", {{"linekey", ColumnType::kUint64, ""},
                               {"order_fk", ColumnType::kUint64, "orders"},
                               {"ps_fk", ColumnType::kUint64, "partsupp"},
                               {"quantity", ColumnType::kUint64, ""},
                               {"price", ColumnType::kDouble, ""}});

  for (const Schema& s :
       {supplier, customer, orders, partsupp, lineitem}) {
    PDS_RETURN_IF_ERROR(db->CreateTable(s, config.table_options));
  }

  Rng rng(config.seed);

  for (uint64_t i = 0; i < config.num_suppliers; ++i) {
    Tuple t = {Value::U64(i), Value::Str(SupplierName(i)),
               Value::Str("NATION-" + std::to_string(i % 7))};
    PDS_RETURN_IF_ERROR(db->Insert("supplier", t).status());
  }
  for (uint64_t i = 0; i < config.num_customers; ++i) {
    Tuple t = {Value::U64(i),
               Value::Str("CUSTOMER-" + std::to_string(i)),
               Value::Str(SegmentName(static_cast<uint32_t>(
                   rng.Uniform(config.num_segments))))};
    PDS_RETURN_IF_ERROR(db->Insert("customer", t).status());
  }
  for (uint64_t i = 0; i < config.num_orders; ++i) {
    Tuple t = {Value::U64(i), Value::U64(rng.Uniform(config.num_customers)),
               Value::Str(rng.Bernoulli(0.5) ? "OPEN" : "SHIPPED")};
    PDS_RETURN_IF_ERROR(db->Insert("orders", t).status());
  }
  for (uint64_t i = 0; i < config.num_partsupps; ++i) {
    Tuple t = {Value::U64(i), Value::U64(rng.Uniform(config.num_suppliers)),
               Value::U64(rng.Uniform(10000))};
    PDS_RETURN_IF_ERROR(db->Insert("partsupp", t).status());
  }
  for (uint64_t i = 0; i < config.num_lineitems; ++i) {
    Tuple t = {Value::U64(i), Value::U64(rng.Uniform(config.num_orders)),
               Value::U64(rng.Uniform(config.num_partsupps)),
               Value::U64(1 + rng.Uniform(50)),
               Value::F64(static_cast<double>(rng.Uniform(100000)) / 100.0)};
    PDS_RETURN_IF_ERROR(db->Insert("lineitem", t).status());
  }

  TpcdInstance inst;
  inst.lineitem = db->table("lineitem");
  inst.orders = db->table("orders");
  inst.customer = db->table("customer");
  inst.partsupp = db->table("partsupp");
  inst.supplier = db->table("supplier");

  inst.path.root = inst.lineitem;
  // Node order must match TpcdNode. fk columns are indices in the parent's
  // schema: lineitem.order_fk = 1, orders.cust_fk = 1, lineitem.ps_fk = 2,
  // partsupp.supp_fk = 1.
  inst.path.nodes = {
      {inst.orders, -1, 1},                 // kOrders <- lineitem.order_fk
      {inst.customer, TpcdNode::kOrders, 1},  // kCustomer <- orders.cust_fk
      {inst.partsupp, -1, 2},               // kPartsupp <- lineitem.ps_fk
      {inst.supplier, TpcdNode::kPartsupp, 1},  // kSupplier <- partsupp.supp_fk
  };
  return inst;
}

SpjQuery TutorialQuery(uint32_t segment, uint64_t supplier) {
  SpjQuery query;
  // customer.mktsegment = SEGMENT, supplier.name = SUPPLIER-i.
  query.selections = {
      {TpcdNode::kCustomer, 2, Value::Str(SegmentName(segment))},
      {TpcdNode::kSupplier, 1, Value::Str(SupplierName(supplier))},
  };
  // Project LIN.linekey, LIN.price, ORD.orderkey, CUS.name, SUP.name.
  query.projections = {
      {-1, 0},
      {-1, 4},
      {TpcdNode::kOrders, 0},
      {TpcdNode::kCustomer, 1},
      {TpcdNode::kSupplier, 1},
  };
  return query;
}

}  // namespace pds::workloads
