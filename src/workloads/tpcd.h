#ifndef PDS_WORKLOADS_TPCD_H_
#define PDS_WORKLOADS_TPCD_H_

#include <cstdint>

#include "common/result.h"
#include "embdb/database.h"
#include "embdb/executor.h"
#include "embdb/join_index.h"

namespace pds::workloads {

/// TPC-D-like mini schema, mirroring the tutorial's SPJ example:
///
///   SELECT CUS.*, ORD.*, LIN.*, PS.*
///   FROM CUSTOMER CUS, ORDERS ORD, LINEITEM LIN, PARTSUPP PS, SUPPLIER SUP
///   WHERE LIN -> ORD -> CUS and LIN -> PS -> SUP
///     AND CUS.mktsegment = 'HOUSEHOLD' AND SUP.name = 'SUPPLIER-1'
///
/// LINEITEM is the query-root table; ORDERS/CUSTOMER and PARTSUPP/SUPPLIER
/// are the two reference branches. Foreign keys are surrogate rowids.
struct TpcdConfig {
  uint64_t num_suppliers = 10;
  uint64_t num_customers = 50;
  uint64_t num_orders = 200;      // each referencing a customer
  uint64_t num_partsupps = 100;   // each referencing a supplier
  uint64_t num_lineitems = 1000;  // each referencing an order + a partsupp
  uint64_t seed = 42;

  /// Number of distinct market segments (selectivity knob).
  uint32_t num_segments = 5;

  embdb::Database::TableOptions table_options;
};

/// Node order in the JoinPath (and thus in Tjoin records).
enum TpcdNode : int {
  kOrders = 0,
  kCustomer = 1,
  kPartsupp = 2,
  kSupplier = 3,
};

/// The loaded database plus the join path rooted at LINEITEM.
struct TpcdInstance {
  embdb::JoinPath path;

  embdb::TableHeap* lineitem = nullptr;
  embdb::TableHeap* orders = nullptr;
  embdb::TableHeap* customer = nullptr;
  embdb::TableHeap* partsupp = nullptr;
  embdb::TableHeap* supplier = nullptr;
};

/// Creates the five tables in `db` and loads deterministic data.
Result<TpcdInstance> LoadTpcd(embdb::Database* db, const TpcdConfig& config);

/// The segment string for segment index s ("SEGMENT-s"; the tutorial's
/// HOUSEHOLD is segment 0).
std::string SegmentName(uint32_t s);
std::string SupplierName(uint64_t s);

/// The tutorial's query: selections on CUSTOMER.mktsegment and
/// SUPPLIER.name, projecting order/customer/supplier identifiers + price.
embdb::SpjQuery TutorialQuery(uint32_t segment, uint64_t supplier);

}  // namespace pds::workloads

#endif  // PDS_WORKLOADS_TPCD_H_
