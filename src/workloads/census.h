#ifndef PDS_WORKLOADS_CENSUS_H_
#define PDS_WORKLOADS_CENSUS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "anon/hierarchy.h"
#include "anon/kanonymity.h"

namespace pds::workloads {

/// Census-like microdata for the PPDP experiments: quasi-identifiers
/// (age, zipcode) and a sensitive attribute (diagnosis). Ages are
/// normal-ish via summed uniforms; zipcodes cluster by region; diagnoses
/// are Zipf-distributed.
struct CensusConfig {
  uint64_t num_records = 1000;
  uint32_t num_regions = 10;
  uint32_t num_diagnoses = 20;
  uint64_t seed = 7;
};

std::vector<anon::Record> GenerateCensus(const CensusConfig& config);

/// The matching hierarchies: age ranges (width 5 doubling, 4 levels) and
/// zip prefix masking (5 digits).
std::vector<std::unique_ptr<anon::Hierarchy>> CensusHierarchies();

}  // namespace pds::workloads

#endif  // PDS_WORKLOADS_CENSUS_H_
