#include "embdb/executor.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <unordered_map>

#include "obs/obs.h"

namespace pds::embdb {

uint64_t QueryProfile::total_page_reads() const {
  uint64_t total = 0;
  for (const StageProfile& stage : stages) {
    total += stage.flash.page_reads;
  }
  return total;
}

std::string QueryProfile::ToString() const {
  std::ostringstream out;
  out << std::left << std::setw(12) << "stage" << std::right << std::setw(9)
      << "rows_in" << std::setw(10) << "rows_out" << std::setw(12)
      << "page_reads" << std::setw(16) << "ram_peak_bytes" << "\n";
  for (const StageProfile& stage : stages) {
    out << std::left << std::setw(12) << stage.op << std::right
        << std::setw(9) << stage.rows_in << std::setw(10) << stage.rows_out
        << std::setw(12) << stage.flash.page_reads << std::setw(16)
        << stage.ram_peak_bytes << "\n";
  }
  return out.str();
}

bool Predicate::Eval(const Tuple& tuple) const {
  if (column < 0 || static_cast<size_t>(column) >= tuple.size()) {
    return false;
  }
  int cmp = Value::Compare(tuple[static_cast<size_t>(column)], constant);
  switch (op) {
    case Op::kEq:
      return cmp == 0;
    case Op::kNe:
      return cmp != 0;
    case Op::kLt:
      return cmp < 0;
    case Op::kLe:
      return cmp <= 0;
    case Op::kGt:
      return cmp > 0;
    case Op::kGe:
      return cmp >= 0;
  }
  return false;
}

Status ScanFilter(TableHeap* table, const std::vector<Predicate>& predicates,
                  const std::function<Status(uint64_t, const Tuple&)>& emit) {
  TableHeap::Scanner scanner = table->NewScanner();
  uint64_t rowid = 0;
  Tuple tuple;
  while (!scanner.AtEnd()) {
    Status next = scanner.Next(&rowid, &tuple);
    if (next.code() == StatusCode::kOutOfRange) {
      break;  // only tombstoned rows remained
    }
    PDS_RETURN_IF_ERROR(next);
    bool pass = true;
    for (const Predicate& p : predicates) {
      if (!p.Eval(tuple)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      PDS_RETURN_IF_ERROR(emit(rowid, tuple));
    }
  }
  return Status::Ok();
}

std::vector<uint64_t> IntersectSorted(
    const std::vector<std::vector<uint64_t>>& lists) {
  if (lists.empty()) {
    return {};
  }
  std::vector<uint64_t> acc = lists[0];
  for (size_t i = 1; i < lists.size(); ++i) {
    std::vector<uint64_t> next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc = std::move(next);
  }
  return acc;
}

namespace {

/// Appends the projected columns of one logical joined row.
Status ProjectRow(const SpjQuery& query, const Tuple& root_tuple,
                  const std::function<Result<const Tuple*>(int)>& node_tuple,
                  Tuple* out) {
  out->clear();
  out->reserve(query.projections.size());
  for (const SpjQuery::Projection& proj : query.projections) {
    const Tuple* source = nullptr;
    if (proj.node < 0) {
      source = &root_tuple;
    } else {
      Result<const Tuple*> fetched = node_tuple(proj.node);
      if (!fetched.ok()) {
        return fetched.status();
      }
      source = *fetched;
    }
    if (proj.column < 0 ||
        static_cast<size_t>(proj.column) >= source->size()) {
      return Status::InvalidArgument("projection column out of range");
    }
    out->push_back((*source)[static_cast<size_t>(proj.column)]);
  }
  return Status::Ok();
}

}  // namespace

Status SpjExecutor::Execute(const SpjQuery& query,
                            const std::function<Status(const Tuple&)>& emit,
                            SpjStats* stats) {
  return Execute(query, emit, stats, nullptr);
}

Status SpjExecutor::Execute(const SpjQuery& query,
                            const std::function<Status(const Tuple&)>& emit,
                            SpjStats* stats, QueryProfile* profile) {
  obs::Span query_span("embdb.spj", "embdb");
  if (stats != nullptr) {
    *stats = SpjStats();
  }
  if (profile != nullptr) {
    profile->stages.clear();
    profile->stages.reserve(3);
  }
  if (tselects_.size() != query.selections.size()) {
    return Status::InvalidArgument(
        "one Tselect index required per selection");
  }

  // Stage profiling: each stage snapshots the chip's cumulative stats at
  // entry and stores the delta at exit; stages are contiguous, so the
  // deltas sum exactly to the chip delta across the whole call.
  flash::FlashChip* chip = path_.root->chip();
  auto chip_stats = [&]() -> flash::Stats {
    return chip != nullptr ? chip->stats() : flash::Stats();
  };
  auto begin_stage = [&](const char* op, uint64_t rows_in) -> StageProfile* {
    if (profile == nullptr) {
      return nullptr;
    }
    profile->stages.emplace_back();
    StageProfile* stage = &profile->stages.back();
    stage->op = op;
    stage->rows_in = rows_in;
    stage->flash = chip_stats();  // entry snapshot, replaced at end_stage
    gauge_->ResetHighWater();
    return stage;
  };
  auto end_stage = [&](StageProfile* stage, uint64_t rows_out) {
    if (stage == nullptr) {
      return;
    }
    stage->rows_out = rows_out;
    stage->flash = chip_stats() - stage->flash;
    stage->ram_peak_bytes = gauge_->high_water();
  };

  // 1. Tselect lookups: sorted root rowid lists (RAM charged).
  std::vector<std::vector<uint64_t>> lists(query.selections.size());
  size_t charged = 0;
  Status status = Status::Ok();
  uint64_t rowids_fetched = 0;
  {
    obs::Span stage_span("embdb.tselect", "embdb");
    StageProfile* stage = begin_stage("tselect", query.selections.size());
    for (size_t i = 0; i < query.selections.size() && status.ok(); ++i) {
      status = tselects_[i]->Lookup(query.selections[i].constant, &lists[i],
                                    nullptr);
      if (status.ok()) {
        size_t bytes = lists[i].size() * sizeof(uint64_t);
        status = gauge_->Acquire(bytes);
        if (status.ok()) {
          charged += bytes;
        }
      }
      if (status.ok()) {
        rowids_fetched += lists[i].size();
        if (stats != nullptr) {
          stats->rowids_from_indexes += lists[i].size();
        }
      }
    }
    end_stage(stage, rowids_fetched);
    stage_span.AddArg("rowids", static_cast<double>(rowids_fetched));
  }

  std::vector<uint64_t> survivors;
  if (status.ok()) {
    // 2. Pipeline merge on sorted rowids.
    obs::Span stage_span("embdb.merge", "embdb");
    StageProfile* stage = begin_stage("merge", rowids_fetched);
    survivors = IntersectSorted(lists);
    end_stage(stage, survivors.size());
    stage_span.AddArg("survivors", static_cast<double>(survivors.size()));
  }

  // 3. Tjoin traversal + tuple fetches, one root row at a time.
  if (status.ok()) {
    obs::Span stage_span("embdb.join_fetch", "embdb");
    StageProfile* stage = begin_stage("join-fetch", survivors.size());
    uint64_t emitted = 0;
    std::vector<uint64_t> node_rowids;
    std::vector<Tuple> node_tuples(path_.nodes.size());
    std::vector<bool> node_loaded(path_.nodes.size(), false);
    Tuple root_tuple, projected;
    for (uint64_t rowid : survivors) {
      status = tjoin_->Lookup(rowid, &node_rowids);
      if (!status.ok()) {
        break;
      }
      Result<Tuple> root = path_.root->Get(rowid);
      if (!root.ok()) {
        status = root.status();
        break;
      }
      root_tuple = std::move(root).value();
      std::fill(node_loaded.begin(), node_loaded.end(), false);

      auto node_tuple = [&](int node) -> Result<const Tuple*> {
        size_t n = static_cast<size_t>(node);
        if (!node_loaded[n]) {
          PDS_ASSIGN_OR_RETURN(node_tuples[n],
                               path_.nodes[n].table->Get(node_rowids[n]));
          node_loaded[n] = true;
        }
        return const_cast<const Tuple*>(&node_tuples[n]);
      };

      status = ProjectRow(query, root_tuple, node_tuple, &projected);
      if (!status.ok()) {
        break;
      }
      status = emit(projected);
      if (!status.ok()) {
        break;
      }
      ++emitted;
      if (stats != nullptr) {
        ++stats->result_rows;
      }
    }
    end_stage(stage, emitted);
    stage_span.AddArg("rows", static_cast<double>(emitted));
  }

  gauge_->Release(charged);
  query_span.AddArg("selections",
                    static_cast<double>(query.selections.size()));
  return status;
}

Status NaiveHashJoinSpj::Execute(
    const SpjQuery& query, const std::function<Status(const Tuple&)>& emit,
    SpjStats* stats) {
  if (stats != nullptr) {
    *stats = SpjStats();
  }

  // Materialize every non-root table into RAM, charging the gauge for the
  // encoded size of each tuple (this is what blows the MCU budget).
  std::vector<std::unordered_map<uint64_t, Tuple>> tables(
      path_.nodes.size());
  size_t charged = 0;
  Status status = Status::Ok();

  for (size_t n = 0; n < path_.nodes.size() && status.ok(); ++n) {
    TableHeap* heap = path_.nodes[n].table;
    TableHeap::Scanner scanner = heap->NewScanner();
    uint64_t rowid = 0;
    Tuple tuple;
    std::vector<ColumnType> types = heap->schema().ColumnTypes();
    while (!scanner.AtEnd()) {
      status = scanner.Next(&rowid, &tuple);
      if (status.code() == StatusCode::kOutOfRange) {
        status = Status::Ok();
        break;  // only tombstoned rows remained
      }
      if (!status.ok()) {
        break;
      }
      Bytes encoded;
      EncodeTuple(types, tuple, &encoded);
      size_t bytes = encoded.size() + sizeof(uint64_t) + 16;  // map overhead
      status = gauge_->Acquire(bytes);
      if (!status.ok()) {
        break;
      }
      charged += bytes;
      tables[n].emplace(rowid, tuple);
    }
  }

  if (status.ok()) {
    // Scan the root and probe the RAM hash tables.
    TableHeap::Scanner scanner = path_.root->NewScanner();
    uint64_t rowid = 0;
    Tuple root_tuple, projected;
    std::vector<uint64_t> node_rowids;
    while (!scanner.AtEnd() && status.ok()) {
      status = scanner.Next(&rowid, &root_tuple);
      if (status.code() == StatusCode::kOutOfRange) {
        status = Status::Ok();
        break;  // only tombstoned rows remained
      }
      if (!status.ok()) {
        break;
      }
      status = path_.ResolveRowidsFromRam(root_tuple, tables, &node_rowids);
      if (!status.ok()) {
        break;
      }

      bool pass = true;
      for (const SpjQuery::Selection& sel : query.selections) {
        const Tuple* t = nullptr;
        if (sel.node < 0) {
          t = &root_tuple;
        } else {
          auto it = tables[static_cast<size_t>(sel.node)].find(
              node_rowids[static_cast<size_t>(sel.node)]);
          if (it == tables[static_cast<size_t>(sel.node)].end()) {
            pass = false;
            break;
          }
          t = &it->second;
        }
        if (Value::Compare((*t)[static_cast<size_t>(sel.column)],
                           sel.constant) != 0) {
          pass = false;
          break;
        }
      }
      if (!pass) {
        continue;
      }

      auto node_tuple = [&](int node) -> Result<const Tuple*> {
        auto it = tables[static_cast<size_t>(node)].find(
            node_rowids[static_cast<size_t>(node)]);
        if (it == tables[static_cast<size_t>(node)].end()) {
          return Status::NotFound("dangling fk in naive join");
        }
        return const_cast<const Tuple*>(&it->second);
      };
      status = ProjectRow(query, root_tuple, node_tuple, &projected);
      if (status.ok()) {
        status = emit(projected);
        if (status.ok() && stats != nullptr) {
          ++stats->result_rows;
        }
      }
    }
  }

  gauge_->Release(charged);
  return status;
}

Aggregator::~Aggregator() { gauge_->Release(charged_); }

Status Aggregator::Add(const Value& group, double value) {
  auto [it, inserted] = groups_.try_emplace(group);
  if (inserted) {
    size_t bytes = sizeof(State) + 48;  // map node + key estimate
    Status status = gauge_->Acquire(bytes);
    if (!status.ok()) {
      groups_.erase(it);
      return status;
    }
    charged_ += bytes;
    it->second.min = value;
    it->second.max = value;
  }
  State& s = it->second;
  s.sum += value;
  s.min = std::min(s.min, value);
  s.max = std::max(s.max, value);
  ++s.count;
  return Status::Ok();
}

std::vector<Aggregator::GroupResult> Aggregator::Finish() {
  std::vector<GroupResult> out;
  out.reserve(groups_.size());
  for (const auto& [group, s] : groups_) {
    GroupResult r;
    r.group = group;
    r.count = s.count;
    switch (func_) {
      case Func::kCount:
        r.value = static_cast<double>(s.count);
        break;
      case Func::kSum:
        r.value = s.sum;
        break;
      case Func::kAvg:
        r.value = s.count == 0 ? 0 : s.sum / static_cast<double>(s.count);
        break;
      case Func::kMin:
        r.value = s.min;
        break;
      case Func::kMax:
        r.value = s.max;
        break;
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace pds::embdb
