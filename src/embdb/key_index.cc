#include "embdb/key_index.h"

#include <cstring>

namespace pds::embdb {

KeyLogIndex::KeyLogIndex(flash::Partition keys_partition,
                         flash::Partition bloom_partition,
                         mcu::RamGauge* gauge, const Options& options)
    : keys_log_(keys_partition),
      bloom_log_(bloom_partition),
      gauge_(gauge),
      options_(options) {
  size_t epp = entries_per_page();
  size_t filter_bits = static_cast<size_t>(
      static_cast<double>(epp) * options_.bits_per_key);
  filter_bytes_ = (filter_bits + 7) / 8;
  if (filter_bytes_ == 0) {
    filter_bytes_ = 1;
  }
  num_probes_ = BloomFilter::OptimalProbes(options_.bits_per_key);
}

KeyLogIndex::~KeyLogIndex() {
  if (charged_ram_ > 0) {
    gauge_->Release(charged_ram_);
  }
}

Status KeyLogIndex::Init() {
  if (initialized_) {
    return Status::FailedPrecondition("index already initialized");
  }
  if (filter_bytes_ > bloom_log_.page_size()) {
    return Status::InvalidArgument(
        "bloom filter larger than a flash page; lower bits_per_key");
  }
  size_t ram = keys_log_.page_size()   // open keys page
               + bloom_log_.page_size()  // open bloom page
               + filter_bytes_;          // open filter
  PDS_RETURN_IF_ERROR(gauge_->Acquire(ram));
  charged_ram_ = ram;
  open_filter_ = std::make_unique<BloomFilter>(
      static_cast<uint32_t>(filter_bytes_ * 8), num_probes_);
  initialized_ = true;
  return Status::Ok();
}

Status KeyLogIndex::FlushKeysPage() {
  if (keys_buffer_.empty()) {
    return Status::Ok();
  }
  PDS_ASSIGN_OR_RETURN(uint32_t page,
                       keys_log_.AppendPage(ByteView(keys_buffer_)));
  (void)page;
  keys_buffer_.clear();

  // Append the page's filter to the bloom buffer.
  const Bytes& filter_bits = open_filter_->bytes();
  bloom_buffer_.insert(bloom_buffer_.end(), filter_bits.begin(),
                       filter_bits.end());
  open_filter_ = std::make_unique<BloomFilter>(
      static_cast<uint32_t>(filter_bytes_ * 8), num_probes_);

  if (bloom_buffer_.size() + filter_bytes_ > bloom_log_.page_size()) {
    PDS_ASSIGN_OR_RETURN(uint32_t bpage,
                         bloom_log_.AppendPage(ByteView(bloom_buffer_)));
    (void)bpage;
    bloom_buffer_.clear();
  }
  return Status::Ok();
}

Status KeyLogIndex::Insert(const Value& key, uint64_t rowid) {
  if (!initialized_) {
    return Status::FailedPrecondition("index not initialized");
  }
  uint8_t entry[kEntrySize];
  key.EncodeKey(entry);
  EncodeU64BE(entry + Value::kKeyWidth, rowid);

  keys_buffer_.insert(keys_buffer_.end(), entry, entry + kEntrySize);
  open_filter_->Add(ByteView(entry, Value::kKeyWidth));
  ++num_entries_;

  if (keys_buffer_.size() + kEntrySize > keys_log_.page_size()) {
    PDS_RETURN_IF_ERROR(FlushKeysPage());
  }
  return Status::Ok();
}

Status KeyLogIndex::Lookup(const Value& key, std::vector<uint64_t>* rowids,
                           LookupStats* stats) {
  if (!initialized_) {
    return Status::FailedPrecondition("index not initialized");
  }
  rowids->clear();
  *stats = LookupStats();

  uint8_t encoded[Value::kKeyWidth];
  key.EncodeKey(encoded);
  ByteView key_view(encoded, Value::kKeyWidth);

  // Phase 1: summary scan — collect candidate keys pages. The candidate
  // list is data-dependent, so it is charged against the MCU gauge as it
  // grows (a huge false-positive set must fail like any oversized plan).
  std::vector<uint32_t> candidates;
  PDS_ASSIGN_OR_RETURN(mcu::RamCharge candidates_charge,
                       mcu::RamCharge::Make(gauge_, 0));
  uint32_t flushed_key_pages = keys_log_.num_pages();
  uint32_t filter_index = 0;
  Bytes bloom_page;
  const size_t fpp = filters_per_page();
  for (uint32_t bp = 0; bp < bloom_log_.num_pages() &&
                        filter_index < flushed_key_pages;
       ++bp) {
    PDS_RETURN_IF_ERROR(bloom_log_.ReadPage(bp, &bloom_page));
    ++stats->summary_pages;
    for (size_t f = 0; f < fpp && filter_index < flushed_key_pages; ++f) {
      BloomFilter filter(
          ByteView(bloom_page.data() + f * filter_bytes_, filter_bytes_),
          num_probes_);
      if (filter.MayContain(key_view)) {
        PDS_RETURN_IF_ERROR(candidates_charge.Grow(sizeof(uint32_t)));
        candidates.push_back(filter_index);
      }
      ++filter_index;
    }
  }
  // Filters still buffered in RAM (their keys pages are flushed).
  for (size_t off = 0; off + filter_bytes_ <= bloom_buffer_.size() &&
                       filter_index < flushed_key_pages;
       off += filter_bytes_) {
    BloomFilter filter(ByteView(bloom_buffer_.data() + off, filter_bytes_),
                       num_probes_);
    if (filter.MayContain(key_view)) {
      PDS_RETURN_IF_ERROR(candidates_charge.Grow(sizeof(uint32_t)));
      candidates.push_back(filter_index);
    }
    ++filter_index;
  }

  // Phase 2: read candidate keys pages.
  Bytes keys_page;
  for (uint32_t page : candidates) {
    PDS_RETURN_IF_ERROR(keys_log_.ReadPage(page, &keys_page));
    ++stats->key_pages;
    bool hit = false;
    for (size_t off = 0; off + kEntrySize <= keys_page.size();
         off += kEntrySize) {
      if (std::memcmp(keys_page.data() + off, encoded, Value::kKeyWidth) ==
          0) {
        rowids->push_back(GetU64BE(keys_page.data() + off + Value::kKeyWidth));
        ++stats->matches;
        hit = true;
      }
    }
    if (!hit) {
      ++stats->false_positive_pages;
    }
  }

  // Phase 3: the open keys page in RAM (no IO).
  for (size_t off = 0; off + kEntrySize <= keys_buffer_.size();
       off += kEntrySize) {
    if (std::memcmp(keys_buffer_.data() + off, encoded, Value::kKeyWidth) ==
        0) {
      rowids->push_back(GetU64BE(keys_buffer_.data() + off + Value::kKeyWidth));
      ++stats->matches;
    }
  }
  return Status::Ok();
}

Status KeyLogIndex::ScanEntries(
    const std::function<Status(const uint8_t*, uint64_t)>& emit) {
  if (!initialized_) {
    return Status::FailedPrecondition("index not initialized");
  }
  Bytes page;
  for (uint32_t p = 0; p < keys_log_.num_pages(); ++p) {
    PDS_RETURN_IF_ERROR(keys_log_.ReadPage(p, &page));
    for (size_t off = 0; off + kEntrySize <= page.size(); off += kEntrySize) {
      // A fully erased slot (page tail) cannot occur: pages are written with
      // exactly the packed entries, and the page read returns the programmed
      // prefix plus 0xFF padding beyond it — entries_per_page * kEntrySize
      // bounds the loop via page content size below.
      PDS_RETURN_IF_ERROR(
          emit(page.data() + off, GetU64BE(page.data() + off + Value::kKeyWidth)));
    }
  }
  for (size_t off = 0; off + kEntrySize <= keys_buffer_.size();
       off += kEntrySize) {
    PDS_RETURN_IF_ERROR(emit(keys_buffer_.data() + off,
                             GetU64BE(keys_buffer_.data() + off +
                                    Value::kKeyWidth)));
  }
  return Status::Ok();
}

}  // namespace pds::embdb
