#ifndef PDS_EMBDB_BLOOM_H_
#define PDS_EMBDB_BLOOM_H_

#include <cstdint>

#include "common/bytes.h"

namespace pds::embdb {

/// Fixed-size Bloom filter used as the per-page summary of the PBFilter-style
/// key-log index (tutorial: "BF is a probabilistic summary (~2B/key)").
///
/// Probes use double hashing h_i = h1 + i*h2, the standard Kirsch–Mitzenmacher
/// construction.
class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 8. `num_probes` is the number of
  /// hash functions.
  BloomFilter(uint32_t bits, uint32_t num_probes);

  /// Reconstructs a filter from its serialized bytes.
  BloomFilter(ByteView serialized, uint32_t num_probes);

  void Add(ByteView key);
  bool MayContain(ByteView key) const;

  const Bytes& bytes() const { return bits_; }
  uint32_t num_bits() const { return static_cast<uint32_t>(bits_.size() * 8); }
  uint32_t num_probes() const { return num_probes_; }

  /// Suggested probe count for a bits-per-key budget (ln 2 * bits/key).
  static uint32_t OptimalProbes(double bits_per_key);

 private:
  Bytes bits_;
  uint32_t num_probes_;
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_BLOOM_H_
