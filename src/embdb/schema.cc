#include "embdb/schema.h"

namespace pds::embdb {

int Schema::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<ColumnType> Schema::ColumnTypes() const {
  std::vector<ColumnType> types;
  types.reserve(columns_.size());
  for (const Column& c : columns_) {
    types.push_back(c.type);
  }
  return types;
}

Status Schema::Validate(const Tuple& tuple) const {
  if (tuple.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(columns_.size()) + " for table " + name_);
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (tuple[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          "column '" + columns_[i].name + "' expects " +
          std::string(ColumnTypeName(columns_[i].type)) + " but got " +
          std::string(ColumnTypeName(tuple[i].type())));
    }
  }
  return Status::Ok();
}

}  // namespace pds::embdb
