#include "embdb/reorganize.h"

namespace pds::embdb {

Result<TreeIndex> Reorganizer::Reorganize(
    KeyLogIndex* source, flash::PartitionAllocator* allocator,
    mcu::RamGauge* gauge, const Options& options) {
  flash::Partition leaf_part, internal_part;
  PDS_RETURN_IF_ERROR(AllocateTreePartitions(allocator,
                                             source->num_entries(),
                                             &leaf_part, &internal_part));

  // Phase 1: external sort of the key log (temporary sorted-run logs).
  logstore::ExternalSorter::Options sort_opts;
  sort_opts.record_size = KeyLogIndex::kEntrySize;
  sort_opts.ram_budget_bytes = options.sort_ram_bytes;
  logstore::ExternalSorter sorter(allocator, sort_opts, gauge);

  PDS_RETURN_IF_ERROR(
      source->ScanEntries([&](const uint8_t* entry, uint64_t rowid) {
        (void)rowid;
        // `entry` points at the packed 32-byte (key || rowid) record.
        return sorter.Add(ByteView(entry, KeyLogIndex::kEntrySize));
      }));

  // Phase 2: build the key hierarchy bottom-up, written sequentially.
  TreeIndexBuilder builder(leaf_part, internal_part);
  PDS_RETURN_IF_ERROR(sorter.Finish(
      [&](ByteView record) { return builder.Add(record.data()); }));
  return builder.Finish();
}

}  // namespace pds::embdb
