#include "embdb/timeseries.h"

#include <algorithm>
#include <cstring>

namespace pds::embdb {

TimeSeriesStore::TimeSeriesStore(flash::Partition data_partition,
                                 flash::Partition summary_partition,
                                 mcu::RamGauge* gauge)
    : data_log_(data_partition),
      summary_log_(summary_partition),
      gauge_(gauge) {}

TimeSeriesStore::~TimeSeriesStore() {
  if (charged_ram_ > 0) {
    gauge_->Release(charged_ram_);
  }
}

Status TimeSeriesStore::Init() {
  if (initialized_) {
    return Status::FailedPrecondition("already initialized");
  }
  size_t ram = data_log_.page_size() + summary_log_.page_size();
  PDS_RETURN_IF_ERROR(gauge_->Acquire(ram));
  charged_ram_ = ram;
  initialized_ = true;
  return Status::Ok();
}

void TimeSeriesStore::EncodeSummary(const PageSummary& s, uint8_t* out) {
  EncodeU64(out, s.min_ts);
  EncodeU64(out + 8, s.max_ts);
  uint64_t bits;
  std::memcpy(&bits, &s.min_v, 8);
  EncodeU64(out + 16, bits);
  std::memcpy(&bits, &s.max_v, 8);
  EncodeU64(out + 24, bits);
  std::memcpy(&bits, &s.sum_v, 8);
  EncodeU64(out + 32, bits);
  EncodeU64(out + 40, s.count);
}

TimeSeriesStore::PageSummary TimeSeriesStore::DecodeSummary(
    const uint8_t* in) {
  PageSummary s;
  s.min_ts = GetU64(in);
  s.max_ts = GetU64(in + 8);
  uint64_t bits = GetU64(in + 16);
  std::memcpy(&s.min_v, &bits, 8);
  bits = GetU64(in + 24);
  std::memcpy(&s.max_v, &bits, 8);
  bits = GetU64(in + 32);
  std::memcpy(&s.sum_v, &bits, 8);
  s.count = GetU64(in + 40);
  return s;
}

Status TimeSeriesStore::SealOpenPage() {
  if (open_points_ == 0) {
    return Status::Ok();
  }
  PDS_ASSIGN_OR_RETURN(uint32_t page,
                       data_log_.AppendPage(ByteView(open_page_)));
  (void)page;
  open_page_.clear();
  open_points_ = 0;

  uint8_t encoded[kSummarySize];
  EncodeSummary(open_summary_, encoded);
  summary_buffer_.insert(summary_buffer_.end(), encoded,
                         encoded + kSummarySize);
  open_summary_ = PageSummary();

  if (summary_buffer_.size() + kSummarySize > summary_log_.page_size()) {
    PDS_ASSIGN_OR_RETURN(uint32_t spage,
                         summary_log_.AppendPage(ByteView(summary_buffer_)));
    (void)spage;
    summary_buffer_.clear();
  }
  return Status::Ok();
}

Status TimeSeriesStore::Append(uint64_t timestamp, double value) {
  if (!initialized_) {
    return Status::FailedPrecondition("store not initialized");
  }
  if (any_point_ && timestamp <= last_ts_) {
    return Status::InvalidArgument(
        "timestamps must be strictly increasing (sensor log order)");
  }
  uint8_t encoded[kPointSize];
  EncodeU64(encoded, timestamp);
  uint64_t bits;
  std::memcpy(&bits, &value, 8);
  EncodeU64(encoded + 8, bits);
  open_page_.insert(open_page_.end(), encoded, encoded + kPointSize);

  if (open_points_ == 0) {
    open_summary_.min_ts = timestamp;
    open_summary_.min_v = value;
    open_summary_.max_v = value;
  }
  open_summary_.max_ts = timestamp;
  open_summary_.min_v = std::min(open_summary_.min_v, value);
  open_summary_.max_v = std::max(open_summary_.max_v, value);
  open_summary_.sum_v += value;
  ++open_summary_.count;
  ++open_points_;

  last_ts_ = timestamp;
  any_point_ = true;
  ++num_points_;

  if (open_page_.size() + kPointSize > data_log_.page_size()) {
    PDS_RETURN_IF_ERROR(SealOpenPage());
  }
  return Status::Ok();
}

namespace {
struct PagePlan {
  uint32_t page = 0;
  bool fully_covered = false;
  TimeSeriesStore::RangeAggregate summary_agg;
};
}  // namespace

Status TimeSeriesStore::Range(uint64_t t1, uint64_t t2,
                              const std::function<Status(const Point&)>& emit,
                              QueryStats* stats) {
  if (stats != nullptr) {
    *stats = QueryStats();
  }
  if (t1 > t2) {
    return Status::InvalidArgument("t1 > t2");
  }
  // Phase 1: summary scan to find overlapping sealed pages. The touched-page
  // list is data-dependent, so charge it against the MCU gauge as it grows.
  std::vector<uint32_t> touched;
  PDS_ASSIGN_OR_RETURN(mcu::RamCharge touched_charge,
                       mcu::RamCharge::Make(gauge_, 0));
  uint32_t sealed_pages = data_log_.num_pages();
  uint32_t summary_index = 0;
  Bytes page;
  const size_t spp = summary_log_.page_size() / kSummarySize;
  for (uint32_t sp = 0;
       sp < summary_log_.num_pages() && summary_index < sealed_pages; ++sp) {
    PDS_RETURN_IF_ERROR(summary_log_.ReadPage(sp, &page));
    if (stats != nullptr) {
      ++stats->summary_pages;
    }
    for (size_t f = 0; f < spp && summary_index < sealed_pages; ++f) {
      PageSummary s = DecodeSummary(page.data() + f * kSummarySize);
      if (s.max_ts >= t1 && s.min_ts <= t2) {
        PDS_RETURN_IF_ERROR(touched_charge.Grow(sizeof(uint32_t)));
        touched.push_back(summary_index);
      } else if (stats != nullptr) {
        ++stats->pages_skipped;
      }
      ++summary_index;
    }
  }
  // Summaries still in the RAM buffer.
  for (size_t off = 0; off + kSummarySize <= summary_buffer_.size() &&
                       summary_index < sealed_pages;
       off += kSummarySize) {
    PageSummary s = DecodeSummary(summary_buffer_.data() + off);
    if (s.max_ts >= t1 && s.min_ts <= t2) {
      PDS_RETURN_IF_ERROR(touched_charge.Grow(sizeof(uint32_t)));
      touched.push_back(summary_index);
    } else if (stats != nullptr) {
      ++stats->pages_skipped;
    }
    ++summary_index;
  }

  // Phase 2: fetch the touched pages, emit matching points.
  for (uint32_t p : touched) {
    PDS_RETURN_IF_ERROR(data_log_.ReadPage(p, &page));
    if (stats != nullptr) {
      ++stats->data_pages;
    }
    for (size_t off = 0; off + kPointSize <= page.size();
         off += kPointSize) {
      Point point;
      point.timestamp = GetU64(page.data() + off);
      uint64_t bits = GetU64(page.data() + off + 8);
      std::memcpy(&point.value, &bits, 8);
      // Page tails padded with 0xFF decode as huge timestamps: out of
      // range by construction (timestamps are increasing).
      if (point.timestamp < t1) {
        continue;
      }
      if (point.timestamp > t2) {
        break;
      }
      PDS_RETURN_IF_ERROR(emit(point));
    }
  }

  // Phase 3: the open page in RAM.
  for (size_t off = 0; off + kPointSize <= open_page_.size();
       off += kPointSize) {
    Point point;
    point.timestamp = GetU64(open_page_.data() + off);
    uint64_t bits = GetU64(open_page_.data() + off + 8);
    std::memcpy(&point.value, &bits, 8);
    if (point.timestamp < t1) {
      continue;
    }
    if (point.timestamp > t2) {
      break;
    }
    PDS_RETURN_IF_ERROR(emit(point));
  }
  return Status::Ok();
}

Result<TimeSeriesStore::RangeAggregate> TimeSeriesStore::Aggregate(
    uint64_t t1, uint64_t t2, QueryStats* stats) {
  if (stats != nullptr) {
    *stats = QueryStats();
  }
  if (t1 > t2) {
    return Status::InvalidArgument("t1 > t2");
  }
  RangeAggregate agg;
  bool first = true;
  auto fold_point = [&](const Point& p) {
    if (first) {
      agg.min = p.value;
      agg.max = p.value;
      first = false;
    }
    agg.min = std::min(agg.min, p.value);
    agg.max = std::max(agg.max, p.value);
    agg.sum += p.value;
    ++agg.count;
  };
  auto fold_summary = [&](const PageSummary& s) {
    if (first) {
      agg.min = s.min_v;
      agg.max = s.max_v;
      first = false;
    }
    agg.min = std::min(agg.min, s.min_v);
    agg.max = std::max(agg.max, s.max_v);
    agg.sum += s.sum_v;
    agg.count += s.count;
  };

  // Walk summaries; fully-covered pages fold without touching data.
  std::vector<uint32_t> partial;
  uint32_t sealed_pages = data_log_.num_pages();
  uint32_t summary_index = 0;
  Bytes page;
  const size_t spp = summary_log_.page_size() / kSummarySize;
  auto consider = [&](const PageSummary& s, uint32_t data_page) {
    if (s.max_ts < t1 || s.min_ts > t2) {
      if (stats != nullptr) {
        ++stats->pages_skipped;
      }
      return;
    }
    if (s.min_ts >= t1 && s.max_ts <= t2) {
      fold_summary(s);
    } else {
      partial.push_back(data_page);
    }
  };
  for (uint32_t sp = 0;
       sp < summary_log_.num_pages() && summary_index < sealed_pages; ++sp) {
    PDS_RETURN_IF_ERROR(summary_log_.ReadPage(sp, &page));
    if (stats != nullptr) {
      ++stats->summary_pages;
    }
    for (size_t f = 0; f < spp && summary_index < sealed_pages; ++f) {
      consider(DecodeSummary(page.data() + f * kSummarySize), summary_index);
      ++summary_index;
    }
  }
  for (size_t off = 0; off + kSummarySize <= summary_buffer_.size() &&
                       summary_index < sealed_pages;
       off += kSummarySize) {
    consider(DecodeSummary(summary_buffer_.data() + off), summary_index);
    ++summary_index;
  }

  // Partial edge pages: fetch and fold point by point.
  for (uint32_t p : partial) {
    PDS_RETURN_IF_ERROR(data_log_.ReadPage(p, &page));
    if (stats != nullptr) {
      ++stats->data_pages;
    }
    for (size_t off = 0; off + kPointSize <= page.size();
         off += kPointSize) {
      Point point;
      point.timestamp = GetU64(page.data() + off);
      uint64_t bits = GetU64(page.data() + off + 8);
      std::memcpy(&point.value, &bits, 8);
      if (point.timestamp < t1) {
        continue;
      }
      if (point.timestamp > t2) {
        break;
      }
      fold_point(point);
    }
  }

  // The open page in RAM.
  for (size_t off = 0; off + kPointSize <= open_page_.size();
       off += kPointSize) {
    Point point;
    point.timestamp = GetU64(open_page_.data() + off);
    uint64_t bits = GetU64(open_page_.data() + off + 8);
    std::memcpy(&point.value, &bits, 8);
    if (point.timestamp >= t1 && point.timestamp <= t2) {
      fold_point(point);
    }
  }
  return agg;
}

}  // namespace pds::embdb
