#include "embdb/query_parser.h"

#include <cctype>
#include <cstdlib>

namespace pds::embdb {

namespace {

struct Token {
  enum class Kind {
    kIdent, kString, kNumber, kOp, kComma, kStar, kLParen, kRParen, kEnd
  };
  Kind kind = Kind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  // pdslint: ram-exempt(token text is bounded by the SQL string; queries are
  // far below one flash page)
  Result<Token> Next() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= sql_.size()) {
      return Token{Token::Kind::kEnd, ""};
    }
    char c = sql_[pos_];
    if (c == ',') {
      ++pos_;
      return Token{Token::Kind::kComma, ","};
    }
    if (c == '*') {
      ++pos_;
      return Token{Token::Kind::kStar, "*"};
    }
    if (c == '(') {
      ++pos_;
      return Token{Token::Kind::kLParen, "("};
    }
    if (c == ')') {
      ++pos_;
      return Token{Token::Kind::kRParen, ")"};
    }
    if (c == '\'') {
      // Single-quoted string; '' escapes a quote.
      ++pos_;
      std::string out;
      while (pos_ < sql_.size()) {
        if (sql_[pos_] == '\'') {
          if (pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '\'') {
            out.push_back('\'');
            pos_ += 2;
            continue;
          }
          ++pos_;
          return Token{Token::Kind::kString, out};
        }
        out.push_back(sql_[pos_++]);
      }
      return Status::InvalidArgument("unterminated string literal");
    }
    if (c == '=' || c == '!' || c == '<' || c == '>') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < sql_.size() && sql_[pos_] == '=') {
        op.push_back('=');
        ++pos_;
      }
      if (op == "!") {
        return Status::InvalidArgument("expected != operator");
      }
      return Token{Token::Kind::kOp, op};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      std::string out(1, c);
      ++pos_;
      while (pos_ < sql_.size() &&
             (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '.')) {
        out.push_back(sql_[pos_++]);
      }
      return Token{Token::Kind::kNumber, out};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string out;
      while (pos_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '_' || sql_[pos_] == '.')) {
        out.push_back(sql_[pos_++]);
      }
      return Token{Token::Kind::kIdent, out};
    }
    return Status::InvalidArgument(std::string("unexpected character '") +
                                   c + "'");
  }

 private:
  std::string_view sql_;
  size_t pos_ = 0;
};

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool IsKeyword(const Token& t, std::string_view kw) {
  return t.kind == Token::Kind::kIdent && Lower(t.text) == kw;
}

/// Maps an identifier to an aggregate function, if it names one.
bool AggFuncFor(const Token& t, Aggregator::Func* func) {
  if (t.kind != Token::Kind::kIdent) {
    return false;
  }
  std::string k = Lower(t.text);
  if (k == "count") { *func = Aggregator::Func::kCount; return true; }
  if (k == "sum") { *func = Aggregator::Func::kSum; return true; }
  if (k == "avg") { *func = Aggregator::Func::kAvg; return true; }
  if (k == "min") { *func = Aggregator::Func::kMin; return true; }
  if (k == "max") { *func = Aggregator::Func::kMax; return true; }
  return false;
}

Result<Predicate::Op> ParseOp(const std::string& op) {
  if (op == "=") return Predicate::Op::kEq;
  if (op == "!=") return Predicate::Op::kNe;
  if (op == "<") return Predicate::Op::kLt;
  if (op == "<=") return Predicate::Op::kLe;
  if (op == ">") return Predicate::Op::kGt;
  if (op == ">=") return Predicate::Op::kGe;
  return Status::InvalidArgument("unknown operator '" + op + "'");
}

}  // namespace

// pdslint: ram-exempt(parsed column/predicate lists are bounded by the SQL
// text length, not by stored data volume)
Result<ParsedQuery> ParseSelect(std::string_view sql) {
  Lexer lexer(sql);
  ParsedQuery query;

  PDS_ASSIGN_OR_RETURN(Token t, lexer.Next());
  if (!IsKeyword(t, "select")) {
    return Status::InvalidArgument("expected SELECT");
  }

  // Projection list: columns and/or one aggregate item.
  PDS_ASSIGN_OR_RETURN(t, lexer.Next());
  if (t.kind == Token::Kind::kStar) {
    PDS_ASSIGN_OR_RETURN(t, lexer.Next());
  } else {
    for (;;) {
      Aggregator::Func func;
      if (AggFuncFor(t, &func)) {
        // Might be AGG( ... ) — or a plain column that shares the name.
        PDS_ASSIGN_OR_RETURN(Token peek, lexer.Next());
        if (peek.kind == Token::Kind::kLParen) {
          if (query.aggregate.has_value()) {
            return Status::InvalidArgument("only one aggregate supported");
          }
          ParsedAggregate agg;
          agg.func = func;
          PDS_ASSIGN_OR_RETURN(Token arg, lexer.Next());
          if (arg.kind == Token::Kind::kStar) {
            if (func != Aggregator::Func::kCount) {
              return Status::InvalidArgument("only COUNT accepts *");
            }
          } else if (arg.kind == Token::Kind::kIdent) {
            agg.column = arg.text;
          } else {
            return Status::InvalidArgument("expected aggregate argument");
          }
          PDS_ASSIGN_OR_RETURN(Token close, lexer.Next());
          if (close.kind != Token::Kind::kRParen) {
            return Status::InvalidArgument("expected ')'");
          }
          query.aggregate = std::move(agg);
          PDS_ASSIGN_OR_RETURN(t, lexer.Next());
        } else {
          query.columns.push_back(t.text);
          t = peek;
        }
      } else if (t.kind == Token::Kind::kIdent) {
        query.columns.push_back(t.text);
        PDS_ASSIGN_OR_RETURN(t, lexer.Next());
      } else {
        return Status::InvalidArgument("expected column or aggregate");
      }
      if (t.kind != Token::Kind::kComma) {
        break;
      }
      PDS_ASSIGN_OR_RETURN(t, lexer.Next());
    }
  }

  if (!IsKeyword(t, "from")) {
    return Status::InvalidArgument("expected FROM");
  }
  PDS_ASSIGN_OR_RETURN(t, lexer.Next());
  if (t.kind != Token::Kind::kIdent) {
    return Status::InvalidArgument("expected table name");
  }
  query.table = t.text;

  PDS_ASSIGN_OR_RETURN(t, lexer.Next());
  if (IsKeyword(t, "where")) {
    for (;;) {
      ParsedPredicate pred;
      PDS_ASSIGN_OR_RETURN(t, lexer.Next());
      if (t.kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("expected predicate column");
      }
      pred.column = t.text;
      PDS_ASSIGN_OR_RETURN(t, lexer.Next());
      if (t.kind != Token::Kind::kOp) {
        return Status::InvalidArgument("expected comparison operator");
      }
      PDS_ASSIGN_OR_RETURN(pred.op, ParseOp(t.text));
      PDS_ASSIGN_OR_RETURN(t, lexer.Next());
      if (t.kind == Token::Kind::kString) {
        pred.literal = t.text;
        pred.literal_is_string = true;
      } else if (t.kind == Token::Kind::kNumber) {
        pred.literal = t.text;
      } else {
        return Status::InvalidArgument("expected literal");
      }
      query.where.push_back(std::move(pred));

      PDS_ASSIGN_OR_RETURN(t, lexer.Next());
      if (!IsKeyword(t, "and")) {
        break;
      }
    }
  }

  if (IsKeyword(t, "group")) {
    PDS_ASSIGN_OR_RETURN(t, lexer.Next());
    if (!IsKeyword(t, "by")) {
      return Status::InvalidArgument("expected BY after GROUP");
    }
    PDS_ASSIGN_OR_RETURN(t, lexer.Next());
    if (t.kind != Token::Kind::kIdent) {
      return Status::InvalidArgument("expected GROUP BY column");
    }
    query.group_by = t.text;
    PDS_ASSIGN_OR_RETURN(t, lexer.Next());
  }

  if (t.kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("unexpected trailing tokens");
  }
  if (!query.group_by.empty() && !query.aggregate.has_value()) {
    return Status::InvalidArgument("GROUP BY requires an aggregate");
  }
  if (query.aggregate.has_value() && query.columns.size() > 1) {
    return Status::InvalidArgument(
        "aggregate queries allow at most the GROUP BY column alongside");
  }
  if (query.aggregate.has_value() && query.columns.size() == 1 &&
      query.columns[0] != query.group_by) {
    return Status::InvalidArgument(
        "non-aggregated column must be the GROUP BY column");
  }
  return query;
}

// pdslint: ram-exempt(bound projection/predicate lists mirror the parsed
// query, bounded by SQL text length)
Result<BoundQuery> Bind(const ParsedQuery& query, const Schema& schema) {
  BoundQuery bound;
  if (query.aggregate.has_value()) {
    bound.has_aggregate = true;
    bound.agg_func = query.aggregate->func;
    if (!query.aggregate->column.empty()) {
      int idx = schema.ColumnIndex(query.aggregate->column);
      if (idx < 0) {
        return Status::NotFound("aggregate column '" +
                                query.aggregate->column + "'");
      }
      if (schema.columns()[static_cast<size_t>(idx)].type ==
              ColumnType::kString &&
          bound.agg_func != Aggregator::Func::kCount) {
        return Status::InvalidArgument(
            "cannot aggregate a string column numerically");
      }
      bound.agg_column = idx;
    } else if (bound.agg_func != Aggregator::Func::kCount) {
      return Status::InvalidArgument("only COUNT accepts *");
    }
    if (!query.group_by.empty()) {
      int idx = schema.ColumnIndex(query.group_by);
      if (idx < 0) {
        return Status::NotFound("GROUP BY column '" + query.group_by + "'");
      }
      bound.group_column = idx;
    }
  }
  for (const std::string& col : query.columns) {
    int idx = schema.ColumnIndex(col);
    if (idx < 0) {
      return Status::NotFound("column '" + col + "' in table " +
                              schema.name());
    }
    bound.projection.push_back(idx);
  }
  for (const ParsedPredicate& p : query.where) {
    int idx = schema.ColumnIndex(p.column);
    if (idx < 0) {
      return Status::NotFound("column '" + p.column + "' in table " +
                              schema.name());
    }
    ColumnType type = schema.columns()[static_cast<size_t>(idx)].type;
    Predicate pred;
    pred.column = idx;
    pred.op = p.op;
    if (p.literal_is_string) {
      if (type != ColumnType::kString) {
        return Status::InvalidArgument("string literal for non-string column '" +
                                       p.column + "'");
      }
      pred.constant = Value::Str(p.literal);
    } else {
      switch (type) {
        case ColumnType::kUint64: {
          if (!p.literal.empty() && p.literal[0] == '-') {
            return Status::InvalidArgument("negative literal for UINT64 '" +
                                           p.column + "'");
          }
          pred.constant =
              Value::U64(std::strtoull(p.literal.c_str(), nullptr, 10));
          break;
        }
        case ColumnType::kInt64:
          pred.constant =
              Value::I64(std::strtoll(p.literal.c_str(), nullptr, 10));
          break;
        case ColumnType::kDouble:
          pred.constant = Value::F64(std::strtod(p.literal.c_str(), nullptr));
          break;
        case ColumnType::kString:
          return Status::InvalidArgument(
              "numeric literal for string column '" + p.column + "'");
      }
    }
    bound.predicates.push_back(std::move(pred));
  }
  return bound;
}

}  // namespace pds::embdb
