#ifndef PDS_EMBDB_VALUE_H_
#define PDS_EMBDB_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace pds::embdb {

/// Column types supported by the embedded engine.
enum class ColumnType : uint8_t {
  kUint64 = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

std::string_view ColumnTypeName(ColumnType type);

/// A single cell value. Cheap to copy for numerics; strings own their data.
class Value {
 public:
  Value() : type_(ColumnType::kUint64), num_(0) {}

  static Value U64(uint64_t v);
  static Value I64(int64_t v);
  static Value F64(double v);
  static Value Str(std::string v);

  ColumnType type() const { return type_; }

  uint64_t AsU64() const { return num_; }
  int64_t AsI64() const { return static_cast<int64_t>(num_); }
  double AsF64() const { return dbl_; }
  const std::string& AsStr() const { return str_; }

  /// Total order within one type; comparing across types orders by type tag
  /// (callers normally compare same-typed values).
  static int Compare(const Value& a, const Value& b);

  /// Debug/CSV rendering.
  std::string ToString() const;

  /// Order-preserving fixed-width encoding (kKeyWidth bytes): memcmp order
  /// equals Value order within a type. Strings longer than the key width are
  /// truncated (documented index-prefix behaviour); numerics are exact.
  static constexpr size_t kKeyWidth = 24;
  void EncodeKey(uint8_t out[kKeyWidth]) const;

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

 private:
  ColumnType type_;
  uint64_t num_ = 0;  // kUint64 / kInt64 payload
  double dbl_ = 0.0;  // kDouble payload
  std::string str_;   // kString payload
};

/// A row: one Value per schema column.
using Tuple = std::vector<Value>;

/// Serializes a tuple as a byte record given the column types.
void EncodeTuple(const std::vector<ColumnType>& types, const Tuple& tuple,
                 Bytes* out);
/// Decodes a record produced by EncodeTuple.
[[nodiscard]] Result<Tuple> DecodeTuple(const std::vector<ColumnType>& types, ByteView in);

}  // namespace pds::embdb

#endif  // PDS_EMBDB_VALUE_H_
