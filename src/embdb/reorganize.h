#ifndef PDS_EMBDB_REORGANIZE_H_
#define PDS_EMBDB_REORGANIZE_H_

#include "common/result.h"
#include "embdb/key_index.h"
#include "embdb/tree_index.h"
#include "flash/flash.h"
#include "logstore/external_sort.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {

/// The tutorial's index reorganization ("Scalability => timely reorganize
/// the index to transform it into a more efficient index"):
///
///  1. sort the (key, pointer) pairs of the sequential key-log index into
///     temporary sorted-run logs (ExternalSorter — log structures only);
///  2. build the key hierarchy bottom-up (TreeIndexBuilder — written
///     sequentially, no temporary logs needed).
///
/// The process is background/interruptible in the paper's setting; here it
/// runs to completion and reports its flash cost through the chip counters.
class Reorganizer {
 public:
  struct Options {
    /// RAM budget handed to the external sort (runs + merge pages).
    size_t sort_ram_bytes = 16 * 1024;
  };

  /// Sorts `source` and produces a TreeIndex in freshly allocated
  /// partitions. The source index is left untouched (in the paper the old
  /// log remains queryable until the swap).
  [[nodiscard]] static Result<TreeIndex> Reorganize(KeyLogIndex* source,
                                      flash::PartitionAllocator* allocator,
                                      mcu::RamGauge* gauge,
                                      const Options& options);
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_REORGANIZE_H_
