#ifndef PDS_EMBDB_SCHEMA_H_
#define PDS_EMBDB_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "embdb/value.h"

namespace pds::embdb {

/// One column of a table. A column may reference another table by *rowid*
/// (a surrogate foreign key) — the form join indexes exploit.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kUint64;
  /// Empty, or the name of the table whose rowids this kUint64 column holds.
  std::string references;
};

/// A table schema: name plus ordered columns.
class Schema {
 public:
  Schema() = default;
  Schema(std::string table_name, std::vector<Column> columns)
      : name_(std::move(table_name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of a column by name, or -1.
  int ColumnIndex(std::string_view column_name) const;

  std::vector<ColumnType> ColumnTypes() const;

  /// Checks that a tuple matches the schema's arity and column types.
  [[nodiscard]] Status Validate(const Tuple& tuple) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_SCHEMA_H_
