#include "embdb/bloom.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace pds::embdb {

BloomFilter::BloomFilter(uint32_t bits, uint32_t num_probes)
    : bits_((std::max(bits, 8u) + 7) / 8, 0),
      num_probes_(std::max(num_probes, 1u)) {}

BloomFilter::BloomFilter(ByteView serialized, uint32_t num_probes)
    : bits_(serialized.ToBytes()), num_probes_(std::max(num_probes, 1u)) {}

void BloomFilter::Add(ByteView key) {
  uint64_t h1 = Fnv1a64(key);
  uint64_t h2 = Mix64(h1) | 1;  // odd step
  uint32_t n = num_bits();
  for (uint32_t i = 0; i < num_probes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % n;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(ByteView key) const {
  uint64_t h1 = Fnv1a64(key);
  uint64_t h2 = Mix64(h1) | 1;
  uint32_t n = num_bits();
  for (uint32_t i = 0; i < num_probes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % n;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) {
      return false;
    }
  }
  return true;
}

uint32_t BloomFilter::OptimalProbes(double bits_per_key) {
  double k = bits_per_key * 0.6931471805599453;  // ln 2
  return std::max(1u, static_cast<uint32_t>(std::lround(k)));
}

}  // namespace pds::embdb
