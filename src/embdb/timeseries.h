#ifndef PDS_EMBDB_TIMESERIES_H_
#define PDS_EMBDB_TIMESERIES_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "flash/flash.h"
#include "logstore/sequential_log.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {

/// Log-only time-series store — the tutorial's "extend the principles to
/// other data models ... time series" challenge, in the same two-log shape
/// as the PBFilter index:
///
///  - a data log of (timestamp, value) points packed into pages
///    (timestamps strictly increasing: sensors emit in order);
///  - a summary log with one fixed-width entry per sealed data page
///    (min/max timestamp, min/max/sum of values, count).
///
/// Range queries scan the small summary log and fetch only overlapping
/// data pages; aggregates over a range use the per-page sums for fully
/// covered pages and touch at most two partial edge pages — the classic
/// "segment skipping" that summaries buy on append-only storage.
class TimeSeriesStore {
 public:
  struct Point {
    uint64_t timestamp = 0;
    double value = 0.0;
  };

  struct RangeAggregate {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    double avg() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  struct QueryStats {
    uint32_t summary_pages = 0;
    uint32_t data_pages = 0;
    uint32_t pages_skipped = 0;
  };

  TimeSeriesStore(flash::Partition data_partition,
                  flash::Partition summary_partition, mcu::RamGauge* gauge);
  ~TimeSeriesStore();

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Charges the resident RAM (open data page + open summary page).
  [[nodiscard]] Status Init();

  /// Appends a point; timestamps must be strictly increasing.
  [[nodiscard]] Status Append(uint64_t timestamp, double value);

  /// Streams points with t1 <= timestamp <= t2 in order.
  [[nodiscard]] Status Range(uint64_t t1, uint64_t t2,
               const std::function<Status(const Point&)>& emit,
               QueryStats* stats);

  /// COUNT/SUM/MIN/MAX/AVG over [t1, t2] using page summaries.
  [[nodiscard]] Result<RangeAggregate> Aggregate(uint64_t t1, uint64_t t2,
                                   QueryStats* stats);

  uint64_t num_points() const { return num_points_; }
  uint32_t num_data_pages() const {
    return data_log_.num_pages() + (open_points_ == 0 ? 0 : 1);
  }

  static constexpr size_t kPointSize = 16;    // u64 ts + f64 value
  static constexpr size_t kSummarySize = 48;  // ts range + v stats + count

 private:
  struct PageSummary {
    uint64_t min_ts = 0;
    uint64_t max_ts = 0;
    double min_v = 0;
    double max_v = 0;
    double sum_v = 0;
    uint64_t count = 0;
  };

  [[nodiscard]] Status SealOpenPage();
  static void EncodeSummary(const PageSummary& s, uint8_t* out);
  static PageSummary DecodeSummary(const uint8_t* in);

  logstore::SequentialLog data_log_;
  logstore::SequentialLog summary_log_;
  mcu::RamGauge* gauge_;
  size_t charged_ram_ = 0;
  bool initialized_ = false;

  Bytes open_page_;          // points of the open data page
  uint32_t open_points_ = 0;
  PageSummary open_summary_;
  Bytes summary_buffer_;     // sealed summaries awaiting a full page

  uint64_t last_ts_ = 0;
  bool any_point_ = false;
  uint64_t num_points_ = 0;
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_TIMESERIES_H_
