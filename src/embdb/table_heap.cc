#include "embdb/table_heap.h"

namespace pds::embdb {

Result<uint64_t> TableHeap::Insert(const Tuple& tuple) {
  PDS_RETURN_IF_ERROR(schema_.Validate(tuple));
  Bytes record;
  EncodeTuple(types_, tuple, &record);
  PDS_ASSIGN_OR_RETURN(uint64_t address, data_.Append(ByteView(record)));

  Bytes dir_entry;
  PutU64(&dir_entry, address);
  PDS_ASSIGN_OR_RETURN(uint64_t dir_offset,
                       directory_.Append(ByteView(dir_entry)));
  if (dir_offset != num_rows_ * kDirEntrySize) {
    return Status::Internal("directory offset drift");
  }
  return num_rows_++;
}

Status TableHeap::Delete(uint64_t rowid) {
  if (rowid >= num_rows_) {
    return Status::NotFound("rowid " + std::to_string(rowid) +
                            " beyond table " + schema_.name());
  }
  if (deleted_.count(rowid) != 0) {
    return Status::Ok();  // idempotent
  }
  if (has_tombstone_log_) {
    Bytes tomb;
    PutU64(&tomb, rowid);
    PDS_RETURN_IF_ERROR(tombstones_.Append(ByteView(tomb)).status());
  }
  deleted_.insert(rowid);
  return Status::Ok();
}

Result<Tuple> TableHeap::Get(uint64_t rowid) {
  if (rowid >= num_rows_) {
    return Status::NotFound("rowid " + std::to_string(rowid) +
                            " beyond table " + schema_.name());
  }
  if (deleted_.count(rowid) != 0) {
    return Status::NotFound("rowid " + std::to_string(rowid) +
                            " was deleted (right to be forgotten)");
  }
  Bytes dir_entry;
  PDS_RETURN_IF_ERROR(directory_.ReadAt(rowid * kDirEntrySize, &dir_entry));
  if (dir_entry.size() != 8) {
    return Status::Corruption("bad directory entry size");
  }
  uint64_t address = GetU64(dir_entry.data());
  Bytes record;
  PDS_RETURN_IF_ERROR(data_.ReadAt(address, &record));
  return DecodeTuple(types_, ByteView(record));
}

Status TableHeap::Scanner::Next(uint64_t* rowid, Tuple* tuple) {
  // Skip tombstoned rows (the record log still streams them; the caller
  // never sees forgotten data).
  for (;;) {
    if (AtEnd()) {
      return Status::OutOfRange("end of table");
    }
    Bytes record;
    PDS_RETURN_IF_ERROR(reader_.Next(&record));
    uint64_t current = next_rowid_++;
    if (heap_->deleted_.count(current) != 0) {
      continue;
    }
    PDS_ASSIGN_OR_RETURN(*tuple,
                         DecodeTuple(heap_->types_, ByteView(record)));
    *rowid = current;
    return Status::Ok();
  }
}

}  // namespace pds::embdb
