#ifndef PDS_EMBDB_TABLE_HEAP_H_
#define PDS_EMBDB_TABLE_HEAP_H_

#include <cstdint>
#include <set>

#include "common/result.h"
#include "embdb/schema.h"
#include "flash/flash.h"
#include "logstore/sequential_log.h"

namespace pds::embdb {

/// Tuples of one table stored in a sequential record log, with a rowid
/// directory (also a log) for random access.
///
/// rowids are dense, assigned 0,1,2,... at insertion. The directory holds
/// one fixed-width entry per rowid (the record's byte address in the data
/// log), so fetching a tuple by rowid costs one directory page read plus the
/// data page read(s) — the "1 IO per result" access path of Part II.
///
/// Deletion — the PDS owner's "right to be forgotten" — is log-only too:
/// a tombstone (the rowid) is appended to a third log and mirrored in a
/// small RAM set; deleted rows vanish from Get and scans. The data itself
/// is reclaimed when the table's partition is eventually compacted, as with
/// every other structure in Part II.
class TableHeap {
 public:
  TableHeap() = default;
  TableHeap(Schema schema, flash::Partition data_partition,
            flash::Partition directory_partition,
            flash::Partition tombstone_partition = flash::Partition())
      : schema_(std::move(schema)),
        types_(schema_.ColumnTypes()),
        data_(data_partition),
        directory_(directory_partition),
        tombstones_(tombstone_partition),
        has_tombstone_log_(tombstone_partition.valid()) {}

  const Schema& schema() const { return schema_; }
  /// Chip holding the table's data log; query profiling uses it to pin
  /// per-stage flash::Stats deltas to the executor's page accesses.
  flash::FlashChip* chip() const { return data_.chip(); }
  uint64_t num_rows() const { return num_rows_; }
  uint64_t num_live_rows() const { return num_rows_ - deleted_.size(); }
  uint32_t num_data_pages() const { return data_.num_pages_used(); }

  /// Appends a tuple; returns its rowid.
  [[nodiscard]] Result<uint64_t> Insert(const Tuple& tuple);

  /// Tombstones a row: Get returns NotFound and scans skip it.
  [[nodiscard]] Status Delete(uint64_t rowid);
  bool IsDeleted(uint64_t rowid) const { return deleted_.count(rowid) != 0; }
  uint64_t num_deleted() const { return deleted_.size(); }

  /// Random access by rowid.
  [[nodiscard]] Result<Tuple> Get(uint64_t rowid);

  /// Streams all tuples in rowid order; full scan costs one read per data
  /// page.
  class Scanner {
   public:
    explicit Scanner(TableHeap* heap)
        : heap_(heap), reader_(heap->data_.NewReader()) {}

    bool AtEnd() const { return next_rowid_ >= heap_->num_rows_; }
    /// Fetches the next row. Returns OutOfRange at end.
    [[nodiscard]] Status Next(uint64_t* rowid, Tuple* tuple);

   private:
    TableHeap* heap_;
    logstore::RecordLog::Reader reader_;
    uint64_t next_rowid_ = 0;
  };

  Scanner NewScanner() { return Scanner(this); }

 private:
  // Directory entries are length-prefixed 8-byte addresses: 12 bytes each,
  // so entry i lives at byte offset 12 * i.
  static constexpr uint64_t kDirEntrySize = 12;

  Schema schema_;
  std::vector<ColumnType> types_;
  logstore::RecordLog data_;
  logstore::RecordLog directory_;
  logstore::RecordLog tombstones_;
  bool has_tombstone_log_ = false;
  std::set<uint64_t> deleted_;
  uint64_t num_rows_ = 0;
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_TABLE_HEAP_H_
