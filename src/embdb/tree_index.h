#ifndef PDS_EMBDB_TREE_INDEX_H_
#define PDS_EMBDB_TREE_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "embdb/value.h"
#include "flash/flash.h"
#include "logstore/sequential_log.h"

namespace pds::embdb {

/// The reorganized "B-Tree like" index of the tutorial: a hierarchy of
/// sequentially-written pages over sorted (key, rowid) entries.
///
/// Layout (two sequential logs, both append-only):
///  - leaf log:     pages of sorted 32-byte entries (24-byte key + rowid);
///    leaves are consecutive pages, so duplicate runs are scanned forward.
///  - internal log: pages of 28-byte entries (first_key of child + child
///    page number); level 1 children live in the leaf log, higher levels in
///    the internal log.
///
/// A lookup descends height-1 internal pages and then scans the leaf run:
/// O(height + matches/page) IOs, versus the key-log index's full summary
/// scan. The builder (below) writes every page exactly once — the
/// reorganization "itself must only use log structures".
class TreeIndex {
 public:
  struct LookupStats {
    uint32_t internal_pages = 0;
    uint32_t leaf_pages = 0;
    uint32_t matches = 0;
  };

  TreeIndex() = default;

  /// Finds all rowids with key equal to `key` (ascending rowid order).
  [[nodiscard]] Status Lookup(const Value& key, std::vector<uint64_t>* rowids,
                LookupStats* stats);

  /// Streams all (encoded key, rowid) entries with lo <= key <= hi in key
  /// order.
  [[nodiscard]] Status Range(const Value& lo, const Value& hi,
               const std::function<Status(const uint8_t*, uint64_t)>& emit);

  uint64_t num_entries() const { return num_entries_; }
  uint32_t height() const { return height_; }
  uint32_t num_leaf_pages() const { return leaf_log_.num_pages(); }
  uint32_t num_internal_pages() const { return internal_log_.num_pages(); }

  static constexpr size_t kLeafEntrySize = Value::kKeyWidth + 8;
  static constexpr size_t kInternalEntrySize = Value::kKeyWidth + 4;
  static constexpr size_t kPageHeader = 4;  // u8 level, u8 rsvd, u16 count

 private:
  friend class TreeIndexBuilder;

  /// Walks internal levels down to the starting leaf page for `encoded`.
  [[nodiscard]] Status DescendToLeaf(const uint8_t* encoded, uint32_t* leaf_page,
                       LookupStats* stats);

  logstore::SequentialLog leaf_log_;
  logstore::SequentialLog internal_log_;
  uint32_t root_page_ = 0;   // in internal log when height > 1
  uint32_t height_ = 0;      // 0 = empty, 1 = single leaf level
  uint64_t num_entries_ = 0;
};

/// Allocates a leaf partition and an internal partition sized for a tree of
/// `entries` entries on the allocator's chip.
[[nodiscard]] Status AllocateTreePartitions(flash::PartitionAllocator* allocator,
                              uint64_t entries, flash::Partition* leaf,
                              flash::Partition* internal);

/// Builds a TreeIndex from entries supplied in ascending (key, rowid)
/// order — typically the output of ExternalSorter. Pages cascade bottom-up:
/// completing a page at level L appends its (first_key, page) entry to the
/// buffer of level L+1, so builder RAM is height * page_size.
class TreeIndexBuilder {
 public:
  TreeIndexBuilder(flash::Partition leaf_partition,
                   flash::Partition internal_partition);

  /// Adds one 32-byte entry (24-byte encoded key + 8-byte rowid). Entries
  /// must arrive in ascending memcmp order.
  [[nodiscard]] Status Add(const uint8_t* entry);

  /// Flushes partial pages and returns the finished index.
  [[nodiscard]] Result<TreeIndex> Finish();

 private:
  struct Level {
    Bytes buffer;
    uint32_t pages_flushed = 0;
    uint32_t pending_entries = 0;
  };

  [[nodiscard]] Status AddToLevel(size_t level, const uint8_t* key, uint32_t child_page);
  [[nodiscard]] Status FlushLevel(size_t level, uint32_t* page_out);

  static constexpr size_t kEntrySizeForOrderCheck = TreeIndex::kLeafEntrySize;

  TreeIndex index_;
  std::vector<Level> levels_;
  uint64_t num_entries_ = 0;
  bool finished_ = false;
  uint8_t last_entry_[kEntrySizeForOrderCheck] = {0};
  bool has_last_ = false;
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_TREE_INDEX_H_
