#ifndef PDS_EMBDB_JOIN_INDEX_H_
#define PDS_EMBDB_JOIN_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "embdb/table_heap.h"
#include "embdb/tree_index.h"
#include "flash/flash.h"
#include "logstore/sequential_log.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {

/// A star/snowflake of foreign-key references rooted at one table — the
/// "schema path" that Tselect and Tjoin indexes are defined over. In the
/// tutorial's TPC-D example the root is LINEITEM, with
/// ORDERS <- CUSTOMER on one branch and PARTSUPP <- SUPPLIER on the other.
struct JoinPath {
  struct Node {
    TableHeap* table = nullptr;
    /// Parent node index, or -1 when the parent is the root table.
    int parent = -1;
    /// Column (in the parent's schema) holding this node's rowid.
    int fk_column = -1;
  };

  TableHeap* root = nullptr;
  std::vector<Node> nodes;

  /// Resolves the rowids of every node for one root tuple. Fetches parent
  /// tuples as needed (counted flash IOs).
  [[nodiscard]] Status ResolveRowids(const Tuple& root_tuple,
                       std::vector<uint64_t>* node_rowids) const;

  /// Same resolution but reading parent tuples from RAM-materialized
  /// tables (used by the naive hash-join baseline).
  [[nodiscard]] Status ResolveRowidsFromRam(
      const Tuple& root_tuple,
      const std::vector<std::unordered_map<uint64_t, Tuple>>& tables,
      std::vector<uint64_t>* node_rowids) const;
};

/// Generalized join index (tutorial "Tjoin Index"): for each root-table
/// rowid, the rowids of the tuples it refers to in the subtree. Stored as
/// fixed-width records in a sequential log, so a lookup is one or two page
/// reads.
class TjoinIndex {
 public:
  /// Builds the index by scanning the root table once (plus the parent
  /// fetches needed to follow multi-hop branches).
  [[nodiscard]] static Result<TjoinIndex> Build(const JoinPath& path,
                                  flash::PartitionAllocator* allocator);

  /// Returns the subtree rowids for a root rowid, in node order.
  [[nodiscard]] Status Lookup(uint64_t root_rowid, std::vector<uint64_t>* node_rowids);

  size_t num_nodes() const { return num_nodes_; }
  uint64_t num_rows() const { return num_rows_; }

 private:
  TjoinIndex() = default;

  logstore::RecordLog log_;
  size_t num_nodes_ = 0;
  uint64_t num_rows_ = 0;
  uint64_t record_stride_ = 0;
};

/// Tselect index (tutorial): maps a value of some attribute — on the root
/// or any node of the path — to the *root-table* rowids whose subtree
/// carries that value, in ascending rowid order ("sorted row ids!", which
/// makes rowid-merge intersection a pipeline operation).
///
/// Materialized as a TreeIndex over (attribute value, root rowid).
class TselectIndex {
 public:
  /// `node` is the path-node index carrying the attribute, or -1 for a
  /// column of the root table itself.
  [[nodiscard]] static Result<TselectIndex> Build(const JoinPath& path, int node,
                                    int column,
                                    flash::PartitionAllocator* allocator,
                                    mcu::RamGauge* gauge,
                                    size_t sort_ram_bytes = 16 * 1024);

  /// Sorted root rowids whose attribute equals `key`.
  [[nodiscard]] Status Lookup(const Value& key, std::vector<uint64_t>* root_rowids,
                TreeIndex::LookupStats* stats);

  const TreeIndex& tree() const { return tree_; }

 private:
  TselectIndex() = default;

  TreeIndex tree_;
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_JOIN_INDEX_H_
