#include "embdb/join_index.h"

#include <cstring>

#include "logstore/external_sort.h"

namespace pds::embdb {

Status JoinPath::ResolveRowids(const Tuple& root_tuple,
                               std::vector<uint64_t>* node_rowids) const {
  node_rowids->assign(nodes.size(), 0);
  // Tuples fetched along the way, for multi-hop branches.
  std::vector<Tuple> fetched(nodes.size());
  std::vector<bool> have(nodes.size(), false);

  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& node = nodes[i];
    const Tuple* parent_tuple = nullptr;
    if (node.parent < 0) {
      parent_tuple = &root_tuple;
    } else {
      if (!have[node.parent]) {
        return Status::InvalidArgument(
            "join path nodes must be ordered parents-first");
      }
      parent_tuple = &fetched[node.parent];
    }
    if (node.fk_column < 0 ||
        static_cast<size_t>(node.fk_column) >= parent_tuple->size()) {
      return Status::InvalidArgument("bad fk column in join path");
    }
    uint64_t rowid = (*parent_tuple)[node.fk_column].AsU64();
    (*node_rowids)[i] = rowid;

    // Fetch this node's tuple only if a later node hangs off it.
    bool is_parent = false;
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[j].parent == static_cast<int>(i)) {
        is_parent = true;
        break;
      }
    }
    if (is_parent) {
      PDS_ASSIGN_OR_RETURN(fetched[i], node.table->Get(rowid));
      have[i] = true;
    }
  }
  return Status::Ok();
}

Status JoinPath::ResolveRowidsFromRam(
    const Tuple& root_tuple,
    const std::vector<std::unordered_map<uint64_t, Tuple>>& tables,
    std::vector<uint64_t>* node_rowids) const {
  node_rowids->assign(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& node = nodes[i];
    const Tuple* parent_tuple = nullptr;
    if (node.parent < 0) {
      parent_tuple = &root_tuple;
    } else {
      size_t p = static_cast<size_t>(node.parent);
      auto it = tables[p].find((*node_rowids)[p]);
      if (it == tables[p].end()) {
        return Status::NotFound("dangling fk (RAM resolution)");
      }
      parent_tuple = &it->second;
    }
    if (node.fk_column < 0 ||
        static_cast<size_t>(node.fk_column) >= parent_tuple->size()) {
      return Status::InvalidArgument("bad fk column in join path");
    }
    (*node_rowids)[i] = (*parent_tuple)[node.fk_column].AsU64();
  }
  return Status::Ok();
}

Result<TjoinIndex> TjoinIndex::Build(const JoinPath& path,
                                     flash::PartitionAllocator* allocator) {
  if (path.root == nullptr || path.nodes.empty()) {
    return Status::InvalidArgument("join path needs a root and >= 1 node");
  }
  const size_t k = path.nodes.size();
  const uint64_t stride = 4 + 8 * k;  // length prefix + k rowids

  // Size the partition for num_rows fixed-width records.
  uint64_t bytes = path.root->num_rows() * stride;
  uint64_t block_bytes =
      static_cast<uint64_t>(allocator->geometry().page_size) *
      allocator->geometry().pages_per_block;
  uint32_t blocks =
      static_cast<uint32_t>((bytes + block_bytes - 1) / block_bytes) + 1;
  PDS_ASSIGN_OR_RETURN(flash::Partition part, allocator->Allocate(blocks));

  TjoinIndex index;
  index.log_ = logstore::RecordLog(part);
  index.num_nodes_ = k;
  index.record_stride_ = stride;

  if (path.root->num_deleted() != 0) {
    return Status::FailedPrecondition(
        "build join indexes before deleting rows (rowid-stride addressing "
        "requires a dense root table)");
  }
  TableHeap::Scanner scanner = path.root->NewScanner();
  uint64_t rowid = 0;
  Tuple tuple;
  std::vector<uint64_t> node_rowids;
  Bytes record;
  while (!scanner.AtEnd()) {
    PDS_RETURN_IF_ERROR(scanner.Next(&rowid, &tuple));
    PDS_RETURN_IF_ERROR(path.ResolveRowids(tuple, &node_rowids));
    record.clear();
    for (uint64_t r : node_rowids) {
      PutU64(&record, r);
    }
    PDS_ASSIGN_OR_RETURN(uint64_t offset, index.log_.Append(ByteView(record)));
    if (offset != rowid * stride) {
      return Status::Internal("tjoin record stride drift");
    }
    ++index.num_rows_;
  }
  return index;
}

Status TjoinIndex::Lookup(uint64_t root_rowid,
                          std::vector<uint64_t>* node_rowids) {
  if (root_rowid >= num_rows_) {
    return Status::NotFound("root rowid beyond tjoin index");
  }
  Bytes record;
  PDS_RETURN_IF_ERROR(log_.ReadAt(root_rowid * record_stride_, &record));
  if (record.size() != 8 * num_nodes_) {
    return Status::Corruption("tjoin record size mismatch");
  }
  node_rowids->resize(num_nodes_);
  for (size_t i = 0; i < num_nodes_; ++i) {
    (*node_rowids)[i] = GetU64(record.data() + 8 * i);
  }
  return Status::Ok();
}

Result<TselectIndex> TselectIndex::Build(const JoinPath& path, int node,
                                         int column,
                                         flash::PartitionAllocator* allocator,
                                         mcu::RamGauge* gauge,
                                         size_t sort_ram_bytes) {
  if (path.root == nullptr) {
    return Status::InvalidArgument("join path needs a root");
  }
  TableHeap* target =
      (node < 0) ? path.root : path.nodes[static_cast<size_t>(node)].table;
  if (column < 0 ||
      static_cast<size_t>(column) >= target->schema().num_columns()) {
    return Status::InvalidArgument("bad tselect column");
  }

  flash::Partition leaf_part, internal_part;
  PDS_RETURN_IF_ERROR(AllocateTreePartitions(allocator,
                                             path.root->num_rows(),
                                             &leaf_part, &internal_part));

  logstore::ExternalSorter::Options sort_opts;
  sort_opts.record_size = TreeIndex::kLeafEntrySize;
  sort_opts.ram_budget_bytes = sort_ram_bytes;
  logstore::ExternalSorter sorter(allocator, sort_opts, gauge);

  TableHeap::Scanner scanner = path.root->NewScanner();
  uint64_t rowid = 0;
  Tuple tuple;
  std::vector<uint64_t> node_rowids;
  uint8_t entry[TreeIndex::kLeafEntrySize];
  while (!scanner.AtEnd()) {
    Status next = scanner.Next(&rowid, &tuple);
    if (next.code() == StatusCode::kOutOfRange) {
      break;  // only tombstoned rows remained
    }
    PDS_RETURN_IF_ERROR(next);
    const Value* v = nullptr;
    Tuple node_tuple;
    if (node < 0) {
      v = &tuple[static_cast<size_t>(column)];
    } else {
      PDS_RETURN_IF_ERROR(path.ResolveRowids(tuple, &node_rowids));
      PDS_ASSIGN_OR_RETURN(
          node_tuple,
          target->Get(node_rowids[static_cast<size_t>(node)]));
      v = &node_tuple[static_cast<size_t>(column)];
    }
    v->EncodeKey(entry);
    // Big-endian rowid so memcmp order yields ascending rowids per key.
    EncodeU64BE(entry + Value::kKeyWidth, rowid);
    PDS_RETURN_IF_ERROR(
        sorter.Add(ByteView(entry, TreeIndex::kLeafEntrySize)));
  }

  TreeIndexBuilder builder(leaf_part, internal_part);
  PDS_RETURN_IF_ERROR(sorter.Finish(
      [&](ByteView record) { return builder.Add(record.data()); }));

  TselectIndex out;
  PDS_ASSIGN_OR_RETURN(out.tree_, builder.Finish());
  return out;
}

Status TselectIndex::Lookup(const Value& key,
                            std::vector<uint64_t>* root_rowids,
                            TreeIndex::LookupStats* stats) {
  TreeIndex::LookupStats local;
  PDS_RETURN_IF_ERROR(tree_.Lookup(key, root_rowids, &local));
  if (stats != nullptr) {
    *stats = local;
  }
  return Status::Ok();
}

}  // namespace pds::embdb
