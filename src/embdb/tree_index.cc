#include "embdb/tree_index.h"

#include <cstring>

namespace pds::embdb {

namespace {

uint16_t PageCount(const Bytes& page) { return GetU16(page.data() + 2); }
uint8_t PageLevel(const Bytes& page) { return page[0]; }

/// In an internal page, returns the child to descend into for `key`:
/// the last entry whose first_key is strictly less than key, or entry 0.
/// (Lower-bound descent so duplicate runs starting in an earlier subtree
/// are not skipped.)
uint32_t PickChild(const Bytes& page, const uint8_t* key) {
  uint16_t count = PageCount(page);
  uint32_t chosen = 0;
  for (uint16_t i = 0; i < count; ++i) {
    const uint8_t* entry = page.data() + TreeIndex::kPageHeader +
                           i * TreeIndex::kInternalEntrySize;
    if (std::memcmp(entry, key, Value::kKeyWidth) < 0) {
      chosen = i;
    } else {
      break;
    }
  }
  const uint8_t* entry = page.data() + TreeIndex::kPageHeader +
                         chosen * TreeIndex::kInternalEntrySize;
  return GetU32(entry + Value::kKeyWidth);
}

}  // namespace

Status TreeIndex::DescendToLeaf(const uint8_t* encoded, uint32_t* leaf_page,
                                LookupStats* stats) {
  uint32_t page_no = root_page_;
  Bytes page;
  for (uint32_t level = height_ - 1; level >= 1; --level) {
    PDS_RETURN_IF_ERROR(internal_log_.ReadPage(page_no, &page));
    if (stats != nullptr) {
      ++stats->internal_pages;
    }
    if (PageLevel(page) != level) {
      return Status::Corruption("tree level mismatch");
    }
    page_no = PickChild(page, encoded);
  }
  *leaf_page = page_no;
  return Status::Ok();
}

// pdslint: ram-exempt(callers charge the returned rowid list against their
// gauge as soon as Lookup returns; see SpjExecutor::Execute step 1)
Status TreeIndex::Lookup(const Value& key, std::vector<uint64_t>* rowids,
                         LookupStats* stats) {
  rowids->clear();
  if (stats != nullptr) {
    *stats = LookupStats();
  }
  if (height_ == 0) {
    return Status::Ok();
  }
  uint8_t encoded[Value::kKeyWidth];
  key.EncodeKey(encoded);

  uint32_t leaf = 0;
  if (height_ > 1) {
    PDS_RETURN_IF_ERROR(DescendToLeaf(encoded, &leaf, stats));
  }

  // Scan forward across consecutive leaves while keys <= target.
  Bytes page;
  bool done = false;
  while (!done && leaf < leaf_log_.num_pages()) {
    PDS_RETURN_IF_ERROR(leaf_log_.ReadPage(leaf, &page));
    if (stats != nullptr) {
      ++stats->leaf_pages;
    }
    uint16_t count = PageCount(page);
    for (uint16_t i = 0; i < count; ++i) {
      const uint8_t* entry =
          page.data() + kPageHeader + i * kLeafEntrySize;
      int cmp = std::memcmp(entry, encoded, Value::kKeyWidth);
      if (cmp < 0) {
        continue;
      }
      if (cmp > 0) {
        done = true;
        break;
      }
      rowids->push_back(GetU64BE(entry + Value::kKeyWidth));
      if (stats != nullptr) {
        ++stats->matches;
      }
    }
    ++leaf;
  }
  return Status::Ok();
}

Status TreeIndex::Range(
    const Value& lo, const Value& hi,
    const std::function<Status(const uint8_t*, uint64_t)>& emit) {
  if (height_ == 0) {
    return Status::Ok();
  }
  uint8_t lo_key[Value::kKeyWidth], hi_key[Value::kKeyWidth];
  lo.EncodeKey(lo_key);
  hi.EncodeKey(hi_key);

  uint32_t leaf = 0;
  if (height_ > 1) {
    PDS_RETURN_IF_ERROR(DescendToLeaf(lo_key, &leaf, nullptr));
  }

  Bytes page;
  bool done = false;
  while (!done && leaf < leaf_log_.num_pages()) {
    PDS_RETURN_IF_ERROR(leaf_log_.ReadPage(leaf, &page));
    uint16_t count = PageCount(page);
    for (uint16_t i = 0; i < count; ++i) {
      const uint8_t* entry =
          page.data() + kPageHeader + i * kLeafEntrySize;
      if (std::memcmp(entry, lo_key, Value::kKeyWidth) < 0) {
        continue;
      }
      if (std::memcmp(entry, hi_key, Value::kKeyWidth) > 0) {
        done = true;
        break;
      }
      PDS_RETURN_IF_ERROR(emit(entry, GetU64BE(entry + Value::kKeyWidth)));
    }
    ++leaf;
  }
  return Status::Ok();
}

Status AllocateTreePartitions(flash::PartitionAllocator* allocator,
                              uint64_t entries, flash::Partition* leaf,
                              flash::Partition* internal) {
  const uint32_t ps = allocator->geometry().page_size;
  const uint32_t ppb = allocator->geometry().pages_per_block;

  auto pages_for = [ps](uint64_t n, size_t entry_size) -> uint32_t {
    uint64_t per_page = (ps - TreeIndex::kPageHeader) / entry_size;
    return static_cast<uint32_t>((n + per_page - 1) / per_page);
  };
  auto blocks_for = [ppb](uint32_t pages) -> uint32_t {
    return std::max(1u, (pages + ppb - 1) / ppb);
  };

  uint32_t leaf_pages = pages_for(std::max<uint64_t>(entries, 1),
                                  TreeIndex::kLeafEntrySize);
  Result<flash::Partition> leaf_part =
      allocator->Allocate(blocks_for(leaf_pages));
  if (!leaf_part.ok()) {
    return leaf_part.status();
  }
  *leaf = *leaf_part;

  uint32_t internal_pages = 0;
  uint32_t level_pages = leaf_pages;
  uint64_t fan_out =
      (ps - TreeIndex::kPageHeader) / TreeIndex::kInternalEntrySize;
  while (level_pages > 1) {
    level_pages =
        static_cast<uint32_t>((level_pages + fan_out - 1) / fan_out);
    internal_pages += level_pages;
  }
  Result<flash::Partition> internal_part =
      allocator->Allocate(blocks_for(internal_pages + 1));
  if (!internal_part.ok()) {
    return internal_part.status();
  }
  *internal = *internal_part;
  return Status::Ok();
}

TreeIndexBuilder::TreeIndexBuilder(flash::Partition leaf_partition,
                                   flash::Partition internal_partition) {
  index_.leaf_log_ = logstore::SequentialLog(leaf_partition);
  index_.internal_log_ = logstore::SequentialLog(internal_partition);
}

Status TreeIndexBuilder::FlushLevel(size_t level, uint32_t* page_out) {
  Level& lv = levels_[level];
  if (lv.pending_entries == 0) {
    return Status::FailedPrecondition("empty level flush");
  }
  const size_t ps = (level == 0) ? index_.leaf_log_.page_size()
                                 : index_.internal_log_.page_size();
  Bytes page;
  page.reserve(ps);
  page.push_back(static_cast<uint8_t>(level));
  page.push_back(0);
  PutU16(&page, static_cast<uint16_t>(lv.pending_entries));
  page.insert(page.end(), lv.buffer.begin(), lv.buffer.end());

  Result<uint32_t> page_no =
      (level == 0) ? index_.leaf_log_.AppendPage(ByteView(page))
                   : index_.internal_log_.AppendPage(ByteView(page));
  if (!page_no.ok()) {
    return page_no.status();
  }
  *page_out = *page_no;
  ++lv.pages_flushed;
  lv.buffer.clear();
  lv.pending_entries = 0;
  return Status::Ok();
}

Status TreeIndexBuilder::AddToLevel(size_t level, const uint8_t* key,
                                    uint32_t child_page) {
  if (levels_.size() <= level) {
    levels_.resize(level + 1);
  }
  Level& lv = levels_[level];
  const size_t entry_size = (level == 0) ? TreeIndex::kLeafEntrySize
                                         : TreeIndex::kInternalEntrySize;
  const size_t ps = (level == 0) ? index_.leaf_log_.page_size()
                                 : index_.internal_log_.page_size();

  if (level == 0) {
    // `key` here is the full 32-byte leaf entry.
    lv.buffer.insert(lv.buffer.end(), key, key + TreeIndex::kLeafEntrySize);
  } else {
    lv.buffer.insert(lv.buffer.end(), key, key + Value::kKeyWidth);
    PutU32(&lv.buffer, child_page);
  }
  ++lv.pending_entries;

  if (TreeIndex::kPageHeader + lv.buffer.size() + entry_size > ps) {
    // Page complete: remember its first key before flushing.
    uint8_t first_key[Value::kKeyWidth];
    std::memcpy(first_key, lv.buffer.data(), Value::kKeyWidth);
    uint32_t page_no = 0;
    PDS_RETURN_IF_ERROR(FlushLevel(level, &page_no));
    PDS_RETURN_IF_ERROR(AddToLevel(level + 1, first_key, page_no));
  }
  return Status::Ok();
}

Status TreeIndexBuilder::Add(const uint8_t* entry) {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  if (has_last_ &&
      std::memcmp(entry, last_entry_, kEntrySizeForOrderCheck) < 0) {
    return Status::InvalidArgument("tree entries must be added in order");
  }
  std::memcpy(last_entry_, entry, kEntrySizeForOrderCheck);
  has_last_ = true;
  ++num_entries_;
  return AddToLevel(0, entry, 0);
}

Result<TreeIndex> TreeIndexBuilder::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  finished_ = true;
  index_.num_entries_ = num_entries_;

  if (num_entries_ == 0) {
    index_.height_ = 0;
    return std::move(index_);
  }

  for (size_t level = 0;; ++level) {
    if (level >= levels_.size()) {
      return Status::Internal("tree build ran past top level");
    }
    Level& lv = levels_[level];
    if (lv.pending_entries > 0) {
      uint8_t first_key[Value::kKeyWidth];
      std::memcpy(first_key, lv.buffer.data(), Value::kKeyWidth);
      uint32_t page_no = 0;
      PDS_RETURN_IF_ERROR(FlushLevel(level, &page_no));
      if (lv.pages_flushed == 1 &&
          (level + 1 >= levels_.size() ||
           (levels_[level + 1].pending_entries == 0 &&
            levels_[level + 1].pages_flushed == 0))) {
        // This single page is the root.
        index_.root_page_ = page_no;
        index_.height_ = static_cast<uint32_t>(level + 1);
        return std::move(index_);
      }
      PDS_RETURN_IF_ERROR(AddToLevel(level + 1, first_key, page_no));
    } else if (lv.pages_flushed == 1) {
      // Completed exactly at a page boundary and nothing above: the single
      // flushed page is the root. Its entry was propagated upward, so the
      // level above holds exactly one pending entry describing it.
      if (level + 1 < levels_.size() &&
          (levels_[level + 1].pending_entries > 1 ||
           levels_[level + 1].pages_flushed > 0)) {
        continue;  // more structure above; keep flushing upward
      }
      // Root is this level's only page.
      index_.root_page_ = (level == 0) ? 0 : index_.internal_log_.num_pages() - 1;
      index_.height_ = static_cast<uint32_t>(level + 1);
      return std::move(index_);
    }
  }
}

}  // namespace pds::embdb
