#include "embdb/database.h"

#include "embdb/query_parser.h"

#include <set>

namespace pds::embdb {

namespace {
std::string IndexKey(const std::string& table, const std::string& column) {
  return table + "." + column;
}
}  // namespace

Status Database::CreateTable(const Schema& schema,
                             const TableOptions& options) {
  if (tables_.count(schema.name()) != 0) {
    return Status::AlreadyExists("table " + schema.name());
  }
  PDS_ASSIGN_OR_RETURN(flash::Partition data,
                       allocator_.Allocate(options.data_blocks));
  PDS_ASSIGN_OR_RETURN(flash::Partition dir,
                       allocator_.Allocate(options.directory_blocks));
  PDS_ASSIGN_OR_RETURN(flash::Partition tombs,
                       allocator_.Allocate(options.tombstone_blocks));
  tables_[schema.name()] =
      std::make_unique<TableHeap>(schema, data, dir, tombs);
  return Status::Ok();
}

TableHeap* Database::table(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<std::unique_ptr<KeyLogIndex>> Database::NewKeyLog(
    const IndexOptions& options) {
  PDS_ASSIGN_OR_RETURN(flash::Partition keys,
                       allocator_.Allocate(options.keys_blocks));
  PDS_ASSIGN_OR_RETURN(flash::Partition bloom,
                       allocator_.Allocate(options.bloom_blocks));
  auto index = std::make_unique<KeyLogIndex>(keys, bloom, gauge_,
                                             options.key_log);
  PDS_RETURN_IF_ERROR(index->Init());
  return index;
}

Status Database::CreateKeyIndex(const std::string& table_name,
                                const std::string& column,
                                const IndexOptions& options) {
  TableHeap* heap = table(table_name);
  if (heap == nullptr) {
    return Status::NotFound("table " + table_name);
  }
  int col = heap->schema().ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("column " + column + " in " + table_name);
  }
  std::string key = IndexKey(table_name, column);
  if (indexes_.count(key) != 0) {
    return Status::AlreadyExists("index on " + key);
  }
  if (heap->num_rows() != 0) {
    return Status::FailedPrecondition(
        "create indexes before loading data (log-only maintenance)");
  }
  IndexEntry entry;
  entry.column = col;
  entry.options = options;
  PDS_ASSIGN_OR_RETURN(entry.delta, NewKeyLog(options));
  indexes_[key] = std::move(entry);
  return Status::Ok();
}

Result<uint64_t> Database::Insert(const std::string& table_name,
                                  const Tuple& tuple) {
  TableHeap* heap = table(table_name);
  if (heap == nullptr) {
    return Status::NotFound("table " + table_name);
  }
  PDS_ASSIGN_OR_RETURN(uint64_t rowid, heap->Insert(tuple));
  // Maintain registered indexes.
  std::string prefix = table_name + ".";
  for (auto& [key, entry] : indexes_) {
    if (key.rfind(prefix, 0) == 0) {
      PDS_RETURN_IF_ERROR(entry.delta->Insert(
          tuple[static_cast<size_t>(entry.column)], rowid));
    }
  }
  return rowid;
}

Status Database::Delete(const std::string& table_name, uint64_t rowid) {
  TableHeap* heap = table(table_name);
  if (heap == nullptr) {
    return Status::NotFound("table " + table_name);
  }
  return heap->Delete(rowid);
}

Status Database::ReorganizeIndex(const std::string& table_name,
                                 const std::string& column,
                                 size_t sort_ram_bytes) {
  auto it = indexes_.find(IndexKey(table_name, column));
  if (it == indexes_.end()) {
    return Status::NotFound("no index on " + table_name + "." + column);
  }
  IndexEntry& entry = it->second;
  if (entry.tree != nullptr) {
    return Status::FailedPrecondition(
        "index already reorganized (incremental re-reorganization of "
        "tree + delta is future work, as in the paper)");
  }
  Reorganizer::Options opts;
  opts.sort_ram_bytes = sort_ram_bytes;
  PDS_ASSIGN_OR_RETURN(TreeIndex tree,
                       Reorganizer::Reorganize(entry.delta.get(), &allocator_,
                                               gauge_, opts));
  entry.tree = std::make_unique<TreeIndex>(std::move(tree));
  // Fresh delta for subsequent inserts; the old log stops growing.
  PDS_ASSIGN_OR_RETURN(entry.delta, NewKeyLog(entry.options));
  return Status::Ok();
}

Status Database::SelectViaIndex(
    const std::string& table_name, const std::string& column,
    const Value& key,
    const std::function<Status(uint64_t, const Tuple&)>& emit) {
  TableHeap* heap = table(table_name);
  if (heap == nullptr) {
    return Status::NotFound("table " + table_name);
  }
  auto it = indexes_.find(IndexKey(table_name, column));
  if (it == indexes_.end()) {
    return Status::NotFound("no index on " + table_name + "." + column);
  }
  IndexEntry& entry = it->second;

  std::set<uint64_t> rowids;  // dedup across tree + delta
  if (entry.tree != nullptr) {
    std::vector<uint64_t> from_tree;
    TreeIndex::LookupStats stats;
    PDS_RETURN_IF_ERROR(entry.tree->Lookup(key, &from_tree, &stats));
    rowids.insert(from_tree.begin(), from_tree.end());
  }
  std::vector<uint64_t> from_delta;
  KeyLogIndex::LookupStats stats;
  PDS_RETURN_IF_ERROR(entry.delta->Lookup(key, &from_delta, &stats));
  rowids.insert(from_delta.begin(), from_delta.end());

  for (uint64_t rowid : rowids) {
    if (heap->IsDeleted(rowid)) {
      continue;  // stale index entry for a forgotten row
    }
    PDS_ASSIGN_OR_RETURN(Tuple tuple, heap->Get(rowid));
    PDS_RETURN_IF_ERROR(emit(rowid, tuple));
  }
  return Status::Ok();
}

Status Database::Query(const std::string& sql,
                       const std::function<Status(const Tuple&)>& emit) {
  PDS_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSelect(sql));
  TableHeap* heap = table(parsed.table);
  if (heap == nullptr) {
    return Status::NotFound("table " + parsed.table);
  }
  PDS_ASSIGN_OR_RETURN(BoundQuery bound, Bind(parsed, heap->schema()));

  // Aggregate queries fold the row stream into the streaming Aggregator
  // and emit one (group, value) row per group at the end.
  if (bound.has_aggregate) {
    auto numeric = [](const Value& v) -> double {
      switch (v.type()) {
        case ColumnType::kUint64:
          return static_cast<double>(v.AsU64());
        case ColumnType::kInt64:
          return static_cast<double>(v.AsI64());
        case ColumnType::kDouble:
          return v.AsF64();
        case ColumnType::kString:
          return 0.0;
      }
      return 0.0;
    };
    Aggregator aggregator(bound.agg_func, gauge_);
    PDS_RETURN_IF_ERROR(SelectScan(
        parsed.table, bound.predicates,
        [&](uint64_t, const Tuple& tuple) {
          Value group = bound.group_column >= 0
                            ? tuple[static_cast<size_t>(bound.group_column)]
                            : Value::Str("*");
          double v =
              bound.agg_column >= 0
                  ? numeric(tuple[static_cast<size_t>(bound.agg_column)])
                  : 0.0;
          return aggregator.Add(group, v);
        }));
    for (const Aggregator::GroupResult& g : aggregator.Finish()) {
      Tuple row;
      if (bound.group_column >= 0) {
        row.push_back(g.group);
      }
      row.push_back(Value::F64(g.value));
      PDS_RETURN_IF_ERROR(emit(row));
    }
    return Status::Ok();
  }

  auto project_and_emit = [&](uint64_t rowid, const Tuple& tuple) {
    (void)rowid;
    if (bound.projection.empty()) {
      return emit(tuple);
    }
    Tuple projected;
    projected.reserve(bound.projection.size());
    for (int idx : bound.projection) {
      projected.push_back(tuple[static_cast<size_t>(idx)]);
    }
    return emit(projected);
  };

  // Planner-lite: pick the first equality predicate backed by an index.
  for (size_t i = 0; i < bound.predicates.size(); ++i) {
    const Predicate& p = bound.predicates[i];
    if (p.op != Predicate::Op::kEq) {
      continue;
    }
    const std::string& column_name =
        heap->schema().columns()[static_cast<size_t>(p.column)].name;
    if (indexes_.count(IndexKey(parsed.table, column_name)) == 0) {
      continue;
    }
    std::vector<Predicate> residual;
    for (size_t j = 0; j < bound.predicates.size(); ++j) {
      if (j != i) {
        residual.push_back(bound.predicates[j]);
      }
    }
    return SelectViaIndex(
        parsed.table, column_name, p.constant,
        [&](uint64_t rowid, const Tuple& tuple) {
          for (const Predicate& r : residual) {
            if (!r.Eval(tuple)) {
              return Status::Ok();
            }
          }
          return project_and_emit(rowid, tuple);
        });
  }

  return SelectScan(parsed.table, bound.predicates, project_and_emit);
}

Status Database::SelectScan(
    const std::string& table_name, const std::vector<Predicate>& predicates,
    const std::function<Status(uint64_t, const Tuple&)>& emit) {
  TableHeap* heap = table(table_name);
  if (heap == nullptr) {
    return Status::NotFound("table " + table_name);
  }
  return ScanFilter(heap, predicates, emit);
}

KeyLogIndex* Database::key_index(const std::string& table_name,
                                 const std::string& column) {
  auto it = indexes_.find(IndexKey(table_name, column));
  return it == indexes_.end() ? nullptr : it->second.delta.get();
}

TreeIndex* Database::tree_index(const std::string& table_name,
                                const std::string& column) {
  auto it = indexes_.find(IndexKey(table_name, column));
  return it == indexes_.end() ? nullptr : it->second.tree.get();
}

}  // namespace pds::embdb
