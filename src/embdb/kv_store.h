#ifndef PDS_EMBDB_KV_STORE_H_
#define PDS_EMBDB_KV_STORE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "embdb/key_index.h"
#include "flash/flash.h"
#include "logstore/sequential_log.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {

/// Log-only key-value store for the tutorial's "extend the principles to
/// other data models ... NoSQL & key-value stores" challenge.
///
/// Layout (all append-only):
///  - a value log (RecordLog) holding versioned values;
///  - a PBFilter-style key index mapping key -> value-log addresses.
///
/// Updates append a new version; Get returns the *latest* version (the
/// largest address among the key's postings). Deletes append a tombstone.
/// Contrast with the RAM-hungry flash KV stores the tutorial reviews
/// (SkimpyStash/SILT need ~1+ byte of RAM per key; here RAM is a constant
/// few pages regardless of the key population).
class KvStore {
 public:
  struct Options {
    KeyLogIndex::Options index;
  };

  KvStore(flash::Partition value_partition, flash::Partition keys_partition,
          flash::Partition bloom_partition, mcu::RamGauge* gauge,
          const Options& options);

  /// Charges the resident RAM (the index's page buffers).
  [[nodiscard]] Status Init();

  [[nodiscard]] Status Put(const std::string& key, ByteView value);
  /// Latest value; NotFound if never written or deleted.
  [[nodiscard]] Result<Bytes> Get(const std::string& key);
  [[nodiscard]] Status Delete(const std::string& key);
  /// False for absent and deleted keys.
  [[nodiscard]] Result<bool> Contains(const std::string& key);

  /// Rewrites only the live (latest, non-deleted) versions into fresh
  /// partitions and returns the old blocks to the allocator — the
  /// "de-allocation on the block grain" end of the log lifecycle. The
  /// key->latest-address map lives in RAM during the pass (documented
  /// trade; proportional to live keys, not versions).
  [[nodiscard]] Status Compact(flash::PartitionAllocator* allocator);

  /// Live versions are those returned by Get; this counts every appended
  /// version (the log grows until compaction).
  uint64_t num_versions() const { return num_versions_; }
  uint64_t num_puts() const { return num_puts_; }
  uint64_t num_deletes() const { return num_deletes_; }

 private:
  static constexpr uint8_t kValueTag = 0x01;
  static constexpr uint8_t kTombstoneTag = 0x00;

  mcu::RamGauge* gauge_;
  Options options_;
  flash::Partition value_partition_;
  flash::Partition keys_partition_;
  flash::Partition bloom_partition_;
  logstore::RecordLog values_;
  std::unique_ptr<KeyLogIndex> index_;
  uint64_t num_versions_ = 0;
  uint64_t num_puts_ = 0;
  uint64_t num_deletes_ = 0;
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_KV_STORE_H_
