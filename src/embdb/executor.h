#ifndef PDS_EMBDB_EXECUTOR_H_
#define PDS_EMBDB_EXECUTOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "embdb/join_index.h"
#include "embdb/table_heap.h"
#include "embdb/value.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {

/// column <op> constant.
struct Predicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

  int column = 0;
  Op op = Op::kEq;
  Value constant;

  bool Eval(const Tuple& tuple) const;
};

/// Streams (rowid, tuple) pairs of `table` satisfying all `predicates`
/// (full scan + filter: the no-index baseline of E1).
[[nodiscard]] Status ScanFilter(TableHeap* table, const std::vector<Predicate>& predicates,
                  const std::function<Status(uint64_t, const Tuple&)>& emit);

/// Intersection of several ascending rowid lists (the pipeline "merge on
/// sorted row ids" of the tutorial's execution plan).
std::vector<uint64_t> IntersectSorted(
    const std::vector<std::vector<uint64_t>>& lists);

/// A select-project-join query over a JoinPath, in the shape of the
/// tutorial's TPC-D example:
///   SELECT <projections> FROM root ⋈ path
///   WHERE node_a.col = const_a AND node_b.col = const_b ...
struct SpjQuery {
  struct Selection {
    /// Path-node index carrying the predicate column, -1 for the root.
    int node = -1;
    int column = 0;
    Value constant;
  };
  struct Projection {
    int node = -1;  // -1 = root
    int column = 0;
  };

  std::vector<Selection> selections;
  std::vector<Projection> projections;
};

/// Per-query execution counters.
struct SpjStats {
  uint64_t rowids_from_indexes = 0;
  uint64_t result_rows = 0;
};

/// One pipeline stage of a profiled query: row cardinalities, the
/// flash::Stats delta attributable to the stage, and the RAM high-water
/// reached while it ran. `op` is a static literal (no per-query heap).
struct StageProfile {
  const char* op = "";
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  flash::Stats flash;
  size_t ram_peak_bytes = 0;
};

/// EXPLAIN ANALYZE surface of the embedded executor: filled by
/// SpjExecutor::Execute when requested. Stages are contiguous — their flash
/// deltas sum exactly to the chip's stats delta over the whole call, which
/// the obs tests assert.
struct QueryProfile {
  std::vector<StageProfile> stages;

  uint64_t total_page_reads() const;
  /// Human-readable table, one line per stage.
  std::string ToString() const;
};

/// Pipeline SPJ executor: one Tselect lookup per selection (sorted root
/// rowids), rowid-merge intersection, then Tjoin + tuple fetches per
/// surviving root row. RAM: the rowid lists (charged) + one row.
class SpjExecutor {
 public:
  SpjExecutor(const JoinPath& path, TjoinIndex* tjoin,
              std::vector<TselectIndex*> tselects, mcu::RamGauge* gauge)
      : path_(path),
        tjoin_(tjoin),
        tselects_(std::move(tselects)),
        gauge_(gauge) {}

  /// `tselects` must align 1:1 with `query.selections`.
  [[nodiscard]] Status Execute(const SpjQuery& query,
                 const std::function<Status(const Tuple&)>& emit,
                 SpjStats* stats);

  /// As above, additionally filling `profile` (may be null) with one
  /// StageProfile per pipeline stage: "tselect", "merge", "join-fetch".
  /// Requesting a profile resets the gauge's high-water mark per stage.
  [[nodiscard]] Status Execute(const SpjQuery& query,
                 const std::function<Status(const Tuple&)>& emit,
                 SpjStats* stats, QueryProfile* profile);

 private:
  const JoinPath& path_;
  TjoinIndex* tjoin_;
  std::vector<TselectIndex*> tselects_;
  mcu::RamGauge* gauge_;
};

/// RAM-hungry baseline ("Join algorithms consume lots of RAM"): hash-joins
/// by materializing every non-root table into RAM, charging the MCU gauge.
/// Fails with ResourceExhausted when the data outgrows the chip's RAM —
/// exactly the failure the Tjoin pipeline avoids.
class NaiveHashJoinSpj {
 public:
  NaiveHashJoinSpj(const JoinPath& path, mcu::RamGauge* gauge)
      : path_(path), gauge_(gauge) {}

  [[nodiscard]] Status Execute(const SpjQuery& query,
                 const std::function<Status(const Tuple&)>& emit,
                 SpjStats* stats);

 private:
  const JoinPath& path_;
  mcu::RamGauge* gauge_;
};

/// Streaming aggregate over (group key, value) pairs; groups are held in
/// RAM and charged to the gauge.
class Aggregator {
 public:
  enum class Func { kCount, kSum, kAvg, kMin, kMax };

  struct GroupResult {
    Value group;
    double value = 0;
    uint64_t count = 0;
  };

  Aggregator(Func func, mcu::RamGauge* gauge) : func_(func), gauge_(gauge) {}
  ~Aggregator();

  [[nodiscard]] Status Add(const Value& group, double value);
  /// Finalizes and returns groups in ascending group order.
  std::vector<GroupResult> Finish();

 private:
  struct State {
    double sum = 0;
    double min = 0;
    double max = 0;
    uint64_t count = 0;
  };

  Func func_;
  mcu::RamGauge* gauge_;
  std::map<Value, State> groups_;
  size_t charged_ = 0;
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_EXECUTOR_H_
