#ifndef PDS_EMBDB_KEY_INDEX_H_
#define PDS_EMBDB_KEY_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "embdb/bloom.h"
#include "embdb/value.h"
#include "flash/flash.h"
#include "logstore/sequential_log.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {

/// PBFilter-style selection index built from two sequential logs
/// (tutorial slide "How to build an index in log structures?"):
///
///  - Log1 "Keys": (key, rowid) entries appended at tuple insertion,
///    packed into pages (vertical partition of the indexed column).
///  - Log2 "Bloom Filters": one Bloom summary per Keys page, itself packed
///    into pages (~2 bytes per key).
///
/// Lookup scans Log2 (cheap: |Log2| page reads), then reads only the Keys
/// pages whose summary is positive: |Log2| IOs + ~1 IO per true hit plus a
/// tunable false-positive tax — the "Summary Scan (17 IOs)" vs "Table scan
/// (640 IOs)" figure of the tutorial, reproduced by bench_bloom_index.
class KeyLogIndex {
 public:
  struct Options {
    double bits_per_key = 16.0;
  };

  /// IO breakdown of one lookup, for benchmarks and tests.
  struct LookupStats {
    uint32_t summary_pages = 0;      // Log2 pages read
    uint32_t key_pages = 0;          // Log1 pages read (bloom positives)
    uint32_t false_positive_pages = 0;  // Log1 pages read with no match
    uint32_t matches = 0;
  };

  KeyLogIndex(flash::Partition keys_partition,
              flash::Partition bloom_partition, mcu::RamGauge* gauge,
              const Options& options);
  ~KeyLogIndex();

  KeyLogIndex(const KeyLogIndex&) = delete;
  KeyLogIndex& operator=(const KeyLogIndex&) = delete;

  /// Charges the index's resident RAM (two page buffers + one open filter).
  [[nodiscard]] Status Init();

  /// Appends one (key, rowid) entry.
  [[nodiscard]] Status Insert(const Value& key, uint64_t rowid);

  /// Finds all rowids whose key equals `key`.
  [[nodiscard]] Status Lookup(const Value& key, std::vector<uint64_t>* rowids,
                LookupStats* stats);

  /// Streams every entry in insertion order (used by reorganization).
  /// The callback receives the 24-byte encoded key and the rowid.
  [[nodiscard]] Status ScanEntries(
      const std::function<Status(const uint8_t*, uint64_t)>& emit);

  uint64_t num_entries() const { return num_entries_; }
  uint32_t num_key_pages_flushed() const { return keys_log_.num_pages(); }
  uint32_t num_summary_pages_flushed() const { return bloom_log_.num_pages(); }

  static constexpr size_t kEntrySize = Value::kKeyWidth + 8;  // key + rowid

 private:
  size_t entries_per_page() const {
    return keys_log_.page_size() / kEntrySize;
  }
  size_t filters_per_page() const {
    return bloom_log_.page_size() / filter_bytes_;
  }

  /// Programs the buffered keys page and appends its filter to the bloom
  /// buffer (programming a bloom page when that fills too).
  [[nodiscard]] Status FlushKeysPage();

  logstore::SequentialLog keys_log_;
  logstore::SequentialLog bloom_log_;
  mcu::RamGauge* gauge_;
  Options options_;

  size_t filter_bytes_ = 0;
  uint32_t num_probes_ = 1;
  bool initialized_ = false;
  size_t charged_ram_ = 0;

  Bytes keys_buffer_;           // packed entries of the open keys page
  Bytes bloom_buffer_;          // packed filters of the open bloom page
  std::unique_ptr<BloomFilter> open_filter_;  // filter of the open keys page
  uint64_t num_entries_ = 0;
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_KEY_INDEX_H_
