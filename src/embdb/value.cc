#include "embdb/value.h"

#include <cmath>
#include <cstring>

namespace pds::embdb {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kUint64:
      return "UINT64";
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

Value Value::U64(uint64_t v) {
  Value out;
  out.type_ = ColumnType::kUint64;
  out.num_ = v;
  return out;
}

Value Value::I64(int64_t v) {
  Value out;
  out.type_ = ColumnType::kInt64;
  out.num_ = static_cast<uint64_t>(v);
  return out;
}

Value Value::F64(double v) {
  Value out;
  out.type_ = ColumnType::kDouble;
  out.dbl_ = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.type_ = ColumnType::kString;
  out.str_ = std::move(v);
  return out;
}

int Value::Compare(const Value& a, const Value& b) {
  if (a.type_ != b.type_) {
    return a.type_ < b.type_ ? -1 : 1;
  }
  switch (a.type_) {
    case ColumnType::kUint64:
      if (a.num_ != b.num_) return a.num_ < b.num_ ? -1 : 1;
      return 0;
    case ColumnType::kInt64: {
      int64_t x = a.AsI64(), y = b.AsI64();
      if (x != y) return x < y ? -1 : 1;
      return 0;
    }
    case ColumnType::kDouble:
      if (a.dbl_ != b.dbl_) return a.dbl_ < b.dbl_ ? -1 : 1;
      return 0;
    case ColumnType::kString:
      return a.str_.compare(b.str_) < 0   ? -1
             : a.str_.compare(b.str_) > 0 ? 1
                                          : 0;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ColumnType::kUint64:
      return std::to_string(num_);
    case ColumnType::kInt64:
      return std::to_string(AsI64());
    case ColumnType::kDouble:
      return std::to_string(dbl_);
    case ColumnType::kString:
      return str_;
  }
  return "";
}

void Value::EncodeKey(uint8_t out[kKeyWidth]) const {
  std::memset(out, 0, kKeyWidth);
  switch (type_) {
    case ColumnType::kUint64: {
      // Big-endian in the first 8 bytes.
      for (int i = 0; i < 8; ++i) {
        out[i] = static_cast<uint8_t>(num_ >> (56 - 8 * i));
      }
      break;
    }
    case ColumnType::kInt64: {
      // Flip the sign bit so negative < positive under memcmp.
      uint64_t biased = num_ ^ 0x8000000000000000ULL;
      for (int i = 0; i < 8; ++i) {
        out[i] = static_cast<uint8_t>(biased >> (56 - 8 * i));
      }
      break;
    }
    case ColumnType::kDouble: {
      // IEEE-754 total-order trick: flip all bits of negatives, flip the
      // sign bit of positives.
      uint64_t bits;
      std::memcpy(&bits, &dbl_, 8);
      if (bits & 0x8000000000000000ULL) {
        bits = ~bits;
      } else {
        bits |= 0x8000000000000000ULL;
      }
      for (int i = 0; i < 8; ++i) {
        out[i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
      }
      break;
    }
    case ColumnType::kString: {
      size_t n = std::min(str_.size(), kKeyWidth);
      std::memcpy(out, str_.data(), n);
      break;
    }
  }
}

void EncodeTuple(const std::vector<ColumnType>& types, const Tuple& tuple,
                 Bytes* out) {
  for (size_t i = 0; i < types.size() && i < tuple.size(); ++i) {
    const Value& v = tuple[i];
    switch (types[i]) {
      case ColumnType::kUint64:
      case ColumnType::kInt64:
        PutU64(out, v.AsU64());
        break;
      case ColumnType::kDouble: {
        double d = v.AsF64();
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        PutU64(out, bits);
        break;
      }
      case ColumnType::kString:
        PutLengthPrefixed(out, ByteView(std::string_view(v.AsStr())));
        break;
    }
  }
}

Result<Tuple> DecodeTuple(const std::vector<ColumnType>& types, ByteView in) {
  Tuple tuple;
  tuple.reserve(types.size());
  size_t pos = 0;
  for (ColumnType type : types) {
    switch (type) {
      case ColumnType::kUint64: {
        if (pos + 8 > in.size()) {
          return Status::Corruption("truncated tuple (u64)");
        }
        tuple.push_back(Value::U64(GetU64(in.data() + pos)));
        pos += 8;
        break;
      }
      case ColumnType::kInt64: {
        if (pos + 8 > in.size()) {
          return Status::Corruption("truncated tuple (i64)");
        }
        tuple.push_back(
            Value::I64(static_cast<int64_t>(GetU64(in.data() + pos))));
        pos += 8;
        break;
      }
      case ColumnType::kDouble: {
        if (pos + 8 > in.size()) {
          return Status::Corruption("truncated tuple (f64)");
        }
        uint64_t bits = GetU64(in.data() + pos);
        double d;
        std::memcpy(&d, &bits, 8);
        tuple.push_back(Value::F64(d));
        pos += 8;
        break;
      }
      case ColumnType::kString: {
        ByteView s;
        if (!GetLengthPrefixed(in, &pos, &s)) {
          return Status::Corruption("truncated tuple (string)");
        }
        tuple.push_back(Value::Str(s.ToString()));
        break;
      }
    }
  }
  return tuple;
}

}  // namespace pds::embdb
