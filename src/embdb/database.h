#ifndef PDS_EMBDB_DATABASE_H_
#define PDS_EMBDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "embdb/executor.h"
#include "embdb/join_index.h"
#include "embdb/key_index.h"
#include "embdb/reorganize.h"
#include "embdb/schema.h"
#include "embdb/table_heap.h"
#include "embdb/tree_index.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {

/// The embedded relational database of Part II: tables in sequential logs,
/// PBFilter-style key-log indexes maintained at insertion, and on-demand
/// reorganization of an index into a B-tree-like structure. After a
/// reorganization, new insertions flow into a fresh delta key-log and
/// lookups merge tree + delta — the old log simply stops growing, exactly
/// the log-only lifecycle of the tutorial.
class Database {
 public:
  struct TableOptions {
    uint32_t data_blocks = 16;
    uint32_t directory_blocks = 4;
    uint32_t tombstone_blocks = 1;
  };
  struct IndexOptions {
    KeyLogIndex::Options key_log;
    uint32_t keys_blocks = 8;
    uint32_t bloom_blocks = 2;
  };

  Database(flash::FlashChip* chip, mcu::RamGauge* gauge)
      : allocator_(chip), gauge_(gauge) {}

  [[nodiscard]] Status CreateTable(const Schema& schema, const TableOptions& options);
  TableHeap* table(const std::string& name);

  /// Inserts a tuple, maintaining every index registered on the table.
  [[nodiscard]] Result<uint64_t> Insert(const std::string& table_name, const Tuple& tuple);

  /// Tombstones a row — the owner's "right to be forgotten". Index entries
  /// keep the stale rowid (logs are immutable); every read path filters
  /// tombstoned rows out.
  [[nodiscard]] Status Delete(const std::string& table_name, uint64_t rowid);

  /// Registers a key-log index on a column; future inserts maintain it.
  /// (Create indexes before loading data, as on a real PDS.)
  [[nodiscard]] Status CreateKeyIndex(const std::string& table_name,
                        const std::string& column,
                        const IndexOptions& options);

  /// Reorganizes the index on (table, column) into a tree; new inserts go
  /// to a fresh delta key-log.
  [[nodiscard]] Status ReorganizeIndex(const std::string& table_name,
                         const std::string& column,
                         size_t sort_ram_bytes = 16 * 1024);

  /// Equality select through the index on (table, column): tree (if
  /// reorganized) plus the delta key-log. Emits (rowid, tuple).
  [[nodiscard]] Status SelectViaIndex(
      const std::string& table_name, const std::string& column,
      const Value& key,
      const std::function<Status(uint64_t, const Tuple&)>& emit);

  /// Textual query entry point for the embedded-SQL subset:
  ///   SELECT cols|* FROM table [WHERE col op literal [AND ...]]
  /// Planner-lite: an equality predicate on an indexed column routes
  /// through the index (tree + delta) with residual predicates applied;
  /// otherwise a scan-filter runs. Emits projected tuples.
  [[nodiscard]] Status Query(const std::string& sql,
               const std::function<Status(const Tuple&)>& emit);

  /// Full-scan select with arbitrary predicates.
  [[nodiscard]] Status SelectScan(
      const std::string& table_name,
      const std::vector<Predicate>& predicates,
      const std::function<Status(uint64_t, const Tuple&)>& emit);

  /// Direct access to the index structures (benchmarks, tests).
  KeyLogIndex* key_index(const std::string& table_name,
                         const std::string& column);
  TreeIndex* tree_index(const std::string& table_name,
                        const std::string& column);

  flash::PartitionAllocator* allocator() { return &allocator_; }
  mcu::RamGauge* gauge() { return gauge_; }

 private:
  struct IndexEntry {
    int column = -1;
    IndexOptions options;
    std::unique_ptr<KeyLogIndex> delta;  // receives new inserts
    std::unique_ptr<TreeIndex> tree;     // set after reorganization
  };

  [[nodiscard]] Result<std::unique_ptr<KeyLogIndex>> NewKeyLog(const IndexOptions& options);

  flash::PartitionAllocator allocator_;
  mcu::RamGauge* gauge_;
  std::map<std::string, std::unique_ptr<TableHeap>> tables_;
  // Keyed by "table.column".
  std::map<std::string, IndexEntry> indexes_;
};

}  // namespace pds::embdb

#endif  // PDS_EMBDB_DATABASE_H_
