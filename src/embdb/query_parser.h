#ifndef PDS_EMBDB_QUERY_PARSER_H_
#define PDS_EMBDB_QUERY_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "embdb/executor.h"
#include "embdb/schema.h"

namespace pds::embdb {

/// A parsed (unbound) predicate: column by name, literal still textual.
struct ParsedPredicate {
  std::string column;
  Predicate::Op op = Predicate::Op::kEq;
  std::string literal;
  bool literal_is_string = false;  // quoted in the source
};

/// Optional aggregate in the projection: AGG(column) or COUNT(*).
struct ParsedAggregate {
  Aggregator::Func func = Aggregator::Func::kCount;
  std::string column;  // empty for COUNT(*)
};

/// A parsed single-table select.
struct ParsedQuery {
  std::vector<std::string> columns;  // empty = * (or the GROUP BY column)
  std::string table;
  std::vector<ParsedPredicate> where;
  std::optional<ParsedAggregate> aggregate;
  std::string group_by;  // empty = no grouping
};

/// Parses the embedded-SQL subset:
///
///   SELECT * | col [, col]* FROM table
///     [WHERE col (= | != | < | <= | > | >=) literal [AND ...]]
///   SELECT [gcol ,] COUNT(*)|SUM(c)|AVG(c)|MIN(c)|MAX(c) FROM table
///     [WHERE ...] [GROUP BY gcol]
///
/// Literals: integers (42, -7), decimals (3.5), single-quoted strings
/// ('Lyon', with '' escaping a quote). Keywords are case-insensitive;
/// identifiers are kept verbatim.
[[nodiscard]] Result<ParsedQuery> ParseSelect(std::string_view sql);

/// Binds a parsed query against a schema: resolves column indexes and
/// coerces literals to the column types (InvalidArgument on mismatch).
struct BoundQuery {
  std::vector<int> projection;  // empty = all columns
  std::vector<Predicate> predicates;
  bool has_aggregate = false;
  Aggregator::Func agg_func = Aggregator::Func::kCount;
  int agg_column = -1;    // -1 for COUNT(*)
  int group_column = -1;  // -1 = single global group
};
[[nodiscard]] Result<BoundQuery> Bind(const ParsedQuery& query, const Schema& schema);

}  // namespace pds::embdb

#endif  // PDS_EMBDB_QUERY_PARSER_H_
