#include "embdb/kv_store.h"

#include <algorithm>
#include <map>

namespace pds::embdb {

KvStore::KvStore(flash::Partition value_partition,
                 flash::Partition keys_partition,
                 flash::Partition bloom_partition, mcu::RamGauge* gauge,
                 const Options& options)
    : gauge_(gauge),
      options_(options),
      value_partition_(value_partition),
      keys_partition_(keys_partition),
      bloom_partition_(bloom_partition),
      values_(value_partition),
      index_(std::make_unique<KeyLogIndex>(keys_partition, bloom_partition,
                                           gauge, options.index)) {}

Status KvStore::Init() { return index_->Init(); }

Status KvStore::Put(const std::string& key, ByteView value) {
  // The record embeds the full key: the index matches only a 24-byte
  // order-preserving prefix, so Get re-checks the exact key.
  Bytes record;
  record.push_back(kValueTag);
  PutLengthPrefixed(&record, ByteView(std::string_view(key)));
  record.insert(record.end(), value.data(), value.data() + value.size());
  PDS_ASSIGN_OR_RETURN(uint64_t address, values_.Append(ByteView(record)));
  PDS_RETURN_IF_ERROR(index_->Insert(Value::Str(key), address));
  ++num_versions_;
  ++num_puts_;
  return Status::Ok();
}

Status KvStore::Delete(const std::string& key) {
  Bytes record;
  record.push_back(kTombstoneTag);
  PutLengthPrefixed(&record, ByteView(std::string_view(key)));
  PDS_ASSIGN_OR_RETURN(uint64_t address, values_.Append(ByteView(record)));
  PDS_RETURN_IF_ERROR(index_->Insert(Value::Str(key), address));
  ++num_versions_;
  ++num_deletes_;
  return Status::Ok();
}

Result<Bytes> KvStore::Get(const std::string& key) {
  std::vector<uint64_t> addresses;
  KeyLogIndex::LookupStats stats;
  PDS_RETURN_IF_ERROR(index_->Lookup(Value::Str(key), &addresses, &stats));
  if (addresses.empty()) {
    return Status::NotFound("key '" + key + "'");
  }
  // Addresses grow with the value log: scan from the newest version down,
  // skipping records whose exact key differs (index prefix collisions).
  std::sort(addresses.begin(), addresses.end());
  for (size_t i = addresses.size(); i-- > 0;) {
    Bytes record;
    PDS_RETURN_IF_ERROR(values_.ReadAt(addresses[i], &record));
    if (record.empty()) {
      return Status::Corruption("empty kv record");
    }
    size_t pos = 1;
    ByteView stored_key;
    if (!GetLengthPrefixed(ByteView(record), &pos, &stored_key)) {
      return Status::Corruption("kv record missing key");
    }
    if (stored_key.ToString() != key) {
      continue;  // a different key sharing the 24-byte prefix
    }
    if (record[0] == kTombstoneTag) {
      return Status::NotFound("key '" + key + "' (deleted)");
    }
    return Bytes(record.begin() + static_cast<long>(pos), record.end());
  }
  return Status::NotFound("key '" + key + "'");
}

Status KvStore::Compact(flash::PartitionAllocator* allocator) {
  // Pass 1: latest version address per key (skipping superseded ones).
  std::map<std::string, std::pair<uint64_t, bool>> latest;  // addr, tomb
  {
    logstore::RecordLog::Reader reader = values_.NewReader();
    Bytes record;
    while (!reader.AtEnd()) {
      uint64_t address = reader.offset();
      PDS_RETURN_IF_ERROR(reader.Next(&record));
      if (record.empty()) {
        return Status::Corruption("empty kv record");
      }
      size_t pos = 1;
      ByteView key;
      if (!GetLengthPrefixed(ByteView(record), &pos, &key)) {
        return Status::Corruption("kv record missing key");
      }
      latest[key.ToString()] = {address, record[0] == kTombstoneTag};
    }
  }

  // Fresh partitions sized like the originals.
  PDS_ASSIGN_OR_RETURN(flash::Partition new_values,
                       allocator->Allocate(value_partition_.num_blocks()));
  PDS_ASSIGN_OR_RETURN(flash::Partition new_keys,
                       allocator->Allocate(keys_partition_.num_blocks()));
  PDS_ASSIGN_OR_RETURN(flash::Partition new_bloom,
                       allocator->Allocate(bloom_partition_.num_blocks()));

  logstore::RecordLog new_log(new_values);
  auto new_index = std::make_unique<KeyLogIndex>(new_keys, new_bloom, gauge_,
                                                 options_.index);
  PDS_RETURN_IF_ERROR(new_index->Init());

  // Pass 2: carry the live versions over.
  uint64_t live = 0;
  Bytes record;
  for (const auto& [key, entry] : latest) {
    if (entry.second) {
      continue;  // tombstone: the key is gone for good after compaction
    }
    PDS_RETURN_IF_ERROR(values_.ReadAt(entry.first, &record));
    PDS_ASSIGN_OR_RETURN(uint64_t address, new_log.Append(ByteView(record)));
    PDS_RETURN_IF_ERROR(new_index->Insert(Value::Str(key), address));
    ++live;
  }

  // Swap in, give the old blocks back.
  PDS_RETURN_IF_ERROR(allocator->Free(value_partition_));
  PDS_RETURN_IF_ERROR(allocator->Free(keys_partition_));
  PDS_RETURN_IF_ERROR(allocator->Free(bloom_partition_));
  value_partition_ = new_values;
  keys_partition_ = new_keys;
  bloom_partition_ = new_bloom;
  values_ = std::move(new_log);
  index_ = std::move(new_index);
  num_versions_ = live;
  num_puts_ = live;
  num_deletes_ = 0;
  return Status::Ok();
}

Result<bool> KvStore::Contains(const std::string& key) {
  Result<Bytes> value = Get(key);
  if (value.ok()) {
    return true;
  }
  if (value.status().code() == StatusCode::kNotFound) {
    return false;
  }
  return value.status();
}

}  // namespace pds::embdb
