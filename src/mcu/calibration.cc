#include "mcu/calibration.h"

#include <algorithm>
#include <cmath>

namespace pds::mcu {

size_t SearchQueryRam(size_t num_keywords, size_t page_size, size_t top_n,
                      size_t index_buckets, size_t insert_buffer_bytes) {
  size_t cursor_pages = num_keywords * page_size;
  size_t heap = top_n * 16;  // (docid, score) entries
  size_t index_resident = index_buckets * 4 + insert_buffer_bytes;
  return cursor_pages + heap + index_resident;
}

size_t KeyLogIndexRam(size_t page_size, double bits_per_key,
                      size_t entries_per_page) {
  size_t filter_bytes = static_cast<size_t>(
      (static_cast<double>(entries_per_page) * bits_per_key + 7) / 8);
  return page_size /* open keys page */ + page_size /* open bloom page */ +
         filter_bytes;
}

size_t SinglePassSortRam(uint64_t num_records, size_t record_size,
                         size_t page_size) {
  double total = static_cast<double>(num_records) *
                 static_cast<double>(record_size);
  double r = std::sqrt(total * static_cast<double>(page_size));
  // At least one run buffer page and one merge page.
  double floor_bytes = static_cast<double>(2 * page_size);
  return static_cast<size_t>(std::ceil(std::max(r, floor_bytes)));
}

size_t SpjQueryRam(const std::vector<uint64_t>& selection_cardinalities,
                   size_t row_bytes) {
  size_t rowid_lists = 0;
  for (uint64_t c : selection_cardinalities) {
    rowid_lists += static_cast<size_t>(c) * sizeof(uint64_t);
  }
  return rowid_lists + row_bytes;
}

size_t AggregationRam(uint64_t num_groups, size_t group_state_bytes) {
  return static_cast<size_t>(num_groups) * group_state_bytes;
}

std::vector<RamRequirement> CalibrateRam(const WorkloadProfile& p) {
  std::vector<RamRequirement> out;

  out.push_back({"search-query",
                 SearchQueryRam(p.search_keywords, p.page_size, p.search_top_n,
                                p.index_buckets, p.insert_buffer_bytes),
                 "keywords*page + 16*topN + 4*buckets + insert_buffer"});

  size_t entries_per_page = p.page_size / 32;
  out.push_back({"key-log-index",
                 KeyLogIndexRam(p.page_size, 16.0, entries_per_page),
                 "2*page + bits_per_key*entries_per_page/8"});

  out.push_back({"reorganization-sort",
                 SinglePassSortRam(p.largest_index_entries, 32, p.page_size),
                 "sqrt(entries*32*page)  [single merge pass]"});

  std::vector<uint64_t> cards(p.spj_selections,
                              p.spj_max_rowids_per_selection);
  out.push_back({"spj-query", SpjQueryRam(cards, 512),
                 "8*sum(selection cardinalities) + row"});

  out.push_back({"group-by", AggregationRam(p.aggregation_groups),
                 "80*groups"});

  return out;
}

size_t RecommendedRamBudget(const WorkloadProfile& profile) {
  size_t max_bytes = 0;
  for (const RamRequirement& r : CalibrateRam(profile)) {
    max_bytes = std::max(max_bytes, r.bytes);
  }
  // Round up to 1 KB.
  return ((max_bytes + 1023) / 1024) * 1024;
}

}  // namespace pds::mcu
