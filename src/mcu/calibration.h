#ifndef PDS_MCU_CALIBRATION_H_
#define PDS_MCU_CALIBRATION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pds::mcu {

/// Answers the tutorial's open co-design question ("How to calibrate the
/// HW (RAM) to data oriented treatments?"): closed-form minimum-RAM
/// formulas for each embedded treatment, derived from the pipeline
/// algorithms implemented in this library.
///
/// All results are in bytes and deliberately conservative (they include
/// the structures' resident buffers, not C++ object overhead).

/// One line of the calibration report.
struct RamRequirement {
  std::string treatment;
  size_t bytes = 0;
  std::string formula;
};

/// Pipeline top-N search: one flash page per query keyword, the bounded
/// result heap, plus the index's resident buffers.
size_t SearchQueryRam(size_t num_keywords, size_t page_size, size_t top_n,
                      size_t index_buckets, size_t insert_buffer_bytes);

/// Key-log (PBFilter) index residency: open keys page + open bloom page +
/// open filter.
size_t KeyLogIndexRam(size_t page_size, double bits_per_key,
                      size_t entries_per_page);

/// External sort that completes its merge in a single pass over R bytes of
/// run buffer: R must satisfy R/page_size >= total_bytes/R, i.e.
/// R >= sqrt(total_bytes * page_size).
size_t SinglePassSortRam(uint64_t num_records, size_t record_size,
                         size_t page_size);

/// Pipeline SPJ execution: the materialized sorted rowid lists plus one
/// joined row.
size_t SpjQueryRam(const std::vector<uint64_t>& selection_cardinalities,
                   size_t row_bytes);

/// Streaming GROUP BY: the group table.
size_t AggregationRam(uint64_t num_groups, size_t group_state_bytes = 80);

/// Full report for a workload profile on a given flash page size.
struct WorkloadProfile {
  size_t page_size = 2048;
  size_t search_keywords = 5;
  size_t search_top_n = 10;
  size_t index_buckets = 64;
  size_t insert_buffer_bytes = 2048;
  uint64_t largest_index_entries = 1 << 20;
  uint64_t spj_max_rowids_per_selection = 4096;
  size_t spj_selections = 2;
  uint64_t aggregation_groups = 256;
};

std::vector<RamRequirement> CalibrateRam(const WorkloadProfile& profile);

/// The smallest MCU RAM budget (rounded up to a 1 KB multiple) that runs
/// every treatment of the profile.
size_t RecommendedRamBudget(const WorkloadProfile& profile);

}  // namespace pds::mcu

#endif  // PDS_MCU_CALIBRATION_H_
