#ifndef PDS_MCU_RAM_GAUGE_H_
#define PDS_MCU_RAM_GAUGE_H_

#include <cstddef>

#include "common/result.h"
#include "common/status.h"

namespace pds::mcu {

/// Models the tiny RAM of a secure microcontroller (tutorial: "<128 KB",
/// often 64 KB). Every embedded operator charges its working memory here;
/// exceeding the budget returns ResourceExhausted — the software equivalent
/// of "this plan does not fit on the chip".
///
/// The gauge also records the high-water mark, which benchmarks report as
/// the RAM consumption of a query plan.
class RamGauge {
 public:
  explicit RamGauge(size_t budget_bytes) : budget_(budget_bytes) {}

  RamGauge(const RamGauge&) = delete;
  RamGauge& operator=(const RamGauge&) = delete;

  /// Reserves `bytes`; fails when the budget would be exceeded.
  [[nodiscard]] Status Acquire(size_t bytes);

  /// Returns previously acquired bytes. Releasing more than is in use is a
  /// programming error and clamps to zero.
  void Release(size_t bytes);

  size_t budget() const { return budget_; }
  size_t in_use() const { return in_use_; }
  size_t high_water() const { return high_water_; }
  size_t available() const { return budget_ - in_use_; }

  void ResetHighWater() { high_water_ = in_use_; }

 private:
  size_t budget_;
  size_t in_use_ = 0;
  size_t high_water_ = 0;
};

/// RAII charge against a RamGauge; releases on destruction. Move-only.
class RamCharge {
 public:
  RamCharge() : gauge_(nullptr), bytes_(0) {}

  /// Acquires `bytes` from `gauge`; fails if over budget.
  [[nodiscard]] static Result<RamCharge> Make(RamGauge* gauge, size_t bytes);

  RamCharge(const RamCharge&) = delete;
  RamCharge& operator=(const RamCharge&) = delete;
  RamCharge(RamCharge&& other) noexcept;
  RamCharge& operator=(RamCharge&& other) noexcept;
  ~RamCharge();

  /// Grows the charge by `extra` bytes.
  [[nodiscard]] Status Grow(size_t extra);

  size_t bytes() const { return bytes_; }

 private:
  RamCharge(RamGauge* gauge, size_t bytes) : gauge_(gauge), bytes_(bytes) {}

  RamGauge* gauge_;
  size_t bytes_;
};

}  // namespace pds::mcu

#endif  // PDS_MCU_RAM_GAUGE_H_
