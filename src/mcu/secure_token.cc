#include "mcu/secure_token.h"

#include <cstring>

#include "obs/obs.h"

namespace pds::mcu {

namespace {

/// Fleet-wide token metrics, resolved once (function-local static) so every
/// crypto op pays exactly one atomic add per metric.
struct TokenObs {
  obs::Counter* encryptions;
  obs::Counter* decryptions;
  obs::Counter* macs;
  obs::Counter* packed_encryptions;
  obs::Counter* packed_slots;
  obs::Gauge* ram_high_water;

  static const TokenObs& Get() {
    static const TokenObs hooks = [] {
      obs::Registry& reg = obs::Registry::Global();
      return TokenObs{reg.GetCounter("token.encryptions", "ops"),
                      reg.GetCounter("token.decryptions", "ops"),
                      reg.GetCounter("token.macs", "ops"),
                      reg.GetCounter("token.packed_encryptions", "ops"),
                      reg.GetCounter("token.packed_slots", "slots"),
                      reg.GetGauge("token.ram_high_water_bytes", "bytes")};
    }();
    return hooks;
  }
};

/// Working RAM of one crypto op beyond the staged input: cipher block
/// scratch, nonce/tag staging, HMAC state. A flat constant keeps the model
/// deterministic; the point is that every op charges the token's RamGauge
/// so `ram_.high_water()` — and the exported token.ram_high_water_bytes
/// gauge — reflects real on-chip usage instead of staying at zero.
constexpr size_t kCryptoScratchBytes = 96;

}  // namespace

SecureToken::SecureToken(const Config& config)
    : id_(config.token_id),
      fleet_key_(config.fleet_key),
      mac_key_(crypto::DeriveKey(
          ByteView(config.fleet_key.data(), config.fleet_key.size()),
          ByteView(std::string_view("token-mac")))),
      det_(std::make_unique<crypto::DetCipher>(config.fleet_key)),
      nondet_(std::make_unique<crypto::NonDetCipher>(config.fleet_key)),
      ram_(config.ram_budget_bytes),
      // Mix id and seed so distinct tokens never share an RNG stream (and
      // thus never reuse encryption nonces).
      rng_(config.rng_seed ^ (config.token_id * 0x9E3779B97F4A7C15ULL)) {}

Status SecureToken::CheckAlive() const {
  if (tampered_) {
    return Status::PermissionDenied(
        "token " + std::to_string(id_) +
        " was tampered with; key material zeroized");
  }
  return Status::Ok();
}

Result<Bytes> SecureToken::EncryptDet(ByteView plaintext) {
  PDS_RETURN_IF_ERROR(CheckAlive());
  ++ops_.encryptions;
  const TokenObs& hooks = TokenObs::Get();
  hooks.encryptions->Add(1);
  PDS_ASSIGN_OR_RETURN(
      RamCharge charge,
      RamCharge::Make(&ram_, plaintext.size() + kCryptoScratchBytes));
  hooks.ram_high_water->Set(static_cast<double>(ram_.high_water()));
  return det_->Encrypt(plaintext);
}

Result<Bytes> SecureToken::DecryptDet(ByteView ciphertext) {
  PDS_RETURN_IF_ERROR(CheckAlive());
  ++ops_.decryptions;
  const TokenObs& hooks = TokenObs::Get();
  hooks.decryptions->Add(1);
  PDS_ASSIGN_OR_RETURN(
      RamCharge charge,
      RamCharge::Make(&ram_, ciphertext.size() + kCryptoScratchBytes));
  hooks.ram_high_water->Set(static_cast<double>(ram_.high_water()));
  return det_->Decrypt(ciphertext);
}

Result<Bytes> SecureToken::EncryptNonDet(ByteView plaintext) {
  PDS_RETURN_IF_ERROR(CheckAlive());
  ++ops_.encryptions;
  const TokenObs& hooks = TokenObs::Get();
  hooks.encryptions->Add(1);
  PDS_ASSIGN_OR_RETURN(
      RamCharge charge,
      RamCharge::Make(&ram_, plaintext.size() + kCryptoScratchBytes));
  hooks.ram_high_water->Set(static_cast<double>(ram_.high_water()));
  return nondet_->Encrypt(plaintext, &rng_);
}

Result<Bytes> SecureToken::DecryptNonDet(ByteView ciphertext) {
  PDS_RETURN_IF_ERROR(CheckAlive());
  ++ops_.decryptions;
  const TokenObs& hooks = TokenObs::Get();
  hooks.decryptions->Add(1);
  PDS_ASSIGN_OR_RETURN(
      RamCharge charge,
      RamCharge::Make(&ram_, ciphertext.size() + kCryptoScratchBytes));
  hooks.ram_high_water->Set(static_cast<double>(ram_.high_water()));
  return nondet_->Decrypt(ciphertext);
}

Result<crypto::BigInt> SecureToken::EncryptPacked(
    const crypto::PackedAggregate& agg, const std::vector<uint64_t>& values) {
  PDS_RETURN_IF_ERROR(CheckAlive());
  ++ops_.encryptions;
  ops_.packed_slots += values.size();
  const TokenObs& hooks = TokenObs::Get();
  hooks.encryptions->Add(1);
  hooks.packed_encryptions->Add(1);
  hooks.packed_slots->Add(values.size());
  PDS_ASSIGN_OR_RETURN(
      RamCharge charge,
      RamCharge::Make(&ram_, values.size() * sizeof(uint64_t) +
                                 kCryptoScratchBytes));
  hooks.ram_high_water->Set(static_cast<double>(ram_.high_water()));
  return agg.EncryptPacked(values, &rng_);
}

Result<crypto::Sha256::Digest> SecureToken::Mac(ByteView message) {
  PDS_RETURN_IF_ERROR(CheckAlive());
  ++ops_.macs;
  const TokenObs& hooks = TokenObs::Get();
  hooks.macs->Add(1);
  PDS_ASSIGN_OR_RETURN(
      RamCharge charge,
      RamCharge::Make(&ram_, message.size() + kCryptoScratchBytes));
  hooks.ram_high_water->Set(static_cast<double>(ram_.high_water()));
  return crypto::HmacSha256(ByteView(mac_key_.data(), mac_key_.size()),
                            message);
}

Result<crypto::Sha256::Digest> SecureToken::Attest(ByteView challenge) {
  return Mac(challenge);
}

Result<bool> SecureToken::VerifyAttestation(
    ByteView challenge, const crypto::Sha256::Digest& proof) {
  PDS_ASSIGN_OR_RETURN(crypto::Sha256::Digest expected, Mac(challenge));
  return crypto::DigestEqual(expected, proof);
}

void SecureToken::Tamper() {
  tampered_ = true;
  // Zeroize: the tamper-resistant hardware destroys its secrets.
  std::memset(fleet_key_.data(), 0, fleet_key_.size());
  std::memset(mac_key_.data(), 0, mac_key_.size());
  det_.reset();
  nondet_.reset();
}

}  // namespace pds::mcu
