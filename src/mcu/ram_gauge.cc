#include "mcu/ram_gauge.h"

#include <algorithm>
#include <string>

namespace pds::mcu {

Status RamGauge::Acquire(size_t bytes) {
  if (in_use_ + bytes > budget_) {
    return Status::ResourceExhausted(
        "MCU RAM budget exceeded: in use " + std::to_string(in_use_) +
        " + requested " + std::to_string(bytes) + " > budget " +
        std::to_string(budget_));
  }
  in_use_ += bytes;
  high_water_ = std::max(high_water_, in_use_);
  return Status::Ok();
}

void RamGauge::Release(size_t bytes) {
  in_use_ -= std::min(bytes, in_use_);
}

Result<RamCharge> RamCharge::Make(RamGauge* gauge, size_t bytes) {
  PDS_RETURN_IF_ERROR(gauge->Acquire(bytes));
  return RamCharge(gauge, bytes);
}

RamCharge::RamCharge(RamCharge&& other) noexcept
    : gauge_(other.gauge_), bytes_(other.bytes_) {
  other.gauge_ = nullptr;
  other.bytes_ = 0;
}

RamCharge& RamCharge::operator=(RamCharge&& other) noexcept {
  if (this != &other) {
    if (gauge_ != nullptr) {
      gauge_->Release(bytes_);
    }
    gauge_ = other.gauge_;
    bytes_ = other.bytes_;
    other.gauge_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

RamCharge::~RamCharge() {
  if (gauge_ != nullptr) {
    gauge_->Release(bytes_);
  }
}

Status RamCharge::Grow(size_t extra) {
  if (gauge_ == nullptr) {
    return Status::FailedPrecondition("empty RamCharge");
  }
  PDS_RETURN_IF_ERROR(gauge_->Acquire(extra));
  bytes_ += extra;
  return Status::Ok();
}

}  // namespace pds::mcu
