#ifndef PDS_MCU_SECURE_TOKEN_H_
#define PDS_MCU_SECURE_TOKEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/bigint.h"
#include "crypto/cipher.h"
#include "crypto/hmac.h"
#include "crypto/paillier.h"
#include "mcu/ram_gauge.h"

namespace pds::mcu {

/// Counters of cryptographic work performed inside a token. The global
/// protocol benchmarks report these as "token work".
struct CryptoOps {
  uint64_t encryptions = 0;
  uint64_t decryptions = 0;
  uint64_t macs = 0;
  // Counters carried inside packed Paillier plaintexts: one encryption may
  // ship many slots, so the per-op and per-counter costs diverge.
  uint64_t packed_slots = 0;

  uint64_t total() const { return encryptions + decryptions + macs; }
};

/// Simulated secure portable token: a tamper-resistant MCU holding
/// cryptographic secrets, a tiny RAM, and (elsewhere) a NAND flash chip.
///
/// Security model reproduced in software:
///  - The fleet key (shared secret provisioned into every token of an
///    application domain) never leaves the token: callers ask the token to
///    encrypt/decrypt/MAC, they cannot read the key.
///  - Tampering (physical attack) triggers zeroization: all key material is
///    destroyed and every cryptographic operation fails afterwards. This is
///    the software analogue of the protective mesh/sensors described in the
///    tutorial ("tamper resistance [SC02]").
class SecureToken {
 public:
  struct Config {
    uint64_t token_id = 0;
    crypto::SymmetricKey fleet_key{};  // pdslint: secret
    size_t ram_budget_bytes = 64 * 1024;  // typical secure MCU
    uint64_t rng_seed = 1;
  };

  explicit SecureToken(const Config& config);

  SecureToken(const SecureToken&) = delete;
  SecureToken& operator=(const SecureToken&) = delete;

  uint64_t id() const { return id_; }
  RamGauge& ram() { return ram_; }
  Rng& rng() { return rng_; }

  /// Deterministic encryption with the fleet key (for [TNP14] noise/histogram
  /// protocols).
  [[nodiscard]] Result<Bytes> EncryptDet(ByteView plaintext);
  [[nodiscard]] Result<Bytes> DecryptDet(ByteView ciphertext);

  /// Non-deterministic encryption with the fleet key (for the secure
  /// aggregation protocol).
  [[nodiscard]] Result<Bytes> EncryptNonDet(ByteView plaintext);
  [[nodiscard]] Result<Bytes> DecryptNonDet(ByteView ciphertext);

  /// Packs this token's aggregate counters into ONE Paillier plaintext and
  /// encrypts it with the token's internal RNG ([TNP14] packed hot path:
  /// one asymmetric encryption per round instead of one per counter).
  [[nodiscard]] Result<crypto::BigInt> EncryptPacked(
      const crypto::PackedAggregate& agg, const std::vector<uint64_t>& values);

  /// MAC with a key derived from the fleet key, used for integrity evidence
  /// against a weakly-malicious SSI.
  [[nodiscard]] Result<crypto::Sha256::Digest> Mac(ByteView message);

  /// Attestation: proves knowledge of the fleet key for a challenge. Another
  /// token verifies with VerifyAttestation.
  [[nodiscard]] Result<crypto::Sha256::Digest> Attest(ByteView challenge);
  [[nodiscard]] Result<bool> VerifyAttestation(ByteView challenge,
                                 const crypto::Sha256::Digest& proof);

  /// Simulates a physical attack: the token detects it and zeroizes.
  void Tamper();
  bool tampered() const { return tampered_; }

  const CryptoOps& crypto_ops() const { return ops_; }
  void ResetCryptoOps() { ops_ = CryptoOps(); }

 private:
  [[nodiscard]] Status CheckAlive() const;

  uint64_t id_;
  bool tampered_ = false;
  crypto::SymmetricKey fleet_key_;
  crypto::SymmetricKey mac_key_;
  std::unique_ptr<crypto::DetCipher> det_;
  std::unique_ptr<crypto::NonDetCipher> nondet_;
  RamGauge ram_;
  Rng rng_;
  CryptoOps ops_;
};

}  // namespace pds::mcu

#endif  // PDS_MCU_SECURE_TOKEN_H_
