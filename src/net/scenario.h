#ifndef PDS_NET_SCENARIO_H_
#define PDS_NET_SCENARIO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "global/agg_protocols.h"
#include "global/common.h"
#include "mcu/secure_token.h"
#include "net/adversary.h"
#include "net/fault_injection.h"

/// Adversarial-wire scenario harness: one cell = one protocol run over real
/// transports under one fault or adversary configuration, followed by an
/// in-process reference run over the same tokens and a verdict.
///
/// The harness owns the plumbing (transport pairs, fault wrappers, client
/// threads, reconnect rendezvous) but never constructs tokens or keys —
/// callers supply global::Participant pointers, so all secret material
/// stays in the layers built for it.
namespace pds::net {

/// Which wire protocol a cell runs ([TNP14] family + the packed round).
enum class WireProtocol : uint8_t {
  kSecureAgg = 0,
  kWhiteNoise = 1,
  kDomainNoise = 2,
  kHistogram = 3,
  kPacked = 4,
};

const char* WireProtocolName(WireProtocol protocol);

/// One scenario-matrix cell. DefaultMatrix() emits skeletons (name,
/// protocol, faults, adversary, quorum); the caller fills participants,
/// verifier, domain and the packed context before running.
struct ScenarioSpec {
  std::string name;
  WireProtocol protocol = WireProtocol::kSecureAgg;
  global::AggFunc func = global::AggFunc::kSum;
  /// Link-level rates apply to the SERVER side of session 0 via a
  /// FaultInjectingTransport; the token-level fields (swallow_first,
  /// disconnect_after_replies) go to participant 0's TokenClient.
  FaultPlan faults;
  /// SSI misbehaviour for this cell (kNone = honest server).
  AdversaryPlan adversary;
  bool use_socket = false;
  bool checksum_frames = false;
  /// Run a sealed collection round + querier-side audit instead of an
  /// aggregation protocol (the cells for sealed-batch tampering actions).
  bool sealed_round = false;
  double quorum = 1.0;
  /// Per-round-trip deadline; 0 means ScaledMs(100).
  uint32_t deadline_ms = 0;
  uint32_t max_retries = 2;

  // Protocol parameters (shared by the wire run and the reference run).
  std::vector<std::string> domain;  // domain noise + packed slot order
  double noise_ratio = 0.5;         // white noise
  uint64_t noise_seed = 7;
  uint32_t fakes_per_value = 1;     // domain noise
  uint32_t num_buckets = 8;         // histogram
  /// Querier-side packed context for kPacked (wire run + token configs)...
  const crypto::PackedAggregate* packed = nullptr;
  /// ...and the matching in-process config for the reference run (same
  /// domain, key seed and sizes, so decoded integer sums are bit-equal).
  global::PackedPaillierProtocol::Config packed_cfg;

  /// The fleet: token pointers plus authorized tuples, session order.
  std::vector<global::Participant> participants;
  /// Membership verifier for the handshake; doubles as the querier token
  /// for sealed-batch audits.
  mcu::SecureToken* verifier = nullptr;
};

/// Outcome of one cell, ready for assertions and the verdict artifact.
struct ScenarioResult {
  std::string name;
  std::string protocol;
  std::string fault;  // fault kind, adversary action, "churn", or "none"
  /// No faults, no adversary: the cell must be byte-identical.
  bool benign = false;
  /// The wire run completed (possibly degraded to quorum).
  bool ran_ok = false;
  std::string error;  // failure detail when !ran_ok
  /// Wire groups bit-equal to the in-process reference over the tokens
  /// that actually responded.
  bool byte_identical = false;
  /// This cell configures something the defences MUST catch (tampering,
  /// damaged frames, churn): `detected` is asserted for exactly these.
  bool expects_detection = false;
  /// The defence caught the configured adversary action (only meaningful
  /// for adversary cells; link-fault cells report detected when the wire
  /// layer logged rejects or dropped the faulty session).
  bool detected = false;
  std::string detection;  // human-readable evidence
  /// Seed-reproducible realized faults (link wrapper + token-level).
  std::string injection_log;
  uint64_t injections = 0;
  size_t sessions = 0;
  size_t responders = 0;
  uint64_t frame_rejects = 0;
  uint64_t retries = 0;
  uint64_t deadline_hits = 0;
  std::map<std::string, double> groups;  // the wire run's (claimed) result
  global::LeakageReport leakage;         // what the SSI observed
};

/// Runs one cell end to end: wire run (with faults/adversary), reference
/// run over the responding subset, verdicts. A returned error means the
/// harness could not run the cell — a failed detection is reported inside
/// the ScenarioResult, not as a Status.
[[nodiscard]] Result<ScenarioResult> RunScenarioCell(const ScenarioSpec& spec);

/// The default scenario matrix: every protocol crossed with benign + six
/// link-fault kinds, plus the adversary cells (sealed tampering, forged
/// aggregate, stale replay, oversized/malformed frames) and a churn cell.
/// Participants/verifier/domain/packed are left empty for the caller.
[[nodiscard]] std::vector<ScenarioSpec> DefaultMatrix(uint64_t seed,
                                                      bool use_socket);

/// The `fault_scenarios` record consumed by bench/validate_net_json.py:
/// per-cell verdicts plus the aggregate detection_rate (over cells that
/// expect detection) and benign_byte_identical flag.
[[nodiscard]] std::string MatrixJson(
    const std::vector<ScenarioResult>& results);

}  // namespace pds::net

#endif  // PDS_NET_SCENARIO_H_
