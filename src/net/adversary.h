#ifndef PDS_NET_ADVERSARY_H_
#define PDS_NET_ADVERSARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "global/integrity.h"

/// Weakly-malicious SSI actions on the real wire. This ports the in-process
/// global::TamperingSsi action vocabulary onto the SsiServer session loop:
/// an AdversaryPlan makes the server misbehave in exactly one configured
/// way per run, and the scenario harness asserts the querier-side
/// global::IntegrityVerdict (or result comparison) catches it.
///
/// Nothing in here touches plaintext or keys: the adversary manipulates
/// ciphertext blobs, MAC'd manifests and frames — precisely the power a
/// compromised SSI has in the paper's threat model.
namespace pds::net {

enum class AdversaryAction : uint8_t {
  kNone = 0,
  kSubstituteCiphertext = 1,  // alter one sealed payload ciphertext
  kReplayCiphertext = 2,      // duplicate one sealed tuple
  kOmitCiphertext = 3,        // drop one sealed tuple
  kForgeManifest = 4,         // bump a manifest's tuple count (re-MAC-less)
  kForgeAggregate = 5,        // perturb the final aggregate before returning
  kReplayStaleRound = 6,      // re-send an already-answered round id
  kOversizedFrame = 7,        // frame declaring payload_len > kMaxFramePayload
  kMalformedFrame = 8,        // valid header, garbage payload
};

const char* AdversaryActionName(AdversaryAction action);

struct AdversaryPlan {
  AdversaryAction action = AdversaryAction::kNone;
  uint64_t seed = 99;
};

/// Applies a sealed-batch tampering action (substitute/replay/omit/forge-
/// manifest) in place, seeded like TamperingSsi. Returns a human-readable
/// description of what was done ("" when the action does not apply to
/// sealed batches or the batch is empty).
std::string ApplySealedTampering(const AdversaryPlan& plan,
                                 std::vector<global::SealedTuple>* tuples,
                                 std::vector<global::Manifest>* manifests);

/// Compares the SSI's claimed aggregate against the querier's audited one.
/// Any divergence — extra group, missing group, differing value — is a
/// detected forgery.
global::IntegrityVerdict CompareAggregates(
    const std::map<std::string, double>& claimed,
    const std::map<std::string, double>& audited);

}  // namespace pds::net

#endif  // PDS_NET_ADVERSARY_H_
