#include "net/token_client.h"

#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "global/integrity.h"
#include "obs/obs.h"

namespace pds::net {

namespace {

/// Sum/count accumulation per group (mirrors agg_protocols.cc).
struct GroupState {
  double sum = 0;
  uint64_t count = 0;
};

/// Bound on malformed frames tolerated per session before the client gives
/// up on the stream — a hostile or broken SSI must not spin us forever.
constexpr uint32_t kMaxMalformedFrames = 8;

/// Decrypts a ciphertext batch into per-group partial aggregates, counting
/// one token op per decryption — the identical inner loop of the in-process
/// aggregate phase.
Result<std::map<std::string, GroupState>> DecryptAndAggregate(
    mcu::SecureToken* token, const std::vector<Bytes>& batch,
    uint64_t* token_ops) {
  std::map<std::string, GroupState> partial;
  for (const Bytes& ct : batch) {
    PDS_ASSIGN_OR_RETURN(Bytes payload, token->DecryptNonDet(ByteView(ct)));
    ++*token_ops;
    PDS_ASSIGN_OR_RETURN(global::AggPayload p,
                         global::DecodeAggPayload(ByteView(payload)));
    partial[p.group].sum += p.sum;
    partial[p.group].count += p.count;
  }
  return partial;
}

/// A handler failure that indicts the REQUEST, not the session: answered
/// with ErrorMsg{3} so the serve loop survives a malformed round.
bool IsRequestFault(const Status& s) {
  return s.code() == StatusCode::kInvalidArgument ||
         s.code() == StatusCode::kCorruption ||
         s.code() == StatusCode::kOutOfRange;
}

}  // namespace

TokenClient::TokenClient(std::unique_ptr<Transport> transport, Config config)
    : transport_(std::move(transport)),
      config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock : WallClock()),
      rng_(config_.faults.seed),
      swallow_budget_(config_.faults.swallow_first) {}

TokenClient::~TokenClient() {
  Stop();
  if (thread_.joinable()) {
    thread_.join();
  }
}

mcu::SecureToken* TokenClient::token() const {
  if (config_.pds_node != nullptr) {
    return &config_.pds_node->token();
  }
  return config_.token;
}

Status TokenClient::PrepareTuples() {
  mcu::SecureToken* tok = token();
  if (tok == nullptr) {
    return Status::InvalidArgument("TokenClient needs a token or a PdsNode");
  }
  if (config_.pds_node != nullptr) {
    // Policy-checked export: only tuples the owner authorized for sharing
    // ever reach the runtime, and they stay inside the token until
    // encrypted.
    std::vector<std::pair<std::string, double>> exported;
    PDS_RETURN_IF_ERROR(config_.pds_node->ExportAs(
        config_.subject, config_.table, config_.group_column,
        config_.value_column, &exported));
    tuples_.clear();
    tuples_.reserve(exported.size());
    for (auto& [group, value] : exported) {
      tuples_.push_back({std::move(group), value});
    }
  } else {
    tuples_ = config_.tuples;
  }
  return Status::Ok();
}

Status TokenClient::Connect() {
  PDS_RETURN_IF_ERROR(PrepareTuples());
  return Handshake();
}

Status TokenClient::OnChallengeFrame(const Bytes& frame) {
  mcu::SecureToken* tok = token();
  PDS_ASSIGN_OR_RETURN(Message cm, DecodeMessage(frame));
  if (cm.checksummed) {
    peer_checksummed_ = true;
  }
  const ChallengeMsg* challenge = std::get_if<ChallengeMsg>(&cm.body);
  if (challenge == nullptr) {
    return Status::FailedPrecondition("handshake expected a challenge");
  }
  HelloMsg hello;
  hello.token_id = tok->id();
  PDS_ASSIGN_OR_RETURN(hello.proof, tok->Attest(ByteView(challenge->nonce)));
  return SendFrame(EncodeHello(hello));
}

Status TokenClient::OnAckFrame(const Bytes& frame) {
  PDS_ASSIGN_OR_RETURN(HelloAckMsg ack, DecodeAs<HelloAckMsg>(frame));
  if (!ack.accepted) {
    return Status::PermissionDenied("SSI refused the session");
  }
  return Status::Ok();
}

Status TokenClient::Handshake() {
  obs::Span span("net.token-connect", "net");
  PDS_ASSIGN_OR_RETURN(Bytes frame, transport_->Recv(config_.deadline_ms));
  PDS_RETURN_IF_ERROR(OnChallengeFrame(frame));
  PDS_ASSIGN_OR_RETURN(Bytes ack_frame, transport_->Recv(config_.deadline_ms));
  return OnAckFrame(ack_frame);
}

Status TokenClient::SendFrame(const Bytes& frame) {
  if (peer_checksummed_) {
    return transport_->Send(AppendFrameChecksum(frame));
  }
  return transport_->Send(frame);
}

// pdslint: secret(reply)
Status TokenClient::SendAggResult(const AggResultMsg& reply) {
  // Finalize/class rounds return the decrypted per-group aggregate to the
  // querier by design -- the [TNP14] protocols' output step; only sums and
  // counts leave the token, never the tuples they were folded from.
  return SendFrame(EncodeAggResult(reply));  // pdslint: declassify([TNP14] aggregate output step)
}

Status TokenClient::MaybeChurn() {
  const FaultPlan& fp = config_.faults;
  if (fp.disconnect_after_replies == 0 ||
      replies_since_connect_ < fp.disconnect_after_replies ||
      reconnects_done_ >= config_.max_reconnects) {
    return Status::Ok();
  }
  ++reconnects_done_;
  transport_->Close();
  log_.Add({frame_index_, FaultKind::kChurn, "token",
            "disconnected after " + std::to_string(replies_since_connect_) +
                " replies; reconnect attempt " +
                std::to_string(reconnects_done_)});
  if (config_.reconnect == nullptr) {
    // Nobody to dial: stay gone and let the SSI degrade to quorum.
    return Status::Ok();
  }
  uint32_t backoff =
      config_.reconnect_backoff_ms * reconnects_done_ +
      static_cast<uint32_t>(rng_.Uniform(config_.reconnect_backoff_ms + 1));
  clock_->SleepMs(backoff);
  PDS_ASSIGN_OR_RETURN(std::unique_ptr<Transport> fresh, config_.reconnect());
  transport_ = std::move(fresh);
  replies_since_connect_ = 0;
  peer_checksummed_ = false;
  // Fresh challenge, fresh proof: membership is re-verified, a recorded
  // proof from the first handshake would be rejected.
  return Handshake();
}

Status TokenClient::HandleCollect(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  TupleBatchMsg reply;
  reply.round_id = req.header.round_id;
  reply.batch.reserve(tuples_.size());
  for (const global::SourceTuple& t : tuples_) {
    Bytes payload = global::EncodeAggPayload(false, t.value, 1, t.group);
    PDS_ASSIGN_OR_RETURN(Bytes ct, tok->EncryptNonDet(ByteView(payload)));
    ++reply.token_ops;
    reply.batch.push_back(std::move(ct));
  }
  return SendFrame(EncodeTupleBatch(reply));
}

Status TokenClient::HandlePackedCollect(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  // The request's batch is the public group domain in slot order; fold
  // this token's tuples into per-domain (sum, count) counters — exactly
  // the in-process PackedPaillierProtocol pre-pass.
  std::map<std::string, size_t> slot_of;
  for (size_t i = 0; i < req.batch.size(); ++i) {
    slot_of[ByteView(req.batch[i]).ToString()] = i;
  }
  std::vector<uint64_t> counters(2 * req.batch.size(), 0);
  for (const global::SourceTuple& t : tuples_) {
    auto it = slot_of.find(t.group);
    if (it == slot_of.end()) {
      return Status::InvalidArgument("tuple group outside the packed domain");
    }
    if (t.value < 0 ||
        t.value != static_cast<double>(static_cast<uint64_t>(t.value))) {
      return Status::InvalidArgument(
          "packed round requires non-negative integer values");
    }
    counters[2 * it->second] += static_cast<uint64_t>(t.value);
    counters[2 * it->second + 1] += 1;
  }
  PDS_ASSIGN_OR_RETURN(crypto::BigInt ct,
                       tok->EncryptPacked(*config_.packed, counters));
  TupleBatchMsg reply;
  reply.round_id = req.header.round_id;
  reply.token_ops = 1;  // one packed encryption, whatever the domain size
  reply.batch.push_back(ct.ToBytes());
  return SendFrame(EncodeTupleBatch(reply));
}

Status TokenClient::HandleAggregate(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  TupleBatchMsg reply;
  reply.round_id = req.header.round_id;
  PDS_ASSIGN_OR_RETURN(
      auto partial, DecryptAndAggregate(tok, req.batch, &reply.token_ops));
  reply.batch.reserve(partial.size());
  for (const auto& [group, state] : partial) {
    Bytes payload =
        global::EncodeAggPayload(false, state.sum, state.count, group);
    PDS_ASSIGN_OR_RETURN(Bytes ct, tok->EncryptNonDet(ByteView(payload)));
    ++reply.token_ops;
    reply.batch.push_back(std::move(ct));
  }
  return SendFrame(EncodeTupleBatch(reply));
}

Status TokenClient::HandleFinalize(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  AggResultMsg reply;
  reply.round_id = req.header.round_id;
  PDS_ASSIGN_OR_RETURN(
      auto final_state, DecryptAndAggregate(tok, req.batch, &reply.token_ops));
  reply.entries.reserve(final_state.size());
  for (const auto& [group, state] : final_state) {
    reply.entries.push_back({group, state.sum, state.count});
  }
  return SendAggResult(reply);
}

Status TokenClient::HandleDetCollect(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  if (req.batch.empty()) {
    return Status::InvalidArgument("det collect carries no parameter blob");
  }
  PDS_ASSIGN_OR_RETURN(DetParams params,
                       DecodeDetParams(ByteView(req.batch[0])));
  TupleBatchMsg reply;
  reply.round_id = req.header.round_id;

  if (params.variant == DetVariant::kHistogram) {
    // Bucket id travels in plaintext (that IS the histogram leakage); the
    // payload keeps the true group inside the non-deterministic ciphertext.
    if (params.num_buckets == 0) {
      return Status::InvalidArgument("histogram needs >= 1 bucket");
    }
    reply.batch.reserve(2 * tuples_.size());
    for (const global::SourceTuple& t : tuples_) {
      uint32_t bucket = static_cast<uint32_t>(
          Fnv1a64(std::string_view(t.group)) % params.num_buckets);
      Bytes key(4);
      EncodeU32(key.data(), bucket);
      Bytes payload = global::EncodeAggPayload(false, t.value, 1, t.group);
      PDS_ASSIGN_OR_RETURN(Bytes ct, tok->EncryptNonDet(ByteView(payload)));
      ++reply.token_ops;
      reply.batch.push_back(std::move(key));
      reply.batch.push_back(std::move(ct));
    }
    return SendFrame(EncodeTupleBatch(reply));
  }

  // White/domain noise: real tuples first, then this token's fakes —
  // identical send-list order to the in-process RunDetProtocol.
  std::vector<std::pair<std::string, double>> send_list;
  for (const global::SourceTuple& t : tuples_) {
    send_list.emplace_back(t.group, t.value);
  }
  const size_t real_count = send_list.size();
  if (params.variant == DetVariant::kWhiteNoise) {
    // The in-process protocol draws fake labels from one shared stream; on
    // the wire each token seeds its own from (noise_seed, token id) and
    // prefixes the id, so labels stay distinct across the fleet without
    // any cross-token coordination.
    Rng noise_rng(params.noise_seed + tok->id());
    size_t n = static_cast<size_t>(static_cast<double>(real_count) *
                                   params.noise_ratio);
    for (size_t i = 0; i < n; ++i) {
      send_list.emplace_back(std::string(global::kFakeGroupPrefix) +
                                 std::to_string(tok->id()) + "-" +
                                 std::to_string(noise_rng.Next()),
                             0.0);
    }
  } else {  // kDomainNoise
    if (req.batch.size() < 2) {
      return Status::InvalidArgument("domain noise carries no domain");
    }
    // Real groups must belong to the announced domain.
    for (size_t i = 0; i < real_count; ++i) {
      bool in_domain = false;
      for (size_t d = 1; d < req.batch.size() && !in_domain; ++d) {
        in_domain = ByteView(req.batch[d]).ToString() == send_list[i].first;
      }
      if (!in_domain) {
        return Status::InvalidArgument("group outside the announced domain");
      }
    }
    for (size_t d = 1; d < req.batch.size(); ++d) {
      for (uint32_t i = 0; i < params.fakes_per_value; ++i) {
        send_list.emplace_back(ByteView(req.batch[d]).ToString(), 0.0);
      }
    }
  }

  reply.batch.reserve(2 * send_list.size());
  for (size_t i = 0; i < send_list.size(); ++i) {
    bool fake = i >= real_count;
    const auto& [group, value] = send_list[i];
    PDS_ASSIGN_OR_RETURN(Bytes key,
                         tok->EncryptDet(ByteView(std::string_view(group))));
    Bytes payload = global::EncodeAggPayload(fake, value, fake ? 0 : 1, "");
    PDS_ASSIGN_OR_RETURN(Bytes ct, tok->EncryptNonDet(ByteView(payload)));
    reply.token_ops += 2;
    reply.batch.push_back(std::move(key));
    reply.batch.push_back(std::move(ct));
  }
  return SendFrame(EncodeTupleBatch(reply));
}

Status TokenClient::HandleClassAggregate(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  if (req.batch.empty()) {
    return Status::InvalidArgument("class aggregate carries no class key");
  }
  AggResultMsg reply;
  reply.round_id = req.header.round_id;
  PDS_ASSIGN_OR_RETURN(Bytes group_plain,
                       tok->DecryptDet(ByteView(req.batch[0])));
  ++reply.token_ops;
  std::string group = ByteView(group_plain).ToString();
  const size_t n = req.batch.size() - 1;
  if (group.rfind(global::kFakeGroupPrefix, 0) == 0) {
    // Whole class is noise; discard inside the token (decrypt-and-drop op
    // accounting mirrors the in-process class phase).
    reply.token_ops += n;
    return SendAggResult(reply);
  }
  GroupState gs;
  for (size_t i = 1; i < req.batch.size(); ++i) {
    PDS_ASSIGN_OR_RETURN(Bytes payload,
                         tok->DecryptNonDet(ByteView(req.batch[i])));
    ++reply.token_ops;
    PDS_ASSIGN_OR_RETURN(global::AggPayload p,
                         global::DecodeAggPayload(ByteView(payload)));
    if (!p.fake) {
      gs.sum += p.sum;
      gs.count += p.count;
    }
  }
  reply.entries.push_back({group, gs.sum, gs.count});
  return SendAggResult(reply);
}

Status TokenClient::HandleSealedCollect(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  TupleBatchMsg reply;
  reply.round_id = req.header.round_id;
  std::vector<Bytes> cts;
  cts.reserve(tuples_.size());
  for (const global::SourceTuple& t : tuples_) {
    Bytes payload = global::EncodeAggPayload(false, t.value, 1, t.group);
    PDS_ASSIGN_OR_RETURN(Bytes ct, tok->EncryptNonDet(ByteView(payload)));
    ++reply.token_ops;
    cts.push_back(std::move(ct));
  }
  PDS_ASSIGN_OR_RETURN(std::vector<global::SealedTuple> sealed,
                       global::SealTuples(tok, tok->id(), cts));
  reply.token_ops += sealed.size();  // one MAC per sealed tuple
  PDS_ASSIGN_OR_RETURN(
      global::Manifest manifest,
      global::MakeManifest(tok, tok->id(), sealed.size()));
  ++reply.token_ops;  // manifest MAC
  reply.batch.reserve(1 + sealed.size());
  reply.batch.push_back(global::EncodeManifest(manifest));
  for (const global::SealedTuple& t : sealed) {
    reply.batch.push_back(global::EncodeSealedTuple(t));
  }
  return SendFrame(EncodeTupleBatch(reply));
}

Status TokenClient::ServeFrame(const Bytes& frame, bool* done) {
  *done = false;
  ++frame_index_;
  auto decoded = DecodeMessage(frame);
  if (!decoded.ok()) {
    // A garbled frame indicts the frame, not the session — answer with a
    // transient error so the SSI can retry, but give up on a stream that
    // keeps producing garbage.
    if (++malformed_seen_ > kMaxMalformedFrames) {
      return Status::Corruption("too many malformed frames from the SSI");
    }
    ErrorMsg err{3, "malformed frame"};
    return SendFrame(EncodeError(err));
  }
  Message m = std::move(decoded.value());
  if (m.checksummed) {
    peer_checksummed_ = true;  // mirror the trailer from now on
  }
  if (std::get_if<ByeMsg>(&m.body) != nullptr) {
    *done = true;
    return Status::Ok();
  }
  if (std::get_if<PartitionMapMsg>(&m.body) != nullptr) {
    return Status::Ok();  // layout announcement; the requests follow
  }
  const RoundRequestMsg* req = std::get_if<RoundRequestMsg>(&m.body);
  if (req == nullptr) {
    ErrorMsg err{1, "unexpected message type"};
    return SendFrame(EncodeError(err));
  }
  if (req->header.round_id < highest_round_) {
    // Replay of an already-answered round (an equal id is the SSI's
    // legitimate retry of a request we never answered).
    ErrorMsg err{4, "stale round replay rejected"};
    return SendFrame(EncodeError(err));
  }
  highest_round_ = req->header.round_id;
  if (swallow_budget_ > 0) {
    --swallow_budget_;  // fault plan: swallow the request silently
    log_.Add({frame_index_, FaultKind::kSwallowRequest, "token",
              "round " + std::to_string(req->header.round_id) +
                  " swallowed"});
    return Status::Ok();
  }
  // Parent this round's handler span under the SSI's round-trip span
  // when the frame carried trace context; the merged Chrome trace then
  // shows one cross-process timeline per round.
  obs::RemoteParent remote;
  if (m.trace.has_value()) {
    remote.span_id = m.trace->parent_span_id;
    remote.sampled = m.trace->sampled;
  }
  Status handled = Status::Ok();
  switch (req->header.kind) {
    case RoundKind::kCollect: {
      obs::Span span("net.round.collect", "net", remote);
      handled = HandleCollect(*req);
      break;
    }
    case RoundKind::kAggregate: {
      obs::Span span("net.round.aggregate", "net", remote);
      handled = HandleAggregate(*req);
      break;
    }
    case RoundKind::kFinalize: {
      obs::Span span("net.round.finalize", "net", remote);
      handled = HandleFinalize(*req);
      break;
    }
    case RoundKind::kPackedCollect: {
      if (config_.packed == nullptr) {
        ErrorMsg err{2, "token has no packed-Paillier context"};
        return SendFrame(EncodeError(err));
      }
      obs::Span span("net.round.packed-collect", "net", remote);
      handled = HandlePackedCollect(*req);
      break;
    }
    case RoundKind::kSealedCollect: {
      obs::Span span("net.round.sealed-collect", "net", remote);
      handled = HandleSealedCollect(*req);
      break;
    }
    case RoundKind::kDetCollect: {
      obs::Span span("net.round.det-collect", "net", remote);
      handled = HandleDetCollect(*req);
      break;
    }
    case RoundKind::kClassAggregate: {
      obs::Span span("net.round.class-aggregate", "net", remote);
      handled = HandleClassAggregate(*req);
      break;
    }
  }
  if (!handled.ok()) {
    if (!IsRequestFault(handled)) {
      return handled;
    }
    if (++malformed_seen_ > kMaxMalformedFrames) {
      return Status::Corruption("too many malformed rounds from the SSI");
    }
    ErrorMsg err{3, "malformed round request"};
    return SendFrame(EncodeError(err));
  }
  ++replies_since_connect_;
  return MaybeChurn();
}

Status TokenClient::ServeLoop() {
  while (!stop_.load()) {
    auto frame = transport_->Recv(config_.poll_ms);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // nothing pending; poll again unless stopped
      }
      // Peer closed (or the link died): a closed transport after rounds is
      // the socket-level equivalent of Bye.
      return Status::Ok();
    }
    bool done = false;
    PDS_RETURN_IF_ERROR(ServeFrame(frame.value(), &done));
    if (done) {
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status TokenClient::StartPumped() {
  if (config_.reconnect != nullptr) {
    return Status::InvalidArgument(
        "pumped mode cannot re-dial from inside the event loop; use a null "
        "reconnect factory (churned tokens stay gone)");
  }
  if (pump_state_ != PumpState::kIdle) {
    return Status::FailedPrecondition("StartPumped called twice");
  }
  PDS_RETURN_IF_ERROR(PrepareTuples());
  pump_state_ = PumpState::kAwaitChallenge;
  return Status::Ok();
}

Result<bool> TokenClient::PumpOnce() {
  if (pump_state_ == PumpState::kIdle) {
    return Status::FailedPrecondition("PumpOnce before StartPumped");
  }
  if (pump_state_ == PumpState::kDone) {
    return false;
  }
  auto frame = transport_->Recv(0);
  if (!frame.ok()) {
    if (frame.status().code() == StatusCode::kDeadlineExceeded) {
      return true;  // nothing pending right now
    }
    // Transport closed: the socket-level equivalent of Bye (same clean
    // outcome the blocking ServeLoop reports).
    pump_state_ = PumpState::kDone;
    loop_status_ = Status::Ok();
    return false;
  }
  Status st = Status::Ok();
  bool done = false;
  switch (pump_state_) {
    case PumpState::kAwaitChallenge:
      st = OnChallengeFrame(frame.value());
      if (st.ok()) {
        pump_state_ = PumpState::kAwaitAck;
      }
      break;
    case PumpState::kAwaitAck:
      st = OnAckFrame(frame.value());
      if (st.ok()) {
        pump_state_ = PumpState::kServing;
      }
      break;
    case PumpState::kServing:
      st = ServeFrame(frame.value(), &done);
      break;
    default:
      st = Status::FailedPrecondition("pump state machine out of sequence");
      break;
  }
  if (!st.ok()) {
    pump_state_ = PumpState::kDone;
    loop_status_ = st;
    return st;
  }
  if (done) {
    pump_state_ = PumpState::kDone;
    loop_status_ = Status::Ok();
    return false;
  }
  return true;
}

void TokenClient::Start() {
  thread_ = std::thread([this] {
    Status st = Connect();
    if (st.ok()) {
      st = ServeLoop();
    }
    loop_status_ = std::move(st);
  });
}

void TokenClient::Stop() { stop_.store(true); }

Status TokenClient::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
  return loop_status_;
}

}  // namespace pds::net
