#include "net/token_client.h"

#include <map>
#include <utility>

#include "obs/obs.h"

namespace pds::net {

namespace {

/// Sum/count accumulation per group (mirrors agg_protocols.cc).
struct GroupState {
  double sum = 0;
  uint64_t count = 0;
};

/// Decrypts a ciphertext batch into per-group partial aggregates, counting
/// one token op per decryption — the identical inner loop of the in-process
/// aggregate phase.
Result<std::map<std::string, GroupState>> DecryptAndAggregate(
    mcu::SecureToken* token, const std::vector<Bytes>& batch,
    uint64_t* token_ops) {
  std::map<std::string, GroupState> partial;
  for (const Bytes& ct : batch) {
    PDS_ASSIGN_OR_RETURN(Bytes payload, token->DecryptNonDet(ByteView(ct)));
    ++*token_ops;
    PDS_ASSIGN_OR_RETURN(global::AggPayload p,
                         global::DecodeAggPayload(ByteView(payload)));
    partial[p.group].sum += p.sum;
    partial[p.group].count += p.count;
  }
  return partial;
}

}  // namespace

TokenClient::TokenClient(std::unique_ptr<Transport> transport, Config config)
    : transport_(std::move(transport)),
      config_(std::move(config)),
      fail_budget_(config_.fail_first_requests) {}

TokenClient::~TokenClient() {
  Stop();
  if (thread_.joinable()) {
    thread_.join();
  }
}

mcu::SecureToken* TokenClient::token() const {
  if (config_.pds_node != nullptr) {
    return &config_.pds_node->token();
  }
  return config_.token;
}

Status TokenClient::Connect() {
  mcu::SecureToken* tok = token();
  if (tok == nullptr) {
    return Status::InvalidArgument("TokenClient needs a token or a PdsNode");
  }
  if (config_.pds_node != nullptr) {
    // Policy-checked export: only tuples the owner authorized for sharing
    // ever reach the runtime, and they stay inside the token until
    // encrypted.
    std::vector<std::pair<std::string, double>> exported;
    PDS_RETURN_IF_ERROR(config_.pds_node->ExportAs(
        config_.subject, config_.table, config_.group_column,
        config_.value_column, &exported));
    tuples_.clear();
    tuples_.reserve(exported.size());
    for (auto& [group, value] : exported) {
      tuples_.push_back({std::move(group), value});
    }
  } else {
    tuples_ = config_.tuples;
  }

  obs::Span span("net.token-connect", "net");
  PDS_ASSIGN_OR_RETURN(Bytes frame, transport_->Recv(config_.deadline_ms));
  PDS_ASSIGN_OR_RETURN(ChallengeMsg challenge, DecodeAs<ChallengeMsg>(frame));
  HelloMsg hello;
  hello.token_id = tok->id();
  PDS_ASSIGN_OR_RETURN(hello.proof,
                       tok->Attest(ByteView(challenge.nonce)));
  PDS_RETURN_IF_ERROR(transport_->Send(EncodeHello(hello)));
  PDS_ASSIGN_OR_RETURN(Bytes ack_frame, transport_->Recv(config_.deadline_ms));
  PDS_ASSIGN_OR_RETURN(HelloAckMsg ack, DecodeAs<HelloAckMsg>(ack_frame));
  if (!ack.accepted) {
    return Status::PermissionDenied("SSI refused the session");
  }
  return Status::Ok();
}

Status TokenClient::HandleCollect(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  TupleBatchMsg reply;
  reply.round_id = req.header.round_id;
  reply.batch.reserve(tuples_.size());
  for (const global::SourceTuple& t : tuples_) {
    Bytes payload = global::EncodeAggPayload(false, t.value, 1, t.group);
    PDS_ASSIGN_OR_RETURN(Bytes ct, tok->EncryptNonDet(ByteView(payload)));
    ++reply.token_ops;
    reply.batch.push_back(std::move(ct));
  }
  return transport_->Send(EncodeTupleBatch(reply));
}

Status TokenClient::HandlePackedCollect(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  // The request's batch is the public group domain in slot order; fold
  // this token's tuples into per-domain (sum, count) counters — exactly
  // the in-process PackedPaillierProtocol pre-pass.
  std::map<std::string, size_t> slot_of;
  for (size_t i = 0; i < req.batch.size(); ++i) {
    slot_of[ByteView(req.batch[i]).ToString()] = i;
  }
  std::vector<uint64_t> counters(2 * req.batch.size(), 0);
  for (const global::SourceTuple& t : tuples_) {
    auto it = slot_of.find(t.group);
    if (it == slot_of.end()) {
      return Status::InvalidArgument("tuple group outside the packed domain");
    }
    if (t.value < 0 ||
        t.value != static_cast<double>(static_cast<uint64_t>(t.value))) {
      return Status::InvalidArgument(
          "packed round requires non-negative integer values");
    }
    counters[2 * it->second] += static_cast<uint64_t>(t.value);
    counters[2 * it->second + 1] += 1;
  }
  PDS_ASSIGN_OR_RETURN(crypto::BigInt ct,
                       tok->EncryptPacked(*config_.packed, counters));
  TupleBatchMsg reply;
  reply.round_id = req.header.round_id;
  reply.token_ops = 1;  // one packed encryption, whatever the domain size
  reply.batch.push_back(ct.ToBytes());
  return transport_->Send(EncodeTupleBatch(reply));
}

Status TokenClient::HandleAggregate(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  TupleBatchMsg reply;
  reply.round_id = req.header.round_id;
  PDS_ASSIGN_OR_RETURN(
      auto partial, DecryptAndAggregate(tok, req.batch, &reply.token_ops));
  reply.batch.reserve(partial.size());
  for (const auto& [group, state] : partial) {
    Bytes payload =
        global::EncodeAggPayload(false, state.sum, state.count, group);
    PDS_ASSIGN_OR_RETURN(Bytes ct, tok->EncryptNonDet(ByteView(payload)));
    ++reply.token_ops;
    reply.batch.push_back(std::move(ct));
  }
  return transport_->Send(EncodeTupleBatch(reply));
}

Status TokenClient::HandleFinalize(const RoundRequestMsg& req) {
  mcu::SecureToken* tok = token();
  AggResultMsg reply;
  reply.round_id = req.header.round_id;
  PDS_ASSIGN_OR_RETURN(
      auto final_state, DecryptAndAggregate(tok, req.batch, &reply.token_ops));
  reply.entries.reserve(final_state.size());
  for (const auto& [group, state] : final_state) {
    reply.entries.push_back({group, state.sum, state.count});
  }
  // Finalize returns the decrypted per-group aggregate to the querier by
  // design -- the [TNP14] protocols' output step; only sums and counts
  // leave the token, never the tuples they were folded from.
  return transport_->Send(EncodeAggResult(reply));  // pdslint: declassify([TNP14] aggregate output step)
}

Status TokenClient::ServeLoop() {
  while (!stop_.load()) {
    auto frame = transport_->Recv(config_.poll_ms);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // nothing pending; poll again unless stopped
      }
      // Peer closed (or the link died): a closed transport after rounds is
      // the socket-level equivalent of Bye.
      return Status::Ok();
    }
    PDS_ASSIGN_OR_RETURN(Message m, DecodeMessage(frame.value()));
    if (std::get_if<ByeMsg>(&m.body) != nullptr) {
      return Status::Ok();
    }
    if (std::get_if<PartitionMapMsg>(&m.body) != nullptr) {
      continue;  // layout announcement; the requests themselves follow
    }
    const RoundRequestMsg* req = std::get_if<RoundRequestMsg>(&m.body);
    if (req == nullptr) {
      ErrorMsg err{1, "unexpected message type"};
      PDS_RETURN_IF_ERROR(transport_->Send(EncodeError(err)));
      continue;
    }
    if (fail_budget_ > 0) {
      --fail_budget_;  // fault injection: swallow the request silently
      continue;
    }
    // Parent this round's handler span under the SSI's round-trip span
    // when the frame carried trace context; the merged Chrome trace then
    // shows one cross-process timeline per round.
    obs::RemoteParent remote;
    if (m.trace.has_value()) {
      remote.span_id = m.trace->parent_span_id;
      remote.sampled = m.trace->sampled;
    }
    switch (req->header.kind) {
      case RoundKind::kCollect: {
        obs::Span span("net.round.collect", "net", remote);
        PDS_RETURN_IF_ERROR(HandleCollect(*req));
        break;
      }
      case RoundKind::kAggregate: {
        obs::Span span("net.round.aggregate", "net", remote);
        PDS_RETURN_IF_ERROR(HandleAggregate(*req));
        break;
      }
      case RoundKind::kFinalize: {
        obs::Span span("net.round.finalize", "net", remote);
        PDS_RETURN_IF_ERROR(HandleFinalize(*req));
        break;
      }
      case RoundKind::kPackedCollect: {
        if (config_.packed == nullptr) {
          ErrorMsg err{2, "token has no packed-Paillier context"};
          PDS_RETURN_IF_ERROR(transport_->Send(EncodeError(err)));
          break;
        }
        obs::Span span("net.round.packed-collect", "net", remote);
        PDS_RETURN_IF_ERROR(HandlePackedCollect(*req));
        break;
      }
    }
  }
  return Status::Ok();
}

void TokenClient::Start() {
  thread_ = std::thread([this] {
    Status st = Connect();
    if (st.ok()) {
      st = ServeLoop();
    }
    loop_status_ = std::move(st);
  });
}

void TokenClient::Stop() { stop_.store(true); }

Status TokenClient::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
  return loop_status_;
}

}  // namespace pds::net
