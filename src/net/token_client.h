#ifndef PDS_NET_TOKEN_CLIENT_H_
#define PDS_NET_TOKEN_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ac/policy.h"
#include "global/common.h"
#include "net/codec.h"
#include "net/transport.h"
#include "pds/pds_node.h"

/// The token side of the real wire: wraps a SecureToken (or a full PdsNode)
/// in a runtime that connects to the SSI, proves fleet membership, and
/// answers protocol rounds until told to stop.
///
/// All plaintext handling happens here — "inside" the token, exactly as in
/// the in-process protocols; only ciphertext and final (authorized)
/// aggregates cross the transport.
namespace pds::net {

class TokenClient {
 public:
  struct Config {
    /// Either a bare token with pre-exported tuples...
    mcu::SecureToken* token = nullptr;
    std::vector<global::SourceTuple> tuples;
    /// ...or a full PdsNode whose tuples are policy-exported on Connect().
    node::PdsNode* pds_node = nullptr;
    ac::Subject subject;
    std::string table;
    std::string group_column;
    std::string value_column;
    /// Handshake receive deadline.
    uint32_t deadline_ms = 2000;
    /// Poll granularity of the serve loop (Stop() latency bound).
    uint32_t poll_ms = 50;
    /// Fault injection: silently swallow the first N round requests (the
    /// request is consumed but never answered), simulating a flaky link or
    /// a busy token. The SSI's retry of the same round is then served.
    uint32_t fail_first_requests = 0;
    /// Packed-Paillier context (the querier's public packing parameters,
    /// distributed out of band before the round). Required to answer
    /// kPackedCollect rounds; null tokens refuse them with an ErrorMsg.
    const crypto::PackedAggregate* packed = nullptr;
  };

  TokenClient(std::unique_ptr<Transport> transport, Config config);
  ~TokenClient();

  TokenClient(const TokenClient&) = delete;
  TokenClient& operator=(const TokenClient&) = delete;

  /// Runs the challenge/hello/ack handshake (and, with a PdsNode, the
  /// policy-checked export of the authorized tuples).
  [[nodiscard]] Status Connect();

  /// Answers rounds until Bye, transport close, or Stop(). Returns Ok on a
  /// clean shutdown.
  [[nodiscard]] Status ServeLoop();

  /// Connect() + ServeLoop() on a background thread.
  void Start();
  void Stop();
  /// Joins the background thread and returns its final status.
  [[nodiscard]] Status Join();

  [[nodiscard]] const Transport& transport() const { return *transport_; }

 private:
  [[nodiscard]] mcu::SecureToken* token() const;
  [[nodiscard]] Status HandleCollect(const RoundRequestMsg& req);
  [[nodiscard]] Status HandleAggregate(const RoundRequestMsg& req);
  [[nodiscard]] Status HandleFinalize(const RoundRequestMsg& req);
  [[nodiscard]] Status HandlePackedCollect(const RoundRequestMsg& req);

  std::unique_ptr<Transport> transport_;
  Config config_;
  std::vector<global::SourceTuple> tuples_;
  uint32_t fail_budget_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  Status loop_status_;
};

}  // namespace pds::net

#endif  // PDS_NET_TOKEN_CLIENT_H_
