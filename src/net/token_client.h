#ifndef PDS_NET_TOKEN_CLIENT_H_
#define PDS_NET_TOKEN_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ac/policy.h"
#include "common/clock.h"
#include "common/rng.h"
#include "global/common.h"
#include "net/codec.h"
#include "net/fault_injection.h"
#include "net/transport.h"
#include "pds/pds_node.h"

/// The token side of the real wire: wraps a SecureToken (or a full PdsNode)
/// in a runtime that connects to the SSI, proves fleet membership, and
/// answers protocol rounds until told to stop.
///
/// All plaintext handling happens here — "inside" the token, exactly as in
/// the in-process protocols; only ciphertext and final (authorized)
/// aggregates cross the transport.
namespace pds::net {

class TokenClient {
 public:
  struct Config {
    /// Either a bare token with pre-exported tuples...
    mcu::SecureToken* token = nullptr;
    std::vector<global::SourceTuple> tuples;
    /// ...or a full PdsNode whose tuples are policy-exported on Connect().
    node::PdsNode* pds_node = nullptr;
    ac::Subject subject;
    std::string table;
    std::string group_column;
    std::string value_column;
    /// Handshake receive deadline.
    uint32_t deadline_ms = 2000;
    /// Poll granularity of the serve loop (Stop() latency bound).
    uint32_t poll_ms = 50;
    /// Seed-driven token-level fault plan. `swallow_first` and
    /// `disconnect_after_replies` are consumed here; the link-level rates
    /// belong on a FaultInjectingTransport wrapping the transport instead.
    /// Every realized fault lands in injection_log() — print it on test
    /// failure and the scenario reproduces from the seed alone.
    FaultPlan faults;
    /// Reconnect factory for churn: returns a fresh transport whose peer
    /// end the harness has handed to SsiServer::ReadmitSession. Null means
    /// a churned client simply stays gone (the SSI degrades to quorum).
    std::function<Result<std::unique_ptr<Transport>>()> reconnect;
    /// Reconnect attempt k sleeps backoff*k plus a seeded jitter in
    /// [0, backoff] before dialing — a thundering herd of churned tokens
    /// must not re-arrive in lockstep.
    uint32_t reconnect_backoff_ms = 5;
    /// Bound on reconnect attempts across the client's lifetime.
    uint32_t max_reconnects = 2;
    /// Packed-Paillier context (the querier's public packing parameters,
    /// distributed out of band before the round). Required to answer
    /// kPackedCollect rounds; null tokens refuse them with an ErrorMsg.
    const crypto::PackedAggregate* packed = nullptr;
    /// Clock behind the reconnect backoff sleep. Null means the process
    /// wall clock; the simulation tier injects a sim::SimClock here.
    Clock* clock = nullptr;
  };

  TokenClient(std::unique_ptr<Transport> transport, Config config);
  ~TokenClient();

  TokenClient(const TokenClient&) = delete;
  TokenClient& operator=(const TokenClient&) = delete;

  /// Runs the challenge/hello/ack handshake (and, with a PdsNode, the
  /// policy-checked export of the authorized tuples).
  [[nodiscard]] Status Connect();

  /// Answers rounds until Bye, transport close, or Stop(). Returns Ok on a
  /// clean shutdown. A transport that closes mid-session triggers the
  /// reconnect/backoff loop when the fault plan churned us and a reconnect
  /// factory is configured; otherwise close is a clean goodbye.
  [[nodiscard]] Status ServeLoop();

  /// Connect() + ServeLoop() on a background thread.
  void Start();
  void Stop();
  /// Joins the background thread and returns its final status.
  [[nodiscard]] Status Join();

  /// Single-frame ("pumped") mode for the discrete-event simulator: no
  /// thread, no blocking Recv — the event loop delivers frames one at a
  /// time. StartPumped() runs Connect()'s tuple export and arms the
  /// handshake state machine (the challenge has not necessarily arrived
  /// yet); each PumpOnce() polls the transport once (Recv with a zero
  /// deadline) and advances exactly one frame through the same
  /// handshake/serve logic the blocking path uses. Requires a null
  /// reconnect factory — a churned pumped client stays gone by design
  /// (re-dialing from inside the event loop would recurse into it).
  [[nodiscard]] Status StartPumped();

  /// One pump step. Returns true while the session is live (including
  /// "nothing pending right now"), false once it ended cleanly (Bye, or
  /// transport closed after rounds), or the fatal error that killed it.
  [[nodiscard]] Result<bool> PumpOnce();

  /// True once PumpOnce() has seen the handshake through.
  [[nodiscard]] bool pump_serving() const {
    return pump_state_ == PumpState::kServing;
  }
  [[nodiscard]] bool pump_done() const {
    return pump_state_ == PumpState::kDone;
  }

  [[nodiscard]] const Transport& transport() const { return *transport_; }

  /// Token-level realized faults (swallows, churns) for scenario repro.
  [[nodiscard]] const InjectionLog& injection_log() const { return log_; }

 private:
  /// Where the pumped session stands; blocking mode never leaves kIdle.
  enum class PumpState { kIdle, kAwaitChallenge, kAwaitAck, kServing, kDone };

  [[nodiscard]] mcu::SecureToken* token() const;
  /// The tuple-export half of Connect(): policy-checked ExportAs from a
  /// PdsNode, or the pre-exported Config::tuples.
  [[nodiscard]] Status PrepareTuples();
  /// The handshake half of Connect(), reused on reconnect: a returning
  /// token must re-prove fleet membership against a FRESH challenge.
  [[nodiscard]] Status Handshake();
  /// One inbound handshake frame each — the shared bodies of the blocking
  /// Handshake() and the pumped state machine. Byte-for-byte the same
  /// decoding, attestation, and replies on both paths.
  [[nodiscard]] Status OnChallengeFrame(const Bytes& frame);
  [[nodiscard]] Status OnAckFrame(const Bytes& frame);
  /// One serve-loop iteration over an already-received frame: decode,
  /// replay/fault handling, dispatch to the round handler, reply. Sets
  /// *done when the session ended cleanly (Bye).
  [[nodiscard]] Status ServeFrame(const Bytes& frame, bool* done);
  /// All frames leave through here: mirrors the SSI's checksum trailer once
  /// one has been seen on the inbound side.
  [[nodiscard]] Status SendFrame(const Bytes& frame);
  /// Single egress point for decrypted per-group aggregates.
  [[nodiscard]] Status SendAggResult(const AggResultMsg& reply);
  /// Fault-plan churn: after enough replies, close the transport, back off
  /// with seeded jitter, and re-handshake over a fresh connection.
  [[nodiscard]] Status MaybeChurn();
  [[nodiscard]] Status HandleCollect(const RoundRequestMsg& req);
  [[nodiscard]] Status HandleAggregate(const RoundRequestMsg& req);
  [[nodiscard]] Status HandleFinalize(const RoundRequestMsg& req);
  [[nodiscard]] Status HandlePackedCollect(const RoundRequestMsg& req);
  [[nodiscard]] Status HandleDetCollect(const RoundRequestMsg& req);
  [[nodiscard]] Status HandleClassAggregate(const RoundRequestMsg& req);
  [[nodiscard]] Status HandleSealedCollect(const RoundRequestMsg& req);

  std::unique_ptr<Transport> transport_;
  Config config_;
  Clock* clock_;  // never null: Config::clock or the wall clock
  PumpState pump_state_ = PumpState::kIdle;
  std::vector<global::SourceTuple> tuples_;
  InjectionLog log_;
  Rng rng_;  // jitter + fault draws, seeded from the fault plan
  uint32_t swallow_budget_ = 0;
  uint64_t frame_index_ = 0;          // frames received this session
  uint64_t replies_since_connect_ = 0;
  uint32_t reconnects_done_ = 0;
  /// Highest round id answered so far: a request below it is a replay of an
  /// already-answered round and gets refused (an equal id is the SSI's
  /// legitimate retry of an unanswered request).
  uint32_t highest_round_ = 0;
  /// Set once an inbound frame carried a checksum trailer; all frames we
  /// send afterwards mirror it.
  bool peer_checksummed_ = false;
  uint32_t malformed_seen_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  Status loop_status_;
};

}  // namespace pds::net

#endif  // PDS_NET_TOKEN_CLIENT_H_
