#ifndef PDS_NET_FAULT_INJECTION_H_
#define PDS_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "net/transport.h"

/// Deterministic, seed-driven fault injection for the token <-> SSI wire.
///
/// FaultInjectingTransport wraps any Transport and perturbs complete frames
/// on both directions — drop, delay, duplicate, reorder, truncate, bit-flip
/// — according to a FaultPlan. Every realized injection is appended to an
/// InjectionLog, so a failing scenario reproduces from its seed alone and
/// the log can be printed for one-command repro.
///
/// Faults always apply to whole reassembled frames, never to the byte
/// stream underneath, so the wrapper composes with SocketTransport without
/// desynchronizing its reassembly buffer (a truncated frame still corrupts
/// the receiving stream — that is the point of the truncate fault).
namespace pds::net {

enum class FaultKind : uint8_t {
  kDrop = 1,       // frame silently swallowed
  kDelay = 2,      // frame held for delay_ms before forwarding
  kDuplicate = 3,  // frame forwarded twice
  kReorder = 4,    // frame held and released after the next frame
  kTruncate = 5,   // 1..8 tail bytes removed before forwarding
  kBitFlip = 6,    // one seeded bit flipped before forwarding
  kSwallowRequest = 7,  // token-level: round request consumed, never answered
  kChurn = 8,           // token-level: transport closed mid-session
};

const char* FaultKindName(FaultKind kind);

/// Seed-driven scenario configuration. Rates are per-frame Bernoulli draws
/// from one Rng seeded with `seed`; the draw order is fixed (drop, delay,
/// duplicate, reorder, truncate, bitflip per frame), so the same seed over
/// the same frame sequence realizes the same injections.
struct FaultPlan {
  uint64_t seed = 1;
  double drop_rate = 0.0;
  double delay_rate = 0.0;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  double truncate_rate = 0.0;
  double bitflip_rate = 0.0;
  /// Sleep applied by a realized delay fault.
  uint32_t delay_ms = 10;
  /// Cap on realized link injections (0 = unlimited). Lets a scenario
  /// perturb only the opening of a run and then go quiet.
  uint64_t max_injections = 0;
  /// Frames (per direction) forwarded untouched before faults engage.
  /// The scenario harness sets 2 so the attestation handshake completes
  /// and faults hit only protocol rounds, which have retry machinery.
  uint64_t skip_first = 0;

  /// Token-level faults (consumed by TokenClient, not by the wrapper):
  /// silently swallow the first N round requests — the request is consumed
  /// but never answered, so the SSI's retry of the same round is served.
  /// Replaces the old fail_first_requests counter; realized swallows land
  /// in the injection log like any other fault.
  uint32_t swallow_first = 0;
  /// Token-level churn: after sending this many round replies, close the
  /// transport mid-session (0 = never). The client then runs its
  /// reconnect/backoff loop if a reconnect factory is configured.
  uint64_t disconnect_after_replies = 0;

  [[nodiscard]] bool has_link_faults() const {
    return drop_rate > 0 || delay_rate > 0 || duplicate_rate > 0 ||
           reorder_rate > 0 || truncate_rate > 0 || bitflip_rate > 0;
  }
};

/// One realized fault.
struct Injection {
  uint64_t frame_index = 0;  // per-direction frame counter
  FaultKind kind = FaultKind::kDrop;
  const char* direction = "";  // "send" or "recv" (or "token")
  std::string detail;          // e.g. "flipped bit 3 of byte 17"
};

/// Thread-safe append-only log of realized injections, shared between the
/// wrapper, the token-level fault hooks, and the scenario harness.
class InjectionLog {
 public:
  void Add(Injection injection);
  [[nodiscard]] size_t size() const;
  [[nodiscard]] uint64_t Count(FaultKind kind) const;
  [[nodiscard]] std::vector<Injection> Entries() const;
  /// One line per injection — printed on scenario failure for repro.
  [[nodiscard]] std::string ToString() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Injection> entries_;
};

/// Transport wrapper realizing a FaultPlan. Not thread-safe per direction:
/// Send and Recv each assume one caller at a time (the SSI session loop),
/// which matches how SsiServer drives a session.
class FaultInjectingTransport : public Transport {
 public:
  /// `log` may be null (injections are then only counted internally).
  /// `clock` backs the delay-fault sleep; null means the process wall
  /// clock, and the simulation tier passes its SimClock so a held frame
  /// consumes virtual time instead of stalling the event loop.
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultPlan plan,
                          InjectionLog* log, Clock* clock = nullptr);

  [[nodiscard]] Status Send(ByteView frame) override;
  [[nodiscard]] Result<Bytes> Recv(uint32_t deadline_ms) override;
  void Close() override;
  [[nodiscard]] bool closed() const override;

  [[nodiscard]] uint64_t injections() const { return injections_; }

 private:
  enum class Verdict { kForward, kDrop, kHold };

  /// Applies the per-frame fault draws to `frame` (possibly mutating it) and
  /// says what to do with the result: forward it now, swallow it, or stash
  /// it in the direction's holding cell until the next frame passes.
  Verdict MutateFrame(Bytes* frame, uint64_t index, const char* direction,
                      bool* duplicate);
  bool BudgetLeft() const;
  void Log(uint64_t index, FaultKind kind, const char* direction,
           std::string detail);

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  InjectionLog* log_;
  Clock* clock_;  // never null: ctor arg or the wall clock
  Rng rng_;
  uint64_t injections_ = 0;
  uint64_t send_index_ = 0;
  uint64_t recv_index_ = 0;
  /// Reorder holding cells, one per direction.
  Bytes held_send_;
  bool has_held_send_ = false;
  Bytes held_recv_;
  bool has_held_recv_ = false;
};

}  // namespace pds::net

#endif  // PDS_NET_FAULT_INJECTION_H_
