#ifndef PDS_NET_SSI_SERVER_H_
#define PDS_NET_SSI_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "global/agg_protocols.h"
#include "global/common.h"
#include "global/fleet_executor.h"
#include "global/integrity.h"
#include "mcu/secure_token.h"
#include "net/adversary.h"
#include "net/codec.h"
#include "net/transport.h"
#include "obs/obs.h"

/// The SSI side of the real wire: hosts one protocol session per connected
/// token and runs the [TNP14] secure-aggregation rounds over framed
/// messages instead of in-process calls.
///
/// The server mirrors global::SecureAggProtocol exactly — same item order,
/// same partition layout, same map-ordered partials — so a loopback run
/// over identically-seeded tokens produces byte-identical group results.
/// What changes is the accounting: Metrics wire counters are measured from
/// the actual frames sent and received (headers included), and rounds gain
/// deadlines, bounded retry with backoff, and a configurable quorum.
namespace pds::net {

class SsiServer {
 public:
  struct Config {
    /// Max ciphertext tuples per aggregation partition (token RAM bound).
    size_t partition_capacity = 256;
    /// Per-request deadline for one token round trip.
    uint32_t deadline_ms = 2000;
    /// Additional attempts after the first request times out.
    uint32_t max_retries = 2;
    /// Backoff before retry k is backoff_ms * k.
    uint32_t backoff_ms = 5;
    /// Fraction of live tokens that must answer the collect round for the
    /// protocol to proceed (1.0 = everyone; 0.9 tolerates stragglers).
    double quorum = 1.0;
    /// Optional fan-out of per-session wire work; null means serial.
    global::FleetExecutor* executor = nullptr;
    /// Fleet-provisioned token the SSI hands challenge/proof pairs to for
    /// membership verification (the SSI itself never holds the fleet key).
    mcu::SecureToken* verifier = nullptr;
    /// Seed for handshake challenge nonces (deterministic tests).
    uint64_t nonce_seed = 42;
    /// Append an FNV-1a64 checksum trailer to every outgoing frame (wire
    /// version 3); tokens mirror it once they see a checksummed frame.
    /// Detects *accidental* corruption early — adversarial detection stays
    /// with the integrity layer. Mutually exclusive with trace context.
    bool checksum_frames = false;
    /// Weakly-malicious misbehaviour this server performs during runs (the
    /// scenario harness turns this on to prove querier-side detection).
    AdversaryPlan adversary;
    /// Clock behind every deadline, retry backoff, and round-trip latency
    /// measurement. Null means the process wall clock; the simulation tier
    /// injects a sim::SimClock here so timeouts run in virtual time.
    Clock* clock = nullptr;
    /// Skip per-session telemetry (the ~2 KiB SessionStats histogram per
    /// session). Million-session simulated fleets turn this on; Telemetry()
    /// then reports zeroed counters. The fleet-wide rtt histogram and the
    /// RoundReport stay exact either way.
    bool lean_sessions = false;
  };

  /// What happened on the wire during the last protocol run.
  struct RoundReport {
    size_t sessions = 0;          // live sessions when the run started
    size_t responders = 0;        // sessions that answered the collect round
    uint64_t deadline_hits = 0;   // individual request timeouts
    uint64_t retries = 0;         // re-sent requests
    uint64_t missing_tokens = 0;  // sessions dropped for the whole run
    uint64_t frame_rejects = 0;   // undecodable frames discarded in-place
  };

  explicit SsiServer(const Config& config);

  /// Runs the challenge/hello/ack handshake over `transport` and, on
  /// success, registers the session. Returns the session index.
  [[nodiscard]] Result<size_t> AcceptSession(
      std::unique_ptr<Transport> transport);

  /// Re-admits a returning (churned) token: runs the full handshake with a
  /// FRESH challenge — a stale proof replayed from the original handshake
  /// must fail attestation — and, if the token id matches an existing
  /// session, swaps in the new transport while keeping that session's round
  /// counter and telemetry, so the token re-enters the same round sequence.
  /// Refused while a protocol run is in flight (the round a churned token
  /// abandoned cannot be rejoined; quorum handles that degradation).
  [[nodiscard]] Result<size_t> ReadmitSession(
      std::unique_ptr<Transport> transport);

  [[nodiscard]] size_t num_sessions() const { return sessions_.size(); }

  /// Executes the secure-aggregation protocol over all live sessions.
  /// Collect-round stragglers are tolerated down to the configured quorum;
  /// a token that vanishes mid-aggregation fails the run (its partition's
  /// data cannot be recovered).
  [[nodiscard]] Result<global::AggOutput> RunSecureAggregation(
      global::AggFunc func);

  /// Executes the slot-packed Paillier round over all live sessions: ONE
  /// kPackedCollect request per token (carrying the public domain), one
  /// ciphertext back per token, a blind homomorphic fold on the SSI, and a
  /// single decrypt-unpack by the querier's `agg`. Stragglers are tolerated
  /// down to the quorum — slot-packed ciphertexts are independent, so a
  /// missing token merely shrinks the aggregate.
  [[nodiscard]] Result<global::AggOutput> RunPackedAggregation(
      global::AggFunc func, const crypto::PackedAggregate& agg,
      const std::vector<std::string>& domain);

  /// Parameters of one deterministic-encryption protocol run (the [TNP14]
  /// white-noise / domain-noise / histogram family) over the wire.
  struct DetRunConfig {
    DetVariant variant = DetVariant::kWhiteNoise;
    double noise_ratio = 0.2;      // white noise: fakes per real tuple
    uint64_t noise_seed = 7;       // white noise: fake-label stream seed
    uint32_t fakes_per_value = 1;  // domain noise: fakes per domain value
    std::vector<std::string> domain;  // domain noise: the public domain
    uint32_t num_buckets = 16;     // histogram: bucket count
  };

  /// Executes one det-encryption protocol over all live sessions: a
  /// kDetCollect fan-out (stragglers tolerated down to quorum), SSI-side
  /// grouping by deterministic ciphertext (or plaintext bucket id), then
  /// per-class kClassAggregate / per-bucket kFinalize rounds distributed
  /// round-robin over the responding tokens, with failover to the next
  /// live token when a class's assignee vanishes mid-round.
  [[nodiscard]] Result<global::AggOutput> RunDetAggregation(
      global::AggFunc func, const DetRunConfig& det);

  /// One sealed collection round: every live token MAC-seals its
  /// ciphertexts and signs a contribution manifest. The returned pool is
  /// what the *SSI* claims arrived — when Config::adversary configures a
  /// sealed tampering action it has already been applied, and
  /// `adversary_note` says what the SSI did (empty for an honest run).
  /// Feed the pool to global::AuditSealedBatch inside the querier token;
  /// detection of every tampering action is the test's assertion.
  struct SealedCollect {
    std::vector<global::SealedTuple> tuples;
    std::vector<global::Manifest> manifests;
    global::Metrics metrics;
    global::LeakageReport leakage;
    std::string adversary_note;
  };
  [[nodiscard]] Result<SealedCollect> RunSealedCollect();

  /// Adversarial probes (AdversaryPlan actions that attack the session
  /// protocol itself rather than a sealed batch). Each sends one hostile
  /// frame on session `idx` and reports the observed token-side defence —
  /// an error reply, or the clean death of the session. A Status return
  /// means the probe could not run, not that the token survived.
  [[nodiscard]] Result<std::string> InjectStaleRound(size_t idx);
  [[nodiscard]] Result<std::string> InjectOversizedFrame(size_t idx);
  [[nodiscard]] Result<std::string> InjectMalformedFrame(size_t idx);

  [[nodiscard]] const RoundReport& last_report() const { return report_; }

  /// Point-in-time per-session telemetry: round-trip tail latencies from
  /// the session's log-bucketed histogram plus retry/deadline/straggler
  /// accounting and the request-buffer gauge (admission-control groundwork
  /// for the event-loop SSI).
  struct SessionTelemetry {
    uint64_t token_id = 0;
    bool alive = false;
    uint64_t round_trips = 0;
    uint64_t retries = 0;
    uint64_t deadline_hits = 0;
    uint64_t stragglers = 0;  // runs this session was dropped from
    double rtt_p50_us = 0;
    double rtt_p90_us = 0;
    double rtt_p99_us = 0;
    double rtt_p999_us = 0;
    double buffer_bytes = 0;       // request bytes currently in flight
    double buffer_high_water = 0;  // max ever in flight on this session
  };
  [[nodiscard]] std::vector<SessionTelemetry> Telemetry() const;

  /// Fleet-wide round-trip latency distribution (microseconds), across all
  /// sessions and every attempt that got an answer.
  [[nodiscard]] const obs::Histogram& rtt_histogram() const { return rtt_us_; }

  /// The live stats document served by the kStats admin frame: per-session
  /// telemetry, fleet round-trip percentiles, the full metrics registry,
  /// and the recent delta-snapshot ring (one capture per protocol run).
  [[nodiscard]] std::string StatsJson() const;

  /// Answers one kStatsRequest arriving on `transport` with a kStatsReply.
  /// The stats channel is read-only and carries no token data, so it does
  /// not require the attestation handshake.
  [[nodiscard]] Status ServeStats(Transport* transport);

  /// Sends Bye on every live session and closes the transports.
  void Shutdown();

 private:
  /// Per-session accounting, bumped on the round-trip hot path with plain
  /// atomic ops (no registry lookups).
  struct SessionStats {
    obs::Histogram rtt_us;  // one sample per answered attempt, µs
    obs::Counter round_trips;
    obs::Counter retries;
    obs::Counter deadline_hits;
    obs::Counter stragglers;
    obs::Gauge buffer_bytes;  // bytes of the in-flight request frame
  };
  struct Session {
    std::unique_ptr<Transport> transport;
    uint64_t token_id = 0;
    bool alive = false;
    uint32_t next_round_id = 1;
    /// Null under Config::lean_sessions (million-session fleets).
    std::unique_ptr<SessionStats> stats;
  };
  struct WireCost;  // per-work-unit wire accounting (defined in the .cc)

  /// Sends `frame` on the session and waits for the reply carrying
  /// `round_id`, retrying per config on timeouts. Stale replies (a lower
  /// round id, e.g. a late answer to an earlier retry) and undecodable
  /// frames are discarded in place — a lossy or bit-flipping link must not
  /// kill the session while the stream itself stays framed.
  /// `cost` accumulates the measured frame bytes both ways.
  [[nodiscard]] Result<Message> RoundTrip(Session* s, const Bytes& frame,
                                          uint32_t round_id, WireCost* cost);

  /// Shared handshake body of AcceptSession/ReadmitSession.
  [[nodiscard]] Result<size_t> Handshake(std::unique_ptr<Transport> transport,
                                         bool readmit);

  /// Applies Config::checksum_frames to an outgoing sealed v1 frame.
  [[nodiscard]] Bytes MaybeChecksum(Bytes frame) const;

  /// True when `s` should be dropped from the run as a straggler for this
  /// failure (timeout, dead transport, or a desynchronized byte stream).
  [[nodiscard]] static bool IsStragglerFailure(const Status& s);

  Config config_;
  Clock* clock_;  // never null: Config::clock or the wall clock
  std::vector<std::unique_ptr<Session>> sessions_;
  RoundReport report_;
  /// Monotonic handshake-challenge counter: a re-handshake must never see
  /// a repeated nonce, or a recorded proof could be replayed.
  uint64_t nonce_counter_ = 0;
  /// A protocol run is in flight (readmission is refused meanwhile).
  /// Atomic: set by the protocol thread, read by whichever thread drives
  /// ReadmitSession.
  std::atomic<bool> run_active_{false};
  obs::Histogram rtt_us_;  // fleet-wide round-trip latency, µs
  obs::SnapshotRing stats_ring_{8};
  /// Trace ids for outgoing trace-context blocks. Seeded from the public
  /// nonce seed — deliberately the *non-secret* RNG: trace ids travel in
  /// cleartext (the codec treats AttachTraceContext as a secret-flow sink).
  Rng trace_rng_;
  uint64_t run_trace_id_ = 0;
};

}  // namespace pds::net

#endif  // PDS_NET_SSI_SERVER_H_
