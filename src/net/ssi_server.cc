#include "net/ssi_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <thread>

#include "common/clock.h"
#include "common/rng.h"
#include "global/observer.h"
#include "obs/obs.h"

namespace pds::net {

namespace {

using global::AggFunc;
using global::AggOutput;
using global::Metrics;

/// Sum/count accumulation per group (mirrors agg_protocols.cc).
struct GroupState {
  double sum = 0;
  uint64_t count = 0;
};

std::map<std::string, double> Finalize(
    const std::map<std::string, GroupState>& states, AggFunc func) {
  std::map<std::string, double> out;
  for (const auto& [group, s] : states) {
    if (s.count == 0) {
      continue;
    }
    switch (func) {
      case AggFunc::kSum:
        out[group] = s.sum;
        break;
      case AggFunc::kCount:
        out[group] = static_cast<double>(s.count);
        break;
      case AggFunc::kAvg:
        out[group] = s.sum / static_cast<double>(s.count);
        break;
    }
  }
  return out;
}

/// Round-robin unit assignment, identical to the in-process protocol's:
/// unit u goes to token (first + u) % num_tokens, and each token runs its
/// units in increasing order.
std::vector<std::vector<size_t>> RoundRobin(size_t num_units,
                                            size_t num_tokens, size_t first) {
  std::vector<std::vector<size_t>> by_token(num_tokens);
  for (auto& units : by_token) {
    units.reserve(num_units / num_tokens + 1);
  }
  for (size_t u = 0; u < num_units; ++u) {
    by_token[(first + u) % num_tokens].push_back(u);
  }
  return by_token;
}

/// Fleet-wide wire counters; resolved once, then plain atomic adds
/// (registry lookups must stay out of protocol loops).
struct NetObs {
  obs::Counter* frames_sent;
  obs::Counter* frames_received;
  obs::Counter* deadline_hits;
  obs::Counter* retries;
  obs::Counter* quorum_shortfalls;
  obs::Counter* missing_tokens;
  obs::Counter* frame_rejects;
  obs::Histogram* round_trip_us;
};

const NetObs& NetHooks() {
  static const NetObs hooks = [] {
    obs::Registry& reg = obs::Registry::Global();
    return NetObs{reg.GetCounter("net.frames_sent", "ops"),
                  reg.GetCounter("net.frames_received", "ops"),
                  reg.GetCounter("net.deadline_hits", "ops"),
                  reg.GetCounter("net.retries", "ops"),
                  reg.GetCounter("net.quorum_shortfalls", "ops"),
                  reg.GetCounter("net.missing_tokens", "ops"),
                  reg.GetCounter("net.frame_rejects", "ops"),
                  reg.GetHistogram("net.round_trip_us", "us")};
  }();
  return hooks;
}

/// RAII flag for "a protocol run is in flight" (readmission refused).
class RunGuard {
 public:
  explicit RunGuard(std::atomic<bool>* flag) : flag_(flag) {
    flag_->store(true);
  }
  ~RunGuard() { flag_->store(false); }
  RunGuard(const RunGuard&) = delete;
  RunGuard& operator=(const RunGuard&) = delete;

 private:
  std::atomic<bool>* flag_;
};

/// The round id a reply message answers, or nullptr for non-reply types.
const uint32_t* ReplyRoundId(const Message& m) {
  if (const TupleBatchMsg* tb = std::get_if<TupleBatchMsg>(&m.body)) {
    return &tb->round_id;
  }
  if (const AggResultMsg* ar = std::get_if<AggResultMsg>(&m.body)) {
    return &ar->round_id;
  }
  return nullptr;
}

}  // namespace

/// Per-work-unit wire accounting, merged into the run's Metrics in index
/// order afterwards (every field is a sum, so ordered merging reproduces
/// serial counters exactly).
struct SsiServer::WireCost {
  Metrics wire;
  uint64_t deadline_hits = 0;
  uint64_t retries = 0;
  uint64_t frame_rejects = 0;

  void MergeInto(Metrics* m, RoundReport* r) const {
    m->messages += wire.messages;
    m->bytes += wire.bytes;
    m->token_crypto_ops += wire.token_crypto_ops;
    m->bytes_token_to_ssi += wire.bytes_token_to_ssi;
    m->bytes_ssi_to_token += wire.bytes_ssi_to_token;
    r->deadline_hits += deadline_hits;
    r->retries += retries;
    r->frame_rejects += frame_rejects;
  }
};

SsiServer::SsiServer(const Config& config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock : WallClock()),
      trace_rng_(config.nonce_seed ^ 0x7472616365ULL) {}

Bytes SsiServer::MaybeChecksum(Bytes frame) const {
  if (!config_.checksum_frames) {
    return frame;
  }
  return AppendFrameChecksum(frame);
}

bool SsiServer::IsStragglerFailure(const Status& s) {
  // A token that timed out, whose transport died, or whose byte stream
  // desynchronized (a truncating/bit-flipping link breaks socket framing)
  // is gone for the run; quorum decides whether the protocol proceeds.
  return s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kIoError ||
         s.code() == StatusCode::kCorruption;
}

Result<size_t> SsiServer::Handshake(std::unique_ptr<Transport> transport,
                                    bool readmit) {
  if (config_.verifier == nullptr) {
    return Status::FailedPrecondition("SsiServer has no verifier token");
  }
  obs::Span span(readmit ? "net.readmit-session" : "net.accept-session",
                 "net");
  // Deterministic nonce stream (tests); entropy is not the point here — the
  // challenge only needs to be fresh per handshake, which the monotonic
  // counter guarantees across readmissions too.
  Rng nonce_rng(config_.nonce_seed + nonce_counter_++);
  ChallengeMsg challenge;
  challenge.nonce.resize(16);
  nonce_rng.FillBytes(challenge.nonce.data(), challenge.nonce.size());

  Bytes frame = MaybeChecksum(EncodeChallenge(challenge));
  PDS_RETURN_IF_ERROR(transport->Send(frame));
  PDS_ASSIGN_OR_RETURN(Bytes reply,
                       transport->Recv(config_.deadline_ms));
  PDS_ASSIGN_OR_RETURN(HelloMsg hello, DecodeAs<HelloMsg>(reply));

  PDS_ASSIGN_OR_RETURN(
      bool ok_proof,
      config_.verifier->VerifyAttestation(ByteView(challenge.nonce),
                                          hello.proof));
  HelloAckMsg ack{ok_proof};
  PDS_RETURN_IF_ERROR(transport->Send(MaybeChecksum(EncodeHelloAck(ack))));
  if (!ok_proof) {
    transport->Close();
    return Status::PermissionDenied(
        "token failed fleet attestation; session refused");
  }

  if (readmit) {
    for (size_t i = 0; i < sessions_.size(); ++i) {
      Session* s = sessions_[i].get();
      if (s->token_id != hello.token_id) {
        continue;
      }
      // The returning token picks up its old round sequence: the next
      // request it sees continues where the session left off, so stale
      // replies from before the churn stay detectable.
      s->transport->Close();
      s->transport = std::move(transport);
      s->alive = true;
      return i;
    }
  }
  auto session = std::make_unique<Session>();
  session->transport = std::move(transport);
  session->token_id = hello.token_id;
  session->alive = true;
  if (!config_.lean_sessions) {
    session->stats = std::make_unique<SessionStats>();
  }
  sessions_.push_back(std::move(session));
  return sessions_.size() - 1;
}

Result<size_t> SsiServer::AcceptSession(std::unique_ptr<Transport> transport) {
  return Handshake(std::move(transport), /*readmit=*/false);
}

Result<size_t> SsiServer::ReadmitSession(
    std::unique_ptr<Transport> transport) {
  if (run_active_) {
    return Status::FailedPrecondition(
        "cannot readmit a token while a protocol run is in flight; the "
        "abandoned round degrades to quorum instead");
  }
  return Handshake(std::move(transport), /*readmit=*/true);
}

Result<Message> SsiServer::RoundTrip(Session* s, const Bytes& frame,
                                     uint32_t round_id, WireCost* cost) {
  const NetObs& hooks = NetHooks();
  // One span per logical round trip (retries included). When recorded, its
  // id rides the wire as the trace-context parent so the token's handler
  // span hangs under it in the merged cross-process trace.
  obs::Span rt_span("net.round-trip", "net");
  Bytes rewritten;
  const Bytes* wire_frame = &frame;
  if (config_.checksum_frames) {
    // v3 frames carry the checksum trailer instead of trace context (the
    // two header rewrites are mutually exclusive by design).
    rewritten = AppendFrameChecksum(frame);
    wire_frame = &rewritten;
  } else if (rt_span.id() != 0) {
    TraceContext ctx;
    ctx.trace_id = run_trace_id_;
    ctx.parent_span_id = rt_span.id();
    ctx.sampled = true;
    rewritten = AttachTraceContext(frame, ctx);
    wire_frame = &rewritten;
  }
  // Admission-control gauge: bytes of this session's in-flight request.
  SessionStats* stats = s->stats.get();
  if (stats != nullptr) {
    stats->buffer_bytes.Set(static_cast<double>(wire_frame->size()));
  }
  for (uint32_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++cost->retries;
      hooks.retries->Add(1);
      if (stats != nullptr) {
        stats->retries.Add(1);
      }
      clock_->SleepMs(config_.backoff_ms * attempt);
    }
    uint64_t attempt_start_ns = clock_->NowNs();
    PDS_RETURN_IF_ERROR(s->transport->Send(*wire_frame));
    cost->wire.AddSsiToToken(wire_frame->size());
    hooks.frames_sent->Add(1);

    const uint64_t deadline_ns =
        clock_->NowNs() +
        static_cast<uint64_t>(config_.deadline_ms) * 1000000ull;
    bool timed_out = false;
    while (!timed_out) {
      uint64_t now_ns = clock_->NowNs();
      uint64_t left =
          now_ns < deadline_ns ? (deadline_ns - now_ns) / 1000000ull : 0;
      if (left == 0) {
        timed_out = true;
        break;
      }
      auto recv =
          s->transport->Recv(static_cast<uint32_t>(left));
      if (!recv.ok()) {
        if (recv.status().code() == StatusCode::kDeadlineExceeded) {
          timed_out = true;
          break;
        }
        if (stats != nullptr) {
          stats->buffer_bytes.Set(0);
        }
        return recv.status();
      }
      Bytes reply = std::move(recv).value();
      cost->wire.AddTokenToSsi(reply.size());
      hooks.frames_received->Add(1);
      auto decoded = DecodeMessage(reply);
      if (!decoded.ok()) {
        // A frame the link corrupted in-payload (the stream itself is still
        // framed, or Recv would have failed): discard it and keep waiting —
        // the retry budget, not one flipped bit, decides this session's
        // fate.
        ++cost->frame_rejects;
        hooks.frame_rejects->Add(1);
        continue;
      }
      Message m = std::move(decoded).value();
      if (const ErrorMsg* err = std::get_if<ErrorMsg>(&m.body)) {
        if (err->code == 3) {
          // The token rejected a frame it could not decode (our request was
          // mangled in flight). Transient: let the deadline drive a retry.
          ++cost->frame_rejects;
          hooks.frame_rejects->Add(1);
          continue;
        }
        if (stats != nullptr) {
          stats->buffer_bytes.Set(0);
        }
        return Status::FailedPrecondition("peer error: " + err->message);
      }
      const uint32_t* got = ReplyRoundId(m);
      if (got == nullptr) {
        if (stats != nullptr) {
          stats->buffer_bytes.Set(0);
        }
        return Status::FailedPrecondition("unexpected reply message type");
      }
      if (*got < round_id) {
        continue;  // stale answer to an earlier attempt/round; discard
      }
      if (*got > round_id) {
        if (stats != nullptr) {
          stats->buffer_bytes.Set(0);
        }
        return Status::Corruption("reply from a future round");
      }
      double rtt_us =
          static_cast<double>(clock_->NowNs() - attempt_start_ns) / 1000.0;
      if (stats != nullptr) {
        stats->rtt_us.Record(rtt_us);
        stats->round_trips.Add(1);
      }
      rtt_us_.Record(rtt_us);
      hooks.round_trip_us->Record(rtt_us);
      if (stats != nullptr) {
        stats->buffer_bytes.Set(0);
      }
      return m;
    }
    ++cost->deadline_hits;
    hooks.deadline_hits->Add(1);
    if (stats != nullptr) {
      stats->deadline_hits.Add(1);
    }
  }
  if (stats != nullptr) {
    stats->buffer_bytes.Set(0);
  }
  return Status::DeadlineExceeded("token did not answer round " +
                                  std::to_string(round_id) + " after " +
                                  std::to_string(config_.max_retries + 1) +
                                  " attempts");
}

Result<AggOutput> SsiServer::RunSecureAggregation(AggFunc func) {
  std::vector<size_t> live;
  live.reserve(sessions_.size());
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i]->alive) {
      live.push_back(i);
    }
  }
  if (live.empty()) {
    return Status::InvalidArgument("no live sessions");
  }
  RunGuard run_guard(&run_active_);
  report_ = RoundReport{};
  report_.sessions = live.size();
  run_trace_id_ = trace_rng_.Next();

  AggOutput out;
  global::HbcObserver observer;
  const size_t nl = live.size();
  obs::Span protocol_span("net.secure-agg", "net");
  protocol_span.AddArg("sessions", static_cast<double>(nl));

  // Phase 1: collect — every live token encrypts and sends its authorized
  // tuples. Sessions fan out over the executor; stragglers past the retry
  // budget are tolerated down to the quorum.
  std::vector<std::vector<Bytes>> enc(nl);
  std::vector<WireCost> enc_cost(nl);
  std::vector<uint8_t> responded(nl, 0);
  {
    obs::Span phase_span("net.collect", "net");
    PDS_RETURN_IF_ERROR(global::FleetExecutor::Run(
        config_.executor, nl, [&](size_t li) -> Status {
          Session* s = sessions_[live[li]].get();
          RoundRequestMsg req;
          req.header.round_id = s->next_round_id++;
          req.header.kind = RoundKind::kCollect;
          req.header.func = func;
          Bytes frame = EncodeRoundRequest(req);
          auto reply = RoundTrip(s, frame, req.header.round_id, &enc_cost[li]);
          if (!reply.ok()) {
            if (IsStragglerFailure(reply.status())) {
              s->alive = false;  // straggler: drop for the whole run
              if (s->stats != nullptr) s->stats->stragglers.Add(1);
              return Status::Ok();
            }
            return reply.status();
          }
          TupleBatchMsg* batch = std::get_if<TupleBatchMsg>(&reply.value().body);
          if (batch == nullptr) {
            return Status::FailedPrecondition(
                "collect round expected a tuple batch");
          }
          enc_cost[li].wire.token_crypto_ops += batch->token_ops;
          enc[li] = std::move(batch->batch);
          responded[li] = 1;
          return Status::Ok();
        }));
  }

  size_t responders = 0;
  std::vector<size_t> active;  // sessions that stay in the protocol
  active.reserve(nl);
  std::vector<Bytes> items;
  for (size_t li = 0; li < nl; ++li) {
    enc_cost[li].MergeInto(&out.metrics, &report_);
    if (responded[li] == 0) {
      continue;
    }
    ++responders;
    active.push_back(live[li]);
    for (Bytes& ct : enc[li]) {
      observer.ObserveTuple(ByteView(ct));
      items.push_back(std::move(ct));
    }
  }
  ++out.metrics.rounds;

  report_.responders = responders;
  report_.missing_tokens = nl - responders;
  out.metrics.tokens_missing = report_.missing_tokens;
  const NetObs& hooks = NetHooks();
  size_t need = static_cast<size_t>(
      std::ceil(config_.quorum * static_cast<double>(nl)));
  need = std::max<size_t>(need, 1);
  if (report_.missing_tokens > 0) {
    hooks.missing_tokens->Add(report_.missing_tokens);
  }
  if (responders < need) {
    hooks.quorum_shortfalls->Add(1);
    return Status::FailedPrecondition(
        "quorum not reached: " + std::to_string(responders) + "/" +
        std::to_string(nl) + " tokens answered, need " +
        std::to_string(need));
  }

  // Phase 2: iterative partition-and-aggregate over the responding tokens,
  // partitions round-robin in session order exactly as the in-process
  // protocol assigns them to participants. A token that vanishes now takes
  // its partition's data with it, so this phase has no quorum: retry, then
  // fail the run.
  const size_t na = active.size();
  size_t worker = 0;
  while (items.size() > config_.partition_capacity) {
    obs::Span phase_span("net.aggregate-round", "net");
    phase_span.AddArg("items", static_cast<double>(items.size()));
    size_t before = items.size();
    const size_t cap = config_.partition_capacity;
    const size_t num_parts = (items.size() + cap - 1) / cap;
    std::vector<std::vector<size_t>> parts_by_session =
        RoundRobin(num_parts, na, worker);
    worker += num_parts;

    struct PartOut {
      std::vector<Bytes> cts;
      WireCost cost;
    };
    std::vector<PartOut> parts(num_parts);
    std::vector<WireCost> map_cost(na);
    PDS_RETURN_IF_ERROR(global::FleetExecutor::Run(
        config_.executor, na, [&](size_t ai) -> Status {
          if (parts_by_session[ai].empty()) {
            return Status::Ok();
          }
          Session* s = sessions_[active[ai]].get();
          // Announce this session's slice of the layout, then stream its
          // partitions in increasing order (token RNG order).
          PartitionMapMsg pm;
          pm.round_id = s->next_round_id;
          pm.parts.reserve(parts_by_session[ai].size());
          for (size_t pi : parts_by_session[ai]) {
            size_t start = pi * cap;
            size_t end = std::min(items.size(), start + cap);
            pm.parts.push_back(
                {static_cast<uint32_t>(pi), static_cast<uint32_t>(ai),
                 static_cast<uint32_t>(end - start)});
          }
          Bytes pm_frame = MaybeChecksum(EncodePartitionMap(pm));
          PDS_RETURN_IF_ERROR(s->transport->Send(pm_frame));
          map_cost[ai].wire.AddSsiToToken(pm_frame.size());
          NetHooks().frames_sent->Add(1);

          for (size_t pi : parts_by_session[ai]) {
            PartOut& po = parts[pi];
            size_t start = pi * cap;
            size_t end = std::min(items.size(), start + cap);
            RoundRequestMsg req;
            req.header.round_id = s->next_round_id++;
            req.header.kind = RoundKind::kAggregate;
            req.header.func = func;
            req.batch.reserve(end - start);
            for (size_t i = start; i < end; ++i) {
              req.batch.push_back(items[i]);
            }
            Bytes frame = EncodeRoundRequest(req);
            PDS_ASSIGN_OR_RETURN(
                Message reply,
                RoundTrip(s, frame, req.header.round_id, &po.cost));
            TupleBatchMsg* batch = std::get_if<TupleBatchMsg>(&reply.body);
            if (batch == nullptr) {
              return Status::FailedPrecondition(
                  "aggregate round expected a tuple batch");
            }
            po.cost.wire.token_crypto_ops += batch->token_ops;
            po.cts = std::move(batch->batch);
          }
          return Status::Ok();
        }));

    std::vector<Bytes> next;
    next.reserve(items.size());
    for (size_t ai = 0; ai < na; ++ai) {
      map_cost[ai].MergeInto(&out.metrics, &report_);
    }
    for (size_t pi = 0; pi < num_parts; ++pi) {
      parts[pi].cost.MergeInto(&out.metrics, &report_);
      for (Bytes& ct : parts[pi].cts) {
        observer.ObserveTuple(ByteView(ct));
        next.push_back(std::move(ct));
      }
      ++out.metrics.ssi_ops;  // partition bookkeeping
    }
    ++out.metrics.rounds;
    if (next.size() >= before) {
      return Status::InvalidArgument(
          "partition capacity too small for the number of distinct groups");
    }
    items = std::move(next);
  }

  // Phase 3: final aggregation inside the first responding token.
  obs::Span final_span("net.finalize", "net");
  final_span.AddArg("items", static_cast<double>(items.size()));
  Session* s0 = sessions_[active[0]].get();
  WireCost final_cost;
  RoundRequestMsg fin;
  fin.header.round_id = s0->next_round_id++;
  fin.header.kind = RoundKind::kFinalize;
  fin.header.func = func;
  fin.batch = std::move(items);
  Bytes fin_frame = EncodeRoundRequest(fin);
  PDS_ASSIGN_OR_RETURN(
      Message reply, RoundTrip(s0, fin_frame, fin.header.round_id,
                               &final_cost));
  AggResultMsg* result = std::get_if<AggResultMsg>(&reply.body);
  if (result == nullptr) {
    return Status::FailedPrecondition("finalize round expected an agg result");
  }
  final_cost.wire.token_crypto_ops += result->token_ops;
  final_cost.MergeInto(&out.metrics, &report_);
  ++out.metrics.rounds;

  std::map<std::string, GroupState> final_state;
  for (const AggResultEntry& e : result->entries) {
    final_state[e.group].sum += e.sum;
    final_state[e.group].count += e.count;
  }
  out.groups = Finalize(final_state, func);
  if (config_.adversary.action == AdversaryAction::kForgeAggregate &&
      !out.groups.empty()) {
    // The weakly-malicious SSI shaves the first group's value. Without a
    // sealed round to audit against, the querier catches this by
    // re-running the aggregate through AuditSealedBatch and comparing.
    out.groups.begin()->second += 1.0;
  }
  out.leakage = observer.Report();
  global::RecordProtocolRun("net-secure-agg", out.metrics, out.leakage);
  stats_ring_.Capture(obs::Registry::Global());
  return out;
}

Result<AggOutput> SsiServer::RunPackedAggregation(
    AggFunc func, const crypto::PackedAggregate& agg,
    const std::vector<std::string>& domain) {
  if (domain.empty()) {
    return Status::InvalidArgument("packed round requires the value domain");
  }
  if (domain.size() > kMaxPackedSlots) {
    return Status::InvalidArgument("packed domain exceeds kMaxPackedSlots");
  }
  if (agg.layout().num_slots != 2 * domain.size()) {
    return Status::InvalidArgument(
        "packed layout does not match the domain (need 2 slots per value)");
  }
  std::vector<size_t> live;
  live.reserve(sessions_.size());
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i]->alive) {
      live.push_back(i);
    }
  }
  if (live.empty()) {
    return Status::InvalidArgument("no live sessions");
  }
  RunGuard run_guard(&run_active_);
  report_ = RoundReport{};
  report_.sessions = live.size();
  run_trace_id_ = trace_rng_.Next();

  AggOutput out;
  global::HbcObserver observer;
  const size_t nl = live.size();
  obs::Span protocol_span("net.packed-paillier", "net");
  protocol_span.AddArg("sessions", static_cast<double>(nl));
  protocol_span.AddArg("domain", static_cast<double>(domain.size()));

  // The single round: every token packs its counters into one ciphertext.
  // The request batch carries the domain labels in slot order.
  std::vector<crypto::BigInt> cts(nl);
  std::vector<WireCost> costs(nl);
  std::vector<uint8_t> responded(nl, 0);
  {
    obs::Span phase_span("net.packed-collect", "net");
    PDS_RETURN_IF_ERROR(global::FleetExecutor::Run(
        config_.executor, nl, [&](size_t li) -> Status {
          Session* s = sessions_[live[li]].get();
          RoundRequestMsg req;
          req.header.round_id = s->next_round_id++;
          req.header.kind = RoundKind::kPackedCollect;
          req.header.func = func;
          req.batch.reserve(domain.size());
          for (const std::string& g : domain) {
            req.batch.push_back(ByteView(std::string_view(g)).ToBytes());
          }
          Bytes frame = EncodeRoundRequest(req);
          auto reply = RoundTrip(s, frame, req.header.round_id, &costs[li]);
          if (!reply.ok()) {
            if (IsStragglerFailure(reply.status())) {
              s->alive = false;  // straggler: drop for the whole run
              if (s->stats != nullptr) s->stats->stragglers.Add(1);
              return Status::Ok();
            }
            return reply.status();
          }
          TupleBatchMsg* batch =
              std::get_if<TupleBatchMsg>(&reply.value().body);
          if (batch == nullptr || batch->batch.size() != 1) {
            return Status::FailedPrecondition(
                "packed round expected exactly one ciphertext");
          }
          costs[li].wire.token_crypto_ops += batch->token_ops;
          if (batch->batch[0].size() > kMaxPackedCiphertextBytes) {
            return Status::Corruption(
                "packed ciphertext exceeds kMaxPackedCiphertextBytes");
          }
          cts[li] = crypto::BigInt::FromBytes(ByteView(batch->batch[0]));
          responded[li] = 1;
          return Status::Ok();
        }));
  }

  size_t responders = 0;
  crypto::BigInt acc;
  for (size_t li = 0; li < nl; ++li) {
    costs[li].MergeInto(&out.metrics, &report_);
    if (responded[li] == 0) {
      continue;
    }
    observer.ObserveTuple(ByteView(cts[li].ToBytes()));
    acc = responders == 0 ? cts[li] : agg.Add(acc, cts[li]);
    if (responders > 0) {
      ++out.metrics.ssi_ops;
    }
    ++responders;
  }
  ++out.metrics.rounds;

  report_.responders = responders;
  report_.missing_tokens = nl - responders;
  out.metrics.tokens_missing = report_.missing_tokens;
  const NetObs& hooks = NetHooks();
  size_t need = static_cast<size_t>(
      std::ceil(config_.quorum * static_cast<double>(nl)));
  need = std::max<size_t>(need, 1);
  if (report_.missing_tokens > 0) {
    hooks.missing_tokens->Add(report_.missing_tokens);
  }
  if (responders < need) {
    hooks.quorum_shortfalls->Add(1);
    return Status::FailedPrecondition(
        "quorum not reached: " + std::to_string(responders) + "/" +
        std::to_string(nl) + " tokens answered, need " + std::to_string(need));
  }
  PDS_RETURN_IF_ERROR(agg.CheckAddBudget(responders));

  // Querier: one decrypt-unpack yields every (sum, count) total.
  // pdslint: declassify(the querier role decrypts only the aggregate sum
  // and count per slot -- the protocol's intended output, never a per-token
  // value; [TNP14] section 4's HbC guarantee is exactly this boundary)
  PDS_ASSIGN_OR_RETURN(std::vector<uint64_t> totals, agg.DecryptUnpack(acc));
  ++out.metrics.token_crypto_ops;

  std::map<std::string, GroupState> state;
  for (size_t i = 0; i < domain.size(); ++i) {
    GroupState& gs = state[domain[i]];
    gs.sum = static_cast<double>(totals[2 * i]);
    gs.count = totals[2 * i + 1];
  }
  out.groups = Finalize(state, func);
  out.leakage = observer.Report();
  global::RecordProtocolRun("net-packed-paillier", out.metrics, out.leakage);
  stats_ring_.Capture(obs::Registry::Global());
  return out;
}

Result<AggOutput> SsiServer::RunDetAggregation(AggFunc func,
                                               const DetRunConfig& det) {
  if (det.variant == DetVariant::kDomainNoise && det.domain.empty()) {
    return Status::InvalidArgument("domain-noise run requires the domain");
  }
  if (det.variant == DetVariant::kHistogram && det.num_buckets == 0) {
    return Status::InvalidArgument("histogram run requires num_buckets >= 1");
  }
  std::vector<size_t> live;
  live.reserve(sessions_.size());
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i]->alive) {
      live.push_back(i);
    }
  }
  if (live.empty()) {
    return Status::InvalidArgument("no live sessions");
  }
  RunGuard run_guard(&run_active_);
  report_ = RoundReport{};
  report_.sessions = live.size();
  run_trace_id_ = trace_rng_.Next();

  AggOutput out;
  global::HbcObserver observer;
  const size_t nl = live.size();
  obs::Span protocol_span("net.det-agg", "net");
  protocol_span.AddArg("sessions", static_cast<double>(nl));
  protocol_span.AddArg("variant", static_cast<double>(det.variant));

  // Phase 1: kDetCollect fan-out. Batch entry 0 carries the public round
  // parameters; domain-noise rounds append the domain labels.
  DetParams params;
  params.variant = det.variant;
  params.noise_ratio = det.noise_ratio;
  params.noise_seed = det.noise_seed;
  params.fakes_per_value = det.fakes_per_value;
  params.num_buckets = det.num_buckets;

  std::vector<std::vector<Bytes>> enc(nl);
  std::vector<WireCost> enc_cost(nl);
  std::vector<uint8_t> responded(nl, 0);
  {
    obs::Span phase_span("net.det-collect", "net");
    PDS_RETURN_IF_ERROR(global::FleetExecutor::Run(
        config_.executor, nl, [&](size_t li) -> Status {
          Session* s = sessions_[live[li]].get();
          RoundRequestMsg req;
          req.header.round_id = s->next_round_id++;
          req.header.kind = RoundKind::kDetCollect;
          req.header.func = func;
          req.batch.push_back(EncodeDetParams(params));
          if (det.variant == DetVariant::kDomainNoise) {
            for (const std::string& g : det.domain) {
              req.batch.push_back(ByteView(std::string_view(g)).ToBytes());
            }
          }
          Bytes frame = EncodeRoundRequest(req);
          auto reply = RoundTrip(s, frame, req.header.round_id, &enc_cost[li]);
          if (!reply.ok()) {
            if (IsStragglerFailure(reply.status())) {
              s->alive = false;  // straggler: drop for the whole run
              if (s->stats != nullptr) s->stats->stragglers.Add(1);
              return Status::Ok();
            }
            return reply.status();
          }
          TupleBatchMsg* batch =
              std::get_if<TupleBatchMsg>(&reply.value().body);
          if (batch == nullptr) {
            return Status::FailedPrecondition(
                "det collect round expected a tuple batch");
          }
          if (batch->batch.size() % 2 != 0) {
            return Status::Corruption(
                "det collect batch must hold (key, payload) pairs");
          }
          enc_cost[li].wire.token_crypto_ops += batch->token_ops;
          enc[li] = std::move(batch->batch);
          responded[li] = 1;
          return Status::Ok();
        }));
  }

  size_t responders = 0;
  std::vector<size_t> active;
  active.reserve(nl);
  // Equality classes in deterministic-ciphertext order (mirrors the
  // in-process protocol's std::map over ct bytes); histogram rounds key by
  // the plaintext bucket id instead.
  std::map<Bytes, std::vector<Bytes>> classes;
  std::map<uint32_t, std::vector<Bytes>> buckets;
  const bool histogram = det.variant == DetVariant::kHistogram;
  for (size_t li = 0; li < nl; ++li) {
    enc_cost[li].MergeInto(&out.metrics, &report_);
    if (responded[li] == 0) {
      continue;
    }
    ++responders;
    active.push_back(live[li]);
    for (size_t i = 0; i + 1 < enc[li].size(); i += 2) {
      Bytes& key = enc[li][i];
      Bytes& payload = enc[li][i + 1];
      observer.ObserveTuple(ByteView(key));
      ++out.metrics.ssi_ops;
      if (histogram) {
        if (key.size() != 4) {
          return Status::Corruption("histogram bucket key must be 4 bytes");
        }
        buckets[GetU32(key.data())].push_back(std::move(payload));
      } else {
        classes[key].push_back(std::move(payload));
      }
    }
  }
  ++out.metrics.rounds;

  report_.responders = responders;
  report_.missing_tokens = nl - responders;
  out.metrics.tokens_missing = report_.missing_tokens;
  const NetObs& hooks = NetHooks();
  size_t need = static_cast<size_t>(
      std::ceil(config_.quorum * static_cast<double>(nl)));
  need = std::max<size_t>(need, 1);
  if (report_.missing_tokens > 0) {
    hooks.missing_tokens->Add(report_.missing_tokens);
  }
  if (responders < need) {
    hooks.quorum_shortfalls->Add(1);
    return Status::FailedPrecondition(
        "quorum not reached: " + std::to_string(responders) + "/" +
        std::to_string(nl) + " tokens answered, need " + std::to_string(need));
  }

  // Phase 2: one class/bucket aggregation request per equality class,
  // distributed round-robin over the responding sessions in class order —
  // identical to the in-process protocol's unit assignment. A session that
  // vanishes mid-phase fails over: its unfinished classes go to the next
  // live responder.
  struct ClassUnit {
    RoundKind kind = RoundKind::kClassAggregate;
    std::vector<Bytes> batch;  // [key, payloads...] or [payloads...]
  };
  std::vector<ClassUnit> units;
  units.reserve(histogram ? buckets.size() : classes.size());
  if (histogram) {
    for (auto& [bucket, payloads] : buckets) {
      ClassUnit u;
      u.kind = RoundKind::kFinalize;
      u.batch = std::move(payloads);
      units.push_back(std::move(u));
    }
  } else {
    for (auto& [key, payloads] : classes) {
      ClassUnit u;
      u.kind = RoundKind::kClassAggregate;
      u.batch.reserve(payloads.size() + 1);
      u.batch.push_back(key);
      for (Bytes& p : payloads) {
        u.batch.push_back(std::move(p));
      }
      units.push_back(std::move(u));
    }
  }

  const size_t na = active.size();
  const size_t num_units = units.size();
  std::vector<AggResultMsg> results(num_units);
  std::vector<uint8_t> done(num_units, 0);
  std::vector<WireCost> unit_cost(num_units);
  std::vector<std::vector<size_t>> by_session = RoundRobin(num_units, na, 0);

  auto run_unit = [&](Session* s, size_t ui) -> Status {
    RoundRequestMsg req;
    req.header.round_id = s->next_round_id++;
    req.header.kind = units[ui].kind;
    req.header.func = func;
    req.batch = units[ui].batch;
    Bytes frame = EncodeRoundRequest(req);
    PDS_ASSIGN_OR_RETURN(
        Message reply, RoundTrip(s, frame, req.header.round_id,
                                 &unit_cost[ui]));
    AggResultMsg* result = std::get_if<AggResultMsg>(&reply.body);
    if (result == nullptr) {
      return Status::FailedPrecondition(
          "class aggregation expected an agg result");
    }
    unit_cost[ui].wire.token_crypto_ops += result->token_ops;
    results[ui] = std::move(*result);
    done[ui] = 1;
    return Status::Ok();
  };

  {
    obs::Span phase_span("net.class-aggregate", "net");
    phase_span.AddArg("classes", static_cast<double>(num_units));
    PDS_RETURN_IF_ERROR(global::FleetExecutor::Run(
        config_.executor, na, [&](size_t ai) -> Status {
          Session* s = sessions_[active[ai]].get();
          for (size_t ui : by_session[ai]) {
            Status st = run_unit(s, ui);
            if (!st.ok()) {
              if (IsStragglerFailure(st)) {
                s->alive = false;  // failover picks up this session's rest
                if (s->stats != nullptr) s->stats->stragglers.Add(1);
                return Status::Ok();
              }
              return st;
            }
          }
          return Status::Ok();
        }));
    // Failover pass (serial): reassign unfinished classes to any session
    // that is still alive, in active order.
    for (size_t ui = 0; ui < num_units; ++ui) {
      if (done[ui] != 0) {
        continue;
      }
      bool recovered = false;
      for (size_t ai = 0; ai < na && !recovered; ++ai) {
        Session* s = sessions_[active[ai]].get();
        if (!s->alive) {
          continue;
        }
        Status st = run_unit(s, ui);
        if (st.ok()) {
          recovered = true;
        } else if (IsStragglerFailure(st)) {
          s->alive = false;
          if (s->stats != nullptr) s->stats->stragglers.Add(1);
        } else {
          return st;
        }
      }
      if (!recovered) {
        return Status::FailedPrecondition(
            "every responding token vanished before class " +
            std::to_string(ui) + " could be aggregated");
      }
    }
  }

  // Merge in class order (map order), exactly like the in-process merge.
  std::map<std::string, GroupState> state;
  for (size_t ui = 0; ui < num_units; ++ui) {
    unit_cost[ui].MergeInto(&out.metrics, &report_);
    for (const AggResultEntry& e : results[ui].entries) {
      state[e.group].sum += e.sum;
      state[e.group].count += e.count;
    }
  }
  ++out.metrics.rounds;

  out.groups = Finalize(state, func);
  if (config_.adversary.action == AdversaryAction::kForgeAggregate &&
      !out.groups.empty()) {
    out.groups.begin()->second += 1.0;
  }
  out.leakage = observer.Report();
  switch (det.variant) {
    case DetVariant::kWhiteNoise:
      global::RecordProtocolRun("net-white-noise", out.metrics, out.leakage);
      break;
    case DetVariant::kDomainNoise:
      global::RecordProtocolRun("net-domain-noise", out.metrics, out.leakage);
      break;
    case DetVariant::kHistogram:
      global::RecordProtocolRun("net-histogram", out.metrics, out.leakage);
      break;
  }
  stats_ring_.Capture(obs::Registry::Global());
  return out;
}

Result<SsiServer::SealedCollect> SsiServer::RunSealedCollect() {
  std::vector<size_t> live;
  live.reserve(sessions_.size());
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i]->alive) {
      live.push_back(i);
    }
  }
  if (live.empty()) {
    return Status::InvalidArgument("no live sessions");
  }
  RunGuard run_guard(&run_active_);
  report_ = RoundReport{};
  report_.sessions = live.size();
  run_trace_id_ = trace_rng_.Next();

  SealedCollect out;
  global::HbcObserver observer;
  const size_t nl = live.size();
  obs::Span protocol_span("net.sealed-collect", "net");
  protocol_span.AddArg("sessions", static_cast<double>(nl));

  std::vector<std::vector<Bytes>> enc(nl);
  std::vector<WireCost> costs(nl);
  std::vector<uint8_t> responded(nl, 0);
  PDS_RETURN_IF_ERROR(global::FleetExecutor::Run(
      config_.executor, nl, [&](size_t li) -> Status {
        Session* s = sessions_[live[li]].get();
        RoundRequestMsg req;
        req.header.round_id = s->next_round_id++;
        req.header.kind = RoundKind::kSealedCollect;
        req.header.func = global::AggFunc::kSum;
        Bytes frame = EncodeRoundRequest(req);
        auto reply = RoundTrip(s, frame, req.header.round_id, &costs[li]);
        if (!reply.ok()) {
          if (IsStragglerFailure(reply.status())) {
            s->alive = false;
            if (s->stats != nullptr) s->stats->stragglers.Add(1);
            return Status::Ok();
          }
          return reply.status();
        }
        TupleBatchMsg* batch = std::get_if<TupleBatchMsg>(&reply.value().body);
        if (batch == nullptr || batch->batch.empty()) {
          return Status::FailedPrecondition(
              "sealed collect expected [manifest, sealed tuples...]");
        }
        costs[li].wire.token_crypto_ops += batch->token_ops;
        enc[li] = std::move(batch->batch);
        responded[li] = 1;
        return Status::Ok();
      }));

  size_t responders = 0;
  for (size_t li = 0; li < nl; ++li) {
    costs[li].MergeInto(&out.metrics, &report_);
    if (responded[li] == 0) {
      continue;
    }
    ++responders;
    PDS_ASSIGN_OR_RETURN(global::Manifest manifest,
                         global::DecodeManifest(ByteView(enc[li][0])));
    out.manifests.push_back(manifest);
    for (size_t i = 1; i < enc[li].size(); ++i) {
      PDS_ASSIGN_OR_RETURN(global::SealedTuple t,
                           global::DecodeSealedTuple(ByteView(enc[li][i])));
      observer.ObserveTuple(ByteView(t.payload_ct));
      ++out.metrics.ssi_ops;
      out.tuples.push_back(std::move(t));
    }
  }
  ++out.metrics.rounds;

  report_.responders = responders;
  report_.missing_tokens = nl - responders;
  out.metrics.tokens_missing = report_.missing_tokens;
  const NetObs& hooks = NetHooks();
  size_t need = static_cast<size_t>(
      std::ceil(config_.quorum * static_cast<double>(nl)));
  need = std::max<size_t>(need, 1);
  if (report_.missing_tokens > 0) {
    hooks.missing_tokens->Add(report_.missing_tokens);
  }
  if (responders < need) {
    hooks.quorum_shortfalls->Add(1);
    return Status::FailedPrecondition(
        "quorum not reached: " + std::to_string(responders) + "/" +
        std::to_string(nl) + " tokens answered, need " + std::to_string(need));
  }

  // The weakly-malicious SSI acts here, after honest tokens sealed their
  // contributions and before the pool reaches the querier.
  out.adversary_note =
      ApplySealedTampering(config_.adversary, &out.tuples, &out.manifests);

  out.leakage = observer.Report();
  global::RecordProtocolRun("net-sealed-collect", out.metrics, out.leakage);
  stats_ring_.Capture(obs::Registry::Global());
  return out;
}

Result<std::string> SsiServer::InjectStaleRound(size_t idx) {
  if (idx >= sessions_.size() || !sessions_[idx]->alive) {
    return Status::InvalidArgument("no live session at this index");
  }
  Session* s = sessions_[idx].get();
  if (s->next_round_id < 2) {
    return Status::FailedPrecondition(
        "session has no completed round to replay");
  }
  RoundRequestMsg req;
  req.header.round_id = s->next_round_id - 2;  // strictly below the latest
  req.header.kind = RoundKind::kCollect;
  req.header.func = global::AggFunc::kSum;
  PDS_RETURN_IF_ERROR(
      s->transport->Send(MaybeChecksum(EncodeRoundRequest(req))));
  PDS_ASSIGN_OR_RETURN(Bytes reply, s->transport->Recv(config_.deadline_ms));
  PDS_ASSIGN_OR_RETURN(Message m, DecodeMessage(reply));
  const ErrorMsg* err = std::get_if<ErrorMsg>(&m.body);
  if (err == nullptr || err->code != 4) {
    return Status::IntegrityViolation(
        "token ANSWERED a replayed stale round instead of rejecting it");
  }
  return "stale round " + std::to_string(req.header.round_id) +
         " rejected: " + err->message;
}

Result<std::string> SsiServer::InjectOversizedFrame(size_t idx) {
  if (idx >= sessions_.size() || !sessions_[idx]->alive) {
    return Status::InvalidArgument("no live session at this index");
  }
  Session* s = sessions_[idx].get();
  // A bare header declaring an impossible payload. Depending on the
  // transport the token either sees the header-only frame (in-process) and
  // rejects it, or its socket layer refuses the header before allocation
  // and the session dies cleanly — both are the defence working.
  Bytes frame(kFrameHeaderSize, 0);
  frame[0] = static_cast<uint8_t>(kMagic & 0xff);
  frame[1] = static_cast<uint8_t>(kMagic >> 8);
  frame[2] = kWireVersion;
  frame[3] = static_cast<uint8_t>(MsgType::kRoundRequest);
  EncodeU32(frame.data() + 4, static_cast<uint32_t>(kMaxFramePayload) + 1);
  PDS_RETURN_IF_ERROR(s->transport->Send(frame));
  auto reply = s->transport->Recv(config_.deadline_ms);
  if (!reply.ok()) {
    if (IsStragglerFailure(reply.status())) {
      s->alive = false;
      return std::string(
          "token refused the oversized frame; session closed cleanly");
    }
    return reply.status();
  }
  PDS_ASSIGN_OR_RETURN(Message m, DecodeMessage(reply.value()));
  const ErrorMsg* err = std::get_if<ErrorMsg>(&m.body);
  if (err == nullptr || err->code != 3) {
    return Status::IntegrityViolation(
        "token accepted a frame declaring an oversized payload");
  }
  return "oversized frame rejected before allocation: " + err->message;
}

Result<std::string> SsiServer::InjectMalformedFrame(size_t idx) {
  if (idx >= sessions_.size() || !sessions_[idx]->alive) {
    return Status::InvalidArgument("no live session at this index");
  }
  Session* s = sessions_[idx].get();
  // Valid header, garbage payload: must fail structured decode on the
  // token without killing its serve loop.
  constexpr size_t kGarbage = 16;
  Bytes frame(kFrameHeaderSize + kGarbage, 0xFF);
  frame[0] = static_cast<uint8_t>(kMagic & 0xff);
  frame[1] = static_cast<uint8_t>(kMagic >> 8);
  frame[2] = kWireVersion;
  frame[3] = static_cast<uint8_t>(MsgType::kRoundRequest);
  EncodeU32(frame.data() + 4, kGarbage);
  PDS_RETURN_IF_ERROR(s->transport->Send(frame));
  PDS_ASSIGN_OR_RETURN(Bytes reply, s->transport->Recv(config_.deadline_ms));
  PDS_ASSIGN_OR_RETURN(Message m, DecodeMessage(reply));
  const ErrorMsg* err = std::get_if<ErrorMsg>(&m.body);
  if (err == nullptr || err->code != 3) {
    return Status::IntegrityViolation(
        "token did not reject a malformed round request");
  }
  return "malformed frame rejected: " + err->message;
}

std::vector<SsiServer::SessionTelemetry> SsiServer::Telemetry() const {
  std::vector<SessionTelemetry> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    SessionTelemetry t;
    t.token_id = s->token_id;
    t.alive = s->alive;
    if (s->stats != nullptr) {
      t.round_trips = s->stats->round_trips.Value();
      t.retries = s->stats->retries.Value();
      t.deadline_hits = s->stats->deadline_hits.Value();
      t.stragglers = s->stats->stragglers.Value();
      t.rtt_p50_us = s->stats->rtt_us.Percentile(50.0);
      t.rtt_p90_us = s->stats->rtt_us.Percentile(90.0);
      t.rtt_p99_us = s->stats->rtt_us.Percentile(99.0);
      t.rtt_p999_us = s->stats->rtt_us.Percentile(99.9);
      t.buffer_bytes = s->stats->buffer_bytes.Value();
      t.buffer_high_water = s->stats->buffer_bytes.max();
    }
    out.push_back(t);
  }
  return out;
}

namespace {

void JsonF64(std::ostream& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", std::isfinite(v) ? v : 0.0);
  out << buf;
}

}  // namespace

std::string SsiServer::StatsJson() const {
  std::ostringstream out;
  out << "{\n\"sessions\": [";
  bool first = true;
  for (const SessionTelemetry& t : Telemetry()) {
    if (!first) out << ',';
    first = false;
    out << "\n  {\"token_id\": " << t.token_id
        << ", \"alive\": " << (t.alive ? "true" : "false")
        << ", \"round_trips\": " << t.round_trips
        << ", \"retries\": " << t.retries
        << ", \"deadline_hits\": " << t.deadline_hits
        << ", \"stragglers\": " << t.stragglers << ", \"rtt_p50_us\": ";
    JsonF64(out, t.rtt_p50_us);
    out << ", \"rtt_p90_us\": ";
    JsonF64(out, t.rtt_p90_us);
    out << ", \"rtt_p99_us\": ";
    JsonF64(out, t.rtt_p99_us);
    out << ", \"rtt_p999_us\": ";
    JsonF64(out, t.rtt_p999_us);
    out << ", \"buffer_bytes\": ";
    JsonF64(out, t.buffer_bytes);
    out << ", \"buffer_high_water\": ";
    JsonF64(out, t.buffer_high_water);
    out << '}';
  }
  out << "\n],\n\"fleet\": {\"round_trips\": " << rtt_us_.count()
      << ", \"rtt_p50_us\": ";
  JsonF64(out, rtt_us_.Percentile(50.0));
  out << ", \"rtt_p90_us\": ";
  JsonF64(out, rtt_us_.Percentile(90.0));
  out << ", \"rtt_p99_us\": ";
  JsonF64(out, rtt_us_.Percentile(99.0));
  out << ", \"rtt_p999_us\": ";
  JsonF64(out, rtt_us_.Percentile(99.9));
  out << "},\n\"registry\": " << obs::Registry::Global().MetricsJson();
  out << ",\n\"ring\": " << stats_ring_.Json();
  out << "}\n";
  return out.str();
}

Status SsiServer::ServeStats(Transport* transport) {
  PDS_ASSIGN_OR_RETURN(Bytes frame, transport->Recv(config_.deadline_ms));
  PDS_ASSIGN_OR_RETURN(Message m, DecodeMessage(frame));
  if (!std::holds_alternative<StatsRequestMsg>(m.body)) {
    (void)transport->Send(
        EncodeError(ErrorMsg{1, "stats channel accepts only kStatsRequest"}));
    return Status::FailedPrecondition(
        "stats channel received a non-stats message");
  }
  std::string json = StatsJson();
  if (json.size() > kMaxStatsJsonBytes) {
    // The reply must stay decodable by a bounds-checking peer; a registry
    // large enough to overflow the bound is a deployment error worth
    // surfacing over silently truncated JSON.
    json = "{\"error\": \"stats snapshot exceeds kMaxStatsJsonBytes\"}";
  }
  return transport->Send(EncodeStatsReply(StatsReplyMsg{std::move(json)}));
}

void SsiServer::Shutdown() {
  for (auto& s : sessions_) {
    if (s->alive && !s->transport->closed()) {
      // Best-effort farewell; the transport may already be gone.
      (void)s->transport->Send(MaybeChecksum(EncodeBye()));
    }
    s->transport->Close();
    s->alive = false;
  }
}

}  // namespace pds::net
