#include "net/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

namespace pds::net {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kSwallowRequest:
      return "swallow-request";
    case FaultKind::kChurn:
      return "churn";
  }
  return "unknown";
}

void InjectionLog::Add(Injection injection) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(injection));
}

size_t InjectionLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t InjectionLog::Count(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const Injection& e : entries_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<Injection> InjectionLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::string InjectionLog::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(entries_.size() * 48);  // bounds the growth below up-front
  for (const Injection& e : entries_) {
    char line[64];
    std::snprintf(line, sizeof(line), "[%s #%llu] %s", e.direction,
                  static_cast<unsigned long long>(e.frame_index),
                  FaultKindName(e.kind));
    out += line;
    if (!e.detail.empty()) {
      out += ": ";
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

void InjectionLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner, FaultPlan plan, InjectionLog* log,
    Clock* clock)
    : inner_(std::move(inner)),
      plan_(plan),
      log_(log),
      clock_(clock != nullptr ? clock : WallClock()),
      rng_(plan.seed) {}

bool FaultInjectingTransport::BudgetLeft() const {
  return plan_.max_injections == 0 || injections_ < plan_.max_injections;
}

void FaultInjectingTransport::Log(uint64_t index, FaultKind kind,
                                  const char* direction, std::string detail) {
  ++injections_;
  if (log_ != nullptr) {
    log_->Add(Injection{index, kind, direction, std::move(detail)});
  }
}

FaultInjectingTransport::Verdict FaultInjectingTransport::MutateFrame(
    Bytes* frame, uint64_t index, const char* direction, bool* duplicate) {
  *duplicate = false;
  // Fixed draw order per frame so a given seed realizes the same injection
  // sequence regardless of which rates a scenario enables.
  bool drop = rng_.Bernoulli(plan_.drop_rate);
  bool delay = rng_.Bernoulli(plan_.delay_rate);
  bool dup = rng_.Bernoulli(plan_.duplicate_rate);
  bool reorder = rng_.Bernoulli(plan_.reorder_rate);
  bool truncate = rng_.Bernoulli(plan_.truncate_rate);
  bool bitflip = rng_.Bernoulli(plan_.bitflip_rate);

  if (drop && BudgetLeft()) {
    Log(index, FaultKind::kDrop, direction, "");
    return Verdict::kDrop;
  }
  if (delay && BudgetLeft()) {
    char d[48];
    std::snprintf(d, sizeof(d), "held %u ms",
                  static_cast<unsigned>(plan_.delay_ms));
    Log(index, FaultKind::kDelay, direction, d);
    clock_->SleepMs(plan_.delay_ms);
  }
  if (truncate && BudgetLeft() && frame->size() > 1) {
    size_t cut = 1 + static_cast<size_t>(rng_.Uniform(
                         std::min<uint64_t>(7, frame->size() - 1)));
    char d[48];
    std::snprintf(d, sizeof(d), "removed %zu tail bytes", cut);
    Log(index, FaultKind::kTruncate, direction, d);
    frame->resize(frame->size() - cut);
  }
  if (bitflip && BudgetLeft() && !frame->empty()) {
    size_t byte = static_cast<size_t>(rng_.Uniform(frame->size()));
    unsigned bit = static_cast<unsigned>(rng_.Uniform(8));
    (*frame)[byte] = static_cast<uint8_t>((*frame)[byte] ^ (1u << bit));
    char d[48];
    std::snprintf(d, sizeof(d), "flipped bit %u of byte %zu", bit, byte);
    Log(index, FaultKind::kBitFlip, direction, d);
  }
  if (dup && BudgetLeft()) {
    Log(index, FaultKind::kDuplicate, direction, "");
    *duplicate = true;
  }
  if (reorder && BudgetLeft()) {
    Log(index, FaultKind::kReorder, direction, "held until next frame");
    return Verdict::kHold;
  }
  return Verdict::kForward;
}

Status FaultInjectingTransport::Send(ByteView frame) {
  if (!plan_.has_link_faults()) {
    Status s = inner_->Send(frame);
    if (s.ok()) CountSent(frame.size());
    return s;
  }
  uint64_t index = send_index_++;
  if (index < plan_.skip_first) {
    Status s = inner_->Send(frame);
    if (s.ok()) CountSent(frame.size());
    return s;
  }
  Bytes mutated = frame.ToBytes();
  bool duplicate = false;
  Verdict verdict = MutateFrame(&mutated, index, "send", &duplicate);
  if (verdict == Verdict::kHold) {
    if (has_held_send_) {
      // Two holds in a row: release the older one first to bound memory.
      Status s = inner_->Send(held_send_);
      if (!s.ok()) return s;
      CountSent(held_send_.size());
    }
    held_send_ = std::move(mutated);
    has_held_send_ = true;
    return Status::Ok();
  }
  if (verdict == Verdict::kDrop) {
    // The caller sees success — that is the whole point of a lossy link.
    return Status::Ok();
  }
  Status s = inner_->Send(mutated);
  if (!s.ok()) return s;
  CountSent(mutated.size());
  if (duplicate) {
    Status s2 = inner_->Send(mutated);
    if (!s2.ok()) return s2;
    CountSent(mutated.size());
  }
  if (has_held_send_) {
    Bytes held = std::move(held_send_);
    has_held_send_ = false;
    Status s3 = inner_->Send(held);
    if (!s3.ok()) return s3;
    CountSent(held.size());
  }
  return Status::Ok();
}

Result<Bytes> FaultInjectingTransport::Recv(uint32_t deadline_ms) {
  if (!plan_.has_link_faults()) {
    Result<Bytes> got = inner_->Recv(deadline_ms);
    if (got.ok()) CountReceived(got.value().size());
    return got;
  }
  for (;;) {
    Result<Bytes> got = inner_->Recv(deadline_ms);
    if (!got.ok()) {
      // Peer gone or deadline: flush a held frame if we have one so a
      // reordered frame is not lost forever.
      if (has_held_recv_) {
        has_held_recv_ = false;
        Bytes held = std::move(held_recv_);
        CountReceived(held.size());
        return held;
      }
      return got;
    }
    uint64_t index = recv_index_++;
    Bytes frame = std::move(got.value());
    if (index < plan_.skip_first) {
      CountReceived(frame.size());
      return frame;
    }
    bool duplicate = false;
    Verdict verdict = MutateFrame(&frame, index, "recv", &duplicate);
    if (verdict == Verdict::kHold) {
      if (has_held_recv_) {
        Bytes prior = std::move(held_recv_);
        held_recv_ = std::move(frame);
        CountReceived(prior.size());
        return prior;
      }
      held_recv_ = std::move(frame);
      has_held_recv_ = true;
      continue;
    }
    if (verdict == Verdict::kDrop) continue;  // wait for the next frame
    if (duplicate) {
      // Deliver the duplicate on the *next* Recv by stashing a copy; if the
      // stash is occupied the duplicate is silently coalesced.
      if (!has_held_recv_) {
        held_recv_ = frame;
        has_held_recv_ = true;
      }
    } else if (has_held_recv_) {
      // Release a previously held (reordered) frame *after* this one: swap
      // delivery order.
      Bytes held = std::move(held_recv_);
      held_recv_ = std::move(frame);
      CountReceived(held.size());
      return held;
    }
    CountReceived(frame.size());
    return frame;
  }
}

void FaultInjectingTransport::Close() {
  // Flush any held frame so a peer blocked on it can make progress before
  // seeing the close.
  if (has_held_send_) {
    has_held_send_ = false;
    (void)inner_->Send(held_send_);
  }
  inner_->Close();
}

bool FaultInjectingTransport::closed() const { return inner_->closed(); }

}  // namespace pds::net
