#ifndef PDS_NET_CODEC_H_
#define PDS_NET_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/sha256.h"
#include "global/common.h"

/// pds::net codec — the versioned, length-prefixed binary wire format of the
/// token <-> SSI link.
///
/// Every frame is
///
///   [magic u16][version u8][type u8][payload_len u32][payload bytes]
///
/// (little endian, 8-byte header). Deserialization is total: any truncated,
/// oversized or corrupt input returns a Status — never UB, never a partial
/// message. Every declared length is checked against a compile-time maximum
/// (kMax*) *before* any allocation, so a hostile peer cannot make the SSI or
/// a token allocate from a lying length field.
namespace pds::net {

inline constexpr uint16_t kMagic = 0x50D5;
inline constexpr uint8_t kWireVersion = 1;
/// Version-2 frame: identical header, but the payload opens with a
/// fixed-size trace-context block (see TraceContext below) ahead of the
/// message body. v1 frames stay byte-identical — a peer that never calls
/// AttachTraceContext emits exactly the old wire format.
inline constexpr uint8_t kWireVersionTraced = 2;
/// Version-3 frame: a v1 body followed by an 8-byte FNV-1a64 checksum over
/// everything before it (header + body), counted inside payload_len so
/// transports are untouched. The checksum is an *accident* detector for the
/// fault-injection harness — it is not a MAC and detects no adversary; the
/// integrity layer (global::IntegrityVerdict) owns tamper detection. v3
/// frames never carry trace context.
inline constexpr uint8_t kWireVersionChecksummed = 3;
inline constexpr size_t kFrameHeaderSize = 8;
/// trace_id u64 + parent_span_id u64 + flags u8 (bit0 = sampled).
inline constexpr size_t kTraceContextSize = 17;
/// FNV-1a64 trailer of a version-3 frame.
inline constexpr size_t kFrameChecksumSize = 8;

/// Compile-time bounds a decoder must check declared lengths against before
/// allocating (the pdslint `net-bounded-frame` rule enforces the pattern).
inline constexpr size_t kMaxFramePayload = 1u << 20;  // 1 MiB per frame
inline constexpr size_t kMaxBatchTuples = 1u << 16;   // cts per batch
inline constexpr size_t kMaxTupleBytes = 1u << 16;    // one ciphertext
inline constexpr size_t kMaxGroupBytes = 1u << 10;    // one group label
inline constexpr size_t kMaxPartitions = 1u << 16;    // partition map rows
inline constexpr size_t kMaxNonceBytes = 64;          // handshake nonce
inline constexpr size_t kMaxPackedSlots = 256;        // packed-round domain labels
inline constexpr size_t kMaxPackedCiphertextBytes = 2048;  // one packed ct (n^2)
inline constexpr size_t kMaxStatsJsonBytes = 1u << 16;     // kStats reply JSON

enum class MsgType : uint8_t {
  kChallenge = 1,     // SSI -> token: prove fleet membership for this nonce
  kHello = 2,         // token -> SSI: token id + attestation proof
  kHelloAck = 3,      // SSI -> token: session accepted or refused
  kRoundRequest = 4,  // SSI -> token: protocol round header (+ batch)
  kPartitionMap = 5,  // SSI -> token: partition layout of this round
  kTupleBatch = 6,    // token -> SSI: encrypted tuple/partial-agg batch
  kAggResult = 7,     // token -> SSI: plaintext final aggregate
  kError = 8,         // either direction
  kBye = 9,           // SSI -> token: session over
  kStatsRequest = 10, // admin -> SSI: ask for the live stats snapshot
  kStatsReply = 11,   // SSI -> admin: registry + telemetry JSON
};

enum class RoundKind : uint8_t {
  kCollect = 1,    // encrypt and send your authorized tuples
  kAggregate = 2,  // decrypt batch, aggregate by group, re-encrypt partials
  kFinalize = 3,   // decrypt batch, return the plaintext aggregate
  // Slot-packed Paillier round: the request's batch carries the public
  // group domain (one label per entry, slot order); the token folds its
  // tuples into per-domain (sum, count) counters, packs them into ONE
  // Paillier plaintext and replies with a single-ciphertext TupleBatch.
  kPackedCollect = 4,
  // Sealed collect: like kCollect, but every ciphertext is wrapped in a
  // MAC'd global::SealedTuple and the reply batch opens with the token's
  // signed contribution manifest, so the querier can audit a weakly-
  // malicious SSI (substitution/replay/omission all fail verification).
  kSealedCollect = 5,
  // Deterministic-encryption collect for the [TNP14] white-noise /
  // domain-noise / histogram protocols: batch entry 0 is an encoded
  // DetParams blob, entries 1.. are domain labels (domain-noise only).
  kDetCollect = 6,
  // Class aggregation: decrypt the batch (entry 0 = deterministic group
  // ciphertext, entries 1.. = payloads), aggregate, return the plaintext
  // class aggregate — fake classes return an empty result.
  kClassAggregate = 7,
};

/// Which deterministic-encryption [TNP14] protocol a kDetCollect round runs.
enum class DetVariant : uint8_t {
  kWhiteNoise = 1,   // noise_ratio fake tuples per real tuple, random labels
  kDomainNoise = 2,  // fakes_per_value fakes per public domain value
  kHistogram = 3,    // plaintext FNV bucket of the group, num_buckets wide
};

/// Public per-round parameters of a kDetCollect request, carried as batch
/// entry 0 (a fixed 25-byte blob, no allocation on decode). Nothing in here
/// is secret: noise seeds only make *fake-tuple labels* reproducible.
struct DetParams {
  DetVariant variant = DetVariant::kWhiteNoise;
  double noise_ratio = 0.2;      // white noise: fakes per real tuple
  uint64_t noise_seed = 7;       // white noise: per-token label stream seed
  uint32_t fakes_per_value = 1;  // domain noise: fakes per domain value
  uint32_t num_buckets = 16;     // histogram: bucket count
  bool operator==(const DetParams&) const = default;
};

/// Fixed encoded size of a DetParams blob.
inline constexpr size_t kDetParamsSize = 25;

struct ChallengeMsg {
  Bytes nonce;
  bool operator==(const ChallengeMsg&) const = default;
};

struct HelloMsg {
  uint64_t token_id = 0;
  crypto::Sha256::Digest proof{};
  bool operator==(const HelloMsg&) const = default;
};

struct HelloAckMsg {
  bool accepted = false;
  bool operator==(const HelloAckMsg&) const = default;
};

/// Protocol round header: identifies one logical request. Retries of the
/// same request reuse the round id, so a late duplicate reply is detectable.
struct RoundHeader {
  uint32_t round_id = 0;
  RoundKind kind = RoundKind::kCollect;
  global::AggFunc func = global::AggFunc::kSum;
  bool operator==(const RoundHeader&) const = default;
};

struct RoundRequestMsg {
  RoundHeader header;
  std::vector<Bytes> batch;  // empty for kCollect
  bool operator==(const RoundRequestMsg&) const = default;
};

struct PartitionAssignment {
  uint32_t partition = 0;  // partition index within the round
  uint32_t session = 0;    // session index that aggregates it
  uint32_t num_items = 0;  // ciphertexts in the partition
  bool operator==(const PartitionAssignment&) const = default;
};

struct PartitionMapMsg {
  uint32_t round_id = 0;
  std::vector<PartitionAssignment> parts;
  bool operator==(const PartitionMapMsg&) const = default;
};

struct TupleBatchMsg {
  uint32_t round_id = 0;
  uint64_t token_ops = 0;  // crypto ops spent producing this batch
  std::vector<Bytes> batch;
  bool operator==(const TupleBatchMsg&) const = default;
};

struct AggResultEntry {
  std::string group;
  double sum = 0;
  uint64_t count = 0;
  bool operator==(const AggResultEntry&) const = default;
};

struct AggResultMsg {
  uint32_t round_id = 0;
  uint64_t token_ops = 0;
  std::vector<AggResultEntry> entries;
  bool operator==(const AggResultMsg&) const = default;
};

struct ErrorMsg {
  uint8_t code = 0;
  std::string message;
  bool operator==(const ErrorMsg&) const = default;
};

struct ByeMsg {
  bool operator==(const ByeMsg&) const = default;
};

/// Admin frame: ask the SSI for its live stats snapshot. Carries nothing —
/// the reply is gated on which transport it arrives over, not on payload.
struct StatsRequestMsg {
  bool operator==(const StatsRequestMsg&) const = default;
};

/// Live stats snapshot: a JSON document (registry metrics, per-session
/// telemetry, delta-snapshot ring). Bounded by kMaxStatsJsonBytes on decode.
struct StatsReplyMsg {
  std::string json;
  bool operator==(const StatsReplyMsg&) const = default;
};

/// Distributed-trace context carried by version-2 frames: the sender's
/// span id that receiver-side spans should parent under, plus the root
/// sampling decision. Trace ids must come from the *non-secret* RNG — the
/// block travels in cleartext and is a secret-flow sink like the encoders.
struct TraceContext {
  uint64_t trace_id = 0;        // one id per distributed operation
  uint64_t parent_span_id = 0;  // sender-side span to parent under
  bool sampled = false;         // root keep/drop, followed by the receiver
  bool operator==(const TraceContext&) const = default;
};

/// Decoded frame: the variant order matches the MsgType values.
using MessageBody =
    std::variant<ChallengeMsg, HelloMsg, HelloAckMsg, RoundRequestMsg,
                 PartitionMapMsg, TupleBatchMsg, AggResultMsg, ErrorMsg,
                 ByeMsg, StatsRequestMsg, StatsReplyMsg>;

struct Message {
  MessageBody body;
  /// Present iff the frame arrived with version-2 trace context.
  std::optional<TraceContext> trace;
  /// True iff the frame arrived as version 3 with a valid checksum trailer.
  /// A peer seeing this knows checksummed frames are in effect and mirrors
  /// them on its own sends.
  bool checksummed = false;
  [[nodiscard]] MsgType type() const {
    return static_cast<MsgType>(body.index() + 1);
  }
  bool operator==(const Message&) const = default;
};

/// Parsed frame header (magic already verified).
struct FrameHeader {
  uint8_t version = 0;
  MsgType type = MsgType::kError;
  uint32_t payload_len = 0;
};

/// Serializes one message into a complete frame (header + payload).
///
/// Every encoder is a secret-flow sink: bytes handed to them cross the
/// token/SSI trust boundary onto the wire, so anything secret-tagged must
/// pass through Encrypt*/Hmac first or carry an explicit declassify.
// pdslint: sink(EncodeChallenge, EncodeHello, EncodeHelloAck,
//               EncodeRoundRequest, EncodePartitionMap, EncodeTupleBatch,
//               EncodeAggResult, EncodeError, EncodeBye, EncodeMessage,
//               EncodeStatsRequest, EncodeStatsReply, AttachTraceContext)
[[nodiscard]] Bytes EncodeChallenge(const ChallengeMsg& m);
[[nodiscard]] Bytes EncodeHello(const HelloMsg& m);
[[nodiscard]] Bytes EncodeHelloAck(const HelloAckMsg& m);
[[nodiscard]] Bytes EncodeRoundRequest(const RoundRequestMsg& m);
[[nodiscard]] Bytes EncodePartitionMap(const PartitionMapMsg& m);
[[nodiscard]] Bytes EncodeTupleBatch(const TupleBatchMsg& m);
[[nodiscard]] Bytes EncodeAggResult(const AggResultMsg& m);
[[nodiscard]] Bytes EncodeError(const ErrorMsg& m);
[[nodiscard]] Bytes EncodeBye();
[[nodiscard]] Bytes EncodeStatsRequest();
[[nodiscard]] Bytes EncodeStatsReply(const StatsReplyMsg& m);
[[nodiscard]] Bytes EncodeMessage(const Message& m);

/// Rewrites a sealed v1 frame into its version-2 equivalent carrying `ctx`
/// ahead of the message body (payload_len grows by kTraceContextSize, so
/// streaming receivers need no change). The trace block is cleartext on the
/// wire: ctx must never be derived from secret material.
[[nodiscard]] Bytes AttachTraceContext(const Bytes& v1_frame,
                                       const TraceContext& ctx);

/// Rewrites a sealed v1 frame into its version-3 equivalent: the FNV-1a64
/// of the header+body is appended as an 8-byte little-endian trailer and
/// payload_len grows by kFrameChecksumSize. DecodeMessage verifies the
/// trailer (Corruption on mismatch) and strips it before body decode.
/// Checksummed frames cannot also carry trace context.
[[nodiscard]] Bytes AppendFrameChecksum(const Bytes& v1_frame);

/// Encodes DetParams into its fixed 25-byte blob (batch entry 0 of a
/// kDetCollect request) — not a frame, carries no header.
[[nodiscard]] Bytes EncodeDetParams(const DetParams& p);

/// Decodes a DetParams blob; the blob must be exactly kDetParamsSize bytes
/// with a known variant.
[[nodiscard]] Result<DetParams> DecodeDetParams(ByteView blob);

/// Validates magic/version/type and that the declared payload length is
/// within kMaxFramePayload. `bytes` must hold at least kFrameHeaderSize
/// bytes; the declared length may exceed what follows (streaming callers use
/// the header to know how much more to read).
[[nodiscard]] Result<FrameHeader> DecodeFrameHeader(ByteView bytes);

/// Decodes one complete frame. The payload must be exactly the declared
/// length and every contained field must be in bounds; trailing bytes are a
/// Corruption error.
[[nodiscard]] Result<Message> DecodeMessage(ByteView frame);

/// Decodes a frame and requires it to be the given message type, otherwise
/// FailedPrecondition (or the peer's ErrorMsg turned into a Status).
template <typename T>
[[nodiscard]] Result<T> DecodeAs(ByteView frame) {
  PDS_ASSIGN_OR_RETURN(Message m, DecodeMessage(frame));
  if (const ErrorMsg* err = std::get_if<ErrorMsg>(&m.body);
      err != nullptr && !std::is_same_v<T, ErrorMsg>) {
    return Status::FailedPrecondition("peer error: " + err->message);
  }
  T* got = std::get_if<T>(&m.body);
  if (got == nullptr) {
    return Status::FailedPrecondition(
        "unexpected message type " +
        std::to_string(static_cast<int>(m.type())));
  }
  return std::move(*got);
}

}  // namespace pds::net

#endif  // PDS_NET_CODEC_H_
