#ifndef PDS_NET_TRANSPORT_H_
#define PDS_NET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/result.h"

/// pds::net transports — the byte pipes the codec's frames travel over.
///
/// Two implementations share one interface: InProcessTransport (a pair of
/// bounded queues, fully deterministic, used by tests and benchmarks) and
/// SocketTransport (non-blocking TCP or Unix-domain sockets driven by
/// poll()). Both count the frames and bytes they move so the protocol layer
/// can report *measured* wire traffic instead of synthetic estimates.
namespace pds::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one complete frame (header + payload as produced by the codec).
  [[nodiscard]] virtual Status Send(ByteView frame) = 0;

  /// Receives the next complete frame, waiting at most `deadline_ms`.
  /// Returns DeadlineExceeded on timeout and IoError once the peer closed.
  [[nodiscard]] virtual Result<Bytes> Recv(uint32_t deadline_ms) = 0;

  virtual void Close() = 0;
  [[nodiscard]] virtual bool closed() const = 0;

  /// Measured traffic through this endpoint (frames include their headers).
  [[nodiscard]] uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] uint64_t bytes_received() const { return bytes_received_; }
  [[nodiscard]] uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] uint64_t frames_received() const { return frames_received_; }

 protected:
  void CountSent(uint64_t n) {
    bytes_sent_ += n;
    ++frames_sent_;
  }
  void CountReceived(uint64_t n) {
    bytes_received_ += n;
    ++frames_received_;
  }

 private:
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_received_{0};
};

/// Deterministic in-process transport: CreatePair() returns two connected
/// endpoints backed by a shared pair of frame queues. Closing either end
/// wakes all waiters on both.
class InProcessTransport : public Transport {
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Bytes> queues[2];  // queues[i] holds frames *for* endpoint i
    bool closed = false;
    size_t max_queued = 1024;
  };
  /// Passkey: only CreatePair can name this, so the public constructor is
  /// effectively private while staying reachable for std::make_unique.
  struct Private {
    explicit Private() = default;
  };

 public:
  /// Two connected endpoints; each holds at most `max_queued` undelivered
  /// frames before Send returns ResourceExhausted.
  static std::pair<std::unique_ptr<InProcessTransport>,
                   std::unique_ptr<InProcessTransport>>
  CreatePair(size_t max_queued = 1024);

  InProcessTransport(Private, std::shared_ptr<Shared> shared, int side)
      : shared_(std::move(shared)), side_(side) {}

  [[nodiscard]] Status Send(ByteView frame) override;
  [[nodiscard]] Result<Bytes> Recv(uint32_t deadline_ms) override;
  void Close() override;
  [[nodiscard]] bool closed() const override;

 private:
  std::shared_ptr<Shared> shared_;
  int side_;  // 0 or 1; we receive from queues[side_], send to the other
};

/// Socket-backed transport over a non-blocking fd (TCP or Unix-domain
/// stream). Recv() accumulates bytes until a complete frame is buffered,
/// validating the header — magic, version, declared length bound — as soon
/// as 8 bytes arrive so a garbage peer is rejected before any allocation.
class SocketTransport : public Transport {
 public:
  /// Takes ownership of a connected stream socket fd (sets O_NONBLOCK).
  explicit SocketTransport(int fd);
  ~SocketTransport() override;

  /// Two connected endpoints over a Unix socketpair (loopback tests).
  [[nodiscard]] static Result<std::pair<std::unique_ptr<SocketTransport>,
                                        std::unique_ptr<SocketTransport>>>
  CreateUnixPair();

  /// Connects to a TCP listener on `host`:`port`.
  [[nodiscard]] static Result<std::unique_ptr<SocketTransport>> ConnectTcp(
      const std::string& host, uint16_t port, uint32_t deadline_ms);

  [[nodiscard]] Status Send(ByteView frame) override;
  [[nodiscard]] Result<Bytes> Recv(uint32_t deadline_ms) override;
  void Close() override;
  [[nodiscard]] bool closed() const override;

 private:
  int fd_;
  std::atomic<bool> closed_{false};
  Bytes rxbuf_;  // partial-frame accumulation between Recv calls
};

/// Accepting side of a TCP endpoint.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and listens.
  [[nodiscard]] Status Listen(uint16_t port);
  /// The bound port (after Listen; useful with port 0).
  [[nodiscard]] uint16_t port() const { return port_; }

  [[nodiscard]] Result<std::unique_ptr<SocketTransport>> Accept(
      uint32_t deadline_ms);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace pds::net

#endif  // PDS_NET_TRANSPORT_H_
