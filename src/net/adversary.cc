#include "net/adversary.h"

#include <cmath>
#include <utility>

namespace pds::net {

const char* AdversaryActionName(AdversaryAction action) {
  switch (action) {
    case AdversaryAction::kNone:
      return "none";
    case AdversaryAction::kSubstituteCiphertext:
      return "substitute-ciphertext";
    case AdversaryAction::kReplayCiphertext:
      return "replay-ciphertext";
    case AdversaryAction::kOmitCiphertext:
      return "omit-ciphertext";
    case AdversaryAction::kForgeManifest:
      return "forge-manifest";
    case AdversaryAction::kForgeAggregate:
      return "forge-aggregate";
    case AdversaryAction::kReplayStaleRound:
      return "replay-stale-round";
    case AdversaryAction::kOversizedFrame:
      return "oversized-frame";
    case AdversaryAction::kMalformedFrame:
      return "malformed-frame";
  }
  return "unknown";
}

std::string ApplySealedTampering(const AdversaryPlan& plan,
                                 std::vector<global::SealedTuple>* tuples,
                                 std::vector<global::Manifest>* manifests) {
  Rng rng(plan.seed);
  switch (plan.action) {
    case AdversaryAction::kSubstituteCiphertext: {
      if (tuples->empty()) return "";
      global::SealedTuple& t = (*tuples)[rng.Uniform(tuples->size())];
      if (t.payload_ct.empty()) return "";
      size_t byte = static_cast<size_t>(rng.Uniform(t.payload_ct.size()));
      t.payload_ct[byte] ^= 0x01;
      return "substituted ciphertext byte of (participant " +
             std::to_string(t.participant) + ", seq " +
             std::to_string(t.sequence) + ")";
    }
    case AdversaryAction::kReplayCiphertext: {
      if (tuples->empty()) return "";
      global::SealedTuple copy = (*tuples)[rng.Uniform(tuples->size())];
      std::string what = "replayed (participant " +
                         std::to_string(copy.participant) + ", seq " +
                         std::to_string(copy.sequence) + ")";
      tuples->push_back(std::move(copy));
      return what;
    }
    case AdversaryAction::kOmitCiphertext: {
      if (tuples->empty()) return "";
      size_t victim = static_cast<size_t>(rng.Uniform(tuples->size()));
      std::string what = "omitted (participant " +
                         std::to_string((*tuples)[victim].participant) +
                         ", seq " +
                         std::to_string((*tuples)[victim].sequence) + ")";
      tuples->erase(tuples->begin() + static_cast<ptrdiff_t>(victim));
      return what;
    }
    case AdversaryAction::kForgeManifest: {
      if (manifests->empty()) return "";
      global::Manifest& m = (*manifests)[rng.Uniform(manifests->size())];
      // The SSI holds no MAC key, so the best it can do is lie about the
      // count and keep the stale MAC — exactly what VerifyBatch catches.
      m.tuple_count += 1;
      return "forged manifest count for participant " +
             std::to_string(m.participant);
    }
    case AdversaryAction::kNone:
    case AdversaryAction::kForgeAggregate:
    case AdversaryAction::kReplayStaleRound:
    case AdversaryAction::kOversizedFrame:
    case AdversaryAction::kMalformedFrame:
      return "";
  }
  return "";
}

global::IntegrityVerdict CompareAggregates(
    const std::map<std::string, double>& claimed,
    const std::map<std::string, double>& audited) {
  global::IntegrityVerdict verdict;
  for (const auto& [group, value] : audited) {
    auto it = claimed.find(group);
    if (it == claimed.end()) {
      verdict.ok = false;
      verdict.problem = "claimed aggregate is missing group \"" + group + "\"";
      return verdict;
    }
    // Bit-exact comparison: honest wire and in-process runs sum in the same
    // order, so even the doubles must match.
    if (it->second != value) {
      verdict.ok = false;
      verdict.problem = "claimed aggregate for group \"" + group +
                        "\" diverges from the audited value";
      return verdict;
    }
  }
  for (const auto& [group, value] : claimed) {
    (void)value;
    if (audited.count(group) == 0) {
      verdict.ok = false;
      verdict.problem =
          "claimed aggregate has unexpected group \"" + group + "\"";
      return verdict;
    }
  }
  return verdict;
}

}  // namespace pds::net
