#include "net/scenario.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/clock.h"
#include "global/integrity.h"
#include "net/ssi_server.h"
#include "net/token_client.h"
#include "net/transport.h"

namespace pds::net {

namespace {

using global::AggFunc;
using global::AggOutput;
using global::Participant;

/// Rendezvous between a churned TokenClient's reconnect callback (running
/// on the client thread) and the harness main thread, which creates the
/// fresh transport pair and drives SsiServer::ReadmitSession.
struct ReconnectRendezvous {
  std::mutex mu;
  std::condition_variable cv;
  std::unique_ptr<Transport> client_side;
};

/// Plaintext truth over a participant subset, summed in pooled order —
/// the same addition order as a sealed-batch audit, so doubles are
/// bit-equal, not just close.
std::map<std::string, double> PlainReference(
    const std::vector<Participant>& parts, AggFunc func) {
  struct Acc {
    double sum = 0;
    uint64_t count = 0;
  };
  std::map<std::string, Acc> state;
  for (const Participant& p : parts) {
    for (const global::SourceTuple& t : p.tuples) {
      state[t.group].sum += t.value;
      state[t.group].count += 1;
    }
  }
  std::map<std::string, double> out;
  for (const auto& [group, acc] : state) {
    if (acc.count == 0) continue;
    switch (func) {
      case AggFunc::kSum:
        out[group] = acc.sum;
        break;
      case AggFunc::kCount:
        out[group] = static_cast<double>(acc.count);
        break;
      case AggFunc::kAvg:
        out[group] = acc.sum / static_cast<double>(acc.count);
        break;
    }
  }
  return out;
}

/// In-process reference run over `parts` with the cell's parameters. Token
/// reuse after the wire run is safe: group results depend on plaintext
/// values and deterministic layouts, never on the tokens' RNG positions.
Result<AggOutput> ReferenceRun(const ScenarioSpec& spec,
                               std::vector<Participant> parts) {
  switch (spec.protocol) {
    case WireProtocol::kSecureAgg: {
      global::SecureAggProtocol protocol({});
      return protocol.Execute(parts, spec.func);
    }
    case WireProtocol::kWhiteNoise: {
      global::WhiteNoiseProtocol::Config c;
      c.noise_ratio = spec.noise_ratio;
      c.noise_seed = spec.noise_seed;
      global::WhiteNoiseProtocol protocol(c);
      return protocol.Execute(parts, spec.func);
    }
    case WireProtocol::kDomainNoise: {
      global::DomainNoiseProtocol::Config c;
      c.domain = spec.domain;
      c.fakes_per_value = spec.fakes_per_value;
      c.noise_seed = spec.noise_seed;
      global::DomainNoiseProtocol protocol(std::move(c));
      return protocol.Execute(parts, spec.func);
    }
    case WireProtocol::kHistogram: {
      global::HistogramProtocol::Config c;
      c.num_buckets = spec.num_buckets;
      global::HistogramProtocol protocol(c);
      return protocol.Execute(parts, spec.func);
    }
    case WireProtocol::kPacked: {
      global::PackedPaillierProtocol protocol(spec.packed_cfg);
      return protocol.Execute(parts, spec.func);
    }
  }
  return Status::InvalidArgument("unknown wire protocol");
}

/// The fault label of a cell for reports: single-kind cells by design.
std::string FaultLabel(const ScenarioSpec& spec) {
  if (spec.adversary.action != AdversaryAction::kNone) {
    return AdversaryActionName(spec.adversary.action);
  }
  if (spec.faults.disconnect_after_replies > 0) return "churn";
  if (spec.faults.swallow_first > 0) return "swallow-request";
  if (spec.faults.drop_rate > 0) return "drop";
  if (spec.faults.delay_rate > 0) return "delay";
  if (spec.faults.duplicate_rate > 0) return "duplicate";
  if (spec.faults.reorder_rate > 0) return "reorder";
  if (spec.faults.truncate_rate > 0) return "truncate";
  if (spec.faults.bitflip_rate > 0) return "bitflip";
  return "none";
}

bool IsSealedTampering(AdversaryAction a) {
  return a == AdversaryAction::kSubstituteCiphertext ||
         a == AdversaryAction::kReplayCiphertext ||
         a == AdversaryAction::kOmitCiphertext ||
         a == AdversaryAction::kForgeManifest;
}

bool IsProbeAction(AdversaryAction a) {
  return a == AdversaryAction::kReplayStaleRound ||
         a == AdversaryAction::kOversizedFrame ||
         a == AdversaryAction::kMalformedFrame;
}

Result<std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>>
MakePair(bool use_socket) {
  if (use_socket) {
    PDS_ASSIGN_OR_RETURN(auto pair, SocketTransport::CreateUnixPair());
    return std::make_pair(
        std::unique_ptr<Transport>(std::move(pair.first)),
        std::unique_ptr<Transport>(std::move(pair.second)));
  }
  auto pair = InProcessTransport::CreatePair(/*max_queued=*/1024);
  return std::make_pair(std::unique_ptr<Transport>(std::move(pair.first)),
                        std::unique_ptr<Transport>(std::move(pair.second)));
}

Result<AggOutput> RunWireProtocol(SsiServer* server,
                                  const ScenarioSpec& spec) {
  switch (spec.protocol) {
    case WireProtocol::kSecureAgg:
      return server->RunSecureAggregation(spec.func);
    case WireProtocol::kWhiteNoise:
    case WireProtocol::kDomainNoise:
    case WireProtocol::kHistogram: {
      SsiServer::DetRunConfig det;
      det.variant = spec.protocol == WireProtocol::kWhiteNoise
                        ? DetVariant::kWhiteNoise
                        : (spec.protocol == WireProtocol::kDomainNoise
                               ? DetVariant::kDomainNoise
                               : DetVariant::kHistogram);
      det.noise_ratio = spec.noise_ratio;
      det.noise_seed = spec.noise_seed;
      det.fakes_per_value = spec.fakes_per_value;
      det.domain = spec.domain;
      det.num_buckets = spec.num_buckets;
      return server->RunDetAggregation(spec.func, det);
    }
    case WireProtocol::kPacked:
      if (spec.packed == nullptr) {
        return Status::InvalidArgument("packed cell needs a packed context");
      }
      return server->RunPackedAggregation(spec.func, *spec.packed,
                                          spec.domain);
  }
  return Status::InvalidArgument("unknown wire protocol");
}

void AppendJsonBool(std::ostringstream* os, const char* key, bool v,
                    bool trailing_comma = true) {
  *os << "\"" << key << "\": " << (v ? "true" : "false");
  if (trailing_comma) *os << ", ";
}

}  // namespace

const char* WireProtocolName(WireProtocol protocol) {
  switch (protocol) {
    case WireProtocol::kSecureAgg:
      return "secure-agg";
    case WireProtocol::kWhiteNoise:
      return "white-noise";
    case WireProtocol::kDomainNoise:
      return "domain-noise";
    case WireProtocol::kHistogram:
      return "histogram";
    case WireProtocol::kPacked:
      return "packed-paillier";
  }
  return "unknown";
}

Result<ScenarioResult> RunScenarioCell(const ScenarioSpec& spec) {
  if (spec.participants.empty()) {
    return Status::InvalidArgument("scenario needs participants");
  }
  if (spec.verifier == nullptr) {
    return Status::InvalidArgument("scenario needs a verifier token");
  }
  ScenarioResult res;
  res.name = spec.name;
  res.protocol = spec.sealed_round ? "sealed-collect"
                                   : WireProtocolName(spec.protocol);
  res.fault = FaultLabel(spec);
  res.benign = !spec.faults.has_link_faults() &&
               spec.faults.swallow_first == 0 &&
               spec.faults.disconnect_after_replies == 0 &&
               spec.adversary.action == AdversaryAction::kNone;
  res.expects_detection = spec.adversary.action != AdversaryAction::kNone ||
                          spec.faults.truncate_rate > 0 ||
                          spec.faults.bitflip_rate > 0 ||
                          spec.faults.disconnect_after_replies > 0;

  const uint32_t deadline =
      spec.deadline_ms != 0 ? spec.deadline_ms : ScaledMs(100);
  const bool churn_cell = spec.faults.disconnect_after_replies > 0;

  InjectionLog link_log;
  auto rendezvous = std::make_shared<ReconnectRendezvous>();

  SsiServer::Config scfg;
  scfg.deadline_ms = deadline;
  scfg.max_retries = spec.max_retries;
  scfg.backoff_ms = 1;
  scfg.quorum = spec.quorum;
  scfg.verifier = spec.verifier;
  scfg.checksum_frames = spec.checksum_frames;
  scfg.adversary = spec.adversary;
  SsiServer server(scfg);

  std::vector<std::unique_ptr<TokenClient>> clients;
  clients.reserve(spec.participants.size());
  auto shutdown = [&] {
    server.Shutdown();
    for (auto& c : clients) c->Stop();
    for (auto& c : clients) (void)c->Join();
  };

  for (size_t i = 0; i < spec.participants.size(); ++i) {
    auto pair = MakePair(spec.use_socket);
    if (!pair.ok()) {
      shutdown();
      return pair.status();
    }
    std::unique_ptr<Transport> server_side = std::move(pair.value().first);
    std::unique_ptr<Transport> client_side = std::move(pair.value().second);
    if (i == 0 && spec.faults.has_link_faults()) {
      FaultPlan link = spec.faults;
      link.skip_first = 2;  // let the attestation handshake through
      server_side = std::make_unique<FaultInjectingTransport>(
          std::move(server_side), link, &link_log);
    }
    TokenClient::Config ccfg;
    ccfg.token = spec.participants[i].token;
    ccfg.tuples = spec.participants[i].tuples;
    ccfg.deadline_ms = ScaledMs(2000);
    ccfg.poll_ms = 5;
    ccfg.packed = spec.packed;
    if (i == 0) {
      // Token-level faults target participant 0 only, mirroring the link
      // wrapper on its session.
      ccfg.faults.seed = spec.faults.seed;
      ccfg.faults.swallow_first = spec.faults.swallow_first;
      ccfg.faults.disconnect_after_replies =
          spec.faults.disconnect_after_replies;
      ccfg.max_reconnects = 1;
      ccfg.reconnect_backoff_ms = 1;
      if (churn_cell) {
        ccfg.reconnect =
            [rendezvous]() -> Result<std::unique_ptr<Transport>> {
          std::unique_lock<std::mutex> lock(rendezvous->mu);
          if (!rendezvous->cv.wait_for(
                  lock, std::chrono::milliseconds(ScaledMs(5000)),
                  [&] { return rendezvous->client_side != nullptr; })) {
            return Status::DeadlineExceeded("SSI never offered a readmit");
          }
          return std::move(rendezvous->client_side);
        };
      }
    }
    clients.push_back(
        std::make_unique<TokenClient>(std::move(client_side),
                                      std::move(ccfg)));
    clients.back()->Start();
    auto idx = server.AcceptSession(std::move(server_side));
    if (!idx.ok()) {
      shutdown();
      return idx.status();
    }
  }

  // --- Wire run -----------------------------------------------------------
  if (spec.sealed_round) {
    auto sealed = server.RunSealedCollect();
    if (!sealed.ok()) {
      res.error = sealed.status().ToString();
    } else {
      res.ran_ok = true;
      res.leakage = sealed.value().leakage;
      auto audit = global::AuditSealedBatch(spec.verifier,
                                            sealed.value().tuples,
                                            sealed.value().manifests,
                                            spec.func);
      if (!audit.ok()) {
        res.error = audit.status().ToString();
        res.ran_ok = false;
      } else {
        res.detected = !audit.value().verdict.ok;
        res.detection = audit.value().verdict.problem;
        if (!sealed.value().adversary_note.empty()) {
          res.detection += res.detection.empty() ? "" : " ";
          res.detection += "[ssi did: " + sealed.value().adversary_note + "]";
        }
        res.groups = audit.value().groups;
        if (audit.value().verdict.ok) {
          auto tele = server.Telemetry();
          std::vector<Participant> subset;
          for (size_t i = 0;
               i < tele.size() && i < spec.participants.size(); ++i) {
            if (tele[i].alive) subset.push_back(spec.participants[i]);
          }
          res.byte_identical =
              res.groups == PlainReference(subset, spec.func);
        }
      }
    }
  }

  // The in-process reference run reuses the participants' SecureTokens, so
  // it must wait until the client threads are joined: a duplicated or
  // reordered frame can reach a token *after* the SSI finished the run,
  // and the late round handler would race the reference. The alive subset
  // is snapshotted here (churn changes it later); the comparison happens
  // after shutdown().
  std::vector<Participant> wire_subset;
  bool wire_reference_pending = false;
  if (!spec.sealed_round) {
    auto wire = RunWireProtocol(&server, spec);
    if (!wire.ok()) {
      res.error = wire.status().ToString();
    } else {
      res.ran_ok = true;
      res.groups = wire.value().groups;
      res.leakage = wire.value().leakage;
      auto tele = server.Telemetry();
      for (size_t i = 0; i < tele.size() && i < spec.participants.size();
           ++i) {
        if (tele[i].alive) wire_subset.push_back(spec.participants[i]);
      }
      wire_reference_pending = true;
      // Link damage must leave forensics: either frames were rejected in
      // place or the faulty session was dropped to quorum.
      if (spec.faults.truncate_rate > 0 || spec.faults.bitflip_rate > 0) {
        const SsiServer::RoundReport& report = server.last_report();
        res.detected =
            report.frame_rejects > 0 || report.missing_tokens > 0;
        res.detection = "frame_rejects=" +
                        std::to_string(report.frame_rejects) +
                        " missing_tokens=" +
                        std::to_string(report.missing_tokens);
      }
    }
  }

  // --- Adversarial probes (attack the session protocol directly) ----------
  if (IsProbeAction(spec.adversary.action) && res.ran_ok) {
    Result<std::string> probe = Status::Internal("unset");
    switch (spec.adversary.action) {
      case AdversaryAction::kReplayStaleRound:
        probe = server.InjectStaleRound(0);
        break;
      case AdversaryAction::kOversizedFrame:
        probe = server.InjectOversizedFrame(0);
        break;
      default:
        probe = server.InjectMalformedFrame(0);
        break;
    }
    res.detected = probe.ok();
    res.detection = probe.ok() ? probe.value() : probe.status().ToString();
  }

  // --- Churn: hand the waiting token a fresh link, readmit, run again -----
  if (churn_cell && res.ran_ok) {
    auto pair = MakePair(spec.use_socket);
    if (!pair.ok()) {
      shutdown();
      return pair.status();
    }
    {
      std::lock_guard<std::mutex> lock(rendezvous->mu);
      rendezvous->client_side = std::move(pair.value().second);
    }
    rendezvous->cv.notify_all();
    auto idx = server.ReadmitSession(std::move(pair.value().first));
    if (!idx.ok()) {
      res.detected = false;
      res.detection = "readmit failed: " + idx.status().ToString();
    } else {
      auto second = RunWireProtocol(&server, spec);
      if (!second.ok()) {
        res.detected = false;
        res.detection =
            "post-churn run failed: " + second.status().ToString();
      } else {
        auto ref = ReferenceRun(spec, spec.participants);
        res.detected = ref.ok() &&
                       second.value().groups == ref.value().groups;
        res.detection =
            "token re-admitted after churn; full-fleet rerun matches";
        res.groups = second.value().groups;
        // res.groups now holds the full-fleet rerun, so byte-identity is
        // against the full reference; run 1's divergence (the churned
        // token's collect data with no class answers) is expected.
        res.byte_identical = res.detected;
      }
    }
  }

  const SsiServer::RoundReport& report = server.last_report();
  res.sessions = report.sessions;
  res.responders = report.responders;
  res.frame_rejects = report.frame_rejects;
  res.retries = report.retries;
  res.deadline_hits = report.deadline_hits;

  shutdown();

  // Client threads are joined: the tokens are quiescent, so the reference
  // run (and the forge-aggregate comparison that needs it) is race-free.
  // The churn cell already compared its full-fleet rerun above.
  if (wire_reference_pending && !churn_cell) {
    auto ref = ReferenceRun(spec, wire_subset);
    if (!ref.ok()) {
      res.error = "reference run failed: " + ref.status().ToString();
    } else {
      res.byte_identical = res.groups == ref.value().groups;
      if (spec.adversary.action == AdversaryAction::kForgeAggregate) {
        global::IntegrityVerdict verdict =
            CompareAggregates(res.groups, ref.value().groups);
        res.detected = !verdict.ok;
        res.detection = verdict.problem;
      }
    }
  }

  res.injection_log = link_log.ToString();
  res.injections = link_log.size();
  if (!clients.empty()) {
    res.injection_log += clients[0]->injection_log().ToString();
    res.injections += clients[0]->injection_log().size();
  }
  return res;
}

std::vector<ScenarioSpec> DefaultMatrix(uint64_t seed, bool use_socket) {
  std::vector<ScenarioSpec> out;
  // Fixed-size matrix: 5 protocols x (benign + 6 link faults) + 5 sealed
  // cells + 4 hostile-frame cells + churn.
  out.reserve(5 * 7 + 5 + 4 + 1);
  const WireProtocol protocols[] = {
      WireProtocol::kSecureAgg, WireProtocol::kWhiteNoise,
      WireProtocol::kDomainNoise, WireProtocol::kHistogram,
      WireProtocol::kPacked};

  struct LinkCell {
    const char* label;
    double FaultPlan::* rate;
    uint64_t max_injections;
    double quorum;
    bool checksum;
  };
  const LinkCell link_cells[] = {
      // Recoverable faults: retries absorb them, byte-identity must hold.
      {"drop", &FaultPlan::drop_rate, 1, 1.0, false},
      {"delay", &FaultPlan::delay_rate, 0, 1.0, false},
      {"duplicate", &FaultPlan::duplicate_rate, 0, 1.0, false},
      {"reorder", &FaultPlan::reorder_rate, 1, 1.0, false},
      // Damage faults: session 0 is lost, the run degrades to quorum. These
      // run over the checksummed wire (v3): a flipped bit can land in a
      // field like the round kind and still decode as a valid frame, so
      // framing alone cannot catch it — the FNV trailer can.
      {"truncate", &FaultPlan::truncate_rate, 0, 0.6, true},
      {"bitflip", &FaultPlan::bitflip_rate, 0, 0.6, true},
  };

  for (WireProtocol protocol : protocols) {
    ScenarioSpec benign;
    benign.name = std::string(WireProtocolName(protocol)) + "/benign";
    benign.protocol = protocol;
    benign.use_socket = use_socket;
    benign.faults.seed = seed;
    out.push_back(benign);
    for (const LinkCell& cell : link_cells) {
      ScenarioSpec s;
      s.name = std::string(WireProtocolName(protocol)) + "/" + cell.label;
      s.protocol = protocol;
      s.use_socket = use_socket;
      s.faults.seed = seed;
      s.faults.*cell.rate = 1.0;
      s.faults.max_injections = cell.max_injections;
      s.quorum = cell.quorum;
      s.checksum_frames = cell.checksum;
      out.push_back(s);
    }
  }

  // Sealed-batch tampering: one cell per TamperingSsi-style action, plus a
  // benign sealed round proving the audit passes honest pools.
  const AdversaryAction sealed_actions[] = {
      AdversaryAction::kNone, AdversaryAction::kSubstituteCiphertext,
      AdversaryAction::kReplayCiphertext, AdversaryAction::kOmitCiphertext,
      AdversaryAction::kForgeManifest};
  for (AdversaryAction action : sealed_actions) {
    ScenarioSpec s;
    s.name = std::string("sealed/") + (action == AdversaryAction::kNone
                                           ? "benign"
                                           : AdversaryActionName(action));
    s.sealed_round = true;
    s.adversary.action = action;
    s.adversary.seed = seed;
    s.use_socket = use_socket;
    s.faults.seed = seed;
    out.push_back(s);
  }

  // Protocol-level adversary: forged aggregate + hostile session frames.
  const AdversaryAction wire_actions[] = {
      AdversaryAction::kForgeAggregate, AdversaryAction::kReplayStaleRound,
      AdversaryAction::kOversizedFrame, AdversaryAction::kMalformedFrame};
  for (AdversaryAction action : wire_actions) {
    ScenarioSpec s;
    s.name = std::string("secure-agg/") + AdversaryActionName(action);
    s.protocol = WireProtocol::kSecureAgg;
    s.adversary.action = action;
    s.adversary.seed = seed;
    s.use_socket = use_socket;
    s.faults.seed = seed;
    out.push_back(s);
  }

  // Token churn mid-run: white-noise has per-class failover, so the run
  // degrades gracefully, then the token rejoins via re-handshake.
  {
    ScenarioSpec s;
    s.name = "white-noise/churn";
    s.protocol = WireProtocol::kWhiteNoise;
    s.use_socket = use_socket;
    s.faults.seed = seed;
    s.faults.disconnect_after_replies = 1;
    s.quorum = 0.6;
    out.push_back(s);
  }
  return out;
}

std::string MatrixJson(const std::vector<ScenarioResult>& results) {
  size_t detection_expected = 0;
  size_t detection_caught = 0;
  size_t benign_cells = 0;
  bool benign_byte_identical = true;
  std::ostringstream os;
  os << "{\"cells\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    if (r.expects_detection) {
      ++detection_expected;
      if (r.detected) ++detection_caught;
    }
    if (r.benign) {
      ++benign_cells;
      benign_byte_identical =
          benign_byte_identical && r.ran_ok && r.byte_identical;
    }
    if (i > 0) os << ", ";
    os << "{\"name\": \"" << r.name << "\", \"protocol\": \"" << r.protocol
       << "\", \"fault\": \"" << r.fault << "\", ";
    AppendJsonBool(&os, "benign", r.benign);
    AppendJsonBool(&os, "ran_ok", r.ran_ok);
    AppendJsonBool(&os, "byte_identical", r.byte_identical);
    AppendJsonBool(&os, "expects_detection", r.expects_detection);
    AppendJsonBool(&os, "detected", r.detected);
    os << "\"injections\": " << r.injections
       << ", \"frame_rejects\": " << r.frame_rejects
       << ", \"responders\": " << r.responders
       << ", \"sessions\": " << r.sessions << "}";
  }
  os << "], \"cells_total\": " << results.size()
     << ", \"detection_expected\": " << detection_expected
     << ", \"detection_caught\": " << detection_caught
     << ", \"detection_rate\": "
     << (detection_expected == 0
             ? 1.0
             : static_cast<double>(detection_caught) /
                   static_cast<double>(detection_expected))
     << ", \"benign_cells\": " << benign_cells << ", ";
  AppendJsonBool(&os, "benign_byte_identical", benign_byte_identical,
                 /*trailing_comma=*/false);
  os << "}";
  return os.str();
}

}  // namespace pds::net
