#include "net/codec.h"

#include <cstring>
#include <utility>

#include "common/hash.h"

namespace pds::net {

namespace {

/// Appends payload bytes after an 8-byte header placeholder; Seal() patches
/// the header once the payload length is known.
class Writer {
 public:
  explicit Writer(MsgType type) : type_(type) {
    out_.resize(kFrameHeaderSize);
  }

  void U8(uint8_t v) { out_.push_back(v); }
  void U32(uint32_t v) { PutU32(&out_, v); }
  void U64(uint64_t v) { PutU64(&out_, v); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    PutU64(&out_, bits);
  }
  void Blob(ByteView v) {
    PutU32(&out_, static_cast<uint32_t>(v.size()));
    out_.insert(out_.end(), v.data(), v.data() + v.size());
  }

  [[nodiscard]] Bytes Seal() && {
    uint32_t payload_len =
        static_cast<uint32_t>(out_.size() - kFrameHeaderSize);
    uint8_t* p = out_.data();
    p[0] = static_cast<uint8_t>(kMagic & 0xff);
    p[1] = static_cast<uint8_t>(kMagic >> 8);
    p[2] = kWireVersion;
    p[3] = static_cast<uint8_t>(type_);
    EncodeU32(p + 4, payload_len);
    return std::move(out_);
  }

 private:
  MsgType type_;
  Bytes out_;
};

/// Bounds-checked cursor over a frame payload. Every read returns a Status
/// on truncation; Blob/Str reject declared lengths above the caller's
/// compile-time maximum before touching (or allocating) anything.
class Reader {
 public:
  explicit Reader(ByteView in) : in_(in) {}

  [[nodiscard]] Result<uint8_t> U8() {
    PDS_RETURN_IF_ERROR(Need(1));
    return in_[pos_++];
  }
  [[nodiscard]] Result<uint32_t> U32() {
    PDS_RETURN_IF_ERROR(Need(4));
    uint32_t v = GetU32(in_.data() + pos_);
    pos_ += 4;
    return v;
  }
  [[nodiscard]] Result<uint64_t> U64() {
    PDS_RETURN_IF_ERROR(Need(8));
    uint64_t v = GetU64(in_.data() + pos_);
    pos_ += 8;
    return v;
  }
  [[nodiscard]] Result<double> F64() {
    PDS_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  /// Length-prefixed blob; `max` is the field's compile-time bound.
  [[nodiscard]] Result<Bytes> Blob(size_t max) {
    PDS_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (len > max) {
      return Status::Corruption("blob length " + std::to_string(len) +
                                " exceeds bound " + std::to_string(max));
    }
    PDS_RETURN_IF_ERROR(Need(len));
    Bytes out(in_.data() + pos_, in_.data() + pos_ + len);
    pos_ += len;
    return out;
  }
  [[nodiscard]] Result<std::string> Str(size_t max) {
    PDS_ASSIGN_OR_RETURN(Bytes b, Blob(max));
    return std::string(b.begin(), b.end());
  }
  /// Decoders must end exactly at the payload boundary; trailing bytes mean
  /// a corrupt or mis-framed message.
  [[nodiscard]] Status AtEnd() const {
    if (pos_ != in_.size()) {
      return Status::Corruption("trailing bytes after message payload");
    }
    return Status::Ok();
  }

 private:
  [[nodiscard]] Status Need(size_t n) const {
    if (in_.size() - pos_ < n) {
      return Status::Corruption("truncated message payload");
    }
    return Status::Ok();
  }

  ByteView in_;
  size_t pos_ = 0;
};

[[nodiscard]] Result<ChallengeMsg> DecodeChallenge(Reader* r) {
  ChallengeMsg m;
  PDS_ASSIGN_OR_RETURN(m.nonce, r->Blob(kMaxNonceBytes));
  return m;
}

[[nodiscard]] Result<HelloMsg> DecodeHello(Reader* r) {
  HelloMsg m;
  PDS_ASSIGN_OR_RETURN(m.token_id, r->U64());
  PDS_ASSIGN_OR_RETURN(Bytes proof, r->Blob(crypto::Sha256::kDigestSize));
  if (proof.size() != crypto::Sha256::kDigestSize) {
    return Status::Corruption("hello proof is not a digest");
  }
  std::memcpy(m.proof.data(), proof.data(), proof.size());
  return m;
}

[[nodiscard]] Result<HelloAckMsg> DecodeHelloAck(Reader* r) {
  HelloAckMsg m;
  PDS_ASSIGN_OR_RETURN(uint8_t accepted, r->U8());
  m.accepted = accepted != 0;
  return m;
}

[[nodiscard]] Result<RoundHeader> DecodeRoundHeader(Reader* r) {
  RoundHeader h;
  PDS_ASSIGN_OR_RETURN(h.round_id, r->U32());
  PDS_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
  if (kind < 1 || kind > static_cast<uint8_t>(RoundKind::kClassAggregate)) {
    return Status::Corruption("bad round kind");
  }
  h.kind = static_cast<RoundKind>(kind);
  PDS_ASSIGN_OR_RETURN(uint8_t func, r->U8());
  if (func > 2) {
    return Status::Corruption("bad agg func");
  }
  h.func = static_cast<global::AggFunc>(func);
  return h;
}

[[nodiscard]] Result<std::vector<Bytes>> DecodeBatch(Reader* r) {
  PDS_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  if (n > kMaxBatchTuples) {
    return Status::Corruption("batch count exceeds kMaxBatchTuples");
  }
  std::vector<Bytes> batch;
  batch.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PDS_ASSIGN_OR_RETURN(Bytes ct, r->Blob(kMaxTupleBytes));
    batch.push_back(std::move(ct));
  }
  return batch;
}

/// Packed-collect requests carry the slot domain labels, one per slot pair,
/// not ciphertexts: a much tighter count bound applies (kMaxPackedSlots vs
/// kMaxBatchTuples) and each entry is a group label, not a tuple blob.
[[nodiscard]] Result<std::vector<Bytes>> DecodePackedDomain(Reader* r) {
  PDS_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  if (n > kMaxPackedSlots) {
    return Status::Corruption("packed domain exceeds kMaxPackedSlots");
  }
  std::vector<Bytes> domain;
  domain.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PDS_ASSIGN_OR_RETURN(Bytes label, r->Blob(kMaxGroupBytes));
    domain.push_back(std::move(label));
  }
  return domain;
}

[[nodiscard]] Result<RoundRequestMsg> DecodeRoundRequest(Reader* r) {
  RoundRequestMsg m;
  PDS_ASSIGN_OR_RETURN(m.header, DecodeRoundHeader(r));
  if (m.header.kind == RoundKind::kPackedCollect) {
    PDS_ASSIGN_OR_RETURN(m.batch, DecodePackedDomain(r));
  } else {
    PDS_ASSIGN_OR_RETURN(m.batch, DecodeBatch(r));
  }
  return m;
}

[[nodiscard]] Result<PartitionMapMsg> DecodePartitionMap(Reader* r) {
  PartitionMapMsg m;
  PDS_ASSIGN_OR_RETURN(m.round_id, r->U32());
  PDS_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  if (n > kMaxPartitions) {
    return Status::Corruption("partition count exceeds kMaxPartitions");
  }
  m.parts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PartitionAssignment a;
    PDS_ASSIGN_OR_RETURN(a.partition, r->U32());
    PDS_ASSIGN_OR_RETURN(a.session, r->U32());
    PDS_ASSIGN_OR_RETURN(a.num_items, r->U32());
    m.parts.push_back(a);
  }
  return m;
}

[[nodiscard]] Result<TupleBatchMsg> DecodeTupleBatch(Reader* r) {
  TupleBatchMsg m;
  PDS_ASSIGN_OR_RETURN(m.round_id, r->U32());
  PDS_ASSIGN_OR_RETURN(m.token_ops, r->U64());
  PDS_ASSIGN_OR_RETURN(m.batch, DecodeBatch(r));
  return m;
}

[[nodiscard]] Result<AggResultMsg> DecodeAggResult(Reader* r) {
  AggResultMsg m;
  PDS_ASSIGN_OR_RETURN(m.round_id, r->U32());
  PDS_ASSIGN_OR_RETURN(m.token_ops, r->U64());
  PDS_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  if (n > kMaxBatchTuples) {
    return Status::Corruption("result count exceeds kMaxBatchTuples");
  }
  m.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    AggResultEntry e;
    PDS_ASSIGN_OR_RETURN(e.group, r->Str(kMaxGroupBytes));
    PDS_ASSIGN_OR_RETURN(e.sum, r->F64());
    PDS_ASSIGN_OR_RETURN(e.count, r->U64());
    m.entries.push_back(std::move(e));
  }
  return m;
}

[[nodiscard]] Result<ErrorMsg> DecodeError(Reader* r) {
  ErrorMsg m;
  PDS_ASSIGN_OR_RETURN(m.code, r->U8());
  PDS_ASSIGN_OR_RETURN(m.message, r->Str(kMaxGroupBytes));
  return m;
}

[[nodiscard]] Result<StatsReplyMsg> DecodeStatsReply(Reader* r) {
  StatsReplyMsg m;
  PDS_ASSIGN_OR_RETURN(m.json, r->Str(kMaxStatsJsonBytes));
  return m;
}

/// Fixed-size trace block at the head of a version-2 payload. No
/// allocation; the flags byte must only carry defined bits.
[[nodiscard]] Result<TraceContext> DecodeTraceContext(Reader* r) {
  TraceContext ctx;
  PDS_ASSIGN_OR_RETURN(ctx.trace_id, r->U64());
  PDS_ASSIGN_OR_RETURN(ctx.parent_span_id, r->U64());
  PDS_ASSIGN_OR_RETURN(uint8_t flags, r->U8());
  if ((flags & ~uint8_t{1}) != 0) {
    return Status::Corruption("undefined trace-context flag bits");
  }
  ctx.sampled = (flags & 1) != 0;
  return ctx;
}

void PutBatch(Writer* w, const std::vector<Bytes>& batch) {
  w->U32(static_cast<uint32_t>(batch.size()));
  for (const Bytes& ct : batch) {
    w->Blob(ct);
  }
}

}  // namespace

Bytes EncodeChallenge(const ChallengeMsg& m) {
  Writer w(MsgType::kChallenge);
  w.Blob(m.nonce);
  return std::move(w).Seal();
}

Bytes EncodeHello(const HelloMsg& m) {
  Writer w(MsgType::kHello);
  w.U64(m.token_id);
  w.Blob(ByteView(m.proof.data(), m.proof.size()));
  return std::move(w).Seal();
}

Bytes EncodeHelloAck(const HelloAckMsg& m) {
  Writer w(MsgType::kHelloAck);
  w.U8(m.accepted ? 1 : 0);
  return std::move(w).Seal();
}

Bytes EncodeRoundRequest(const RoundRequestMsg& m) {
  Writer w(MsgType::kRoundRequest);
  w.U32(m.header.round_id);
  w.U8(static_cast<uint8_t>(m.header.kind));
  w.U8(static_cast<uint8_t>(m.header.func));
  PutBatch(&w, m.batch);
  return std::move(w).Seal();
}

Bytes EncodePartitionMap(const PartitionMapMsg& m) {
  Writer w(MsgType::kPartitionMap);
  w.U32(m.round_id);
  w.U32(static_cast<uint32_t>(m.parts.size()));
  for (const PartitionAssignment& a : m.parts) {
    w.U32(a.partition);
    w.U32(a.session);
    w.U32(a.num_items);
  }
  return std::move(w).Seal();
}

Bytes EncodeTupleBatch(const TupleBatchMsg& m) {
  Writer w(MsgType::kTupleBatch);
  w.U32(m.round_id);
  w.U64(m.token_ops);
  PutBatch(&w, m.batch);
  return std::move(w).Seal();
}

Bytes EncodeAggResult(const AggResultMsg& m) {
  Writer w(MsgType::kAggResult);
  w.U32(m.round_id);
  w.U64(m.token_ops);
  w.U32(static_cast<uint32_t>(m.entries.size()));
  for (const AggResultEntry& e : m.entries) {
    w.Blob(ByteView(std::string_view(e.group)));
    w.F64(e.sum);
    w.U64(e.count);
  }
  return std::move(w).Seal();
}

Bytes EncodeError(const ErrorMsg& m) {
  Writer w(MsgType::kError);
  w.U8(m.code);
  w.Blob(ByteView(std::string_view(m.message)));
  return std::move(w).Seal();
}

Bytes EncodeBye() { return std::move(Writer(MsgType::kBye)).Seal(); }

Bytes EncodeStatsRequest() {
  return std::move(Writer(MsgType::kStatsRequest)).Seal();
}

Bytes EncodeStatsReply(const StatsReplyMsg& m) {
  Writer w(MsgType::kStatsReply);
  w.Blob(ByteView(std::string_view(m.json)));
  return std::move(w).Seal();
}

Bytes AppendFrameChecksum(const Bytes& v1_frame) {
  Bytes out;
  out.reserve(v1_frame.size() + kFrameChecksumSize);
  out = v1_frame;
  out[2] = kWireVersionChecksummed;
  EncodeU32(out.data() + 4,
            static_cast<uint32_t>(out.size() - kFrameHeaderSize +
                                  kFrameChecksumSize));
  // Checksum covers the patched header too, so a flipped version or length
  // byte is also caught.
  uint64_t sum = Fnv1a64(ByteView(out.data(), out.size()));
  PutU64(&out, sum);
  return out;
}

Bytes EncodeDetParams(const DetParams& p) {
  Bytes out;
  out.reserve(kDetParamsSize);
  out.push_back(static_cast<uint8_t>(p.variant));
  uint64_t bits;
  std::memcpy(&bits, &p.noise_ratio, 8);
  PutU64(&out, bits);
  PutU64(&out, p.noise_seed);
  PutU32(&out, p.fakes_per_value);
  PutU32(&out, p.num_buckets);
  return out;
}

Result<DetParams> DecodeDetParams(ByteView blob) {
  if (blob.size() != kDetParamsSize) {
    return Status::Corruption("det-params blob is not " +
                              std::to_string(kDetParamsSize) + " bytes");
  }
  DetParams p;
  uint8_t variant = blob[0];
  if (variant < 1 || variant > static_cast<uint8_t>(DetVariant::kHistogram)) {
    return Status::Corruption("bad det variant");
  }
  p.variant = static_cast<DetVariant>(variant);
  uint64_t bits = GetU64(blob.data() + 1);
  std::memcpy(&p.noise_ratio, &bits, 8);
  p.noise_seed = GetU64(blob.data() + 9);
  p.fakes_per_value = GetU32(blob.data() + 17);
  p.num_buckets = GetU32(blob.data() + 21);
  return p;
}

Bytes AttachTraceContext(const Bytes& v1_frame, const TraceContext& ctx) {
  Bytes out;
  out.reserve(v1_frame.size() + kTraceContextSize);
  out.insert(out.end(), v1_frame.begin(),
             v1_frame.begin() + kFrameHeaderSize);
  out[2] = kWireVersionTraced;
  PutU64(&out, ctx.trace_id);
  PutU64(&out, ctx.parent_span_id);
  out.push_back(ctx.sampled ? uint8_t{1} : uint8_t{0});
  out.insert(out.end(), v1_frame.begin() + kFrameHeaderSize, v1_frame.end());
  EncodeU32(out.data() + 4,
            static_cast<uint32_t>(out.size() - kFrameHeaderSize));
  return out;
}

Bytes EncodeMessage(const Message& m) {
  return std::visit(
      [](const auto& body) -> Bytes {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, ChallengeMsg>) {
          return EncodeChallenge(body);
        } else if constexpr (std::is_same_v<T, HelloMsg>) {
          return EncodeHello(body);
        } else if constexpr (std::is_same_v<T, HelloAckMsg>) {
          return EncodeHelloAck(body);
        } else if constexpr (std::is_same_v<T, RoundRequestMsg>) {
          return EncodeRoundRequest(body);
        } else if constexpr (std::is_same_v<T, PartitionMapMsg>) {
          return EncodePartitionMap(body);
        } else if constexpr (std::is_same_v<T, TupleBatchMsg>) {
          return EncodeTupleBatch(body);
        } else if constexpr (std::is_same_v<T, AggResultMsg>) {
          return EncodeAggResult(body);
        } else if constexpr (std::is_same_v<T, ErrorMsg>) {
          return EncodeError(body);
        } else if constexpr (std::is_same_v<T, StatsRequestMsg>) {
          return EncodeStatsRequest();
        } else if constexpr (std::is_same_v<T, StatsReplyMsg>) {
          return EncodeStatsReply(body);
        } else {
          return EncodeBye();
        }
      },
      m.body);
}

Result<FrameHeader> DecodeFrameHeader(ByteView bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::Corruption("frame header truncated");
  }
  if (GetU16(bytes.data()) != kMagic) {
    return Status::Corruption("bad frame magic");
  }
  FrameHeader h;
  h.version = bytes[2];
  if (h.version != kWireVersion && h.version != kWireVersionTraced &&
      h.version != kWireVersionChecksummed) {
    return Status::Corruption("unsupported wire version " +
                              std::to_string(h.version));
  }
  uint8_t type = bytes[3];
  if (type < 1 || type > static_cast<uint8_t>(MsgType::kStatsReply)) {
    return Status::Corruption("unknown message type " + std::to_string(type));
  }
  h.type = static_cast<MsgType>(type);
  h.payload_len = GetU32(bytes.data() + 4);
  if (h.payload_len > kMaxFramePayload) {
    return Status::Corruption("declared payload length " +
                              std::to_string(h.payload_len) +
                              " exceeds kMaxFramePayload");
  }
  // A traced frame must declare room for the fixed trace block; rejecting
  // here means a truncated trace header never reaches payload allocation.
  if (h.version == kWireVersionTraced && h.payload_len < kTraceContextSize) {
    return Status::Corruption(
        "traced frame declares payload shorter than the trace context");
  }
  // Likewise a checksummed frame must declare room for its trailer.
  if (h.version == kWireVersionChecksummed &&
      h.payload_len < kFrameChecksumSize) {
    return Status::Corruption(
        "checksummed frame declares payload shorter than the checksum");
  }
  return h;
}

Result<Message> DecodeMessage(ByteView frame) {
  PDS_ASSIGN_OR_RETURN(FrameHeader h, DecodeFrameHeader(frame));
  if (frame.size() - kFrameHeaderSize != h.payload_len) {
    return Status::Corruption("frame length does not match declared payload");
  }
  size_t body_len = h.payload_len;
  Message m;
  if (h.version == kWireVersionChecksummed) {
    body_len -= kFrameChecksumSize;
    uint64_t claimed = GetU64(frame.data() + kFrameHeaderSize + body_len);
    uint64_t actual =
        Fnv1a64(ByteView(frame.data(), kFrameHeaderSize + body_len));
    if (claimed != actual) {
      return Status::Corruption("frame checksum mismatch");
    }
    m.checksummed = true;
  }
  Reader r(frame.subview(kFrameHeaderSize, body_len));
  if (h.version == kWireVersionTraced) {
    PDS_ASSIGN_OR_RETURN(TraceContext ctx, DecodeTraceContext(&r));
    m.trace = ctx;
  }
  switch (h.type) {
    case MsgType::kChallenge: {
      PDS_ASSIGN_OR_RETURN(m.body, DecodeChallenge(&r));
      break;
    }
    case MsgType::kHello: {
      PDS_ASSIGN_OR_RETURN(m.body, DecodeHello(&r));
      break;
    }
    case MsgType::kHelloAck: {
      PDS_ASSIGN_OR_RETURN(m.body, DecodeHelloAck(&r));
      break;
    }
    case MsgType::kRoundRequest: {
      PDS_ASSIGN_OR_RETURN(m.body, DecodeRoundRequest(&r));
      break;
    }
    case MsgType::kPartitionMap: {
      PDS_ASSIGN_OR_RETURN(m.body, DecodePartitionMap(&r));
      break;
    }
    case MsgType::kTupleBatch: {
      PDS_ASSIGN_OR_RETURN(m.body, DecodeTupleBatch(&r));
      break;
    }
    case MsgType::kAggResult: {
      PDS_ASSIGN_OR_RETURN(m.body, DecodeAggResult(&r));
      break;
    }
    case MsgType::kError: {
      PDS_ASSIGN_OR_RETURN(m.body, DecodeError(&r));
      break;
    }
    case MsgType::kBye:
      m.body = ByeMsg{};
      break;
    case MsgType::kStatsRequest:
      m.body = StatsRequestMsg{};
      break;
    case MsgType::kStatsReply: {
      PDS_ASSIGN_OR_RETURN(m.body, DecodeStatsReply(&r));
      break;
    }
  }
  PDS_RETURN_IF_ERROR(r.AtEnd());
  return m;
}

}  // namespace pds::net
