#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/codec.h"

namespace pds::net {

namespace {

using SteadyClock = std::chrono::steady_clock;

[[nodiscard]] int64_t MillisLeft(SteadyClock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             deadline - SteadyClock::now())
      .count();
}

[[nodiscard]] Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError("fcntl O_NONBLOCK failed");
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// InProcessTransport

std::pair<std::unique_ptr<InProcessTransport>,
          std::unique_ptr<InProcessTransport>>
InProcessTransport::CreatePair(size_t max_queued) {
  auto shared = std::make_shared<Shared>();
  shared->max_queued = max_queued;
  auto a = std::make_unique<InProcessTransport>(Private{}, shared, 0);
  auto b = std::make_unique<InProcessTransport>(Private{}, std::move(shared),
                                                1);
  return {std::move(a), std::move(b)};
}

Status InProcessTransport::Send(ByteView frame) {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->closed) {
      return Status::IoError("transport closed");
    }
    std::deque<Bytes>& peer_queue = shared_->queues[1 - side_];
    if (peer_queue.size() >= shared_->max_queued) {
      return Status::ResourceExhausted("transport queue full");
    }
    peer_queue.push_back(frame.ToBytes());
  }
  shared_->cv.notify_all();
  CountSent(frame.size());
  return Status::Ok();
}

Result<Bytes> InProcessTransport::Recv(uint32_t deadline_ms) {
  std::unique_lock<std::mutex> lock(shared_->mu);
  std::deque<Bytes>& my_queue = shared_->queues[side_];
  bool got = shared_->cv.wait_for(
      lock, std::chrono::milliseconds(deadline_ms),
      [&] { return !my_queue.empty() || shared_->closed; });
  if (my_queue.empty()) {
    if (shared_->closed) {
      return Status::IoError("transport closed");
    }
    (void)got;
    return Status::DeadlineExceeded("recv deadline exceeded");
  }
  Bytes frame = std::move(my_queue.front());
  my_queue.pop_front();
  lock.unlock();
  CountReceived(frame.size());
  return frame;
}

void InProcessTransport::Close() {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->closed = true;
  }
  shared_->cv.notify_all();
}

bool InProcessTransport::closed() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->closed;
}

// ---------------------------------------------------------------------------
// SocketTransport

SocketTransport::SocketTransport(int fd) : fd_(fd) {
  // Frames are small and latency-sensitive; the transport is the only
  // batching layer, so disable Nagle where the option exists (TCP only —
  // harmless EOPNOTSUPP on Unix-domain sockets).
  int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  (void)SetNonBlocking(fd_);
  rxbuf_.reserve(kFrameHeaderSize);
}

SocketTransport::~SocketTransport() { Close(); }

Result<std::pair<std::unique_ptr<SocketTransport>,
                 std::unique_ptr<SocketTransport>>>
SocketTransport::CreateUnixPair() {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IoError("socketpair failed: " +
                           std::string(std::strerror(errno)));
  }
  return std::make_pair(std::make_unique<SocketTransport>(fds[0]),
                        std::make_unique<SocketTransport>(fds[1]));
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::ConnectTcp(
    const std::string& host, uint16_t port, uint32_t deadline_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket failed");
  }
  PDS_RETURN_IF_ERROR(SetNonBlocking(fd));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    return Status::IoError("connect failed: " +
                           std::string(std::strerror(errno)));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = poll(&pfd, 1, static_cast<int>(deadline_ms));
    if (rc <= 0) {
      close(fd);
      return Status::DeadlineExceeded("connect deadline exceeded");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      close(fd);
      return Status::IoError("connect failed: " +
                             std::string(std::strerror(err)));
    }
  }
  return std::make_unique<SocketTransport>(fd);
}

Status SocketTransport::Send(ByteView frame) {
  if (closed_.load()) {
    return Status::IoError("transport closed");
  }
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = send(fd_, frame.data() + sent, frame.size() - sent,
                     MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      if (poll(&pfd, 1, 1000) <= 0) {
        return Status::IoError("send stalled");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return Status::IoError("send failed: " +
                           std::string(std::strerror(errno)));
  }
  CountSent(frame.size());
  return Status::Ok();
}

Result<Bytes> SocketTransport::Recv(uint32_t deadline_ms) {
  if (closed_.load()) {
    return Status::IoError("transport closed");
  }
  SteadyClock::time_point deadline =
      SteadyClock::now() + std::chrono::milliseconds(deadline_ms);
  size_t need = kFrameHeaderSize;
  while (true) {
    // Header validated the moment 8 bytes are buffered: a lying length
    // field or bad magic is rejected before any payload allocation.
    if (rxbuf_.size() >= kFrameHeaderSize) {
      PDS_ASSIGN_OR_RETURN(FrameHeader h, DecodeFrameHeader(rxbuf_));
      need = kFrameHeaderSize + h.payload_len;
      // The declared length just passed the kMaxFramePayload bound, so this
      // caps the buffer growth the loop below can perform.
      rxbuf_.reserve(need);
      if (rxbuf_.size() >= need) {
        Bytes frame(rxbuf_.begin(),
                    rxbuf_.begin() + static_cast<ptrdiff_t>(need));
        rxbuf_.erase(rxbuf_.begin(),
                     rxbuf_.begin() + static_cast<ptrdiff_t>(need));
        CountReceived(frame.size());
        return frame;
      }
    }
    int64_t left = MillisLeft(deadline);
    if (left <= 0) {
      return Status::DeadlineExceeded("recv deadline exceeded");
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = poll(&pfd, 1, static_cast<int>(left));
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    if (rc <= 0) {
      return Status::DeadlineExceeded("recv deadline exceeded");
    }
    uint8_t chunk[4096];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("peer closed connection");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;
      }
      return Status::IoError("recv failed: " +
                             std::string(std::strerror(errno)));
    }
    rxbuf_.insert(rxbuf_.end(), chunk, chunk + n);
  }
}

void SocketTransport::Close() {
  bool expected = false;
  if (closed_.compare_exchange_strong(expected, true)) {
    shutdown(fd_, SHUT_RDWR);
    close(fd_);
  }
}

bool SocketTransport::closed() const { return closed_.load(); }

// ---------------------------------------------------------------------------
// TcpListener

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Listen(uint16_t port) {
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError("socket failed");
  }
  int one = 1;
  (void)setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IoError("bind failed: " +
                           std::string(std::strerror(errno)));
  }
  if (listen(fd_, 64) != 0) {
    return Status::IoError("listen failed");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IoError("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  PDS_RETURN_IF_ERROR(SetNonBlocking(fd_));
  return Status::Ok();
}

Result<std::unique_ptr<SocketTransport>> TcpListener::Accept(
    uint32_t deadline_ms) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("listener not listening");
  }
  SteadyClock::time_point deadline =
      SteadyClock::now() + std::chrono::milliseconds(deadline_ms);
  while (true) {
    int conn = accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      return std::make_unique<SocketTransport>(conn);
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Status::IoError("accept failed: " +
                             std::string(std::strerror(errno)));
    }
    int64_t left = MillisLeft(deadline);
    if (left <= 0) {
      return Status::DeadlineExceeded("accept deadline exceeded");
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = poll(&pfd, 1, static_cast<int>(left));
    if (rc < 0 && errno != EINTR) {
      return Status::IoError("poll failed");
    }
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace pds::net
