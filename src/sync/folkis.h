#ifndef PDS_SYNC_FOLKIS_H_
#define PDS_SYNC_FOLKIS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"

namespace pds::sync {

/// Folk-enabled Information System (tutorial Perspectives): personal data
/// services for regions with *no* network infrastructure. Encrypted
/// messages travel on the secure tokens of people ("ferries") who
/// physically move between villages — a delay-tolerant network whose only
/// deployment cost is the tokens themselves.
///
/// Discrete-time simulation: villages form a ring; each ferry performs a
/// seeded random walk, picking up pending messages at its current village
/// and delivering those addressed to it. Single-custody forwarding (a
/// message rides exactly one ferry), which bounds token storage.
class FerryNetwork {
 public:
  struct Config {
    uint32_t num_villages = 16;
    uint32_t num_ferries = 4;
    /// Max messages one ferry token can carry (flash-bounded).
    uint32_t ferry_capacity = 64;
    /// false: single-custody forwarding (one copy rides one ferry).
    /// true: epidemic pickup — every ferry passing the source village takes
    /// a copy; the first to reach the destination delivers. Trades token
    /// storage for delay, the classic DTN knob.
    bool epidemic = false;
    uint64_t seed = 17;
  };

  explicit FerryNetwork(const Config& config);

  /// Posts an encrypted message of `bytes` at village `src` for `dst`;
  /// returns a message id.
  uint64_t Post(uint32_t src, uint32_t dst, size_t bytes);

  /// Advances the simulation one step (ferries move, exchange messages).
  void Step();

  /// Runs until all posted messages are delivered or `max_steps` elapse;
  /// returns the number of steps executed.
  uint64_t RunUntilDelivered(uint64_t max_steps);

  bool Delivered(uint64_t message_id) const;
  /// Steps between post and delivery (0 if undelivered).
  uint64_t DeliveryDelay(uint64_t message_id) const;

  uint64_t now() const { return now_; }
  uint64_t messages_delivered() const { return delivered_count_; }
  uint64_t messages_posted() const { return messages_.size(); }
  /// Total ferry-steps taken (the human cost of the network).
  uint64_t ferry_steps() const { return ferry_steps_; }
  /// Bytes carried * steps (token storage-time cost).
  uint64_t byte_steps() const { return byte_steps_; }

 private:
  struct Message {
    uint32_t src = 0;
    uint32_t dst = 0;
    size_t bytes = 0;
    uint64_t posted_at = 0;
    uint64_t delivered_at = 0;
    bool delivered = false;
    std::set<int> carriers;  // ferries that ever took a copy
  };

  struct Ferry {
    uint32_t position = 0;
    std::vector<uint64_t> cargo;  // message ids
  };

  Config config_;
  Rng rng_;
  uint64_t now_ = 0;
  std::vector<Message> messages_;
  std::vector<Ferry> ferries_;
  // Messages waiting at each village.
  std::map<uint32_t, std::vector<uint64_t>> waiting_;
  uint64_t delivered_count_ = 0;
  uint64_t ferry_steps_ = 0;
  uint64_t byte_steps_ = 0;
};

}  // namespace pds::sync

#endif  // PDS_SYNC_FOLKIS_H_
