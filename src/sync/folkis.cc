#include "sync/folkis.h"

#include <algorithm>

namespace pds::sync {

FerryNetwork::FerryNetwork(const Config& config)
    : config_(config), rng_(config.seed) {
  ferries_.resize(config_.num_ferries);
  for (Ferry& f : ferries_) {
    f.position = static_cast<uint32_t>(rng_.Uniform(config_.num_villages));
  }
}

uint64_t FerryNetwork::Post(uint32_t src, uint32_t dst, size_t bytes) {
  Message m;
  m.src = src % config_.num_villages;
  m.dst = dst % config_.num_villages;
  m.bytes = bytes;
  m.posted_at = now_;
  uint64_t id = messages_.size();
  messages_.push_back(m);
  waiting_[m.src].push_back(id);
  return id;
}

void FerryNetwork::Step() {
  ++now_;
  for (size_t fi = 0; fi < ferries_.size(); ++fi) {
    Ferry& ferry = ferries_[fi];
    // Move: random walk on the ring.
    if (rng_.Bernoulli(0.5)) {
      ferry.position = (ferry.position + 1) % config_.num_villages;
    } else {
      ferry.position =
          (ferry.position + config_.num_villages - 1) % config_.num_villages;
    }
    ++ferry_steps_;

    // Deliver cargo addressed to this village; drop copies of messages a
    // faster copy already delivered.
    std::vector<uint64_t> keep;
    for (uint64_t id : ferry.cargo) {
      Message& m = messages_[id];
      if (m.delivered) {
        continue;  // another copy won the race
      }
      byte_steps_ += m.bytes;
      if (m.dst == ferry.position) {
        m.delivered = true;
        m.delivered_at = now_;
        ++delivered_count_;
      } else {
        keep.push_back(id);
      }
    }
    ferry.cargo = std::move(keep);

    // Pick up waiting messages (capacity-bounded). Under epidemic routing
    // the message also stays posted so later ferries take copies too.
    auto it = waiting_.find(ferry.position);
    if (it != waiting_.end()) {
      std::vector<uint64_t>& queue = it->second;
      std::vector<uint64_t> remaining;
      for (uint64_t id : queue) {
        Message& m = messages_[id];
        if (m.delivered) {
          continue;  // purge delivered copies from the village
        }
        if (ferry.cargo.size() >= config_.ferry_capacity ||
            m.carriers.count(static_cast<int>(fi)) != 0) {
          remaining.push_back(id);
          continue;
        }
        // Immediate delivery if the destination is here (degenerate case).
        if (m.dst == ferry.position) {
          m.delivered = true;
          m.delivered_at = now_;
          ++delivered_count_;
          continue;
        }
        m.carriers.insert(static_cast<int>(fi));
        ferry.cargo.push_back(id);
        if (config_.epidemic) {
          remaining.push_back(id);  // stays available for other ferries
        }
      }
      queue = std::move(remaining);
      if (queue.empty()) {
        waiting_.erase(it);
      }
    }
  }
}

uint64_t FerryNetwork::RunUntilDelivered(uint64_t max_steps) {
  uint64_t steps = 0;
  while (delivered_count_ < messages_.size() && steps < max_steps) {
    Step();
    ++steps;
  }
  return steps;
}

bool FerryNetwork::Delivered(uint64_t message_id) const {
  return message_id < messages_.size() && messages_[message_id].delivered;
}

uint64_t FerryNetwork::DeliveryDelay(uint64_t message_id) const {
  if (!Delivered(message_id)) {
    return 0;
  }
  const Message& m = messages_[message_id];
  return m.delivered_at - m.posted_at;
}

}  // namespace pds::sync
