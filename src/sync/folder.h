#ifndef PDS_SYNC_FOLDER_H_
#define PDS_SYNC_FOLDER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "global/common.h"
#include "mcu/secure_token.h"

namespace pds::sync {

/// One entry of a personal (social-medical) folder. Entries are immutable
/// and identified by (author device, per-author sequence number), which
/// makes synchronization a conflict-free set union.
struct FolderEntry {
  uint64_t author = 0;
  uint64_t seq = 0;
  std::string category;  // "prescription", "social-report", ...
  std::string content;
};

/// Central archive of the field experiment ("the folder is archived
/// (encrypted) on a central server"). Untrusted: it stores only
/// ciphertext blobs and never holds a key.
class ArchiveServer {
 public:
  Status Upload(uint64_t folder_id, uint64_t author, uint64_t seq,
                Bytes ciphertext);

  /// Blobs the caller is missing, given its per-author version vector
  /// (max seq known per author; absent author = nothing known).
  std::vector<Bytes> FetchMissing(
      uint64_t folder_id,
      const std::map<uint64_t, uint64_t>& version_vector) const;

  uint64_t num_blobs() const { return num_blobs_; }
  uint64_t bytes_stored() const { return bytes_stored_; }

 private:
  struct Key {
    uint64_t folder;
    uint64_t author;
    uint64_t seq;
    bool operator<(const Key& o) const {
      if (folder != o.folder) return folder < o.folder;
      if (author != o.author) return author < o.author;
      return seq < o.seq;
    }
  };
  std::map<Key, Bytes> blobs_;
  uint64_t num_blobs_ = 0;
  uint64_t bytes_stored_ = 0;
};

/// The folder replica living on one secure device (the patient's home
/// server, a doctor's badge-synced replica, ...). Plaintext exists only
/// inside the token; everything exported is encrypted with the fleet key,
/// so both the archive server and any courier see ciphertext only.
class PersonalFolder {
 public:
  PersonalFolder(mcu::SecureToken* token, uint64_t folder_id)
      : token_(token), folder_id_(folder_id) {}

  uint64_t folder_id() const { return folder_id_; }
  const std::vector<FolderEntry>& entries() const { return entries_; }

  /// Authors a new entry on this device.
  Status AddEntry(const std::string& category, const std::string& content);

  /// Per-author max sequence number known locally.
  std::map<uint64_t, uint64_t> VersionVector() const;

  /// Uploads locally-known entries the archive may be missing (encrypted).
  Status PushTo(ArchiveServer* archive, global::Metrics* metrics);

  /// Downloads and decrypts entries the local replica is missing.
  Status PullFrom(const ArchiveServer& archive, global::Metrics* metrics);

  /// Disconnected sync ("Sync via Smart Badges, no network link
  /// required"): exports the delta against `their_versions` as ciphertext
  /// blobs a badge can carry.
  Result<std::vector<Bytes>> ExportDelta(
      const std::map<uint64_t, uint64_t>& their_versions,
      global::Metrics* metrics) const;

  /// Imports badge-carried blobs; duplicates are ignored.
  Status ImportDelta(const std::vector<Bytes>& blobs,
                     global::Metrics* metrics);

  /// Two-way badge sync between two replicas.
  static Status BadgeSync(PersonalFolder* a, PersonalFolder* b,
                          global::Metrics* metrics);

 private:
  Result<Bytes> Seal(const FolderEntry& entry) const;
  Result<FolderEntry> Open(ByteView blob) const;
  bool Has(uint64_t author, uint64_t seq) const;
  void Insert(FolderEntry entry);

  mcu::SecureToken* token_;
  uint64_t folder_id_;
  std::vector<FolderEntry> entries_;
  uint64_t next_seq_ = 0;
  /// (author, seq) pairs already uploaded to the archive by this replica.
  std::map<std::pair<uint64_t, uint64_t>, bool> pushed_;
};

}  // namespace pds::sync

#endif  // PDS_SYNC_FOLDER_H_
