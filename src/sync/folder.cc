#include "sync/folder.h"

#include <algorithm>

namespace pds::sync {

Status ArchiveServer::Upload(uint64_t folder_id, uint64_t author,
                             uint64_t seq, Bytes ciphertext) {
  Key key{folder_id, author, seq};
  auto [it, inserted] = blobs_.emplace(key, std::move(ciphertext));
  if (inserted) {
    ++num_blobs_;
    bytes_stored_ += it->second.size();
  }
  return Status::Ok();
}

std::vector<Bytes> ArchiveServer::FetchMissing(
    uint64_t folder_id,
    const std::map<uint64_t, uint64_t>& version_vector) const {
  std::vector<Bytes> out;
  for (const auto& [key, blob] : blobs_) {
    if (key.folder != folder_id) {
      continue;
    }
    auto it = version_vector.find(key.author);
    if (it == version_vector.end() || key.seq > it->second) {
      out.push_back(blob);
    }
  }
  return out;
}

Result<Bytes> PersonalFolder::Seal(const FolderEntry& entry) const {
  Bytes plain;
  PutU64(&plain, entry.author);
  PutU64(&plain, entry.seq);
  PutLengthPrefixed(&plain, ByteView(std::string_view(entry.category)));
  PutLengthPrefixed(&plain, ByteView(std::string_view(entry.content)));
  return token_->EncryptNonDet(ByteView(plain));
}

Result<FolderEntry> PersonalFolder::Open(ByteView blob) const {
  PDS_ASSIGN_OR_RETURN(Bytes plain, token_->DecryptNonDet(blob));
  if (plain.size() < 16) {
    return Status::Corruption("folder blob too short");
  }
  FolderEntry entry;
  entry.author = GetU64(plain.data());
  entry.seq = GetU64(plain.data() + 8);
  size_t pos = 16;
  ByteView category, content;
  if (!GetLengthPrefixed(ByteView(plain), &pos, &category) ||
      !GetLengthPrefixed(ByteView(plain), &pos, &content)) {
    return Status::Corruption("folder blob truncated");
  }
  entry.category = category.ToString();
  entry.content = content.ToString();
  return entry;
}

bool PersonalFolder::Has(uint64_t author, uint64_t seq) const {
  for (const FolderEntry& e : entries_) {
    if (e.author == author && e.seq == seq) {
      return true;
    }
  }
  return false;
}

void PersonalFolder::Insert(FolderEntry entry) {
  if (!Has(entry.author, entry.seq)) {
    entries_.push_back(std::move(entry));
  }
}

Status PersonalFolder::AddEntry(const std::string& category,
                                const std::string& content) {
  FolderEntry entry;
  entry.author = token_->id();
  entry.seq = next_seq_++;
  entry.category = category;
  entry.content = content;
  entries_.push_back(std::move(entry));
  return Status::Ok();
}

std::map<uint64_t, uint64_t> PersonalFolder::VersionVector() const {
  std::map<uint64_t, uint64_t> vv;
  for (const FolderEntry& e : entries_) {
    auto it = vv.find(e.author);
    if (it == vv.end() || e.seq > it->second) {
      vv[e.author] = e.seq;
    }
  }
  return vv;
}

Status PersonalFolder::PushTo(ArchiveServer* archive,
                              global::Metrics* metrics) {
  for (const FolderEntry& e : entries_) {
    auto key = std::make_pair(e.author, e.seq);
    if (pushed_.count(key) != 0) {
      continue;
    }
    PDS_ASSIGN_OR_RETURN(Bytes blob, Seal(e));
    if (metrics != nullptr) {
      ++metrics->token_crypto_ops;
      metrics->AddMessage(blob.size());
    }
    PDS_RETURN_IF_ERROR(
        archive->Upload(folder_id_, e.author, e.seq, std::move(blob)));
    pushed_[key] = true;
  }
  return Status::Ok();
}

Status PersonalFolder::PullFrom(const ArchiveServer& archive,
                                global::Metrics* metrics) {
  std::vector<Bytes> blobs =
      archive.FetchMissing(folder_id_, VersionVector());
  for (const Bytes& blob : blobs) {
    if (metrics != nullptr) {
      ++metrics->token_crypto_ops;
      metrics->AddMessage(blob.size());
    }
    PDS_ASSIGN_OR_RETURN(FolderEntry entry, Open(ByteView(blob)));
    Insert(std::move(entry));
  }
  return Status::Ok();
}

Result<std::vector<Bytes>> PersonalFolder::ExportDelta(
    const std::map<uint64_t, uint64_t>& their_versions,
    global::Metrics* metrics) const {
  std::vector<Bytes> out;
  for (const FolderEntry& e : entries_) {
    auto it = their_versions.find(e.author);
    if (it != their_versions.end() && e.seq <= it->second) {
      continue;
    }
    PDS_ASSIGN_OR_RETURN(Bytes blob, Seal(e));
    if (metrics != nullptr) {
      ++metrics->token_crypto_ops;
      metrics->AddMessage(blob.size());
    }
    out.push_back(std::move(blob));
  }
  return out;
}

Status PersonalFolder::ImportDelta(const std::vector<Bytes>& blobs,
                                   global::Metrics* metrics) {
  for (const Bytes& blob : blobs) {
    if (metrics != nullptr) {
      ++metrics->token_crypto_ops;
    }
    PDS_ASSIGN_OR_RETURN(FolderEntry entry, Open(ByteView(blob)));
    Insert(std::move(entry));
  }
  return Status::Ok();
}

Status PersonalFolder::BadgeSync(PersonalFolder* a, PersonalFolder* b,
                                 global::Metrics* metrics) {
  PDS_ASSIGN_OR_RETURN(std::vector<Bytes> a_to_b,
                       a->ExportDelta(b->VersionVector(), metrics));
  PDS_ASSIGN_OR_RETURN(std::vector<Bytes> b_to_a,
                       b->ExportDelta(a->VersionVector(), metrics));
  PDS_RETURN_IF_ERROR(b->ImportDelta(a_to_b, metrics));
  PDS_RETURN_IF_ERROR(a->ImportDelta(b_to_a, metrics));
  return Status::Ok();
}

}  // namespace pds::sync
