#include "crypto/bigint.h"

#include <algorithm>

#include "crypto/montgomery.h"

namespace pds::crypto {

namespace {
constexpr uint64_t kBase = 1ULL << 32;
}  // namespace

BigInt::BigInt(uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<uint32_t>(v));
    uint32_t hi = static_cast<uint32_t>(v >> 32);
    if (hi != 0) {
      limbs_.push_back(hi);
    }
  }
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigInt BigInt::FromBytes(ByteView bytes) {
  BigInt out;
  // Big-endian input -> little-endian limbs.
  size_t n = bytes.size();
  out.limbs_.assign((n + 3) / 4, 0);
  for (size_t i = 0; i < n; ++i) {
    size_t byte_index = n - 1 - i;  // position from LSB
    out.limbs_[byte_index / 4] |=
        static_cast<uint32_t>(bytes[i]) << (8 * (byte_index % 4));
  }
  out.Trim();
  return out;
}

Bytes BigInt::ToBytes() const {
  if (limbs_.empty()) {
    return Bytes{0};
  }
  size_t bytes_needed = (BitLength() + 7) / 8;
  Bytes out(bytes_needed, 0);
  for (size_t i = 0; i < bytes_needed; ++i) {
    size_t byte_index = bytes_needed - 1 - i;  // position from LSB
    out[i] = static_cast<uint8_t>(limbs_[byte_index / 4] >>
                                  (8 * (byte_index % 4)));
  }
  return out;
}

BigInt BigInt::RandomBits(size_t bits, Rng* rng) {
  if (bits == 0) {
    return Zero();
  }
  BigInt out;
  size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& l : out.limbs_) {
    l = static_cast<uint32_t>(rng->Next());
  }
  size_t top_bits = bits - (limbs - 1) * 32;  // in [1, 32]
  if (top_bits < 32) {
    out.limbs_.back() &= (1u << top_bits) - 1;
  }
  out.limbs_.back() |= 1u << (top_bits - 1);  // force exact bit length
  out.Trim();
  return out;
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng* rng) {
  if (bound.IsZero()) {
    return Zero();
  }
  size_t bits = bound.BitLength();
  size_t limbs = (bits + 31) / 32;
  for (;;) {
    BigInt out;
    out.limbs_.resize(limbs);
    for (auto& l : out.limbs_) {
      l = static_cast<uint32_t>(rng->Next());
    }
    size_t top_bits = bits - (limbs - 1) * 32;
    if (top_bits < 32) {
      out.limbs_.back() &= (1u << top_bits) - 1;
    }
    out.Trim();
    if (Compare(out, bound) < 0) {
      return out;
    }
  }
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t BigInt::ToU64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) {
    v = limbs_[0];
  }
  if (limbs_.size() > 1) {
    v |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  return v;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& a, const BigInt& b) {
  BigInt out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Trim();
  return out;
}

BigInt BigInt::Sub(const BigInt& a, const BigInt& b) {
  // Precondition: a >= b. Underflow wraps (callers must respect this).
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) {
      diff -= b.limbs_[i];
    }
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Trim();
  return out;
}

BigInt BigInt::Mul(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) {
    return Zero();
  }
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry != 0) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftLeft(const BigInt& a, size_t bits) {
  if (a.IsZero() || bits == 0) {
    return a;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(a.limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftRight(const BigInt& a, size_t bits) {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= a.limbs_.size()) {
    return Zero();
  }
  BigInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<uint64_t>(a.limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r) {
  // b must be nonzero; division by zero yields q = r = 0.
  if (b.IsZero()) {
    *q = Zero();
    *r = Zero();
    return;
  }
  if (Compare(a, b) < 0) {
    *q = Zero();
    *r = a;
    return;
  }
  if (b.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    uint64_t d = b.limbs_[0];
    BigInt quot;
    quot.limbs_.resize(a.limbs_.size());
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a.limbs_[i];
      quot.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    quot.Trim();
    *q = std::move(quot);
    *r = BigInt(rem);
    return;
  }

  // Knuth Algorithm D, base 2^32.
  // Normalize so the top limb of the divisor has its high bit set.
  size_t shift = 32 - (b.BitLength() % 32);
  if (shift == 32) shift = 0;
  BigInt u = ShiftLeft(a, shift);
  BigInt v = ShiftLeft(b, shift);
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;

  // Ensure u has m + n + 1 limbs.
  u.limbs_.resize(m + n + 1, 0);

  BigInt quot;
  quot.limbs_.assign(m + 1, 0);

  uint64_t v_hi = v.limbs_[n - 1];
  uint64_t v_lo = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / v_hi.
    uint64_t numerator =
        (static_cast<uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    uint64_t q_hat = numerator / v_hi;
    uint64_t r_hat = numerator % v_hi;
    while (q_hat >= kBase ||
           q_hat * v_lo > ((r_hat << 32) | u.limbs_[j + n - 2])) {
      --q_hat;
      r_hat += v_hi;
      if (r_hat >= kBase) {
        break;
      }
    }

    // Multiply-subtract: u[j..j+n] -= q_hat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = q_hat * v.limbs_[i] + carry;
      carry = p >> 32;
      int64_t t = static_cast<int64_t>(u.limbs_[i + j]) -
                  static_cast<int64_t>(p & 0xFFFFFFFFULL) - borrow;
      if (t < 0) {
        t += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<uint32_t>(t);
    }
    int64_t t = static_cast<int64_t>(u.limbs_[j + n]) -
                static_cast<int64_t>(carry) - borrow;
    bool negative = t < 0;
    u.limbs_[j + n] = static_cast<uint32_t>(t);

    if (negative) {
      // q_hat was one too large: add back.
      --q_hat;
      uint64_t c = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum =
            static_cast<uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + c;
        u.limbs_[i + j] = static_cast<uint32_t>(sum);
        c = sum >> 32;
      }
      u.limbs_[j + n] = static_cast<uint32_t>(u.limbs_[j + n] + c);
    }
    quot.limbs_[j] = static_cast<uint32_t>(q_hat);
  }

  quot.Trim();
  u.limbs_.resize(n);
  u.Trim();
  *q = std::move(quot);
  *r = ShiftRight(u, shift);
}

BigInt BigInt::Mod(const BigInt& a, const BigInt& m) {
  BigInt q, r;
  DivMod(a, m, &q, &r);
  return r;
}

BigInt BigInt::Div(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  DivMod(a, b, &q, &r);
  return q;
}

BigInt BigInt::ModAdd(const BigInt& a, const BigInt& b, const BigInt& m) {
  return Mod(Add(a, b), m);
}

BigInt BigInt::ModSub(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt am = Mod(a, m);
  BigInt bm = Mod(b, m);
  if (Compare(am, bm) >= 0) {
    return Sub(am, bm);
  }
  return Sub(Add(am, m), bm);
}

BigInt BigInt::ModMul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return Mod(Mul(a, b), m);
}

BigInt BigInt::ModExp(const BigInt& a, const BigInt& e, const BigInt& m) {
  if (m.IsOne() || m.IsZero()) {
    return Zero();
  }
  if (MontgomeryCtx::Usable(m)) {
    return MontgomeryCtx(m).ModExp(a, e);
  }
  return ModExpSchoolbook(a, e, m);
}

std::vector<BigInt> BigInt::ModExpMany(const std::vector<BigInt>& bases,
                                       const BigInt& e, const BigInt& m) {
  if (m.IsOne() || m.IsZero()) {
    return std::vector<BigInt>(bases.size());
  }
  if (MontgomeryCtx::Usable(m)) {
    return MontgomeryCtx(m).ModExpMany(bases, e);
  }
  std::vector<BigInt> out(bases.size());
  for (size_t i = 0; i < bases.size(); ++i) {
    out[i] = ModExpSchoolbook(bases[i], e, m);
  }
  return out;
}

BigInt BigInt::ModExpSchoolbook(const BigInt& a, const BigInt& e,
                                const BigInt& m) {
  if (m.IsOne() || m.IsZero()) {
    return Zero();
  }
  BigInt base = Mod(a, m);
  BigInt result = One();
  size_t bits = e.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (e.Bit(i)) {
      result = ModMul(result, base, m);
    }
    if (i + 1 < bits) {
      base = ModMul(base, base, m);
    }
  }
  return result;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a, y = b;
  while (!y.IsZero()) {
    BigInt r = Mod(x, y);
    x = y;
    y = r;
  }
  return x;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) {
    return Zero();
  }
  return Div(Mul(a, b), Gcd(a, b));
}

BigInt BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid with non-negative bookkeeping: track coefficients of a
  // modulo m, using (sign, magnitude) pairs folded into mod-m arithmetic.
  BigInt r0 = m, r1 = Mod(a, m);
  BigInt t0 = Zero(), t1 = One();
  bool t0_neg = false, t1_neg = false;
  while (!r1.IsZero()) {
    BigInt q, r2;
    DivMod(r0, r1, &q, &r2);
    // t2 = t0 - q * t1 (with signs).
    BigInt qt1 = Mul(q, t1);
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // t0 and q*t1 have the same sign: result sign depends on magnitudes.
      if (Compare(t0, qt1) >= 0) {
        t2 = Sub(t0, qt1);
        t2_neg = t0_neg;
      } else {
        t2 = Sub(qt1, t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = Add(t0, qt1);
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }
  if (!r0.IsOne()) {
    return Zero();  // not invertible
  }
  BigInt inv = Mod(t0, m);
  if (t0_neg && !inv.IsZero()) {
    inv = Sub(m, inv);
  }
  return inv;
}

bool BigInt::IsProbablePrime(const BigInt& n, int rounds, Rng* rng) {
  if (n.limbs_.empty()) {
    return false;
  }
  uint64_t small = n.ToU64();
  if (n.limbs_.size() <= 2) {
    if (small < 2) return false;
    if (small == 2 || small == 3) return true;
  }
  if (!n.IsOdd()) {
    return false;
  }
  // Quick trial division by small primes.
  static constexpr uint32_t kSmallPrimes[] = {
      3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
      71, 73, 79, 83, 89, 97};
  for (uint32_t p : kSmallPrimes) {
    BigInt bp(p);
    if (Compare(n, bp) == 0) {
      return true;
    }
    if (Mod(n, bp).IsZero()) {
      return false;
    }
  }

  // Write n-1 = d * 2^s.
  BigInt n_minus_1 = Sub(n, One());
  BigInt d = n_minus_1;
  size_t s = 0;
  while (!d.IsOdd()) {
    d = ShiftRight(d, 1);
    ++s;
  }

  BigInt two(2);
  BigInt n_minus_3 = Sub(n, BigInt(3));
  for (int round = 0; round < rounds; ++round) {
    BigInt a = Add(RandomBelow(n_minus_3, rng), two);  // a in [2, n-2]
    BigInt x = ModExp(a, d, n);
    if (x.IsOne() || Compare(x, n_minus_1) == 0) {
      continue;
    }
    bool witness = true;
    for (size_t i = 1; i < s; ++i) {
      x = ModMul(x, x, n);
      if (Compare(x, n_minus_1) == 0) {
        witness = false;
        break;
      }
    }
    if (witness) {
      return false;
    }
  }
  return true;
}

BigInt BigInt::GeneratePrime(size_t bits, Rng* rng) {
  for (;;) {
    BigInt candidate = RandomBits(bits, rng);
    if (!candidate.IsOdd()) {
      candidate = Add(candidate, One());
      if (candidate.BitLength() != bits) {
        continue;
      }
    }
    if (IsProbablePrime(candidate, 20, rng)) {
      return candidate;
    }
  }
}

std::string BigInt::ToDecimalString() const {
  if (limbs_.empty()) {
    return "0";
  }
  BigInt v = *this;
  BigInt billion(1000000000ULL);
  std::vector<uint32_t> chunks;
  while (!v.IsZero()) {
    BigInt q, r;
    DivMod(v, billion, &q, &r);
    chunks.push_back(static_cast<uint32_t>(r.ToU64()));
    v = q;
  }
  std::string out = std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(9 - part.size(), '0') + part;
  }
  return out;
}

}  // namespace pds::crypto
