#include "crypto/sra.h"

namespace pds::crypto {

Result<SraCipher> SraCipher::Create(const BigInt& p, Rng* rng) {
  if (p.BitLength() < 32) {
    return Status::InvalidArgument("SRA prime too small");
  }
  BigInt p_minus_1 = BigInt::Sub(p, BigInt::One());
  for (int attempt = 0; attempt < 1000; ++attempt) {
    BigInt e = BigInt::Add(BigInt::RandomBelow(p_minus_1, rng), BigInt(2));
    if (!BigInt::Gcd(e, p_minus_1).IsOne()) {
      continue;
    }
    BigInt d = BigInt::ModInverse(e, p_minus_1);
    if (d.IsZero()) {
      continue;
    }
    return SraCipher(p, std::move(e), std::move(d));
  }
  return Status::Internal("could not find invertible SRA exponent");
}

Result<BigInt> SraCipher::Encrypt(const BigInt& x) const {
  if (x.IsZero() || BigInt::Compare(x, p_) >= 0) {
    return Status::InvalidArgument("SRA plaintext out of [1, p)");
  }
  return BigInt::ModExp(x, e_, p_);
}

Result<BigInt> SraCipher::Decrypt(const BigInt& y) const {
  if (y.IsZero() || BigInt::Compare(y, p_) >= 0) {
    return Status::InvalidArgument("SRA ciphertext out of [1, p)");
  }
  return BigInt::ModExp(y, d_, p_);
}

Result<BigInt> SraCipher::EncodeItem(const std::string& item) const {
  // Prefix 0x01 preserves leading zero bytes and guarantees nonzero.
  Bytes bytes;
  bytes.push_back(0x01);
  bytes.insert(bytes.end(), item.begin(), item.end());
  BigInt x = BigInt::FromBytes(ByteView(bytes));
  if (BigInt::Compare(x, p_) >= 0) {
    return Status::InvalidArgument(
        "item too long for the SRA prime (" +
        std::to_string(p_.BitLength() / 8 - 1) + " bytes max)");
  }
  return x;
}

Result<std::string> SraCipher::DecodeItem(const BigInt& x) const {
  Bytes bytes = x.ToBytes();
  if (bytes.empty() || bytes[0] != 0x01) {
    return Status::Corruption("bad SRA item encoding");
  }
  return std::string(bytes.begin() + 1, bytes.end());
}

}  // namespace pds::crypto
