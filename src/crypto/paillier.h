#ifndef PDS_CRYPTO_PAILLIER_H_
#define PDS_CRYPTO_PAILLIER_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/bigint.h"

namespace pds::crypto {

/// Paillier additively homomorphic cryptosystem.
///
/// The tutorial (Part III) uses homomorphic encryption as the
/// "untrusted-server-only" point of the solution spectrum: the SSI can add
/// encrypted values without learning them, at a crypto cost that the
/// tutorial calls "(incredibly) high". bench_crypto_ladder reproduces that
/// cost ladder against plaintext and secure-aggregation.
///
/// Standard scheme with the g = n+1 optimization:
///   Enc(m; r) = (1 + m*n) * r^n mod n^2
///   Dec(c)    = L(c^lambda mod n^2) * mu mod n, with L(x) = (x-1)/n
class Paillier {
 public:
  struct PublicKey {
    BigInt n;
    BigInt n_squared;
  };
  struct PrivateKey {
    BigInt lambda;  // lcm(p-1, q-1)
    BigInt mu;      // (L(g^lambda mod n^2))^-1 mod n
  };

  /// Generates a keypair with an n of roughly `modulus_bits` bits.
  /// Deterministic given the RNG seed.
  static Result<Paillier> Generate(size_t modulus_bits, Rng* rng);

  const PublicKey& public_key() const { return public_key_; }

  /// Encrypts m (requires m < n).
  Result<BigInt> Encrypt(const BigInt& m, Rng* rng) const;
  Result<BigInt> EncryptU64(uint64_t m, Rng* rng) const;

  /// Decrypts a ciphertext.
  Result<BigInt> Decrypt(const BigInt& c) const;
  Result<uint64_t> DecryptU64(const BigInt& c) const;

  /// Homomorphic addition: Dec(AddCiphertexts(E(a), E(b))) = a + b mod n.
  BigInt AddCiphertexts(const BigInt& c1, const BigInt& c2) const;
  /// Homomorphic plaintext addition: E(a) -> E(a + k).
  BigInt AddPlaintext(const BigInt& c, const BigInt& k) const;
  /// Homomorphic scalar multiplication: E(a) -> E(a * k).
  BigInt MulPlaintext(const BigInt& c, const BigInt& k) const;

 private:
  Paillier(PublicKey pub, PrivateKey priv)
      : public_key_(std::move(pub)), private_key_(std::move(priv)) {}

  PublicKey public_key_;
  PrivateKey private_key_;
};

}  // namespace pds::crypto

#endif  // PDS_CRYPTO_PAILLIER_H_
