#ifndef PDS_CRYPTO_PAILLIER_H_
#define PDS_CRYPTO_PAILLIER_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/bigint.h"
#include "crypto/montgomery.h"

namespace pds::crypto {

/// Paillier additively homomorphic cryptosystem.
///
/// The tutorial (Part III) uses homomorphic encryption as the
/// "untrusted-server-only" point of the solution spectrum: the SSI can add
/// encrypted values without learning them, at a crypto cost that the
/// tutorial calls "(incredibly) high". bench_crypto_ladder reproduces that
/// cost ladder against plaintext and secure-aggregation.
///
/// Standard scheme with the g = n+1 optimization:
///   Enc(m; r) = (1 + m*n) * r^n mod n^2
///   Dec(c)    = L(c^lambda mod n^2) * mu mod n, with L(x) = (x-1)/n
///
/// Kernel-layer accelerations (all cached per keypair):
///  - Decrypt runs mod p^2 and q^2 with half-size exponents (c^(p-1) mod
///    p^2, c^(q-1) mod q^2) and a Garner CRT recombination — a ~8x
///    algorithmic win on top of the Montgomery ladder.
///  - Encrypt draws r = h^alpha for a fixed random h, so r^n = (h^n)^alpha
///    is a fixed-base exponentiation served from a precomputed 4-bit
///    window table (one MontMul per nonzero digit, no squarings).
/// The pre-kernel code paths are kept as EncryptScalar/DecryptScalar for
/// cross-check tests and the bench_crypto_ladder speedup baseline.
class Paillier {
 public:
  struct PublicKey {
    BigInt n;
    BigInt n_squared;
  };
  struct PrivateKey {
    BigInt lambda;  // lcm(p-1, q-1)
    BigInt mu;      // (L(g^lambda mod n^2))^-1 mod n
    // CRT decryption state.
    BigInt p, q;
    BigInt p_squared, q_squared;
    BigInt hp;       // (L_p(g^(p-1) mod p^2))^-1 mod p
    BigInt hq;       // (L_q(g^(q-1) mod q^2))^-1 mod q
    BigInt q_inv_p;  // q^-1 mod p, for Garner recombination
  };

  /// Generates a keypair with an n of roughly `modulus_bits` bits.
  /// Deterministic given the RNG seed.
  [[nodiscard]] static Result<Paillier> Generate(size_t modulus_bits, Rng* rng);

  /// Builds a keypair from caller-supplied primes. Rejects p == q and
  /// gcd(pq, (p-1)(q-1)) != 1 with InvalidArgument instead of asserting;
  /// primality of p and q is the caller's responsibility.
  [[nodiscard]] static Result<Paillier> GenerateFromPrimes(const BigInt& p, const BigInt& q,
                                             Rng* rng);

  const PublicKey& public_key() const { return public_key_; }

  /// Encrypts m (requires m < n) via the fixed-base cache.
  [[nodiscard]] Result<BigInt> Encrypt(const BigInt& m, Rng* rng) const;
  [[nodiscard]] Result<BigInt> EncryptU64(uint64_t m, Rng* rng) const;
  /// Pre-kernel encryption: uniform r in [1,n), r^n by schoolbook ladder.
  [[nodiscard]] Result<BigInt> EncryptScalar(const BigInt& m, Rng* rng) const;

  /// Decrypts a ciphertext via CRT (mod p^2 and q^2) + Montgomery.
  [[nodiscard]] Result<BigInt> Decrypt(const BigInt& c) const;
  [[nodiscard]] Result<uint64_t> DecryptU64(const BigInt& c) const;
  /// Pre-kernel decryption: c^lambda mod n^2 by schoolbook ladder.
  [[nodiscard]] Result<BigInt> DecryptScalar(const BigInt& c) const;

  /// Homomorphic addition: Dec(AddCiphertexts(E(a), E(b))) = a + b mod n.
  BigInt AddCiphertexts(const BigInt& c1, const BigInt& c2) const;
  /// Homomorphic plaintext addition: E(a) -> E(a + k).
  BigInt AddPlaintext(const BigInt& c, const BigInt& k) const;
  /// Homomorphic scalar multiplication: E(a) -> E(a * k).
  BigInt MulPlaintext(const BigInt& c, const BigInt& k) const;

 private:
  Paillier(PublicKey pub, PrivateKey priv, Rng* rng);

  PublicKey public_key_;
  PrivateKey private_key_;
  // Immutable per-keypair kernel caches, shared so Paillier stays copyable
  // and usable from multiple threads (Rng is the only per-caller state).
  std::shared_ptr<const MontgomeryCtx> ctx_n2_;
  std::shared_ptr<const MontgomeryCtx> ctx_p2_;
  std::shared_ptr<const MontgomeryCtx> ctx_q2_;
  std::shared_ptr<const FixedBaseTable> enc_table_;  // base h^n mod n^2
  size_t alpha_bits_ = 0;  // random-exponent length for Encrypt
};

}  // namespace pds::crypto

#endif  // PDS_CRYPTO_PAILLIER_H_
