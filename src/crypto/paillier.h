#ifndef PDS_CRYPTO_PAILLIER_H_
#define PDS_CRYPTO_PAILLIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/bigint.h"
#include "crypto/montgomery.h"

namespace pds::crypto {

/// Paillier additively homomorphic cryptosystem.
///
/// The tutorial (Part III) uses homomorphic encryption as the
/// "untrusted-server-only" point of the solution spectrum: the SSI can add
/// encrypted values without learning them, at a crypto cost that the
/// tutorial calls "(incredibly) high". bench_crypto_ladder reproduces that
/// cost ladder against plaintext and secure-aggregation.
///
/// Standard scheme with the g = n+1 optimization:
///   Enc(m; r) = (1 + m*n) * r^n mod n^2
///   Dec(c)    = L(c^lambda mod n^2) * mu mod n, with L(x) = (x-1)/n
///
/// Kernel-layer accelerations (all cached per keypair):
///  - Decrypt runs mod p^2 and q^2 with half-size exponents (c^(p-1) mod
///    p^2, c^(q-1) mod q^2) and a Garner CRT recombination — a ~8x
///    algorithmic win on top of the Montgomery ladder.
///  - Encrypt draws r = h^alpha for a fixed random h, so r^n = (h^n)^alpha
///    is a fixed-base exponentiation served from a precomputed 4-bit
///    window table (one MontMul per nonzero digit, no squarings).
/// The pre-kernel code paths are kept as EncryptScalar/DecryptScalar for
/// cross-check tests and the bench_crypto_ladder speedup baseline.
class Paillier {
 public:
  struct PublicKey {
    BigInt n;
    BigInt n_squared;
  };
  struct PrivateKey {
    BigInt lambda;  // lcm(p-1, q-1)  // pdslint: secret
    BigInt mu;      // (L(g^lambda mod n^2))^-1 mod n  // pdslint: secret
    // CRT decryption state.
    BigInt p, q;
    BigInt p_squared, q_squared;
    BigInt hp;       // (L_p(g^(p-1) mod p^2))^-1 mod p
    BigInt hq;       // (L_q(g^(q-1) mod q^2))^-1 mod q
    BigInt q_inv_p;  // q^-1 mod p, for Garner recombination
  };

  /// Generates a keypair with an n of roughly `modulus_bits` bits.
  /// Deterministic given the RNG seed.
  [[nodiscard]] static Result<Paillier> Generate(size_t modulus_bits, Rng* rng);

  /// Builds a keypair from caller-supplied primes. Rejects p == q and
  /// gcd(pq, (p-1)(q-1)) != 1 with InvalidArgument instead of asserting;
  /// primality of p and q is the caller's responsibility.
  [[nodiscard]] static Result<Paillier> GenerateFromPrimes(const BigInt& p, const BigInt& q,
                                             Rng* rng);

  const PublicKey& public_key() const { return public_key_; }

  /// Encrypts m (requires m < n) via the fixed-base cache.
  [[nodiscard]] Result<BigInt> Encrypt(const BigInt& m, Rng* rng) const;
  [[nodiscard]] Result<BigInt> EncryptU64(uint64_t m, Rng* rng) const;
  /// Pre-kernel encryption: uniform r in [1,n), r^n by schoolbook ladder.
  [[nodiscard]] Result<BigInt> EncryptScalar(const BigInt& m, Rng* rng) const;

  /// Round-oriented encryption: all of a round's plaintexts at once. The
  /// random exponents are drawn from `rng` in argument order and the r^n
  /// ladders of four ciphertexts advance in lockstep through the
  /// multi-lane Montgomery kernel, so ciphertexts equal a serial Encrypt
  /// loop over the same rng bit for bit.
  [[nodiscard]] Result<std::vector<BigInt>> EncryptBatch(
      const std::vector<BigInt>& ms, Rng* rng) const;

  /// Decrypts a ciphertext via CRT (mod p^2 and q^2) + Montgomery.
  [[nodiscard]] Result<BigInt> Decrypt(const BigInt& c) const;
  [[nodiscard]] Result<uint64_t> DecryptU64(const BigInt& c) const;
  /// Round-oriented decryption: the shared CRT exponents (p-1, q-1) are
  /// window-decoded once and four ciphertexts reduce in lockstep.
  /// Plaintexts equal per-ciphertext Decrypt bit for bit.
  [[nodiscard]] Result<std::vector<BigInt>> DecryptBatch(
      const std::vector<BigInt>& cs) const;
  /// Pre-kernel decryption: c^lambda mod n^2 by schoolbook ladder.
  [[nodiscard]] Result<BigInt> DecryptScalar(const BigInt& c) const;

  /// Homomorphic addition: Dec(AddCiphertexts(E(a), E(b))) = a + b mod n.
  BigInt AddCiphertexts(const BigInt& c1, const BigInt& c2) const;
  /// Homomorphic plaintext addition: E(a) -> E(a + k).
  BigInt AddPlaintext(const BigInt& c, const BigInt& k) const;
  /// Homomorphic scalar multiplication: E(a) -> E(a * k).
  BigInt MulPlaintext(const BigInt& c, const BigInt& k) const;

 private:
  Paillier(PublicKey pub, PrivateKey priv, Rng* rng);

  PublicKey public_key_;
  PrivateKey private_key_;
  // Immutable per-keypair kernel caches, shared so Paillier stays copyable
  // and usable from multiple threads (Rng is the only per-caller state).
  std::shared_ptr<const MontgomeryCtx> ctx_n2_;
  std::shared_ptr<const MontgomeryCtx> ctx_p2_;
  std::shared_ptr<const MontgomeryCtx> ctx_q2_;
  std::shared_ptr<const FixedBaseTable> enc_table_;  // base h^n mod n^2
  size_t alpha_bits_ = 0;  // random-exponent length for Encrypt
};

/// Layout of k small counters packed into one Paillier plaintext.
///
/// Each counter lives in a fixed-width slot of `slot_bits` =
/// value_bits + guard_bits. The guard bits absorb the carries of summing
/// up to 2^guard_bits ciphertexts homomorphically, so a whole fleet's
/// counters aggregate slot-wise inside ONE ciphertext — one encryption
/// per token and one decryption per round instead of one per counter.
/// ForFleet sizes the guard bits from the fleet size and rejects layouts
/// whose total width could reach the plaintext modulus.
struct SlotLayout {
  uint32_t num_slots = 0;   // counters per plaintext
  uint32_t slot_bits = 0;   // value_bits + guard_bits
  uint32_t guard_bits = 0;  // headroom for homomorphic addends
  uint64_t max_slot_value = 0;  // largest single counter value allowed

  /// Builds a layout for `num_counters` counters of at most `max_value`
  /// each, summed across at most `fleet_size` participants, packed into a
  /// plaintext of `plaintext_bits` (the Paillier n bit length). Fails with
  /// InvalidArgument when the slots cannot fit below n.
  [[nodiscard]] static Result<SlotLayout> ForFleet(size_t fleet_size,
                                                   uint64_t max_value,
                                                   size_t num_counters,
                                                   size_t plaintext_bits);

  /// Largest number of packed plaintexts that may be summed without any
  /// slot overflowing into its neighbour: 2^guard_bits.
  uint64_t max_addends() const { return uint64_t{1} << guard_bits; }
  /// Total bits occupied by the packed value.
  size_t total_bits() const {
    return static_cast<size_t>(num_slots) * slot_bits;
  }

  friend bool operator==(const SlotLayout& a, const SlotLayout& b) {
    return a.num_slots == b.num_slots && a.slot_bits == b.slot_bits &&
           a.guard_bits == b.guard_bits && a.max_slot_value == b.max_slot_value;
  }
};

/// Packs values[i] into slot i: sum_i values[i] << (i * slot_bits).
/// Fails when values.size() != num_slots or any value exceeds
/// max_slot_value.
[[nodiscard]] Result<BigInt> PackSlots(const SlotLayout& layout,
                                       const std::vector<uint64_t>& values);

/// Splits a packed integer back into per-slot values. Fails when `packed`
/// is wider than the layout (a sign of slot overflow or a foreign value).
[[nodiscard]] Result<std::vector<uint64_t>> UnpackSlots(
    const SlotLayout& layout, const BigInt& packed);

/// Slot-packed aggregate counters over a Paillier keypair.
///
/// This is the packed hot path the [TNP14] aggregation protocols ride:
/// every participant encrypts ONE plaintext carrying all of its counters,
/// the untrusted SSI folds ciphertexts pairwise with AddCiphertexts, and
/// the querier decrypts ONE ciphertext and unpacks per-counter totals.
/// Crypto work per round drops from fleet*k operations to fleet + 1.
class PackedAggregate {
 public:
  /// Validates the layout against the keypair and the fleet bound.
  [[nodiscard]] static Result<PackedAggregate> Create(const Paillier& paillier,
                                                      size_t fleet_size,
                                                      uint64_t max_value,
                                                      size_t num_counters);

  const SlotLayout& layout() const { return layout_; }
  const Paillier& paillier() const { return paillier_; }

  /// Packs and encrypts one participant's counters.
  [[nodiscard]] Result<BigInt> EncryptPacked(const std::vector<uint64_t>& values,
                                             Rng* rng) const;
  /// Packs and encrypts many participants' counters with the batched
  /// (lockstep-ladder) Paillier path. rows[i] must each hold num_slots
  /// counters. Ciphertexts equal a serial EncryptPacked loop bit for bit.
  [[nodiscard]] Result<std::vector<BigInt>> EncryptPackedBatch(
      const std::vector<std::vector<uint64_t>>& rows, Rng* rng) const;

  /// Homomorphic slot-wise addition of two packed ciphertexts.
  BigInt Add(const BigInt& c1, const BigInt& c2) const {
    return paillier_.AddCiphertexts(c1, c2);
  }

  /// Guards the homomorphic sum: fails when folding `addends` packed
  /// ciphertexts could overflow a slot into its neighbour.
  [[nodiscard]] Status CheckAddBudget(size_t addends) const;

  /// Decrypts an aggregated ciphertext and unpacks the per-slot totals.
  [[nodiscard]] Result<std::vector<uint64_t>> DecryptUnpack(
      const BigInt& c) const;

 private:
  PackedAggregate(Paillier paillier, SlotLayout layout)
      : paillier_(std::move(paillier)), layout_(layout) {}

  Paillier paillier_;  // copy shares the immutable kernel caches
  SlotLayout layout_;
};

}  // namespace pds::crypto

#endif  // PDS_CRYPTO_PAILLIER_H_
