#ifndef PDS_CRYPTO_HMAC_H_
#define PDS_CRYPTO_HMAC_H_

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace pds::crypto {

/// HMAC-SHA256 (RFC 2104). Used for message authentication in the global
/// protocols (integrity against a weakly-malicious SSI) and for key
/// derivation inside tokens.
Sha256::Digest HmacSha256(ByteView key, ByteView message);

/// HKDF-style key derivation: derive a 32-byte subkey from `master` bound to
/// a textual `label` (e.g., "table-heap-encryption").
Sha256::Digest DeriveKey(ByteView master, ByteView label);

/// Constant-time digest comparison.
bool DigestEqual(const Sha256::Digest& a, const Sha256::Digest& b);

}  // namespace pds::crypto

#endif  // PDS_CRYPTO_HMAC_H_
