#ifndef PDS_CRYPTO_MONTGOMERY_SIMD_H_
#define PDS_CRYPTO_MONTGOMERY_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace pds::crypto::simd {

/// Multi-lane Montgomery multiplication: four independent CIOS reductions
/// over one shared modulus, run in lockstep. This is the kernel under the
/// round-oriented exponentiation paths (MontgomeryCtx::ModExpMany,
/// FixedBaseTable::PowMontMany): a Paillier round exponentiates many
/// independent ciphertexts with the same modulus, so four ladders advance
/// together and every multiply step feeds one 4-lane kernel call.
///
/// Lane-interleaved layout: a residue quartet is a `uint64_t[4 * k]` array
/// where element `[4*j + l]` holds limb `j` of lane `l` as a value < 2^32
/// widened to 64 bits. Limb `j` of all four lanes is contiguous, which is
/// exactly one AVX2 register load (4 x 64-bit slots, 32-bit payloads —
/// the shape `vpmuludq` multiplies natively).
///
/// Dispatch: the AVX2 path is compiled behind a function-level target
/// attribute and selected at runtime via CPU-feature detection; every
/// other case (non-x86, old compiler, missing AVX2, or a test forcing the
/// fallback) runs the scalar 4-lane loop. Both paths execute the identical
/// CIOS recurrence with the identical final conditional subtract, so their
/// outputs are byte-identical on every input — enforced by the
/// bigint_kernel_test cross-check harness.

/// True when this build carries the AVX2 kernel and the CPU reports AVX2.
bool Avx2Supported();

/// Test hook: force the scalar 4-lane fallback even when AVX2 is
/// available. Thread-safe (atomic); tests flip it around a cross-check.
void SetForceScalar(bool force);
bool force_scalar();

/// True when the next MontMul4 call will take the AVX2 path.
bool Active();

/// "avx2" or "scalar" — which path MontMul4 currently dispatches to.
const char* KernelName();

/// out = CIOS(a, b) per lane: a*b*R^-1 mod m for each of the four lanes,
/// result canonical (< m). `m_limbs` is the k-limb little-endian modulus,
/// `n0_inv` is -m^-1 mod 2^32. `a`, `b`, `out` are lane-interleaved
/// 4*k-element arrays as described above; `out` may alias `a` or `b`.
void MontMul4(size_t k, const uint32_t* m_limbs, uint32_t n0_inv,
              const uint64_t* a, const uint64_t* b, uint64_t* out);

}  // namespace pds::crypto::simd

#endif  // PDS_CRYPTO_MONTGOMERY_SIMD_H_
