#include "crypto/cipher.h"

#include <cstring>

#include "crypto/hmac.h"

namespace pds::crypto {

namespace {

Aes128::Key AesKeyFrom(const SymmetricKey& key, std::string_view label) {
  Sha256::Digest derived = DeriveKey(ByteView(key.data(), key.size()),
                                     ByteView(label));
  Aes128::Key out;
  std::memcpy(out.data(), derived.data(), out.size());
  return out;
}

SymmetricKey MacKeyFrom(const SymmetricKey& key, std::string_view label) {
  return DeriveKey(ByteView(key.data(), key.size()), ByteView(label));
}

}  // namespace

SymmetricKey KeyFromString(std::string_view passphrase) {
  return Sha256::Hash(ByteView(passphrase));
}

DetCipher::DetCipher(const SymmetricKey& key)
    : mac_key_(MacKeyFrom(key, "det-mac")), aes_(AesKeyFrom(key, "det-enc")) {}

Bytes DetCipher::Encrypt(ByteView plaintext) const {
  Sha256::Digest mac =
      HmacSha256(ByteView(mac_key_.data(), mac_key_.size()), plaintext);
  Aes128::Block iv;
  std::memcpy(iv.data(), mac.data(), iv.size());

  Bytes out(iv.begin(), iv.end());
  size_t body_start = out.size();
  out.insert(out.end(), plaintext.data(), plaintext.data() + plaintext.size());
  AesCtrXor(aes_, iv, out.data() + body_start, plaintext.size());
  return out;
}

Result<Bytes> DetCipher::Decrypt(ByteView ciphertext) const {
  if (ciphertext.size() < kOverhead) {
    return Status::IntegrityViolation("ciphertext too short");
  }
  Aes128::Block iv;
  std::memcpy(iv.data(), ciphertext.data(), iv.size());
  Bytes plaintext(ciphertext.data() + kOverhead,
                  ciphertext.data() + ciphertext.size());
  AesCtrXor(aes_, iv, plaintext.data(), plaintext.size());

  // Recompute the SIV and compare with the IV that was used.
  Sha256::Digest mac = HmacSha256(ByteView(mac_key_.data(), mac_key_.size()),
                                  ByteView(plaintext));
  uint8_t diff = 0;
  for (size_t i = 0; i < iv.size(); ++i) {
    diff |= static_cast<uint8_t>(iv[i] ^ mac[i]);
  }
  if (diff != 0) {
    return Status::IntegrityViolation("deterministic cipher tag mismatch");
  }
  return plaintext;
}

NonDetCipher::NonDetCipher(const SymmetricKey& key)
    : mac_key_(MacKeyFrom(key, "nondet-mac")),
      aes_(AesKeyFrom(key, "nondet-enc")) {}

Bytes NonDetCipher::Encrypt(ByteView plaintext, Rng* rng) const {
  Aes128::Block nonce;
  rng->FillBytes(nonce.data(), nonce.size());

  Bytes out(nonce.begin(), nonce.end());
  size_t body_start = out.size();
  out.insert(out.end(), plaintext.data(), plaintext.data() + plaintext.size());
  AesCtrXor(aes_, nonce, out.data() + body_start, plaintext.size());

  Sha256::Digest tag =
      HmacSha256(ByteView(mac_key_.data(), mac_key_.size()), ByteView(out));
  out.insert(out.end(), tag.begin(), tag.begin() + 16);
  return out;
}

Result<Bytes> NonDetCipher::Decrypt(ByteView ciphertext) const {
  if (ciphertext.size() < kOverhead) {
    return Status::IntegrityViolation("ciphertext too short");
  }
  size_t body_len = ciphertext.size() - kOverhead;
  ByteView authed = ciphertext.subview(0, 16 + body_len);
  Sha256::Digest tag =
      HmacSha256(ByteView(mac_key_.data(), mac_key_.size()), authed);
  uint8_t diff = 0;
  const uint8_t* stored_tag = ciphertext.data() + 16 + body_len;
  for (size_t i = 0; i < 16; ++i) {
    diff |= static_cast<uint8_t>(stored_tag[i] ^ tag[i]);
  }
  if (diff != 0) {
    return Status::IntegrityViolation("nondeterministic cipher tag mismatch");
  }

  Aes128::Block nonce;
  std::memcpy(nonce.data(), ciphertext.data(), nonce.size());
  Bytes plaintext(ciphertext.data() + 16, ciphertext.data() + 16 + body_len);
  AesCtrXor(aes_, nonce, plaintext.data(), plaintext.size());
  return plaintext;
}

}  // namespace pds::crypto
