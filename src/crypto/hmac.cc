#include "crypto/hmac.h"

#include <cstring>

namespace pds::crypto {

Sha256::Digest HmacSha256(ByteView key, ByteView message) {
  uint8_t key_block[64];
  std::memset(key_block, 0, sizeof(key_block));
  if (key.size() > 64) {
    Sha256::Digest kd = Sha256::Hash(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ByteView(ipad, 64));
  inner.Update(message);
  Sha256::Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(ByteView(opad, 64));
  outer.Update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Sha256::Digest DeriveKey(ByteView master, ByteView label) {
  return HmacSha256(master, label);
}

bool DigestEqual(const Sha256::Digest& a, const Sha256::Digest& b) {
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace pds::crypto
