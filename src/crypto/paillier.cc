#include "crypto/paillier.h"

#include <algorithm>

namespace pds::crypto {

namespace {

/// L(x) = (x - 1) / d, the Paillier decryption quotient.
BigInt LFunc(const BigInt& x, const BigInt& d) {
  return BigInt::Div(BigInt::Sub(x, BigInt::One()), d);
}

}  // namespace

Paillier::Paillier(PublicKey pub, PrivateKey priv, Rng* rng)
    : public_key_(std::move(pub)), private_key_(std::move(priv)) {
  ctx_n2_ = std::make_shared<const MontgomeryCtx>(public_key_.n_squared);
  ctx_p2_ = std::make_shared<const MontgomeryCtx>(private_key_.p_squared);
  ctx_q2_ = std::make_shared<const MontgomeryCtx>(private_key_.q_squared);

  // Fixed-base cache: r = h^alpha with h fixed per keypair, so r^n =
  // (h^n)^alpha comes from a window table over the fixed base h^n mod n^2.
  const BigInt& n = public_key_.n;
  BigInt h;
  do {
    h = BigInt::RandomBelow(n, rng);
  } while (h.IsZero() || h.IsOne() || !BigInt::Gcd(h, n).IsOne());
  BigInt hn = ctx_n2_->ModExp(h, n);
  alpha_bits_ = std::max<size_t>(128, n.BitLength() / 2);
  enc_table_ =
      std::make_shared<const FixedBaseTable>(ctx_n2_.get(), hn, alpha_bits_);
}

Result<Paillier> Paillier::GenerateFromPrimes(const BigInt& p, const BigInt& q,
                                              Rng* rng) {
  if (p.IsZero() || q.IsZero() || p.IsOne() || q.IsOne()) {
    return Status::InvalidArgument("Paillier primes must be > 1");
  }
  if (p == q) {
    return Status::InvalidArgument("Paillier primes must be distinct");
  }
  if (!p.IsOdd() || !q.IsOdd()) {
    return Status::InvalidArgument("Paillier primes must be odd");
  }
  BigInt n = BigInt::Mul(p, q);
  BigInt p1 = BigInt::Sub(p, BigInt::One());
  BigInt q1 = BigInt::Sub(q, BigInt::One());
  if (!BigInt::Gcd(n, BigInt::Mul(p1, q1)).IsOne()) {
    return Status::InvalidArgument(
        "gcd(pq, (p-1)(q-1)) != 1: primes unusable for Paillier");
  }

  BigInt lambda = BigInt::Lcm(p1, q1);
  BigInt n_squared = BigInt::Mul(n, n);

  // With g = n + 1: g^lambda mod n^2 = 1 + lambda*n mod n^2, so
  // L(g^lambda) = lambda mod n and mu = lambda^-1 mod n.
  BigInt mu = BigInt::ModInverse(BigInt::Mod(lambda, n), n);
  if (mu.IsZero()) {
    return Status::Internal("lambda not invertible mod n");
  }

  PrivateKey priv;
  priv.lambda = lambda;
  priv.mu = mu;
  priv.p = p;
  priv.q = q;
  priv.p_squared = BigInt::Mul(p, p);
  priv.q_squared = BigInt::Mul(q, q);

  // hp = (L_p(g^(p-1) mod p^2))^-1 mod p (and symmetrically hq): the
  // per-prime constants of CRT decryption. g = n + 1.
  BigInt g = BigInt::Add(n, BigInt::One());
  BigInt gp = BigInt::ModExp(BigInt::Mod(g, priv.p_squared), p1,
                             priv.p_squared);
  priv.hp = BigInt::ModInverse(BigInt::Mod(LFunc(gp, p), p), p);
  BigInt gq = BigInt::ModExp(BigInt::Mod(g, priv.q_squared), q1,
                             priv.q_squared);
  priv.hq = BigInt::ModInverse(BigInt::Mod(LFunc(gq, q), q), q);
  priv.q_inv_p = BigInt::ModInverse(BigInt::Mod(q, p), p);
  if (priv.hp.IsZero() || priv.hq.IsZero() || priv.q_inv_p.IsZero()) {
    return Status::Internal("CRT constants not invertible");
  }

  PublicKey pub{n, n_squared};
  return Paillier(std::move(pub), std::move(priv), rng);
}

Result<Paillier> Paillier::Generate(size_t modulus_bits, Rng* rng) {
  if (modulus_bits < 64) {
    return Status::InvalidArgument("Paillier modulus must be >= 64 bits");
  }
  size_t prime_bits = modulus_bits / 2;
  for (;;) {
    BigInt p = BigInt::GeneratePrime(prime_bits, rng);
    BigInt q = BigInt::GeneratePrime(prime_bits, rng);
    Result<Paillier> built = GenerateFromPrimes(p, q, rng);
    if (built.ok() ||
        built.status().code() != StatusCode::kInvalidArgument) {
      return built;
    }
    // p == q or a gcd collision (vanishingly rare): redraw.
  }
}

Result<BigInt> Paillier::Encrypt(const BigInt& m, Rng* rng) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  if (BigInt::Compare(m, n) >= 0) {
    return Status::InvalidArgument("plaintext not less than modulus");
  }
  // r^n = (h^n)^alpha from the fixed-base table; alpha random.
  BigInt alpha = BigInt::RandomBits(alpha_bits_, rng);
  MontgomeryCtx::Limbs r_n = enc_table_->PowMont(alpha);
  // (1 + m*n) * r^n mod n^2, composed in the Montgomery domain.
  BigInt g_m = BigInt::Mod(BigInt::Add(BigInt::One(), BigInt::Mul(m, n)), n2);
  MontgomeryCtx::Limbs g_m_mont = ctx_n2_->ToMont(g_m);
  MontgomeryCtx::Limbs ct;
  ctx_n2_->MontMul(g_m_mont, r_n, &ct);
  return ctx_n2_->FromMont(ct);
}

Result<BigInt> Paillier::EncryptScalar(const BigInt& m, Rng* rng) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  if (BigInt::Compare(m, n) >= 0) {
    return Status::InvalidArgument("plaintext not less than modulus");
  }
  // r uniform in [1, n) with gcd(r, n) = 1 (overwhelmingly likely).
  BigInt r;
  do {
    r = BigInt::RandomBelow(n, rng);
  } while (r.IsZero() || !BigInt::Gcd(r, n).IsOne());

  // (1 + m*n) * r^n mod n^2.
  BigInt g_m = BigInt::Mod(BigInt::Add(BigInt::One(), BigInt::Mul(m, n)), n2);
  BigInt r_n = BigInt::ModExpSchoolbook(r, n, n2);
  return BigInt::ModMul(g_m, r_n, n2);
}

Result<BigInt> Paillier::EncryptU64(uint64_t m, Rng* rng) const {
  return Encrypt(BigInt(m), rng);
}

Result<BigInt> Paillier::Decrypt(const BigInt& c) const {
  const BigInt& n2 = public_key_.n_squared;
  if (c.IsZero() || BigInt::Compare(c, n2) >= 0) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  const PrivateKey& sk = private_key_;
  // Half-size exponentiations mod p^2 and q^2.
  BigInt p1 = BigInt::Sub(sk.p, BigInt::One());
  BigInt q1 = BigInt::Sub(sk.q, BigInt::One());
  BigInt cp = ctx_p2_->ModExp(BigInt::Mod(c, sk.p_squared), p1);
  BigInt cq = ctx_q2_->ModExp(BigInt::Mod(c, sk.q_squared), q1);
  BigInt mp = BigInt::ModMul(BigInt::Mod(LFunc(cp, sk.p), sk.p), sk.hp, sk.p);
  BigInt mq = BigInt::ModMul(BigInt::Mod(LFunc(cq, sk.q), sk.q), sk.hq, sk.q);
  // Garner: m = mq + q * ((mp - mq) * q^-1 mod p).
  BigInt h = BigInt::ModMul(BigInt::ModSub(mp, mq, sk.p), sk.q_inv_p, sk.p);
  return BigInt::Add(mq, BigInt::Mul(sk.q, h));
}

Result<BigInt> Paillier::DecryptScalar(const BigInt& c) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  if (c.IsZero() || BigInt::Compare(c, n2) >= 0) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  BigInt x = BigInt::ModExpSchoolbook(c, private_key_.lambda, n2);
  // L(x) = (x - 1) / n.
  BigInt l = LFunc(x, n);
  return BigInt::ModMul(l, private_key_.mu, n);
}

Result<uint64_t> Paillier::DecryptU64(const BigInt& c) const {
  PDS_ASSIGN_OR_RETURN(BigInt m, Decrypt(c));
  return m.ToU64();
}

BigInt Paillier::AddCiphertexts(const BigInt& c1, const BigInt& c2) const {
  return BigInt::ModMul(c1, c2, public_key_.n_squared);
}

BigInt Paillier::AddPlaintext(const BigInt& c, const BigInt& k) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  BigInt g_k = BigInt::Mod(BigInt::Add(BigInt::One(), BigInt::Mul(k, n)), n2);
  return BigInt::ModMul(c, g_k, n2);
}

BigInt Paillier::MulPlaintext(const BigInt& c, const BigInt& k) const {
  return ctx_n2_->ModExp(c, k);
}

}  // namespace pds::crypto
