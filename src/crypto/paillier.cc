#include "crypto/paillier.h"

#include <algorithm>

namespace pds::crypto {

namespace {

/// L(x) = (x - 1) / d, the Paillier decryption quotient.
BigInt LFunc(const BigInt& x, const BigInt& d) {
  return BigInt::Div(BigInt::Sub(x, BigInt::One()), d);
}

/// Garner CRT recombination shared by Decrypt and DecryptBatch:
/// cp = c^(p-1) mod p^2 and cq = c^(q-1) mod q^2 -> plaintext.
BigInt CrtCombine(const Paillier::PrivateKey& sk, const BigInt& cp,
                  const BigInt& cq) {
  BigInt mp = BigInt::ModMul(BigInt::Mod(LFunc(cp, sk.p), sk.p), sk.hp, sk.p);
  BigInt mq = BigInt::ModMul(BigInt::Mod(LFunc(cq, sk.q), sk.q), sk.hq, sk.q);
  BigInt h = BigInt::ModMul(BigInt::ModSub(mp, mq, sk.p), sk.q_inv_p, sk.p);
  return BigInt::Add(mq, BigInt::Mul(sk.q, h));
}

/// Bits needed to represent v (bit_width); 0 for v == 0.
uint32_t BitWidthU64(uint64_t v) {
  uint32_t w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

}  // namespace

Paillier::Paillier(PublicKey pub, PrivateKey priv, Rng* rng)
    : public_key_(std::move(pub)), private_key_(std::move(priv)) {
  ctx_n2_ = std::make_shared<const MontgomeryCtx>(public_key_.n_squared);
  ctx_p2_ = std::make_shared<const MontgomeryCtx>(private_key_.p_squared);
  ctx_q2_ = std::make_shared<const MontgomeryCtx>(private_key_.q_squared);

  // Fixed-base cache: r = h^alpha with h fixed per keypair, so r^n =
  // (h^n)^alpha comes from a window table over the fixed base h^n mod n^2.
  const BigInt& n = public_key_.n;
  BigInt h;
  do {
    h = BigInt::RandomBelow(n, rng);
  } while (h.IsZero() || h.IsOne() || !BigInt::Gcd(h, n).IsOne());
  BigInt hn = ctx_n2_->ModExp(h, n);
  alpha_bits_ = std::max<size_t>(128, n.BitLength() / 2);
  enc_table_ =
      std::make_shared<const FixedBaseTable>(ctx_n2_.get(), hn, alpha_bits_);
}

Result<Paillier> Paillier::GenerateFromPrimes(const BigInt& p, const BigInt& q,
                                              Rng* rng) {
  if (p.IsZero() || q.IsZero() || p.IsOne() || q.IsOne()) {
    return Status::InvalidArgument("Paillier primes must be > 1");
  }
  if (p == q) {
    return Status::InvalidArgument("Paillier primes must be distinct");
  }
  if (!p.IsOdd() || !q.IsOdd()) {
    return Status::InvalidArgument("Paillier primes must be odd");
  }
  BigInt n = BigInt::Mul(p, q);
  BigInt p1 = BigInt::Sub(p, BigInt::One());
  BigInt q1 = BigInt::Sub(q, BigInt::One());
  if (!BigInt::Gcd(n, BigInt::Mul(p1, q1)).IsOne()) {
    return Status::InvalidArgument(
        "gcd(pq, (p-1)(q-1)) != 1: primes unusable for Paillier");
  }

  BigInt lambda = BigInt::Lcm(p1, q1);
  BigInt n_squared = BigInt::Mul(n, n);

  // With g = n + 1: g^lambda mod n^2 = 1 + lambda*n mod n^2, so
  // L(g^lambda) = lambda mod n and mu = lambda^-1 mod n.
  BigInt mu = BigInt::ModInverse(BigInt::Mod(lambda, n), n);
  if (mu.IsZero()) {
    return Status::Internal("lambda not invertible mod n");
  }

  PrivateKey priv;
  priv.lambda = lambda;
  priv.mu = mu;
  priv.p = p;
  priv.q = q;
  priv.p_squared = BigInt::Mul(p, p);
  priv.q_squared = BigInt::Mul(q, q);

  // hp = (L_p(g^(p-1) mod p^2))^-1 mod p (and symmetrically hq): the
  // per-prime constants of CRT decryption. g = n + 1.
  BigInt g = BigInt::Add(n, BigInt::One());
  BigInt gp = BigInt::ModExp(BigInt::Mod(g, priv.p_squared), p1,
                             priv.p_squared);
  priv.hp = BigInt::ModInverse(BigInt::Mod(LFunc(gp, p), p), p);
  BigInt gq = BigInt::ModExp(BigInt::Mod(g, priv.q_squared), q1,
                             priv.q_squared);
  priv.hq = BigInt::ModInverse(BigInt::Mod(LFunc(gq, q), q), q);
  priv.q_inv_p = BigInt::ModInverse(BigInt::Mod(q, p), p);
  if (priv.hp.IsZero() || priv.hq.IsZero() || priv.q_inv_p.IsZero()) {
    return Status::Internal("CRT constants not invertible");
  }

  PublicKey pub{n, n_squared};
  return Paillier(std::move(pub), std::move(priv), rng);
}

Result<Paillier> Paillier::Generate(size_t modulus_bits, Rng* rng) {
  if (modulus_bits < 64) {
    return Status::InvalidArgument("Paillier modulus must be >= 64 bits");
  }
  size_t prime_bits = modulus_bits / 2;
  for (;;) {
    BigInt p = BigInt::GeneratePrime(prime_bits, rng);
    BigInt q = BigInt::GeneratePrime(prime_bits, rng);
    Result<Paillier> built = GenerateFromPrimes(p, q, rng);
    if (built.ok() ||
        built.status().code() != StatusCode::kInvalidArgument) {
      return built;
    }
    // p == q or a gcd collision (vanishingly rare): redraw.
  }
}

Result<BigInt> Paillier::Encrypt(const BigInt& m, Rng* rng) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  if (BigInt::Compare(m, n) >= 0) {
    return Status::InvalidArgument("plaintext not less than modulus");
  }
  // r^n = (h^n)^alpha from the fixed-base table; alpha random.
  BigInt alpha = BigInt::RandomBits(alpha_bits_, rng);
  MontgomeryCtx::Limbs r_n = enc_table_->PowMont(alpha);
  // (1 + m*n) * r^n mod n^2, composed in the Montgomery domain.
  BigInt g_m = BigInt::Mod(BigInt::Add(BigInt::One(), BigInt::Mul(m, n)), n2);
  MontgomeryCtx::Limbs g_m_mont = ctx_n2_->ToMont(g_m);
  MontgomeryCtx::Limbs ct;
  ctx_n2_->MontMul(g_m_mont, r_n, &ct);
  return ctx_n2_->FromMont(ct);
}

Result<BigInt> Paillier::EncryptScalar(const BigInt& m, Rng* rng) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  if (BigInt::Compare(m, n) >= 0) {
    return Status::InvalidArgument("plaintext not less than modulus");
  }
  // r uniform in [1, n) with gcd(r, n) = 1 (overwhelmingly likely).
  BigInt r;
  do {
    r = BigInt::RandomBelow(n, rng);
  } while (r.IsZero() || !BigInt::Gcd(r, n).IsOne());

  // (1 + m*n) * r^n mod n^2.
  BigInt g_m = BigInt::Mod(BigInt::Add(BigInt::One(), BigInt::Mul(m, n)), n2);
  BigInt r_n = BigInt::ModExpSchoolbook(r, n, n2);
  return BigInt::ModMul(g_m, r_n, n2);
}

Result<BigInt> Paillier::EncryptU64(uint64_t m, Rng* rng) const {
  return Encrypt(BigInt(m), rng);
}

Result<std::vector<BigInt>> Paillier::EncryptBatch(
    const std::vector<BigInt>& ms, Rng* rng) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  for (const BigInt& m : ms) {
    if (BigInt::Compare(m, n) >= 0) {
      return Status::InvalidArgument("plaintext not less than modulus");
    }
  }
  // Alphas are drawn in argument order, exactly as a serial Encrypt loop
  // would, so batch and serial ciphertexts match bit for bit.
  std::vector<BigInt> alphas(ms.size());
  for (size_t i = 0; i < ms.size(); ++i) {
    alphas[i] = BigInt::RandomBits(alpha_bits_, rng);
  }
  std::vector<MontgomeryCtx::Limbs> r_ns = enc_table_->PowMontMany(alphas);
  std::vector<BigInt> out(ms.size());
  for (size_t i = 0; i < ms.size(); ++i) {
    BigInt g_m =
        BigInt::Mod(BigInt::Add(BigInt::One(), BigInt::Mul(ms[i], n)), n2);
    MontgomeryCtx::Limbs g_m_mont = ctx_n2_->ToMont(g_m);
    MontgomeryCtx::Limbs ct;
    ctx_n2_->MontMul(g_m_mont, r_ns[i], &ct);
    out[i] = ctx_n2_->FromMont(ct);
  }
  return out;
}

Result<BigInt> Paillier::Decrypt(const BigInt& c) const {
  const BigInt& n2 = public_key_.n_squared;
  if (c.IsZero() || BigInt::Compare(c, n2) >= 0) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  const PrivateKey& sk = private_key_;
  // Half-size exponentiations mod p^2 and q^2, then Garner recombination.
  BigInt p1 = BigInt::Sub(sk.p, BigInt::One());
  BigInt q1 = BigInt::Sub(sk.q, BigInt::One());
  BigInt cp = ctx_p2_->ModExp(BigInt::Mod(c, sk.p_squared), p1);
  BigInt cq = ctx_q2_->ModExp(BigInt::Mod(c, sk.q_squared), q1);
  return CrtCombine(sk, cp, cq);
}

Result<std::vector<BigInt>> Paillier::DecryptBatch(
    const std::vector<BigInt>& cs) const {
  const BigInt& n2 = public_key_.n_squared;
  const PrivateKey& sk = private_key_;
  std::vector<BigInt> cps_in(cs.size()), cqs_in(cs.size());
  for (size_t i = 0; i < cs.size(); ++i) {
    if (cs[i].IsZero() || BigInt::Compare(cs[i], n2) >= 0) {
      return Status::InvalidArgument("ciphertext out of range");
    }
    cps_in[i] = BigInt::Mod(cs[i], sk.p_squared);
    cqs_in[i] = BigInt::Mod(cs[i], sk.q_squared);
  }
  // The two CRT exponents are shared by every ciphertext of the round, so
  // the batch ladder decodes each window sequence once and runs four
  // reductions per step through the multi-lane kernel.
  BigInt p1 = BigInt::Sub(sk.p, BigInt::One());
  BigInt q1 = BigInt::Sub(sk.q, BigInt::One());
  std::vector<BigInt> cps = ctx_p2_->ModExpMany(cps_in, p1);
  std::vector<BigInt> cqs = ctx_q2_->ModExpMany(cqs_in, q1);
  std::vector<BigInt> out(cs.size());
  for (size_t i = 0; i < cs.size(); ++i) {
    out[i] = CrtCombine(sk, cps[i], cqs[i]);
  }
  return out;
}

Result<BigInt> Paillier::DecryptScalar(const BigInt& c) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  if (c.IsZero() || BigInt::Compare(c, n2) >= 0) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  BigInt x = BigInt::ModExpSchoolbook(c, private_key_.lambda, n2);
  // L(x) = (x - 1) / n.
  BigInt l = LFunc(x, n);
  return BigInt::ModMul(l, private_key_.mu, n);
}

Result<uint64_t> Paillier::DecryptU64(const BigInt& c) const {
  PDS_ASSIGN_OR_RETURN(BigInt m, Decrypt(c));
  return m.ToU64();
}

BigInt Paillier::AddCiphertexts(const BigInt& c1, const BigInt& c2) const {
  return BigInt::ModMul(c1, c2, public_key_.n_squared);
}

BigInt Paillier::AddPlaintext(const BigInt& c, const BigInt& k) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  BigInt g_k = BigInt::Mod(BigInt::Add(BigInt::One(), BigInt::Mul(k, n)), n2);
  return BigInt::ModMul(c, g_k, n2);
}

BigInt Paillier::MulPlaintext(const BigInt& c, const BigInt& k) const {
  return ctx_n2_->ModExp(c, k);
}

Result<SlotLayout> SlotLayout::ForFleet(size_t fleet_size, uint64_t max_value,
                                        size_t num_counters,
                                        size_t plaintext_bits) {
  if (fleet_size == 0) {
    return Status::InvalidArgument("slot layout needs a nonzero fleet");
  }
  if (num_counters == 0) {
    return Status::InvalidArgument("slot layout needs at least one counter");
  }
  uint32_t value_bits = BitWidthU64(max_value == 0 ? 1 : max_value);
  uint32_t guard_bits = BitWidthU64(fleet_size);
  uint32_t slot_bits = value_bits + guard_bits;
  // slot_bits <= 63 keeps every aggregated slot total inside a uint64 and
  // the unpack mask constructible as 1 << slot_bits.
  if (slot_bits > 63) {
    return Status::InvalidArgument("slot width exceeds 63 bits");
  }
  // The packed value is < 2^(num_slots * slot_bits); keeping that at most
  // 2^(plaintext_bits - 1) <= n (n has its top bit set) guarantees every
  // aggregate stays below the plaintext modulus.
  if (plaintext_bits < 2 ||
      num_counters * static_cast<size_t>(slot_bits) > plaintext_bits - 1) {
    return Status::InvalidArgument(
        "packed slots do not fit below the plaintext modulus");
  }
  SlotLayout layout;
  layout.num_slots = static_cast<uint32_t>(num_counters);
  layout.slot_bits = slot_bits;
  layout.guard_bits = guard_bits;
  layout.max_slot_value = max_value;
  return layout;
}

Result<BigInt> PackSlots(const SlotLayout& layout,
                         const std::vector<uint64_t>& values) {
  if (values.size() != layout.num_slots) {
    return Status::InvalidArgument("value count does not match slot layout");
  }
  for (uint64_t v : values) {
    if (v > layout.max_slot_value) {
      return Status::InvalidArgument("counter exceeds slot capacity");
    }
  }
  // Compose from the top slot down so each value lands at i * slot_bits.
  BigInt packed;
  for (size_t i = values.size(); i-- > 0;) {
    packed = BigInt::Add(BigInt::ShiftLeft(packed, layout.slot_bits),
                         BigInt(values[i]));
  }
  return packed;
}

Result<std::vector<uint64_t>> UnpackSlots(const SlotLayout& layout,
                                          const BigInt& packed) {
  if (packed.BitLength() > layout.total_bits()) {
    return Status::InvalidArgument(
        "packed value wider than slot layout (overflow or foreign value)");
  }
  const BigInt mask(uint64_t{1} << layout.slot_bits);
  std::vector<uint64_t> values(layout.num_slots);
  BigInt rest = packed;
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = BigInt::Mod(rest, mask).ToU64();
    rest = BigInt::ShiftRight(rest, layout.slot_bits);
  }
  return values;
}

Result<PackedAggregate> PackedAggregate::Create(const Paillier& paillier,
                                                size_t fleet_size,
                                                uint64_t max_value,
                                                size_t num_counters) {
  PDS_ASSIGN_OR_RETURN(
      SlotLayout layout,
      SlotLayout::ForFleet(fleet_size, max_value, num_counters,
                           paillier.public_key().n.BitLength()));
  return PackedAggregate(paillier, layout);
}

Result<BigInt> PackedAggregate::EncryptPacked(
    const std::vector<uint64_t>& values, Rng* rng) const {
  PDS_ASSIGN_OR_RETURN(BigInt packed, PackSlots(layout_, values));
  return paillier_.Encrypt(packed, rng);
}

Result<std::vector<BigInt>> PackedAggregate::EncryptPackedBatch(
    const std::vector<std::vector<uint64_t>>& rows, Rng* rng) const {
  std::vector<BigInt> packed(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    PDS_ASSIGN_OR_RETURN(packed[i], PackSlots(layout_, rows[i]));
  }
  return paillier_.EncryptBatch(packed, rng);
}

Status PackedAggregate::CheckAddBudget(size_t addends) const {
  if (addends > layout_.max_addends()) {
    return Status::InvalidArgument(
        "homomorphic addend count exceeds the slot guard budget");
  }
  return Status::Ok();
}

Result<std::vector<uint64_t>> PackedAggregate::DecryptUnpack(
    const BigInt& c) const {
  PDS_ASSIGN_OR_RETURN(BigInt packed, paillier_.Decrypt(c));
  return UnpackSlots(layout_, packed);
}

}  // namespace pds::crypto
