#include "crypto/paillier.h"

namespace pds::crypto {

Result<Paillier> Paillier::Generate(size_t modulus_bits, Rng* rng) {
  if (modulus_bits < 64) {
    return Status::InvalidArgument("Paillier modulus must be >= 64 bits");
  }
  size_t prime_bits = modulus_bits / 2;
  BigInt p, q, n;
  for (;;) {
    p = BigInt::GeneratePrime(prime_bits, rng);
    q = BigInt::GeneratePrime(prime_bits, rng);
    if (p == q) {
      continue;
    }
    n = BigInt::Mul(p, q);
    // gcd(n, (p-1)(q-1)) must be 1; guaranteed for distinct primes of equal
    // length, but check cheaply anyway.
    BigInt p1 = BigInt::Sub(p, BigInt::One());
    BigInt q1 = BigInt::Sub(q, BigInt::One());
    if (BigInt::Gcd(n, BigInt::Mul(p1, q1)).IsOne()) {
      break;
    }
  }

  BigInt p1 = BigInt::Sub(p, BigInt::One());
  BigInt q1 = BigInt::Sub(q, BigInt::One());
  BigInt lambda = BigInt::Lcm(p1, q1);
  BigInt n_squared = BigInt::Mul(n, n);

  // With g = n + 1: g^lambda mod n^2 = 1 + lambda*n mod n^2, so
  // L(g^lambda) = lambda mod n and mu = lambda^-1 mod n.
  BigInt mu = BigInt::ModInverse(BigInt::Mod(lambda, n), n);
  if (mu.IsZero()) {
    return Status::Internal("lambda not invertible mod n");
  }

  PublicKey pub{n, n_squared};
  PrivateKey priv{lambda, mu};
  return Paillier(std::move(pub), std::move(priv));
}

Result<BigInt> Paillier::Encrypt(const BigInt& m, Rng* rng) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  if (BigInt::Compare(m, n) >= 0) {
    return Status::InvalidArgument("plaintext not less than modulus");
  }
  // r uniform in [1, n) with gcd(r, n) = 1 (overwhelmingly likely).
  BigInt r;
  do {
    r = BigInt::RandomBelow(n, rng);
  } while (r.IsZero() || !BigInt::Gcd(r, n).IsOne());

  // (1 + m*n) * r^n mod n^2.
  BigInt g_m = BigInt::Mod(BigInt::Add(BigInt::One(), BigInt::Mul(m, n)), n2);
  BigInt r_n = BigInt::ModExp(r, n, n2);
  return BigInt::ModMul(g_m, r_n, n2);
}

Result<BigInt> Paillier::EncryptU64(uint64_t m, Rng* rng) const {
  return Encrypt(BigInt(m), rng);
}

Result<BigInt> Paillier::Decrypt(const BigInt& c) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  if (c.IsZero() || BigInt::Compare(c, n2) >= 0) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  BigInt x = BigInt::ModExp(c, private_key_.lambda, n2);
  // L(x) = (x - 1) / n.
  BigInt l = BigInt::Div(BigInt::Sub(x, BigInt::One()), n);
  return BigInt::ModMul(l, private_key_.mu, n);
}

Result<uint64_t> Paillier::DecryptU64(const BigInt& c) const {
  PDS_ASSIGN_OR_RETURN(BigInt m, Decrypt(c));
  return m.ToU64();
}

BigInt Paillier::AddCiphertexts(const BigInt& c1, const BigInt& c2) const {
  return BigInt::ModMul(c1, c2, public_key_.n_squared);
}

BigInt Paillier::AddPlaintext(const BigInt& c, const BigInt& k) const {
  const BigInt& n = public_key_.n;
  const BigInt& n2 = public_key_.n_squared;
  BigInt g_k = BigInt::Mod(BigInt::Add(BigInt::One(), BigInt::Mul(k, n)), n2);
  return BigInt::ModMul(c, g_k, n2);
}

BigInt Paillier::MulPlaintext(const BigInt& c, const BigInt& k) const {
  return BigInt::ModExp(c, k, public_key_.n_squared);
}

}  // namespace pds::crypto
