#include "crypto/montgomery.h"

#include <cstdlib>

namespace pds::crypto {

namespace {

/// Inverse of odd `x` mod 2^32 by Newton iteration (5 steps double the
/// correct low bits from 5 to >32).
uint32_t InverseMod32(uint32_t x) {
  uint32_t inv = x;  // correct to 5 bits for odd x
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - x * inv;
  }
  return inv;
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(const BigInt& modulus) : modulus_(modulus) {
  if (!Usable(modulus)) {
    std::abort();  // programming error: callers must gate on Usable()
  }
  Bytes be = modulus.ToBytes();
  k_ = (modulus.BitLength() + 31) / 32;
  m_limbs_.assign(k_, 0);
  // Big-endian bytes -> little-endian limbs.
  size_t n = be.size();
  for (size_t i = 0; i < n; ++i) {
    size_t byte_index = n - 1 - i;
    m_limbs_[byte_index / 4] |= static_cast<uint32_t>(be[i])
                                << (8 * (byte_index % 4));
  }
  n0_inv_ = 0u - InverseMod32(m_limbs_[0]);

  // R mod m and R^2 mod m via one-time BigInt divisions.
  BigInt r_mod = BigInt::Mod(BigInt::ShiftLeft(BigInt::One(), 32 * k_),
                             modulus_);
  BigInt r2_mod = BigInt::Mod(BigInt::ShiftLeft(BigInt::One(), 64 * k_),
                              modulus_);
  auto to_limbs = [this](const BigInt& v) {
    Limbs out(k_, 0);
    Bytes b = v.ToBytes();
    size_t len = b.size();
    for (size_t i = 0; i < len; ++i) {
      size_t byte_index = len - 1 - i;
      if (byte_index / 4 < k_) {
        out[byte_index / 4] |= static_cast<uint32_t>(b[i])
                               << (8 * (byte_index % 4));
      }
    }
    return out;
  };
  one_mont_ = to_limbs(r_mod);
  r2_ = to_limbs(r2_mod);
}

void MontgomeryCtx::MontMul(const Limbs& a, const Limbs& b,
                            Limbs* out) const {
  const size_t k = k_;
  // CIOS: t accumulates a*b while folding in multiples of m so the low
  // limb stays divisible by 2^32 each round.
  std::vector<uint32_t> t(k + 2, 0);
  for (size_t i = 0; i < k; ++i) {
    // t += a * b[i]
    uint64_t carry = 0;
    const uint64_t bi = b[i];
    for (size_t j = 0; j < k; ++j) {
      uint64_t cur = t[j] + static_cast<uint64_t>(a[j]) * bi + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = t[k] + carry;
    t[k] = static_cast<uint32_t>(cur);
    t[k + 1] = static_cast<uint32_t>(cur >> 32);

    // t = (t + mw*m) / 2^32
    const uint64_t mw = static_cast<uint32_t>(t[0] * n0_inv_);
    cur = t[0] + mw * m_limbs_[0];
    carry = cur >> 32;  // low limb is now zero by construction
    for (size_t j = 1; j < k; ++j) {
      cur = t[j] + mw * m_limbs_[j] + carry;
      t[j - 1] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = t[k] + carry;
    t[k - 1] = static_cast<uint32_t>(cur);
    t[k] = t[k + 1] + static_cast<uint32_t>(cur >> 32);
    t[k + 1] = 0;
  }

  // Result is in t[0..k], strictly below 2m: subtract m once if needed.
  bool ge = t[k] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = k; i-- > 0;) {
      if (t[i] != m_limbs_[i]) {
        ge = t[i] > m_limbs_[i];
        break;
      }
    }
  }
  out->assign(k, 0);
  if (ge) {
    int64_t borrow = 0;
    for (size_t i = 0; i < k; ++i) {
      int64_t diff = static_cast<int64_t>(t[i]) -
                     static_cast<int64_t>(m_limbs_[i]) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(1) << 32;
        borrow = 1;
      } else {
        borrow = 0;
      }
      (*out)[i] = static_cast<uint32_t>(diff);
    }
  } else {
    for (size_t i = 0; i < k; ++i) {
      (*out)[i] = t[i];
    }
  }
}

MontgomeryCtx::Limbs MontgomeryCtx::ToMont(const BigInt& x) const {
  BigInt r = BigInt::Mod(x, modulus_);
  Limbs xl(k_, 0);
  Bytes b = r.ToBytes();
  size_t len = b.size();
  for (size_t i = 0; i < len; ++i) {
    size_t byte_index = len - 1 - i;
    if (byte_index / 4 < k_) {
      xl[byte_index / 4] |= static_cast<uint32_t>(b[i])
                            << (8 * (byte_index % 4));
    }
  }
  Limbs out;
  MontMul(xl, r2_, &out);
  return out;
}

BigInt MontgomeryCtx::FromMont(const Limbs& x) const {
  Limbs one(k_, 0);
  one[0] = 1;
  Limbs plain;
  MontMul(x, one, &plain);
  // Little-endian limbs -> big-endian bytes -> BigInt.
  Bytes be(k_ * 4, 0);
  for (size_t i = 0; i < k_; ++i) {
    uint32_t v = plain[i];
    be[k_ * 4 - 1 - 4 * i] = static_cast<uint8_t>(v);
    be[k_ * 4 - 2 - 4 * i] = static_cast<uint8_t>(v >> 8);
    be[k_ * 4 - 3 - 4 * i] = static_cast<uint8_t>(v >> 16);
    be[k_ * 4 - 4 - 4 * i] = static_cast<uint8_t>(v >> 24);
  }
  return BigInt::FromBytes(ByteView(be));
}

BigInt MontgomeryCtx::ModMul(const BigInt& a, const BigInt& b) const {
  Limbs am = ToMont(a);
  Limbs bm = ToMont(b);
  Limbs prod;
  MontMul(am, bm, &prod);
  return FromMont(prod);
}

BigInt MontgomeryCtx::ModExp(const BigInt& a, const BigInt& e) const {
  if (e.IsZero()) {
    return BigInt::Mod(BigInt::One(), modulus_);
  }
  Limbs base = ToMont(a);

  // 4-bit fixed window: table[d] = a^d in Montgomery form.
  Limbs table[16];
  table[0] = one_mont_;
  table[1] = base;
  for (int d = 2; d < 16; ++d) {
    MontMul(table[d - 1], base, &table[d]);
  }

  size_t bits = e.BitLength();
  size_t windows = (bits + 3) / 4;
  Limbs result;
  Limbs tmp;
  for (size_t w = windows; w-- > 0;) {
    uint32_t digit = 0;
    for (size_t b = 0; b < 4; ++b) {
      if (e.Bit(4 * w + b)) {
        digit |= 1u << b;
      }
    }
    if (result.empty()) {
      result = table[digit];
      continue;
    }
    for (int s = 0; s < 4; ++s) {
      MontMul(result, result, &tmp);
      result.swap(tmp);
    }
    if (digit != 0) {
      MontMul(result, table[digit], &tmp);
      result.swap(tmp);
    }
  }
  return FromMont(result);
}

FixedBaseTable::FixedBaseTable(const MontgomeryCtx* ctx, const BigInt& base,
                               size_t max_exp_bits)
    : ctx_(ctx), max_exp_bits_(max_exp_bits) {
  size_t rows = (max_exp_bits + 3) / 4;
  rows_.resize(rows);
  MontgomeryCtx::Limbs row_base = ctx_->ToMont(base);
  MontgomeryCtx::Limbs tmp;
  for (size_t i = 0; i < rows; ++i) {
    auto& row = rows_[i];
    row.resize(16);
    row[0] = ctx_->OneMont();
    row[1] = row_base;
    for (int d = 2; d < 16; ++d) {
      ctx_->MontMul(row[d - 1], row_base, &row[d]);
    }
    if (i + 1 < rows) {
      // next row base = row_base^16 = (row_base^8)^2
      ctx_->MontMul(row[8], row[8], &tmp);
      row_base = tmp;
    }
  }
}

MontgomeryCtx::Limbs FixedBaseTable::PowMont(const BigInt& e) const {
  if (e.BitLength() > max_exp_bits_) {
    std::abort();  // exponent exceeds the precomputed range
  }
  MontgomeryCtx::Limbs result = ctx_->OneMont();
  MontgomeryCtx::Limbs tmp;
  size_t windows = (e.BitLength() + 3) / 4;
  for (size_t w = 0; w < windows; ++w) {
    uint32_t digit = 0;
    for (size_t b = 0; b < 4; ++b) {
      if (e.Bit(4 * w + b)) {
        digit |= 1u << b;
      }
    }
    if (digit != 0) {
      ctx_->MontMul(result, rows_[w][digit], &tmp);
      result.swap(tmp);
    }
  }
  return result;
}

BigInt FixedBaseTable::Pow(const BigInt& e) const {
  return ctx_->FromMont(PowMont(e));
}

}  // namespace pds::crypto
