#include "crypto/montgomery.h"

#include <algorithm>
#include <cstdlib>

#include "crypto/montgomery_simd.h"

namespace pds::crypto {

namespace {

/// Lane-interleaved residue quartet for the multi-lane kernel: element
/// [4*j + l] is limb j of lane l (value < 2^32 in a 64-bit slot).
using Quad = std::vector<uint64_t>;

Quad PackQuad(size_t k, const MontgomeryCtx::Limbs* lanes[4]) {
  Quad q(4 * k, 0);
  for (size_t l = 0; l < 4; ++l) {
    const MontgomeryCtx::Limbs& src = *lanes[l];
    for (size_t j = 0; j < k; ++j) {
      q[4 * j + l] = src[j];
    }
  }
  return q;
}

void UnpackLane(const Quad& q, size_t k, size_t lane,
                MontgomeryCtx::Limbs* out) {
  out->assign(k, 0);
  for (size_t j = 0; j < k; ++j) {
    (*out)[j] = static_cast<uint32_t>(q[4 * j + lane]);
  }
}

/// 4-bit window digits of `e`, least-significant window first. Window w
/// holds bits [4w, 4w+4).
std::vector<uint8_t> WindowDigits(const BigInt& e) {
  size_t windows = (e.BitLength() + 3) / 4;
  std::vector<uint8_t> digits(windows, 0);
  for (size_t w = 0; w < windows; ++w) {
    uint8_t digit = 0;
    for (size_t b = 0; b < 4; ++b) {
      // Branchless: Bit() is 0/1, fold it in without testing it.
      digit |= static_cast<uint8_t>(static_cast<uint8_t>(e.Bit(4 * w + b))
                                    << b);
    }
    digits[w] = digit;
  }
  return digits;
}

/// Inverse of odd `x` mod 2^32 by Newton iteration (5 steps double the
/// correct low bits from 5 to >32).
uint32_t InverseMod32(uint32_t x) {
  uint32_t inv = x;  // correct to 5 bits for odd x
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - x * inv;
  }
  return inv;
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(const BigInt& modulus) : modulus_(modulus) {
  if (!Usable(modulus)) {
    std::abort();  // programming error: callers must gate on Usable()
  }
  Bytes be = modulus.ToBytes();
  k_ = (modulus.BitLength() + 31) / 32;
  m_limbs_.assign(k_, 0);
  // Big-endian bytes -> little-endian limbs.
  size_t n = be.size();
  for (size_t i = 0; i < n; ++i) {
    size_t byte_index = n - 1 - i;
    m_limbs_[byte_index / 4] |= static_cast<uint32_t>(be[i])
                                << (8 * (byte_index % 4));
  }
  n0_inv_ = 0u - InverseMod32(m_limbs_[0]);

  // R mod m and R^2 mod m via one-time BigInt divisions.
  BigInt r_mod = BigInt::Mod(BigInt::ShiftLeft(BigInt::One(), 32 * k_),
                             modulus_);
  BigInt r2_mod = BigInt::Mod(BigInt::ShiftLeft(BigInt::One(), 64 * k_),
                              modulus_);
  auto to_limbs = [this](const BigInt& v) {
    Limbs out(k_, 0);
    Bytes b = v.ToBytes();
    size_t len = b.size();
    for (size_t i = 0; i < len; ++i) {
      size_t byte_index = len - 1 - i;
      if (byte_index / 4 < k_) {
        out[byte_index / 4] |= static_cast<uint32_t>(b[i])
                               << (8 * (byte_index % 4));
      }
    }
    return out;
  };
  one_mont_ = to_limbs(r_mod);
  r2_ = to_limbs(r2_mod);
}

// pdslint: secret(a, b)
void MontgomeryCtx::MontMul(const Limbs& a, const Limbs& b,
                            Limbs* out) const {
  const size_t k = k_;
  // CIOS: t accumulates a*b while folding in multiples of m so the low
  // limb stays divisible by 2^32 each round.
  std::vector<uint32_t> t(k + 2, 0);
  for (size_t i = 0; i < k; ++i) {
    // t += a * b[i]
    uint64_t carry = 0;
    const uint64_t bi = b[i];
    for (size_t j = 0; j < k; ++j) {
      uint64_t cur = t[j] + static_cast<uint64_t>(a[j]) * bi + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = t[k] + carry;
    t[k] = static_cast<uint32_t>(cur);
    t[k + 1] = static_cast<uint32_t>(cur >> 32);

    // t = (t + mw*m) / 2^32
    const uint64_t mw = static_cast<uint32_t>(t[0] * n0_inv_);
    cur = t[0] + mw * m_limbs_[0];
    carry = cur >> 32;  // low limb is now zero by construction
    for (size_t j = 1; j < k; ++j) {
      cur = t[j] + mw * m_limbs_[j] + carry;
      t[j - 1] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = t[k] + carry;
    t[k - 1] = static_cast<uint32_t>(cur);
    t[k] = t[k + 1] + static_cast<uint32_t>(cur >> 32);
    t[k + 1] = 0;
  }

  // Result is in t[0..k], strictly below 2m: subtract m once if needed.
  // The reduction runs on secret-derived limbs, so it must not branch or
  // early-exit on them: compute t - m unconditionally (borrow chain), then
  // select t or t - m with a mask derived from (t >= m).
  out->assign(k, 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < k; ++i) {
    uint64_t diff = static_cast<uint64_t>(t[i]) -
                    static_cast<uint64_t>(m_limbs_[i]) - borrow;
    (*out)[i] = static_cast<uint32_t>(diff);
    borrow = (diff >> 63) & 1;
  }
  // t >= m iff the carry limb is nonzero or the subtraction did not borrow.
  const uint64_t tk = t[k];
  const uint32_t ge =
      static_cast<uint32_t>(((tk | (0 - tk)) >> 63) | (borrow ^ 1));
  const uint32_t mask = 0u - ge;  // all-ones when t >= m
  for (size_t i = 0; i < k; ++i) {
    (*out)[i] = ((*out)[i] & mask) | (t[i] & ~mask);
  }
}

MontgomeryCtx::Limbs MontgomeryCtx::ToMont(const BigInt& x) const {
  BigInt r = BigInt::Mod(x, modulus_);
  Limbs xl(k_, 0);
  Bytes b = r.ToBytes();
  size_t len = b.size();
  for (size_t i = 0; i < len; ++i) {
    size_t byte_index = len - 1 - i;
    if (byte_index / 4 < k_) {
      xl[byte_index / 4] |= static_cast<uint32_t>(b[i])
                            << (8 * (byte_index % 4));
    }
  }
  Limbs out;
  MontMul(xl, r2_, &out);
  return out;
}

BigInt MontgomeryCtx::FromMont(const Limbs& x) const {
  Limbs one(k_, 0);
  one[0] = 1;
  Limbs plain;
  MontMul(x, one, &plain);
  // Little-endian limbs -> big-endian bytes -> BigInt.
  Bytes be(k_ * 4, 0);
  for (size_t i = 0; i < k_; ++i) {
    uint32_t v = plain[i];
    be[k_ * 4 - 1 - 4 * i] = static_cast<uint8_t>(v);
    be[k_ * 4 - 2 - 4 * i] = static_cast<uint8_t>(v >> 8);
    be[k_ * 4 - 3 - 4 * i] = static_cast<uint8_t>(v >> 16);
    be[k_ * 4 - 4 - 4 * i] = static_cast<uint8_t>(v >> 24);
  }
  return BigInt::FromBytes(ByteView(be));
}

BigInt MontgomeryCtx::ModMul(const BigInt& a, const BigInt& b) const {
  Limbs am = ToMont(a);
  Limbs bm = ToMont(b);
  Limbs prod;
  MontMul(am, bm, &prod);
  return FromMont(prod);
}

// pdslint: secret(a, e)
// pdslint: const-time-exempt(window ladder skips the digit-0 multiply and
// gates on IsZero/BitLength; leaks only the exponent's bit length and
// zero-window pattern, accepted for the 62-75x cached-encrypt speedup --
// the per-window table load and MontMul reduction below are branchless)
BigInt MontgomeryCtx::ModExp(const BigInt& a, const BigInt& e) const {
  if (e.IsZero()) {
    return BigInt::Mod(BigInt::One(), modulus_);
  }
  Limbs base = ToMont(a);

  // 4-bit fixed window: table[d] = a^d in Montgomery form.
  Limbs table[16];
  table[0] = one_mont_;
  table[1] = base;
  for (int d = 2; d < 16; ++d) {
    MontMul(table[d - 1], base, &table[d]);
  }

  size_t bits = e.BitLength();
  size_t windows = (bits + 3) / 4;
  Limbs result;
  Limbs tmp;
  for (size_t w = windows; w-- > 0;) {
    uint32_t digit = 0;
    for (size_t b = 0; b < 4; ++b) {
      digit |= static_cast<uint32_t>(e.Bit(4 * w + b)) << b;
    }
    if (result.empty()) {
      result = table[digit];
      continue;
    }
    for (int s = 0; s < 4; ++s) {
      MontMul(result, result, &tmp);
      result.swap(tmp);
    }
    if (digit != 0) {
      MontMul(result, table[digit], &tmp);
      result.swap(tmp);
    }
  }
  return FromMont(result);
}

// pdslint: secret(a, b)
void MontgomeryCtx::MontMulQuad(const Limbs a[4], const Limbs b[4],
                                Limbs out[4]) const {
  const Limbs* alanes[4] = {&a[0], &a[1], &a[2], &a[3]};
  const Limbs* blanes[4] = {&b[0], &b[1], &b[2], &b[3]};
  Quad qa = PackQuad(k_, alanes);
  Quad qb = PackQuad(k_, blanes);
  Quad qo(4 * k_, 0);
  simd::MontMul4(k_, m_limbs_.data(), n0_inv_, qa.data(), qb.data(),
                 qo.data());
  for (size_t l = 0; l < 4; ++l) {
    UnpackLane(qo, k_, l, &out[l]);
  }
}

// pdslint: secret(e)
// pdslint: const-time-exempt(shared-exponent ladder: the digit-0 skip and
// IsZero gate leak only the shared exponent's window pattern, identical
// across all four lanes by construction; table entries are gathered for
// every window regardless of lane values)
std::vector<BigInt> MontgomeryCtx::ModExpMany(const std::vector<BigInt>& bases,
                                              const BigInt& e) const {
  const size_t n = bases.size();
  std::vector<BigInt> out(n);
  if (n == 0) {
    return out;
  }
  if (e.IsZero()) {
    BigInt one = BigInt::Mod(BigInt::One(), modulus_);
    std::fill(out.begin(), out.end(), one);
    return out;
  }
  const std::vector<uint8_t> digits = WindowDigits(e);  // decoded once

  const size_t k = k_;
  for (size_t g = 0; g < n; g += 4) {
    const size_t lanes = std::min<size_t>(4, n - g);
    // Idle lanes ladder over base 1; their results are discarded.
    Limbs mont_bases[4];
    for (size_t l = 0; l < 4; ++l) {
      mont_bases[l] = l < lanes ? ToMont(bases[g + l]) : one_mont_;
    }
    const Limbs* base_lanes[4] = {&mont_bases[0], &mont_bases[1],
                                  &mont_bases[2], &mont_bases[3]};
    const Limbs* one_lanes[4] = {&one_mont_, &one_mont_, &one_mont_,
                                 &one_mont_};

    // Shared-digit window table: table[d] holds base_l^d in lane l, built
    // with one lockstep kernel call per entry.
    Quad table[16];
    table[0] = PackQuad(k, one_lanes);
    table[1] = PackQuad(k, base_lanes);
    for (int d = 2; d < 16; ++d) {
      table[d].assign(4 * k, 0);
      simd::MontMul4(k, m_limbs_.data(), n0_inv_, table[d - 1].data(),
                     table[1].data(), table[d].data());
    }

    // One ladder drives all four lanes: the digit index is shared because
    // the exponent is, so squarings and table multiplies stay in lockstep.
    Quad result;
    Quad tmp(4 * k, 0);
    for (size_t w = digits.size(); w-- > 0;) {
      const uint8_t digit = digits[w];
      if (result.empty()) {
        result = table[digit];
        continue;
      }
      for (int s = 0; s < 4; ++s) {
        simd::MontMul4(k, m_limbs_.data(), n0_inv_, result.data(),
                       result.data(), tmp.data());
        result.swap(tmp);
      }
      if (digit != 0) {
        simd::MontMul4(k, m_limbs_.data(), n0_inv_, result.data(),
                       table[digit].data(), tmp.data());
        result.swap(tmp);
      }
    }
    Limbs lane_out;
    for (size_t l = 0; l < lanes; ++l) {
      UnpackLane(result, k, l, &lane_out);
      out[g + l] = FromMont(lane_out);
    }
  }
  return out;
}

FixedBaseTable::FixedBaseTable(const MontgomeryCtx* ctx, const BigInt& base,
                               size_t max_exp_bits)
    : ctx_(ctx), max_exp_bits_(max_exp_bits) {
  size_t rows = (max_exp_bits + 3) / 4;
  rows_.resize(rows);
  MontgomeryCtx::Limbs row_base = ctx_->ToMont(base);
  MontgomeryCtx::Limbs tmp;
  for (size_t i = 0; i < rows; ++i) {
    auto& row = rows_[i];
    row.resize(16);
    row[0] = ctx_->OneMont();
    row[1] = row_base;
    for (int d = 2; d < 16; ++d) {
      ctx_->MontMul(row[d - 1], row_base, &row[d]);
    }
    if (i + 1 < rows) {
      // next row base = row_base^16 = (row_base^8)^2
      ctx_->MontMul(row[8], row[8], &tmp);
      row_base = tmp;
    }
  }
}

// pdslint: secret(e)
// pdslint: const-time-exempt(fixed-base windowing skips digit-0 rows and
// bounds the loop by BitLength; leaks the exponent's length and zero-window
// pattern only -- the BitLength abort guard is a public precomputation
// bound, not data-dependent control flow an attacker can drive)
MontgomeryCtx::Limbs FixedBaseTable::PowMont(const BigInt& e) const {
  if (e.BitLength() > max_exp_bits_) {
    std::abort();  // exponent exceeds the precomputed range
  }
  MontgomeryCtx::Limbs result = ctx_->OneMont();
  MontgomeryCtx::Limbs tmp;
  size_t windows = (e.BitLength() + 3) / 4;
  for (size_t w = 0; w < windows; ++w) {
    uint32_t digit = 0;
    for (size_t b = 0; b < 4; ++b) {
      digit |= static_cast<uint32_t>(e.Bit(4 * w + b)) << b;
    }
    if (digit != 0) {
      ctx_->MontMul(result, rows_[w][digit], &tmp);
      result.swap(tmp);
    }
  }
  return result;
}

BigInt FixedBaseTable::Pow(const BigInt& e) const {
  return ctx_->FromMont(PowMont(e));
}

// pdslint: secret(es)
// pdslint: const-time-exempt(4-lane fixed-base ladder: the all-lanes-zero
// window skip and per-lane digit gathers leak window Hamming structure,
// accepted for the batch 3x floor; digit extraction itself is branchless
// and every non-skipped window multiplies all four lanes in lockstep)
std::vector<MontgomeryCtx::Limbs> FixedBaseTable::PowMontMany(
    const std::vector<BigInt>& es) const {
  const size_t n = es.size();
  std::vector<MontgomeryCtx::Limbs> out(n);
  if (n == 0) {
    return out;
  }
  for (const BigInt& e : es) {
    if (e.BitLength() > max_exp_bits_) {
      std::abort();  // exponent exceeds the precomputed range
    }
  }
  const size_t k = ctx_->limbs();
  const MontgomeryCtx::Limbs& one = ctx_->OneMont();
  for (size_t g = 0; g < n; g += 4) {
    const size_t lanes = std::min<size_t>(4, n - g);
    // Per-lane digits over the shared table rows; idle lanes ride along
    // with exponent 0 (every digit 0 -> identity multiplies only).
    size_t windows = 0;
    for (size_t l = 0; l < lanes; ++l) {
      windows = std::max(windows, (es[g + l].BitLength() + 3) / 4);
    }
    const MontgomeryCtx::Limbs* one_lanes[4] = {&one, &one, &one, &one};
    Quad result = PackQuad(k, one_lanes);
    Quad tmp(4 * k, 0);
    for (size_t w = 0; w < windows; ++w) {
      uint8_t digits[4] = {0, 0, 0, 0};
      uint8_t any = 0;
      for (size_t l = 0; l < lanes; ++l) {
        uint8_t digit = 0;
        for (size_t b = 0; b < 4; ++b) {
          digit |= static_cast<uint8_t>(
              static_cast<uint8_t>(es[g + l].Bit(4 * w + b)) << b);
        }
        digits[l] = digit;
        any |= digit;
      }
      if (!any) {
        continue;
      }
      // Gather this row's table entry per lane (digit 0 -> identity).
      const MontgomeryCtx::Limbs* row_lanes[4];
      for (size_t l = 0; l < 4; ++l) {
        row_lanes[l] = &rows_[w][digits[l]];
      }
      Quad operand = PackQuad(k, row_lanes);
      simd::MontMul4(k, ctx_->mod_limbs().data(), ctx_->n0_inv(),
                     result.data(), operand.data(), tmp.data());
      result.swap(tmp);
    }
    for (size_t l = 0; l < lanes; ++l) {
      UnpackLane(result, k, l, &out[g + l]);
    }
  }
  return out;
}

}  // namespace pds::crypto
