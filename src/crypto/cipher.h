#ifndef PDS_CRYPTO_CIPHER_H_
#define PDS_CRYPTO_CIPHER_H_

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/sha256.h"

namespace pds::crypto {

/// 32-byte symmetric key shared by the token fleet (in the PDS architecture
/// all tokens of one application domain hold a common secret, provisioned at
/// personalization time).
using SymmetricKey = Sha256::Digest;

SymmetricKey KeyFromString(std::string_view passphrase);

/// Deterministic authenticated encryption (SIV construction):
/// IV = HMAC(k1, plaintext)[0..16), ciphertext = AES-CTR(k2, IV, plaintext).
/// Equal plaintexts yield equal ciphertexts — this is what the [TNP14]
/// noise-based and histogram-based protocols require so that the SSI can
/// group/partition ciphertexts without decrypting.
class DetCipher {
 public:
  explicit DetCipher(const SymmetricKey& key);

  Bytes Encrypt(ByteView plaintext) const;
  /// Fails with IntegrityViolation when the SIV check does not match
  /// (tampered or truncated ciphertext).
  [[nodiscard]] Result<Bytes> Decrypt(ByteView ciphertext) const;

  /// Ciphertext overhead in bytes (the 16-byte SIV tag).
  static constexpr size_t kOverhead = 16;

 private:
  SymmetricKey mac_key_;
  Aes128 aes_;
};

/// Non-deterministic (randomized) authenticated encryption:
/// random 16-byte nonce + AES-CTR + HMAC tag over nonce||ciphertext.
/// Equal plaintexts yield different ciphertexts — used by the secure
/// aggregation protocol where the SSI must learn nothing at all.
class NonDetCipher {
 public:
  explicit NonDetCipher(const SymmetricKey& key);

  Bytes Encrypt(ByteView plaintext, Rng* rng) const;
  [[nodiscard]] Result<Bytes> Decrypt(ByteView ciphertext) const;

  /// Nonce (16) + truncated HMAC tag (16).
  static constexpr size_t kOverhead = 32;

 private:
  SymmetricKey mac_key_;
  Aes128 aes_;
};

}  // namespace pds::crypto

#endif  // PDS_CRYPTO_CIPHER_H_
