#include "crypto/montgomery_simd.h"

#include <atomic>
#include <vector>

#if defined(__x86_64__) && defined(__GNUC__)
#define PDS_SIMD_HAVE_AVX2_BUILD 1
#include <immintrin.h>
#else
#define PDS_SIMD_HAVE_AVX2_BUILD 0
#endif

namespace pds::crypto::simd {

namespace {

std::atomic<bool> g_force_scalar{false};

/// Scratch for the (k+2)-limb CIOS accumulator, reused across calls on the
/// same thread so the hot loop never allocates after warm-up.
std::vector<uint64_t>& Scratch() {
  thread_local std::vector<uint64_t> buf;
  return buf;
}

/// Per-lane final step shared by both kernels: the CIOS accumulator `t`
/// (lane-interleaved, k+1 limbs live) is < 2m; subtract m once iff t >= m.
/// Branchless like the scalar MontgomeryCtx kernel — compute t - m
/// unconditionally, then mask-select t or t - m — so no lane's control flow
/// or early exit depends on the secret-derived accumulator, and results
/// agree with the scalar path bit for bit.
// pdslint: secret(t)
void ConditionalSubtract(size_t k, const uint32_t* m_limbs,
                         const uint64_t* t, uint64_t* out) {
  for (size_t lane = 0; lane < 4; ++lane) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < k; ++i) {
      uint64_t diff = t[4 * i + lane] - m_limbs[i] - borrow;
      out[4 * i + lane] = diff & 0xFFFFFFFFu;
      borrow = (diff >> 63) & 1;
    }
    // t >= m iff the carry limb (which may hold >32 live bits) is nonzero
    // or the subtraction did not borrow.
    const uint64_t tk = t[4 * k + lane];
    const uint64_t ge = ((tk | (0 - tk)) >> 63) | (borrow ^ 1);
    const uint64_t mask = 0 - ge;  // all-ones when t >= m
    for (size_t i = 0; i < k; ++i) {
      out[4 * i + lane] =
          (out[4 * i + lane] & mask) | (t[4 * i + lane] & ~mask);
    }
  }
}

/// Portable 4-lane CIOS: the same recurrence as MontgomeryCtx::MontMul,
/// with the lane index innermost. Compilers vectorize some of it, but its
/// real job is to be the bit-exact reference the AVX2 path must match.
// pdslint: secret(a, b)
void MontMul4Scalar(size_t k, const uint32_t* m_limbs, uint32_t n0_inv,
                    const uint64_t* a, const uint64_t* b, uint64_t* out) {
  std::vector<uint64_t>& t = Scratch();
  t.assign(4 * (k + 2), 0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t lane = 0; lane < 4; ++lane) {
      const uint64_t bi = b[4 * i + lane];
      uint64_t carry = 0;
      for (size_t j = 0; j < k; ++j) {
        uint64_t cur = t[4 * j + lane] + a[4 * j + lane] * bi + carry;
        t[4 * j + lane] = cur & 0xFFFFFFFFu;
        carry = cur >> 32;
      }
      uint64_t cur = t[4 * k + lane] + carry;
      t[4 * k + lane] = cur & 0xFFFFFFFFu;
      t[4 * (k + 1) + lane] = cur >> 32;

      const uint64_t mw = (t[lane] * n0_inv) & 0xFFFFFFFFu;
      cur = t[lane] + mw * m_limbs[0];
      carry = cur >> 32;
      for (size_t j = 1; j < k; ++j) {
        cur = t[4 * j + lane] + mw * m_limbs[j] + carry;
        t[4 * (j - 1) + lane] = cur & 0xFFFFFFFFu;
        carry = cur >> 32;
      }
      cur = t[4 * k + lane] + carry;
      t[4 * (k - 1) + lane] = cur & 0xFFFFFFFFu;
      t[4 * k + lane] = t[4 * (k + 1) + lane] + (cur >> 32);
      t[4 * (k + 1) + lane] = 0;
    }
  }
  ConditionalSubtract(k, m_limbs, t.data(), out);
}

#if PDS_SIMD_HAVE_AVX2_BUILD

/// AVX2 4-lane CIOS: one vpmuludq per limb step multiplies all four lanes.
/// Accumulator limbs live in 64-bit lanes (payload < 2^32), so
/// t[j] + a[j]*b[i] + carry <= (2^32-1)^2 + 2*(2^32-1) < 2^64 never wraps.
// pdslint: secret(a, b)
__attribute__((target("avx2"))) void MontMul4Avx2(
    size_t k, const uint32_t* m_limbs, uint32_t n0_inv, const uint64_t* a,
    const uint64_t* b, uint64_t* out) {
  std::vector<uint64_t>& tbuf = Scratch();
  tbuf.assign(4 * (k + 2), 0);
  uint64_t* t = tbuf.data();

  const __m256i mask = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i vninv =
      _mm256_set1_epi64x(static_cast<long long>(n0_inv));
  for (size_t i = 0; i < k; ++i) {
    const __m256i bi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * i));
    __m256i carry = _mm256_setzero_si256();
    for (size_t j = 0; j < k; ++j) {
      __m256i aj =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * j));
      __m256i tj =
          _mm256_loadu_si256(reinterpret_cast<__m256i*>(t + 4 * j));
      __m256i cur = _mm256_add_epi64(
          _mm256_add_epi64(tj, _mm256_mul_epu32(aj, bi)), carry);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(t + 4 * j),
                          _mm256_and_si256(cur, mask));
      carry = _mm256_srli_epi64(cur, 32);
    }
    __m256i tk =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(t + 4 * k));
    __m256i cur = _mm256_add_epi64(tk, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(t + 4 * k),
                        _mm256_and_si256(cur, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(t + 4 * (k + 1)),
                        _mm256_srli_epi64(cur, 32));

    __m256i t0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(t));
    const __m256i mw =
        _mm256_and_si256(_mm256_mul_epu32(t0, vninv), mask);
    cur = _mm256_add_epi64(
        t0, _mm256_mul_epu32(
                mw, _mm256_set1_epi64x(
                        static_cast<long long>(m_limbs[0]))));
    carry = _mm256_srli_epi64(cur, 32);
    for (size_t j = 1; j < k; ++j) {
      __m256i mj =
          _mm256_set1_epi64x(static_cast<long long>(m_limbs[j]));
      __m256i tj =
          _mm256_loadu_si256(reinterpret_cast<__m256i*>(t + 4 * j));
      cur = _mm256_add_epi64(
          _mm256_add_epi64(tj, _mm256_mul_epu32(mw, mj)), carry);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(t + 4 * (j - 1)),
                          _mm256_and_si256(cur, mask));
      carry = _mm256_srli_epi64(cur, 32);
    }
    tk = _mm256_loadu_si256(reinterpret_cast<__m256i*>(t + 4 * k));
    cur = _mm256_add_epi64(tk, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(t + 4 * (k - 1)),
                        _mm256_and_si256(cur, mask));
    __m256i tk1 =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(t + 4 * (k + 1)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(t + 4 * k),
        _mm256_add_epi64(tk1, _mm256_srli_epi64(cur, 32)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(t + 4 * (k + 1)),
                        _mm256_setzero_si256());
  }
  ConditionalSubtract(k, m_limbs, t, out);
}

bool DetectAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#else

bool DetectAvx2() { return false; }

#endif  // PDS_SIMD_HAVE_AVX2_BUILD

}  // namespace

bool Avx2Supported() {
  static const bool supported = DetectAvx2();
  return supported;
}

void SetForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool force_scalar() {
  return g_force_scalar.load(std::memory_order_relaxed);
}

bool Active() { return Avx2Supported() && !force_scalar(); }

const char* KernelName() { return Active() ? "avx2" : "scalar"; }

// pdslint: secret(a, b)
void MontMul4(size_t k, const uint32_t* m_limbs, uint32_t n0_inv,
              const uint64_t* a, const uint64_t* b, uint64_t* out) {
#if PDS_SIMD_HAVE_AVX2_BUILD
  if (Active()) {
    MontMul4Avx2(k, m_limbs, n0_inv, a, b, out);
    return;
  }
#endif
  MontMul4Scalar(k, m_limbs, n0_inv, a, b, out);
}

}  // namespace pds::crypto::simd
