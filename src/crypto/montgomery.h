#ifndef PDS_CRYPTO_MONTGOMERY_H_
#define PDS_CRYPTO_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "crypto/bigint.h"

namespace pds::crypto {

/// Montgomery-form modular arithmetic for a fixed odd modulus.
///
/// This is the kernel layer under BigInt::ModExp: operands are mapped into
/// the Montgomery domain (x -> x * R mod m with R = 2^(32k)) once, where a
/// modular multiplication costs one CIOS pass (two k^2 word-multiply loops,
/// no division), instead of a schoolbook multiply followed by a Knuth-D
/// division per step.
///
/// A context is immutable after construction and safe to share across
/// threads; Paillier caches one per keypair modulus (n^2, p^2, q^2).
class MontgomeryCtx {
 public:
  /// Limb vector of exactly `limbs()` little-endian 32-bit words: the raw
  /// Montgomery-domain representation used by the hot loops and by
  /// FixedBaseTable. Values are always < modulus.
  using Limbs = std::vector<uint32_t>;

  /// `modulus` must be odd and > 1 (checked: aborts otherwise — callers
  /// gate on Usable()).
  explicit MontgomeryCtx(const BigInt& modulus);

  static bool Usable(const BigInt& m) { return m.IsOdd() && !m.IsOne(); }

  const BigInt& modulus() const { return modulus_; }
  size_t limbs() const { return k_; }

  /// a * b mod m for operands in the ordinary domain.
  BigInt ModMul(const BigInt& a, const BigInt& b) const;
  /// a^e mod m with a 4-bit fixed-window ladder (e == 0 yields 1 mod m).
  BigInt ModExp(const BigInt& a, const BigInt& e) const;

  /// Batch-window exponentiation: bases[i]^e mod m for every base. The
  /// exponent's window digits are decoded once and shared, and the ladders
  /// of four bases advance in lockstep so every multiply step is one
  /// 4-lane kernel call (crypto/montgomery_simd.h; scalar fallback when
  /// AVX2 is unavailable). Results equal per-base ModExp bit for bit.
  std::vector<BigInt> ModExpMany(const std::vector<BigInt>& bases,
                                 const BigInt& e) const;

  // --- Montgomery-domain plumbing (used by FixedBaseTable and tests) ---

  /// x -> x*R mod m. Reduces x mod m first.
  Limbs ToMont(const BigInt& x) const;
  /// x*R -> x.
  BigInt FromMont(const Limbs& x) const;
  /// out = a * b * R^-1 mod m (CIOS). `out` may alias a or b.
  void MontMul(const Limbs& a, const Limbs& b, Limbs* out) const;
  /// Four independent MontMuls over the shared modulus through one
  /// lockstep multi-lane kernel call. Lane l computes a[l]*b[l]*R^-1 mod m;
  /// out[l] may alias its inputs. Used by the batch ladders and by the
  /// SIMD/scalar cross-check tests.
  void MontMulQuad(const Limbs a[4], const Limbs b[4], Limbs out[4]) const;
  /// 1 in the Montgomery domain (R mod m).
  const Limbs& OneMont() const { return one_mont_; }

  /// Raw kernel parameters, consumed by the 4-lane SIMD path.
  const std::vector<uint32_t>& mod_limbs() const { return m_limbs_; }
  uint32_t n0_inv() const { return n0_inv_; }

 private:
  BigInt modulus_;
  size_t k_ = 0;                  // limb count of the modulus
  uint32_t n0_inv_ = 0;           // -m^-1 mod 2^32
  std::vector<uint32_t> m_limbs_; // modulus, padded to k limbs
  Limbs r2_;                      // R^2 mod m (Montgomery form of R)
  Limbs one_mont_;                // R mod m
};

/// Fixed-base exponentiation table over a MontgomeryCtx: for a base g fixed
/// per keypair, precomputes T[i][d] = g^(d * 16^i) in Montgomery form so
/// that g^e costs one MontMul per nonzero 4-bit digit of e — no squarings.
/// Paillier uses this for the r^n = (h^n)^alpha part of encryption.
class FixedBaseTable {
 public:
  /// Covers exponents up to `max_exp_bits` bits.
  FixedBaseTable(const MontgomeryCtx* ctx, const BigInt& base,
                 size_t max_exp_bits);

  /// base^e mod m. e must fit in max_exp_bits (checked).
  BigInt Pow(const BigInt& e) const;
  /// Montgomery-domain variant for callers that keep composing products.
  MontgomeryCtx::Limbs PowMont(const BigInt& e) const;
  /// Batch variant: base^es[i] for every exponent, four ladders advanced
  /// in lockstep over the shared window table (one multi-lane kernel call
  /// per window row). Results equal per-exponent PowMont bit for bit.
  std::vector<MontgomeryCtx::Limbs> PowMontMany(
      const std::vector<BigInt>& es) const;

  size_t max_exp_bits() const { return max_exp_bits_; }

 private:
  const MontgomeryCtx* ctx_;
  size_t max_exp_bits_;
  // rows_[i][d], d in [0,16): base^(d * 16^i) in Montgomery form.
  std::vector<std::vector<MontgomeryCtx::Limbs>> rows_;
};

}  // namespace pds::crypto

#endif  // PDS_CRYPTO_MONTGOMERY_H_
