#ifndef PDS_CRYPTO_AES_H_
#define PDS_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace pds::crypto {

/// AES-128 block cipher (FIPS 197), encryption direction only — every mode
/// used in the library (CTR, SIV-style deterministic encryption, CMAC-free
/// HMAC tags) needs only the forward permutation.
class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;
  using Block = std::array<uint8_t, kBlockSize>;
  using Key = std::array<uint8_t, kKeySize>;

  explicit Aes128(const Key& key);

  /// Encrypts one 16-byte block in place.
  void EncryptBlock(uint8_t block[kBlockSize]) const;

  Block EncryptBlock(const Block& in) const {
    Block out = in;
    EncryptBlock(out.data());
    return out;
  }

 private:
  // 11 round keys of 16 bytes.
  uint8_t round_keys_[176];
};

/// AES-128-CTR keystream applied to `data` in place. Encryption and
/// decryption are the same operation. `nonce` is the 16-byte initial counter
/// block; successive blocks increment its last 4 bytes big-endian.
void AesCtrXor(const Aes128& aes, const Aes128::Block& nonce, uint8_t* data,
               size_t len);

}  // namespace pds::crypto

#endif  // PDS_CRYPTO_AES_H_
