#ifndef PDS_CRYPTO_SRA_H_
#define PDS_CRYPTO_SRA_H_

#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/bigint.h"

namespace pds::crypto {

/// SRA (Shamir–Rivest–Adleman) commutative encryption: E_k(x) = x^k mod p.
///
/// For parties holding keys e1, e2: E_e1(E_e2(x)) = E_e2(E_e1(x)), the
/// property the data-mining toolkit's secure set union and secure
/// set-intersection-size protocols [CKV+02] are built on.
class SraCipher {
 public:
  /// Generates the public prime shared by all protocol participants.
  static BigInt GeneratePrime(size_t bits, Rng* rng) {
    return BigInt::GeneratePrime(bits, rng);
  }

  /// Picks a random exponent coprime to p-1 (with its inverse for
  /// decryption).
  [[nodiscard]] static Result<SraCipher> Create(const BigInt& p, Rng* rng);

  /// x must be in [1, p). Encryption of 0 is rejected.
  [[nodiscard]] Result<BigInt> Encrypt(const BigInt& x) const;
  [[nodiscard]] Result<BigInt> Decrypt(const BigInt& y) const;

  /// Maps a string item into [1, p) (length must fit below the prime).
  [[nodiscard]] Result<BigInt> EncodeItem(const std::string& item) const;
  [[nodiscard]] Result<std::string> DecodeItem(const BigInt& x) const;

  const BigInt& prime() const { return p_; }

 private:
  SraCipher(BigInt p, BigInt e, BigInt d)
      : p_(std::move(p)), e_(std::move(e)), d_(std::move(d)) {}

  BigInt p_;
  BigInt e_;
  BigInt d_;
};

}  // namespace pds::crypto

#endif  // PDS_CRYPTO_SRA_H_
