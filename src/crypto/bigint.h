#ifndef PDS_CRYPTO_BIGINT_H_
#define PDS_CRYPTO_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace pds::crypto {

/// Arbitrary-precision unsigned integer, implemented from scratch for the
/// Paillier cryptosystem (the tutorial's homomorphic-encryption substrate).
///
/// Representation: little-endian vector of 32-bit limbs with no trailing
/// zero limbs (zero is the empty vector). 32-bit limbs keep the schoolbook
/// division (Knuth algorithm D) simple while 64-bit intermediates keep
/// multiplication fast enough for 1024-bit moduli.
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(uint64_t v);

  static BigInt Zero() { return BigInt(); }
  static BigInt One() { return BigInt(1); }

  /// Big-endian byte import/export (no sign).
  static BigInt FromBytes(ByteView bytes);
  Bytes ToBytes() const;

  /// Uniform random integer with exactly `bits` bits (top bit set).
  static BigInt RandomBits(size_t bits, Rng* rng);
  /// Uniform random integer in [0, bound).
  static BigInt RandomBelow(const BigInt& bound, Rng* rng);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t BitLength() const;
  bool Bit(size_t i) const;

  /// Value as uint64 (truncating to the low 64 bits).
  uint64_t ToU64() const;

  /// Comparison: -1, 0, +1.
  static int Compare(const BigInt& a, const BigInt& b);

  static BigInt Add(const BigInt& a, const BigInt& b);
  /// Requires a >= b.
  static BigInt Sub(const BigInt& a, const BigInt& b);
  static BigInt Mul(const BigInt& a, const BigInt& b);
  /// Computes a = q*b + r with 0 <= r < b. b must be nonzero.
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r);
  static BigInt Mod(const BigInt& a, const BigInt& m);
  static BigInt Div(const BigInt& a, const BigInt& b);

  static BigInt ShiftLeft(const BigInt& a, size_t bits);
  static BigInt ShiftRight(const BigInt& a, size_t bits);

  static BigInt ModAdd(const BigInt& a, const BigInt& b, const BigInt& m);
  static BigInt ModSub(const BigInt& a, const BigInt& b, const BigInt& m);
  static BigInt ModMul(const BigInt& a, const BigInt& b, const BigInt& m);
  /// a^e mod m. Odd moduli dispatch to the Montgomery fixed-window kernel
  /// (crypto/montgomery.h); even moduli fall back to square-and-multiply.
  static BigInt ModExp(const BigInt& a, const BigInt& e, const BigInt& m);
  /// bases[i]^e mod m for every base with one shared window decode. Odd
  /// moduli run the batch lockstep ladder over the multi-lane Montgomery
  /// kernel; even moduli fall back to per-base square-and-multiply.
  /// Results equal per-base ModExp bit for bit.
  static std::vector<BigInt> ModExpMany(const std::vector<BigInt>& bases,
                                        const BigInt& e, const BigInt& m);
  /// Reference square-and-multiply ladder over schoolbook ModMul. Kept as
  /// the even-modulus fallback and as the cross-check/bench baseline for
  /// the Montgomery kernel.
  static BigInt ModExpSchoolbook(const BigInt& a, const BigInt& e,
                                 const BigInt& m);
  /// Multiplicative inverse mod m; returns Zero when none exists.
  static BigInt ModInverse(const BigInt& a, const BigInt& m);

  static BigInt Gcd(const BigInt& a, const BigInt& b);
  static BigInt Lcm(const BigInt& a, const BigInt& b);

  /// Miller–Rabin probabilistic primality test.
  static bool IsProbablePrime(const BigInt& n, int rounds, Rng* rng);
  /// Generates a random probable prime with exactly `bits` bits.
  static BigInt GeneratePrime(size_t bits, Rng* rng);

  /// Decimal string, for logging and tests.
  std::string ToDecimalString() const;

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) >= 0;
  }

 private:
  void Trim();

  std::vector<uint32_t> limbs_;
};

}  // namespace pds::crypto

#endif  // PDS_CRYPTO_BIGINT_H_
