#ifndef PDS_CRYPTO_SHA256_H_
#define PDS_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace pds::crypto {

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch.
///
/// Usage:
///   Sha256 h;
///   h.Update(a); h.Update(b);
///   std::array<uint8_t, 32> digest = h.Finish();
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  void Update(ByteView data);
  /// Finalizes and returns the digest; the object must not be reused after.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(ByteView data);

 private:
  void Compress(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace pds::crypto

#endif  // PDS_CRYPTO_SHA256_H_
