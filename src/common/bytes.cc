#include "common/bytes.h"

namespace pds {

void PutU16(Bytes* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(Bytes* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(Bytes* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | (static_cast<uint16_t>(p[1]) << 8);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

void EncodeU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void EncodeU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void EncodeU64BE(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (56 - 8 * i));
  }
}

uint64_t GetU64BE(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | p[i];
  }
  return v;
}

void PutLengthPrefixed(Bytes* out, ByteView v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  out->insert(out->end(), v.data(), v.data() + v.size());
}

bool GetLengthPrefixed(ByteView in, size_t* pos, ByteView* out) {
  if (*pos + 4 > in.size()) {
    return false;
  }
  uint32_t len = GetU32(in.data() + *pos);
  if (*pos + 4 + len > in.size()) {
    return false;
  }
  *out = in.subview(*pos + 4, len);
  *pos += 4 + len;
  return true;
}

std::string ToHex(ByteView v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(v.size() * 2);
  for (size_t i = 0; i < v.size(); ++i) {
    out.push_back(kDigits[v[i] >> 4]);
    out.push_back(kDigits[v[i] & 0xf]);
  }
  return out;
}

namespace {
int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes FromHex(std::string_view hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      break;
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace pds
