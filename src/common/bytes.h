#ifndef PDS_COMMON_BYTES_H_
#define PDS_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace pds {

/// Owned byte buffer used throughout the library for pages, tuples and
/// ciphertexts.
using Bytes = std::vector<uint8_t>;

/// Non-owning view over bytes (analogous to rocksdb::Slice).
class ByteView {
 public:
  ByteView() : data_(nullptr), size_(0) {}
  ByteView(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  ByteView(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  ByteView(std::string_view s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  ByteView subview(size_t offset, size_t len) const {
    return ByteView(data_ + offset, len);
  }

  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

inline bool operator==(ByteView a, ByteView b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

/// Little-endian fixed-width encoders/decoders.
/// Appending forms grow `out`; the Get forms read from a raw pointer that the
/// caller guarantees has enough bytes.
void PutU16(Bytes* out, uint16_t v);
void PutU32(Bytes* out, uint32_t v);
void PutU64(Bytes* out, uint64_t v);
uint16_t GetU16(const uint8_t* p);
uint32_t GetU32(const uint8_t* p);
uint64_t GetU64(const uint8_t* p);

/// Encodes v at `p` (fixed width, little endian) without bounds checks.
void EncodeU32(uint8_t* p, uint32_t v);
void EncodeU64(uint8_t* p, uint64_t v);

/// Big-endian fixed-width codecs — used inside index entries so that memcmp
/// order equals numeric order.
void EncodeU64BE(uint8_t* p, uint64_t v);
uint64_t GetU64BE(const uint8_t* p);

/// Length-prefixed string: u32 length then raw bytes.
void PutLengthPrefixed(Bytes* out, ByteView v);
/// Reads a length-prefixed slice starting at offset `*pos` in `in`;
/// on success advances `*pos` past it and returns true.
bool GetLengthPrefixed(ByteView in, size_t* pos, ByteView* out);

/// Hex encoding for debugging and test expectations.
std::string ToHex(ByteView v);
Bytes FromHex(std::string_view hex);

}  // namespace pds

#endif  // PDS_COMMON_BYTES_H_
