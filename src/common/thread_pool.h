#ifndef PDS_COMMON_THREAD_POOL_H_
#define PDS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pds {

/// Fixed-size worker pool. Tasks are plain closures; Wait() blocks until
/// every submitted task has finished, which also establishes the
/// happens-before edge callers rely on to read results written by tasks.
///
/// A pool constructed with 0 or 1 threads runs tasks inline on the calling
/// thread at Submit time, so single-threaded users pay nothing and
/// deterministic serial semantics are trivially preserved.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 means inline execution).
  size_t num_threads() const { return workers_.size(); }

  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

  /// Runs fn(0..n-1) across the pool and waits. Work is handed out in
  /// contiguous chunks; fn must only touch state owned by index i (the
  /// caller gathers results by index afterwards, which is what keeps
  /// parallel runs byte-identical to serial ones).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace pds

#endif  // PDS_COMMON_THREAD_POOL_H_
