#ifndef PDS_COMMON_CLOCK_H_
#define PDS_COMMON_CLOCK_H_

#include <cstdint>

namespace pds {

/// Monotonic wall-time in nanoseconds since an arbitrary epoch.
///
/// This is the *only* sanctioned wall-clock in the tree, and it is reserved
/// for observability (span timestamps in src/obs): library logic stays
/// deterministic (seeded RNGs, simulated flash latency from CostModel), so
/// nothing that affects an output may read this.
uint64_t MonotonicNanos();

}  // namespace pds

#endif  // PDS_COMMON_CLOCK_H_
