#ifndef PDS_COMMON_CLOCK_H_
#define PDS_COMMON_CLOCK_H_

#include <cstdint>

namespace pds {

/// Injectable monotonic clock behind every deadline, retry backoff, and
/// latency timestamp in the wire runtime (SsiServer, TokenClient, fault
/// injection). Two implementations exist:
///
///  - the process-wide wall clock (`WallClock()`), backed by
///    std::chrono::steady_clock, whose budget scaling applies the
///    PDS_TIME_SCALE sanitizer de-flaking factor, and
///  - `sim::SimClock`, a discrete-event virtual clock whose SleepMs/NowNs
///    advance a seeded event queue instead of the host scheduler.
///
/// Library logic stays deterministic (seeded RNGs, simulated flash latency
/// from CostModel): nothing that affects a protocol *output* may read a
/// clock — time feeds only timeouts, pacing, and observability.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since this clock's arbitrary epoch.
  [[nodiscard]] virtual uint64_t NowNs() = 0;

  /// Blocks the caller for `ms` of this clock's time. On the wall clock
  /// this is a real sleep; on a simulated clock it advances virtual time
  /// (running any events that come due) and returns immediately.
  virtual void SleepMs(uint32_t ms) = 0;

  /// Scales a wall-clock budget (deadline, backoff, poll window) for this
  /// clock. The wall clock multiplies by TimeScale() so sanitizer builds
  /// don't race fixed sleeps; simulated clocks return `ms` unchanged —
  /// virtual time runs at the same speed under any build. Callers that
  /// configure the wire runtime scale their budgets exactly once, through
  /// the clock that will enforce them.
  [[nodiscard]] virtual uint32_t ScaleBudgetMs(uint32_t ms) { return ms; }
};

/// The process-wide steady_clock-backed Clock. Never null; never destroyed.
[[nodiscard]] Clock* WallClock();

/// Monotonic wall-time in nanoseconds — shorthand for
/// `WallClock()->NowNs()`, kept for observability call sites (span
/// timestamps in src/obs).
uint64_t MonotonicNanos();

/// Scenario clock scale factor for wall-clock budgets (deadlines, retry
/// backoff, poll windows) — NOT for anything that affects an output. Wire
/// tests derive their timing assumptions from this so sanitizer builds
/// (ASan/TSan easily run 4-20x slower) don't race fixed sleeps. Resolution
/// order: the PDS_TIME_SCALE environment variable if set (clamped to
/// [1, 64]), else 4 when compiled under ASan/TSan, else 1. Read once and
/// cached; constant for the whole process.
uint32_t TimeScale();

/// `ms` scaled by TimeScale(), saturating at uint32 max — shorthand for
/// `WallClock()->ScaleBudgetMs(ms)`. Use for every deadline/backoff a test
/// passes to the wire runtime.
uint32_t ScaledMs(uint32_t ms);

}  // namespace pds

#endif  // PDS_COMMON_CLOCK_H_
