#ifndef PDS_COMMON_CLOCK_H_
#define PDS_COMMON_CLOCK_H_

#include <cstdint>

namespace pds {

/// Monotonic wall-time in nanoseconds since an arbitrary epoch.
///
/// This is the *only* sanctioned wall-clock in the tree, and it is reserved
/// for observability (span timestamps in src/obs): library logic stays
/// deterministic (seeded RNGs, simulated flash latency from CostModel), so
/// nothing that affects an output may read this.
uint64_t MonotonicNanos();

/// Scenario clock scale factor for wall-clock budgets (deadlines, retry
/// backoff, poll windows) — NOT for anything that affects an output. Wire
/// tests derive their timing assumptions from this so sanitizer builds
/// (ASan/TSan easily run 4-20x slower) don't race fixed sleeps. Resolution
/// order: the PDS_TIME_SCALE environment variable if set (clamped to
/// [1, 64]), else 4 when compiled under ASan/TSan, else 1. Read once and
/// cached; constant for the whole process.
uint32_t TimeScale();

/// `ms` scaled by TimeScale(), saturating at uint32 max. Use for every
/// deadline/backoff a test passes to the wire runtime.
uint32_t ScaledMs(uint32_t ms);

}  // namespace pds

#endif  // PDS_COMMON_CLOCK_H_
