#include "common/hash.h"

namespace pds {

namespace {
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

uint64_t Fnv1a64(ByteView data) {
  uint64_t h = kFnvOffset;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(ByteView(s));
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace pds
