#ifndef PDS_COMMON_HASH_H_
#define PDS_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace pds {

/// FNV-1a 64-bit hash — used for hash-bucket routing in the inverted index
/// and for Bloom filter probes (combined with double hashing).
uint64_t Fnv1a64(ByteView data);
uint64_t Fnv1a64(std::string_view s);

/// 64-bit avalanche mix (Murmur3 finalizer); good for deriving the second
/// Bloom probe from the first.
uint64_t Mix64(uint64_t x);

}  // namespace pds

#endif  // PDS_COMMON_HASH_H_
