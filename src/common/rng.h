#ifndef PDS_COMMON_RNG_H_
#define PDS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pds {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// All randomness in the library — workload generation, protocol nonces in
/// tests, noise tuples — flows through seeded Rng instances so that every
/// test and benchmark is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) using rejection sampling (bound > 0).
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fills `out` with random bytes.
  void FillBytes(uint8_t* out, size_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed sampler over ranks {0, ..., n-1} with exponent `theta`.
/// Rank 0 is the most frequent. Uses the standard CDF-inversion with a
/// precomputed normalization table for small n, falling back to the
/// approximation of Gray et al. (SIGMOD'94) for large n.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta, uint64_t seed);

  uint64_t Sample();
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace pds

#endif  // PDS_COMMON_RNG_H_
