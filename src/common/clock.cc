#include "common/clock.h"

#include <chrono>
#include <cstdlib>
#include <limits>
#include <thread>

namespace pds {

namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr uint32_t kBuildScale = 4;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr uint32_t kBuildScale = 4;
#else
constexpr uint32_t kBuildScale = 1;
#endif
#else
constexpr uint32_t kBuildScale = 1;
#endif

uint32_t ResolveTimeScale() {
  const char* env = std::getenv("PDS_TIME_SCALE");
  if (env != nullptr && env[0] != '\0') {
    long v = std::strtol(env, nullptr, 10);
    if (v < 1) v = 1;
    if (v > 64) v = 64;
    return static_cast<uint32_t>(v);
  }
  return kBuildScale;
}

class SteadyWallClock final : public Clock {
 public:
  [[nodiscard]] uint64_t NowNs() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void SleepMs(uint32_t ms) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  [[nodiscard]] uint32_t ScaleBudgetMs(uint32_t ms) override {
    uint64_t scaled = static_cast<uint64_t>(ms) * TimeScale();
    if (scaled > std::numeric_limits<uint32_t>::max()) {
      return std::numeric_limits<uint32_t>::max();
    }
    return static_cast<uint32_t>(scaled);
  }
};

}  // namespace

Clock* WallClock() {
  static SteadyWallClock clock;
  return &clock;
}

uint64_t MonotonicNanos() { return WallClock()->NowNs(); }

uint32_t TimeScale() {
  static const uint32_t scale = ResolveTimeScale();
  return scale;
}

uint32_t ScaledMs(uint32_t ms) { return WallClock()->ScaleBudgetMs(ms); }

}  // namespace pds
