#ifndef PDS_COMMON_STATUS_H_
#define PDS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace pds {

/// Canonical error codes used across the library. The library never throws;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,   // e.g., RAM budget of the secure MCU exceeded
  kIoError,             // flash-level failure
  kCorruption,          // on-flash structure failed validation
  kPermissionDenied,    // access-control rejection inside the token
  kFailedPrecondition,
  kIntegrityViolation,  // tampering detected in a global protocol
  kDeadlineExceeded,    // wire operation missed its deadline (src/net)
  kUnimplemented,
  kInternal,
};

/// Human-readable name of a StatusCode ("Ok", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-type status carrying a code and an optional message.
///
/// Cheap to copy in the OK case (no allocation). Follows the
/// absl::Status/rocksdb::Status idiom: factory functions per code, `ok()`
/// for the happy-path test, `ToString()` for logging.
///
/// The class itself is [[nodiscard]]: any call returning a Status by value
/// must consume it (or cast to void with an explanation). Dropped errors in
/// a personal data server are data-loss bugs, not style issues.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  [[nodiscard]] static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status IntegrityViolation(std::string msg) {
    return Status(StatusCode::kIntegrityViolation, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define PDS_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::pds::Status pds_status_tmp_ = (expr);      \
    if (!pds_status_tmp_.ok()) {                 \
      return pds_status_tmp_;                    \
    }                                            \
  } while (0)

}  // namespace pds

#endif  // PDS_COMMON_STATUS_H_
