#ifndef PDS_COMMON_RESULT_H_
#define PDS_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pds {

/// Either a value of type T or a non-OK Status, in the style of
/// absl::StatusOr<T>.
///
/// A default-constructed Result is an Internal error; a Result constructed
/// from a T is OK. Accessing `value()` on a non-OK Result aborts the
/// process (this is a programming error, not a runtime condition) after
/// printing the stored status, so the crash names the original failure.
///
/// Like Status, the class is [[nodiscard]]: a Result returned by value must
/// be consumed by the caller.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}

  // Intentionally implicit so `return value;` and `return status;` both work,
  // mirroring absl::StatusOr.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("OK status used to construct error Result");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when not OK.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      // Deliberately not a throw: the library is exception-free (secure-MCU
      // target). Print the stored status so the abort is attributable.
      std::fprintf(stderr, "Result::value() called on non-OK Result: %s\n",
                   status_.ToString().c_str());
      std::fflush(stderr);
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns its Status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define PDS_ASSIGN_OR_RETURN(lhs, rexpr)            \
  PDS_ASSIGN_OR_RETURN_IMPL_(                       \
      PDS_RESULT_CONCAT_(pds_result_, __LINE__), lhs, rexpr)

#define PDS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

#define PDS_RESULT_CONCAT_INNER_(a, b) a##b
#define PDS_RESULT_CONCAT_(a, b) PDS_RESULT_CONCAT_INNER_(a, b)

}  // namespace pds

#endif  // PDS_COMMON_RESULT_H_
