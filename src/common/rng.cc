#include "common/rng.h"

#include <cmath>

namespace pds {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  if (hi <= lo) {
    return lo;
  }
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void Rng::FillBytes(uint8_t* out, size_t n) {
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t v = Next();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  if (i < n) {
    uint64_t v = Next();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rng_(seed) {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  zetan_ = Zeta(n_, theta_);
  double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfSampler::Sample() {
  if (theta_ == 0.0) {
    return rng_.Uniform(n_);
  }
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank >= n_) {
    rank = n_ - 1;
  }
  return rank;
}

}  // namespace pds
