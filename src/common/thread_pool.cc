#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace pds {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) {
    return;  // inline mode
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop requested and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (workers_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  // One task per worker pulling chunks off a shared counter: balances
  // uneven per-index cost without a task allocation per index.
  const size_t chunk = std::max<size_t>(1, n / (workers_.size() * 4));
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t tasks = std::min(workers_.size(), (n + chunk - 1) / chunk);
  for (size_t t = 0; t < tasks; ++t) {
    Submit([n, chunk, next, &fn] {
      for (;;) {
        size_t start = next->fetch_add(chunk);
        if (start >= n) {
          return;
        }
        size_t end = std::min(n, start + chunk);
        for (size_t i = start; i < end; ++i) {
          fn(i);
        }
      }
    });
  }
  Wait();
}

}  // namespace pds
