#include "search/inverted_index.h"

#include <algorithm>

#include "common/hash.h"

namespace pds::search {

namespace {
constexpr size_t kPageHeader = 6;  // u32 prev + u16 count

void EncodePosting(uint8_t* p, const Posting& posting) {
  EncodeU64(p, posting.term_hash);
  EncodeU32(p + 8, posting.docid);
  p[12] = static_cast<uint8_t>(posting.weight);
  p[13] = static_cast<uint8_t>(posting.weight >> 8);
}

Posting DecodePosting(const uint8_t* p) {
  Posting posting;
  posting.term_hash = GetU64(p);
  posting.docid = GetU32(p + 8);
  posting.weight = GetU16(p + 12);
  return posting;
}
}  // namespace

InvertedIndexLog::InvertedIndexLog(flash::Partition partition,
                                   mcu::RamGauge* gauge,
                                   const Options& options)
    : partition_(partition), gauge_(gauge), options_(options) {}

InvertedIndexLog::~InvertedIndexLog() {
  if (charged_ram_ > 0) {
    gauge_->Release(charged_ram_);
  }
}

Status InvertedIndexLog::Init() {
  if (initialized_) {
    return Status::FailedPrecondition("already initialized");
  }
  size_t ram = options_.num_buckets * sizeof(uint32_t)  // hash table
               + options_.insert_buffer_bytes;          // insert buffer
  PDS_RETURN_IF_ERROR(gauge_->Acquire(ram));
  charged_ram_ = ram;
  bucket_heads_.assign(options_.num_buckets, kNullPage);
  buffer_.assign(options_.num_buckets, {});
  initialized_ = true;
  return Status::Ok();
}

uint64_t InvertedIndexLog::HashTerm(std::string_view term) {
  return Fnv1a64(term);
}

// pdslint: ram-exempt(insert buffer RAM is charged up-front in Init;
// FlushBuffer bounds it at options_.insert_buffer_bytes)
Status InvertedIndexLog::AddDocument(
    uint32_t docid, const std::map<std::string, uint32_t>& term_freqs) {
  if (!initialized_) {
    return Status::FailedPrecondition("index not initialized");
  }
  if (any_document_ && docid <= last_docid_) {
    return Status::InvalidArgument(
        "docids must be strictly increasing (pipeline merge relies on it)");
  }
  for (const auto& [term, tf] : term_freqs) {
    Posting posting;
    posting.term_hash = HashTerm(term);
    posting.docid = docid;
    posting.weight =
        static_cast<uint16_t>(std::min<uint32_t>(tf, 0xFFFF));
    buffer_[BucketOf(posting.term_hash)].push_back(posting);
    ++buffered_count_;
    if (buffer_bytes_used() >= options_.insert_buffer_bytes) {
      PDS_RETURN_IF_ERROR(FlushBuffer());
    }
  }
  last_docid_ = docid;
  any_document_ = true;
  ++num_documents_;
  return Status::Ok();
}

Status InvertedIndexLog::FlushBucket(uint32_t bucket) {
  std::vector<Posting>& postings = buffer_[bucket];
  if (postings.empty()) {
    return Status::Ok();
  }
  const uint32_t ps = partition_.page_size();
  const size_t per_page = (ps - kPageHeader) / Posting::kEncodedSize;

  size_t pos = 0;
  Bytes page;
  while (pos < postings.size()) {
    size_t batch = std::min(per_page, postings.size() - pos);
    page.assign(kPageHeader + batch * Posting::kEncodedSize, 0);
    EncodeU32(page.data(), bucket_heads_[bucket]);
    page[4] = static_cast<uint8_t>(batch);
    page[5] = static_cast<uint8_t>(batch >> 8);
    for (size_t i = 0; i < batch; ++i) {
      EncodePosting(page.data() + kPageHeader + i * Posting::kEncodedSize,
                    postings[pos + i]);
    }
    if (next_page_ >= partition_.num_pages()) {
      return Status::ResourceExhausted("inverted index partition full");
    }
    PDS_RETURN_IF_ERROR(partition_.ProgramPage(next_page_, ByteView(page)));
    bucket_heads_[bucket] = next_page_;
    ++next_page_;
    pos += batch;
  }
  buffered_count_ -= postings.size();
  postings.clear();
  return Status::Ok();
}

Status InvertedIndexLog::FlushBuffer() {
  for (uint32_t b = 0; b < num_buckets(); ++b) {
    PDS_RETURN_IF_ERROR(FlushBucket(b));
  }
  return Status::Ok();
}

// pdslint: ram-exempt(ram_postings_ snapshots one bucket of the insert
// buffer, whose RAM is charged in Init)
InvertedIndexLog::TermCursor::TermCursor(InvertedIndexLog* index,
                                         uint64_t term_hash)
    : index_(index), term_hash_(term_hash) {
  uint32_t bucket = index_->BucketOf(term_hash);
  for (const Posting& p : index_->buffer_[bucket]) {
    if (p.term_hash == term_hash) {
      ram_postings_.push_back(p);
    }
  }
  ram_pos_ = ram_postings_.size();
  next_prev_addr_ = index_->bucket_heads_[bucket];
}

Status InvertedIndexLog::TermCursor::LoadPage(uint32_t page_addr) {
  PDS_RETURN_IF_ERROR(index_->partition_.ReadPage(page_addr, &page_));
  next_prev_addr_ = GetU32(page_.data());
  uint16_t count = GetU16(page_.data() + 4);
  triple_index_ = static_cast<int>(count) - 1;
  page_loaded_ = true;
  return Status::Ok();
}

Status InvertedIndexLog::TermCursor::FindNextMatch() {
  for (;;) {
    if (!page_loaded_) {
      if (next_prev_addr_ == kNullPage) {
        at_end_ = true;
        return Status::Ok();
      }
      PDS_RETURN_IF_ERROR(LoadPage(next_prev_addr_));
    }
    while (triple_index_ >= 0) {
      Posting posting = DecodePosting(
          page_.data() + kPageHeader +
          static_cast<size_t>(triple_index_) * Posting::kEncodedSize);
      --triple_index_;
      if (posting.term_hash == term_hash_) {
        current_ = posting;
        at_end_ = false;
        return Status::Ok();
      }
    }
    page_loaded_ = false;  // chain to the previous (older) page
  }
}

Status InvertedIndexLog::TermCursor::Advance() {
  if (ram_pos_ > 0) {
    --ram_pos_;
    current_ = ram_postings_[ram_pos_];
    at_end_ = false;
    return Status::Ok();
  }
  return FindNextMatch();
}

Result<InvertedIndexLog::TermCursor> InvertedIndexLog::OpenTerm(
    std::string_view term) {
  if (!initialized_) {
    return Status::FailedPrecondition("index not initialized");
  }
  TermCursor cursor(this, HashTerm(term));
  PDS_RETURN_IF_ERROR(cursor.Advance());
  return cursor;
}

Result<uint32_t> InvertedIndexLog::DocumentFrequency(std::string_view term) {
  PDS_ASSIGN_OR_RETURN(TermCursor cursor, OpenTerm(term));
  uint32_t df = 0;
  while (!cursor.AtEnd()) {
    ++df;
    PDS_RETURN_IF_ERROR(cursor.Advance());
  }
  return df;
}

}  // namespace pds::search
